#include <map>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "plans/distributed_groupby.h"

namespace modularis::plans {
namespace {

struct GroupByCase {
  int world;
  int64_t rows;
  int64_t num_keys;
  bool compress;
  bool fused;
};

class DistributedGroupByTest : public ::testing::TestWithParam<GroupByCase> {};

TEST_P(DistributedGroupByTest, MatchesReferenceAggregation) {
  const GroupByCase& p = GetParam();

  DistGroupByOptions opts;
  opts.world_size = p.world;
  opts.compress = p.compress;
  opts.exec.enable_fusion = p.fused;
  opts.exec.network_radix_bits = 5;
  opts.exec.local_radix_bits = 4;
  opts.fabric.throttle = false;

  std::mt19937_64 rng(42);
  std::uniform_int_distribution<int64_t> key_dist(0, p.num_keys - 1);
  std::uniform_int_distribution<int64_t> val_dist(0, 1000);

  std::vector<RowVectorPtr> frags;
  for (int r = 0; r < p.world; ++r) {
    frags.push_back(RowVector::Make(KeyValueSchema()));
  }
  std::map<int64_t, int64_t> expected;
  for (int64_t i = 0; i < p.rows; ++i) {
    int64_t key = key_dist(rng);
    int64_t value = val_dist(rng);
    expected[key] += value;
    RowWriter w = frags[i % p.world]->AppendRow();
    w.SetInt64(0, key);
    w.SetInt64(1, value);
  }

  StatsRegistry stats;
  auto result = RunDistributedGroupBy(frags, opts, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const RowVectorPtr& rows = result.value();

  ASSERT_EQ(rows->size(), expected.size());
  std::map<int64_t, int64_t> actual;
  for (size_t i = 0; i < rows->size(); ++i) {
    RowRef row = rows->row(i);
    ASSERT_TRUE(actual.emplace(row.GetInt64(0), row.GetInt64(1)).second)
        << "duplicate group key " << row.GetInt64(0);
  }
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, DistributedGroupByTest,
    ::testing::Values(GroupByCase{1, 10000, 100, true, true},
                      GroupByCase{2, 20000, 1000, true, true},
                      GroupByCase{4, 20000, 64, true, true},
                      GroupByCase{4, 20000, 5000, false, true},
                      GroupByCase{2, 8000, 128, false, false},
                      GroupByCase{3, 15000, 17, true, false}),
    [](const ::testing::TestParamInfo<GroupByCase>& info) {
      return "w" + std::to_string(info.param.world) + "_k" +
             std::to_string(info.param.num_keys) +
             (info.param.compress ? "_compressed" : "_raw") +
             (info.param.fused ? "_fused" : "_interpreted");
    });

TEST(DistributedGroupByTest, SingleKeyAllRowsOneGroup) {
  DistGroupByOptions opts;
  opts.world_size = 2;
  opts.fabric.throttle = false;
  std::vector<RowVectorPtr> frags;
  for (int r = 0; r < 2; ++r) frags.push_back(RowVector::Make(KeyValueSchema()));
  for (int64_t i = 0; i < 1000; ++i) {
    RowWriter w = frags[i % 2]->AppendRow();
    w.SetInt64(0, 7);
    w.SetInt64(1, 1);
  }
  StatsRegistry stats;
  auto result = RunDistributedGroupBy(frags, opts, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value()->size(), 1u);
  EXPECT_EQ(result.value()->row(0).GetInt64(0), 7);
  EXPECT_EQ(result.value()->row(0).GetInt64(1), 1000);
}

TEST(DistributedGroupByTest, EmptyInputYieldsNoGroups) {
  DistGroupByOptions opts;
  opts.world_size = 2;
  opts.fabric.throttle = false;
  std::vector<RowVectorPtr> frags;
  for (int r = 0; r < 2; ++r) frags.push_back(RowVector::Make(KeyValueSchema()));
  StatsRegistry stats;
  auto result = RunDistributedGroupBy(frags, opts, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value()->size(), 0u);
}

}  // namespace
}  // namespace modularis::plans
