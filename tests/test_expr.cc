#include <gtest/gtest.h>

#include "core/expr.h"

namespace modularis {
namespace {

/// One scratch row shared by the expression tests.
class ExprTest : public ::testing::Test {
 protected:
  ExprTest()
      : schema_({Field::I64("i"), Field::F64("f"), Field::Str("s", 24),
                 Field::Date("d"), Field::I32("n")}),
        rows_(RowVector::Make(schema_)) {
    RowWriter w = rows_->AppendRow();
    w.SetInt64(0, 10);
    w.SetFloat64(1, 2.5);
    w.SetString(2, "PROMO BRUSHED TIN");
    w.SetDate(3, DateFromYMD(1995, 6, 1));
    w.SetInt32(4, -3);
  }

  RowRef row() const { return rows_->row(0); }

  Schema schema_;
  RowVectorPtr rows_;
};

TEST_F(ExprTest, ColumnRefAllTypes) {
  EXPECT_EQ(ex::Col(0)->Eval(row()).i64(), 10);
  EXPECT_EQ(ex::Col(1)->Eval(row()).f64(), 2.5);
  EXPECT_EQ(ex::Col(2)->Eval(row()).str(), "PROMO BRUSHED TIN");
  EXPECT_EQ(ex::Col(3)->Eval(row()).i64(), DateFromYMD(1995, 6, 1));
  EXPECT_EQ(ex::Col(4)->Eval(row()).i64(), -3);
}

TEST_F(ExprTest, ComparisonsIntFloatString) {
  EXPECT_TRUE(ex::Eq(ex::Col(0), ex::Lit(int64_t{10}))->EvalBool(row()));
  EXPECT_TRUE(ex::Ne(ex::Col(0), ex::Lit(int64_t{11}))->EvalBool(row()));
  EXPECT_TRUE(ex::Lt(ex::Col(4), ex::Lit(int64_t{0}))->EvalBool(row()));
  EXPECT_TRUE(ex::Ge(ex::Col(1), ex::Lit(2.5))->EvalBool(row()));
  // Mixed int/double comparison promotes to double.
  EXPECT_TRUE(ex::Gt(ex::Col(0), ex::Lit(9.5))->EvalBool(row()));
  EXPECT_TRUE(
      ex::Gt(ex::Col(2), ex::Lit(std::string("PROMO")))->EvalBool(row()));
  EXPECT_TRUE(ex::Le(ex::Col(3), ex::DateLit("1995-06-01"))->EvalBool(row()));
}

TEST_F(ExprTest, ArithmeticIntegerPreservation) {
  Item sum = ex::Add(ex::Col(0), ex::Lit(int64_t{5}))->Eval(row());
  EXPECT_TRUE(sum.is_i64());
  EXPECT_EQ(sum.i64(), 15);
  Item mixed = ex::Mul(ex::Col(0), ex::Col(1))->Eval(row());
  EXPECT_TRUE(mixed.is_f64());
  EXPECT_EQ(mixed.f64(), 25.0);
  // Division always yields f64 and guards division by zero.
  EXPECT_EQ(ex::Div(ex::Col(0), ex::Lit(4.0))->Eval(row()).f64(), 2.5);
  EXPECT_EQ(ex::Div(ex::Col(0), ex::Lit(0.0))->Eval(row()).f64(), 0.0);
}

TEST_F(ExprTest, BooleanConnectives) {
  ExprPtr t = ex::Eq(ex::Col(0), ex::Lit(int64_t{10}));
  ExprPtr f = ex::Eq(ex::Col(0), ex::Lit(int64_t{11}));
  EXPECT_TRUE(ex::And(t, t)->EvalBool(row()));
  EXPECT_FALSE(ex::And(t, f)->EvalBool(row()));
  EXPECT_TRUE(ex::Or(f, t)->EvalBool(row()));
  EXPECT_FALSE(ex::Or(f, f)->EvalBool(row()));
  EXPECT_TRUE(ex::Not(f)->EvalBool(row()));
  EXPECT_TRUE(ex::And(t, t, t)->EvalBool(row()));
}

struct LikeCase {
  const char* pattern;
  bool expected;
};

class LikeTest : public ::testing::TestWithParam<LikeCase> {};

TEST_P(LikeTest, MatchesSqlSemantics) {
  Schema schema({Field::Str("s", 24)});
  RowVectorPtr rows = RowVector::Make(schema);
  rows->AppendRow().SetString(0, "PROMO BRUSHED TIN");
  EXPECT_EQ(ex::Like(ex::Col(0), GetParam().pattern)->EvalBool(rows->row(0)),
            GetParam().expected)
      << GetParam().pattern;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, LikeTest,
    ::testing::Values(LikeCase{"PROMO%", true}, LikeCase{"%TIN", true},
                      LikeCase{"%BRUSHED%", true}, LikeCase{"PROMO", false},
                      LikeCase{"%", true}, LikeCase{"P_OMO%", true},
                      LikeCase{"_ROMO%", true}, LikeCase{"X%", false},
                      LikeCase{"%NICKEL%", false},
                      LikeCase{"PROMO BRUSHED TIN", true},
                      LikeCase{"%T_N", true}, LikeCase{"%T_O", false}));

TEST_F(ExprTest, InAndBetween) {
  EXPECT_TRUE(ex::InStr(ex::Col(2), {"FOO", "PROMO BRUSHED TIN"})
                  ->EvalBool(row()));
  EXPECT_FALSE(ex::InStr(ex::Col(2), {"FOO", "BAR"})->EvalBool(row()));
  EXPECT_TRUE(ex::InInt(ex::Col(0), {1, 10, 100})->EvalBool(row()));
  EXPECT_FALSE(ex::InInt(ex::Col(0), {1, 2, 3})->EvalBool(row()));
  EXPECT_TRUE(ex::Between(ex::Col(1), ex::Lit(2.0), ex::Lit(3.0))
                  ->EvalBool(row()));
  EXPECT_FALSE(ex::Between(ex::Col(1), ex::Lit(2.6), ex::Lit(3.0))
                   ->EvalBool(row()));
}

TEST_F(ExprTest, IfThenElse) {
  ExprPtr e = ex::If(ex::Gt(ex::Col(0), ex::Lit(int64_t{5})),
                     ex::Mul(ex::Col(1), ex::Lit(2.0)), ex::Lit(0.0));
  EXPECT_EQ(e->Eval(row()).f64(), 5.0);
}

TEST_F(ExprTest, CollectColumnsWalksTheTree) {
  ExprPtr e = ex::And(ex::Gt(ex::Col(3), ex::Lit(int64_t{0})),
                      ex::Like(ex::Col(2), "X%"),
                      ex::If(ex::Eq(ex::Col(0), ex::Lit(int64_t{1})),
                             ex::Col(1), ex::Col(4)));
  std::vector<int> cols;
  e->CollectColumns(&cols);
  std::sort(cols.begin(), cols.end());
  EXPECT_EQ(cols, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(ExprTest, AsColumnIndexIdentifiesBareRefs) {
  EXPECT_EQ(ex::Col(3)->AsColumnIndex(), 3);
  EXPECT_EQ(ex::Add(ex::Col(3), ex::Lit(int64_t{1}))->AsColumnIndex(), -1);
  EXPECT_EQ(ex::Lit(int64_t{1})->AsColumnIndex(), -1);
}

TEST_F(ExprTest, ToStringIsReadable) {
  EXPECT_EQ(ex::Gt(ex::Col(0), ex::Lit(int64_t{5}))->ToString(),
            "($0 > 5)");
  EXPECT_EQ(ex::Like(ex::Col(2), "P%")->ToString(), "$2 LIKE 'P%'");
}

}  // namespace
}  // namespace modularis
