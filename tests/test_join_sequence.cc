#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "plans/join_sequence.h"

namespace modularis::plans {
namespace {

/// Relation i: keys 0..n-1 shuffled, v_i(key) = key * (i + 2).
std::vector<std::vector<RowVectorPtr>> MakeRelations(int count, int world,
                                                     int64_t n) {
  std::vector<std::vector<RowVectorPtr>> relations(count);
  for (int rel = 0; rel < count; ++rel) {
    std::vector<int64_t> keys(n);
    for (int64_t i = 0; i < n; ++i) keys[i] = i;
    std::mt19937 rng(100 + rel);
    std::shuffle(keys.begin(), keys.end(), rng);
    for (int r = 0; r < world; ++r) {
      relations[rel].push_back(RowVector::Make(KeyValueSchema()));
    }
    for (int64_t i = 0; i < n; ++i) {
      RowWriter w = relations[rel][i % world]->AppendRow();
      w.SetInt64(0, keys[i]);
      w.SetInt64(1, keys[i] * (rel + 2));
    }
  }
  return relations;
}

void CheckCascadeResult(const RowVectorPtr& rows, int num_joins, int64_t n) {
  ASSERT_EQ(rows->size(), static_cast<size_t>(n));
  std::vector<bool> seen(n, false);
  for (size_t i = 0; i < rows->size(); ++i) {
    RowRef row = rows->row(i);
    int64_t key = row.GetInt64(0);
    ASSERT_GE(key, 0);
    ASSERT_LT(key, n);
    ASSERT_FALSE(seen[key]) << "duplicate key " << key;
    seen[key] = true;
    for (int j = 0; j <= num_joins; ++j) {
      EXPECT_EQ(row.GetInt64(1 + j), key * (j + 2))
          << "key " << key << " payload v" << j;
    }
  }
}

struct SeqCase {
  int world;
  int num_joins;
  bool optimized;
};

class JoinSequenceTest : public ::testing::TestWithParam<SeqCase> {};

TEST_P(JoinSequenceTest, CascadeProducesAllChainedPayloads) {
  const SeqCase& p = GetParam();
  const int64_t n = 6000;

  JoinSequenceOptions opts;
  opts.world_size = p.world;
  opts.exec.network_radix_bits = 4;
  opts.exec.local_radix_bits = 3;
  opts.fabric.throttle = false;

  auto relations = MakeRelations(p.num_joins + 1, p.world, n);
  StatsRegistry stats;
  auto result = RunJoinSequence(relations, opts, p.optimized, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  CheckCascadeResult(result.value(), p.num_joins, n);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, JoinSequenceTest,
    ::testing::Values(SeqCase{2, 2, false}, SeqCase{2, 2, true},
                      SeqCase{4, 3, false}, SeqCase{4, 3, true},
                      SeqCase{2, 5, true}, SeqCase{3, 4, false}),
    [](const ::testing::TestParamInfo<SeqCase>& info) {
      return "w" + std::to_string(info.param.world) + "_j" +
             std::to_string(info.param.num_joins) +
             (info.param.optimized ? "_opt" : "_naive");
    });

TEST(JoinSequenceTest, NaiveAndOptimizedAgree) {
  JoinSequenceOptions opts;
  opts.world_size = 2;
  opts.exec.network_radix_bits = 4;
  opts.fabric.throttle = false;
  auto relations = MakeRelations(4, 2, 3000);

  StatsRegistry s1, s2;
  auto naive = RunJoinSequence(relations, opts, false, &s1);
  auto optimized = RunJoinSequence(relations, opts, true, &s2);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  ASSERT_EQ(naive.value()->size(), optimized.value()->size());

  // The optimized variant must move strictly fewer bytes: N+1 vs 2N
  // relation shuffles (paper §4.2).
  EXPECT_LT(s2.GetCounter("net.bytes_sent"),
            s1.GetCounter("net.bytes_sent"));
}

}  // namespace
}  // namespace modularis::plans
