#include <gtest/gtest.h>

#include "core/column_table.h"
#include "core/pipeline.h"
#include "core/row_vector.h"
#include "core/tuple.h"
#include "core/tuple_type.h"
#include "core/types.h"

namespace modularis {
namespace {

TEST(SchemaTest, LayoutIsAlignedAndPacked) {
  Schema s({Field::I32("a"), Field::I64("b"), Field::Str("c", 5),
            Field::F64("d"), Field::Date("e")});
  EXPECT_EQ(s.offset(0), 0u);
  EXPECT_EQ(s.offset(1), 8u);   // i64 aligned to 8
  EXPECT_EQ(s.offset(2), 16u);  // string: u16 len + 5 bytes
  EXPECT_EQ(s.offset(3), 24u);  // f64 aligned past 16+7=23
  EXPECT_EQ(s.offset(4), 32u);
  EXPECT_EQ(s.row_size() % 8, 0u);
}

TEST(SchemaTest, FieldIndexAndSelect) {
  Schema s({Field::I64("x"), Field::F64("y"), Field::Str("z", 4)});
  EXPECT_EQ(s.FieldIndex("y"), 1);
  EXPECT_EQ(s.FieldIndex("missing"), -1);
  Schema sub = s.Select({2, 0});
  EXPECT_EQ(sub.num_fields(), 2u);
  EXPECT_EQ(sub.field(0).name, "z");
  EXPECT_EQ(sub.field(1).name, "x");
}

TEST(SchemaTest, ConcatRenamesDuplicates) {
  Schema a({Field::I64("key"), Field::I64("v")});
  Schema b({Field::I64("key"), Field::F64("w")});
  Schema c = a.Concat(b);
  EXPECT_EQ(c.num_fields(), 4u);
  EXPECT_EQ(c.field(2).name, "key_r");
}

class DateRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DateRoundTrip, YmdSurvivesConversion) {
  int year = GetParam();
  for (int month : {1, 2, 6, 12}) {
    for (int day : {1, 15, 28}) {
      int32_t days = DateFromYMD(year, month, day);
      int y, m, d;
      YMDFromDate(days, &y, &m, &d);
      EXPECT_EQ(y, year);
      EXPECT_EQ(m, month);
      EXPECT_EQ(d, day);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Years, DateRoundTrip,
                         ::testing::Values(1970, 1992, 1996, 1998, 2000,
                                           2024, 2100));

TEST(DateTest, EpochAndKnownDates) {
  EXPECT_EQ(DateFromYMD(1970, 1, 1), 0);
  EXPECT_EQ(DateFromYMD(1970, 1, 2), 1);
  EXPECT_EQ(DateFromYMD(1969, 12, 31), -1);
  EXPECT_EQ(FormatDate(DateFromYMD(1995, 3, 15)), "1995-03-15");
}

TEST(DateTest, ParseValidAndInvalid) {
  EXPECT_EQ(*ParseDate("1998-12-01"), DateFromYMD(1998, 12, 1));
  EXPECT_FALSE(ParseDate("1998/12/01").ok());
  EXPECT_FALSE(ParseDate("98-12-01").ok());
  EXPECT_FALSE(ParseDate("1998-13-01").ok());
  EXPECT_FALSE(ParseDate("1998-12-0a").ok());
}

TEST(DateTest, AddMonthsClampsDayOfMonth) {
  EXPECT_EQ(AddMonths(DateFromYMD(1995, 1, 31), 1), DateFromYMD(1995, 2, 28));
  EXPECT_EQ(AddMonths(DateFromYMD(1996, 1, 31), 1), DateFromYMD(1996, 2, 29));
  EXPECT_EQ(AddMonths(DateFromYMD(1995, 11, 15), 2),
            DateFromYMD(1996, 1, 15));
  EXPECT_EQ(AddMonths(DateFromYMD(1995, 3, 10), -3),
            DateFromYMD(1994, 12, 10));
}

TEST(RowVectorTest, AppendAndReadAllTypes) {
  Schema s({Field::I32("a"), Field::I64("b"), Field::F64("c"),
            Field::Str("d", 8), Field::Date("e")});
  RowVectorPtr rv = RowVector::Make(s);
  RowWriter w = rv->AppendRow();
  w.SetInt32(0, -42);
  w.SetInt64(1, int64_t{1} << 40);
  w.SetFloat64(2, 3.5);
  w.SetString(3, "hello");
  w.SetDate(4, DateFromYMD(1994, 7, 1));

  RowRef r = rv->row(0);
  EXPECT_EQ(r.GetInt32(0), -42);
  EXPECT_EQ(r.GetInt64(1), int64_t{1} << 40);
  EXPECT_EQ(r.GetFloat64(2), 3.5);
  EXPECT_EQ(r.GetString(3), "hello");
  EXPECT_EQ(r.GetDate(4), DateFromYMD(1994, 7, 1));
}

TEST(RowVectorTest, StringTruncatesAtWidth) {
  Schema s({Field::Str("s", 4)});
  RowVectorPtr rv = RowVector::Make(s);
  rv->AppendRow().SetString(0, "abcdefgh");
  EXPECT_EQ(rv->row(0).GetString(0), "abcd");
}

TEST(RowVectorTest, AppendRawBatchAndAll) {
  RowVectorPtr a = RowVector::Make(KeyValueSchema());
  for (int i = 0; i < 10; ++i) {
    RowWriter w = a->AppendRow();
    w.SetInt64(0, i);
    w.SetInt64(1, i * i);
  }
  RowVectorPtr b = RowVector::Make(KeyValueSchema());
  b->AppendAll(*a);
  b->AppendRawBatch(a->data(), 5);
  ASSERT_EQ(b->size(), 15u);
  EXPECT_EQ(b->row(12).GetInt64(1), 4);
}

TEST(ColumnTableTest, RowVectorRoundTrip) {
  Schema s({Field::I64("k"), Field::Str("s", 10), Field::F64("x")});
  RowVectorPtr rows = RowVector::Make(s);
  for (int i = 0; i < 100; ++i) {
    RowWriter w = rows->AppendRow();
    w.SetInt64(0, i);
    w.SetString(1, "v" + std::to_string(i % 7));
    w.SetFloat64(2, i / 3.0);
  }
  ColumnTablePtr table = ColumnTable::FromRowVector(*rows);
  ASSERT_EQ(table->num_rows(), 100u);
  RowVectorPtr back = table->ToRowVector();
  ASSERT_EQ(back->size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(back->row(i).GetInt64(0), i);
    EXPECT_EQ(back->row(i).GetString(1), "v" + std::to_string(i % 7));
  }
}

TEST(ItemTest, KindsAndAccessors) {
  EXPECT_TRUE(Item().is_null());
  EXPECT_EQ(Item(int64_t{5}).i64(), 5);
  EXPECT_EQ(Item(2.5).f64(), 2.5);
  EXPECT_EQ(Item("abc").str(), "abc");
  EXPECT_EQ(Item(int64_t{5}).AsDouble(), 5.0);
  RowVectorPtr rv = RowVector::Make(KeyValueSchema());
  EXPECT_TRUE(Item(rv).is_collection());
  ColumnTablePtr ct = ColumnTable::Make(KeyValueSchema());
  EXPECT_TRUE(Item(ct).is_table());
}

TEST(TupleTest, EqualityAndAppend) {
  Tuple a{Item(int64_t{1}), Item("x")};
  Tuple b{Item(int64_t{1}), Item("x")};
  EXPECT_EQ(a, b);
  b.push_back(Item(2.0));
  EXPECT_FALSE(a == b);
  a.Append(Tuple{Item(2.0)});
  EXPECT_EQ(a, b);
}

TEST(OwnTupleTest, CopiesBorrowedRows) {
  RowVectorPtr rv = RowVector::Make(KeyValueSchema());
  RowWriter w = rv->AppendRow();
  w.SetInt64(0, 7);
  w.SetInt64(1, 8);
  Tuple borrowed{Item(rv->row(0)), Item(int64_t{1})};
  std::vector<RowVectorPtr> arena;
  Tuple owned = OwnTuple(borrowed, &arena);
  // Mutate the source; the owned copy must be unaffected.
  RowWriter w2(rv->mutable_row(0), &rv->schema());
  w2.SetInt64(0, 999);
  EXPECT_EQ(owned[0].row().GetInt64(0), 7);
  EXPECT_EQ(arena.size(), 1u);
}

TEST(TupleTypeTest, RecursiveStructureOfSection33) {
  // tuple := ⟨item, ...⟩; item := atom | collection⟨tuple⟩.
  Schema kv = KeyValueSchema();
  TupleTypePtr record = TupleTypeFromSchema(kv);
  EXPECT_EQ(record->size(), 2u);
  TupleTypePtr partition = TupleType::Make(
      {{"networkPartitionID", ItemType::Atom(AtomType::kInt64)},
       {"partitionData", ItemType::Collection("RowVector", record)}});
  EXPECT_EQ(partition->ToString(),
            "⟨networkPartitionID:i64, partitionData:RowVector⟨key:i64, "
            "value:i64⟩⟩");
  EXPECT_TRUE(partition->Equals(*partition));
  EXPECT_FALSE(partition->Equals(*record));

  // Atom-only tuple types convert back to schemas; nested ones do not.
  EXPECT_TRUE(SchemaFromTupleType(*record).ok());
  auto bad = SchemaFromTupleType(*partition);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusTest, CodesAndMacros) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::NotFound("thing");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: thing");

  auto fails = []() -> Status {
    MODULARIS_RETURN_NOT_OK(Status::IOError("disk"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kIOError);

  auto produce = []() -> Result<int> { return 41; };
  auto consume = [&]() -> Result<int> {
    MODULARIS_ASSIGN_OR_RETURN(int v, produce());
    return v + 1;
  };
  EXPECT_EQ(consume().value(), 42);
}

TEST(StatsTest, MergeAndMergeMaxSemantics) {
  StatsRegistry a, b;
  a.AddTime("t", 1.0);
  b.AddTime("t", 3.0);
  a.AddCounter("c", 5);
  b.AddCounter("c", 7);

  StatsRegistry sum;
  sum.Merge(a);
  sum.Merge(b);
  EXPECT_DOUBLE_EQ(sum.GetTime("t"), 4.0);
  EXPECT_EQ(sum.GetCounter("c"), 12);

  StatsRegistry mx;
  mx.MergeMax(a);
  mx.MergeMax(b);
  EXPECT_DOUBLE_EQ(mx.GetTime("t"), 3.0);  // phase time = slowest rank
  EXPECT_EQ(mx.GetCounter("c"), 12);       // counters accumulate
}

}  // namespace
}  // namespace modularis
