#include <algorithm>
#include <map>
#include <random>
#include <set>

#include <gtest/gtest.h>

#include "core/exec_context.h"
#include "core/pipeline.h"
#include "suboperators/agg_ops.h"
#include "suboperators/basic_ops.h"
#include "suboperators/join_ops.h"
#include "suboperators/partition_ops.h"
#include "suboperators/scan_ops.h"

namespace modularis {
namespace {

RowVectorPtr MakeKv(int64_t rows, int64_t key_space, uint32_t seed = 1) {
  RowVectorPtr data = RowVector::Make(KeyValueSchema());
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> dist(0, key_space - 1);
  for (int64_t i = 0; i < rows; ++i) {
    RowWriter w = data->AppendRow();
    w.SetInt64(0, dist(rng));
    w.SetInt64(1, i);
  }
  return data;
}

Result<std::vector<Tuple>> Drain(SubOperator* op) {
  ExecContext ctx;
  std::vector<RowVectorPtr> arena;
  MODULARIS_RETURN_NOT_OK(op->Open(&ctx));
  std::vector<Tuple> out;
  Tuple t;
  while (op->Next(&t)) out.push_back(OwnTuple(t, &arena));
  MODULARIS_RETURN_NOT_OK(op->status());
  MODULARIS_RETURN_NOT_OK(op->Close());
  // Keep the arena alive with the tuples.
  static thread_local std::vector<std::vector<RowVectorPtr>> keepalive;
  keepalive.push_back(std::move(arena));
  return out;
}

TEST(RowScanTest, StreamsEveryRecordOfEveryCollection) {
  RowScan scan(std::make_unique<CollectionSource>(
      std::vector<RowVectorPtr>{MakeKv(10, 100), MakeKv(5, 100, 2)}));
  auto rows = Drain(&scan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 15u);
}

TEST(RowScanTest, FailsOnNonCollectionItem) {
  RowScan scan(std::make_unique<TupleSource>(
      std::vector<Tuple>{Tuple{Item(int64_t{3})}}));
  auto rows = Drain(&scan);
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
}

TEST(ColumnScanTest, MaterializesRecordsFromColumnarTables) {
  ColumnTablePtr table = ColumnTable::FromRowVector(*MakeKv(20, 100));
  ColumnScan scan(std::make_unique<TupleSource>(
                      std::vector<Tuple>{Tuple{Item(table)}}),
                  KeyValueSchema());
  auto rows = Drain(&scan);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 20u);
  EXPECT_EQ((*rows)[3][0].row().GetInt64(1), 3);
}

TEST(MaterializeRowVectorTest, CollectsRowsCollectionsAndAtoms) {
  // Rows.
  {
    MaterializeRowVector mr(
        std::make_unique<RowScan>(std::make_unique<CollectionSource>(
            std::vector<RowVectorPtr>{MakeKv(7, 10)})),
        KeyValueSchema());
    auto out = Drain(&mr);
    ASSERT_TRUE(out.ok());
    ASSERT_EQ(out->size(), 1u);
    EXPECT_EQ((*out)[0][0].collection()->size(), 7u);
  }
  // Whole collections (fused form).
  {
    MaterializeRowVector mr(
        std::make_unique<CollectionSource>(
            std::vector<RowVectorPtr>{MakeKv(7, 10), MakeKv(3, 10)}),
        KeyValueSchema());
    auto out = Drain(&mr);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ((*out)[0][0].collection()->size(), 10u);
  }
  // Atom tuples (driver-side result assembly).
  {
    MaterializeRowVector mr(
        std::make_unique<TupleSource>(std::vector<Tuple>{
            Tuple{Item(int64_t{1}), Item(int64_t{2})},
            Tuple{Item(int64_t{3}), Item(int64_t{4})}}),
        KeyValueSchema());
    auto out = Drain(&mr);
    ASSERT_TRUE(out.ok());
    const RowVectorPtr& rv = (*out)[0][0].collection();
    ASSERT_EQ(rv->size(), 2u);
    EXPECT_EQ(rv->row(1).GetInt64(1), 4);
  }
}

TEST(ProjectionTest, ReordersTupleItems) {
  Projection proj(std::make_unique<TupleSource>(std::vector<Tuple>{
                      Tuple{Item(int64_t{1}), Item("a"), Item(2.0)}}),
                  {2, 0});
  auto out = Drain(&proj);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[0], (Tuple{Item(2.0), Item(int64_t{1})}));
}

TEST(FilterMapTest, FilterThenComputedColumns) {
  auto scan = std::make_unique<RowScan>(std::make_unique<CollectionSource>(
      std::vector<RowVectorPtr>{MakeKv(100, 50)}));
  auto filter = std::make_unique<Filter>(
      std::move(scan), ex::Lt(ex::Col(0), ex::Lit(int64_t{10})));
  Schema out_schema({Field::I64("key"), Field::I64("twice")});
  MapOp map(std::move(filter), out_schema,
            {MapOutput::Pass(0),
             MapOutput::Compute(ex::Mul(ex::Col(0), ex::Lit(int64_t{2})))});
  auto out = Drain(&map);
  ASSERT_TRUE(out.ok());
  ASSERT_GT(out->size(), 0u);
  for (const Tuple& t : *out) {
    RowRef r = t[0].row();
    EXPECT_LT(r.GetInt64(0), 10);
    EXPECT_EQ(r.GetInt64(1), r.GetInt64(0) * 2);
  }
}

TEST(ZipTest, ConcatenatesAlignedStreamsAndRejectsSkew) {
  {
    Zip zip(std::make_unique<TupleSource>(std::vector<Tuple>{
                Tuple{Item(int64_t{1})}, Tuple{Item(int64_t{2})}}),
            std::make_unique<TupleSource>(std::vector<Tuple>{
                Tuple{Item("a")}, Tuple{Item("b")}}));
    auto out = Drain(&zip);
    ASSERT_TRUE(out.ok());
    ASSERT_EQ(out->size(), 2u);
    EXPECT_EQ((*out)[1], (Tuple{Item(int64_t{2}), Item("b")}));
  }
  {
    Zip zip(std::make_unique<TupleSource>(std::vector<Tuple>{
                Tuple{Item(int64_t{1})}}),
            std::make_unique<TupleSource>(std::vector<Tuple>{}));
    auto out = Drain(&zip);
    EXPECT_FALSE(out.ok());
  }
}

TEST(CartesianProductTest, AttachesLeftTupleToEveryRightTuple) {
  CartesianProduct cp(
      std::make_unique<TupleSource>(
          std::vector<Tuple>{Tuple{Item(int64_t{42})}}),
      std::make_unique<TupleSource>(std::vector<Tuple>{
          Tuple{Item("x")}, Tuple{Item("y")}, Tuple{Item("z")}}));
  auto out = Drain(&cp);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_EQ((*out)[2], (Tuple{Item(int64_t{42}), Item("z")}));
}

TEST(NestedMapTest, RunsNestedPlanPerInputTuple) {
  // Nested plan: count the records of the parameter collection.
  auto nested = [] {
    auto rows = std::make_unique<RowScan>(
        std::make_unique<Projection>(std::make_unique<ParameterLookup>(),
                                     std::vector<int>{0}));
    return std::make_unique<Reduce>(
        std::move(rows),
        std::vector<AggSpec>{AggSpec{AggKind::kCount, nullptr, "n",
                                     AtomType::kInt64}},
        KeyValueSchema());
  }();
  NestedMap nm(std::make_unique<CollectionSource>(std::vector<RowVectorPtr>{
                   MakeKv(4, 10), MakeKv(9, 10)}),
               std::move(nested));
  auto out = Drain(&nm);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ((*out)[0][0].row().GetInt64(0), 4);
  EXPECT_EQ((*out)[1][0].row().GetInt64(0), 9);
}

TEST(ParameterLookupTest, FailsWithoutFrame) {
  ParameterLookup pl;
  auto out = Drain(&pl);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInternal);
}

class PartitionProperty : public ::testing::TestWithParam<int> {};

TEST_P(PartitionProperty, PartitionsAreCompleteAndKeyPure) {
  const int bits = GetParam();
  RowVectorPtr data = MakeKv(5000, 1 << 12, 7);
  RadixSpec spec{bits, 0, RadixHash::kIdentity};

  auto plan = std::make_unique<PipelinePlan>();
  plan->Add("lh", std::make_unique<LocalHistogram>(
                      std::make_unique<CollectionSource>(
                          std::vector<RowVectorPtr>{data}),
                      spec, 0));
  plan->SetOutput(std::make_unique<LocalPartition>(
      std::make_unique<CollectionSource>(std::vector<RowVectorPtr>{data}),
      plan->MakeRef("lh"), spec, 0));

  auto out = Drain(plan.get());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), static_cast<size_t>(spec.fanout()));

  // Property 1: every record lands in the partition its key maps to.
  // Property 2: the multiset of values is preserved.
  std::multiset<int64_t> in_values, out_values;
  for (size_t i = 0; i < data->size(); ++i) {
    in_values.insert(data->row(i).GetInt64(1));
  }
  for (const Tuple& t : *out) {
    int64_t pid = t[0].i64();
    const RowVectorPtr& part = t[1].collection();
    for (size_t i = 0; i < part->size(); ++i) {
      EXPECT_EQ(spec.PartitionOf(part->row(i).GetInt64(0)),
                static_cast<uint32_t>(pid));
      out_values.insert(part->row(i).GetInt64(1));
    }
  }
  EXPECT_EQ(in_values, out_values);
}

INSTANTIATE_TEST_SUITE_P(RadixBits, PartitionProperty,
                         ::testing::Values(1, 3, 5, 8));

TEST(LocalHistogramTest, CountsMatchPartitionSizes) {
  RowVectorPtr data = MakeKv(1000, 64, 3);
  RadixSpec spec{4, 0, RadixHash::kMix};
  LocalHistogram lh(std::make_unique<CollectionSource>(
                        std::vector<RowVectorPtr>{data}),
                    spec, 0);
  auto out = Drain(&lh);
  ASSERT_TRUE(out.ok());
  const RowVectorPtr& hist = (*out)[0][0].collection();
  int64_t total = 0;
  for (size_t i = 0; i < hist->size(); ++i) {
    total += hist->row(i).GetInt64(0);
  }
  EXPECT_EQ(total, 1000);
}

TEST(GroupByPidTest, MergesChunksWithoutMutatingShared) {
  RowVectorPtr a = MakeKv(3, 10, 1);
  RowVectorPtr b = MakeKv(4, 10, 2);
  GroupByPid gb(std::make_unique<TupleSource>(std::vector<Tuple>{
      Tuple{Item(int64_t{1}), Item(a)}, Tuple{Item(int64_t{0}), Item(b)},
      Tuple{Item(int64_t{1}), Item(b)}}));
  auto out = Drain(&gb);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ((*out)[0][0].i64(), 0);
  EXPECT_EQ((*out)[0][1].collection()->size(), 4u);
  EXPECT_EQ((*out)[1][1].collection()->size(), 7u);
  // Copy-on-write: the shared inputs must not have grown.
  EXPECT_EQ(a->size(), 3u);
  EXPECT_EQ(b->size(), 4u);
}

TEST(JoinHashTableTest, DuplicateChainsAndMisses) {
  JoinHashTable table;
  table.Reserve(8);
  table.Insert(5, 0);
  table.Insert(5, 1);
  table.Insert(9, 2);
  std::set<uint32_t> rows;
  for (uint32_t e = table.Find(5); e != JoinHashTable::kNone;
       e = table.NextMatch(e)) {
    rows.insert(table.RowOf(e));
  }
  EXPECT_EQ(rows, (std::set<uint32_t>{0, 1}));
  EXPECT_EQ(table.Find(6), JoinHashTable::kNone);
  // Growth keeps entries reachable.
  for (int64_t k = 100; k < 400; ++k) table.Insert(k, static_cast<uint32_t>(k));
  EXPECT_NE(table.Find(5), JoinHashTable::kNone);
  EXPECT_NE(table.Find(399), JoinHashTable::kNone);
}

TEST(BuildProbeTest, InnerEmitsConcatenatedRows) {
  RowVectorPtr build = RowVector::Make(KeyValueSchema());
  RowVectorPtr probe = RowVector::Make(KeyValueSchema());
  for (int64_t k = 0; k < 50; ++k) {
    RowWriter wb = build->AppendRow();
    wb.SetInt64(0, k);
    wb.SetInt64(1, k * 10);
    RowWriter wp = probe->AppendRow();
    wp.SetInt64(0, k % 25);  // keys 0..24 match twice
    wp.SetInt64(1, k);
  }
  BuildProbe bp(std::make_unique<CollectionSource>(
                    std::vector<RowVectorPtr>{build}),
                std::make_unique<CollectionSource>(
                    std::vector<RowVectorPtr>{probe}),
                KeyValueSchema(), KeyValueSchema(), 0, 0);
  auto out = Drain(&bp);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 50u);  // every probe row matches exactly one key
  for (const Tuple& t : *out) {
    RowRef r = t[0].row();
    EXPECT_EQ(r.GetInt64(1), r.GetInt64(0) * 10);  // build payload
    EXPECT_EQ(r.GetInt64(2), r.GetInt64(0));       // probe key copy
  }
}

TEST(BuildProbeTest, EmptySidesYieldNoOutput) {
  for (bool empty_build : {true, false}) {
    BuildProbe bp(
        std::make_unique<CollectionSource>(std::vector<RowVectorPtr>{
            empty_build ? RowVector::Make(KeyValueSchema()) : MakeKv(5, 5)}),
        std::make_unique<CollectionSource>(std::vector<RowVectorPtr>{
            empty_build ? MakeKv(5, 5) : RowVector::Make(KeyValueSchema())}),
        KeyValueSchema(), KeyValueSchema(), 0, 0);
    auto out = Drain(&bp);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->size(), 0u);
  }
}

TEST(ReduceByKeyTest, MultiColumnStringKeys) {
  Schema schema({Field::Str("a", 4), Field::Str("b", 4), Field::F64("x")});
  RowVectorPtr data = RowVector::Make(schema);
  const char* as[] = {"p", "q"};
  const char* bs[] = {"u", "v", "w"};
  for (int i = 0; i < 120; ++i) {
    RowWriter w = data->AppendRow();
    w.SetString(0, as[i % 2]);
    w.SetString(1, bs[i % 3]);
    w.SetFloat64(2, 1.0);
  }
  ReduceByKey rk(std::make_unique<CollectionSource>(
                     std::vector<RowVectorPtr>{data}),
                 {0, 1},
                 {AggSpec{AggKind::kSum, ex::Col(2), "sum",
                          AtomType::kFloat64},
                  AggSpec{AggKind::kCount, nullptr, "n", AtomType::kInt64}},
                 schema);
  auto out = Drain(&rk);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 6u);  // 2 x 3 key combinations
  for (const Tuple& t : *out) {
    EXPECT_EQ(t[0].row().GetFloat64(2), 20.0);
    EXPECT_EQ(t[0].row().GetInt64(3), 20);
  }
}

TEST(ReduceByKeyTest, MinMaxAggregates) {
  RowVectorPtr data = MakeKv(1000, 4, 9);
  ReduceByKey rk(std::make_unique<CollectionSource>(
                     std::vector<RowVectorPtr>{data}),
                 {0},
                 {AggSpec{AggKind::kMin, ex::Col(1), "lo", AtomType::kInt64},
                  AggSpec{AggKind::kMax, ex::Col(1), "hi",
                          AtomType::kInt64}},
                 KeyValueSchema());
  auto out = Drain(&rk);
  ASSERT_TRUE(out.ok());
  std::map<int64_t, std::pair<int64_t, int64_t>> expected;
  for (size_t i = 0; i < data->size(); ++i) {
    int64_t k = data->row(i).GetInt64(0), v = data->row(i).GetInt64(1);
    auto it = expected.find(k);
    if (it == expected.end()) {
      expected[k] = {v, v};
    } else {
      it->second.first = std::min(it->second.first, v);
      it->second.second = std::max(it->second.second, v);
    }
  }
  ASSERT_EQ(out->size(), expected.size());
  for (const Tuple& t : *out) {
    RowRef r = t[0].row();
    EXPECT_EQ(r.GetInt64(1), expected[r.GetInt64(0)].first);
    EXPECT_EQ(r.GetInt64(2), expected[r.GetInt64(0)].second);
  }
}

TEST(ReduceTest, EmptyInputEmitsIdentityRow) {
  Reduce reduce(std::make_unique<CollectionSource>(std::vector<RowVectorPtr>{
                    RowVector::Make(KeyValueSchema())}),
                {AggSpec{AggKind::kCount, nullptr, "n", AtomType::kInt64},
                 AggSpec{AggKind::kSum, ex::Col(1), "s", AtomType::kInt64}},
                KeyValueSchema());
  auto out = Drain(&reduce);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0][0].row().GetInt64(0), 0);
  EXPECT_EQ((*out)[0][0].row().GetInt64(1), 0);
}

TEST(SortTopKTest, OrderingAndLimit) {
  RowVectorPtr data = MakeKv(500, 1000, 11);
  std::vector<SortKey> keys = {{1, true}};  // value desc
  SortOp sort(std::make_unique<CollectionSource>(
                  std::vector<RowVectorPtr>{data}),
              keys, KeyValueSchema());
  auto sorted = Drain(&sort);
  ASSERT_TRUE(sorted.ok());
  ASSERT_EQ(sorted->size(), 500u);
  for (size_t i = 1; i < sorted->size(); ++i) {
    EXPECT_GE((*sorted)[i - 1][0].row().GetInt64(1),
              (*sorted)[i][0].row().GetInt64(1));
  }

  TopK topk(std::make_unique<CollectionSource>(
                std::vector<RowVectorPtr>{data}),
            keys, 10, KeyValueSchema());
  auto top = Drain(&topk);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ((*top)[i][0].row().GetInt64(1),
              (*sorted)[i][0].row().GetInt64(1));
  }
}

TEST(PipelinePlanTest, RefsReadEarlierPipelinesAndReexecute) {
  auto plan = std::make_unique<PipelinePlan>();
  plan->Add("src", std::make_unique<CollectionSource>(
                       std::vector<RowVectorPtr>{MakeKv(10, 10)}));
  // Two consumers of the same materialized pipeline.
  plan->SetOutput(std::make_unique<Zip>(plan->MakeRef("src"),
                                        plan->MakeRef("src")));
  auto out = Drain(plan.get());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].size(), 2u);

  // Re-opening re-executes all pipelines (NestedMap contract).
  auto out2 = Drain(plan.get());
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(out2->size(), 1u);
}

TEST(PipelinePlanTest, MissingPipelineIsAnError) {
  auto plan = std::make_unique<PipelinePlan>();
  plan->SetOutput(plan->MakeRef("never_added"));
  auto out = Drain(plan.get());
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace modularis
