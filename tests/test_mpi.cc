#include <atomic>
#include <numeric>
#include <thread>

#include <gtest/gtest.h>

#include "core/exec_context.h"
#include "mpi/mpi_ops.h"
#include "suboperators/partition_ops.h"
#include "suboperators/scan_ops.h"

namespace modularis {
namespace {

net::FabricOptions Unthrottled() {
  net::FabricOptions o;
  o.throttle = false;
  return o;
}

TEST(FabricTest, PutLandsInRemoteWindow) {
  net::Fabric fabric(2, Unthrottled());
  net::WindowId win = fabric.RegisterWindow(1, 64);
  uint64_t payload = 0xDEADBEEFu;
  ASSERT_TRUE(fabric.Put(0, 1, win, 8, &payload, sizeof(payload)).ok());
  ASSERT_TRUE(fabric.Flush(0).ok());
  uint64_t read;
  std::memcpy(&read, fabric.WindowData(1, win) + 8, sizeof(read));
  EXPECT_EQ(read, payload);
  EXPECT_EQ(fabric.bytes_sent(0), 8);
  EXPECT_GT(fabric.charged_seconds(0), 0);
}

TEST(FabricTest, PutBeyondWindowFails) {
  net::Fabric fabric(2, Unthrottled());
  net::WindowId win = fabric.RegisterWindow(1, 16);
  uint64_t payload = 1;
  Status st = fabric.Put(0, 1, win, 12, &payload, sizeof(payload));
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
}

TEST(FabricTest, PutIntoFreedWindowFails) {
  net::Fabric fabric(2, Unthrottled());
  net::WindowId win = fabric.RegisterWindow(1, 16);
  fabric.FreeWindow(1, win);
  uint64_t payload = 1;
  EXPECT_FALSE(fabric.Put(0, 1, win, 0, &payload, 8).ok());
}

TEST(FabricTest, ChargeModelIsLatencyPlusBandwidth) {
  net::FabricOptions opts;
  opts.throttle = false;
  opts.latency_seconds = 1e-3;
  opts.bandwidth_bytes_per_sec = 1e6;
  net::Fabric fabric(2, opts);
  fabric.Charge(0, 500'000);  // 0.5 s transfer + 1 ms latency
  EXPECT_NEAR(fabric.charged_seconds(0), 0.501, 1e-9);
  fabric.ResetStats();
  EXPECT_EQ(fabric.charged_seconds(0), 0);
}

TEST(FabricTest, ConcurrentPutsFromOneRankAreSafe) {
  // Worker threads of one rank issue Puts concurrently (the pipelined
  // exchange schedule): every byte must land, and the per-NIC bookkeeping
  // — bytes, message count, busy-clock — must account for all of them.
  const int kThreads = 4, kPerThread = 64;
  // A deliberately slow modelled NIC (1 ms/message) keeps the busy clock
  // far ahead of wall time even on a loaded machine, so the Flush residue
  // assertion below cannot evaporate; throttle=false means no real sleeps.
  net::FabricOptions slow = Unthrottled();
  slow.latency_seconds = 1e-3;
  net::Fabric fabric(2, slow);
  net::WindowId win = fabric.RegisterWindow(1, kThreads * kPerThread * 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int64_t value = t * kPerThread + i;
        ASSERT_TRUE(
            fabric.Put(0, 1, win, value * 8, &value, sizeof(value)).ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_TRUE(fabric.Flush(0).ok());
  for (int64_t v = 0; v < kThreads * kPerThread; ++v) {
    int64_t got;
    std::memcpy(&got, fabric.WindowData(1, win) + v * 8, sizeof(got));
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(fabric.bytes_sent(0), kThreads * kPerThread * 8);
  EXPECT_EQ(fabric.msgs_sent(0), kThreads * kPerThread);
  EXPECT_GT(fabric.charged_seconds(0), 0);
  // The unthrottled Flush recorded the busy-clock residue as stall
  // without sleeping it off.
  EXPECT_GT(fabric.stall_seconds(0), 0);
}

TEST(FabricTest, TwoSidedSendRecv) {
  net::Fabric fabric(2, Unthrottled());
  std::vector<uint8_t> msg = {1, 2, 3};
  ASSERT_TRUE(fabric.Send(0, 1, msg).ok());
  std::vector<uint8_t> got;
  ASSERT_TRUE(fabric.Recv(1, 0, &got).ok());
  EXPECT_EQ(got, msg);
}

class CollectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveTest, AllreduceSumsAcrossRanks) {
  const int world = GetParam();
  std::vector<std::vector<int64_t>> results(world);
  Status st = mpi::MpiRuntime::Run(
      world, Unthrottled(), [&](mpi::Communicator& comm) -> Status {
        std::vector<int64_t> v = {comm.rank() + 1, 10};
        MODULARIS_RETURN_NOT_OK(comm.AllreduceSum(&v));
        results[comm.rank()] = v;
        // A second collective immediately after must not see stale state.
        std::vector<int64_t> w = {1};
        MODULARIS_RETURN_NOT_OK(comm.AllreduceSum(&w));
        if (w[0] != comm.size()) {
          return Status::Internal("second allreduce corrupted");
        }
        return Status::OK();
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
  int64_t expected = world * (world + 1) / 2;
  for (int r = 0; r < world; ++r) {
    EXPECT_EQ(results[r][0], expected);
    EXPECT_EQ(results[r][1], 10 * world);
  }
}

TEST_P(CollectiveTest, AllgatherReturnsEveryRanksVector) {
  const int world = GetParam();
  Status st = mpi::MpiRuntime::Run(
      world, Unthrottled(), [&](mpi::Communicator& comm) -> Status {
        std::vector<std::vector<int64_t>> all;
        MODULARIS_RETURN_NOT_OK(comm.AllgatherI64({comm.rank() * 100}, &all));
        if (static_cast<int>(all.size()) != comm.size()) {
          return Status::Internal("wrong world size");
        }
        for (int r = 0; r < comm.size(); ++r) {
          if (all[r] != std::vector<int64_t>{r * 100}) {
            return Status::Internal("wrong payload");
          }
        }
        return Status::OK();
      });
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST_P(CollectiveTest, AllgatherBytes) {
  const int world = GetParam();
  Status st = mpi::MpiRuntime::Run(
      world, Unthrottled(), [&](mpi::Communicator& comm) -> Status {
        std::vector<uint8_t> mine(static_cast<size_t>(comm.rank()) + 1,
                                  static_cast<uint8_t>(comm.rank()));
        std::vector<std::vector<uint8_t>> all;
        MODULARIS_RETURN_NOT_OK(comm.AllgatherBytes(mine, &all));
        for (int r = 0; r < comm.size(); ++r) {
          if (all[r].size() != static_cast<size_t>(r) + 1) {
            return Status::Internal("wrong size");
          }
        }
        return Status::OK();
      });
  EXPECT_TRUE(st.ok()) << st.ToString();
}

INSTANTIATE_TEST_SUITE_P(Worlds, CollectiveTest,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(CollectiveTest, BarrierSynchronizesAllRanks) {
  const int world = 4;
  std::atomic<int> arrived{0};
  std::atomic<bool> violated{false};
  Status st = mpi::MpiRuntime::Run(
      world, Unthrottled(), [&](mpi::Communicator& comm) -> Status {
        arrived.fetch_add(1);
        MODULARIS_RETURN_NOT_OK(comm.Barrier());
        if (arrived.load() != world) violated = true;
        return Status::OK();
      });
  ASSERT_TRUE(st.ok());
  EXPECT_FALSE(violated.load());
}

TEST(CollectiveTest, RankFailurePropagates) {
  Status st = mpi::MpiRuntime::Run(
      2, Unthrottled(), [&](mpi::Communicator& comm) -> Status {
        if (comm.rank() == 1) return Status::Aborted("rank 1 died");
        return Status::OK();
      });
  EXPECT_EQ(st.code(), StatusCode::kAborted);
}

TEST(WindowTest, OneSidedExchangeAcrossRanks) {
  // Every rank writes its rank id into every peer's window at its slot.
  const int world = 4;
  Status st = mpi::MpiRuntime::Run(
      world, Unthrottled(), [&](mpi::Communicator& comm) -> Status {
        MODULARIS_ASSIGN_OR_RETURN(net::WindowId win,
                                   comm.WinAllocate(world * 8));
        for (int peer = 0; peer < comm.size(); ++peer) {
          int64_t value = comm.rank();
          MODULARIS_RETURN_NOT_OK(
              comm.WinPut(peer, win, comm.rank() * 8, &value, 8));
        }
        MODULARIS_RETURN_NOT_OK(comm.WinFlush());
        MODULARIS_RETURN_NOT_OK(comm.Barrier());
        for (int r = 0; r < comm.size(); ++r) {
          int64_t got;
          std::memcpy(&got, comm.WinData(win) + r * 8, 8);
          if (got != r) return Status::Internal("bad window content");
        }
        return comm.WinFree(win);
      });
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(MpiBroadcastTest, ReplicatesUnionEverywhere) {
  const int world = 3;
  std::vector<size_t> sizes(world);
  Status st = mpi::MpiRuntime::Run(
      world, Unthrottled(), [&](mpi::Communicator& comm) -> Status {
        RowVectorPtr local = RowVector::Make(KeyValueSchema());
        for (int i = 0; i <= comm.rank(); ++i) {
          RowWriter w = local->AppendRow();
          w.SetInt64(0, comm.rank());
          w.SetInt64(1, i);
        }
        ExecContext ctx;
        ctx.rank = comm.rank();
        ctx.world = comm.size();
        ctx.comm = &comm;
        MpiBroadcast bcast(std::make_unique<CollectionSource>(
                               std::vector<RowVectorPtr>{local}),
                           KeyValueSchema());
        MODULARIS_RETURN_NOT_OK(bcast.Open(&ctx));
        Tuple t;
        if (!bcast.Next(&t)) return Status::Internal("no broadcast output");
        sizes[comm.rank()] = t[0].collection()->size();
        return bcast.Close();
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
  for (int r = 0; r < world; ++r) {
    EXPECT_EQ(sizes[r], 6u);  // 1 + 2 + 3 rows from the three ranks
  }
}

TEST(MpiBroadcastTest, NextBatchServesUnionNatively) {
  const int world = 3;
  std::vector<size_t> sizes(world);
  std::vector<StatsRegistry> rank_stats(world);
  Status st = mpi::MpiRuntime::Run(
      world, Unthrottled(), [&](mpi::Communicator& comm) -> Status {
        RowVectorPtr local = RowVector::Make(KeyValueSchema());
        for (int i = 0; i <= comm.rank(); ++i) {
          RowWriter w = local->AppendRow();
          w.SetInt64(0, comm.rank());
          w.SetInt64(1, i);
        }
        ExecContext ctx;
        ctx.rank = comm.rank();
        ctx.world = comm.size();
        ctx.comm = &comm;
        ctx.stats = &rank_stats[comm.rank()];
        MpiBroadcast bcast(std::make_unique<CollectionSource>(
                               std::vector<RowVectorPtr>{local}),
                           KeyValueSchema());
        MODULARIS_RETURN_NOT_OK(bcast.Open(&ctx));
        RowBatch batch;
        size_t rows = 0;
        while (bcast.NextBatch(&batch)) rows += batch.size();
        MODULARIS_RETURN_NOT_OK(bcast.status());
        sizes[comm.rank()] = rows;
        return bcast.Close();
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
  for (int r = 0; r < world; ++r) {
    EXPECT_EQ(sizes[r], 6u);  // 1 + 2 + 3 rows from the three ranks
    EXPECT_EQ(rank_stats[r].GetCounter(
                  "vectorized.default_adapter.MpiBroadcast"),
              0)
        << "MpiBroadcast fell back to the default batch adapter";
  }
}

TEST(CompressionTest, RoundTripsKeyValuePairs) {
  const int F = 6, P = 29;
  for (int64_t key : {int64_t{0}, int64_t{63}, int64_t{1} << 20,
                      (int64_t{1} << 29) - 1}) {
    for (int64_t value : {int64_t{0}, int64_t{12345},
                          (int64_t{1} << 29) - 1}) {
      int64_t pid = key & ((1 << F) - 1);
      int64_t word = CompressKV(key, value, F, P);
      int64_t k, v;
      DecompressKV(word, pid, F, P, &k, &v);
      EXPECT_EQ(k, key);
      EXPECT_EQ(v, value);
    }
  }
}

TEST(MpiExchangeTest, RejectsCompressionOfNonKvSchemas) {
  Status st = mpi::MpiRuntime::Run(
      1, Unthrottled(), [&](mpi::Communicator& comm) -> Status {
        Schema wide({Field::I64("k"), Field::I64("v"), Field::I64("w")});
        RowVectorPtr data = RowVector::Make(wide);
        ExecContext ctx;
        ctx.comm = &comm;
        RowVectorPtr hist = RowVector::Make(HistogramSchema());
        for (int i = 0; i < 16; ++i) hist->AppendRow().SetInt64(0, 0);
        MpiExchange::Options xopts;
        xopts.spec = RadixSpec{4, 0, RadixHash::kIdentity};
        xopts.compress = true;
        MpiExchange mx(
            std::make_unique<CollectionSource>(
                std::vector<RowVectorPtr>{data}),
            std::make_unique<CollectionSource>(
                std::vector<RowVectorPtr>{hist}),
            std::make_unique<CollectionSource>(
                std::vector<RowVectorPtr>{hist}),
            xopts);
        MODULARIS_RETURN_NOT_OK(mx.Open(&ctx));
        Tuple t;
        if (mx.Next(&t)) return Status::Internal("should have failed");
        return mx.status();
      });
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace modularis
