#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mpi/tcp_exchange.h"
#include "planner/explain.h"
#include "planner/passes.h"
#include "plans/common.h"
#include "suboperators/agg_ops.h"
#include "suboperators/join_ops.h"
#include "suboperators/partition_ops.h"
#include "tpch/queries.h"

/// \file test_planner.cc
/// The planner's correctness contract, in three layers:
///
///  1. Differential oracle: the eight TPC-H queries are built BOTH ways —
///     through the planner (logical plan → Optimize → lower) and through
///     a frozen verbatim copy of the pre-planner hand-wired plan
///     builders — and the results are compared byte-for-byte on all
///     three transports (MPI, TCP, S3) at 1 and 4 intra-rank threads.
///     Q19 is the documented exception: the cost-based join-order pass
///     builds on part' instead of lineitem' (measured no worse), which
///     permutes the float summation order, so Q19 is compared
///     value-tolerantly instead.
///  2. Golden plan shapes: EXPLAIN output (logical, optimized and the
///     physical DAG per transport) diffed against snapshots under
///     tests/golden/planner/. Regenerate with MODULARIS_UPDATE_GOLDENS=1.
///  3. Seeded fuzz: random logical plans over the TPC-H tables lowered
///     twice — optimized and directly from the authored tree — must
///     produce byte-identical results.

namespace modularis::tpch {
namespace {

using plans::MaybeScan;
using plans::ParamItem;

const TpchTables& Db() {
  static TpchTables db = [] {
    GeneratorOptions gen;
    gen.scale_factor = 0.01;  // ~60k lineitem rows
    gen.seed = 7;
    return GenerateTpch(gen);
  }();
  return db;
}

TpchRunOptions Unthrottled(TpchRunOptions opts) {
  opts.fabric.throttle = false;
  opts.lambda.throttle = false;
  opts.lambda.s3.throttle = false;
  opts.storage.throttle = false;
  opts.s3select.throttle = false;
  return opts;
}

void ExpectBytesEqual(const RowVector& expected, const RowVector& actual) {
  ASSERT_TRUE(expected.schema().Equals(actual.schema()))
      << expected.schema().ToString() << " vs " << actual.schema().ToString();
  ASSERT_EQ(expected.size(), actual.size());
  if (expected.byte_size() == actual.byte_size() &&
      std::memcmp(expected.data(), actual.data(), expected.byte_size()) == 0) {
    return;
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    if (std::memcmp(expected.row(i).data(), actual.row(i).data(),
                    expected.row_size()) != 0) {
      FAIL() << "first byte difference at row " << i << " of "
             << expected.size();
    }
  }
  FAIL() << "byte difference outside row payloads";
}

/// Value-tolerant comparison for the one query whose float summation
/// order legitimately changes under the join-order pass (Q19).
void ExpectRowsNear(const RowVector& expected, const RowVector& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  ASSERT_TRUE(expected.schema().Equals(actual.schema()));
  for (size_t i = 0; i < expected.size(); ++i) {
    RowRef e = expected.row(i);
    RowRef a = actual.row(i);
    for (size_t c = 0; c < expected.schema().num_fields(); ++c) {
      int col = static_cast<int>(c);
      switch (expected.schema().field(c).type) {
        case AtomType::kInt32:
        case AtomType::kDate:
          ASSERT_EQ(e.GetInt32(col), a.GetInt32(col));
          break;
        case AtomType::kInt64:
          ASSERT_EQ(e.GetInt64(col), a.GetInt64(col));
          break;
        case AtomType::kFloat64: {
          double x = e.GetFloat64(col), y = a.GetFloat64(col);
          double tol = 1e-6 * std::max({1.0, std::fabs(x), std::fabs(y)});
          ASSERT_NEAR(x, y, tol);
          break;
        }
        case AtomType::kString:
          ASSERT_EQ(e.GetString(col), a.GetString(col));
          break;
      }
    }
  }
}

// ===========================================================================
// Frozen pre-planner plan builders — the differential oracle.
//
// This is a verbatim copy of the hand-wired plan construction that lived
// in tpch/queries.cc before the planner existed (commit b329e91), adapted
// only to the public TpchPlanEnv/TpchQuerySpec seam. It must NOT be
// "cleaned up" or routed through planner code: its whole value is being
// an independent record of the plan shapes the lowering must reproduce.
// ===========================================================================

using Env = TpchPlanEnv;

enum TableId { kLineitem = 0, kOrdersT = 1, kCustomerT = 2, kPartT = 3 };

Schema FullSchema(int table) {
  switch (table) {
    case kLineitem: return LineitemSchema();
    case kOrdersT: return OrdersSchema();
    case kCustomerT: return CustomerSchema();
    case kPartT: return PartSchema();
  }
  return Schema();
}

int Log2Exact(int v) {
  int bits = 0;
  while ((1 << bits) < v) ++bits;
  return bits;
}

/// One base-table leaf: projection (full-schema indices), residual filter
/// (over the pruned schema) and row-group pruning ranges (full-schema
/// column indices).
struct TableInput {
  int table = kLineitem;
  std::vector<int> cols;
  ExprPtr filter;
  std::vector<ColumnFileScan::Range> ranges;
};

Schema PrunedSchema(const TableInput& in) {
  return FullSchema(in.table).Select(in.cols);
}

void AddInput(PipelinePlan* plan, const std::string& name,
              const TableInput& in, const Env& env) {
  Schema pruned = PrunedSchema(in);
  SubOpPtr rows;
  switch (env.platform) {
    case Platform::kRdma: {
      std::vector<MapOutput> prune;
      prune.reserve(in.cols.size());
      for (int c : in.cols) prune.push_back(MapOutput::Pass(c));
      rows = std::make_unique<MapOp>(
          std::make_unique<RowScan>(ParamItem(in.table)), pruned,
          std::move(prune));
      break;
    }
    case Platform::kRdmaDisc:
    case Platform::kLambda: {
      ColumnFileScan::Options copts;
      copts.projection = in.cols;
      copts.ranges = in.ranges;
      rows = std::make_unique<ColumnScan>(
          std::make_unique<ColumnFileScan>(ParamItem(in.table), copts),
          pruned);
      break;
    }
    case Platform::kS3Select: {
      S3SelectRequest::Options sopts;
      sopts.object_schema = FullSchema(in.table);
      sopts.projection = in.cols;
      sopts.predicate = in.filter;
      plan->Add(name, std::make_unique<TableToCollection>(
                          std::make_unique<S3SelectRequest>(
                              ParamItem(in.table), std::move(sopts))));
      return;
    }
  }
  if (in.filter != nullptr) {
    rows = std::make_unique<Filter>(std::move(rows), in.filter);
  }
  plan->Add(name, std::make_unique<MaterializeRowVector>(std::move(rows),
                                                         pruned));
}

std::string AddExchange(PipelinePlan* plan, Env* env, const std::string& src,
                        int key_col) {
  std::string base = src + "_x" + std::to_string(env->next_exchange++);
  if (!env->serverless() && env->exec.tcp_exchange) {
    TcpExchange::Options topts;
    topts.key_col = key_col;
    plan->Add(base + "_tcp",
              std::make_unique<TcpExchange>(
                  MaybeScan(plan->MakeRef(src), env->fused), topts));
    return base + "_tcp";
  }
  if (!env->serverless()) {
    RadixSpec spec;
    spec.bits = env->exec.network_radix_bits;
    spec.shift = 0;
    spec.hash = RadixHash::kMix;
    plan->Add(base + "_lh",
              std::make_unique<LocalHistogram>(
                  MaybeScan(plan->MakeRef(src), env->fused), spec, key_col));
    plan->Add(base + "_mh",
              std::make_unique<MpiHistogram>(plan->MakeRef(base + "_lh")));
    MpiExchange::Options xopts;
    xopts.spec = spec;
    xopts.key_col = key_col;
    xopts.compress = false;
    xopts.buffer_bytes = env->exec.exchange_buffer_bytes;
    plan->Add(base + "_mx",
              std::make_unique<MpiExchange>(
                  MaybeScan(plan->MakeRef(src), env->fused),
                  plan->MakeRef(base + "_lh"),
                  plan->MakeRef(base + "_mh"), xopts));
    return base + "_mx";
  }
  RadixSpec spec;
  spec.bits = Log2Exact(env->world);
  spec.shift = 0;
  spec.hash = RadixHash::kMix;
  plan->Add(base + "_part",
            std::make_unique<GroupByPid>(std::make_unique<PartitionOp>(
                MaybeScan(plan->MakeRef(src), env->fused), spec, key_col)));
  S3Exchange::Options xopts;
  xopts.prefix = env->tag + "/" + base;
  xopts.write_combining = env->exec.s3_write_combining;
  xopts.retry = env->exec.retry;
  plan->Add(base + "_s3x", std::make_unique<S3Exchange>(
                               plan->MakeRef(base + "_part"), xopts));
  return base + "_s3x";
}

SubOpPtr ExchangedData(PipelinePlan* plan, const Env& env,
                       const std::string& xpipe, int param_item) {
  if (!env.serverless()) {
    return MaybeScan(ParamItem(param_item), env.fused);
  }
  ColumnFileScan::Options copts;
  copts.retry = env.exec.retry;
  return std::make_unique<TableToCollection>(std::make_unique<ColumnFileScan>(
      plan->MakeRef(xpipe), std::move(copts)));
}

void AddJoin(PipelinePlan* plan, Env* env, const std::string& out_name,
             const std::string& build_pipe, const Schema& build_schema,
             int build_key, const std::string& probe_pipe,
             const Schema& probe_schema, int probe_key, JoinType type,
             ExprPtr post_filter, std::vector<MapOutput> post,
             const Schema& out_schema, bool allow_broadcast = true) {
  auto finish = [&](SubOpPtr cur) -> SubOpPtr {
    if (post_filter != nullptr) {
      cur = std::make_unique<Filter>(std::move(cur), post_filter);
    }
    if (!post.empty()) {
      cur = std::make_unique<MapOp>(std::move(cur), out_schema,
                                    std::move(post));
    }
    return std::make_unique<MaterializeRowVector>(std::move(cur),
                                                  out_schema);
  };

  if (!env->serverless() && env->exec.broadcast_small_build &&
      allow_broadcast) {
    std::string bx = build_pipe + "_bcast" +
                     std::to_string(env->next_exchange++);
    plan->Add(bx, std::make_unique<MpiBroadcast>(
                      MaybeScan(plan->MakeRef(build_pipe), env->fused),
                      build_schema));
    auto bp = std::make_unique<BuildProbe>(
        MaybeScan(plan->MakeRef(bx), env->fused),
        MaybeScan(plan->MakeRef(probe_pipe), env->fused), build_schema,
        probe_schema, build_key, probe_key, type);
    plan->Add(out_name, finish(std::move(bp)));
    return;
  }

  std::string xb = AddExchange(plan, env, build_pipe, build_key);
  std::string xp = AddExchange(plan, env, probe_pipe, probe_key);

  if (!env->serverless()) {
    auto nested = finish(std::make_unique<BuildProbe>(
        MaybeScan(ParamItem(1), env->fused), MaybeScan(ParamItem(3),
                                                       env->fused),
        build_schema, probe_schema, build_key, probe_key, type));
    auto zip = std::make_unique<Zip>(plan->MakeRef(xb), plan->MakeRef(xp));
    auto nm = std::make_unique<NestedMap>(std::move(zip), std::move(nested));
    plan->Add(out_name, std::make_unique<MaterializeRowVector>(
                            MaybeScan(std::move(nm), env->fused), out_schema));
    return;
  }
  auto bp = std::make_unique<BuildProbe>(
      ExchangedData(plan, *env, xb, 1), ExchangedData(plan, *env, xp, 3),
      build_schema, probe_schema, build_key, probe_key, type);
  plan->Add(out_name, finish(std::move(bp)));
}

void AddShuffledAgg(PipelinePlan* plan, Env* env, const std::string& out_name,
                    const std::string& in_pipe, const Schema& in_schema,
                    int key_col, std::vector<int> keys,
                    std::vector<AggSpec> aggs, ExprPtr having,
                    const Schema& out_schema) {
  std::string x = AddExchange(plan, env, in_pipe, key_col);

  auto finish = [&](SubOpPtr records) -> SubOpPtr {
    SubOpPtr cur = std::make_unique<ReduceByKey>(
        std::move(records), std::move(keys), std::move(aggs), in_schema);
    if (having != nullptr) {
      cur = std::make_unique<Filter>(std::move(cur), having);
    }
    return std::make_unique<MaterializeRowVector>(std::move(cur),
                                                  out_schema);
  };

  if (!env->serverless()) {
    auto nested = finish(MaybeScan(ParamItem(1), env->fused));
    auto nm = std::make_unique<NestedMap>(plan->MakeRef(x),
                                          std::move(nested));
    plan->Add(out_name, std::make_unique<MaterializeRowVector>(
                            MaybeScan(std::move(nm), env->fused), out_schema));
    return;
  }
  plan->Add(out_name, finish(ExchangedData(plan, *env, x, 1)));
}

void AddLocalAgg(PipelinePlan* plan, const Env& env,
                 const std::string& out_name, const std::string& in_pipe,
                 const Schema& in_schema, std::vector<int> keys,
                 std::vector<AggSpec> aggs, const Schema& out_schema) {
  SubOpPtr cur = std::make_unique<ReduceByKey>(
      MaybeScan(plan->MakeRef(in_pipe), env.fused), std::move(keys),
      std::move(aggs), in_schema);
  plan->Add(out_name, std::make_unique<MaterializeRowVector>(std::move(cur),
                                                             out_schema));
}

AggSpec SumF64(ExprPtr in, std::string name) {
  return AggSpec{AggKind::kSum, std::move(in), std::move(name),
                 AtomType::kFloat64};
}
AggSpec SumI64(ExprPtr in, std::string name) {
  return AggSpec{AggKind::kSum, std::move(in), std::move(name),
                 AtomType::kInt64};
}
AggSpec CountStar(std::string name) {
  return AggSpec{AggKind::kCount, nullptr, std::move(name), AtomType::kInt64};
}

int32_t Date(int y, int m, int d) { return DateFromYMD(y, m, d); }

TpchQuerySpec MakeQ1() {
  TpchQuerySpec q;
  const int32_t cutoff = Date(1998, 12, 1) - 90;
  q.build = [cutoff](PipelinePlan* plan, Env* env) -> std::string {
    TableInput li;
    li.table = kLineitem;
    li.cols = {l::kReturnFlag, l::kLineStatus, l::kQuantity,
               l::kExtendedPrice, l::kDiscount, l::kTax, l::kShipDate};
    li.filter = ex::Le(ex::Col(6), ex::Lit(int64_t{cutoff}));
    li.ranges = {{l::kShipDate, INT32_MIN, cutoff}};
    AddInput(plan, "li", li, *env);
    ExprPtr disc_price =
        ex::Mul(ex::Col(3), ex::Sub(ex::Lit(1.0), ex::Col(4)));
    ExprPtr charge = ex::Mul(ex::Mul(ex::Col(3), ex::Sub(ex::Lit(1.0),
                                                         ex::Col(4))),
                             ex::Add(ex::Lit(1.0), ex::Col(5)));
    AddLocalAgg(plan, *env, "agg", "li", PrunedSchema(li), {0, 1},
                {SumF64(ex::Col(2), "sum_qty"),
                 SumF64(ex::Col(3), "sum_base_price"),
                 SumF64(disc_price, "sum_disc_price"),
                 SumF64(charge, "sum_charge"), CountStar("count_order")},
                Q1OutSchema());
    return "agg";
  };
  q.rank_schema = Q1OutSchema();
  q.merge = true;
  q.merge_keys = {0, 1};
  q.merge_aggs = {SumF64(ex::Col(2), "sum_qty"),
                  SumF64(ex::Col(3), "sum_base_price"),
                  SumF64(ex::Col(4), "sum_disc_price"),
                  SumF64(ex::Col(5), "sum_charge"),
                  SumI64(ex::Col(6), "count_order")};
  q.final_schema = Q1OutSchema();
  q.sort = {{0, false}, {1, false}};
  return q;
}

TpchQuerySpec MakeQ3() {
  TpchQuerySpec q;
  const int32_t date = Date(1995, 3, 15);
  q.build = [date](PipelinePlan* plan, Env* env) -> std::string {
    TableInput cust;
    cust.table = kCustomerT;
    cust.cols = {c::kCustKey, c::kMktSegment};
    cust.filter = ex::Eq(ex::Col(1), ex::Lit(std::string("BUILDING")));
    AddInput(plan, "cust", cust, *env);

    TableInput ord;
    ord.table = kOrdersT;
    ord.cols = {o::kOrderKey, o::kCustKey, o::kOrderDate, o::kShipPriority};
    ord.filter = ex::Lt(ex::Col(2), ex::Lit(int64_t{date}));
    ord.ranges = {{o::kOrderDate, INT32_MIN, date - 1}};
    AddInput(plan, "ord", ord, *env);

    TableInput li;
    li.table = kLineitem;
    li.cols = {l::kOrderKey, l::kExtendedPrice, l::kDiscount, l::kShipDate};
    li.filter = ex::Gt(ex::Col(3), ex::Lit(int64_t{date}));
    li.ranges = {{l::kShipDate, date + 1, INT32_MAX}};
    AddInput(plan, "li", li, *env);

    Schema j1({Field::I64("o_orderkey"), Field::Date("o_orderdate"),
               Field::I32("o_shippriority")});
    AddJoin(plan, env, "j1", "cust", PrunedSchema(cust), 0, "ord",
            PrunedSchema(ord), 1, JoinType::kInner, nullptr,
            {MapOutput::Pass(2), MapOutput::Pass(4), MapOutput::Pass(5)},
            j1);

    Schema j2({Field::I64("l_orderkey"), Field::Date("o_orderdate"),
               Field::I32("o_shippriority"), Field::F64("revenue")});
    AddJoin(plan, env, "j2", "j1", j1, 0, "li", PrunedSchema(li), 0,
            JoinType::kInner, nullptr,
            {MapOutput::Pass(0), MapOutput::Pass(1), MapOutput::Pass(2),
             MapOutput::Compute(ex::Mul(
                 ex::Col(4), ex::Sub(ex::Lit(1.0), ex::Col(5))))},
            j2);

    AddLocalAgg(plan, *env, "agg", "j2", j2, {0, 1, 2},
                {SumF64(ex::Col(3), "revenue")},
                Schema({Field::I64("l_orderkey"), Field::Date("o_orderdate"),
                        Field::I32("o_shippriority"),
                        Field::F64("revenue")}));
    return "agg";
  };
  q.rank_schema = Schema({Field::I64("l_orderkey"),
                          Field::Date("o_orderdate"),
                          Field::I32("o_shippriority"),
                          Field::F64("revenue")});
  q.merge = true;
  q.merge_keys = {0, 1, 2};
  q.merge_aggs = {SumF64(ex::Col(3), "revenue")};
  q.finalize = {MapOutput::Pass(0), MapOutput::Pass(3), MapOutput::Pass(1),
                MapOutput::Pass(2)};
  q.final_schema = Q3OutSchema();
  q.sort = {{1, true}, {2, false}, {0, false}};
  q.limit = 10;
  return q;
}

TpchQuerySpec MakeQ4() {
  TpchQuerySpec q;
  const int32_t lo = Date(1993, 7, 1);
  const int32_t hi = AddMonths(lo, 3);
  q.build = [lo, hi](PipelinePlan* plan, Env* env) -> std::string {
    TableInput ord;
    ord.table = kOrdersT;
    ord.cols = {o::kOrderKey, o::kOrderDate, o::kOrderPriority};
    ord.filter = ex::And(ex::Ge(ex::Col(1), ex::Lit(int64_t{lo})),
                         ex::Lt(ex::Col(1), ex::Lit(int64_t{hi})));
    ord.ranges = {{o::kOrderDate, lo, hi - 1}};
    AddInput(plan, "ord", ord, *env);

    TableInput li;
    li.table = kLineitem;
    li.cols = {l::kOrderKey, l::kCommitDate, l::kReceiptDate};
    li.filter = ex::Lt(ex::Col(1), ex::Col(2));
    AddInput(plan, "li", li, *env);

    Schema semi_out = PrunedSchema(ord);
    AddJoin(plan, env, "semi", "li", PrunedSchema(li), 0, "ord",
            PrunedSchema(ord), 0, JoinType::kSemi, nullptr, {}, semi_out,
            /*allow_broadcast=*/false);  // build side is lineitem-sized

    AddLocalAgg(plan, *env, "agg", "semi", semi_out, {2},
                {CountStar("order_count")}, Q4OutSchema());
    return "agg";
  };
  q.rank_schema = Q4OutSchema();
  q.merge = true;
  q.merge_keys = {0};
  q.merge_aggs = {SumI64(ex::Col(1), "order_count")};
  q.final_schema = Q4OutSchema();
  q.sort = {{0, false}};
  return q;
}

TpchQuerySpec MakeQ6() {
  TpchQuerySpec q;
  const int32_t lo = Date(1994, 1, 1);
  const int32_t hi = Date(1995, 1, 1);
  q.build = [lo, hi](PipelinePlan* plan, Env* env) -> std::string {
    TableInput li;
    li.table = kLineitem;
    li.cols = {l::kShipDate, l::kDiscount, l::kQuantity, l::kExtendedPrice};
    li.filter = ex::And(
        {ex::Ge(ex::Col(0), ex::Lit(int64_t{lo})),
         ex::Lt(ex::Col(0), ex::Lit(int64_t{hi})),
         ex::Ge(ex::Col(1), ex::Lit(0.05 - 1e-9)),
         ex::Le(ex::Col(1), ex::Lit(0.07 + 1e-9)),
         ex::Lt(ex::Col(2), ex::Lit(24.0))});
    li.ranges = {{l::kShipDate, lo, hi - 1}};
    AddInput(plan, "li", li, *env);
    AddLocalAgg(plan, *env, "agg", "li", PrunedSchema(li), {},
                {SumF64(ex::Mul(ex::Col(3), ex::Col(1)), "revenue")},
                Q6OutSchema());
    return "agg";
  };
  q.rank_schema = Q6OutSchema();
  q.merge = true;
  q.merge_aggs = {SumF64(ex::Col(0), "revenue")};
  q.final_schema = Q6OutSchema();
  return q;
}

TpchQuerySpec MakeQ12() {
  TpchQuerySpec q;
  const int32_t lo = Date(1994, 1, 1);
  const int32_t hi = Date(1995, 1, 1);
  q.build = [lo, hi](PipelinePlan* plan, Env* env) -> std::string {
    TableInput li;
    li.table = kLineitem;
    li.cols = {l::kOrderKey, l::kShipMode, l::kShipDate, l::kCommitDate,
               l::kReceiptDate};
    li.filter = ex::And(
        {ex::InStr(ex::Col(1), {"MAIL", "SHIP"}),
         ex::Lt(ex::Col(3), ex::Col(4)), ex::Lt(ex::Col(2), ex::Col(3)),
         ex::Ge(ex::Col(4), ex::Lit(int64_t{lo})),
         ex::Lt(ex::Col(4), ex::Lit(int64_t{hi}))});
    li.ranges = {{l::kReceiptDate, lo, hi - 1}};
    AddInput(plan, "li", li, *env);

    TableInput ord;
    ord.table = kOrdersT;
    ord.cols = {o::kOrderKey, o::kOrderPriority};
    AddInput(plan, "ord", ord, *env);

    Schema j({Field::Str("l_shipmode", 10), Field::I64("high"),
              Field::I64("low")});
    ExprPtr is_high =
        ex::InStr(ex::Col(6), {"1-URGENT", "2-HIGH"});
    AddJoin(plan, env, "j", "li", PrunedSchema(li), 0, "ord",
            PrunedSchema(ord), 0, JoinType::kInner, nullptr,
            {MapOutput::Pass(1),
             MapOutput::Compute(ex::If(is_high, ex::Lit(int64_t{1}),
                                       ex::Lit(int64_t{0}))),
             MapOutput::Compute(ex::If(is_high, ex::Lit(int64_t{0}),
                                       ex::Lit(int64_t{1})))},
            j);

    AddLocalAgg(plan, *env, "agg", "j", j, {0},
                {SumI64(ex::Col(1), "high_line_count"),
                 SumI64(ex::Col(2), "low_line_count")},
                Q12OutSchema());
    return "agg";
  };
  q.rank_schema = Q12OutSchema();
  q.merge = true;
  q.merge_keys = {0};
  q.merge_aggs = {SumI64(ex::Col(1), "high_line_count"),
                  SumI64(ex::Col(2), "low_line_count")};
  q.final_schema = Q12OutSchema();
  q.sort = {{0, false}};
  return q;
}

TpchQuerySpec MakeQ14() {
  TpchQuerySpec q;
  const int32_t lo = Date(1995, 9, 1);
  const int32_t hi = AddMonths(lo, 1);
  q.build = [lo, hi](PipelinePlan* plan, Env* env) -> std::string {
    TableInput li;
    li.table = kLineitem;
    li.cols = {l::kPartKey, l::kExtendedPrice, l::kDiscount, l::kShipDate};
    li.filter = ex::And(ex::Ge(ex::Col(3), ex::Lit(int64_t{lo})),
                        ex::Lt(ex::Col(3), ex::Lit(int64_t{hi})));
    li.ranges = {{l::kShipDate, lo, hi - 1}};
    AddInput(plan, "li", li, *env);

    TableInput part;
    part.table = kPartT;
    part.cols = {p::kPartKey, p::kType};
    AddInput(plan, "part", part, *env);

    ExprPtr rev = ex::Mul(ex::Col(1), ex::Sub(ex::Lit(1.0), ex::Col(2)));
    Schema j({Field::F64("promo_rev"), Field::F64("rev")});
    AddJoin(plan, env, "j", "li", PrunedSchema(li), 0, "part",
            PrunedSchema(part), 0, JoinType::kInner, nullptr,
            {MapOutput::Compute(ex::If(ex::Like(ex::Col(5), "PROMO%"), rev,
                                       ex::Lit(0.0))),
             MapOutput::Compute(rev)},
            j);

    AddLocalAgg(plan, *env, "agg", "j", j, {},
                {SumF64(ex::Col(0), "promo"), SumF64(ex::Col(1), "total")},
                Schema({Field::F64("promo"), Field::F64("total")}));
    return "agg";
  };
  q.rank_schema = Schema({Field::F64("promo"), Field::F64("total")});
  q.merge = true;
  q.merge_aggs = {SumF64(ex::Col(0), "promo"), SumF64(ex::Col(1), "total")};
  q.finalize = {MapOutput::Compute(
      ex::Mul(ex::Lit(100.0), ex::Div(ex::Col(0), ex::Col(1))))};
  q.final_schema = Q14OutSchema();
  return q;
}

TpchQuerySpec MakeQ18() {
  TpchQuerySpec q;
  q.build = [](PipelinePlan* plan, Env* env) -> std::string {
    TableInput li;
    li.table = kLineitem;
    li.cols = {l::kOrderKey, l::kQuantity};
    AddInput(plan, "li", li, *env);

    Schema big({Field::I64("o_orderkey"), Field::F64("sum_qty")});
    AddShuffledAgg(plan, env, "big", "li", PrunedSchema(li), 0, {0},
                   {SumF64(ex::Col(1), "sum_qty")},
                   ex::Gt(ex::Col(1), ex::Lit(300.0)), big);

    TableInput ord;
    ord.table = kOrdersT;
    ord.cols = {o::kOrderKey, o::kCustKey, o::kOrderDate, o::kTotalPrice};
    AddInput(plan, "ord", ord, *env);

    Schema j1({Field::I64("o_custkey"), Field::I64("o_orderkey"),
               Field::Date("o_orderdate"), Field::F64("o_totalprice"),
               Field::F64("sum_qty")});
    AddJoin(plan, env, "j1", "big", big, 0, "ord", PrunedSchema(ord), 0,
            JoinType::kInner, nullptr,
            {MapOutput::Pass(3), MapOutput::Pass(0), MapOutput::Pass(4),
             MapOutput::Pass(5), MapOutput::Pass(1)},
            j1);

    TableInput cust;
    cust.table = kCustomerT;
    cust.cols = {c::kCustKey, c::kName};
    AddInput(plan, "cust", cust, *env);

    AddJoin(plan, env, "j2", "cust", PrunedSchema(cust), 0, "j1", j1, 0,
            JoinType::kInner, nullptr,
            {MapOutput::Pass(1), MapOutput::Pass(0), MapOutput::Pass(3),
             MapOutput::Pass(4), MapOutput::Pass(5), MapOutput::Pass(6)},
            Q18OutSchema());
    return "j2";
  };
  q.rank_schema = Q18OutSchema();
  q.final_schema = Q18OutSchema();
  q.sort = {{4, true}, {3, false}, {2, false}};
  q.limit = 100;
  return q;
}

TpchQuerySpec MakeQ19() {
  TpchQuerySpec q;
  q.build = [](PipelinePlan* plan, Env* env) -> std::string {
    TableInput li;
    li.table = kLineitem;
    li.cols = {l::kPartKey, l::kQuantity, l::kExtendedPrice, l::kDiscount,
               l::kShipMode, l::kShipInstruct};
    li.filter = ex::And(
        {ex::InStr(ex::Col(4), {"AIR", "REG AIR"}),
         ex::Eq(ex::Col(5), ex::Lit(std::string("DELIVER IN PERSON"))),
         ex::Ge(ex::Col(1), ex::Lit(1.0)), ex::Le(ex::Col(1),
                                                  ex::Lit(30.0))});
    AddInput(plan, "li", li, *env);

    TableInput part;
    part.table = kPartT;
    part.cols = {p::kPartKey, p::kBrand, p::kSize, p::kContainer};
    part.filter = ex::And(
        {ex::InStr(ex::Col(1), {"Brand#12", "Brand#23", "Brand#34"}),
         ex::Ge(ex::Col(2), ex::Lit(int64_t{1})),
         ex::Le(ex::Col(2), ex::Lit(int64_t{15}))});
    AddInput(plan, "part", part, *env);

    auto branch = [](const char* brand,
                     std::vector<std::string> containers, double qlo,
                     double qhi, int64_t smax) {
      return ex::And({ex::Eq(ex::Col(7), ex::Lit(std::string(brand))),
                      ex::InStr(ex::Col(9), std::move(containers)),
                      ex::Ge(ex::Col(1), ex::Lit(qlo)),
                      ex::Le(ex::Col(1), ex::Lit(qhi)),
                      ex::Le(ex::Col(8), ex::Lit(smax))});
    };
    ExprPtr predicate = ex::Or(
        {branch("Brand#12", {"SM CASE", "SM BOX", "SM PACK", "SM PKG"}, 1,
                11, 5),
         branch("Brand#23", {"MED BAG", "MED BOX", "MED PKG", "MED PACK"},
                10, 20, 10),
         branch("Brand#34", {"LG CASE", "LG BOX", "LG PACK", "LG PKG"}, 20,
                30, 15)});

    Schema j({Field::F64("rev")});
    AddJoin(plan, env, "j", "li", PrunedSchema(li), 0, "part",
            PrunedSchema(part), 0, JoinType::kInner, predicate,
            {MapOutput::Compute(
                ex::Mul(ex::Col(2), ex::Sub(ex::Lit(1.0), ex::Col(3))))},
            j);

    AddLocalAgg(plan, *env, "agg", "j", j, {},
                {SumF64(ex::Col(0), "revenue")}, Q19OutSchema());
    return "agg";
  };
  q.rank_schema = Q19OutSchema();
  q.merge = true;
  q.merge_aggs = {SumF64(ex::Col(0), "revenue")};
  q.final_schema = Q19OutSchema();
  return q;
}

TpchQuerySpec HandSpec(int query) {
  switch (query) {
    case 1: return MakeQ1();
    case 3: return MakeQ3();
    case 4: return MakeQ4();
    case 6: return MakeQ6();
    case 12: return MakeQ12();
    case 14: return MakeQ14();
    case 18: return MakeQ18();
    case 19: return MakeQ19();
  }
  std::abort();
}

// ===========================================================================
// 1. Differential oracle: planner output vs frozen hand-built plans.
// ===========================================================================

const int kQueries[] = {1, 3, 4, 6, 12, 14, 18, 19};

void RunOracle(const TpchRunOptions& opts) {
  auto ctx = PrepareTpch(Db(), opts);
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
  for (int threads : {1, 4}) {
    TpchRunOptions run = opts;
    run.exec.num_threads = threads;
    for (int q : kQueries) {
      SCOPED_TRACE("Q" + std::to_string(q) + " threads=" +
                   std::to_string(threads));
      StatsRegistry hand_stats;
      auto hand = RunTpchQuerySpec(HandSpec(q), **ctx, run, &hand_stats);
      ASSERT_TRUE(hand.ok()) << hand.status().ToString();
      StatsRegistry plan_stats;
      auto lowered = RunTpchQuery(q, **ctx, run, &plan_stats);
      ASSERT_TRUE(lowered.ok()) << lowered.status().ToString();
      if (q == 19) {
        // The join-order pass builds Q19 on part' instead of lineitem'
        // (smaller side; measured no worse). That permutes the float
        // summation order, so equality here is value-tolerant.
        ExpectRowsNear(**hand, **lowered);
      } else {
        ExpectBytesEqual(**hand, **lowered);
      }
    }
  }
}

TEST(PlannerOracle, MpiExchangeByteIdentical) {
  TpchRunOptions opts = Unthrottled(TpchRunOptions::Rdma(4));
  opts.exec.network_radix_bits = 4;
  RunOracle(opts);
}

TEST(PlannerOracle, TcpExchangeByteIdentical) {
  TpchRunOptions opts = Unthrottled(TpchRunOptions::Rdma(4));
  opts.exec.network_radix_bits = 4;
  opts.exec.tcp_exchange = true;
  RunOracle(opts);
}

TEST(PlannerOracle, S3ExchangeByteIdentical) {
  TpchRunOptions opts = Unthrottled(TpchRunOptions::Lambda(4));
  opts.exec.network_radix_bits = 4;
  RunOracle(opts);
}

TEST(PlannerPasses, JoinOrderDecisionsOnTpch) {
  planner::Catalog catalog = TpchCatalog({60000, 15000, 1500, 2000});
  auto optimize = [&](int q, StatsRegistry* stats) {
    auto root = TpchLogicalPlan(q);
    ASSERT_TRUE(root.ok());
    planner::PlannerOptions popts;
    popts.catalog = catalog;
    planner::Optimize(root.value(), popts, stats);
  };
  // Q19: the one hand-tuned order the cost model beats — build on the
  // filtered part side (~70 rows) instead of filtered lineitem (~2500).
  StatsRegistry q19;
  optimize(19, &q19);
  EXPECT_EQ(q19.GetCounter("planner.passes.joinorder.swaps"), 1);
  // Q4's semi join must keep its authored sides (semantically fixed) and
  // must not be cleared for broadcast: the build side is lineitem-sized.
  StatsRegistry q4;
  optimize(4, &q4);
  EXPECT_EQ(q4.GetCounter("planner.passes.joinorder.swaps"), 0);
  EXPECT_EQ(q4.GetCounter("planner.passes.joinorder.broadcast_allowed"), 0);
  // Q1 has no joins; the pass must not invent any activity.
  StatsRegistry q1;
  optimize(1, &q1);
  EXPECT_EQ(q1.GetCounter("planner.passes.joinorder.swaps"), 0);
  EXPECT_EQ(q1.GetCounter("planner.passes.joinorder.bailouts"), 0);
}

// ===========================================================================
// 2. Golden plan-shape snapshots (EXPLAIN diffs).
// ===========================================================================

std::string GoldenPath(int q) {
  return std::string(MODULARIS_SOURCE_DIR) + "/tests/golden/planner/q" +
         std::to_string(q) + ".txt";
}

std::string RenderPlanShapes(int q, const planner::Catalog& catalog) {
  auto root = TpchLogicalPlan(q);
  if (!root.ok()) return "";
  std::string text;
  text += "== logical ==\n";
  text += planner::ExplainLogical(*root.value());
  planner::PlannerOptions popts;
  popts.catalog = catalog;
  planner::LogicalPlanPtr opt = planner::Optimize(root.value(), popts,
                                                  nullptr);
  text += "== optimized ==\n";
  text += planner::ExplainLogical(*opt, &catalog);
  auto split = planner::SplitAtDriver(opt);
  if (!split.ok()) return "";

  struct Config {
    const char* title;
    planner::ScanLeafKind leaf;
    bool serverless;
    bool tcp;
  };
  const Config configs[] = {
      {"mpi", planner::ScanLeafKind::kMemoryRows, false, false},
      {"tcp", planner::ScanLeafKind::kMemoryRows, false, true},
      {"s3", planner::ScanLeafKind::kColumnFile, true, false},
      {"s3select", planner::ScanLeafKind::kS3Select, true, false},
  };
  for (const Config& cfg : configs) {
    planner::LoweringContext lctx;
    lctx.scan_leaf = cfg.leaf;
    lctx.serverless = cfg.serverless;
    lctx.fused = true;
    lctx.world = 4;
    lctx.exec.network_radix_bits = 4;
    lctx.exec.tcp_exchange = cfg.tcp;
    lctx.tag = "golden";
    PipelinePlan plan;
    auto lowered = planner::LowerRankPlan(*split.value().rank_root, &plan,
                                          &lctx);
    if (!lowered.ok()) return "";
    text += "== physical " + std::string(cfg.title) + " world=4 ==\n";
    text += planner::ExplainPhysical(plan);
  }
  return text;
}

TEST(PlannerGolden, PlanShapesMatchSnapshots) {
  planner::Catalog catalog = TpchCatalog({60000, 15000, 1500, 2000});
  const bool update = std::getenv("MODULARIS_UPDATE_GOLDENS") != nullptr;
  for (int q : kQueries) {
    std::string text = RenderPlanShapes(q, catalog);
    ASSERT_FALSE(text.empty()) << "Q" << q << " failed to plan";
    std::string path = GoldenPath(q);
    if (update) {
      std::ofstream out(path);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      out << text;
      continue;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden snapshot " << path
        << "; regenerate with MODULARIS_UPDATE_GOLDENS=1";
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), text)
        << "plan shape drift for Q" << q
        << "; if intended, regenerate with MODULARIS_UPDATE_GOLDENS=1";
  }
}

// ===========================================================================
// 3. Seeded fuzz: random logical plans, optimized lowering vs direct
//    lowering of the authored tree.
// ===========================================================================

namespace lp = planner::lp;

planner::LoweringContext TestLoweringContext(const TpchPlanEnv& env) {
  planner::LoweringContext lctx;
  switch (env.platform) {
    case Platform::kRdma:
      lctx.scan_leaf = planner::ScanLeafKind::kMemoryRows;
      break;
    case Platform::kRdmaDisc:
    case Platform::kLambda:
      lctx.scan_leaf = planner::ScanLeafKind::kColumnFile;
      break;
    case Platform::kS3Select:
      lctx.scan_leaf = planner::ScanLeafKind::kS3Select;
      break;
  }
  lctx.serverless = env.serverless();
  lctx.fused = env.fused;
  lctx.world = env.world;
  lctx.exec = env.exec;
  lctx.tag = env.tag;
  return lctx;
}

/// Runs a logical plan end to end, optionally through the optimizer —
/// the same derivation RunTpchQuery performs, with the Optimize step
/// toggleable so the fuzzer can byte-diff the two lowerings.
Result<RowVectorPtr> RunLogical(planner::LogicalPlanPtr root,
                                const TpchContext& ctx,
                                const TpchRunOptions& opts, bool optimize) {
  if (optimize) {
    planner::PlannerOptions popts;
    popts.catalog = TpchCatalog(ctx.table_rows);
    root = planner::Optimize(std::move(root), popts, nullptr);
  }
  auto split = planner::SplitAtDriver(std::move(root));
  if (!split.ok()) return split.status();
  planner::DriverSpec driver = split.TakeValue();
  TpchQuerySpec spec;
  planner::LogicalPlanPtr rank_root = driver.rank_root;
  spec.build = [rank_root](PipelinePlan* plan,
                           TpchPlanEnv* env) -> std::string {
    planner::LoweringContext lctx = TestLoweringContext(*env);
    auto lowered = planner::LowerRankPlan(*rank_root, plan, &lctx);
    if (!lowered.ok()) {
      std::fprintf(stderr, "fuzz lowering failed: %s\n",
                   lowered.status().ToString().c_str());
      std::abort();
    }
    return lowered.value().pipeline;
  };
  spec.rank_schema = driver.rank_schema;
  spec.merge = driver.merge;
  spec.merge_keys = driver.merge_keys;
  spec.merge_aggs = driver.merge_aggs;
  spec.merge_having = driver.merge_having;
  spec.finalize = driver.finalize;
  spec.final_schema = driver.final_schema;
  spec.sort = driver.sort;
  spec.limit = driver.limit;
  return RunTpchQuerySpec(spec, ctx, opts, nullptr);
}

/// Random Scan → Filter* → [Join → Project] → Aggregate → [Sort [Limit]]
/// chains over lineitem/orders. Aggregates are restricted to
/// order-independent functions (integer SUM, COUNT) and sorted on all
/// group keys so results stay deterministic even when the join-order
/// pass swaps build/probe sides.
planner::LogicalPlanPtr FuzzPlan(std::mt19937& rng) {
  auto pick = [&rng](int n) { return static_cast<int>(rng() % n); };

  auto li_pred = [&](int which) -> ExprPtr {
    switch (which) {
      case 0:
        return ex::Le(ex::Col(l::kShipDate),
                      ex::Lit(int64_t{DateFromYMD(1995, 6, 17)}));
      case 1:
        return ex::Ge(ex::Col(l::kShipDate),
                      ex::Lit(int64_t{DateFromYMD(1993, 1, 1)}));
      case 2: return ex::Lt(ex::Col(l::kQuantity), ex::Lit(25.0));
      case 3:
        return ex::Lt(ex::Col(l::kCommitDate), ex::Col(l::kReceiptDate));
      default:
        return ex::Lt(ex::Col(l::kOrderKey), ex::Lit(int64_t{30000}));
    }
  };
  auto ord_pred = [&](int which) -> ExprPtr {
    switch (which) {
      case 0:
        return ex::Lt(ex::Col(o::kOrderDate),
                      ex::Lit(int64_t{DateFromYMD(1996, 1, 1)}));
      case 1:
        return ex::Ge(ex::Col(o::kOrderDate),
                      ex::Lit(int64_t{DateFromYMD(1993, 1, 1)}));
      case 2:
        return ex::InStr(ex::Col(o::kOrderPriority),
                         {"1-URGENT", "2-HIGH"});
      default:
        return ex::Lt(ex::Col(o::kCustKey), ex::Lit(int64_t{500}));
    }
  };
  auto filtered = [&](planner::LogicalPlanPtr node, bool is_li) {
    int n = pick(3);
    for (int i = 0; i < n; ++i) {
      node = lp::Filter(std::move(node),
                        is_li ? li_pred(pick(5)) : ord_pred(pick(4)));
    }
    return node;
  };

  planner::LogicalPlanPtr cur;
  std::vector<int> key_pool;
  std::vector<int> sum_pool;  // I64 columns only (order-independent SUM)
  if (pick(2) == 0) {
    // lineitem ⋈ orders on orderkey, random authored orientation, then a
    // projection to a stable mixed-type record.
    bool li_build = pick(2) == 0;
    auto li = filtered(lp::Scan(0, "lineitem", LineitemSchema()), true);
    auto ord = filtered(lp::Scan(1, "orders", OrdersSchema()), false);
    planner::LogicalPlanPtr join =
        li_build ? lp::Join(std::move(li), std::move(ord), JoinType::kInner,
                            l::kOrderKey, o::kOrderKey)
                 : lp::Join(std::move(ord), std::move(li), JoinType::kInner,
                            o::kOrderKey, l::kOrderKey);
    const int nord = static_cast<int>(OrdersSchema().num_fields());
    const int li0 = li_build ? 0 : nord;
    const int or0 =
        li_build ? static_cast<int>(LineitemSchema().num_fields()) : 0;
    Schema js({Field::I64("k"), Field::I64("supp"), Field::Date("sdate"),
               Field::Str("prio", 15), Field::I64("cust")});
    cur = lp::Project(std::move(join),
                      {MapOutput::Pass(li0 + l::kOrderKey),
                       MapOutput::Pass(li0 + l::kSuppKey),
                       MapOutput::Pass(li0 + l::kShipDate),
                       MapOutput::Pass(or0 + o::kOrderPriority),
                       MapOutput::Pass(or0 + o::kCustKey)},
                      js);
    key_pool = {0, 1, 2, 3, 4};
    sum_pool = {0, 1, 4};
  } else if (pick(2) == 0) {
    cur = filtered(lp::Scan(0, "lineitem", LineitemSchema()), true);
    key_pool = {l::kSuppKey, l::kLineNumber, l::kShipDate, l::kShipMode};
    sum_pool = {l::kOrderKey, l::kPartKey, l::kSuppKey};
  } else {
    cur = filtered(lp::Scan(1, "orders", OrdersSchema()), false);
    key_pool = {o::kOrderStatus, o::kOrderDate, o::kShipPriority};
    sum_pool = {o::kOrderKey, o::kCustKey};
  }

  std::shuffle(key_pool.begin(), key_pool.end(), rng);
  const int nkeys = pick(3);  // 0..2
  std::vector<int> keys(key_pool.begin(), key_pool.begin() + nkeys);
  std::vector<AggSpec> aggs;
  aggs.push_back(
      SumI64(ex::Col(sum_pool[pick(static_cast<int>(sum_pool.size()))]),
             "s0"));
  aggs.push_back(CountStar("cnt"));
  cur = lp::Aggregate(std::move(cur), keys, std::move(aggs));

  if (nkeys > 0) {
    std::vector<SortKey> sort;
    for (int i = 0; i < nkeys; ++i) sort.push_back({i, pick(2) == 0});
    cur = lp::Sort(std::move(cur), sort);
    if (pick(4) == 0) cur = lp::Limit(std::move(cur), 5);
  }
  return cur;
}

TEST(PlannerFuzz, OptimizedLoweringMatchesDirectLowering) {
  std::mt19937 rng(20260807u);
  TpchRunOptions opts = Unthrottled(TpchRunOptions::Rdma(2));
  opts.exec.network_radix_bits = 3;
  auto ctx = PrepareTpch(Db(), opts);
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
  for (int iter = 0; iter < 20; ++iter) {
    planner::LogicalPlanPtr plan = FuzzPlan(rng);
    SCOPED_TRACE("iter " + std::to_string(iter) + "\n" +
                 planner::ExplainLogical(*plan));
    auto direct = RunLogical(plan, **ctx, opts, /*optimize=*/false);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    auto optimized = RunLogical(plan, **ctx, opts, /*optimize=*/true);
    ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
    ExpectBytesEqual(**direct, **optimized);
  }
}

}  // namespace
}  // namespace modularis::tpch
