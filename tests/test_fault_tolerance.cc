#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fault.h"
#include "mpi/communicator.h"
#include "serverless/lambda.h"
#include "tpch/queries.h"

/// \file test_fault_tolerance.cc
/// The fault layer end to end (docs/DESIGN-fault-tolerance.md): retry
/// classification, deterministic injection, cancellation/deadlines,
/// cross-rank error propagation, and the headline property — TPC-H under
/// injected transient faults is byte-identical to the fault-free run on
/// all three transports.

namespace modularis {
namespace {

// ---------------------------------------------------------------------------
// RetryCall classification
// ---------------------------------------------------------------------------

RetryPolicy FastPolicy(int max_retries) {
  RetryPolicy p;
  p.max_retries = max_retries;
  p.sleep = false;
  return p;
}

TEST(RetryCallTest, TransientFailuresAreRetriedToSuccess) {
  StatsRegistry stats;
  int calls = 0;
  Status st = RetryCall(FastPolicy(4), &stats, "test.site", [&]() -> Status {
    if (++calls <= 2) return Status::IOError("flaky");
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.GetCounter("retry.attempts"), 2);
  EXPECT_EQ(stats.GetCounter("retry.giveups"), 0);
}

TEST(RetryCallTest, NotFoundFailsFastWithoutRetrying) {
  // The old WithRetries helper spun its full budget on kNotFound; the
  // shared policy must classify by StatusCode and fail fast.
  StatsRegistry stats;
  int calls = 0;
  Status st = RetryCall(FastPolicy(10), &stats, "test.site", [&]() -> Status {
    ++calls;
    return Status::NotFound("no such key");
  });
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.GetCounter("retry.attempts"), 0);
  EXPECT_EQ(stats.GetCounter("retry.giveups"), 0);
}

TEST(RetryCallTest, AbortedAndInvalidArgumentFailFast) {
  for (Status terminal : {Status::Aborted("peer died"),
                          Status::InvalidArgument("bad plan")}) {
    int calls = 0;
    Status st = RetryCall(FastPolicy(10), nullptr, "test.site",
                          [&]() -> Status {
                            ++calls;
                            return terminal;
                          });
    EXPECT_EQ(st.code(), terminal.code());
    EXPECT_EQ(calls, 1);
  }
}

TEST(RetryCallTest, ResourceExhaustedIsRetryable) {
  int calls = 0;
  Status st = RetryCall(FastPolicy(4), nullptr, "test.site", [&]() -> Status {
    if (++calls == 1) return Status::ResourceExhausted("throttled");
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 2);
}

TEST(RetryCallTest, ExhaustedBudgetGivesUpWithLastError) {
  StatsRegistry stats;
  int calls = 0;
  Status st = RetryCall(FastPolicy(3), &stats, "test.site", [&]() -> Status {
    ++calls;
    return Status::IOError("still down");
  });
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(calls, 4);  // 1 attempt + 3 retries
  EXPECT_EQ(stats.GetCounter("retry.attempts"), 3);
  EXPECT_EQ(stats.GetCounter("retry.giveups"), 1);
}

TEST(RetryCallTest, WorksWithResultReturningCallables) {
  int calls = 0;
  Result<int> r = RetryCall(FastPolicy(4), nullptr, "test.site",
                            [&]() -> Result<int> {
                              if (++calls == 1) return Status::IOError("eek");
                              return 42;
                            });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(calls, 2);
}

TEST(RetryCallTest, CancelledTokenStopsTheRetryLoop) {
  CancellationToken cancel;
  cancel.Cancel(Status::Aborted("query dead"));
  int calls = 0;
  Status st = RetryCall(FastPolicy(10), nullptr, "test.site",
                        [&]() -> Status {
                          ++calls;
                          return Status::IOError("transient");
                        },
                        &cancel);
  // The in-flight attempt completes, but no retries are scheduled into a
  // cancelled query.
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(calls, 1);
}

TEST(RetryPolicyTest, BackoffIsDeterministicBoundedAndGrows) {
  RetryPolicy p;
  const uint64_t key = fault_internal::HashCallSite("blob.get");
  double prev = 0;
  for (int attempt = 0; attempt < 10; ++attempt) {
    double a = p.BackoffSeconds(attempt, key);
    double b = p.BackoffSeconds(attempt, key);
    EXPECT_EQ(a, b) << "jitter must be a pure function of (attempt, key)";
    EXPECT_GE(a, p.base_backoff_seconds);
    // Cap plus at most 50% jitter.
    EXPECT_LE(a, p.max_backoff_seconds * 1.5);
    if (attempt > 0 && prev < p.max_backoff_seconds) EXPECT_GT(a, 0);
    prev = a;
  }
  // Different sites draw different jitter.
  EXPECT_NE(p.BackoffSeconds(1, key),
            p.BackoffSeconds(1, fault_internal::HashCallSite("fabric.put")));
}

// ---------------------------------------------------------------------------
// FaultInjector determinism
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, SameSeedSameSaltDrawsTheSameDecisions) {
  FaultOptions fo;
  fo.transient_failure_rate = 0.2;
  FaultInjector a(fo), b(fo);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.MaybeInject(FaultSite::kBlobGet).ok(),
              b.MaybeInject(FaultSite::kBlobGet).ok())
        << "call " << i;
  }
  EXPECT_EQ(a.total_injected(), b.total_injected());
  EXPECT_GT(a.total_injected(), 0);
  EXPECT_LT(a.total_injected(), 2000);
}

TEST(FaultInjectorTest, SitesDrawIndependentSequences) {
  FaultOptions fo;
  fo.transient_failure_rate = 0.2;
  FaultInjector inj(fo);
  int64_t get_failures = 0, put_failures = 0;
  for (int i = 0; i < 2000; ++i) {
    if (!inj.MaybeInject(FaultSite::kBlobGet).ok()) ++get_failures;
    if (!inj.MaybeInject(FaultSite::kBlobPut).ok()) ++put_failures;
  }
  EXPECT_EQ(inj.injected(FaultSite::kBlobGet), get_failures);
  EXPECT_EQ(inj.injected(FaultSite::kBlobPut), put_failures);
  EXPECT_GT(get_failures, 200);
  EXPECT_GT(put_failures, 200);
}

TEST(FaultInjectorTest, DisabledInjectorNeverFires) {
  FaultInjector inj{FaultOptions{}};
  EXPECT_FALSE(inj.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(inj.MaybeInject(FaultSite::kFabricPut).ok());
  }
  EXPECT_EQ(inj.total_injected(), 0);
}

TEST(FaultInjectorTest, ArmedInjectorAtRateZeroNeverFires) {
  // The bench-gate configuration: full decision path, zero probability.
  FaultOptions fo;
  fo.armed = true;
  FaultInjector inj(fo);
  EXPECT_TRUE(inj.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(inj.MaybeInject(FaultSite::kFabricPut).ok());
  }
  EXPECT_EQ(inj.total_injected(), 0);
}

// ---------------------------------------------------------------------------
// CancellationToken
// ---------------------------------------------------------------------------

TEST(CancellationTokenTest, FirstCauseWins) {
  CancellationToken token;
  EXPECT_FALSE(token.ShouldStop());
  EXPECT_TRUE(token.Check().ok());
  token.Cancel(Status::IOError("first"));
  token.Cancel(Status::Internal("second"));
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_EQ(token.status().code(), StatusCode::kIOError);
}

TEST(CancellationTokenTest, DeadlineLatchesAsAborted) {
  CancellationToken token;
  token.SetDeadlineAfter(1e-9);
  while (!token.ShouldStop()) {
  }
  EXPECT_EQ(token.status().code(), StatusCode::kAborted);
  EXPECT_NE(token.status().ToString().find("deadline exceeded"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Cross-rank error propagation (no deadlock)
// ---------------------------------------------------------------------------

net::FabricOptions UnthrottledFabric() {
  net::FabricOptions o;
  o.throttle = false;
  return o;
}

TEST(RankFailureTest, BarrierPeersAbortWhenOneRankFails) {
  mpi::MpiRunReport report;
  Status st = mpi::MpiRuntime::Run(
      4, UnthrottledFabric(),
      [](mpi::Communicator& comm) -> Status {
        if (comm.rank() == 2) return Status::IOError("rank 2 lost its disk");
        // Peers head straight into a collective the failed rank will never
        // join: poisoning must wake them with kAborted, not hang them.
        return comm.Barrier();
      },
      &report);
  EXPECT_EQ(st.code(), StatusCode::kIOError) << st.ToString();
  ASSERT_EQ(report.rank_status.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    EXPECT_FALSE(report.rank_status[r].ok()) << "rank " << r;
  }
  EXPECT_EQ(report.rank_status[2].code(), StatusCode::kIOError);
  for (int r : {0, 1, 3}) {
    EXPECT_EQ(report.rank_status[r].code(), StatusCode::kAborted);
    EXPECT_NE(report.rank_status[r].ToString().find("peer"),
              std::string::npos);
  }
}

TEST(RankFailureTest, RecvBlockedPeersAbortWhenOneRankFails) {
  mpi::MpiRunReport report;
  Status st = mpi::MpiRuntime::Run(
      3, UnthrottledFabric(),
      [](mpi::Communicator& comm) -> Status {
        if (comm.rank() == 0) {
          return Status::ResourceExhausted("rank 0 out of memory");
        }
        // Peers block in a two-sided Recv on the dead rank.
        std::vector<uint8_t> buf;
        return comm.fabric().Recv(comm.rank(), 0, &buf);
      },
      &report);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  ASSERT_EQ(report.rank_status.size(), 3u);
  EXPECT_EQ(report.rank_status[0].code(), StatusCode::kResourceExhausted);
  for (int r : {1, 2}) {
    EXPECT_EQ(report.rank_status[r].code(), StatusCode::kAborted)
        << report.rank_status[r].ToString();
  }
}

TEST(RankFailureTest, PoisonStatusesAreNotRetryable) {
  // A poisoned channel must fail fast through RetryCall, not burn the
  // backoff budget: the wrappers are kAborted by construction.
  mpi::World world(2, UnthrottledFabric());
  world.Poison(Status::IOError("rank died"));
  EXPECT_FALSE(IsRetryableStatus(world.fabric().poison_status()));
  EXPECT_EQ(world.poison_cause().code(), StatusCode::kIOError);
}

// ---------------------------------------------------------------------------
// TPC-H under injected faults: byte-parity with the fault-free run
// ---------------------------------------------------------------------------

const tpch::TpchTables& Db() {
  static tpch::TpchTables db = [] {
    tpch::GeneratorOptions gen;
    gen.scale_factor = 0.005;  // ~30k lineitem rows
    gen.seed = 11;
    return tpch::GenerateTpch(gen);
  }();
  return db;
}

/// Exact equality, bitwise for doubles: under transient-only faults the
/// retries must be invisible, so the result is the byte-for-byte same
/// RowVector the fault-free run produced (docs/DESIGN-fault-tolerance.md).
void ExpectRowsIdentical(const RowVector& expected, const RowVector& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  ASSERT_TRUE(expected.schema().Equals(actual.schema()));
  for (size_t i = 0; i < expected.size(); ++i) {
    RowRef e = expected.row(i);
    RowRef a = actual.row(i);
    for (size_t c = 0; c < expected.schema().num_fields(); ++c) {
      int col = static_cast<int>(c);
      switch (expected.schema().field(c).type) {
        case AtomType::kInt32:
        case AtomType::kDate:
          ASSERT_EQ(e.GetInt32(col), a.GetInt32(col))
              << "row " << i << " col " << c;
          break;
        case AtomType::kInt64:
          ASSERT_EQ(e.GetInt64(col), a.GetInt64(col))
              << "row " << i << " col " << c;
          break;
        case AtomType::kFloat64: {
          double x = e.GetFloat64(col), y = a.GetFloat64(col);
          ASSERT_EQ(std::memcmp(&x, &y, sizeof(double)), 0)
              << "row " << i << " col " << c << ": " << x << " vs " << y;
          break;
        }
        case AtomType::kString:
          ASSERT_EQ(e.GetString(col), a.GetString(col))
              << "row " << i << " col " << c;
          break;
      }
    }
  }
}

tpch::TpchRunOptions Unthrottled(tpch::TpchRunOptions opts) {
  opts.fabric.throttle = false;
  opts.lambda.throttle = false;
  opts.lambda.s3.throttle = false;
  opts.storage.throttle = false;
  opts.s3select.throttle = false;
  opts.exec.network_radix_bits = 4;
  return opts;
}

enum class FaultTransport { kMpi, kTcp, kLambda };

const char* TransportName(FaultTransport t) {
  switch (t) {
    case FaultTransport::kMpi: return "Mpi";
    case FaultTransport::kTcp: return "Tcp";
    case FaultTransport::kLambda: return "Lambda";
  }
  return "unknown";
}

tpch::TpchRunOptions TransportOptions(FaultTransport transport, int world) {
  tpch::TpchRunOptions opts;
  switch (transport) {
    case FaultTransport::kMpi:
      opts = tpch::TpchRunOptions::Rdma(world);
      break;
    case FaultTransport::kTcp:
      opts = tpch::TpchRunOptions::Rdma(world);
      opts.exec.tcp_exchange = true;
      break;
    case FaultTransport::kLambda:
      opts = tpch::TpchRunOptions::Lambda(world);
      break;
  }
  return Unthrottled(opts);
}

/// Arms every transport-relevant injector at `rate`. With max_retries = 8
/// a giveup needs 9 consecutive injected failures: p = 0.05^9 ≈ 2e-12 per
/// call, so the faulted runs below complete deterministically in practice.
void ArmFaults(tpch::TpchRunOptions* opts, double rate) {
  opts->fabric.fault.transient_failure_rate = rate;
  opts->storage.fault.transient_failure_rate = rate;
  opts->lambda.s3.fault.transient_failure_rate = rate;
  opts->exec.retry.max_retries = 8;
  opts->exec.retry.sleep = false;
}

struct FaultCase {
  int query;
  FaultTransport transport;
  int world;
};

class FaultParityTest : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultParityTest, TransientFaultsAreInvisibleInTheResult) {
  const FaultCase& p = GetParam();
  tpch::TpchRunOptions clean = TransportOptions(p.transport, p.world);
  // Prepare fault-free: the injectors under test are the query-time ones.
  auto ctx = tpch::PrepareTpch(Db(), clean);
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();

  StatsRegistry clean_stats;
  auto expected = tpch::RunTpchQuery(p.query, **ctx, clean, &clean_stats);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  tpch::TpchRunOptions faulted = clean;
  ArmFaults(&faulted, 0.05);
  StatsRegistry fault_stats;
  auto actual = tpch::RunTpchQuery(p.query, **ctx, faulted, &fault_stats);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();

  ExpectRowsIdentical(**expected, **actual);

  // An injection must never out-live the retry budget (0.05^9 per call).
  EXPECT_EQ(fault_stats.GetCounter("retry.giveups"), 0);

  // And the fault-free run saw none of it: injection off means zero
  // fault.* / retry.* keys, not zero-valued ones.
  for (const auto& [key, value] : clean_stats.counters()) {
    EXPECT_NE(key.rfind("fault.", 0), 0u) << key << "=" << value;
    EXPECT_NE(key.rfind("retry.", 0), 0u) << key << "=" << value;
  }
}

std::vector<FaultCase> FaultCases() {
  std::vector<FaultCase> cases;
  // Every implemented query rides the full transport matrix at world 2;
  // the scan-, join- and exchange-heavy trio {1, 6, 12} also runs at
  // world 4 to vary the partition fan-out under faults.
  for (int q : {1, 3, 4, 6, 12, 14, 18, 19}) {
    for (FaultTransport t : {FaultTransport::kMpi, FaultTransport::kTcp,
                             FaultTransport::kLambda}) {
      cases.push_back({q, t, 2});
      if (q == 1 || q == 6 || q == 12) cases.push_back({q, t, 4});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    QueriesTransportsWorlds, FaultParityTest,
    ::testing::ValuesIn(FaultCases()),
    [](const ::testing::TestParamInfo<FaultCase>& info) {
      return "Q" + std::to_string(info.param.query) + "_" +
             TransportName(info.param.transport) + "_w" +
             std::to_string(info.param.world);
    });

/// The tiny test database keeps per-query traffic low, so the 0.05 parity
/// matrix above can legitimately draw zero faults for some (query,
/// transport, world) cells. These dedicated per-transport runs crank the
/// rate until injections are certain, proving the hooks are actually
/// wired into every transport — and that parity still holds under heavy
/// fault pressure.
class FaultHooksTest : public ::testing::TestWithParam<FaultTransport> {};

TEST_P(FaultHooksTest, HooksFireAndRetriesStayInvisible) {
  tpch::TpchRunOptions clean = TransportOptions(GetParam(), 4);
  auto ctx = tpch::PrepareTpch(Db(), clean);
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();

  StatsRegistry clean_stats;
  auto expected = tpch::RunTpchQuery(12, **ctx, clean, &clean_stats);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  tpch::TpchRunOptions faulted = clean;
  ArmFaults(&faulted, 0.3);
  StatsRegistry fault_stats;
  auto actual = tpch::RunTpchQuery(12, **ctx, faulted, &fault_stats);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  ExpectRowsIdentical(**expected, **actual);

  int64_t injected = 0;
  for (const auto& [key, value] : fault_stats.counters()) {
    if (key.rfind("fault.injected.", 0) == 0) injected += value;
  }
  EXPECT_GT(injected, 0);
  EXPECT_GT(fault_stats.GetCounter("retry.attempts"), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllTransports, FaultHooksTest,
    ::testing::Values(FaultTransport::kMpi, FaultTransport::kTcp,
                      FaultTransport::kLambda),
    [](const ::testing::TestParamInfo<FaultTransport>& info) {
      return TransportName(info.param);
    });

TEST(FaultParityTest, InjectedFaultCountsAreReproducible) {
  // Same seed, same plan → the same number of injected faults per site
  // on a rerun, even though thread scheduling permutes which worker draws
  // which sequence slot.
  tpch::TpchRunOptions opts = TransportOptions(FaultTransport::kLambda, 4);
  auto ctx = tpch::PrepareTpch(Db(), opts);
  ASSERT_TRUE(ctx.ok());
  ArmFaults(&opts, 0.3);

  std::map<std::string, int64_t> first;
  for (int run = 0; run < 2; ++run) {
    StatsRegistry stats;
    auto result = tpch::RunTpchQuery(12, **ctx, opts, &stats);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::map<std::string, int64_t> injected;
    for (const auto& [key, value] : stats.counters()) {
      if (key.rfind("fault.injected.", 0) == 0) injected[key] = value;
    }
    EXPECT_FALSE(injected.empty());
    if (run == 0) {
      first = injected;
    } else {
      EXPECT_EQ(first, injected);
    }
  }
}

// ---------------------------------------------------------------------------
// Unrecoverable failures abort the whole query
// ---------------------------------------------------------------------------

TEST(LambdaCrashTest, WorkerCrashAbortsTheWholeQuery) {
  tpch::TpchRunOptions opts = TransportOptions(FaultTransport::kLambda, 4);
  auto ctx = tpch::PrepareTpch(Db(), opts);
  ASSERT_TRUE(ctx.ok());
  // Workers 1..3 sit at spawn depth 2 of the fan-out-8 tree; crashing that
  // depth kills them before their plan runs. kAborted is not retryable, so
  // the query must abort cleanly with the crash as the cause.
  opts.lambda.fault.lambda_crash_depth = 2;
  StatsRegistry stats;
  auto result = tpch::RunTpchQuery(6, **ctx, opts, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  EXPECT_NE(result.status().ToString().find("injected at spawn depth"),
            std::string::npos)
      << result.status().ToString();
  EXPECT_GE(stats.GetCounter("fault.injected.lambda.spawn"), 1);
}

TEST(DeadlineTest, ExpiredDeadlineAbortsTheQueryOnEveryRank) {
  tpch::TpchRunOptions opts = TransportOptions(FaultTransport::kMpi, 2);
  auto ctx = tpch::PrepareTpch(Db(), opts);
  ASSERT_TRUE(ctx.ok());
  opts.exec.deadline_seconds = 1e-9;  // expires before the first morsel
  StatsRegistry stats;
  auto result = tpch::RunTpchQuery(1, **ctx, opts, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  EXPECT_NE(result.status().ToString().find("deadline exceeded"),
            std::string::npos)
      << result.status().ToString();
}

}  // namespace
}  // namespace modularis
