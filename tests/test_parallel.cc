/// \file test_parallel.cc
/// Morsel-driven parallel execution parity (docs/DESIGN-parallel.md):
/// `num_threads = 4` must produce byte-identical results to
/// `num_threads = 1` — across join types, duplicate-heavy keys, empty
/// inputs, the aggregate kinds, and the TPC-H reference queries — and the
/// operators with native parallel paths must never report a
/// `parallel.serial_fallback.*` counter in those plans. This suite is
/// also the ThreadSanitizer target in CI.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "core/pipeline.h"
#include "suboperators/agg_ops.h"
#include "suboperators/basic_ops.h"
#include "suboperators/join_ops.h"
#include "suboperators/partition_ops.h"
#include "suboperators/scan_ops.h"
#include "tpch/queries.h"
#include "tpch/reference.h"

namespace modularis {
namespace {

void ExpectBytesEqual(const RowVector& expected, const RowVector& actual,
                      const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  ASSERT_EQ(expected.row_size(), actual.row_size()) << label;
  if (expected.byte_size() == 0) return;  // empty buffers may be null
  ASSERT_EQ(0, std::memcmp(expected.data(), actual.data(),
                           expected.byte_size()))
      << label << ": payload bytes differ";
}

RowVectorPtr MakeKv(int64_t rows, int64_t key_space, uint32_t seed,
                    int sequential_dup = 0) {
  RowVectorPtr data = RowVector::Make(KeyValueSchema());
  data->Reserve(rows);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> dist(0, key_space - 1);
  for (int64_t i = 0; i < rows; ++i) {
    RowWriter w = data->AppendRow();
    w.SetInt64(0, sequential_dup > 0 ? i / sequential_dup : dist(rng));
    w.SetInt64(1, i);
  }
  return data;
}

/// Small parallel_min_rows so the worker pool engages on test-sized
/// inputs; 4 workers regardless of the host's core count. (ExecContext
/// is pinned — it owns a registry — so configure in place.)
void InitCtx(ExecContext* ctx, int threads, StatsRegistry* stats) {
  ctx->options.num_threads = threads;
  ctx->options.parallel_min_rows = 256;
  ctx->options.morsel_rows = 512;
  ctx->stats = stats;
}

/// Drains a record-stream root into one packed vector via Next() tuples
/// (exercises the row protocol) or NextBatch (the batch protocol).
RowVectorPtr DrainRoot(SubOperator* root, ExecContext* ctx, bool batched) {
  Status st = root->Open(ctx);
  EXPECT_TRUE(st.ok()) << st.ToString();
  RowVectorPtr out;
  if (batched) {
    RowBatch batch;
    while (root->NextBatch(&batch)) {
      if (out == nullptr) out = RowVector::Make(batch.schema());
      out->AppendRawBatch(batch.data(), batch.size());
    }
  } else {
    Tuple t;
    while (root->Next(&t)) {
      if (t.size() == 1 && t[0].is_row()) {
        if (out == nullptr) out = RowVector::Make(t[0].row().schema());
        out->AppendRaw(t[0].row().data());
      } else if (t.size() == 1 && t[0].is_collection()) {
        if (out == nullptr) {
          out = RowVector::Make(t[0].collection()->schema());
        }
        out->AppendAll(*t[0].collection());
      } else {
        ADD_FAILURE() << "unexpected tuple shape " << t.ToString();
      }
    }
  }
  EXPECT_TRUE(root->status().ok()) << root->status().ToString();
  EXPECT_TRUE(root->Close().ok());
  if (out == nullptr) out = RowVector::Make(KeyValueSchema());
  return out;
}

void ExpectNoFallback(const StatsRegistry& stats, const char* op) {
  EXPECT_EQ(stats.GetCounter(std::string("parallel.serial_fallback.") + op),
            0)
      << op << " fell back to serial execution";
}

// ---------------------------------------------------------------------------
// Partitioned join (the bench plan): histograms + pre-sized partitioning
// + per-pair BuildProbe inside a NestedMap.
// ---------------------------------------------------------------------------

SubOpPtr BuildPartitionedJoinPlan(const RowVectorPtr& r, const RowVectorPtr& s,
                                  JoinType type) {
  RadixSpec spec{4, 0, RadixHash::kIdentity};
  const Schema kv = KeyValueSchema();
  auto plan = std::make_unique<PipelinePlan>();
  auto scan = [](const RowVectorPtr& v) {
    return std::make_unique<RowScan>(std::make_unique<CollectionSource>(
        std::vector<RowVectorPtr>{v}));
  };
  plan->Add("lh_r", std::make_unique<LocalHistogram>(scan(r), spec, 0));
  plan->Add("lp_r", std::make_unique<LocalPartition>(
                        scan(r), plan->MakeRef("lh_r"), spec, 0));
  plan->Add("lh_s", std::make_unique<LocalHistogram>(scan(s), spec, 0));
  plan->Add("lp_s", std::make_unique<LocalPartition>(
                        scan(s), plan->MakeRef("lh_s"), spec, 0));
  auto zip = std::make_unique<Zip>(plan->MakeRef("lp_r"),
                                   plan->MakeRef("lp_s"));
  auto bp = std::make_unique<BuildProbe>(
      std::make_unique<RowScan>(std::make_unique<Projection>(
          std::make_unique<ParameterLookup>(), std::vector<int>{1})),
      std::make_unique<RowScan>(std::make_unique<Projection>(
          std::make_unique<ParameterLookup>(), std::vector<int>{3})),
      kv, kv, /*build_key_col=*/0, /*probe_key_col=*/0, type);
  Schema out_schema = bp->out_schema();
  auto nested_root =
      std::make_unique<MaterializeRowVector>(std::move(bp), out_schema);
  plan->SetOutput(std::make_unique<NestedMap>(std::move(zip),
                                              std::move(nested_root)));
  return plan;
}

class PartitionedJoinParity : public ::testing::TestWithParam<JoinType> {};

TEST_P(PartitionedJoinParity, FourThreadsByteEqual) {
  const JoinType type = GetParam();
  // Build keys cover [0, 10000); probe keys draw from [0, 20000) so
  // inner/semi AND anti joins all have non-empty output.
  RowVectorPtr r = MakeKv(40000, 10000, /*seed=*/1, /*sequential_dup=*/4);
  RowVectorPtr s = MakeKv(40000, 20000, /*seed=*/2);
  for (bool batched : {false, true}) {
    StatsRegistry stats1, stats4;
    ExecContext c1, c4;
    InitCtx(&c1, 1, &stats1);
    InitCtx(&c4, 4, &stats4);
    auto p1 = BuildPartitionedJoinPlan(r, s, type);
    auto p4 = BuildPartitionedJoinPlan(r, s, type);
    RowVectorPtr out1 = DrainRoot(p1.get(), &c1, batched);
    RowVectorPtr out4 = DrainRoot(p4.get(), &c4, batched);
    ASSERT_GT(out1->size(), 0u);
    ExpectBytesEqual(*out1, *out4,
                     std::string("partitioned join, batched=") +
                         (batched ? "1" : "0"));
    ExpectNoFallback(stats4, "LocalHistogram");
    ExpectNoFallback(stats4, "LocalPartition");
    ExpectNoFallback(stats4, "NestedMap");
    ExpectNoFallback(stats4, "BuildProbe");
    ExpectNoFallback(stats4, "ReduceByKey");
  }
}

INSTANTIATE_TEST_SUITE_P(JoinTypes, PartitionedJoinParity,
                         ::testing::Values(JoinType::kInner, JoinType::kSemi,
                                           JoinType::kAnti),
                         [](const ::testing::TestParamInfo<JoinType>& info) {
                           switch (info.param) {
                             case JoinType::kInner: return "Inner";
                             case JoinType::kSemi: return "Semi";
                             case JoinType::kAnti: return "Anti";
                           }
                           return "Unknown";
                         });

TEST(PartitionedJoinParity, EmptyInputs) {
  RowVectorPtr empty = RowVector::Make(KeyValueSchema());
  RowVectorPtr some = MakeKv(5000, 1000, 3);
  for (const auto& [r, s] : std::vector<std::pair<RowVectorPtr, RowVectorPtr>>{
           {empty, some}, {some, empty}, {empty, empty}}) {
    StatsRegistry stats1, stats4;
    ExecContext c1, c4;
    InitCtx(&c1, 1, &stats1);
    InitCtx(&c4, 4, &stats4);
    auto p1 = BuildPartitionedJoinPlan(r, s, JoinType::kInner);
    auto p4 = BuildPartitionedJoinPlan(r, s, JoinType::kInner);
    RowVectorPtr out1 = DrainRoot(p1.get(), &c1, true);
    RowVectorPtr out4 = DrainRoot(p4.get(), &c4, true);
    ExpectBytesEqual(*out1, *out4, "empty-input join");
  }
}

// ---------------------------------------------------------------------------
// Flat BuildProbe: sliced parallel build + morsel-parallel probe.
// ---------------------------------------------------------------------------

SubOpPtr FlatJoin(const RowVectorPtr& build, const RowVectorPtr& probe,
                  JoinType type) {
  const Schema kv = KeyValueSchema();
  return std::make_unique<BuildProbe>(
      std::make_unique<RowScan>(std::make_unique<CollectionSource>(
          std::vector<RowVectorPtr>{build})),
      std::make_unique<RowScan>(std::make_unique<CollectionSource>(
          std::vector<RowVectorPtr>{probe})),
      kv, kv, 0, 0, type);
}

TEST(FlatBuildProbeParity, JoinTypesAndDuplicates) {
  // Duplicate-heavy build side: 8-long duplicate chains stress the
  // chain-order determinism of the sliced parallel build.
  RowVectorPtr build = MakeKv(30000, 4000, /*seed=*/5, /*sequential_dup=*/8);
  RowVectorPtr probe = MakeKv(50000, 8000, /*seed=*/6);
  for (JoinType type :
       {JoinType::kInner, JoinType::kSemi, JoinType::kAnti}) {
    for (bool batched : {false, true}) {
      StatsRegistry stats1, stats4;
      ExecContext c1, c4;
      InitCtx(&c1, 1, &stats1);
      InitCtx(&c4, 4, &stats4);
      auto j1 = FlatJoin(build, probe, type);
      auto j4 = FlatJoin(build, probe, type);
      RowVectorPtr out1 = DrainRoot(j1.get(), &c1, batched);
      RowVectorPtr out4 = DrainRoot(j4.get(), &c4, batched);
      ExpectBytesEqual(*out1, *out4, "flat join");
      ExpectNoFallback(stats4, "BuildProbe");
    }
  }
}

TEST(FlatBuildProbeParity, EmptySides) {
  RowVectorPtr empty = RowVector::Make(KeyValueSchema());
  RowVectorPtr some = MakeKv(2000, 100, 7);
  for (const auto& [b, p] : std::vector<std::pair<RowVectorPtr, RowVectorPtr>>{
           {empty, some}, {some, empty}, {empty, empty}}) {
    StatsRegistry stats1, stats4;
    ExecContext c1, c4;
    InitCtx(&c1, 1, &stats1);
    InitCtx(&c4, 4, &stats4);
    auto j1 = FlatJoin(b, p, JoinType::kInner);
    auto j4 = FlatJoin(b, p, JoinType::kInner);
    RowVectorPtr out1 = DrainRoot(j1.get(), &c1, true);
    RowVectorPtr out4 = DrainRoot(j4.get(), &c4, true);
    ExpectBytesEqual(*out1, *out4, "flat join empty side");
  }
}

TEST(FlatBuildProbeParity, MixedNextAndNextBatch) {
  RowVectorPtr build = MakeKv(20000, 2000, 8, /*sequential_dup=*/4);
  RowVectorPtr probe = MakeKv(20000, 2000, 9);
  auto drain_mixed = [&](int threads) {
    StatsRegistry stats;
    ExecContext ctx;
    InitCtx(&ctx, threads, &stats);
    auto j = FlatJoin(build, probe, JoinType::kInner);
    EXPECT_TRUE(j->Open(&ctx).ok());
    RowVectorPtr out;
    Tuple t;
    // A few row pulls first, then batch pulls for the remainder.
    for (int i = 0; i < 100 && j->Next(&t); ++i) {
      if (out == nullptr) out = RowVector::Make(t[0].row().schema());
      out->AppendRaw(t[0].row().data());
    }
    RowBatch batch;
    while (j->NextBatch(&batch)) {
      out->AppendRawBatch(batch.data(), batch.size());
    }
    EXPECT_TRUE(j->status().ok()) << j->status().ToString();
    EXPECT_TRUE(j->Close().ok());
    return out;
  };
  RowVectorPtr out1 = drain_mixed(1);
  RowVectorPtr out4 = drain_mixed(4);
  ExpectBytesEqual(*out1, *out4, "mixed protocol flat join");
}

// ---------------------------------------------------------------------------
// ReduceByKey: partition-owned parallel aggregation. Every key shape —
// single int, string, multi-column, keyless — and every aggregate
// (order-dependent float SUM included) must be byte-identical across
// thread counts with zero serial fallbacks and zero mid-aggregation
// rehashes.
// ---------------------------------------------------------------------------

SubOpPtr MakeReduce(const RowVectorPtr& data, std::vector<AggSpec> aggs) {
  return std::make_unique<ReduceByKey>(
      std::make_unique<RowScan>(std::make_unique<CollectionSource>(
          std::vector<RowVectorPtr>{data})),
      std::vector<int>{0}, std::move(aggs), KeyValueSchema());
}

std::vector<AggSpec> IntAggs() {
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggKind::kSum, ex::Col(1), "sum", AtomType::kInt64});
  aggs.push_back(AggSpec{AggKind::kCount, nullptr, "cnt", AtomType::kInt64});
  aggs.push_back(AggSpec{AggKind::kMin, ex::Col(1), "min", AtomType::kInt64});
  aggs.push_back(AggSpec{AggKind::kMax, ex::Col(1), "max", AtomType::kInt64});
  return aggs;
}

TEST(ReduceByKeyParity, IntAggregates) {
  for (int64_t key_space : {int64_t{7}, int64_t{4000}}) {  // dup-heavy & wide
    RowVectorPtr data = MakeKv(60000, key_space, 11);
    StatsRegistry stats1, stats4;
    ExecContext c1, c4;
    InitCtx(&c1, 1, &stats1);
    InitCtx(&c4, 4, &stats4);
    auto r1 = MakeReduce(data, IntAggs());
    auto r4 = MakeReduce(data, IntAggs());
    RowVectorPtr out1 = DrainRoot(r1.get(), &c1, false);
    RowVectorPtr out4 = DrainRoot(r4.get(), &c4, false);
    ASSERT_GT(out1->size(), 0u);
    ExpectBytesEqual(*out1, *out4, "reduce_by_key int aggs");
    ExpectNoFallback(stats4, "ReduceByKey");
  }
}

TEST(ReduceByKeyParity, FloatMinMaxParallel) {
  // f64 MIN/MAX merge bit-exactly (commutative, no re-association).
  RowVectorPtr data = MakeKv(40000, 500, 12);
  std::vector<AggSpec> aggs;
  aggs.push_back(
      AggSpec{AggKind::kMin, ex::Col(1), "mn", AtomType::kFloat64});
  aggs.push_back(
      AggSpec{AggKind::kMax, ex::Col(1), "mx", AtomType::kFloat64});
  StatsRegistry stats1, stats4;
  ExecContext c1, c4;
  InitCtx(&c1, 1, &stats1);
  InitCtx(&c4, 4, &stats4);
  auto r1 = MakeReduce(data, aggs);
  auto r4 = MakeReduce(data, aggs);
  RowVectorPtr out1 = DrainRoot(r1.get(), &c1, false);
  RowVectorPtr out4 = DrainRoot(r4.get(), &c4, false);
  ExpectBytesEqual(*out1, *out4, "reduce_by_key f64 min/max");
  ExpectNoFallback(stats4, "ReduceByKey");
}

TEST(ReduceByKeyParity, FloatSumParallelByteEqual) {
  // Order-dependent f64 SUM parallelizes under partition-owned
  // aggregation: all rows of a group land in one key partition in
  // original order, so the parallel fold replays the serial addition
  // order exactly — no fallback, bytes identical.
  RowVectorPtr data = MakeKv(40000, 500, 13);
  std::vector<AggSpec> aggs;
  aggs.push_back(
      AggSpec{AggKind::kSum, ex::Col(1), "s", AtomType::kFloat64});
  StatsRegistry stats1, stats4;
  ExecContext c1, c4;
  InitCtx(&c1, 1, &stats1);
  InitCtx(&c4, 4, &stats4);
  auto r1 = MakeReduce(data, aggs);
  auto r4 = MakeReduce(data, aggs);
  RowVectorPtr out1 = DrainRoot(r1.get(), &c1, false);
  RowVectorPtr out4 = DrainRoot(r4.get(), &c4, false);
  ExpectBytesEqual(*out1, *out4, "reduce_by_key f64 sum");
  ExpectNoFallback(stats4, "ReduceByKey");
  EXPECT_GT(stats4.GetCounter("parallel.reduce.partitions"), 0)
      << "4-thread f64 SUM did not take the partition-owned path";
  EXPECT_EQ(stats4.GetCounter("reduce.rehash"), 0)
      << "pre-sized per-partition tables must never rehash";
}

// Non-integer key shapes: string, multi-column, and a computed (non
// bare-column) aggregate input — every one of these used to take
// parallel.serial_fallback.ReduceByKey onto the serial byte-key map.

Schema StrKeySchema() {
  return Schema({Field::Str("k", 12), Field::I64("v"), Field::F64("x")});
}

RowVectorPtr MakeStrKeyed(size_t rows, int64_t key_space, uint32_t seed) {
  RowVectorPtr data = RowVector::Make(StrKeySchema());
  data->Reserve(rows);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> dist(0, key_space - 1);
  std::uniform_real_distribution<double> fdist(-1000.0, 1000.0);
  for (size_t i = 0; i < rows; ++i) {
    RowWriter w = data->AppendRow();
    w.SetString(0, "key" + std::to_string(dist(rng)));
    w.SetInt64(1, static_cast<int64_t>(i));
    w.SetFloat64(2, fdist(rng));
  }
  return data;
}

SubOpPtr MakeKeyedReduce(const RowVectorPtr& data, std::vector<int> keys,
                         std::vector<AggSpec> aggs) {
  return std::make_unique<ReduceByKey>(
      std::make_unique<RowScan>(std::make_unique<CollectionSource>(
          std::vector<RowVectorPtr>{data})),
      std::move(keys), std::move(aggs), data->schema());
}

std::vector<AggSpec> MixedAggs() {
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggKind::kSum, ex::Col(2), "s", AtomType::kFloat64});
  aggs.push_back(AggSpec{AggKind::kCount, nullptr, "c", AtomType::kInt64});
  aggs.push_back(AggSpec{AggKind::kMin, ex::Col(1), "mn", AtomType::kInt64});
  aggs.push_back(AggSpec{AggKind::kMax, ex::Col(2), "mx", AtomType::kFloat64});
  // Computed input: exercises the Expr::Eval update path on workers.
  aggs.push_back(AggSpec{AggKind::kSum,
                         ex::Mul(ex::Col(2), ex::Lit(2.0)), "s2",
                         AtomType::kFloat64});
  return aggs;
}

TEST(ReduceByKeyParity, StringKeyByteEqual) {
  for (int64_t key_space : {int64_t{7}, int64_t{5000}}) {
    RowVectorPtr data = MakeStrKeyed(60000, key_space, 17);
    StatsRegistry stats1, stats4;
    ExecContext c1, c4;
    InitCtx(&c1, 1, &stats1);
    InitCtx(&c4, 4, &stats4);
    auto r1 = MakeKeyedReduce(data, {0}, MixedAggs());
    auto r4 = MakeKeyedReduce(data, {0}, MixedAggs());
    RowVectorPtr out1 = DrainRoot(r1.get(), &c1, false);
    RowVectorPtr out4 = DrainRoot(r4.get(), &c4, false);
    ASSERT_GT(out1->size(), 0u);
    ExpectBytesEqual(*out1, *out4, "reduce_by_key string key");
    ExpectNoFallback(stats4, "ReduceByKey");
    EXPECT_EQ(stats4.GetCounter("reduce.rehash"), 0);
  }
}

TEST(ReduceByKeyParity, MultiColumnKeyByteEqual) {
  // (string, i64) composite key over a dup-heavy value domain.
  RowVectorPtr data = MakeStrKeyed(60000, 40, 19);
  StatsRegistry stats1, stats4;
  ExecContext c1, c4;
  InitCtx(&c1, 1, &stats1);
  InitCtx(&c4, 4, &stats4);
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggKind::kSum, ex::Col(2), "s", AtomType::kFloat64});
  aggs.push_back(AggSpec{AggKind::kCount, nullptr, "c", AtomType::kInt64});
  auto key2 = [](const RowVectorPtr& d) {
    // Second key column: v % 8 — rebuild the rows with a low-cardinality
    // i64 column so the composite key has real cross-products.
    RowVectorPtr out = RowVector::Make(d->schema());
    out->Reserve(d->size());
    for (size_t i = 0; i < d->size(); ++i) {
      RowRef r = d->row(i);
      RowWriter w = out->AppendRow();
      w.SetString(0, std::string(r.GetString(0)));
      w.SetInt64(1, r.GetInt64(1) % 8);
      w.SetFloat64(2, r.GetFloat64(2));
    }
    return out;
  }(data);
  auto r1 = MakeKeyedReduce(key2, {0, 1}, aggs);
  auto r4 = MakeKeyedReduce(key2, {0, 1}, aggs);
  RowVectorPtr out1 = DrainRoot(r1.get(), &c1, false);
  RowVectorPtr out4 = DrainRoot(r4.get(), &c4, false);
  ASSERT_GT(out1->size(), 0u);
  ExpectBytesEqual(*out1, *out4, "reduce_by_key multi-column key");
  ExpectNoFallback(stats4, "ReduceByKey");
  EXPECT_EQ(stats4.GetCounter("reduce.rehash"), 0);
}

TEST(ReduceByKeyParity, HighCardinalityMillionGroups) {
  // 1M rows, every key distinct: stresses the per-partition table
  // reservation (zero rehashes) and the K-way first-occurrence merge at
  // maximum group count.
  const size_t n = 1 << 20;
  RowVectorPtr data = RowVector::Make(KeyValueSchema());
  data->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    RowWriter w = data->AppendRow();
    // Scrambled insertion order so first-occurrence order != key order.
    w.SetInt64(0, static_cast<int64_t>((i * 2654435761u) % (1u << 20)));
    w.SetInt64(1, static_cast<int64_t>(i));
  }
  StatsRegistry stats1, stats4;
  ExecContext c1, c4;
  InitCtx(&c1, 1, &stats1);
  InitCtx(&c4, 4, &stats4);
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggKind::kSum, ex::Col(1), "s", AtomType::kInt64});
  auto r1 = MakeReduce(data, aggs);
  auto r4 = MakeReduce(data, aggs);
  RowVectorPtr out1 = DrainRoot(r1.get(), &c1, false);
  RowVectorPtr out4 = DrainRoot(r4.get(), &c4, false);
  ASSERT_EQ(out1->size(), size_t{1} << 20);
  ExpectBytesEqual(*out1, *out4, "reduce_by_key 1M distinct keys");
  ExpectNoFallback(stats4, "ReduceByKey");
  EXPECT_EQ(stats4.GetCounter("reduce.rehash"), 0);
}

TEST(ReduceByKeyParity, KeylessFloatSumStableAcrossThreadCounts) {
  // Scalar (no-key) aggregation: the fixed-shape pairwise combine tree
  // makes float SUM byte-stable at ANY thread count — 1, 2 and 4 threads
  // all produce the same bytes, and no serial fallback is recorded.
  RowVectorPtr data = MakeKv(100000, 1000, 23);
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggKind::kSum, ex::Col(1), "s", AtomType::kFloat64});
  aggs.push_back(AggSpec{AggKind::kCount, nullptr, "c", AtomType::kInt64});
  aggs.push_back(AggSpec{AggKind::kMin, ex::Col(1), "mn", AtomType::kFloat64});
  auto run = [&](int threads, StatsRegistry* stats) {
    ExecContext ctx;
    InitCtx(&ctx, threads, stats);
    auto r = std::make_unique<Reduce>(
        std::make_unique<RowScan>(std::make_unique<CollectionSource>(
            std::vector<RowVectorPtr>{data})),
        aggs, KeyValueSchema());
    return DrainRoot(r.get(), &ctx, false);
  };
  StatsRegistry stats1, stats2, stats4;
  RowVectorPtr out1 = run(1, &stats1);
  RowVectorPtr out2 = run(2, &stats2);
  RowVectorPtr out4 = run(4, &stats4);
  ASSERT_EQ(out1->size(), 1u);
  ExpectBytesEqual(*out1, *out2, "keyless reduce 2 threads");
  ExpectBytesEqual(*out1, *out4, "keyless reduce 4 threads");
  ExpectNoFallback(stats4, "ReduceByKey");
}

TEST(ReduceByKeyParity, EmptyInput) {
  RowVectorPtr data = RowVector::Make(KeyValueSchema());
  StatsRegistry stats4;
  ExecContext c4;
  InitCtx(&c4, 4, &stats4);
  auto r4 = MakeReduce(data, IntAggs());
  RowVectorPtr out4 = DrainRoot(r4.get(), &c4, false);
  EXPECT_EQ(out4->size(), 0u);
}

// ---------------------------------------------------------------------------
// PartitionOp (single-pass) parity.
// ---------------------------------------------------------------------------

TEST(PartitionOpParity, FourThreadsByteEqual) {
  RowVectorPtr data = MakeKv(50000, 100000, 21);
  RadixSpec spec{5, 0, RadixHash::kIdentity};
  auto run = [&](int threads, StatsRegistry* stats) {
    ExecContext ctx;
    InitCtx(&ctx, threads, stats);
    PartitionOp op(std::make_unique<RowScan>(
                       std::make_unique<CollectionSource>(
                           std::vector<RowVectorPtr>{data})),
                   spec, 0);
    EXPECT_TRUE(op.Open(&ctx).ok());
    std::vector<RowVectorPtr> parts;
    Tuple t;
    while (op.Next(&t)) {
      EXPECT_EQ(t[0].i64(), static_cast<int64_t>(parts.size()));
      parts.push_back(t[1].collection());
    }
    EXPECT_TRUE(op.status().ok()) << op.status().ToString();
    EXPECT_TRUE(op.Close().ok());
    return parts;
  };
  StatsRegistry stats1, stats4;
  auto parts1 = run(1, &stats1);
  auto parts4 = run(4, &stats4);
  ASSERT_EQ(parts1.size(), parts4.size());
  for (size_t p = 0; p < parts1.size(); ++p) {
    ExpectBytesEqual(*parts1[p], *parts4[p],
                     "partition " + std::to_string(p));
  }
  ExpectNoFallback(stats4, "Partition");
}

// ---------------------------------------------------------------------------
// Sort / TopK: NaN total order (the CompareRows strict-weak-ordering
// bugfix) + morsel-parallel run formation with loser-tree merge. The
// TPC-H block below additionally runs the Q3/Q18 ORDER BY ... LIMIT
// plans through the parallel driver-side TopK at 8 threads.
// ---------------------------------------------------------------------------

Schema SortSchema() {
  return Schema({Field::F64("key"), Field::I64("seq"), Field::F64("key2")});
}

/// Float rows with adversarial keys: NaNs, +/-0.0, +/-inf, and heavy
/// duplicates (integral keys) so the original-row-index tie-break is
/// exercised everywhere. `seq` records the input position.
RowVectorPtr MakeFloatRows(size_t rows, uint32_t seed) {
  RowVectorPtr data = RowVector::Make(SortSchema());
  data->Reserve(rows);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-100.0, 100.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < rows; ++i) {
    RowWriter w = data->AppendRow();
    double k;
    switch (rng() % 16) {
      case 0: k = nan; break;
      case 1: k = 0.0; break;
      case 2: k = -0.0; break;
      case 3: k = (rng() % 2) ? inf : -inf; break;
      default: k = std::floor(dist(rng)); break;  // dup-heavy
    }
    w.SetFloat64(0, k);
    w.SetInt64(1, static_cast<int64_t>(i));
    w.SetFloat64(2, std::floor(dist(rng)));
  }
  return data;
}

SubOpPtr MakeSort(const RowVectorPtr& data, std::vector<SortKey> keys) {
  return std::make_unique<SortOp>(
      std::make_unique<RowScan>(std::make_unique<CollectionSource>(
          std::vector<RowVectorPtr>{data})),
      std::move(keys), data->schema());
}

SubOpPtr MakeTopK(const RowVectorPtr& data, std::vector<SortKey> keys,
                  size_t k) {
  return std::make_unique<TopK>(
      std::make_unique<RowScan>(std::make_unique<CollectionSource>(
          std::vector<RowVectorPtr>{data})),
      std::move(keys), k, data->schema());
}

TEST(SortNaNOrder, TotalOrderMatchesStableOracle) {
  // Independent oracle: stable partition of the input into non-NaN rows
  // stable-sorted by (value, input order) and NaN rows in input order
  // appended last (ascending) / prepended (descending).
  RowVectorPtr data = MakeFloatRows(4000, 17);
  for (bool desc : {false, true}) {
    StatsRegistry stats;
    ExecContext ctx;
    InitCtx(&ctx, 1, &stats);
    auto sort = MakeSort(data, {{0, desc}});
    RowVectorPtr out = DrainRoot(sort.get(), &ctx, /*batched=*/true);
    ASSERT_EQ(out->size(), data->size());

    std::vector<uint32_t> oracle(data->size());
    for (uint32_t i = 0; i < oracle.size(); ++i) oracle[i] = i;
    std::stable_sort(oracle.begin(), oracle.end(),
                     [&](uint32_t x, uint32_t y) {
                       double a = data->row(x).GetFloat64(0);
                       double b = data->row(y).GetFloat64(0);
                       bool na = std::isnan(a), nb = std::isnan(b);
                       if (na || nb) return desc ? (na && !nb) : (!na && nb);
                       return desc ? b < a : a < b;
                     });
    for (size_t i = 0; i < oracle.size(); ++i) {
      ASSERT_EQ(out->row(i).GetInt64(1), data->row(oracle[i]).GetInt64(1))
          << "desc=" << desc << " position " << i;
    }
    // Placement: NaNs last ascending, first descending.
    size_t nans = 0;
    for (size_t i = 0; i < data->size(); ++i) {
      nans += std::isnan(data->row(i).GetFloat64(0));
    }
    ASSERT_GT(nans, 0u);
    for (size_t i = 0; i < out->size(); ++i) {
      bool in_nan_block = desc ? i < nans : i >= out->size() - nans;
      EXPECT_EQ(std::isnan(out->row(i).GetFloat64(0)), in_nan_block)
          << "desc=" << desc << " position " << i;
    }
  }
}

TEST(SortNaNOrder, NegativeZeroTiesKeepInputOrder) {
  // -0.0 == 0.0 under the total order: rows with either key form one tie
  // group emitted in input order (the stable tie-break), regardless of
  // the zero's sign.
  RowVectorPtr data = RowVector::Make(SortSchema());
  const double zeros[] = {0.0, -0.0, -0.0, 0.0, -0.0};
  for (size_t i = 0; i < 5; ++i) {
    RowWriter w = data->AppendRow();
    w.SetFloat64(0, zeros[i]);
    w.SetInt64(1, static_cast<int64_t>(i));
    w.SetFloat64(2, 0.0);
  }
  StatsRegistry stats;
  ExecContext ctx;
  InitCtx(&ctx, 1, &stats);
  auto sort = MakeSort(data, {{0, false}});
  RowVectorPtr out = DrainRoot(sort.get(), &ctx, false);
  ASSERT_EQ(out->size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out->row(i).GetInt64(1), static_cast<int64_t>(i));
    // The byte pattern (zero sign) must survive the permutation intact.
    EXPECT_EQ(std::signbit(out->row(i).GetFloat64(0)), std::signbit(zeros[i]));
  }
}

class SortParallelParity
    : public ::testing::TestWithParam<std::vector<SortKey>> {};

TEST_P(SortParallelParity, FourThreadsByteEqual) {
  const std::vector<SortKey> keys = GetParam();
  RowVectorPtr data = MakeFloatRows(50000, 41);
  for (bool batched : {false, true}) {
    StatsRegistry stats1, stats4;
    ExecContext c1, c4;
    InitCtx(&c1, 1, &stats1);
    InitCtx(&c4, 4, &stats4);
    auto s1 = MakeSort(data, keys);
    auto s4 = MakeSort(data, keys);
    RowVectorPtr out1 = DrainRoot(s1.get(), &c1, batched);
    RowVectorPtr out4 = DrainRoot(s4.get(), &c4, batched);
    ASSERT_EQ(out1->size(), data->size());
    ExpectBytesEqual(*out1, *out4,
                     std::string("sort batched=") + (batched ? "1" : "0"));
    ExpectNoFallback(stats4, "Sort");
    EXPECT_GT(stats4.GetCounter("parallel.sort.runs"), 0)
        << "4-thread sort did not take the parallel run-sort path";
    if (batched) {
      EXPECT_EQ(stats4.GetCounter("vectorized.default_adapter.Sort"), 0)
          << "Sort served batches through the default adapter";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Keys, SortParallelParity,
    ::testing::Values(std::vector<SortKey>{{0, false}},
                      std::vector<SortKey>{{0, true}},
                      std::vector<SortKey>{{0, true}, {2, false}},
                      std::vector<SortKey>{{2, false}, {0, false}}),
    [](const ::testing::TestParamInfo<std::vector<SortKey>>& info) {
      std::string name;
      for (const SortKey& k : info.param) {
        name += "c" + std::to_string(k.col) + (k.desc ? "d" : "a");
      }
      return name;
    });

TEST(TopKParallelParity, ByteEqualAndPrefixOfFullSort) {
  RowVectorPtr data = MakeFloatRows(50000, 43);
  const std::vector<SortKey> keys = {{0, true}, {2, false}};
  StatsRegistry stats_full;
  ExecContext ctx_full;
  InitCtx(&ctx_full, 1, &stats_full);
  auto full = MakeSort(data, keys);
  RowVectorPtr sorted = DrainRoot(full.get(), &ctx_full, true);
  for (size_t k : {size_t{0}, size_t{1}, size_t{100}, size_t{4096},
                   data->size(), 2 * data->size()}) {
    for (bool batched : {false, true}) {
      StatsRegistry stats1, stats4;
      ExecContext c1, c4;
      InitCtx(&c1, 1, &stats1);
      InitCtx(&c4, 4, &stats4);
      auto t1 = MakeTopK(data, keys, k);
      auto t4 = MakeTopK(data, keys, k);
      RowVectorPtr out1 = DrainRoot(t1.get(), &c1, batched);
      RowVectorPtr out4 = DrainRoot(t4.get(), &c4, batched);
      // k is a literal count: k = 0 emits nothing (LIMIT 0 semantics).
      const size_t want = std::min(k, data->size());
      ASSERT_EQ(out1->size(), want);
      ExpectBytesEqual(*out1, *out4, "topk k=" + std::to_string(k));
      ExpectNoFallback(stats4, "Sort");
      // Limit semantics: top-k must be exactly the first k of the full
      // sorted output (the bounded selection changes cost, not order).
      if (out1->byte_size() > 0) {
        ASSERT_EQ(0, std::memcmp(sorted->data(), out1->data(),
                                 out1->byte_size()))
            << "topk k=" << k << " is not a prefix of the full sort";
      }
    }
  }
}

TEST(SortTopKParallelParity, EmptyAndTinyInputs) {
  for (size_t rows : {size_t{0}, size_t{1}, size_t{3}}) {
    RowVectorPtr data = MakeFloatRows(rows, 47);
    for (bool topk : {false, true}) {
      StatsRegistry stats1, stats4;
      ExecContext c1, c4;
      InitCtx(&c1, 1, &stats1);
      InitCtx(&c4, 4, &stats4);
      auto p1 = topk ? MakeTopK(data, {{0, false}}, 2)
                     : MakeSort(data, {{0, false}});
      auto p4 = topk ? MakeTopK(data, {{0, false}}, 2)
                     : MakeSort(data, {{0, false}});
      RowVectorPtr out1 = DrainRoot(p1.get(), &c1, true);
      RowVectorPtr out4 = DrainRoot(p4.get(), &c4, true);
      ExpectBytesEqual(*out1, *out4,
                       "tiny sort rows=" + std::to_string(rows));
    }
  }
}

TEST(SortTopKParallelParity, MixedNextAndNextBatch) {
  RowVectorPtr data = MakeFloatRows(30000, 53);
  auto drain_mixed = [&](int threads) {
    StatsRegistry stats;
    ExecContext ctx;
    InitCtx(&ctx, threads, &stats);
    auto s = MakeSort(data, {{0, false}});
    EXPECT_TRUE(s->Open(&ctx).ok());
    RowVectorPtr out = RowVector::Make(data->schema());
    Tuple t;
    // A few row pulls first, then batch pulls for the remainder: both
    // protocols share one emit cursor over the sorted permutation.
    for (int i = 0; i < 100 && s->Next(&t); ++i) {
      out->AppendRaw(t[0].row().data());
    }
    RowBatch batch;
    while (s->NextBatch(&batch)) {
      out->AppendRawBatch(batch.data(), batch.size());
    }
    EXPECT_TRUE(s->status().ok()) << s->status().ToString();
    EXPECT_TRUE(s->Close().ok());
    return out;
  };
  RowVectorPtr out1 = drain_mixed(1);
  RowVectorPtr out4 = drain_mixed(4);
  ASSERT_EQ(out1->size(), data->size());
  ExpectBytesEqual(*out1, *out4, "mixed protocol sort");
}

// ---------------------------------------------------------------------------
// num_threads=1 must take exactly today's serial code paths (no fallback
// counters, no parallel counters — it never even plans workers).
// ---------------------------------------------------------------------------

TEST(SerialBaseline, NoParallelCountersAtOneThread) {
  RowVectorPtr r = MakeKv(20000, 4000, 31, 4);
  RowVectorPtr s = MakeKv(20000, 4000, 32);
  StatsRegistry stats;
  ExecContext ctx;
  InitCtx(&ctx, 1, &stats);
  auto plan = BuildPartitionedJoinPlan(r, s, JoinType::kInner);
  DrainRoot(plan.get(), &ctx, true);
  for (const auto& [key, value] : stats.counters()) {
    EXPECT_TRUE(key.rfind("parallel.", 0) != 0)
        << "unexpected parallel counter " << key << " = " << value;
  }
}

// ---------------------------------------------------------------------------
// TPC-H reference queries: 1 vs 4 threads, byte-equal.
// ---------------------------------------------------------------------------

const tpch::TpchTables& Db() {
  static tpch::TpchTables db = [] {
    tpch::GeneratorOptions gen;
    gen.scale_factor = 0.01;
    gen.seed = 7;
    return tpch::GenerateTpch(gen);
  }();
  return db;
}

class TpchParallelParity : public ::testing::TestWithParam<int> {};

TEST_P(TpchParallelParity, FourThreadsByteEqual) {
  const int query = GetParam();
  auto run = [&](int threads) {
    tpch::TpchRunOptions opts = tpch::TpchRunOptions::Rdma(2);
    opts.fabric.throttle = false;
    opts.storage.throttle = false;
    opts.lambda.throttle = false;
    opts.lambda.s3.throttle = false;
    opts.s3select.throttle = false;
    opts.exec.network_radix_bits = 4;
    opts.exec.num_threads = threads;
    opts.exec.parallel_min_rows = 256;
    auto ctx = tpch::PrepareTpch(Db(), opts);
    EXPECT_TRUE(ctx.ok()) << ctx.status().ToString();
    StatsRegistry stats;
    auto result = tpch::RunTpchQuery(query, **ctx, opts, &stats);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *result;
  };
  RowVectorPtr out1 = run(1);
  // 8 across 2 ranks = 4 workers per rank.
  RowVectorPtr out8 = run(8);
  ExpectBytesEqual(*out1, *out8, "tpch q" + std::to_string(query));
}

INSTANTIATE_TEST_SUITE_P(Queries, TpchParallelParity,
                         ::testing::Values(1, 3, 4, 6, 12, 14, 18, 19),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

TEST(TpchParallelParity, Q1ParallelDriverMatchesReference) {
  // TPC-H Q1 is the pure-aggregation query (two 1-char string keys, four
  // float SUMs with computed inputs + COUNT): exactly the shape that used
  // to fall back serial. Run it through the parallel driver at 8 threads
  // and diff against the independent reference implementation.
  tpch::TpchRunOptions opts = tpch::TpchRunOptions::Rdma(2);
  opts.fabric.throttle = false;
  opts.storage.throttle = false;
  opts.lambda.throttle = false;
  opts.lambda.s3.throttle = false;
  opts.s3select.throttle = false;
  opts.exec.network_radix_bits = 4;
  opts.exec.num_threads = 8;
  opts.exec.parallel_min_rows = 256;
  auto ctx = tpch::PrepareTpch(Db(), opts);
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
  StatsRegistry stats;
  auto result = tpch::RunTpchQuery(1, **ctx, opts, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(stats.GetCounter("parallel.serial_fallback.ReduceByKey"), 0)
      << "Q1 aggregation fell back to serial execution";

  RowVectorPtr expected = tpch::ReferenceQ1(Db());
  const RowVector& actual = **result;
  ASSERT_EQ(expected->size(), actual.size());
  for (size_t i = 0; i < expected->size(); ++i) {
    RowRef e = expected->row(i);
    RowRef a = actual.row(i);
    for (size_t c = 0; c < expected->schema().num_fields(); ++c) {
      const int col = static_cast<int>(c);
      switch (expected->schema().field(c).type) {
        case AtomType::kInt32:
        case AtomType::kDate:
          ASSERT_EQ(e.GetInt32(col), a.GetInt32(col)) << "row " << i;
          break;
        case AtomType::kInt64:
          ASSERT_EQ(e.GetInt64(col), a.GetInt64(col)) << "row " << i;
          break;
        case AtomType::kFloat64: {
          const double x = e.GetFloat64(col), y = a.GetFloat64(col);
          const double tol =
              1e-6 * std::max({1.0, std::fabs(x), std::fabs(y)});
          ASSERT_NEAR(x, y, tol) << "row " << i << " col " << c;
          break;
        }
        case AtomType::kString:
          ASSERT_EQ(e.GetString(col), a.GetString(col)) << "row " << i;
          break;
      }
    }
  }
}

}  // namespace
}  // namespace modularis
