/// \file test_memory.cc
/// Memory governance (docs/DESIGN-memory.md): budget accounting, the
/// shared admission rules, the SpillSet chunk layer, and the three
/// blocking operators' graceful-degradation paths. The load-bearing
/// property everywhere is byte-equality: at any budget and thread count
/// the spilled output must be indistinguishable from the in-memory one.

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/exec_context.h"
#include "core/memory.h"
#include "storage/blob_store.h"
#include "storage/spill.h"
#include "suboperators/agg_ops.h"
#include "suboperators/basic_ops.h"
#include "suboperators/join_ops.h"
#include "suboperators/scan_ops.h"
#include "tpch/queries.h"

namespace modularis {
namespace {

// ---------------------------------------------------------------------------
// MemoryBudget / admission rules
// ---------------------------------------------------------------------------

TEST(MemoryBudgetTest, ChargesReleasesAndTracksPeak) {
  MemoryBudget budget(1000);
  EXPECT_EQ(budget.limit(), 1000u);
  EXPECT_FALSE(budget.unlimited());

  budget.Charge(600);
  EXPECT_EQ(budget.used(), 600u);
  EXPECT_EQ(budget.peak(), 600u);
  budget.Release(600);
  budget.Charge(200);
  budget.Charge(300);
  EXPECT_EQ(budget.used(), 500u);
  EXPECT_EQ(budget.peak(), 600u);  // high-water mark survives releases

  EXPECT_EQ(budget.denials(), 0);
  budget.NoteDenial();
  EXPECT_EQ(budget.denials(), 1);
}

TEST(MemoryBudgetTest, ZeroLimitMeansUnlimitedButStillAccounts) {
  MemoryBudget budget(0);
  EXPECT_TRUE(budget.unlimited());
  EXPECT_FALSE(budget.WouldExceed(size_t{1} << 60));
  budget.Charge(123);
  EXPECT_EQ(budget.peak(), 123u);
}

TEST(MemoryBudgetTest, AdmissionRulesArePureFunctions) {
  EXPECT_TRUE(MemoryBudget(100).WouldExceed(101));
  EXPECT_FALSE(MemoryBudget(100).WouldExceed(100));

  EXPECT_FALSE(ShouldSpill(1 << 20, 0));       // unlimited never spills
  EXPECT_FALSE(ShouldSpill(50, 100));          // half the budget is fine
  EXPECT_TRUE(ShouldSpill(51, 100));           // beyond half: degrade
  EXPECT_EQ(SpillQuotaBytes(100), 25u);        // a quarter for the quota
  EXPECT_EQ(SpillQuotaBytes(0), 0u);
}

TEST(MemoryBudgetTest, ScopedChargeReleasesOnDestruction) {
  MemoryBudget budget(0);
  {
    ScopedCharge charge(&budget);
    charge.Add(100);
    charge.Add(50);
    EXPECT_EQ(charge.charged(), 150u);
    EXPECT_EQ(budget.used(), 150u);
  }
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.peak(), 150u);

  ScopedCharge charge;
  charge.Add(10);  // unbound: a no-op, not a crash
  charge.Bind(&budget);
  charge.Add(10);
  charge.Reset();
  EXPECT_EQ(budget.used(), 0u);
}

// ---------------------------------------------------------------------------
// SpillSet
// ---------------------------------------------------------------------------

TEST(SpillSetTest, ChunkRoundTripPreservesRowsAndIndices) {
  storage::BlobStore store;
  ExecContext ctx;
  ctx.spill_store = &store;

  RowVectorPtr data = RowVector::Make(KeyValueSchema());
  for (int64_t i = 0; i < 100; ++i) {
    RowWriter w = data->AppendRow();
    w.SetInt64(0, i);
    w.SetInt64(1, i * 7);
  }
  std::vector<uint32_t> idx(100);
  for (uint32_t i = 0; i < 100; ++i) idx[i] = 1000 + i;

  {
    storage::SpillSet spill(&ctx, "test");
    const uint32_t stride = data->row_size();
    // Two chunks of one partition plus one of another.
    ASSERT_TRUE(
        spill.WriteChunk(0, 3, data->row(0).data(), 60, stride, idx.data())
            .ok());
    ASSERT_TRUE(spill.WriteChunk(0, 3, data->row(60).data(), 40, stride,
                                 idx.data() + 60)
                    .ok());
    ASSERT_TRUE(
        spill.WriteChunk(0, 7, data->row(0).data(), 10, stride, idx.data())
            .ok());
    // Empty writes are a no-op, not an empty object.
    ASSERT_TRUE(spill.WriteChunk(0, 9, nullptr, 0, stride, nullptr).ok());
    EXPECT_EQ(spill.NumChunks(0, 3), 2);
    EXPECT_EQ(spill.NumChunks(0, 7), 1);
    EXPECT_EQ(spill.NumChunks(0, 9), 0);
    EXPECT_GT(spill.bytes_written(), 0);

    RowVectorPtr back = RowVector::Make(KeyValueSchema());
    std::vector<uint32_t> back_idx;
    ASSERT_TRUE(spill.ReadPartition(0, 3, back.get(), &back_idx).ok());
    ASSERT_EQ(back->size(), 100u);
    EXPECT_EQ(0, std::memcmp(back->data(), data->data(),
                             data->size() * data->row_size()));
    EXPECT_EQ(back_idx, idx);

    spill.DeletePartition(0, 7);
    EXPECT_EQ(spill.NumChunks(0, 7), 0);
    EXPECT_FALSE(store.List(spill.prefix()).empty());
  }
  // Destruction deletes everything the set ever wrote.
  EXPECT_TRUE(store.List("spill/").empty());
}

// ---------------------------------------------------------------------------
// Operator spill paths
// ---------------------------------------------------------------------------

RowVectorPtr MakeKv(int64_t rows, int64_t key_space, uint32_t seed) {
  RowVectorPtr data = RowVector::Make(KeyValueSchema());
  data->Reserve(rows);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> dist(0, key_space - 1);
  for (int64_t i = 0; i < rows; ++i) {
    RowWriter w = data->AppendRow();
    w.SetInt64(0, dist(rng));
    w.SetInt64(1, i);
  }
  return data;
}

SubOpPtr ScanOf(RowVectorPtr data) {
  return std::make_unique<RowScan>(std::make_unique<CollectionSource>(
      std::vector<RowVectorPtr>{std::move(data)}));
}

/// One budgeted run: private store, budget and stats, so tests can
/// assert counters, denials and spill-file cleanup per run.
struct BudgetedRun {
  storage::BlobStore store;
  MemoryBudget budget;
  StatsRegistry stats;
  ExecContext ctx;

  explicit BudgetedRun(size_t limit, bool with_store = true)
      : budget(limit) {
    ctx.options.memory_limit_bytes = limit;
    ctx.budget = &budget;
    ctx.spill_store = with_store ? &store : nullptr;
    ctx.stats = &stats;
  }
};

Status DrainBatches(SubOperator* op, ExecContext* ctx, const Schema& schema,
                    RowVectorPtr* out) {
  MODULARIS_RETURN_NOT_OK(op->Open(ctx));
  RowVectorPtr sink = RowVector::Make(schema);
  RowBatch batch;
  while (op->NextBatch(&batch)) {
    for (size_t i = 0; i < batch.size(); ++i) {
      sink->AppendRaw(batch.row(i).data());
    }
  }
  MODULARIS_RETURN_NOT_OK(op->status());
  MODULARIS_RETURN_NOT_OK(op->Close());
  *out = std::move(sink);
  return Status::OK();
}

void ExpectBytesEqual(const RowVector& expected, const RowVector& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  ASSERT_EQ(expected.row_size(), actual.row_size());
  EXPECT_EQ(0, std::memcmp(expected.data(), actual.data(),
                           expected.size() * expected.row_size()))
      << "spilled output is not byte-equal to the in-memory output";
}

std::vector<AggSpec> SumCountAggs() {
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggKind::kSum, ex::Col(1), "s", AtomType::kInt64});
  aggs.push_back(AggSpec{AggKind::kCount, nullptr, "c", AtomType::kInt64});
  return aggs;
}

TEST(SpillAggTest, SpilledAggregationIsByteEqual) {
  RowVectorPtr data = MakeKv(1 << 16, 1 << 12, 11);

  RowVectorPtr expected;
  {
    BudgetedRun run(0);
    ReduceByKey rk(ScanOf(data), {0}, SumCountAggs(), KeyValueSchema());
    ASSERT_TRUE(
        DrainBatches(&rk, &run.ctx, rk.out_schema(), &expected).ok());
    EXPECT_EQ(run.stats.GetCounter("spill.ops.ReduceByKey"), 0);
  }

  BudgetedRun run(256 << 10);  // input ~1MB >> limit/2: must spill
  RowVectorPtr actual;
  {
    ReduceByKey rk(ScanOf(data), {0}, SumCountAggs(), KeyValueSchema());
    ASSERT_TRUE(DrainBatches(&rk, &run.ctx, rk.out_schema(), &actual).ok());
  }
  ExpectBytesEqual(*expected, *actual);
  EXPECT_EQ(run.stats.GetCounter("spill.ops.ReduceByKey"), 1);
  EXPECT_GT(run.stats.GetCounter("spill.partitions"), 0);
  EXPECT_GT(run.stats.GetCounter("spill.bytes"), 0);
  EXPECT_GE(run.stats.GetCounter("spill.passes"), 1);
  EXPECT_GE(run.budget.denials(), 1);
  EXPECT_GT(run.budget.peak(), 0u);
  EXPECT_TRUE(run.store.List("spill/").empty()) << "spill files leaked";
}

TEST(SpillAggTest, OversizedPartitionsRecurse) {
  // 8KB budget -> 2KB quota (128 rows), but the 256-way first pass leaves
  // ~256 rows per partition: every spilled partition must recurse at
  // least once, bumping spill.passes past the first pass.
  RowVectorPtr data = MakeKv(1 << 16, 1 << 16, 13);

  RowVectorPtr expected;
  {
    BudgetedRun run(0);
    ReduceByKey rk(ScanOf(data), {0}, SumCountAggs(), KeyValueSchema());
    ASSERT_TRUE(
        DrainBatches(&rk, &run.ctx, rk.out_schema(), &expected).ok());
  }

  BudgetedRun run(8 << 10);
  RowVectorPtr actual;
  {
    ReduceByKey rk(ScanOf(data), {0}, SumCountAggs(), KeyValueSchema());
    ASSERT_TRUE(DrainBatches(&rk, &run.ctx, rk.out_schema(), &actual).ok());
  }
  ExpectBytesEqual(*expected, *actual);
  EXPECT_GE(run.stats.GetCounter("spill.passes"), 2);
  EXPECT_TRUE(run.store.List("spill/").empty());
}

TEST(SpillSortTest, ExternalSortIsByteEqual) {
  // 50k rows at a 16KB budget: 4KB quota -> 256-row runs -> ~196 runs,
  // deep enough that the cascade merge runs intermediate passes too.
  RowVectorPtr data = MakeKv(50000, 1 << 10, 17);
  const std::vector<SortKey> keys = {{0, false}, {1, true}};

  RowVectorPtr expected;
  {
    BudgetedRun run(0);
    SortOp sort(ScanOf(data), keys, KeyValueSchema());
    ASSERT_TRUE(
        DrainBatches(&sort, &run.ctx, KeyValueSchema(), &expected).ok());
    EXPECT_EQ(run.stats.GetCounter("spill.ops.Sort"), 0);
  }

  BudgetedRun run(16 << 10);
  RowVectorPtr actual;
  {
    SortOp sort(ScanOf(data), keys, KeyValueSchema());
    ASSERT_TRUE(
        DrainBatches(&sort, &run.ctx, KeyValueSchema(), &actual).ok());
  }
  ExpectBytesEqual(*expected, *actual);
  EXPECT_EQ(run.stats.GetCounter("spill.ops.Sort"), 1);
  EXPECT_GT(run.stats.GetCounter("spill.partitions"), 1);
  EXPECT_GE(run.stats.GetCounter("spill.passes"), 2);
  EXPECT_GE(run.budget.denials(), 1);
  EXPECT_TRUE(run.store.List("spill/").empty());
}

TEST(SpillSortTest, ExternalTopKIsByteEqual) {
  RowVectorPtr data = MakeKv(50000, 1 << 10, 19);
  const std::vector<SortKey> keys = {{1, true}};

  RowVectorPtr expected;
  {
    BudgetedRun run(0);
    TopK topk(ScanOf(data), keys, 100, KeyValueSchema());
    ASSERT_TRUE(
        DrainBatches(&topk, &run.ctx, KeyValueSchema(), &expected).ok());
  }
  ASSERT_EQ(expected->size(), 100u);

  BudgetedRun run(16 << 10);
  RowVectorPtr actual;
  {
    TopK topk(ScanOf(data), keys, 100, KeyValueSchema());
    ASSERT_TRUE(
        DrainBatches(&topk, &run.ctx, KeyValueSchema(), &actual).ok());
  }
  ExpectBytesEqual(*expected, *actual);
  EXPECT_EQ(run.stats.GetCounter("spill.ops.Sort"), 1);
  EXPECT_TRUE(run.store.List("spill/").empty());
}

class SpillJoinTest : public ::testing::TestWithParam<JoinType> {};

TEST_P(SpillJoinTest, GraceJoinIsByteEqual) {
  const JoinType type = GetParam();
  // FK shape: every build key appears twice; half the probe keys miss.
  RowVectorPtr build = MakeKv(1 << 15, 1 << 14, 23);
  RowVectorPtr probe = MakeKv(1 << 16, 1 << 15, 29);

  auto make_join = [&] {
    return std::make_unique<BuildProbe>(ScanOf(build), ScanOf(probe),
                                        KeyValueSchema(), KeyValueSchema(),
                                        /*build_key_col=*/0,
                                        /*probe_key_col=*/0, type);
  };

  RowVectorPtr expected;
  {
    BudgetedRun run(0);
    auto bp = make_join();
    ASSERT_TRUE(
        DrainBatches(bp.get(), &run.ctx, bp->out_schema(), &expected).ok());
    EXPECT_EQ(run.stats.GetCounter("spill.ops.BuildProbe"), 0);
  }
  ASSERT_GT(expected->size(), 0u);

  // Build side is 512KB: a 128KB budget forces the Grace path with a
  // resident hybrid prefix; a 32KB budget additionally forces oversized
  // partitions through the chunked multi-group detour.
  for (size_t limit : {size_t{128} << 10, size_t{32} << 10}) {
    BudgetedRun run(limit);
    RowVectorPtr actual;
    {
      auto bp = make_join();
      ASSERT_TRUE(
          DrainBatches(bp.get(), &run.ctx, bp->out_schema(), &actual).ok());
    }
    ExpectBytesEqual(*expected, *actual);
    EXPECT_EQ(run.stats.GetCounter("spill.ops.BuildProbe"), 1)
        << "limit=" << limit;
    EXPECT_GT(run.stats.GetCounter("spill.partitions"), 0);
    EXPECT_GT(run.stats.GetCounter("spill.bytes"), 0);
    EXPECT_GE(run.budget.denials(), 1);
    EXPECT_TRUE(run.store.List("spill/").empty()) << "spill files leaked";
  }
}

INSTANTIATE_TEST_SUITE_P(AllJoinTypes, SpillJoinTest,
                         ::testing::Values(JoinType::kInner, JoinType::kSemi,
                                           JoinType::kAnti),
                         [](const ::testing::TestParamInfo<JoinType>& info) {
                           switch (info.param) {
                             case JoinType::kInner: return "Inner";
                             case JoinType::kSemi: return "Semi";
                             default: return "Anti";
                           }
                         });

// ---------------------------------------------------------------------------
// Fail-fast admission
// ---------------------------------------------------------------------------

TEST(SpillFailFastTest, UnsatisfiableBudgetNamesOperatorAndWatermark) {
  RowVectorPtr data = MakeKv(1 << 14, 1 << 10, 31);

  {
    // Quota (limit/4 = 16 bytes) cannot hold one 16+ byte row... the
    // KeyValueSchema row is exactly 16 bytes, so use 32: quota 8 < 16.
    BudgetedRun run(32);
    ReduceByKey rk(ScanOf(data), {0}, SumCountAggs(), KeyValueSchema());
    RowVectorPtr out;
    Status st = DrainBatches(&rk, &run.ctx, rk.out_schema(), &out);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
    EXPECT_NE(st.ToString().find("ReduceByKey"), std::string::npos);
    EXPECT_NE(st.ToString().find("memory_limit_bytes=32"), std::string::npos);
    EXPECT_GE(run.budget.denials(), 1);
    EXPECT_TRUE(run.store.List("spill/").empty());
  }
  {
    // A viable quota but no spill store: degrade is impossible, fail fast.
    BudgetedRun run(1 << 10, /*with_store=*/false);
    SortOp sort(ScanOf(data), {{0, false}}, KeyValueSchema());
    RowVectorPtr out;
    Status st = DrainBatches(&sort, &run.ctx, KeyValueSchema(), &out);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
    EXPECT_NE(st.ToString().find("Sort"), std::string::npos);
    EXPECT_NE(st.ToString().find("no spill store"), std::string::npos);
  }
  {
    BudgetedRun run(1 << 10, /*with_store=*/false);
    BuildProbe bp(ScanOf(data), ScanOf(data), KeyValueSchema(),
                  KeyValueSchema(), 0, 0);
    RowVectorPtr out;
    Status st = DrainBatches(&bp, &run.ctx, bp.out_schema(), &out);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
    EXPECT_NE(st.ToString().find("BuildProbe"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Cleanup on abort / cancellation, and retry convergence
// ---------------------------------------------------------------------------

TEST(SpillFaultTest, AbortedSpillLeavesNoFiles) {
  // Every spill Put fails and the retry budget is zero: the operator
  // aborts mid-scatter and the SpillSet destructor must still delete
  // whatever chunks made it to the store.
  RowVectorPtr data = MakeKv(1 << 15, 1 << 12, 37);
  BudgetedRun run(64 << 10);
  run.ctx.options.spill_fault.transient_failure_rate = 1.0;
  run.ctx.options.retry.max_retries = 0;
  run.ctx.options.retry.sleep = false;

  RowVectorPtr out;
  ReduceByKey rk(ScanOf(data), {0}, SumCountAggs(), KeyValueSchema());
  Status st = DrainBatches(&rk, &run.ctx, rk.out_schema(), &out);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(run.store.List("spill/").empty())
      << "aborted spill leaked files";
}

TEST(SpillFaultTest, CancelledSpillLeavesNoFiles) {
  RowVectorPtr data = MakeKv(1 << 15, 1 << 12, 41);
  BudgetedRun run(64 << 10);
  CancellationToken cancel;
  cancel.Cancel(Status::Aborted("user cancelled"));
  run.ctx.cancel = &cancel;

  RowVectorPtr out;
  {
    // Scoped: SortOp owns its SpillSet for the merge phase, so the
    // no-leak guarantee is "by operator destruction", not "by Close()".
    SortOp sort(ScanOf(data), {{0, false}}, KeyValueSchema());
    Status st = DrainBatches(&sort, &run.ctx, KeyValueSchema(), &out);
    ASSERT_FALSE(st.ok());
  }
  EXPECT_TRUE(run.store.List("spill/").empty())
      << "cancelled spill leaked files";
}

TEST(SpillFaultTest, InjectedTransientFaultsRetryAndConverge) {
  // PR 8 discipline: spill IO draws injected transient failures at 5%
  // and must converge through the shared retry policy to the exact
  // in-memory bytes.
  RowVectorPtr data = MakeKv(1 << 16, 1 << 12, 43);

  RowVectorPtr expected;
  {
    BudgetedRun run(0);
    ReduceByKey rk(ScanOf(data), {0}, SumCountAggs(), KeyValueSchema());
    ASSERT_TRUE(
        DrainBatches(&rk, &run.ctx, rk.out_schema(), &expected).ok());
  }

  BudgetedRun run(64 << 10);
  run.ctx.options.spill_fault.transient_failure_rate = 0.05;
  run.ctx.options.retry.max_retries = 12;
  run.ctx.options.retry.sleep = false;
  RowVectorPtr actual;
  {
    ReduceByKey rk(ScanOf(data), {0}, SumCountAggs(), KeyValueSchema());
    ASSERT_TRUE(DrainBatches(&rk, &run.ctx, rk.out_schema(), &actual).ok());
  }
  ExpectBytesEqual(*expected, *actual);
  EXPECT_GT(run.stats.GetCounter("retry.attempts"), 0)
      << "injection armed but no spill IO was retried";
  EXPECT_TRUE(run.store.List("spill/").empty());
}

}  // namespace
}  // namespace modularis

// ---------------------------------------------------------------------------
// TPC-H under a query-wide budget
// ---------------------------------------------------------------------------

namespace modularis::tpch {
namespace {

const TpchTables& Db() {
  static TpchTables db = [] {
    GeneratorOptions gen;
    gen.scale_factor = 0.01;
    gen.seed = 7;
    return GenerateTpch(gen);
  }();
  return db;
}

TpchRunOptions Unthrottled(TpchRunOptions opts) {
  opts.fabric.throttle = false;
  opts.lambda.throttle = false;
  opts.lambda.s3.throttle = false;
  opts.storage.throttle = false;
  opts.s3select.throttle = false;
  return opts;
}

void ExpectResultBytesEqual(const RowVector& expected,
                            const RowVector& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  ASSERT_EQ(expected.row_size(), actual.row_size());
  EXPECT_EQ(0, std::memcmp(expected.data(), actual.data(),
                           expected.size() * expected.row_size()))
      << "budgeted result is not byte-equal to the unlimited run";
}

/// All 8 queries at a budget small enough to force the spill paths in
/// joins, aggregations and the driver-side top-k sorts, at 1 and 4
/// threads: every result must be byte-equal to the unlimited run, and
/// no spill object may outlive its query.
TEST(TpchMemoryTest, BudgetedQueriesMatchUnlimitedByteForByte) {
  constexpr size_t kBudget = 16 << 10;
  for (int threads : {1, 4}) {
    TpchRunOptions base = Unthrottled(TpchRunOptions::Rdma(2));
    base.exec.network_radix_bits = 4;
    base.exec.num_threads = threads;
    auto ctx = PrepareTpch(Db(), base);
    ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();

    int64_t agg_spills = 0, join_spills = 0, sort_spills = 0;
    // All 8 queries at 16KB, plus Q3 at a harsher 1KB: the driver-side
    // sorts only see merged partials (a few hundred rows at sf 0.01),
    // so tripping that family's admission check needs a budget below
    // twice the partial size. Q3 at 1KB spills all three families.
    const std::pair<int, size_t> runs[] = {
        {1, kBudget},  {3, kBudget},  {4, kBudget},  {6, kBudget},
        {12, kBudget}, {14, kBudget}, {18, kBudget}, {19, kBudget},
        {3, size_t{1} << 10}};
    for (const auto& [q, limit] : runs) {
      SCOPED_TRACE("Q" + std::to_string(q) + " threads=" +
                   std::to_string(threads) + " limit=" +
                   std::to_string(limit));
      StatsRegistry ref_stats;
      auto expected = RunTpchQuery(q, **ctx, base, &ref_stats);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();

      TpchRunOptions budgeted = base;
      budgeted.exec.memory_limit_bytes = limit;
      StatsRegistry stats;
      auto result = RunTpchQuery(q, **ctx, budgeted, &stats);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ExpectResultBytesEqual(**expected, **result);

      agg_spills += stats.GetCounter("spill.ops.ReduceByKey");
      join_spills += stats.GetCounter("spill.ops.BuildProbe");
      sort_spills += stats.GetCounter("spill.ops.Sort");
      if (stats.GetCounter("spill.ops.ReduceByKey") +
              stats.GetCounter("spill.ops.BuildProbe") +
              stats.GetCounter("spill.ops.Sort") >
          0) {
        EXPECT_GT(stats.GetCounter("spill.partitions"), 0);
        EXPECT_GT(stats.GetCounter("spill.bytes"), 0);
        EXPECT_GT(stats.GetCounter("mem.denials"), 0);
      }
      EXPECT_GT(stats.GetCounter("mem.peak_bytes"), 0);
      EXPECT_TRUE((*ctx)->store->List("spill/").empty())
          << "spill files leaked";
    }
    // The budget must exercise every spilling family across the suite.
    EXPECT_GT(agg_spills, 0) << "no aggregation spilled at " << threads
                             << " threads";
    EXPECT_GT(join_spills, 0) << "no join spilled at " << threads
                              << " threads";
    EXPECT_GT(sort_spills, 0) << "no sort spilled at " << threads
                              << " threads";
  }
}

TEST(TpchMemoryTest, UnsatisfiableBudgetFailsFastAndClean) {
  TpchRunOptions opts = Unthrottled(TpchRunOptions::Rdma(2));
  opts.exec.network_radix_bits = 4;
  opts.exec.memory_limit_bytes = 64;  // quota of 16 bytes: nothing fits
  auto ctx = PrepareTpch(Db(), opts);
  ASSERT_TRUE(ctx.ok());

  StatsRegistry stats;
  auto result = RunTpchQuery(1, **ctx, opts, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status().ToString();
  EXPECT_NE(result.status().ToString().find("memory_limit_bytes"),
            std::string::npos);
  EXPECT_TRUE((*ctx)->store->List("spill/").empty());
}

TEST(TpchMemoryTest, InjectedSpillFaultsConvergeByteEqual) {
  TpchRunOptions base = Unthrottled(TpchRunOptions::Rdma(2));
  base.exec.network_radix_bits = 4;
  base.exec.num_threads = 2;
  auto ctx = PrepareTpch(Db(), base);
  ASSERT_TRUE(ctx.ok());

  // Q18 spills heavily at 16KB (Grace joins + recursive aggregation
  // passes), giving the 5% injector thousands of spill Puts to fail.
  StatsRegistry ref_stats;
  auto expected = RunTpchQuery(18, **ctx, base, &ref_stats);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  TpchRunOptions faulty = base;
  faulty.exec.memory_limit_bytes = 16 << 10;
  faulty.exec.spill_fault.transient_failure_rate = 0.05;
  faulty.exec.retry.max_retries = 12;
  faulty.exec.retry.sleep = false;
  StatsRegistry stats;
  auto result = RunTpchQuery(18, **ctx, faulty, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectResultBytesEqual(**expected, **result);
  EXPECT_GT(stats.GetCounter("retry.attempts"), 0);
  EXPECT_TRUE((*ctx)->store->List("spill/").empty());
}

}  // namespace
}  // namespace modularis::tpch
