#include <random>

#include <gtest/gtest.h>

#include "storage/blob_store.h"
#include "storage/column_file.h"
#include "storage/csv.h"

namespace modularis::storage {
namespace {

Schema TestSchema() {
  return Schema({Field::I64("id"), Field::F64("price"),
                 Field::Str("name", 16), Field::Date("day"),
                 Field::I32("qty")});
}

ColumnTablePtr MakeTable(size_t rows, uint32_t seed) {
  ColumnTablePtr table = ColumnTable::Make(TestSchema());
  std::mt19937 rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    table->column(0).AppendInt64(static_cast<int64_t>(i));
    table->column(1).AppendFloat64(static_cast<double>(rng() % 10000) / 100);
    table->column(2).AppendString("name" + std::to_string(rng() % 50));
    table->column(3).AppendInt32(DateFromYMD(1995, 1 + rng() % 12,
                                             1 + rng() % 28));
    table->column(4).AppendInt32(static_cast<int32_t>(rng() % 100));
  }
  table->FinishBulkLoad();
  return table;
}

void ExpectTablesEqual(const ColumnTable& a, const ColumnTable& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_TRUE(a.schema().Equals(b.schema()));
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.schema().num_fields(); ++c) {
      switch (a.schema().field(c).type) {
        case AtomType::kInt32:
        case AtomType::kDate:
          ASSERT_EQ(a.column(c).GetInt32(r), b.column(c).GetInt32(r));
          break;
        case AtomType::kInt64:
          ASSERT_EQ(a.column(c).GetInt64(r), b.column(c).GetInt64(r));
          break;
        case AtomType::kFloat64:
          ASSERT_NEAR(a.column(c).GetFloat64(r), b.column(c).GetFloat64(r),
                      1e-6);
          break;
        case AtomType::kString:
          ASSERT_EQ(a.column(c).GetString(r), b.column(c).GetString(r));
          break;
      }
    }
  }
}

TEST(CsvTest, RoundTrip) {
  ColumnTablePtr table = MakeTable(500, 7);
  std::string csv = WriteCsv(*table);
  auto parsed = ReadCsv(csv, TestSchema());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectTablesEqual(*table, **parsed);
}

TEST(CsvTest, RejectsMalformedNumbers) {
  auto parsed = ReadCsv("abc,1.0,n,1995-01-01,2\n",
                        TestSchema());
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, EmptyInputYieldsEmptyTable) {
  auto parsed = ReadCsv("", TestSchema());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)->num_rows(), 0u);
}

class ColumnFileRoundTrip : public ::testing::TestWithParam<size_t> {};

TEST_P(ColumnFileRoundTrip, PreservesAllRowsAcrossRowGroupSizes) {
  ColumnTablePtr table = MakeTable(3000, 11);
  ColumnFileWriteOptions opts;
  opts.rows_per_row_group = GetParam();
  std::string bytes = WriteColumnFile(*table, opts);

  auto reader = ColumnFileReader::Open(
      std::make_shared<StringReader>(bytes));
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->total_rows(), 3000u);
  ASSERT_TRUE((*reader)->schema().Equals(TestSchema()));

  ColumnTablePtr all = ColumnTable::Make(TestSchema());
  for (size_t rg = 0; rg < (*reader)->num_row_groups(); ++rg) {
    auto part = (*reader)->ReadRowGroup(rg, {});
    ASSERT_TRUE(part.ok()) << part.status().ToString();
    for (size_t r = 0; r < (*part)->num_rows(); ++r) {
      for (size_t c = 0; c < TestSchema().num_fields(); ++c) {
        switch (TestSchema().field(c).type) {
          case AtomType::kInt32:
          case AtomType::kDate:
            all->column(c).AppendInt32((*part)->column(c).GetInt32(r));
            break;
          case AtomType::kInt64:
            all->column(c).AppendInt64((*part)->column(c).GetInt64(r));
            break;
          case AtomType::kFloat64:
            all->column(c).AppendFloat64((*part)->column(c).GetFloat64(r));
            break;
          case AtomType::kString:
            all->column(c).AppendString((*part)->column(c).GetString(r));
            break;
        }
      }
    }
  }
  all->FinishBulkLoad();
  ExpectTablesEqual(*table, *all);
}

INSTANTIATE_TEST_SUITE_P(RowGroupSizes, ColumnFileRoundTrip,
                         ::testing::Values(64, 500, 3000, 10000));

TEST(ColumnFileTest, ProjectionReturnsOnlySelectedColumns) {
  ColumnTablePtr table = MakeTable(100, 3);
  std::string bytes = WriteColumnFile(*table);
  auto reader = ColumnFileReader::Open(std::make_shared<StringReader>(bytes));
  ASSERT_TRUE(reader.ok());
  auto part = (*reader)->ReadRowGroup(0, {2, 0});
  ASSERT_TRUE(part.ok());
  ASSERT_EQ((*part)->num_columns(), 2u);
  EXPECT_EQ((*part)->schema().field(0).name, "name");
  EXPECT_EQ((*part)->schema().field(1).name, "id");
  EXPECT_EQ((*part)->column(1).GetInt64(5), 5);
}

TEST(ColumnFileTest, MinMaxStatsEnablePruning) {
  ColumnTablePtr table = MakeTable(1000, 5);
  ColumnFileWriteOptions opts;
  opts.rows_per_row_group = 100;  // ids 0..99, 100..199, ...
  std::string bytes = WriteColumnFile(*table, opts);
  auto reader = ColumnFileReader::Open(std::make_shared<StringReader>(bytes));
  ASSERT_TRUE(reader.ok());
  // id column (0) is monotonically increasing per construction.
  EXPECT_TRUE((*reader)->MayContain(0, 0, 50, 60));
  EXPECT_FALSE((*reader)->MayContain(0, 0, 150, 160));
  EXPECT_TRUE((*reader)->MayContain(1, 0, 150, 160));
  auto stats = (*reader)->stats(2, 0);
  EXPECT_TRUE(stats.valid);
  EXPECT_EQ(stats.min, 200);
  EXPECT_EQ(stats.max, 299);
}

TEST(ColumnFileTest, PartitionedWriterOneRowGroupPerPart) {
  std::vector<ColumnTablePtr> parts;
  for (int p = 0; p < 4; ++p) {
    ColumnTablePtr t = ColumnTable::Make(KeyValueSchema());
    for (int i = 0; i < p * 10; ++i) {  // part 0 is empty
      t->column(0).AppendInt64(p);
      t->column(1).AppendInt64(i);
    }
    t->FinishBulkLoad();
    parts.push_back(t);
  }
  std::string bytes = WriteColumnFileFromParts(parts);
  auto reader = ColumnFileReader::Open(std::make_shared<StringReader>(bytes));
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ((*reader)->num_row_groups(), 4u);
  for (size_t rg = 0; rg < 4; ++rg) {
    EXPECT_EQ((*reader)->row_group_rows(rg), rg * 10);
    auto part = (*reader)->ReadRowGroup(rg, {});
    ASSERT_TRUE(part.ok());
    for (size_t r = 0; r < (*part)->num_rows(); ++r) {
      EXPECT_EQ((*part)->column(0).GetInt64(r), static_cast<int64_t>(rg));
    }
  }
}

TEST(ColumnFileTest, RejectsCorruptFooter) {
  auto reader = ColumnFileReader::Open(
      std::make_shared<StringReader>("definitely not a column file"));
  EXPECT_FALSE(reader.ok());
}

TEST(BlobStoreTest, PutGetListDelete) {
  BlobStore store;
  BlobClient client(&store, BlobClientOptions::Unthrottled());
  ASSERT_TRUE(client.Put("a/1", "one").ok());
  ASSERT_TRUE(client.Put("a/2", "two").ok());
  ASSERT_TRUE(client.Put("b/1", "three").ok());

  auto got = client.Get("a/1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "one");
  EXPECT_EQ(client.List("a/").size(), 2u);
  EXPECT_FALSE(client.Get("missing").ok());
  EXPECT_EQ(client.Get("missing").status().code(), StatusCode::kNotFound);

  auto range = client.GetRange("b/1", 1, 3);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(*range, "hre");

  store.Delete("a/1");
  EXPECT_FALSE(client.Get("a/1").ok());
}

TEST(BlobStoreTest, ChargesLatencyAndBandwidth) {
  BlobStore store;
  BlobClientOptions opts;
  opts.request_latency_seconds = 0.01;
  opts.bandwidth_bytes_per_sec = 1000;  // 1 KB/s
  opts.throttle = false;                // account only
  BlobClient client(&store, opts);
  ASSERT_TRUE(client.Put("k", std::string(500, 'x')).ok());
  // 0.01 latency + 500/1000 transfer.
  EXPECT_NEAR(client.charged_seconds(), 0.51, 1e-9);
  EXPECT_EQ(client.bytes_transferred(), 500);
}

TEST(BlobStoreTest, TransientFailuresAndRetries) {
  BlobStore store;
  store.Put("k", "value");
  BlobClientOptions opts = BlobClientOptions::Unthrottled();
  opts.fault.transient_failure_rate = 0.5;
  BlobClient client(&store, opts, /*worker_id=*/1);

  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    if (!client.Get("k").ok()) ++failures;
  }
  EXPECT_GT(failures, 50);
  EXPECT_LT(failures, 150);
  EXPECT_EQ(client.fault_injector().injected(FaultSite::kBlobGet),
            static_cast<uint64_t>(failures));

  // RetryCall recovers with overwhelming probability (0.5^11 per op).
  RetryPolicy policy;
  policy.max_retries = 10;
  policy.sleep = false;
  for (int i = 0; i < 20; ++i) {
    auto result =
        RetryCall(policy, nullptr, "blob.get", [&] { return client.Get("k"); });
    ASSERT_TRUE(result.ok());
  }

  // Missing keys fail fast: kNotFound is not retryable, so the injector's
  // call counter must advance by exactly zero across the lookup.
  const uint64_t calls_before = client.fault_injector().injected(
      FaultSite::kBlobGet);
  auto missing =
      RetryCall(policy, nullptr, "blob.get", [&] { return client.Get("nope"); });
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(client.fault_injector().injected(FaultSite::kBlobGet),
            calls_before);
}

}  // namespace
}  // namespace modularis::storage
