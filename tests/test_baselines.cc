#include <algorithm>
#include <array>
#include <random>
#include <tuple>

#include <gtest/gtest.h>

#include "baseline/join_model.h"
#include "baseline/monolithic_join.h"
#include "baseline/tpch_baselines.h"
#include "plans/distributed_join.h"

namespace modularis::baseline {
namespace {

std::vector<RowVectorPtr> MakeFragments(int world, int64_t num_keys,
                                        int64_t stride, uint32_t seed) {
  std::vector<int64_t> keys(num_keys);
  for (int64_t i = 0; i < num_keys; ++i) keys[i] = i;
  std::mt19937 rng(seed);
  std::shuffle(keys.begin(), keys.end(), rng);
  std::vector<RowVectorPtr> frags;
  for (int r = 0; r < world; ++r) {
    frags.push_back(RowVector::Make(KeyValueSchema()));
  }
  for (int64_t i = 0; i < num_keys; ++i) {
    RowWriter w = frags[i % world]->AppendRow();
    w.SetInt64(0, keys[i]);
    w.SetInt64(1, keys[i] * stride + 1);
  }
  return frags;
}

using JoinRow = std::tuple<int64_t, int64_t, int64_t>;

std::vector<JoinRow> SortedRows(const RowVector& rows) {
  std::vector<JoinRow> out;
  out.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    RowRef r = rows.row(i);
    out.emplace_back(r.GetInt64(0), r.GetInt64(1), r.GetInt64(2));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(MonolithicJoinTest, MatchesModularJoinResult) {
  const int world = 4;
  auto inner = MakeFragments(world, 30000, 2, 21);
  auto outer = MakeFragments(world, 30000, 3, 22);

  MonolithicJoinOptions mono;
  mono.world_size = world;
  mono.fabric.throttle = false;
  mono.network_radix_bits = 5;
  mono.local_radix_bits = 4;
  StatsRegistry mono_stats;
  auto mono_result = RunMonolithicJoin(inner, outer, mono, &mono_stats);
  ASSERT_TRUE(mono_result.ok()) << mono_result.status().ToString();

  plans::DistJoinOptions mod;
  mod.world_size = world;
  mod.fabric.throttle = false;
  mod.exec.network_radix_bits = 5;
  mod.exec.local_radix_bits = 4;
  StatsRegistry mod_stats;
  auto mod_result = plans::RunDistributedJoin(inner, outer, mod, &mod_stats);
  ASSERT_TRUE(mod_result.ok()) << mod_result.status().ToString();

  EXPECT_EQ(SortedRows(**mono_result), SortedRows(**mod_result));
}

TEST(MonolithicJoinTest, UncompressedModeAgrees) {
  const int world = 2;
  auto inner = MakeFragments(world, 5000, 2, 31);
  auto outer = MakeFragments(world, 5000, 5, 32);

  MonolithicJoinOptions mono;
  mono.world_size = world;
  mono.fabric.throttle = false;
  mono.compress = false;
  mono.network_radix_bits = 4;
  StatsRegistry s1;
  auto a = RunMonolithicJoin(inner, outer, mono, &s1);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  mono.compress = true;
  StatsRegistry s2;
  auto b = RunMonolithicJoin(inner, outer, mono, &s2);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(SortedRows(**a), SortedRows(**b));
}

TEST(MonolithicJoinTest, RecordsAllPhases) {
  auto inner = MakeFragments(2, 4000, 2, 41);
  auto outer = MakeFragments(2, 4000, 3, 42);
  MonolithicJoinOptions mono;
  mono.world_size = 2;
  mono.fabric.throttle = false;
  mono.network_radix_bits = 4;
  StatsRegistry stats;
  ASSERT_TRUE(RunMonolithicJoin(inner, outer, mono, &stats).ok());
  for (const char* phase :
       {"phase.local_histogram", "phase.global_histogram",
        "phase.network_partition", "phase.local_partition",
        "phase.build_probe"}) {
    EXPECT_GT(stats.times().count(phase), 0u) << phase;
  }
}

TEST(JoinModelTest, ProducesAllPhaseTimings) {
  auto inner = MakeFragments(2, 8000, 2, 51);
  auto outer = MakeFragments(2, 8000, 3, 52);
  JoinModelOptions opts;
  opts.world_size = 2;
  opts.fabric.throttle = false;
  opts.network_radix_bits = 4;
  opts.local_radix_bits = 3;
  auto model = RunJoinModel(inner, outer, opts);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  for (const char* phase :
       {"phase.local_histogram", "phase.global_histogram",
        "phase.network_partition", "phase.local_partition",
        "phase.build_probe"}) {
    EXPECT_GT(model->count(phase), 0u) << phase;
  }
}

class BaselineEnginesTest
    : public ::testing::TestWithParam<BaselineSystem> {};

TEST_P(BaselineEnginesTest, ProducesReferenceResults) {
  tpch::GeneratorOptions gen;
  gen.scale_factor = 0.002;
  gen.seed = 13;
  tpch::TpchTables db = tpch::GenerateTpch(gen);

  for (int query : {1, 6, 12}) {
    StatsRegistry stats;
    auto result = RunBaselineTpch(GetParam(), query, db, 2, &stats);
    ASSERT_TRUE(result.ok())
        << BaselineName(GetParam()) << " Q" << query << ": "
        << result.status().ToString();
    auto expected = tpch::RunReferenceQuery(query, db);
    ASSERT_TRUE(expected.ok());
    ASSERT_EQ(result->rows->size(), (*expected)->size())
        << BaselineName(GetParam()) << " Q" << query;
    EXPECT_GT(result->seconds, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, BaselineEnginesTest,
    ::testing::Values(BaselineSystem::kPresto, BaselineSystem::kSingleStore,
                      BaselineSystem::kAthena, BaselineSystem::kBigQuery),
    [](const ::testing::TestParamInfo<BaselineSystem>& info) {
      std::string name = BaselineName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace modularis::baseline
