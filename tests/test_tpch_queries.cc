#include <cmath>

#include <gtest/gtest.h>

#include "tpch/queries.h"

namespace modularis::tpch {
namespace {

/// Shared generated database for the whole test binary.
const TpchTables& Db() {
  static TpchTables db = [] {
    GeneratorOptions gen;
    gen.scale_factor = 0.01;  // ~60k lineitem rows
    gen.seed = 7;
    return GenerateTpch(gen);
  }();
  return db;
}

void ExpectRowsEqual(const RowVector& expected, const RowVector& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  ASSERT_TRUE(expected.schema().Equals(actual.schema()))
      << expected.schema().ToString() << " vs " << actual.schema().ToString();
  for (size_t i = 0; i < expected.size(); ++i) {
    RowRef e = expected.row(i);
    RowRef a = actual.row(i);
    for (size_t c = 0; c < expected.schema().num_fields(); ++c) {
      int col = static_cast<int>(c);
      switch (expected.schema().field(c).type) {
        case AtomType::kInt32:
        case AtomType::kDate:
          ASSERT_EQ(e.GetInt32(col), a.GetInt32(col))
              << "row " << i << " col " << c;
          break;
        case AtomType::kInt64:
          ASSERT_EQ(e.GetInt64(col), a.GetInt64(col))
              << "row " << i << " col " << c;
          break;
        case AtomType::kFloat64: {
          double x = e.GetFloat64(col), y = a.GetFloat64(col);
          double tol = 1e-6 * std::max({1.0, std::fabs(x), std::fabs(y)});
          ASSERT_NEAR(x, y, tol) << "row " << i << " col " << c;
          break;
        }
        case AtomType::kString:
          ASSERT_EQ(e.GetString(col), a.GetString(col))
              << "row " << i << " col " << c;
          break;
      }
    }
  }
}

TpchRunOptions Unthrottled(TpchRunOptions opts) {
  opts.fabric.throttle = false;
  opts.lambda.throttle = false;
  opts.lambda.s3.throttle = false;
  opts.storage.throttle = false;
  opts.s3select.throttle = false;
  return opts;
}

struct TpchCase {
  int query;
  Platform platform;
};

class TpchQueryTest : public ::testing::TestWithParam<TpchCase> {};

TEST_P(TpchQueryTest, MatchesReference) {
  const TpchCase& p = GetParam();
  TpchRunOptions opts;
  switch (p.platform) {
    case Platform::kRdma:
      opts = TpchRunOptions::Rdma(4);
      break;
    case Platform::kRdmaDisc:
      opts = TpchRunOptions::Rdma(4, /*with_disc=*/true);
      break;
    case Platform::kLambda:
      opts = TpchRunOptions::Lambda(4);
      break;
    case Platform::kS3Select:
      opts = TpchRunOptions::S3Select(4);
      break;
  }
  opts = Unthrottled(opts);
  opts.exec.network_radix_bits = 4;

  auto ctx = PrepareTpch(Db(), opts);
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();

  StatsRegistry stats;
  auto result = RunTpchQuery(p.query, **ctx, opts, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto expected = RunReferenceQuery(p.query, Db());
  ASSERT_TRUE(expected.ok());
  ExpectRowsEqual(**expected, **result);
}

std::vector<TpchCase> AllCases() {
  std::vector<TpchCase> cases;
  for (int q : {1, 3, 4, 6, 12, 14, 18, 19}) {
    for (Platform p : {Platform::kRdma, Platform::kRdmaDisc,
                       Platform::kLambda, Platform::kS3Select}) {
      cases.push_back({q, p});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllQueriesAllPlatforms, TpchQueryTest, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<TpchCase>& info) {
      std::string name = "Q" + std::to_string(info.param.query) + "_";
      name += PlatformName(info.param.platform);
      for (char& ch : name) {
        if (ch == '+') ch = '_';
      }
      return name;
    });

TEST(TpchQueryTest, TcpExchangeBackendMatchesReference) {
  // The §4.4 extension: swap the exchange operator for the two-sided TCP
  // one; everything else in the plans is untouched.
  TpchRunOptions opts = Unthrottled(TpchRunOptions::Rdma(4));
  opts.exec.tcp_exchange = true;
  auto ctx = PrepareTpch(Db(), opts);
  ASSERT_TRUE(ctx.ok());
  for (int q : {3, 12, 18}) {
    StatsRegistry stats;
    auto result = RunTpchQuery(q, **ctx, opts, &stats);
    ASSERT_TRUE(result.ok()) << "Q" << q << ": "
                             << result.status().ToString();
    auto expected = RunReferenceQuery(q, Db());
    ASSERT_TRUE(expected.ok());
    ExpectRowsEqual(**expected, **result);
  }
}

TEST(TpchQueryTest, BroadcastJoinsMatchReference) {
  TpchRunOptions opts = Unthrottled(TpchRunOptions::Rdma(4));
  opts.exec.broadcast_small_build = true;
  auto ctx = PrepareTpch(Db(), opts);
  ASSERT_TRUE(ctx.ok());
  for (int q : {3, 14, 19}) {
    StatsRegistry stats;
    auto result = RunTpchQuery(q, **ctx, opts, &stats);
    ASSERT_TRUE(result.ok()) << "Q" << q << ": "
                             << result.status().ToString();
    auto expected = RunReferenceQuery(q, Db());
    ASSERT_TRUE(expected.ok());
    ExpectRowsEqual(**expected, **result);
  }
}

TEST(TpchQueryTest, InterpretedModeAgreesWithFused) {
  TpchRunOptions opts = Unthrottled(TpchRunOptions::Rdma(2));
  opts.exec.network_radix_bits = 4;
  opts.exec.enable_fusion = false;  // pure tuple-at-a-time Volcano
  auto ctx = PrepareTpch(Db(), opts);
  ASSERT_TRUE(ctx.ok());
  StatsRegistry stats;
  auto result = RunTpchQuery(12, **ctx, opts, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto expected = RunReferenceQuery(12, Db());
  ASSERT_TRUE(expected.ok());
  ExpectRowsEqual(**expected, **result);
}

TEST(TpchQueryTest, BytecodeTierAgreesWithInterpretedOnAllQueries) {
  // The compiled expression tier must be a pure drop-in: every query
  // result identical with bytecode on and off, at 1 and 4 intra-rank
  // threads, and no TPC-H predicate or map expression may fall back to
  // the interpreter.
  for (int threads : {1, 4}) {
    TpchRunOptions base = Unthrottled(TpchRunOptions::Rdma(2));
    base.exec.network_radix_bits = 4;
    base.exec.num_threads = threads;

    TpchRunOptions interp = base;
    interp.exec.enable_expr_bytecode = false;
    TpchRunOptions bc = base;
    bc.exec.enable_expr_bytecode = true;

    auto interp_ctx = PrepareTpch(Db(), interp);
    ASSERT_TRUE(interp_ctx.ok()) << interp_ctx.status().ToString();
    auto bc_ctx = PrepareTpch(Db(), bc);
    ASSERT_TRUE(bc_ctx.ok()) << bc_ctx.status().ToString();

    for (int q : {1, 3, 4, 6, 12, 14, 18, 19}) {
      StatsRegistry interp_stats;
      auto expected = RunTpchQuery(q, **interp_ctx, interp, &interp_stats);
      ASSERT_TRUE(expected.ok())
          << "Q" << q << " interp: " << expected.status().ToString();

      StatsRegistry bc_stats;
      auto result = RunTpchQuery(q, **bc_ctx, bc, &bc_stats);
      ASSERT_TRUE(result.ok())
          << "Q" << q << " bytecode: " << result.status().ToString();

      ExpectRowsEqual(**expected, **result);
      EXPECT_EQ(bc_stats.GetCounter("expr.bc_fallback.filter"), 0)
          << "Q" << q << " threads=" << threads;
      EXPECT_EQ(bc_stats.GetCounter("expr.bc_fallback.value"), 0)
          << "Q" << q << " threads=" << threads;
    }
  }
}

TEST(TpchQueryTest, S3TransientFailuresAreRetried) {
  TpchRunOptions opts = Unthrottled(TpchRunOptions::Lambda(4));
  opts.exec.network_radix_bits = 4;
  opts.storage.fault.transient_failure_rate = 0.05;
  opts.lambda.s3.fault.transient_failure_rate = 0.05;
  opts.exec.retry.max_retries = 12;
  opts.exec.retry.sleep = false;
  auto ctx = PrepareTpch(Db(), opts);
  ASSERT_TRUE(ctx.ok());
  StatsRegistry stats;
  auto result = RunTpchQuery(6, **ctx, opts, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto expected = RunReferenceQuery(6, Db());
  ASSERT_TRUE(expected.ok());
  ExpectRowsEqual(**expected, **result);
}

TEST(TpchGeneratorTest, DeterministicAcrossRuns) {
  GeneratorOptions gen;
  gen.scale_factor = 0.001;
  gen.seed = 99;
  TpchTables a = GenerateTpch(gen);
  TpchTables b = GenerateTpch(gen);
  ASSERT_EQ(a.lineitem->num_rows(), b.lineitem->num_rows());
  for (size_t i = 0; i < a.lineitem->num_rows(); i += 97) {
    EXPECT_EQ(a.lineitem->column(l::kOrderKey).GetInt64(i),
              b.lineitem->column(l::kOrderKey).GetInt64(i));
    EXPECT_EQ(a.lineitem->column(l::kShipDate).GetInt32(i),
              b.lineitem->column(l::kShipDate).GetInt32(i));
  }
}

TEST(TpchGeneratorTest, RowCountsScaleWithSf) {
  GeneratorOptions gen;
  gen.scale_factor = 0.002;
  TpchTables db = GenerateTpch(gen);
  EXPECT_EQ(db.orders->num_rows(), 3000u);
  EXPECT_EQ(db.customer->num_rows(), 300u);
  EXPECT_EQ(db.part->num_rows(), 400u);
  // ~4 lineitems per order on average (uniform 1..7).
  EXPECT_GT(db.lineitem->num_rows(), 3000u * 2);
  EXPECT_LT(db.lineitem->num_rows(), 3000u * 7);
}

}  // namespace
}  // namespace modularis::tpch
