/// \file test_exchange_parity.cc
/// Cross-rank determinism of the morsel-parallel, compute-overlapped
/// exchange (docs/DESIGN-exchange.md): N worker threads × R ranks must be
/// byte-equal to 1 × R per owned partition on all three transports — the
/// MPI one-sided window, the two-sided TCP fabric, and the in-memory S3
/// blob store — including empty fragments and skewed single-key inputs.
/// Also asserts the overlap property (the pipelined schedule stalls
/// strictly less than the partition-then-send ablation), the network
/// observability keys, and that the exchange operators serve the batch
/// protocol natively (zero `vectorized.default_adapter.*` batches). Runs
/// under ThreadSanitizer and ASan+UBSan in CI.

#include <algorithm>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/exec_context.h"
#include "mpi/mpi_ops.h"
#include "mpi/tcp_exchange.h"
#include "plans/distributed_groupby.h"
#include "plans/distributed_join.h"
#include "plans/join_sequence.h"
#include "serverless/serverless_ops.h"
#include "suboperators/agg_ops.h"
#include "suboperators/partition_ops.h"
#include "suboperators/scan_ops.h"

namespace modularis {
namespace {

net::FabricOptions Unthrottled() {
  net::FabricOptions o;
  o.throttle = false;
  return o;
}

void ExpectBytesEqual(const RowVector& expected, const RowVector& actual,
                      const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  ASSERT_EQ(expected.row_size(), actual.row_size()) << label;
  if (expected.byte_size() == 0) return;  // empty buffers may be null
  ASSERT_EQ(0, std::memcmp(expected.data(), actual.data(),
                           expected.byte_size()))
      << label << ": payload bytes differ";
}

/// ⟨key, value⟩ rows with keys uniform in [0, key_space) (or all equal to
/// `fixed_key` when >= 0) and value = row index.
RowVectorPtr MakeKv(int64_t rows, int64_t key_space, uint32_t seed,
                    int64_t fixed_key = -1) {
  RowVectorPtr data = RowVector::Make(KeyValueSchema());
  data->Reserve(rows);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> dist(0, key_space - 1);
  for (int64_t i = 0; i < rows; ++i) {
    RowWriter w = data->AppendRow();
    w.SetInt64(0, fixed_key >= 0 ? fixed_key : dist(rng));
    w.SetInt64(1, i);
  }
  return data;
}

std::vector<int64_t> CountPartitions(const RowVector& frag,
                                     const RadixSpec& spec) {
  std::vector<int64_t> counts(spec.fanout(), 0);
  for (size_t i = 0; i < frag.size(); ++i) {
    ++counts[spec.PartitionOf(frag.row(i).GetInt64(0))];
  }
  return counts;
}

RowVectorPtr HistVector(const std::vector<int64_t>& counts) {
  RowVectorPtr hist = RowVector::Make(HistogramSchema());
  hist->Reserve(counts.size());
  for (int64_t c : counts) hist->AppendRow().SetInt64(0, c);
  return hist;
}

struct FabricTotals {
  int64_t bytes = 0;
  int64_t msgs = 0;
  double charged = 0;
  double stall = 0;
};

// ---------------------------------------------------------------------------
// MPI transport: owned-partition parity + overlap.
// ---------------------------------------------------------------------------

/// Runs a bare MpiExchange (CollectionSource children, manually derived
/// histograms) on world = frags.size() ranks with `threads` workers per
/// rank; returns the owned ⟨pid, partition⟩ pairs per rank.
std::vector<std::vector<std::pair<int64_t, RowVectorPtr>>> RunMpiExchange(
    const std::vector<RowVectorPtr>& frags, int threads, bool compress,
    bool serial_wire, size_t buffer_bytes,
    const net::FabricOptions& fabric, FabricTotals* totals) {
  const int world = static_cast<int>(frags.size());
  const RadixSpec spec{4, 0, RadixHash::kIdentity};
  std::vector<int64_t> global(spec.fanout(), 0);
  for (const RowVectorPtr& f : frags) {
    std::vector<int64_t> local = CountPartitions(*f, spec);
    for (int p = 0; p < spec.fanout(); ++p) global[p] += local[p];
  }
  std::vector<std::vector<std::pair<int64_t, RowVectorPtr>>> parts(world);
  std::vector<StatsRegistry> rank_stats(world);
  std::vector<FabricTotals> per_rank(world);
  Status st = mpi::MpiRuntime::Run(
      world, fabric, [&](mpi::Communicator& comm) -> Status {
        const int r = comm.rank();
        ExecContext ctx;
        ctx.rank = r;
        ctx.world = comm.size();
        ctx.comm = &comm;
        ctx.options.num_threads = threads;
        ctx.options.parallel_min_rows = 256;
        ctx.stats = &rank_stats[r];
        MpiExchange::Options xopts;
        xopts.spec = spec;
        xopts.compress = compress;
        xopts.serial_wire = serial_wire;
        xopts.buffer_bytes = buffer_bytes;
        MpiExchange mx(std::make_unique<CollectionSource>(
                           std::vector<RowVectorPtr>{frags[r]}),
                       std::make_unique<CollectionSource>(
                           std::vector<RowVectorPtr>{HistVector(
                               CountPartitions(*frags[r], spec))}),
                       std::make_unique<CollectionSource>(
                           std::vector<RowVectorPtr>{HistVector(global)}),
                       xopts);
        MODULARIS_RETURN_NOT_OK(mx.Open(&ctx));
        Tuple t;
        while (mx.Next(&t)) {
          parts[r].push_back({t[0].i64(), t[1].collection()});
        }
        MODULARIS_RETURN_NOT_OK(mx.status());
        per_rank[r] = {comm.fabric().bytes_sent(r),
                       comm.fabric().msgs_sent(r),
                       comm.fabric().charged_seconds(r),
                       comm.fabric().stall_seconds(r)};
        return mx.Close();
      });
  EXPECT_TRUE(st.ok()) << st.ToString();
  if (totals != nullptr) {
    for (const FabricTotals& f : per_rank) {
      totals->bytes += f.bytes;
      totals->msgs += f.msgs;
      totals->charged += f.charged;
      totals->stall += f.stall;
    }
  }
  for (const StatsRegistry& s : rank_stats) {
    EXPECT_EQ(s.GetCounter("vectorized.default_adapter.MpiExchange"), 0);
  }
  return parts;
}

void CheckMpiParity(const std::vector<RowVectorPtr>& frags, bool compress,
                    const std::string& label) {
  auto base = RunMpiExchange(frags, 1, compress, /*serial_wire=*/false, 512,
                             Unthrottled(), nullptr);
  auto par = RunMpiExchange(frags, 4, compress, /*serial_wire=*/false, 512,
                            Unthrottled(), nullptr);
  // The ablation must produce the same window layout too.
  auto abl = RunMpiExchange(frags, 4, compress, /*serial_wire=*/true, 512,
                            Unthrottled(), nullptr);
  for (const auto* other : {&par, &abl}) {
    ASSERT_EQ(base.size(), other->size()) << label;
    for (size_t r = 0; r < base.size(); ++r) {
      ASSERT_EQ(base[r].size(), (*other)[r].size()) << label;
      for (size_t i = 0; i < base[r].size(); ++i) {
        EXPECT_EQ(base[r][i].first, (*other)[r][i].first) << label;
        ExpectBytesEqual(*base[r][i].second, *(*other)[r][i].second,
                         label + " rank " + std::to_string(r) + " pid " +
                             std::to_string(base[r][i].first));
      }
    }
  }
}

TEST(MpiExchangeParityTest, RandomKeys) {
  for (int world : {2, 4}) {
    std::vector<RowVectorPtr> frags;
    for (int r = 0; r < world; ++r) {
      frags.push_back(MakeKv(4096, 1 << 20, 100 + r));
    }
    const std::string w = "world=" + std::to_string(world);
    CheckMpiParity(frags, /*compress=*/false, "mpi random " + w);
    CheckMpiParity(frags, /*compress=*/true, "mpi random+compress " + w);
  }
}

TEST(MpiExchangeParityTest, SkewedSingleKey) {
  // Every row lands in one partition; 15 of 16 partitions stay empty.
  for (int world : {2, 4}) {
    std::vector<RowVectorPtr> frags;
    for (int r = 0; r < world; ++r) {
      frags.push_back(MakeKv(2048, 1, 200 + r, /*fixed_key=*/7));
    }
    CheckMpiParity(frags, /*compress=*/false,
                   "mpi skewed world=" + std::to_string(world));
  }
}

TEST(MpiExchangeParityTest, EmptyFragment) {
  for (int world : {2, 4}) {
    std::vector<RowVectorPtr> frags;
    frags.push_back(RowVector::Make(KeyValueSchema()));  // rank 0 empty
    for (int r = 1; r < world; ++r) {
      frags.push_back(MakeKv(3000, 1 << 16, 300 + r));
    }
    CheckMpiParity(frags, /*compress=*/false,
                   "mpi empty-rank world=" + std::to_string(world));
  }
}

TEST(MpiExchangeOverlapTest, PipelinedStallsLessThanPartitionThenSend) {
  // Slow unthrottled wire: the modelled transfer time dominates, so the
  // stall clock separates the two schedules — pipelined Puts start the
  // busy-clock while later morsels still partition, the ablation pays for
  // the whole transfer after partitioning finished.
  const int world = 2;
  std::vector<RowVectorPtr> frags;
  for (int r = 0; r < world; ++r) {
    frags.push_back(MakeKv(1 << 17, 1 << 20, 40 + r));
  }
  net::FabricOptions slow = Unthrottled();
  slow.bandwidth_bytes_per_sec = 2e8;  // ~10 ms of wire per rank
  // Pure bandwidth term: a per-message latency would charge the
  // pipelined schedule's many small Puts extra wire time the ablation's
  // few whole-partition Puts never pay, turning this into a
  // message-count comparison instead of an overlap one.
  slow.latency_seconds = 0;
  FabricTotals piped, ablation;
  auto a = RunMpiExchange(frags, 4, /*compress=*/false,
                          /*serial_wire=*/false, 4096, slow, &piped);
  auto b = RunMpiExchange(frags, 4, /*compress=*/false,
                          /*serial_wire=*/true, 4096, slow, &ablation);
  // Scheduler noise can delay any single run's flushes; compare the
  // best of three like the bench does.
  for (int iter = 0; iter < 2; ++iter) {
    FabricTotals p2, a2;
    RunMpiExchange(frags, 4, false, /*serial_wire=*/false, 4096, slow, &p2);
    RunMpiExchange(frags, 4, false, /*serial_wire=*/true, 4096, slow, &a2);
    piped.stall = std::min(piped.stall, p2.stall);
    ablation.stall = std::min(ablation.stall, a2.stall);
  }
  ASSERT_EQ(a.size(), b.size());
  for (size_t r = 0; r < a.size(); ++r) {
    ASSERT_EQ(a[r].size(), b[r].size());
    for (size_t i = 0; i < a[r].size(); ++i) {
      ExpectBytesEqual(*a[r][i].second, *b[r][i].second, "overlap parity");
    }
  }
  EXPECT_GT(piped.bytes, 0);
  EXPECT_GT(piped.msgs, 0);
  EXPECT_GT(piped.charged, 0);
  EXPECT_EQ(piped.bytes, ablation.bytes);
  EXPECT_LT(piped.stall, ablation.stall)
      << "pipelined exchange must hide wire time behind partitioning";
}

// ---------------------------------------------------------------------------
// TCP transport.
// ---------------------------------------------------------------------------

std::vector<RowVectorPtr> RunTcpExchange(
    const std::vector<RowVectorPtr>& frags, int threads) {
  const int world = static_cast<int>(frags.size());
  std::vector<RowVectorPtr> mine(world);
  std::vector<StatsRegistry> rank_stats(world);
  Status st = mpi::MpiRuntime::Run(
      world, Unthrottled(), [&](mpi::Communicator& comm) -> Status {
        const int r = comm.rank();
        ExecContext ctx;
        ctx.rank = r;
        ctx.world = comm.size();
        ctx.comm = &comm;
        ctx.options.num_threads = threads;
        ctx.options.parallel_min_rows = 256;
        ctx.stats = &rank_stats[r];
        TcpExchange tx(std::make_unique<CollectionSource>(
                           std::vector<RowVectorPtr>{frags[r]}),
                       TcpExchange::Options{});
        MODULARIS_RETURN_NOT_OK(tx.Open(&ctx));
        RowVectorPtr out = RowVector::Make(frags[r]->schema());
        RowBatch batch;
        while (tx.NextBatch(&batch)) {
          out->AppendRawBatch(batch.data(), batch.size());
        }
        MODULARIS_RETURN_NOT_OK(tx.status());
        mine[r] = std::move(out);
        return tx.Close();
      });
  EXPECT_TRUE(st.ok()) << st.ToString();
  for (const StatsRegistry& s : rank_stats) {
    EXPECT_EQ(s.GetCounter("vectorized.default_adapter.TcpExchange"), 0);
  }
  return mine;
}

void CheckTcpParity(const std::vector<RowVectorPtr>& frags,
                    const std::string& label) {
  auto base = RunTcpExchange(frags, 1);
  auto par = RunTcpExchange(frags, 4);
  ASSERT_EQ(base.size(), par.size()) << label;
  for (size_t r = 0; r < base.size(); ++r) {
    ExpectBytesEqual(*base[r], *par[r],
                     label + " rank " + std::to_string(r));
  }
}

TEST(TcpExchangeParityTest, RandomKeys) {
  for (int world : {2, 4}) {
    std::vector<RowVectorPtr> frags;
    for (int r = 0; r < world; ++r) {
      frags.push_back(MakeKv(4096, 1 << 20, 500 + r));
    }
    CheckTcpParity(frags, "tcp random world=" + std::to_string(world));
  }
}

TEST(TcpExchangeParityTest, SkewedAndEmpty) {
  for (int world : {2, 4}) {
    std::vector<RowVectorPtr> skewed;
    for (int r = 0; r < world; ++r) {
      skewed.push_back(MakeKv(2048, 1, 600 + r, /*fixed_key=*/3));
    }
    CheckTcpParity(skewed, "tcp skewed world=" + std::to_string(world));

    std::vector<RowVectorPtr> sparse;
    sparse.push_back(RowVector::Make(KeyValueSchema()));
    for (int r = 1; r < world; ++r) {
      sparse.push_back(MakeKv(3000, 1 << 16, 700 + r));
    }
    CheckTcpParity(sparse, "tcp empty-rank world=" + std::to_string(world));
  }
}

// ---------------------------------------------------------------------------
// S3 transport (in-memory blob store via the Lambda runtime).
// ---------------------------------------------------------------------------

std::vector<RowVectorPtr> RunS3Exchange(
    const std::vector<RowVectorPtr>& frags, int threads) {
  const int world = static_cast<int>(frags.size());
  serverless::LambdaOptions lopts;
  lopts.num_workers = world;
  lopts.throttle = false;
  lopts.s3 = storage::BlobClientOptions::Unthrottled();
  storage::BlobStore store;
  std::vector<RowVectorPtr> mine(world);
  std::vector<StatsRegistry> rank_stats(world);
  const int bits = world == 2 ? 1 : 2;  // fanout must equal the fleet size
  Status st = serverless::LambdaRuntime::Run(
      lopts, &store,
      [&](serverless::LambdaWorkerContext& wctx) -> Status {
        const int me = wctx.worker_id;
        ExecContext ctx;
        ctx.rank = me;
        ctx.world = wctx.num_workers;
        ctx.blob = wctx.s3;
        ctx.lambda = &wctx;
        ctx.options.num_threads = threads;
        ctx.options.parallel_min_rows = 256;
        ctx.stats = &rank_stats[me];
        RadixSpec spec{bits, 0, RadixHash::kMix};
        S3Exchange::Options xopts;
        xopts.prefix = "parity-exchange";
        S3Exchange ex(std::make_unique<GroupByPid>(
                          std::make_unique<PartitionOp>(
                              std::make_unique<CollectionSource>(
                                  std::vector<RowVectorPtr>{frags[me]}),
                              spec, 0)),
                      xopts);
        MODULARIS_RETURN_NOT_OK(ex.Open(&ctx));
        RowVectorPtr out;
        RowBatch batch;
        while (ex.NextBatch(&batch)) {
          if (out == nullptr) out = RowVector::Make(batch.schema());
          out->AppendRawBatch(batch.data(), batch.size());
        }
        MODULARIS_RETURN_NOT_OK(ex.status());
        if (out == nullptr) out = RowVector::Make(KeyValueSchema());
        mine[me] = std::move(out);
        return ex.Close();
      });
  EXPECT_TRUE(st.ok()) << st.ToString();
  for (const StatsRegistry& s : rank_stats) {
    EXPECT_EQ(s.GetCounter("vectorized.default_adapter.S3Exchange"), 0);
  }
  return mine;
}

void CheckS3Parity(const std::vector<RowVectorPtr>& frags,
                   const std::string& label) {
  auto base = RunS3Exchange(frags, 1);
  auto par = RunS3Exchange(frags, 4);
  ASSERT_EQ(base.size(), par.size()) << label;
  for (size_t r = 0; r < base.size(); ++r) {
    ExpectBytesEqual(*base[r], *par[r],
                     label + " worker " + std::to_string(r));
  }
}

TEST(S3ExchangeParityTest, RandomKeys) {
  for (int world : {2, 4}) {
    std::vector<RowVectorPtr> frags;
    for (int r = 0; r < world; ++r) {
      frags.push_back(MakeKv(4096, 1 << 20, 800 + r));
    }
    CheckS3Parity(frags, "s3 random world=" + std::to_string(world));
  }
}

TEST(S3ExchangeParityTest, SkewedAndEmpty) {
  for (int world : {2, 4}) {
    std::vector<RowVectorPtr> skewed;
    for (int r = 0; r < world; ++r) {
      skewed.push_back(MakeKv(2048, 1, 900 + r, /*fixed_key=*/5));
    }
    CheckS3Parity(skewed, "s3 skewed world=" + std::to_string(world));

    std::vector<RowVectorPtr> sparse;
    sparse.push_back(RowVector::Make(KeyValueSchema()));
    for (int r = 1; r < world; ++r) {
      sparse.push_back(MakeKv(3000, 1 << 16, 950 + r));
    }
    CheckS3Parity(sparse, "s3 empty-worker world=" + std::to_string(world));
  }
}

// ---------------------------------------------------------------------------
// Full-plan parity through MpiExecutor (which divides the thread budget
// between ranks): exec.num_threads = 4 * world gives each rank 4 workers.
// ---------------------------------------------------------------------------

/// 1-to-1 keyed kv fragments: keys are a shuffle of [0, rows).
std::vector<RowVectorPtr> MakeJoinSide(int world, int64_t rows,
                                       uint32_t seed, int64_t value_mult) {
  std::vector<int64_t> keys(rows);
  for (int64_t i = 0; i < rows; ++i) keys[i] = i;
  std::mt19937_64 rng(seed);
  std::shuffle(keys.begin(), keys.end(), rng);
  std::vector<RowVectorPtr> frags;
  for (int r = 0; r < world; ++r) {
    frags.push_back(RowVector::Make(KeyValueSchema()));
  }
  for (int64_t i = 0; i < rows; ++i) {
    RowWriter w = frags[i % world]->AppendRow();
    w.SetInt64(0, keys[i]);
    w.SetInt64(1, keys[i] * value_mult);
  }
  return frags;
}

void ExpectExchangeStats(const StatsRegistry& stats,
                         const std::string& label) {
  EXPECT_GT(stats.GetCounter("net.bytes_sent"), 0) << label;
  EXPECT_GT(stats.GetCounter("net.msgs_sent"), 0) << label;
  const double overlap = stats.GetTime("exchange.overlap_ratio");
  EXPECT_GE(overlap, 0.0) << label;
  EXPECT_LE(overlap, 1.0) << label;
  EXPECT_EQ(stats.GetCounter("vectorized.default_adapter.MpiExchange"), 0)
      << label;
  EXPECT_EQ(stats.GetCounter("vectorized.default_adapter.MpiBroadcast"), 0)
      << label;
}

TEST(PlanParityTest, DistributedJoin) {
  const int64_t rows = 8192;
  for (int world : {2, 4}) {
    auto inner = MakeJoinSide(world, rows, 11, 2);
    auto outer = MakeJoinSide(world, rows, 12, 3);
    plans::DistJoinOptions opts;
    opts.world_size = world;
    opts.fabric.throttle = false;
    opts.exec.parallel_min_rows = 256;
    opts.exec.num_threads = 1;
    StatsRegistry stats1;
    auto serial = plans::RunDistributedJoin(inner, outer, opts, &stats1);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    opts.exec.num_threads = 4 * world;
    StatsRegistry stats4;
    auto parallel = plans::RunDistributedJoin(inner, outer, opts, &stats4);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectBytesEqual(**serial, **parallel,
                     "distributed_join world=" + std::to_string(world));
    ExpectExchangeStats(stats4,
                        "distributed_join world=" + std::to_string(world));
  }
}

TEST(PlanParityTest, DistributedGroupBy) {
  for (int world : {2, 4}) {
    std::vector<RowVectorPtr> frags;
    for (int r = 0; r < world; ++r) {
      frags.push_back(MakeKv(4096, 512, 20 + r));
    }
    plans::DistGroupByOptions opts;
    opts.world_size = world;
    opts.fabric.throttle = false;
    opts.exec.parallel_min_rows = 256;
    opts.exec.num_threads = 1;
    StatsRegistry stats1;
    auto serial = plans::RunDistributedGroupBy(frags, opts, &stats1);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    opts.exec.num_threads = 4 * world;
    StatsRegistry stats4;
    auto parallel = plans::RunDistributedGroupBy(frags, opts, &stats4);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectBytesEqual(**serial, **parallel,
                     "distributed_groupby world=" + std::to_string(world));
    ExpectExchangeStats(stats4,
                        "distributed_groupby world=" + std::to_string(world));
  }
}

TEST(PlanParityTest, JoinSequence) {
  const int64_t rows = 4096;
  for (int world : {2, 4}) {
    std::vector<std::vector<RowVectorPtr>> rels;
    for (int i = 0; i < 3; ++i) {
      // Keys cycle over [0, rows): every stage joins 1-to-1.
      std::vector<RowVectorPtr> frags;
      for (int r = 0; r < world; ++r) {
        frags.push_back(RowVector::Make(KeyValueSchema()));
      }
      for (int64_t j = 0; j < rows; ++j) {
        RowWriter w = frags[j % world]->AppendRow();
        w.SetInt64(0, (j * 7 + i) % rows);
        w.SetInt64(1, j);
      }
      rels.push_back(std::move(frags));
    }
    for (bool optimized : {false, true}) {
      plans::JoinSequenceOptions opts;
      opts.world_size = world;
      opts.fabric.throttle = false;
      opts.exec.parallel_min_rows = 256;
      opts.exec.num_threads = 1;
      StatsRegistry stats1;
      auto serial = plans::RunJoinSequence(rels, opts, optimized, &stats1);
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();
      opts.exec.num_threads = 4 * world;
      StatsRegistry stats4;
      auto parallel = plans::RunJoinSequence(rels, opts, optimized, &stats4);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      ExpectBytesEqual(**serial, **parallel,
                       "join_sequence world=" + std::to_string(world) +
                           (optimized ? " optimized" : " naive"));
      ExpectExchangeStats(stats4,
                          "join_sequence world=" + std::to_string(world));
    }
  }
}

}  // namespace
}  // namespace modularis
