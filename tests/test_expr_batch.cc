/// \file test_expr_batch.cc
/// Differential/property harness for the batch expression evaluator:
/// thousands of random (seeded, reproducible) Expr trees over a mixed
/// i64/f64/string/i32/date schema, asserting that the column-wise kernels
/// (EvalBatch) and selection-vector predicates (FilterBatch) are
/// byte-equal to the interpreted per-row oracle (Eval / EvalBoolChecked),
/// including division-by-zero (yields f64 0.0), -0.0, empty strings,
/// empty batches, subset selections, and the hard-error rule for
/// non-numeric predicate results. Plus operator-level regressions for the
/// selection-vector flow through Filter → Map → ReduceByKey.

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/exec_context.h"
#include "core/expr.h"
#include "suboperators/agg_ops.h"
#include "suboperators/basic_ops.h"
#include "suboperators/scan_ops.h"

namespace modularis {
namespace {

// ---------------------------------------------------------------------------
// Random data / tree generation
// ---------------------------------------------------------------------------

Schema TestSchema() {
  return Schema({Field::I64("a"), Field::F64("b"), Field::Str("s", 8),
                 Field::I32("c"), Field::Date("d"), Field::I64("e")});
}

const std::vector<std::string>& StringPool() {
  static const std::vector<std::string> pool = {
      "", "a", "ab", "abc", "abcdefgh", "zz", "even", "odd", "a_c", "%"};
  return pool;
}

const std::vector<int64_t>& IntPool() {
  // "NULL-ish" and boundary-flavored values, bounded so arithmetic stays
  // away from signed-overflow UB (both paths would hit it identically,
  // but the harness should not rely on that).
  static const std::vector<int64_t> pool = {0,  1,  -1, 2,   -2,  7,
                                            42, -9, 50, 999, -999, 100000};
  return pool;
}

const std::vector<double>& DoublePool() {
  static const std::vector<double> pool = {0.0,  -0.0, 1.0,   -1.0, 0.5,
                                           -2.25, 3.75, 1e12, -1e12, 41.0};
  return pool;
}

RowVectorPtr MakeRows(std::mt19937_64* rng, size_t n) {
  RowVectorPtr rows = RowVector::Make(TestSchema());
  std::uniform_int_distribution<size_t> spick(0, StringPool().size() - 1);
  std::uniform_int_distribution<size_t> ipick(0, IntPool().size() - 1);
  std::uniform_int_distribution<size_t> dpick(0, DoublePool().size() - 1);
  for (size_t i = 0; i < n; ++i) {
    RowWriter w = rows->AppendRow();
    w.SetInt64(0, IntPool()[ipick(*rng)]);
    w.SetFloat64(1, DoublePool()[dpick(*rng)]);
    w.SetString(2, StringPool()[spick(*rng)]);
    w.SetInt32(3, static_cast<int32_t>(IntPool()[ipick(*rng)]));
    w.SetDate(4, static_cast<int32_t>(IntPool()[ipick(*rng)] & 0x7fff));
    w.SetInt64(5, IntPool()[ipick(*rng)]);
  }
  return rows;
}

enum class Want { kBool, kNum, kStr };

ExprPtr Gen(std::mt19937_64* rng, int depth, Want want);

ExprPtr GenStr(std::mt19937_64* rng, int depth) {
  std::uniform_int_distribution<int> pick(0, depth > 0 ? 3 : 2);
  switch (pick(*rng)) {
    case 0:
      return ex::Col(2);
    case 1:
    case 2: {
      std::uniform_int_distribution<size_t> s(0, StringPool().size() - 1);
      return ex::Lit(StringPool()[s(*rng)]);
    }
    default:
      return ex::If(Gen(rng, depth - 1, Want::kBool),
                    Gen(rng, depth - 1, Want::kStr),
                    Gen(rng, depth - 1, Want::kStr));
  }
}

ExprPtr GenNum(std::mt19937_64* rng, int depth) {
  std::uniform_int_distribution<int> pick(0, depth > 0 ? 9 : 4);
  switch (pick(*rng)) {
    case 0:
      return ex::Col(0);
    case 1:
      return ex::Col(1);
    case 2: {
      std::uniform_int_distribution<int> c(0, 2);
      return ex::Col(3 + c(*rng));  // i32 / date / i64
    }
    case 3: {
      std::uniform_int_distribution<size_t> s(0, IntPool().size() - 1);
      return ex::Lit(IntPool()[s(*rng)]);
    }
    case 4: {
      std::uniform_int_distribution<size_t> s(0, DoublePool().size() - 1);
      return ex::Lit(DoublePool()[s(*rng)]);
    }
    case 5:
    case 6:
    case 7: {
      std::uniform_int_distribution<int> op(0, 3);
      return ex::Arith(static_cast<ArithOp>(op(*rng)),
                       Gen(rng, depth - 1, Want::kNum),
                       Gen(rng, depth - 1, Want::kNum));
    }
    case 8:
      // Mixed-type IF branches exercise the interpreted kItem fallback.
      return ex::If(Gen(rng, depth - 1, Want::kBool),
                    Gen(rng, depth - 1, Want::kNum),
                    Gen(rng, depth - 1, Want::kNum));
    default:
      return Gen(rng, depth - 1, Want::kBool);  // 0/1 as a number
  }
}

ExprPtr GenBool(std::mt19937_64* rng, int depth) {
  std::uniform_int_distribution<int> pick(0, depth > 0 ? 11 : 1);
  std::uniform_int_distribution<int> cmp(0, 5);
  switch (pick(*rng)) {
    case 0:
    case 1:
      return ex::Cmp(static_cast<CmpOp>(cmp(*rng)),
                     Gen(rng, depth - 1, Want::kNum),
                     Gen(rng, depth - 1, Want::kNum));
    case 2:
      return ex::Cmp(static_cast<CmpOp>(cmp(*rng)),
                     Gen(rng, depth - 1, Want::kStr),
                     Gen(rng, depth - 1, Want::kStr));
    case 3:
      // Mixed string/number comparison: the empty-view CompareViews rule.
      return ex::Cmp(static_cast<CmpOp>(cmp(*rng)),
                     Gen(rng, depth - 1, Want::kNum),
                     Gen(rng, depth - 1, Want::kStr));
    case 4:
      return ex::And(Gen(rng, depth - 1, Want::kBool),
                     Gen(rng, depth - 1, Want::kBool));
    case 5:
      return ex::Or(Gen(rng, depth - 1, Want::kBool),
                    Gen(rng, depth - 1, Want::kBool));
    case 6:
      return ex::Not(Gen(rng, depth - 1, Want::kBool));
    case 7: {
      static const std::vector<std::string> patterns = {
          "a%", "%b", "_b%", "%", "", "ab", "a_c", "%e%"};
      std::uniform_int_distribution<size_t> p(0, patterns.size() - 1);
      return ex::Like(Gen(rng, depth - 1, Want::kStr), patterns[p(*rng)]);
    }
    case 8: {
      std::uniform_int_distribution<size_t> s(0, StringPool().size() - 1);
      return ex::InStr(Gen(rng, depth - 1, Want::kStr),
                       {StringPool()[s(*rng)], StringPool()[s(*rng)], "ab"});
    }
    case 9: {
      std::uniform_int_distribution<size_t> s(0, IntPool().size() - 1);
      return ex::InInt(Gen(rng, depth - 1, Want::kNum),
                       {IntPool()[s(*rng)], IntPool()[s(*rng)], 0});
    }
    case 10:
      return ex::Between(Gen(rng, depth - 1, Want::kNum),
                         ex::Lit(int64_t{-2}), ex::Lit(int64_t{50}));
    default:
      return ex::If(Gen(rng, depth - 1, Want::kBool),
                    Gen(rng, depth - 1, Want::kBool),
                    Gen(rng, depth - 1, Want::kBool));
  }
}

ExprPtr Gen(std::mt19937_64* rng, int depth, Want want) {
  switch (want) {
    case Want::kBool: return GenBool(rng, depth);
    case Want::kNum: return GenNum(rng, depth);
    case Want::kStr: return GenStr(rng, depth);
  }
  return ex::Lit(int64_t{0});
}

// ---------------------------------------------------------------------------
// Differential checks
// ---------------------------------------------------------------------------

/// Compares one batch-evaluated value against the interpreted oracle.
void ExpectValueEqual(const BatchColumn& col, size_t i, const Item& expected,
                      const std::string& label) {
  switch (col.tag) {
    case BatchTag::kI64:
      ASSERT_TRUE(expected.is_i64()) << label;
      ASSERT_EQ(col.i64[i], expected.i64()) << label;
      break;
    case BatchTag::kF64: {
      ASSERT_TRUE(expected.is_f64()) << label;
      double got = col.f64[i], want = expected.f64();
      ASSERT_EQ(0, std::memcmp(&got, &want, sizeof(double)))
          << label << ": " << got << " vs " << want;
      break;
    }
    case BatchTag::kStr:
      ASSERT_TRUE(expected.is_str()) << label;
      ASSERT_EQ(std::string(col.str[i]), expected.str()) << label;
      break;
    case BatchTag::kItem:
      ASSERT_TRUE(col.items[i] == expected)
          << label << ": " << col.items[i].ToString() << " vs "
          << expected.ToString();
      break;
  }
}

/// Runs every differential check for one expression over one row set.
void CheckTree(const ExprPtr& expr, const RowVector& rows,
               const SelVector& sel, BatchScratch* scratch,
               const std::string& label) {
  RowSpan span{rows.data(), rows.row_size(), &rows.schema()};
  const size_t n = sel.size();

  // 1. Value parity: batch kernel vs per-row Eval().
  BatchColumn col;
  Status st = expr->EvalBatch(span, sel.data(), n, &col, scratch);
  ASSERT_TRUE(st.ok()) << label << ": " << st.ToString();
  ASSERT_EQ(col.size(), n) << label;
  ASSERT_EQ(col.tag, expr->BatchType(rows.schema())) << label;
  for (size_t i = 0; i < n; ++i) {
    Item expected = expr->Eval(rows.row(sel[i]));
    ExpectValueEqual(col, i, expected, label + " row " + std::to_string(i));
  }

  // 2. Checked predicate parity: FilterBatch vs per-row EvalBoolChecked.
  SelVector expected_sel;
  bool oracle_error = false;
  for (size_t i = 0; i < n && !oracle_error; ++i) {
    bool keep = false;
    Status est = expr->EvalBoolChecked(rows.row(sel[i]), &keep);
    if (!est.ok()) {
      oracle_error = true;
    } else if (keep) {
      expected_sel.push_back(sel[i]);
    }
  }
  SelVector got_sel = sel;
  st = expr->FilterBatch(span, &got_sel, scratch, /*checked=*/true);
  if (oracle_error) {
    ASSERT_FALSE(st.ok()) << label << ": oracle errored, batch did not";
  } else {
    ASSERT_TRUE(st.ok()) << label << ": " << st.ToString();
    ASSERT_EQ(got_sel, expected_sel) << label;
  }

  // 3. Unchecked predicate parity: legacy EvalBool semantics, no errors.
  SelVector expected_unchecked;
  for (size_t i = 0; i < n; ++i) {
    if (expr->EvalBool(rows.row(sel[i]))) expected_unchecked.push_back(sel[i]);
  }
  got_sel = sel;
  st = expr->FilterBatch(span, &got_sel, scratch, /*checked=*/false);
  ASSERT_TRUE(st.ok()) << label << ": " << st.ToString();
  ASSERT_EQ(got_sel, expected_unchecked) << label;

  // 4. Empty selection: trivially OK on every path.
  SelVector empty;
  st = expr->FilterBatch(span, &empty, scratch, /*checked=*/true);
  ASSERT_TRUE(st.ok()) << label;
  ASSERT_TRUE(empty.empty()) << label;
  st = expr->EvalBatch(span, nullptr, 0, &col, scratch);
  ASSERT_TRUE(st.ok()) << label;
  ASSERT_EQ(col.size(), 0u) << label;
}

TEST(ExprBatchDifferentialTest, RandomTreesMatchInterpretedOracle) {
  const size_t kRows = 96;
  const int kTreesPerKind = 420;  // 3 kinds → 1260 trees total
  BatchScratch scratch;
  for (int kind = 0; kind < 3; ++kind) {
    for (int t = 0; t < kTreesPerKind; ++t) {
      std::mt19937_64 rng(1000003u * kind + t);  // seeded, reproducible
      RowVectorPtr rows = MakeRows(&rng, kRows);
      ExprPtr expr = Gen(&rng, 4, static_cast<Want>(kind));
      std::string label = "kind=" + std::to_string(kind) +
                          " tree=" + std::to_string(t) + " " +
                          expr->ToString();

      // Identity selection over the full batch.
      SelVector all(kRows);
      for (size_t i = 0; i < kRows; ++i) all[i] = static_cast<uint32_t>(i);
      CheckTree(expr, *rows, all, &scratch, label);

      // Random subset selection (kernels must honor gaps).
      SelVector subset;
      std::uniform_int_distribution<int> coin(0, 2);
      for (size_t i = 0; i < kRows; ++i) {
        if (coin(rng) == 0) subset.push_back(static_cast<uint32_t>(i));
      }
      CheckTree(expr, *rows, subset, &scratch, label + " (subset)");
    }
  }
}

TEST(ExprBatchDifferentialTest, EmptyBatchAllPaths) {
  RowVectorPtr rows = RowVector::Make(TestSchema());
  RowSpan span{rows->data(), rows->row_size(), &rows->schema()};
  BatchScratch scratch;
  ExprPtr expr = ex::And(ex::Lt(ex::Col(0), ex::Lit(int64_t{3})),
                         ex::Like(ex::Col(2), "a%"));
  SelVector sel;
  ASSERT_TRUE(expr->FilterBatch(span, &sel, &scratch, true).ok());
  EXPECT_TRUE(sel.empty());
  BatchColumn col;
  ASSERT_TRUE(expr->EvalBatch(span, nullptr, 0, &col, &scratch).ok());
  EXPECT_EQ(col.size(), 0u);
}

TEST(ExprBatchDifferentialTest, DivisionByZeroYieldsFloat64Zero) {
  std::mt19937_64 rng(7);
  RowVectorPtr rows = MakeRows(&rng, 64);
  BatchScratch scratch;
  ExprPtr expr = ex::Div(ex::Col(0), ex::Lit(int64_t{0}));
  ASSERT_EQ(expr->BatchType(rows->schema()), BatchTag::kF64);
  SelVector all(rows->size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<uint32_t>(i);
  CheckTree(expr, *rows, all, &scratch, "div-by-zero");
  RowSpan span{rows->data(), rows->row_size(), &rows->schema()};
  BatchColumn col;
  ASSERT_TRUE(expr->EvalBatch(span, all.data(), all.size(), &col, &scratch)
                  .ok());
  for (size_t i = 0; i < col.size(); ++i) EXPECT_EQ(col.f64[i], 0.0);
}

// ---------------------------------------------------------------------------
// Non-numeric predicate results are hard errors (regression)
// ---------------------------------------------------------------------------

RowVectorPtr MixedRows(size_t n) {
  std::mt19937_64 rng(11);
  return MakeRows(&rng, n);
}

SubOpPtr ScanOf(const RowVectorPtr& data) {
  return std::make_unique<RowScan>(std::make_unique<CollectionSource>(
      std::vector<RowVectorPtr>{data}));
}

TEST(StringPredicateTest, ExprLevelCheckedError) {
  RowVectorPtr rows = MixedRows(8);
  ExprPtr pred = ex::Col(2);  // string column used as a predicate
  bool keep = false;
  Status st = pred->EvalBoolChecked(rows->row(0), &keep);
  EXPECT_FALSE(st.ok());
  // Legacy unchecked EvalBool keeps the silent-false behavior.
  EXPECT_FALSE(pred->EvalBool(rows->row(0)));

  BatchScratch scratch;
  RowSpan span{rows->data(), rows->row_size(), &rows->schema()};
  SelVector sel = {0, 1, 2};
  EXPECT_FALSE(pred->FilterBatch(span, &sel, &scratch, true).ok());
  sel = {0, 1, 2};
  ASSERT_TRUE(pred->FilterBatch(span, &sel, &scratch, false).ok());
  EXPECT_TRUE(sel.empty());
}

TEST(StringPredicateTest, FilterRowPathFailsHard) {
  Filter filter(ScanOf(MixedRows(16)), ex::Col(2));
  ExecContext ctx;
  ASSERT_TRUE(filter.Open(&ctx).ok());
  Tuple t;
  EXPECT_FALSE(filter.Next(&t));
  EXPECT_FALSE(filter.status().ok());
}

TEST(StringPredicateTest, FilterBatchPathFailsHard) {
  Filter filter(ScanOf(MixedRows(16)),
                ex::And(ex::Ge(ex::Col(0), ex::Lit(int64_t{-1000000})),
                        ex::Col(2)));
  ExecContext ctx;
  ASSERT_TRUE(filter.Open(&ctx).ok());
  RowBatch batch;
  EXPECT_FALSE(filter.NextBatch(&batch));
  EXPECT_FALSE(filter.status().ok());
}

// ---------------------------------------------------------------------------
// Selection-vector flow through the operator stack
// ---------------------------------------------------------------------------

TEST(SelectionFlowTest, FilterAttachesSelectionWithoutCopy) {
  RowVectorPtr data = RowVector::Make(KeyValueSchema());
  for (int64_t i = 0; i < 100; ++i) {
    RowWriter w = data->AppendRow();
    w.SetInt64(0, i % 10);
    w.SetInt64(1, i);
  }
  // Partial pass: selection attached, rows left in place.
  Filter partial(ScanOf(data), ex::Lt(ex::Col(0), ex::Lit(int64_t{5})));
  ExecContext ctx;
  ASSERT_TRUE(partial.Open(&ctx).ok());
  RowBatch batch;
  ASSERT_TRUE(partial.NextBatchSelective(&batch));
  EXPECT_TRUE(batch.has_selection());
  EXPECT_EQ(batch.size(), 50u);
  EXPECT_EQ(batch.dense_size(), 100u);
  EXPECT_EQ(batch.data(), data->data());  // zero copy
  EXPECT_EQ(batch.row(1).GetInt64(1), 1);
  ASSERT_TRUE(partial.Close().ok());

  // All-pass: forwarded dense, no selection.
  Filter all(ScanOf(data), ex::Lt(ex::Col(0), ex::Lit(int64_t{100})));
  ASSERT_TRUE(all.Open(&ctx).ok());
  ASSERT_TRUE(all.NextBatchSelective(&batch));
  EXPECT_FALSE(batch.has_selection());
  EXPECT_EQ(batch.size(), 100u);
  EXPECT_EQ(batch.data(), data->data());
}

TEST(SelectionFlowTest, ChainedFiltersNarrowOneSelection) {
  RowVectorPtr data = RowVector::Make(KeyValueSchema());
  for (int64_t i = 0; i < 1000; ++i) {
    RowWriter w = data->AppendRow();
    w.SetInt64(0, i);
    w.SetInt64(1, -i);
  }
  auto inner =
      std::make_unique<Filter>(ScanOf(data),
                               ex::Ge(ex::Col(0), ex::Lit(int64_t{100})));
  Filter outer(std::move(inner), ex::Lt(ex::Col(0), ex::Lit(int64_t{200})));
  ExecContext ctx;
  ASSERT_TRUE(outer.Open(&ctx).ok());
  RowBatch batch;
  ASSERT_TRUE(outer.NextBatchSelective(&batch));
  EXPECT_TRUE(batch.has_selection());
  EXPECT_EQ(batch.size(), 100u);
  EXPECT_EQ(batch.data(), data->data());  // still the base collection
  EXPECT_EQ(batch.row(0).GetInt64(0), 100);
  EXPECT_EQ(batch.row(99).GetInt64(0), 199);
}

/// Full Filter → Map → ReduceByKey plan: vectorized (selection-vector)
/// path must be byte-identical to the row-at-a-time oracle.
TEST(SelectionFlowTest, FilterMapReduceParity) {
  RowVectorPtr data = RowVector::Make(KeyValueSchema());
  std::mt19937_64 rng(23);
  std::uniform_int_distribution<int64_t> dist(0, 999);
  for (int64_t i = 0; i < 20000; ++i) {
    RowWriter w = data->AppendRow();
    w.SetInt64(0, dist(rng));
    w.SetInt64(1, i);
  }
  Schema mapped({Field::I64("g"), Field::F64("x")});
  auto make_plan = [&] {
    auto filter = std::make_unique<Filter>(
        ScanOf(data), ex::And(ex::Ge(ex::Col(0), ex::Lit(int64_t{100})),
                              ex::Lt(ex::Col(0), ex::Lit(int64_t{600}))));
    auto map = std::make_unique<MapOp>(
        std::move(filter), mapped,
        std::vector<MapOutput>{
            MapOutput::Compute(ex::Sub(ex::Col(0), ex::Lit(int64_t{100}))),
            MapOutput::Compute(ex::Div(ex::Col(1), ex::Lit(3.0)))});
    return std::make_unique<ReduceByKey>(
        std::move(map), std::vector<int>{0},
        std::vector<AggSpec>{
            AggSpec{AggKind::kSum, ex::Col(1), "sum", AtomType::kFloat64},
            AggSpec{AggKind::kCount, nullptr, "cnt", AtomType::kInt64}},
        mapped);
  };
  RowVectorPtr baseline, got;
  for (bool vectorized : {false, true}) {
    auto plan = make_plan();
    ExecContext ctx;
    ctx.options.enable_vectorized = vectorized;
    ASSERT_TRUE(plan->Open(&ctx).ok());
    RowVectorPtr result = RowVector::Make(plan->out_schema());
    Tuple t;
    while (plan->Next(&t)) result->AppendRaw(t[0].row().data());
    ASSERT_TRUE(plan->status().ok()) << plan->status().ToString();
    ASSERT_TRUE(plan->Close().ok());
    (vectorized ? got : baseline) = std::move(result);
  }
  ASSERT_GT(baseline->size(), 0u);
  ASSERT_EQ(baseline->size(), got->size());
  ASSERT_EQ(0, std::memcmp(baseline->data(), got->data(),
                           baseline->byte_size()));
}

/// Map over a mixed schema straight from the differential generator's
/// domain: passthroughs of every type plus computed columns.
TEST(SelectionFlowTest, MapMixedSchemaParity) {
  std::mt19937_64 rng(31);
  RowVectorPtr data = MakeRows(&rng, 5000);
  Schema out({Field::I64("a"), Field::Str("s", 8), Field::I32("c"),
              Field::F64("q"), Field::I64("flag")});
  auto make_plan = [&] {
    auto filter = std::make_unique<Filter>(
        ScanOf(data), ex::Or(ex::Like(ex::Col(2), "a%"),
                             ex::Gt(ex::Col(1), ex::Lit(0.0))));
    return std::make_unique<MapOp>(
        std::move(filter), out,
        std::vector<MapOutput>{
            MapOutput::Pass(0), MapOutput::Pass(2), MapOutput::Pass(3),
            MapOutput::Compute(ex::Add(ex::Col(1), ex::Col(0))),
            MapOutput::Compute(ex::If(ex::Eq(ex::Col(2), ex::Lit("ab")),
                                      ex::Lit(int64_t{1}),
                                      ex::Lit(int64_t{0})))});
  };
  RowVectorPtr baseline, got;
  for (bool vectorized : {false, true}) {
    auto plan = make_plan();
    ExecContext ctx;
    ctx.options.enable_vectorized = vectorized;
    MaterializeRowVector mat(std::move(plan), out);
    ASSERT_TRUE(mat.Open(&ctx).ok());
    Tuple t;
    ASSERT_TRUE(mat.Next(&t));
    ASSERT_TRUE(mat.status().ok());
    ASSERT_TRUE(mat.Close().ok());
    (vectorized ? got : baseline) = t[0].collection();
  }
  ASSERT_GT(baseline->size(), 0u);
  ASSERT_EQ(baseline->size(), got->size());
  ASSERT_EQ(0, std::memcmp(baseline->data(), got->data(),
                           baseline->byte_size()));
}

}  // namespace
}  // namespace modularis
