/// \file test_expr_batch.cc
/// Differential/property harness for the batch expression evaluator:
/// thousands of random (seeded, reproducible) Expr trees over a mixed
/// i64/f64/string/i32/date schema, asserting that the column-wise kernels
/// (EvalBatch) and selection-vector predicates (FilterBatch) are
/// byte-equal to the interpreted per-row oracle (Eval / EvalBoolChecked),
/// including division-by-zero (yields f64 0.0), -0.0, empty strings,
/// empty batches, subset selections, and the hard-error rule for
/// non-numeric predicate results. Plus operator-level regressions for the
/// selection-vector flow through Filter → Map → ReduceByKey.

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/exec_context.h"
#include "core/expr.h"
#include "core/expr_bc.h"
#include "suboperators/agg_ops.h"
#include "suboperators/basic_ops.h"
#include "suboperators/scan_ops.h"

namespace modularis {
namespace {

// ---------------------------------------------------------------------------
// Random data / tree generation
// ---------------------------------------------------------------------------

Schema TestSchema() {
  return Schema({Field::I64("a"), Field::F64("b"), Field::Str("s", 8),
                 Field::I32("c"), Field::Date("d"), Field::I64("e")});
}

const std::vector<std::string>& StringPool() {
  static const std::vector<std::string> pool = {
      "", "a", "ab", "abc", "abcdefgh", "zz", "even", "odd", "a_c", "%"};
  return pool;
}

const std::vector<int64_t>& IntPool() {
  // "NULL-ish" and boundary-flavored values, bounded so arithmetic stays
  // away from signed-overflow UB (both paths would hit it identically,
  // but the harness should not rely on that).
  static const std::vector<int64_t> pool = {0,  1,  -1, 2,   -2,  7,
                                            42, -9, 50, 999, -999, 100000};
  return pool;
}

const std::vector<double>& DoublePool() {
  static const std::vector<double> pool = {0.0,  -0.0, 1.0,   -1.0, 0.5,
                                           -2.25, 3.75, 1e12, -1e12, 41.0};
  return pool;
}

RowVectorPtr MakeRows(std::mt19937_64* rng, size_t n) {
  RowVectorPtr rows = RowVector::Make(TestSchema());
  std::uniform_int_distribution<size_t> spick(0, StringPool().size() - 1);
  std::uniform_int_distribution<size_t> ipick(0, IntPool().size() - 1);
  std::uniform_int_distribution<size_t> dpick(0, DoublePool().size() - 1);
  for (size_t i = 0; i < n; ++i) {
    RowWriter w = rows->AppendRow();
    w.SetInt64(0, IntPool()[ipick(*rng)]);
    w.SetFloat64(1, DoublePool()[dpick(*rng)]);
    w.SetString(2, StringPool()[spick(*rng)]);
    w.SetInt32(3, static_cast<int32_t>(IntPool()[ipick(*rng)]));
    w.SetDate(4, static_cast<int32_t>(IntPool()[ipick(*rng)] & 0x7fff));
    w.SetInt64(5, IntPool()[ipick(*rng)]);
  }
  return rows;
}

enum class Want { kBool, kNum, kStr };

ExprPtr Gen(std::mt19937_64* rng, int depth, Want want);

ExprPtr GenStr(std::mt19937_64* rng, int depth) {
  std::uniform_int_distribution<int> pick(0, depth > 0 ? 3 : 2);
  switch (pick(*rng)) {
    case 0:
      return ex::Col(2);
    case 1:
    case 2: {
      std::uniform_int_distribution<size_t> s(0, StringPool().size() - 1);
      return ex::Lit(StringPool()[s(*rng)]);
    }
    default:
      return ex::If(Gen(rng, depth - 1, Want::kBool),
                    Gen(rng, depth - 1, Want::kStr),
                    Gen(rng, depth - 1, Want::kStr));
  }
}

ExprPtr GenNum(std::mt19937_64* rng, int depth) {
  std::uniform_int_distribution<int> pick(0, depth > 0 ? 9 : 4);
  switch (pick(*rng)) {
    case 0:
      return ex::Col(0);
    case 1:
      return ex::Col(1);
    case 2: {
      std::uniform_int_distribution<int> c(0, 2);
      return ex::Col(3 + c(*rng));  // i32 / date / i64
    }
    case 3: {
      std::uniform_int_distribution<size_t> s(0, IntPool().size() - 1);
      return ex::Lit(IntPool()[s(*rng)]);
    }
    case 4: {
      std::uniform_int_distribution<size_t> s(0, DoublePool().size() - 1);
      return ex::Lit(DoublePool()[s(*rng)]);
    }
    case 5:
    case 6:
    case 7: {
      std::uniform_int_distribution<int> op(0, 3);
      return ex::Arith(static_cast<ArithOp>(op(*rng)),
                       Gen(rng, depth - 1, Want::kNum),
                       Gen(rng, depth - 1, Want::kNum));
    }
    case 8:
      // Mixed-type IF branches exercise the interpreted kItem fallback.
      return ex::If(Gen(rng, depth - 1, Want::kBool),
                    Gen(rng, depth - 1, Want::kNum),
                    Gen(rng, depth - 1, Want::kNum));
    default:
      return Gen(rng, depth - 1, Want::kBool);  // 0/1 as a number
  }
}

ExprPtr GenBool(std::mt19937_64* rng, int depth) {
  std::uniform_int_distribution<int> pick(0, depth > 0 ? 11 : 1);
  std::uniform_int_distribution<int> cmp(0, 5);
  switch (pick(*rng)) {
    case 0:
    case 1:
      return ex::Cmp(static_cast<CmpOp>(cmp(*rng)),
                     Gen(rng, depth - 1, Want::kNum),
                     Gen(rng, depth - 1, Want::kNum));
    case 2:
      return ex::Cmp(static_cast<CmpOp>(cmp(*rng)),
                     Gen(rng, depth - 1, Want::kStr),
                     Gen(rng, depth - 1, Want::kStr));
    case 3:
      // Mixed string/number comparison: the empty-view CompareViews rule.
      return ex::Cmp(static_cast<CmpOp>(cmp(*rng)),
                     Gen(rng, depth - 1, Want::kNum),
                     Gen(rng, depth - 1, Want::kStr));
    case 4:
      return ex::And(Gen(rng, depth - 1, Want::kBool),
                     Gen(rng, depth - 1, Want::kBool));
    case 5:
      return ex::Or(Gen(rng, depth - 1, Want::kBool),
                    Gen(rng, depth - 1, Want::kBool));
    case 6:
      return ex::Not(Gen(rng, depth - 1, Want::kBool));
    case 7: {
      static const std::vector<std::string> patterns = {
          "a%", "%b", "_b%", "%", "", "ab", "a_c", "%e%"};
      std::uniform_int_distribution<size_t> p(0, patterns.size() - 1);
      return ex::Like(Gen(rng, depth - 1, Want::kStr), patterns[p(*rng)]);
    }
    case 8: {
      std::uniform_int_distribution<size_t> s(0, StringPool().size() - 1);
      return ex::InStr(Gen(rng, depth - 1, Want::kStr),
                       {StringPool()[s(*rng)], StringPool()[s(*rng)], "ab"});
    }
    case 9: {
      std::uniform_int_distribution<size_t> s(0, IntPool().size() - 1);
      return ex::InInt(Gen(rng, depth - 1, Want::kNum),
                       {IntPool()[s(*rng)], IntPool()[s(*rng)], 0});
    }
    case 10:
      return ex::Between(Gen(rng, depth - 1, Want::kNum),
                         ex::Lit(int64_t{-2}), ex::Lit(int64_t{50}));
    default:
      return ex::If(Gen(rng, depth - 1, Want::kBool),
                    Gen(rng, depth - 1, Want::kBool),
                    Gen(rng, depth - 1, Want::kBool));
  }
}

ExprPtr Gen(std::mt19937_64* rng, int depth, Want want) {
  switch (want) {
    case Want::kBool: return GenBool(rng, depth);
    case Want::kNum: return GenNum(rng, depth);
    case Want::kStr: return GenStr(rng, depth);
  }
  return ex::Lit(int64_t{0});
}

// ---------------------------------------------------------------------------
// Differential checks
// ---------------------------------------------------------------------------

/// Compares one batch-evaluated value against the interpreted oracle.
void ExpectValueEqual(const BatchColumn& col, size_t i, const Item& expected,
                      const std::string& label) {
  switch (col.tag) {
    case BatchTag::kI64:
      ASSERT_TRUE(expected.is_i64()) << label;
      ASSERT_EQ(col.i64[i], expected.i64()) << label;
      break;
    case BatchTag::kF64: {
      ASSERT_TRUE(expected.is_f64()) << label;
      double got = col.f64[i], want = expected.f64();
      ASSERT_EQ(0, std::memcmp(&got, &want, sizeof(double)))
          << label << ": " << got << " vs " << want;
      break;
    }
    case BatchTag::kStr:
      ASSERT_TRUE(expected.is_str()) << label;
      ASSERT_EQ(std::string(col.str[i]), expected.str()) << label;
      break;
    case BatchTag::kItem:
      ASSERT_TRUE(col.items[i] == expected)
          << label << ": " << col.items[i].ToString() << " vs "
          << expected.ToString();
      break;
  }
}

/// Runs every differential check for one expression over one row set,
/// across all three tiers: interpreted per-row (the oracle), the batch
/// kernels, and the compiled bytecode programs (optimized and raw).
void CheckTree(const ExprPtr& expr, const RowVector& rows,
               const SelVector& sel, BatchScratch* scratch,
               const std::string& label) {
  RowSpan span{rows.data(), rows.row_size(), &rows.schema()};
  const size_t n = sel.size();

  // 1. Value parity: batch kernel vs per-row Eval().
  BatchColumn col;
  Status st = expr->EvalBatch(span, sel.data(), n, &col, scratch);
  ASSERT_TRUE(st.ok()) << label << ": " << st.ToString();
  ASSERT_EQ(col.size(), n) << label;
  ASSERT_EQ(col.tag, expr->BatchType(rows.schema())) << label;
  for (size_t i = 0; i < n; ++i) {
    Item expected = expr->Eval(rows.row(sel[i]));
    ExpectValueEqual(col, i, expected, label + " row " + std::to_string(i));
  }

  // 1b. Bytecode value parity: byte-equal to the batch kernel column,
  // with and without the optimizer.
  BcState bc_state;
  for (bool optimize : {true, false}) {
    BcProgram prog = BcProgram::CompileValue(expr, rows.schema(), optimize);
    ASSERT_TRUE(prog.valid()) << label;
    // Dead-branch elimination may narrow a statically mixed-type (kItem)
    // IF to the taken branch's concrete tag; values are still checked
    // per row against the interpreted oracle below.
    if (col.tag != BatchTag::kItem) {
      ASSERT_EQ(prog.value_tag(), col.tag) << label;
    }
    BatchColumn bc_col;
    st = prog.RunValue(span, sel.data(), n, &bc_col, &bc_state);
    ASSERT_TRUE(st.ok()) << label << " (bc value opt=" << optimize
                         << "): " << st.ToString();
    ASSERT_EQ(bc_col.size(), n) << label;
    if (col.tag != BatchTag::kItem) {
      ASSERT_EQ(bc_col.tag, col.tag) << label;
    }
    for (size_t i = 0; i < n; ++i) {
      Item expected = expr->Eval(rows.row(sel[i]));
      ExpectValueEqual(bc_col, i, expected,
                       label + " (bc value opt=" + std::to_string(optimize) +
                           ") row " + std::to_string(i));
    }
  }

  // 2. Checked predicate parity: FilterBatch vs per-row EvalBoolChecked.
  SelVector expected_sel;
  bool oracle_error = false;
  for (size_t i = 0; i < n && !oracle_error; ++i) {
    bool keep = false;
    Status est = expr->EvalBoolChecked(rows.row(sel[i]), &keep);
    if (!est.ok()) {
      oracle_error = true;
    } else if (keep) {
      expected_sel.push_back(sel[i]);
    }
  }
  SelVector got_sel = sel;
  st = expr->FilterBatch(span, &got_sel, scratch);
  if (oracle_error) {
    ASSERT_FALSE(st.ok()) << label << ": oracle errored, batch did not";
  } else {
    ASSERT_TRUE(st.ok()) << label << ": " << st.ToString();
    ASSERT_EQ(got_sel, expected_sel) << label;
  }

  // 2b. Bytecode predicate parity: identical selections (or the same
  // error verdict), with and without the optimizer.
  for (bool optimize : {true, false}) {
    BcProgram prog = BcProgram::CompileFilter(expr, rows.schema(), optimize);
    ASSERT_TRUE(prog.valid()) << label;
    SelVector bc_sel = sel;
    st = prog.RunFilter(span, &bc_sel, &bc_state);
    if (oracle_error) {
      ASSERT_FALSE(st.ok())
          << label << " (bc filter opt=" << optimize
          << "): oracle errored, bytecode did not";
    } else {
      ASSERT_TRUE(st.ok()) << label << " (bc filter opt=" << optimize
                           << "): " << st.ToString();
      ASSERT_EQ(bc_sel, expected_sel)
          << label << " (bc filter opt=" << optimize << ")";
    }
  }

  // 3. Empty selection: trivially OK on every path.
  SelVector empty;
  st = expr->FilterBatch(span, &empty, scratch);
  ASSERT_TRUE(st.ok()) << label;
  ASSERT_TRUE(empty.empty()) << label;
  st = expr->EvalBatch(span, nullptr, 0, &col, scratch);
  ASSERT_TRUE(st.ok()) << label;
  ASSERT_EQ(col.size(), 0u) << label;
  BcProgram fprog = BcProgram::CompileFilter(expr, rows.schema());
  st = fprog.RunFilter(span, &empty, &bc_state);
  ASSERT_TRUE(st.ok()) << label;
  ASSERT_TRUE(empty.empty()) << label;
}

TEST(ExprBatchDifferentialTest, RandomTreesMatchInterpretedOracle) {
  const size_t kRows = 96;
  const int kTreesPerKind = 420;  // 3 kinds → 1260 trees total
  BatchScratch scratch;
  for (int kind = 0; kind < 3; ++kind) {
    for (int t = 0; t < kTreesPerKind; ++t) {
      std::mt19937_64 rng(1000003u * kind + t);  // seeded, reproducible
      RowVectorPtr rows = MakeRows(&rng, kRows);
      ExprPtr expr = Gen(&rng, 4, static_cast<Want>(kind));
      std::string label = "kind=" + std::to_string(kind) +
                          " tree=" + std::to_string(t) + " " +
                          expr->ToString();

      // Identity selection over the full batch.
      SelVector all(kRows);
      for (size_t i = 0; i < kRows; ++i) all[i] = static_cast<uint32_t>(i);
      CheckTree(expr, *rows, all, &scratch, label);

      // Random subset selection (kernels must honor gaps).
      SelVector subset;
      std::uniform_int_distribution<int> coin(0, 2);
      for (size_t i = 0; i < kRows; ++i) {
        if (coin(rng) == 0) subset.push_back(static_cast<uint32_t>(i));
      }
      CheckTree(expr, *rows, subset, &scratch, label + " (subset)");
    }
  }
}

TEST(ExprBatchDifferentialTest, EmptyBatchAllPaths) {
  RowVectorPtr rows = RowVector::Make(TestSchema());
  RowSpan span{rows->data(), rows->row_size(), &rows->schema()};
  BatchScratch scratch;
  ExprPtr expr = ex::And(ex::Lt(ex::Col(0), ex::Lit(int64_t{3})),
                         ex::Like(ex::Col(2), "a%"));
  SelVector sel;
  ASSERT_TRUE(expr->FilterBatch(span, &sel, &scratch).ok());
  EXPECT_TRUE(sel.empty());
  BatchColumn col;
  ASSERT_TRUE(expr->EvalBatch(span, nullptr, 0, &col, &scratch).ok());
  EXPECT_EQ(col.size(), 0u);
}

TEST(ExprBatchDifferentialTest, DivisionByZeroYieldsFloat64Zero) {
  std::mt19937_64 rng(7);
  RowVectorPtr rows = MakeRows(&rng, 64);
  BatchScratch scratch;
  ExprPtr expr = ex::Div(ex::Col(0), ex::Lit(int64_t{0}));
  ASSERT_EQ(expr->BatchType(rows->schema()), BatchTag::kF64);
  SelVector all(rows->size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<uint32_t>(i);
  CheckTree(expr, *rows, all, &scratch, "div-by-zero");
  RowSpan span{rows->data(), rows->row_size(), &rows->schema()};
  BatchColumn col;
  ASSERT_TRUE(expr->EvalBatch(span, all.data(), all.size(), &col, &scratch)
                  .ok());
  for (size_t i = 0; i < col.size(); ++i) EXPECT_EQ(col.f64[i], 0.0);
}

// ---------------------------------------------------------------------------
// Non-numeric predicate results are hard errors (regression)
// ---------------------------------------------------------------------------

RowVectorPtr MixedRows(size_t n) {
  std::mt19937_64 rng(11);
  return MakeRows(&rng, n);
}

SubOpPtr ScanOf(const RowVectorPtr& data) {
  return std::make_unique<RowScan>(std::make_unique<CollectionSource>(
      std::vector<RowVectorPtr>{data}));
}

TEST(StringPredicateTest, ExprLevelCheckedError) {
  RowVectorPtr rows = MixedRows(8);
  ExprPtr pred = ex::Col(2);  // string column used as a predicate
  bool keep = false;
  Status st = pred->EvalBoolChecked(rows->row(0), &keep);
  EXPECT_FALSE(st.ok());
  // Legacy unchecked EvalBool keeps the silent-false behavior.
  EXPECT_FALSE(pred->EvalBool(rows->row(0)));

  BatchScratch scratch;
  RowSpan span{rows->data(), rows->row_size(), &rows->schema()};
  SelVector sel = {0, 1, 2};
  EXPECT_FALSE(pred->FilterBatch(span, &sel, &scratch).ok());
  // The bytecode tier raises the identical error.
  BcProgram prog = BcProgram::CompileFilter(pred, rows->schema());
  BcState state;
  sel = {0, 1, 2};
  Status bst = prog.RunFilter(span, &sel, &state);
  EXPECT_FALSE(bst.ok());
}

TEST(StringPredicateTest, FilterRowPathFailsHard) {
  Filter filter(ScanOf(MixedRows(16)), ex::Col(2));
  ExecContext ctx;
  ASSERT_TRUE(filter.Open(&ctx).ok());
  Tuple t;
  EXPECT_FALSE(filter.Next(&t));
  EXPECT_FALSE(filter.status().ok());
}

TEST(StringPredicateTest, FilterBatchPathFailsHard) {
  Filter filter(ScanOf(MixedRows(16)),
                ex::And(ex::Ge(ex::Col(0), ex::Lit(int64_t{-1000000})),
                        ex::Col(2)));
  ExecContext ctx;
  ASSERT_TRUE(filter.Open(&ctx).ok());
  RowBatch batch;
  EXPECT_FALSE(filter.NextBatch(&batch));
  EXPECT_FALSE(filter.status().ok());
}

// ---------------------------------------------------------------------------
// Selection-vector flow through the operator stack
// ---------------------------------------------------------------------------

TEST(SelectionFlowTest, FilterAttachesSelectionWithoutCopy) {
  RowVectorPtr data = RowVector::Make(KeyValueSchema());
  for (int64_t i = 0; i < 100; ++i) {
    RowWriter w = data->AppendRow();
    w.SetInt64(0, i % 10);
    w.SetInt64(1, i);
  }
  // Partial pass: selection attached, rows left in place.
  Filter partial(ScanOf(data), ex::Lt(ex::Col(0), ex::Lit(int64_t{5})));
  ExecContext ctx;
  ASSERT_TRUE(partial.Open(&ctx).ok());
  RowBatch batch;
  ASSERT_TRUE(partial.NextBatchSelective(&batch));
  EXPECT_TRUE(batch.has_selection());
  EXPECT_EQ(batch.size(), 50u);
  EXPECT_EQ(batch.dense_size(), 100u);
  EXPECT_EQ(batch.data(), data->data());  // zero copy
  EXPECT_EQ(batch.row(1).GetInt64(1), 1);
  ASSERT_TRUE(partial.Close().ok());

  // All-pass: forwarded dense, no selection.
  Filter all(ScanOf(data), ex::Lt(ex::Col(0), ex::Lit(int64_t{100})));
  ASSERT_TRUE(all.Open(&ctx).ok());
  ASSERT_TRUE(all.NextBatchSelective(&batch));
  EXPECT_FALSE(batch.has_selection());
  EXPECT_EQ(batch.size(), 100u);
  EXPECT_EQ(batch.data(), data->data());
}

TEST(SelectionFlowTest, ChainedFiltersNarrowOneSelection) {
  RowVectorPtr data = RowVector::Make(KeyValueSchema());
  for (int64_t i = 0; i < 1000; ++i) {
    RowWriter w = data->AppendRow();
    w.SetInt64(0, i);
    w.SetInt64(1, -i);
  }
  auto inner =
      std::make_unique<Filter>(ScanOf(data),
                               ex::Ge(ex::Col(0), ex::Lit(int64_t{100})));
  Filter outer(std::move(inner), ex::Lt(ex::Col(0), ex::Lit(int64_t{200})));
  ExecContext ctx;
  ASSERT_TRUE(outer.Open(&ctx).ok());
  RowBatch batch;
  ASSERT_TRUE(outer.NextBatchSelective(&batch));
  EXPECT_TRUE(batch.has_selection());
  EXPECT_EQ(batch.size(), 100u);
  EXPECT_EQ(batch.data(), data->data());  // still the base collection
  EXPECT_EQ(batch.row(0).GetInt64(0), 100);
  EXPECT_EQ(batch.row(99).GetInt64(0), 199);
}

/// Full Filter → Map → ReduceByKey plan: vectorized (selection-vector)
/// path must be byte-identical to the row-at-a-time oracle.
TEST(SelectionFlowTest, FilterMapReduceParity) {
  RowVectorPtr data = RowVector::Make(KeyValueSchema());
  std::mt19937_64 rng(23);
  std::uniform_int_distribution<int64_t> dist(0, 999);
  for (int64_t i = 0; i < 20000; ++i) {
    RowWriter w = data->AppendRow();
    w.SetInt64(0, dist(rng));
    w.SetInt64(1, i);
  }
  Schema mapped({Field::I64("g"), Field::F64("x")});
  auto make_plan = [&] {
    auto filter = std::make_unique<Filter>(
        ScanOf(data), ex::And(ex::Ge(ex::Col(0), ex::Lit(int64_t{100})),
                              ex::Lt(ex::Col(0), ex::Lit(int64_t{600}))));
    auto map = std::make_unique<MapOp>(
        std::move(filter), mapped,
        std::vector<MapOutput>{
            MapOutput::Compute(ex::Sub(ex::Col(0), ex::Lit(int64_t{100}))),
            MapOutput::Compute(ex::Div(ex::Col(1), ex::Lit(3.0)))});
    return std::make_unique<ReduceByKey>(
        std::move(map), std::vector<int>{0},
        std::vector<AggSpec>{
            AggSpec{AggKind::kSum, ex::Col(1), "sum", AtomType::kFloat64},
            AggSpec{AggKind::kCount, nullptr, "cnt", AtomType::kInt64}},
        mapped);
  };
  RowVectorPtr baseline, got;
  for (bool vectorized : {false, true}) {
    auto plan = make_plan();
    ExecContext ctx;
    ctx.options.enable_vectorized = vectorized;
    ASSERT_TRUE(plan->Open(&ctx).ok());
    RowVectorPtr result = RowVector::Make(plan->out_schema());
    Tuple t;
    while (plan->Next(&t)) result->AppendRaw(t[0].row().data());
    ASSERT_TRUE(plan->status().ok()) << plan->status().ToString();
    ASSERT_TRUE(plan->Close().ok());
    (vectorized ? got : baseline) = std::move(result);
  }
  ASSERT_GT(baseline->size(), 0u);
  ASSERT_EQ(baseline->size(), got->size());
  ASSERT_EQ(0, std::memcmp(baseline->data(), got->data(),
                           baseline->byte_size()));
}

/// Map over a mixed schema straight from the differential generator's
/// domain: passthroughs of every type plus computed columns.
TEST(SelectionFlowTest, MapMixedSchemaParity) {
  std::mt19937_64 rng(31);
  RowVectorPtr data = MakeRows(&rng, 5000);
  Schema out({Field::I64("a"), Field::Str("s", 8), Field::I32("c"),
              Field::F64("q"), Field::I64("flag")});
  auto make_plan = [&] {
    auto filter = std::make_unique<Filter>(
        ScanOf(data), ex::Or(ex::Like(ex::Col(2), "a%"),
                             ex::Gt(ex::Col(1), ex::Lit(0.0))));
    return std::make_unique<MapOp>(
        std::move(filter), out,
        std::vector<MapOutput>{
            MapOutput::Pass(0), MapOutput::Pass(2), MapOutput::Pass(3),
            MapOutput::Compute(ex::Add(ex::Col(1), ex::Col(0))),
            MapOutput::Compute(ex::If(ex::Eq(ex::Col(2), ex::Lit("ab")),
                                      ex::Lit(int64_t{1}),
                                      ex::Lit(int64_t{0})))});
  };
  RowVectorPtr baseline, got;
  for (bool vectorized : {false, true}) {
    auto plan = make_plan();
    ExecContext ctx;
    ctx.options.enable_vectorized = vectorized;
    MaterializeRowVector mat(std::move(plan), out);
    ASSERT_TRUE(mat.Open(&ctx).ok());
    Tuple t;
    ASSERT_TRUE(mat.Next(&t));
    ASSERT_TRUE(mat.status().ok());
    ASSERT_TRUE(mat.Close().ok());
    (vectorized ? got : baseline) = t[0].collection();
  }
  ASSERT_GT(baseline->size(), 0u);
  ASSERT_EQ(baseline->size(), got->size());
  ASSERT_EQ(0, std::memcmp(baseline->data(), got->data(),
                           baseline->byte_size()));
}

// ---------------------------------------------------------------------------
// Bytecode optimizer semantics
// ---------------------------------------------------------------------------

TEST(BytecodeOptimizerTest, ConstantFoldingDivByZeroMatchesEvaluation) {
  // Engine semantics: division always produces f64 and x/0 == 0.0. The
  // folder must bake in exactly that value — never a compile-time error.
  std::mt19937_64 rng(3);
  RowVectorPtr rows = MakeRows(&rng, 16);
  ExprPtr expr = ex::Add(ex::Div(ex::Lit(int64_t{7}), ex::Lit(int64_t{0})),
                         ex::Lit(1.5));
  BcProgram prog = BcProgram::CompileValue(expr, rows->schema());
  EXPECT_GT(prog.stats().folded, 0u) << prog.Disassemble();
  EXPECT_EQ(prog.fallback_count(), 0u);
  RowSpan span{rows->data(), rows->row_size(), &rows->schema()};
  SelVector all(rows->size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<uint32_t>(i);
  BcState state;
  BatchColumn col;
  ASSERT_TRUE(
      prog.RunValue(span, all.data(), all.size(), &col, &state).ok());
  ASSERT_EQ(col.tag, BatchTag::kF64);
  for (size_t i = 0; i < col.size(); ++i) {
    const double want = expr->Eval(rows->row(i)).f64();
    ASSERT_EQ(0, std::memcmp(&col.f64[i], &want, sizeof(double)));
    EXPECT_EQ(col.f64[i], 1.5);  // 7/0 -> 0.0, + 1.5
  }
}

TEST(BytecodeOptimizerTest, ShortCircuitSkipsErroringChild) {
  // AND narrows child by child; once the selection is empty, a later
  // child that would raise (a statically string-typed predicate) must
  // never fire — on the interpreted tier or the compiled one.
  std::mt19937_64 rng(5);
  RowVectorPtr rows = MakeRows(&rng, 32);
  ExprPtr never = ex::Eq(ex::Col(0), ex::Lit(int64_t{123456789}));
  ExprPtr raising = ex::Col(2);  // string column as a predicate
  ExprPtr expr = ex::And(never, raising);
  RowSpan span{rows->data(), rows->row_size(), &rows->schema()};
  SelVector all(rows->size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<uint32_t>(i);

  BatchScratch scratch;
  SelVector sel = all;
  ASSERT_TRUE(expr->FilterBatch(span, &sel, &scratch).ok());
  EXPECT_TRUE(sel.empty());

  for (bool optimize : {true, false}) {
    BcProgram prog = BcProgram::CompileFilter(expr, rows->schema(), optimize);
    BcState state;
    sel = all;
    Status st = prog.RunFilter(span, &sel, &state);
    ASSERT_TRUE(st.ok()) << "opt=" << optimize << ": " << st.ToString()
                         << "\n" << prog.Disassemble();
    EXPECT_TRUE(sel.empty());
  }

  // Flipped order: every lane reaches the string predicate, so all
  // three tiers must raise.
  ExprPtr always = ex::Ge(ex::Col(0), ex::Lit(int64_t{-10000000}));
  ExprPtr bad = ex::And(always, raising);
  sel = all;
  EXPECT_FALSE(bad->FilterBatch(span, &sel, &scratch).ok());
  BcProgram bad_prog = BcProgram::CompileFilter(bad, rows->schema());
  BcState state;
  sel = all;
  EXPECT_FALSE(bad_prog.RunFilter(span, &sel, &state).ok());
}

TEST(BytecodeOptimizerTest, DeadBranchEliminationUnderItemChildren) {
  // A constant condition selects one branch at compile time. The dead
  // branch is a mixed-type IF (statically kItem) that would force an
  // interpreted fallback — eliminating it must leave zero fallbacks.
  std::mt19937_64 rng(9);
  RowVectorPtr rows = MakeRows(&rng, 24);
  ExprPtr item_branch =
      ex::If(ex::Gt(ex::Col(0), ex::Lit(int64_t{0})), ex::Lit(int64_t{1}),
             ex::Lit(0.5));  // i64 vs f64 branches -> kItem
  ASSERT_EQ(item_branch->BatchType(rows->schema()), BatchTag::kItem);
  ExprPtr expr =
      ex::If(ex::Lit(int64_t{1}), ex::Add(ex::Col(0), ex::Lit(int64_t{3})),
             item_branch);
  BcProgram prog = BcProgram::CompileValue(expr, rows->schema());
  EXPECT_EQ(prog.fallback_count(), 0u) << prog.Disassemble();
  RowSpan span{rows->data(), rows->row_size(), &rows->schema()};
  SelVector all(rows->size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<uint32_t>(i);
  BcState state;
  BatchColumn col;
  ASSERT_TRUE(
      prog.RunValue(span, all.data(), all.size(), &col, &state).ok());
  ASSERT_EQ(col.tag, BatchTag::kI64);
  for (size_t i = 0; i < col.size(); ++i) {
    EXPECT_EQ(col.i64[i], rows->row(i).GetInt64(0) + 3);
  }
}

TEST(BytecodeOptimizerTest, ComparisonFusionKeepsSemantics) {
  // col < const compiles into a single fused filter opcode; the result
  // must match the unfused program and the interpreted kernel.
  std::mt19937_64 rng(13);
  RowVectorPtr rows = MakeRows(&rng, 64);
  ExprPtr expr = ex::Lt(ex::Col(0), ex::Lit(int64_t{10}));
  BcProgram fused = BcProgram::CompileFilter(expr, rows->schema());
  EXPECT_GT(fused.stats().fused, 0u) << fused.Disassemble();
  RowSpan span{rows->data(), rows->row_size(), &rows->schema()};
  SelVector all(rows->size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<uint32_t>(i);
  BatchScratch scratch;
  SelVector want = all;
  ASSERT_TRUE(expr->FilterBatch(span, &want, &scratch).ok());
  BcState state;
  SelVector got = all;
  ASSERT_TRUE(fused.RunFilter(span, &got, &state).ok());
  EXPECT_EQ(got, want);
}

// ---------------------------------------------------------------------------
// String-valued IF conditions are hard errors on all three tiers
// ---------------------------------------------------------------------------

TEST(StringPredicateTest, StringIfConditionHardErrorAllTiers) {
  RowVectorPtr rows = MixedRows(8);
  ExprPtr expr =
      ex::If(ex::Col(2), ex::Lit(int64_t{1}), ex::Lit(int64_t{0}));

  // Row tier (checked).
  Item out;
  Status st = expr->EvalChecked(rows->row(0), &out);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("non-numeric"), std::string::npos)
      << st.ToString();

  // Batch tier: both branches are i64, so the typed split path runs the
  // condition filter — which must raise.
  BatchScratch scratch;
  RowSpan span{rows->data(), rows->row_size(), &rows->schema()};
  SelVector all(rows->size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<uint32_t>(i);
  BatchColumn col;
  EXPECT_FALSE(
      expr->EvalBatch(span, all.data(), all.size(), &col, &scratch).ok());

  // Bytecode tier.
  for (bool optimize : {true, false}) {
    BcProgram prog = BcProgram::CompileValue(expr, rows->schema(), optimize);
    BcState state;
    EXPECT_FALSE(
        prog.RunValue(span, all.data(), all.size(), &col, &state).ok())
        << "opt=" << optimize << "\n" << prog.Disassemble();
  }
}

// ---------------------------------------------------------------------------
// The strictly-ascending SelVector contract is defended
// ---------------------------------------------------------------------------

/// Emits one borrowed batch carrying a deliberately permuted selection.
class PermutedSelectionSource : public SubOperator {
 public:
  explicit PermutedSelectionSource(RowVectorPtr rows)
      : SubOperator("PermutedSelectionSource"),
        rows_(std::move(rows)),
        sel_{2, 0, 1} {}
  bool Next(Tuple*) override { return false; }
  bool ProducesRecordStream() const override { return true; }
  bool NextBatchSelective(RowBatch* out) override {
    if (done_) return false;
    done_ = true;
    out->Borrow(rows_);
    out->SetSelection(sel_.data(), sel_.size());
    return true;
  }

 private:
  RowVectorPtr rows_;
  SelVector sel_;
  bool done_ = false;
};

TEST(SelectionContractTest, MalformedSelectionIsCaughtNotGarbled) {
  EXPECT_TRUE(IsAscendingSel(nullptr, 0));
  const uint32_t ascending[] = {0, 3, 7};
  EXPECT_TRUE(IsAscendingSel(ascending, 3));
  const uint32_t permuted[] = {2, 0, 1};
  EXPECT_FALSE(IsAscendingSel(permuted, 3));
  const uint32_t duplicated[] = {0, 1, 1};
  EXPECT_FALSE(IsAscendingSel(duplicated, 3));
  EXPECT_FALSE(ValidateSelection("test", permuted, 3).ok());
  EXPECT_TRUE(ValidateSelection("test", ascending, 3).ok());

  // Bytecode entry points reject it outright.
  std::mt19937_64 rng(17);
  RowVectorPtr rows = MakeRows(&rng, 8);
  RowSpan span{rows->data(), rows->row_size(), &rows->schema()};
  ExprPtr pred = ex::Lt(ex::Col(0), ex::Lit(int64_t{50}));
  BcProgram fprog = BcProgram::CompileFilter(pred, rows->schema());
  BcState state;
  SelVector bad = {2, 0, 1};
  EXPECT_FALSE(fprog.RunFilter(span, &bad, &state).ok());
  BcProgram vprog = BcProgram::CompileValue(pred, rows->schema());
  BatchColumn col;
  EXPECT_FALSE(vprog.RunValue(span, permuted, 3, &col, &state).ok());

  // Operator entry: a permuted upstream selection fails the Filter pull
  // instead of silently mis-assigning lanes.
  Filter filter(std::make_unique<PermutedSelectionSource>(rows), pred);
  ExecContext ctx;
  ASSERT_TRUE(filter.Open(&ctx).ok());
  RowBatch batch;
  EXPECT_FALSE(filter.NextBatchSelective(&batch));
  EXPECT_FALSE(filter.status().ok());
  EXPECT_NE(filter.status().ToString().find("ascending"), std::string::npos)
      << filter.status().ToString();
}

// ---------------------------------------------------------------------------
// Fused serialize+hash key programs
// ---------------------------------------------------------------------------

TEST(KeyProgramTest, FusedSerializeHashMatchesCodecPlusHashSpan) {
  std::mt19937_64 rng(19);
  RowVectorPtr rows = MakeRows(&rng, 512);
  RowSpan span{rows->data(), rows->row_size(), &rows->schema()};
  const std::vector<std::vector<int>> key_sets = {
      {0}, {1}, {2}, {3}, {4}, {0, 5}, {3, 4}, {0, 2, 3}, {2, 0, 1, 5}};
  for (const auto& keys : key_sets) {
    KeyCodec codec(rows->schema(), keys);
    KeyProgram prog(rows->schema(), keys);
    ASSERT_TRUE(prog.valid());
    ASSERT_EQ(prog.key_size(), codec.key_size());
    const uint32_t ks = codec.key_size();
    const size_t n = rows->size();
    std::vector<uint8_t> want_keys(n * ks), got_keys(n * ks);
    std::vector<uint64_t> want_hashes(n), got_hashes(n);
    codec.SerializeKeys(span, 0, n, want_keys.data());
    HashKeysSpan(want_keys.data(), n, ks, want_hashes.data());
    // Run in two uneven chunks to exercise the `begin` offset.
    const size_t split = n / 3;
    prog.SerializeAndHash(span, 0, split, got_keys.data(),
                          got_hashes.data());
    prog.SerializeAndHash(span, split, n - split,
                          got_keys.data() + split * ks,
                          got_hashes.data() + split);
    std::string label = "keys={";
    for (int k : keys) label += std::to_string(k) + ",";
    label += "}";
    ASSERT_EQ(0, std::memcmp(want_keys.data(), got_keys.data(),
                             want_keys.size()))
        << label;
    ASSERT_EQ(want_hashes, got_hashes) << label;
  }
}

}  // namespace
}  // namespace modularis
