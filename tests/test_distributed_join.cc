#include <algorithm>
#include <random>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "plans/distributed_join.h"

namespace modularis::plans {
namespace {

/// Builds per-rank kv16 fragments: keys are a shuffled dense range,
/// value = f(key), sliced round-robin across ranks.
std::vector<RowVectorPtr> MakeFragments(int world, int64_t num_keys,
                                        int64_t value_stride, uint32_t seed) {
  std::vector<int64_t> keys(num_keys);
  for (int64_t i = 0; i < num_keys; ++i) keys[i] = i;
  std::mt19937 rng(seed);
  std::shuffle(keys.begin(), keys.end(), rng);

  std::vector<RowVectorPtr> frags;
  for (int r = 0; r < world; ++r) {
    frags.push_back(RowVector::Make(KeyValueSchema()));
  }
  for (int64_t i = 0; i < num_keys; ++i) {
    RowWriter w = frags[i % world]->AppendRow();
    w.SetInt64(0, keys[i]);
    w.SetInt64(1, keys[i] * value_stride + 1);
  }
  return frags;
}

struct JoinCase {
  int world;
  bool compress;
  bool fused;
};

class DistributedJoinTest : public ::testing::TestWithParam<JoinCase> {};

TEST_P(DistributedJoinTest, MatchesReferenceJoin) {
  const JoinCase& param = GetParam();
  const int64_t n = 20000;

  DistJoinOptions opts;
  opts.world_size = param.world;
  opts.compress = param.compress;
  opts.exec.enable_fusion = param.fused;
  opts.exec.network_radix_bits = 5;
  opts.exec.local_radix_bits = 4;
  opts.fabric.throttle = false;

  auto inner = MakeFragments(param.world, n, 2, /*seed=*/1);
  auto outer = MakeFragments(param.world, n, 3, /*seed=*/2);

  StatsRegistry stats;
  auto result = RunDistributedJoin(inner, outer, opts, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const RowVectorPtr& rows = result.value();

  // 1-to-1 key correspondence: every key joins exactly once.
  ASSERT_EQ(rows->size(), static_cast<size_t>(n));

  std::unordered_map<int64_t, std::pair<int64_t, int64_t>> expected;
  for (int64_t k = 0; k < n; ++k) {
    expected[k] = {k * 2 + 1, k * 3 + 1};
  }
  for (size_t i = 0; i < rows->size(); ++i) {
    RowRef row = rows->row(i);
    int64_t key = row.GetInt64(0);
    auto it = expected.find(key);
    ASSERT_NE(it, expected.end()) << "unexpected key " << key;
    EXPECT_EQ(row.GetInt64(1), it->second.first) << "key " << key;
    EXPECT_EQ(row.GetInt64(2), it->second.second) << "key " << key;
    expected.erase(it);
  }
  EXPECT_TRUE(expected.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, DistributedJoinTest,
    ::testing::Values(JoinCase{1, false, true}, JoinCase{2, false, true},
                      JoinCase{2, true, true}, JoinCase{4, true, true},
                      JoinCase{4, false, false}, JoinCase{4, true, false},
                      JoinCase{3, true, true}),
    [](const ::testing::TestParamInfo<JoinCase>& info) {
      return "w" + std::to_string(info.param.world) +
             (info.param.compress ? "_compressed" : "_raw") +
             (info.param.fused ? "_fused" : "_interpreted");
    });

TEST(DistributedJoinTest, SemiJoinKeepsMatchingProbes) {
  DistJoinOptions opts;
  opts.world_size = 2;
  opts.compress = false;
  opts.join_type = JoinType::kSemi;
  opts.exec.network_radix_bits = 4;
  opts.fabric.throttle = false;

  // Build side: keys 0..999. Probe side: keys 500..1499.
  auto inner = MakeFragments(2, 1000, 2, 3);
  std::vector<RowVectorPtr> outer;
  for (int r = 0; r < 2; ++r) outer.push_back(RowVector::Make(KeyValueSchema()));
  for (int64_t k = 500; k < 1500; ++k) {
    RowWriter w = outer[k % 2]->AppendRow();
    w.SetInt64(0, k);
    w.SetInt64(1, k);
  }

  StatsRegistry stats;
  auto result = RunDistributedJoin(inner, outer, opts, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value()->size(), 500u);  // keys 500..999 survive
}

TEST(DistributedJoinTest, AntiJoinKeepsNonMatchingProbes) {
  DistJoinOptions opts;
  opts.world_size = 2;
  opts.compress = false;
  opts.join_type = JoinType::kAnti;
  opts.exec.network_radix_bits = 4;
  opts.fabric.throttle = false;

  auto inner = MakeFragments(2, 1000, 2, 3);
  std::vector<RowVectorPtr> outer;
  for (int r = 0; r < 2; ++r) outer.push_back(RowVector::Make(KeyValueSchema()));
  for (int64_t k = 500; k < 1500; ++k) {
    RowWriter w = outer[k % 2]->AppendRow();
    w.SetInt64(0, k);
    w.SetInt64(1, k);
  }

  StatsRegistry stats;
  auto result = RunDistributedJoin(inner, outer, opts, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value()->size(), 500u);  // keys 1000..1499 survive
}

TEST(DistributedJoinTest, DuplicateBuildKeysProduceAllPairs) {
  DistJoinOptions opts;
  opts.world_size = 2;
  opts.compress = false;
  opts.exec.network_radix_bits = 4;
  opts.fabric.throttle = false;

  // Inner has every key twice; expect 2 output rows per probe key.
  std::vector<RowVectorPtr> inner, outer;
  for (int r = 0; r < 2; ++r) {
    inner.push_back(RowVector::Make(KeyValueSchema()));
    outer.push_back(RowVector::Make(KeyValueSchema()));
  }
  for (int64_t k = 0; k < 100; ++k) {
    for (int dup = 0; dup < 2; ++dup) {
      RowWriter w = inner[k % 2]->AppendRow();
      w.SetInt64(0, k);
      w.SetInt64(1, 1000 + dup);
    }
    RowWriter w = outer[(k + 1) % 2]->AppendRow();
    w.SetInt64(0, k);
    w.SetInt64(1, k);
  }

  StatsRegistry stats;
  auto result = RunDistributedJoin(inner, outer, opts, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value()->size(), 200u);
}

TEST(DistributedJoinTest, RecordsPhaseTimings) {
  DistJoinOptions opts;
  opts.world_size = 2;
  opts.fabric.throttle = false;
  auto inner = MakeFragments(2, 5000, 2, 7);
  auto outer = MakeFragments(2, 5000, 3, 8);
  StatsRegistry stats;
  auto result = RunDistributedJoin(inner, outer, opts, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto times = stats.times();
  EXPECT_GT(times.count("phase.local_histogram"), 0u);
  EXPECT_GT(times.count("phase.global_histogram"), 0u);
  EXPECT_GT(times.count("phase.network_partition"), 0u);
  EXPECT_GT(times.count("phase.local_partition"), 0u);
  EXPECT_GT(times.count("phase.build_probe"), 0u);
  EXPECT_GT(stats.GetCounter("net.bytes_sent"), 0);
}

}  // namespace
}  // namespace modularis::plans
