/// \file test_vectorized.cc
/// Batch/row parity: the vectorized execution path (enable_vectorized)
/// must produce byte-identical results to the row-at-a-time oracle, for
/// every combination with enable_fusion, across join types, empty
/// inputs, duplicate-heavy keys, and match chains that straddle batch
/// boundaries. Also covers the RowBatch protocol primitives.

#include <cstring>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "mpi/tcp_exchange.h"
#include "plans/distributed_join.h"
#include "serverless/serverless_ops.h"
#include "storage/blob_store.h"
#include "suboperators/agg_ops.h"
#include "suboperators/basic_ops.h"
#include "suboperators/join_ops.h"
#include "suboperators/partition_ops.h"
#include "suboperators/scan_ops.h"
#include "tpch/queries.h"

namespace modularis {
namespace {

void ExpectBytesEqual(const RowVector& expected, const RowVector& actual,
                      const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  ASSERT_EQ(expected.row_size(), actual.row_size()) << label;
  ASSERT_EQ(0, std::memcmp(expected.data(), actual.data(),
                           expected.byte_size()))
      << label << ": payload bytes differ";
}

RowVectorPtr MakeKv(int64_t rows, int64_t key_space, uint32_t seed) {
  RowVectorPtr data = RowVector::Make(KeyValueSchema());
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> dist(0, key_space - 1);
  for (int64_t i = 0; i < rows; ++i) {
    RowWriter w = data->AppendRow();
    w.SetInt64(0, dist(rng));
    w.SetInt64(1, i);
  }
  return data;
}

// ---------------------------------------------------------------------------
// RowBatch / protocol primitives
// ---------------------------------------------------------------------------

TEST(RowBatchTest, BorrowAndRange) {
  RowVectorPtr data = MakeKv(100, 10, 1);
  RowBatch b;
  b.Borrow(data);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.data(), data->data());
  b.BorrowRange(data, 10, 25);
  EXPECT_EQ(b.size(), 25u);
  EXPECT_EQ(b.row(0).GetInt64(1), data->row(10).GetInt64(1));
}

TEST(RowBatchTest, ReleasedHandoff) {
  RowVectorPtr data = MakeKv(10, 10, 1);
  RowBatch b;
  b.Borrow(data);
  EXPECT_EQ(b.TakeReleased(), nullptr);  // not released
  b.Borrow(data);
  b.MarkReleased();
  RowVectorPtr stolen = b.TakeReleased();
  ASSERT_NE(stolen, nullptr);
  EXPECT_EQ(stolen.get(), data.get());
  EXPECT_EQ(b.TakeReleased(), nullptr);  // single steal
  // A range view over a released vector must not be stealable.
  b.BorrowRange(data, 1, 5);
  b.MarkReleased();
  b.BorrowRange(data, 1, 5);
  EXPECT_EQ(b.TakeReleased(), nullptr);
}

TEST(RowBatchTest, DefaultAdapterBatchesRowStream) {
  // A TupleSource of 2500 individual row tuples: the default adapter
  // packs them into kDefaultRows-sized batches.
  RowVectorPtr data = MakeKv(2500, 50, 2);
  std::vector<Tuple> tuples;
  for (size_t i = 0; i < data->size(); ++i) {
    tuples.push_back(Tuple{Item(data->row(i))});
  }
  TupleSource src(std::move(tuples));
  ExecContext ctx;
  ASSERT_TRUE(src.Open(&ctx).ok());
  RowBatch batch;
  size_t total = 0, batches = 0;
  while (src.NextBatch(&batch)) {
    EXPECT_LE(batch.size(), RowBatch::kDefaultRows);
    total += batch.size();
    ++batches;
  }
  EXPECT_TRUE(src.status().ok());
  EXPECT_EQ(total, 2500u);
  EXPECT_EQ(batches, 3u);  // 1024 + 1024 + 452
}

TEST(RowBatchTest, DefaultAdapterRejectsAtoms) {
  TupleSource src({Tuple{Item(int64_t{1}), Item(int64_t{2})}});
  ExecContext ctx;
  ASSERT_TRUE(src.Open(&ctx).ok());
  RowBatch batch;
  EXPECT_FALSE(src.NextBatch(&batch));
  EXPECT_FALSE(src.status().ok());
}

TEST(RowBatchTest, MixedNextAndNextBatchOnRowScan) {
  RowVectorPtr data = MakeKv(100, 10, 3);
  RowScan scan(std::make_unique<CollectionSource>(
      std::vector<RowVectorPtr>{data}));
  ExecContext ctx;
  ASSERT_TRUE(scan.Open(&ctx).ok());
  Tuple t;
  ASSERT_TRUE(scan.Next(&t));  // consume one row
  RowBatch batch;
  ASSERT_TRUE(scan.NextBatch(&batch));  // remainder as one batch
  EXPECT_EQ(batch.size(), 99u);
  EXPECT_EQ(batch.row(0).GetInt64(1), data->row(1).GetInt64(1));
  EXPECT_FALSE(scan.NextBatch(&batch));
  EXPECT_TRUE(scan.status().ok());
}

TEST(RowVectorTest, ClearResizeAndGrowth) {
  RowVectorPtr v = RowVector::Make(KeyValueSchema());
  for (int i = 0; i < 1000; ++i) {
    RowWriter w = v->AppendRow();
    w.SetInt64(0, i);
    w.SetInt64(1, -i);
  }
  EXPECT_EQ(v->size(), 1000u);
  v->Clear();
  EXPECT_TRUE(v->empty());
  v->ResizeRows(42);
  EXPECT_EQ(v->size(), 42u);
  EXPECT_EQ(v->row(41).GetInt64(0), 0);  // zero-initialized
  std::memset(v->mutable_row(7), 0x5A, v->row_size());
  EXPECT_EQ(v->row(7).GetInt64(0), 0x5A5A5A5A5A5A5A5All);
}

// ---------------------------------------------------------------------------
// Local operator parity (row vs batch protocol)
// ---------------------------------------------------------------------------

/// Runs `make_plan()` under the given options and materializes the whole
/// output as one RowVector of `schema`.
RowVectorPtr DrainPlan(SubOpPtr root, const Schema& schema,
                       const ExecOptions& options) {
  ExecContext ctx;
  ctx.options = options;
  MaterializeRowVector mat(std::move(root), schema);
  EXPECT_TRUE(mat.Open(&ctx).ok());
  Tuple t;
  EXPECT_TRUE(mat.Next(&t));
  EXPECT_TRUE(mat.status().ok());
  EXPECT_TRUE(mat.Close().ok());
  return t[0].collection();
}

ExecOptions Variant(bool fused, bool vectorized) {
  ExecOptions o;
  o.enable_fusion = fused;
  o.enable_vectorized = vectorized;
  return o;
}

SubOpPtr ScanOf(const RowVectorPtr& data) {
  return std::make_unique<RowScan>(std::make_unique<CollectionSource>(
      std::vector<RowVectorPtr>{data}));
}

TEST(VectorizedParityTest, FilterMapChain) {
  RowVectorPtr data = MakeKv(5000, 64, 7);
  Schema out({Field::I64("k2"), Field::I64("v")});
  auto make_plan = [&] {
    auto filter = std::make_unique<Filter>(
        ScanOf(data), ex::Lt(ex::Col(0), ex::Lit(int64_t{40})));
    return std::make_unique<MapOp>(
        std::move(filter), out,
        std::vector<MapOutput>{
            MapOutput::Compute(ex::Mul(ex::Col(0), ex::Lit(int64_t{2}))),
            MapOutput::Pass(1)});
  };
  RowVectorPtr baseline = DrainPlan(make_plan(), out, Variant(false, false));
  ASSERT_GT(baseline->size(), 0u);
  for (bool fused : {false, true}) {
    RowVectorPtr got = DrainPlan(make_plan(), out, Variant(fused, true));
    ExpectBytesEqual(*baseline, *got, "filter+map fused=" +
                                          std::to_string(fused));
  }
}

TEST(VectorizedParityTest, FilterAllPassAndNonePass) {
  RowVectorPtr data = MakeKv(3000, 8, 9);
  for (int64_t bound : {int64_t{0}, int64_t{8}, int64_t{4}}) {
    auto make_plan = [&] {
      return std::make_unique<Filter>(ScanOf(data),
                                      ex::Lt(ex::Col(0), ex::Lit(bound)));
    };
    RowVectorPtr baseline =
        DrainPlan(make_plan(), KeyValueSchema(), Variant(false, false));
    RowVectorPtr got =
        DrainPlan(make_plan(), KeyValueSchema(), Variant(false, true));
    ExpectBytesEqual(*baseline, *got,
                     "filter bound=" + std::to_string(bound));
  }
}

TEST(VectorizedParityTest, ReduceByKeyAllAggs) {
  RowVectorPtr data = MakeKv(20000, 97, 11);
  auto make_plan = [&] {
    return std::make_unique<ReduceByKey>(
        ScanOf(data), std::vector<int>{0},
        std::vector<AggSpec>{
            AggSpec{AggKind::kSum, ex::Col(1), "sum", AtomType::kInt64},
            AggSpec{AggKind::kCount, nullptr, "cnt", AtomType::kInt64},
            AggSpec{AggKind::kMin, ex::Col(1), "min", AtomType::kInt64},
            AggSpec{AggKind::kMax, ex::Col(1), "max", AtomType::kInt64}},
        KeyValueSchema());
  };
  Schema out = make_plan()->out_schema();
  RowVectorPtr baseline = DrainPlan(make_plan(), out, Variant(false, false));
  ASSERT_EQ(baseline->size(), 97u);
  for (bool fused : {false, true}) {
    RowVectorPtr got = DrainPlan(make_plan(), out, Variant(fused, true));
    ExpectBytesEqual(*baseline, *got,
                     "reduce fused=" + std::to_string(fused));
  }
}

TEST(VectorizedParityTest, SortParity) {
  RowVectorPtr data = MakeKv(5000, 1000, 13);
  auto make_plan = [&] {
    return std::make_unique<SortOp>(
        ScanOf(data),
        std::vector<SortKey>{SortKey{0, false}, SortKey{1, true}},
        KeyValueSchema());
  };
  RowVectorPtr baseline =
      DrainPlan(make_plan(), KeyValueSchema(), Variant(false, false));
  RowVectorPtr got =
      DrainPlan(make_plan(), KeyValueSchema(), Variant(false, true));
  ExpectBytesEqual(*baseline, *got, "sort");
}

/// BuildProbe parity over explicit collections, exercising duplicate
/// chains that straddle batch boundaries: the build side holds one hot
/// key with more duplicates than RowBatch::kDefaultRows, and probe
/// collections have sizes around the batch granule.
TEST(VectorizedParityTest, JoinTypesDupHeavyAndBatchStraddle) {
  const int64_t kHot = 5;
  RowVectorPtr build = RowVector::Make(KeyValueSchema());
  for (int64_t i = 0; i < 1500; ++i) {  // hot chain > kDefaultRows
    RowWriter w = build->AppendRow();
    w.SetInt64(0, kHot);
    w.SetInt64(1, i);
  }
  for (int64_t i = 0; i < 500; ++i) {
    RowWriter w = build->AppendRow();
    w.SetInt64(0, 100 + i);
    w.SetInt64(1, -i);
  }
  // Probe split into odd-sized collections (1023 / 1025 / 1 / rest).
  RowVectorPtr all_probe = MakeKv(3000, 700, 17);
  std::vector<RowVectorPtr> probe_chunks;
  size_t sizes[] = {1023, 1025, 1, 951};
  size_t pos = 0;
  for (size_t s : sizes) {
    RowVectorPtr c = RowVector::Make(KeyValueSchema());
    c->AppendRawBatch(all_probe->data() + pos * all_probe->row_size(), s);
    pos += s;
    probe_chunks.push_back(std::move(c));
  }
  ASSERT_EQ(pos, all_probe->size());

  for (JoinType jt : {JoinType::kInner, JoinType::kSemi, JoinType::kAnti}) {
    auto make_plan = [&] {
      return std::make_unique<BuildProbe>(
          ScanOf(build),
          std::make_unique<RowScan>(
              std::make_unique<CollectionSource>(probe_chunks)),
          KeyValueSchema(), KeyValueSchema(), 0, 0, jt);
    };
    Schema out = make_plan()->out_schema();
    RowVectorPtr baseline = DrainPlan(make_plan(), out, Variant(false, false));
    RowVectorPtr got = DrainPlan(make_plan(), out, Variant(false, true));
    ExpectBytesEqual(*baseline, *got,
                     "join type=" + std::to_string(static_cast<int>(jt)));
  }
}

TEST(VectorizedParityTest, JoinEmptySides) {
  RowVectorPtr data = MakeKv(100, 10, 19);
  RowVectorPtr empty = RowVector::Make(KeyValueSchema());
  for (JoinType jt : {JoinType::kInner, JoinType::kSemi, JoinType::kAnti}) {
    for (int which : {0, 1, 2}) {  // empty build / empty probe / both
      auto make_plan = [&] {
        return std::make_unique<BuildProbe>(
            ScanOf(which != 1 ? empty : data),
            ScanOf(which != 0 ? empty : data), KeyValueSchema(),
            KeyValueSchema(), 0, 0, jt);
      };
      Schema out = make_plan()->out_schema();
      RowVectorPtr baseline =
          DrainPlan(make_plan(), out, Variant(false, false));
      RowVectorPtr got = DrainPlan(make_plan(), out, Variant(false, true));
      ExpectBytesEqual(*baseline, *got,
                       "empty join type=" +
                           std::to_string(static_cast<int>(jt)) +
                           " which=" + std::to_string(which));
    }
  }
}

TEST(VectorizedParityTest, LocalPartitionPresizedScatter) {
  RowVectorPtr data = MakeKv(10000, 1 << 12, 23);
  RadixSpec spec{4, 0, RadixHash::kMix};
  auto run = [&](bool vectorized) {
    ExecContext ctx;
    ctx.options.enable_vectorized = vectorized;
    auto plan = std::make_unique<PipelinePlan>();
    plan->Add("lh", std::make_unique<LocalHistogram>(ScanOf(data), spec, 0));
    plan->SetOutput(std::make_unique<LocalPartition>(
        ScanOf(data), plan->MakeRef("lh"), spec, 0));
    EXPECT_TRUE(plan->Open(&ctx).ok());
    std::vector<RowVectorPtr> parts;
    Tuple t;
    while (plan->Next(&t)) {
      EXPECT_EQ(t[0].i64(), static_cast<int64_t>(parts.size()));
      parts.push_back(t[1].collection());
    }
    EXPECT_TRUE(plan->status().ok());
    EXPECT_TRUE(plan->Close().ok());
    return parts;
  };
  auto baseline = run(false);
  auto got = run(true);
  ASSERT_EQ(baseline.size(), got.size());
  ASSERT_EQ(baseline.size(), static_cast<size_t>(spec.fanout()));
  for (size_t p = 0; p < baseline.size(); ++p) {
    ExpectBytesEqual(*baseline[p], *got[p],
                     "partition " + std::to_string(p));
  }
}

TEST(VectorizedParityTest, MaterializeAtomTuplesStillWorks) {
  // Driver-side result assembly: atom tuples must keep working with the
  // vectorized default on.
  std::vector<Tuple> tuples;
  tuples.push_back(Tuple{Item(int64_t{1}), Item(int64_t{2})});
  tuples.push_back(Tuple{Item(int64_t{3}), Item(int64_t{4})});
  MaterializeRowVector mat(std::make_unique<TupleSource>(std::move(tuples)),
                           KeyValueSchema());
  ExecContext ctx;
  ASSERT_TRUE(mat.Open(&ctx).ok());
  Tuple t;
  ASSERT_TRUE(mat.Next(&t));
  const RowVectorPtr& rows = t[0].collection();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ(rows->row(1).GetInt64(0), 3);
  EXPECT_EQ(rows->row(1).GetInt64(1), 4);
}

TEST(VectorizedParityTest, PipelineMixedStreamPreservesOrder) {
  // Mixed pipelines (rows and non-row tuples interleaved, both orders)
  // must replay through PipelineRef in their original order.
  RowVectorPtr rows = MakeKv(3, 10, 29);
  for (bool rows_first : {true, false}) {
    std::vector<Tuple> stream;
    if (rows_first) {
      for (size_t i = 0; i < rows->size(); ++i) {
        stream.push_back(Tuple{Item(rows->row(i))});
      }
      stream.push_back(Tuple{Item(int64_t{42})});
    } else {
      stream.push_back(Tuple{Item(int64_t{42})});
      for (size_t i = 0; i < rows->size(); ++i) {
        stream.push_back(Tuple{Item(rows->row(i))});
      }
    }
    auto plan = std::make_unique<PipelinePlan>();
    plan->Add("mixed",
              std::make_unique<TupleSource>(std::move(stream)));
    plan->SetOutput(plan->MakeRef("mixed"));
    ExecContext ctx;
    ASSERT_TRUE(plan->Open(&ctx).ok());
    Tuple t;
    std::vector<bool> is_row;
    while (plan->Next(&t)) {
      is_row.push_back(t.size() == 1 && t[0].is_row());
    }
    ASSERT_TRUE(plan->status().ok());
    ASSERT_EQ(is_row.size(), 4u);
    if (rows_first) {
      EXPECT_TRUE(is_row[0] && is_row[1] && is_row[2] && !is_row[3]);
    } else {
      EXPECT_TRUE(!is_row[0] && is_row[1] && is_row[2] && is_row[3]);
    }
  }
}

// ---------------------------------------------------------------------------
// Newly batch-native operators: ColumnScan, GroupByPid, TcpExchange,
// S3Exchange. For each, the row-at-a-time Next() stream is the oracle and
// the instrumentation must show the operator never fell back to the
// default NextBatch adapter.
// ---------------------------------------------------------------------------

/// Drains `op`'s batch protocol into one RowVector (first batch defines
/// the schema).
RowVectorPtr DrainBatches(SubOperator* op) {
  RowVectorPtr all;
  RowBatch batch;
  while (op->NextBatch(&batch)) {
    if (batch.empty()) continue;
    if (all == nullptr) all = RowVector::Make(batch.schema());
    all->AppendRawBatch(batch.data(), batch.size());
  }
  EXPECT_TRUE(op->status().ok()) << op->status().ToString();
  return all == nullptr ? RowVector::Make(KeyValueSchema()) : all;
}

int64_t AdapterCount(const ExecContext& ctx, const std::string& op_name) {
  return ctx.stats->GetCounter("vectorized.default_adapter." + op_name);
}

ColumnTablePtr MakeMixedTable(size_t rows, uint32_t seed) {
  Schema schema({Field::I64("k"), Field::F64("x"), Field::Str("tag", 6),
                 Field::I32("n"), Field::Date("d")});
  ColumnTablePtr table = ColumnTable::Make(schema);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> dist(0, 999);
  const char* tags[] = {"", "a", "bb", "cccccc"};
  for (size_t i = 0; i < rows; ++i) {
    table->column(0).AppendInt64(dist(rng));
    table->column(1).AppendFloat64(static_cast<double>(dist(rng)) / 7);
    table->column(2).AppendString(tags[i % 4]);
    table->column(3).AppendInt32(static_cast<int32_t>(i));
    table->column(4).AppendInt32(static_cast<int32_t>(dist(rng)));
  }
  table->FinishBulkLoad();
  return table;
}

TEST(BatchNativeOpsTest, ColumnScanParityAndNoAdapter) {
  // Several tables (including an empty one and one spanning multiple
  // kDefaultRows batches) behind a TupleSource of table items.
  std::vector<ColumnTablePtr> tables = {
      MakeMixedTable(100, 1), MakeMixedTable(0, 2), MakeMixedTable(3000, 3)};
  Schema schema = tables[0]->schema();
  auto make_scan = [&] {
    std::vector<Tuple> tuples;
    for (const auto& t : tables) tuples.push_back(Tuple{Item(t)});
    return std::make_unique<ColumnScan>(
        std::make_unique<TupleSource>(std::move(tuples)), schema);
  };

  // Oracle: row-at-a-time drain.
  auto oracle_scan = make_scan();
  ExecContext octx;
  ASSERT_TRUE(oracle_scan->Open(&octx).ok());
  RowVectorPtr oracle = RowVector::Make(schema);
  Tuple t;
  while (oracle_scan->Next(&t)) oracle->AppendRaw(t[0].row().data());
  ASSERT_TRUE(oracle_scan->status().ok());

  auto batch_scan = make_scan();
  ExecContext bctx;
  ASSERT_TRUE(batch_scan->Open(&bctx).ok());
  RowVectorPtr got = DrainBatches(batch_scan.get());
  ExpectBytesEqual(*oracle, *got, "ColumnScan batch");
  EXPECT_EQ(AdapterCount(bctx, "ColumnScan"), 0);

  // Mixing rule: Next() then NextBatch() continues mid-table.
  auto mixed = make_scan();
  ExecContext mctx;
  ASSERT_TRUE(mixed->Open(&mctx).ok());
  ASSERT_TRUE(mixed->Next(&t));
  RowVectorPtr rest = DrainBatches(mixed.get());
  EXPECT_EQ(rest->size(), oracle->size() - 1);
  EXPECT_EQ(0, std::memcmp(rest->data(), oracle->data() + oracle->row_size(),
                           rest->byte_size()));
}

TEST(BatchNativeOpsTest, GroupByPidParityAndNoAdapter) {
  // ⟨pid, collection⟩ chunks with duplicate pids out of order.
  auto make_input = [&] {
    std::vector<Tuple> tuples;
    for (int round = 0; round < 3; ++round) {
      for (int64_t pid : {2, 0, 3, 2}) {
        RowVectorPtr chunk = MakeKv(50 + 10 * round, 16,
                                    static_cast<uint32_t>(7 * round + pid));
        tuples.push_back(Tuple{Item(pid), Item(chunk)});
      }
    }
    return std::make_unique<GroupByPid>(
        std::make_unique<TupleSource>(std::move(tuples)));
  };

  // Oracle: flatten the ⟨pid, merged collection⟩ stream in pid order.
  auto oracle_op = make_input();
  ExecContext octx;
  ASSERT_TRUE(oracle_op->Open(&octx).ok());
  RowVectorPtr oracle = RowVector::Make(KeyValueSchema());
  Tuple t;
  int64_t last_pid = -1;
  while (oracle_op->Next(&t)) {
    EXPECT_GT(t[0].i64(), last_pid);  // ascending pids
    last_pid = t[0].i64();
    oracle->AppendAll(*t[1].collection());
  }
  ASSERT_TRUE(oracle_op->status().ok());

  // Batch: the record projection, one durable batch per group.
  auto batch_op = make_input();
  ExecContext bctx;
  ASSERT_TRUE(batch_op->Open(&bctx).ok());
  RowVectorPtr got = DrainBatches(batch_op.get());
  ExpectBytesEqual(*oracle, *got, "GroupByPid batch");
  EXPECT_EQ(AdapterCount(bctx, "GroupBy"), 0);
}

TEST(BatchNativeOpsTest, TcpExchangeLoopbackParityAndNoAdapter) {
  const int world = 2;
  net::FabricOptions fabric;
  fabric.throttle = false;
  std::vector<RowVectorPtr> frags;
  for (int r = 0; r < world; ++r) {
    frags.push_back(MakeKv(4000, 512, 100 + r));
  }

  // Runs the exchange on every rank; `use_batch` picks the drain protocol.
  auto run = [&](bool use_batch) {
    std::vector<RowVectorPtr> per_rank(world);
    std::vector<int64_t> adapter_hits(world, 0);
    Status st = mpi::MpiRuntime::Run(
        world, fabric, [&](mpi::Communicator& comm) -> Status {
          const int r = comm.rank();
          ExecContext ctx;
          ctx.rank = r;
          ctx.world = world;
          ctx.comm = &comm;
          TcpExchange::Options opts;
          TcpExchange exchange(
              std::make_unique<RowScan>(std::make_unique<CollectionSource>(
                  std::vector<RowVectorPtr>{frags[r]})),
              opts);
          MODULARIS_RETURN_NOT_OK(exchange.Open(&ctx));
          if (use_batch) {
            per_rank[r] = DrainBatches(&exchange);
          } else {
            Tuple t;
            RowVectorPtr mine = RowVector::Make(KeyValueSchema());
            while (exchange.Next(&t)) {
              if (t[0].i64() != r) {
                return Status::Internal("wrong pid from TcpExchange");
              }
              mine->AppendAll(*t[1].collection());
            }
            MODULARIS_RETURN_NOT_OK(exchange.status());
            per_rank[r] = std::move(mine);
          }
          adapter_hits[r] = AdapterCount(ctx, "TcpExchange");
          return exchange.Close();
        });
    EXPECT_TRUE(st.ok()) << st.ToString();
    for (int64_t hits : adapter_hits) EXPECT_EQ(hits, 0);
    return per_rank;
  };

  auto oracle = run(false);
  auto got = run(true);
  size_t total = 0;
  for (int r = 0; r < world; ++r) {
    ExpectBytesEqual(*oracle[r], *got[r],
                     "TcpExchange rank " + std::to_string(r));
    total += got[r]->size();
  }
  EXPECT_EQ(total, static_cast<size_t>(world) * 4000);
}

TEST(BatchNativeOpsTest, S3ExchangeBlobStoreParityAndNoAdapter) {
  const int workers = 3;
  serverless::LambdaOptions lambda;
  lambda.num_workers = workers;
  lambda.throttle = false;
  lambda.s3 = storage::BlobClientOptions::Unthrottled();

  // Per-worker ⟨pid, collection⟩ partitions (one per receiver).
  std::vector<std::vector<RowVectorPtr>> parts(workers);
  for (int w = 0; w < workers; ++w) {
    for (int p = 0; p < workers; ++p) {
      parts[w].push_back(
          MakeKv(200 + 37 * w + p, 64, static_cast<uint32_t>(10 * w + p)));
    }
  }

  auto make_exchange = [&](int w, const std::string& prefix) {
    std::vector<Tuple> tuples;
    for (int p = 0; p < workers; ++p) {
      tuples.push_back(Tuple{Item(static_cast<int64_t>(p)),
                             Item(parts[w][p])});
    }
    S3Exchange::Options opts;
    opts.prefix = prefix;
    return std::make_unique<S3Exchange>(
        std::make_unique<GroupByPid>(
            std::make_unique<TupleSource>(std::move(tuples))),
        opts);
  };

  // `use_batch` false: oracle — drain the ⟨path, rg, rg⟩ triples through
  // ColumnFileScan + TableToCollection + RowScan (the plan shape of
  // Fig. 7). true: the exchange's own record-projection batches.
  auto run = [&](bool use_batch, const std::string& prefix) {
    storage::BlobStore store;
    std::vector<RowVectorPtr> per_worker(workers);
    std::vector<int64_t> x_adapter(workers, 0), g_adapter(workers, 0);
    Status st = serverless::LambdaRuntime::Run(
        lambda, &store, [&](serverless::LambdaWorkerContext& wctx) -> Status {
          const int w = wctx.worker_id;
          ExecContext ctx;
          ctx.rank = w;
          ctx.world = wctx.num_workers;
          ctx.blob = wctx.s3;
          ctx.lambda = &wctx;
          RowVectorPtr mine = RowVector::Make(KeyValueSchema());
          if (use_batch) {
            auto exchange = make_exchange(w, prefix);
            MODULARIS_RETURN_NOT_OK(exchange->Open(&ctx));
            RowBatch batch;
            while (exchange->NextBatch(&batch)) {
              if (!batch.empty()) {
                mine->AppendRawBatch(batch.data(), batch.size());
              }
            }
            MODULARIS_RETURN_NOT_OK(exchange->status());
            MODULARIS_RETURN_NOT_OK(exchange->Close());
          } else {
            ColumnFileScan::Options copts;
            RowScan scan(std::make_unique<TableToCollection>(
                std::make_unique<ColumnFileScan>(make_exchange(w, prefix),
                                                 copts)));
            MODULARIS_RETURN_NOT_OK(scan.Open(&ctx));
            Tuple t;
            while (scan.Next(&t)) mine->AppendRaw(t[0].row().data());
            MODULARIS_RETURN_NOT_OK(scan.status());
            MODULARIS_RETURN_NOT_OK(scan.Close());
          }
          per_worker[w] = std::move(mine);
          x_adapter[w] = AdapterCount(ctx, "S3Exchange");
          g_adapter[w] = AdapterCount(ctx, "GroupBy");
          return Status::OK();
        });
    EXPECT_TRUE(st.ok()) << st.ToString();
    if (use_batch) {
      for (int w = 0; w < workers; ++w) {
        EXPECT_EQ(x_adapter[w], 0) << "worker " << w;
        EXPECT_EQ(g_adapter[w], 0) << "worker " << w;
      }
    }
    return per_worker;
  };

  auto oracle = run(false, "parity_oracle");
  auto got = run(true, "parity_batch");
  for (int w = 0; w < workers; ++w) {
    ExpectBytesEqual(*oracle[w], *got[w],
                     "S3Exchange worker " + std::to_string(w));
    EXPECT_GT(got[w]->size(), 0u);
  }
}

/// Next() and NextBatch() share the triple cursor: switching protocols
/// mid-stream must deliver every row exactly once (no re-reads of
/// batch-delivered triples, no dropped remainders).
TEST(BatchNativeOpsTest, S3ExchangeMixedProtocolExactlyOnce) {
  const int workers = 3;
  serverless::LambdaOptions lambda;
  lambda.num_workers = workers;
  lambda.throttle = false;
  lambda.s3 = storage::BlobClientOptions::Unthrottled();

  std::vector<std::vector<RowVectorPtr>> parts(workers);
  for (int w = 0; w < workers; ++w) {
    for (int p = 0; p < workers; ++p) {
      parts[w].push_back(
          MakeKv(90 + 11 * w + p, 48, static_cast<uint32_t>(5 * w + p)));
    }
  }

  auto make_exchange = [&](int w, const std::string& prefix) {
    std::vector<Tuple> tuples;
    for (int p = 0; p < workers; ++p) {
      tuples.push_back(Tuple{Item(static_cast<int64_t>(p)),
                             Item(parts[w][p])});
    }
    S3Exchange::Options opts;
    opts.prefix = prefix;
    return std::make_unique<S3Exchange>(
        std::make_unique<GroupByPid>(
            std::make_unique<TupleSource>(std::move(tuples))),
        opts);
  };

  // `batch_pulls` = how many NextBatch() calls before switching to
  // Next(); the leftover triples are read back the Fig. 7 way.
  auto run = [&](int batch_pulls, const std::string& prefix) {
    storage::BlobStore store;
    std::vector<RowVectorPtr> per_worker(workers);
    Status st = serverless::LambdaRuntime::Run(
        lambda, &store, [&](serverless::LambdaWorkerContext& wctx) -> Status {
          const int w = wctx.worker_id;
          ExecContext ctx;
          ctx.rank = w;
          ctx.world = wctx.num_workers;
          ctx.blob = wctx.s3;
          ctx.lambda = &wctx;
          RowVectorPtr mine = RowVector::Make(KeyValueSchema());
          auto exchange = make_exchange(w, prefix);
          MODULARIS_RETURN_NOT_OK(exchange->Open(&ctx));
          RowBatch batch;
          for (int i = 0; i < batch_pulls && exchange->NextBatch(&batch); ++i) {
            if (!batch.empty()) {
              mine->AppendRawBatch(batch.data(), batch.size());
            }
          }
          MODULARIS_RETURN_NOT_OK(exchange->status());
          // Remaining triples through the row protocol; read them back
          // the way a downstream ColumnFileScan would.
          Tuple t;
          while (exchange->Next(&t)) {
            auto src = std::make_shared<storage::BlobReader>(
                ctx.blob, t[0].str());
            auto reader = storage::ColumnFileReader::Open(src);
            if (!reader.ok()) return reader.status();
            const size_t first = static_cast<size_t>(t[1].i64());
            const size_t last = static_cast<size_t>(t[2].i64());
            for (size_t rg = first;
                 rg <= last && rg < (*reader)->num_row_groups(); ++rg) {
              auto table = (*reader)->ReadRowGroup(rg, {});
              if (!table.ok()) return table.status();
              mine->AppendAll(*(*table)->ToRowVector());
            }
          }
          MODULARIS_RETURN_NOT_OK(exchange->status());
          per_worker[w] = std::move(mine);
          return Status::OK();
        });
    EXPECT_TRUE(st.ok()) << st.ToString();
    return per_worker;
  };

  auto oracle = run(0, "mixed_oracle");  // all triples via Next()
  for (int pulls : {1, 2}) {
    auto got = run(pulls, "mixed_b" + std::to_string(pulls));
    for (int w = 0; w < workers; ++w) {
      ExpectBytesEqual(*oracle[w], *got[w],
                       "mixed protocol, " + std::to_string(pulls) +
                           " batch pulls, worker " + std::to_string(w));
    }
  }
}

/// Positive control for the instrumentation: a stream served by the
/// default adapter must report the counter.
TEST(BatchNativeOpsTest, DefaultAdapterInstrumentationFires) {
  RowVectorPtr data = MakeKv(10, 4, 55);
  std::vector<Tuple> tuples;
  for (size_t i = 0; i < data->size(); ++i) {
    tuples.push_back(Tuple{Item(data->row(i))});
  }
  TupleSource src(std::move(tuples));
  ExecContext ctx;
  ASSERT_TRUE(src.Open(&ctx).ok());
  RowBatch batch;
  while (src.NextBatch(&batch)) {
  }
  EXPECT_GT(AdapterCount(ctx, "TupleSource"), 0);
}

// ---------------------------------------------------------------------------
// Distributed join parity (full plan, all variants)
// ---------------------------------------------------------------------------

std::vector<RowVectorPtr> MakeFragments(int world, int64_t num_keys,
                                        int64_t value_stride, uint32_t seed,
                                        int dup = 1) {
  std::vector<RowVectorPtr> frags;
  for (int r = 0; r < world; ++r) {
    frags.push_back(RowVector::Make(KeyValueSchema()));
  }
  std::mt19937 rng(seed);
  std::vector<int64_t> keys;
  for (int64_t i = 0; i < num_keys; ++i) {
    for (int d = 0; d < dup; ++d) keys.push_back(i);
  }
  std::shuffle(keys.begin(), keys.end(), rng);
  for (size_t i = 0; i < keys.size(); ++i) {
    RowWriter w = frags[i % world]->AppendRow();
    w.SetInt64(0, keys[i]);
    w.SetInt64(1, static_cast<int64_t>(i) * value_stride + 1);
  }
  return frags;
}

struct DistParityCase {
  JoinType join_type;
  bool dup_heavy;
  bool empty_inner;
};

class DistributedJoinParityTest
    : public ::testing::TestWithParam<DistParityCase> {};

TEST_P(DistributedJoinParityTest, AllVariantsByteIdentical) {
  const DistParityCase& p = GetParam();
  const int world = 2;
  const int64_t n = p.dup_heavy ? 1000 : 6000;

  auto inner = p.empty_inner
                   ? std::vector<RowVectorPtr>(
                         world, RowVector::Make(KeyValueSchema()))
                   : MakeFragments(world, n, 2, 1, p.dup_heavy ? 4 : 1);
  auto outer = MakeFragments(world, n, 3, 2, 1);

  RowVectorPtr baseline;
  for (bool fused : {false, true}) {
    for (bool vectorized : {false, true}) {
      plans::DistJoinOptions opts;
      opts.world_size = world;
      opts.compress = false;  // duplicates break dense-domain compression
      opts.join_type = p.join_type;
      opts.exec.enable_fusion = fused;
      opts.exec.enable_vectorized = vectorized;
      opts.exec.network_radix_bits = 4;
      opts.exec.local_radix_bits = 3;
      opts.fabric.throttle = false;
      StatsRegistry stats;
      auto result = plans::RunDistributedJoin(inner, outer, opts, &stats);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      if (baseline == nullptr) {
        baseline = result.value();
        // Anti join over fully-overlapping key ranges is correctly
        // empty; everything else must produce rows.
        ASSERT_TRUE(p.empty_inner || p.join_type == JoinType::kAnti ||
                    baseline->size() > 0);
      } else {
        ExpectBytesEqual(*baseline, *result.value(),
                         std::string("fused=") + std::to_string(fused) +
                             " vectorized=" + std::to_string(vectorized));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllJoinTypes, DistributedJoinParityTest,
    ::testing::Values(DistParityCase{JoinType::kInner, false, false},
                      DistParityCase{JoinType::kInner, true, false},
                      DistParityCase{JoinType::kInner, false, true},
                      DistParityCase{JoinType::kSemi, false, false},
                      DistParityCase{JoinType::kSemi, true, false},
                      DistParityCase{JoinType::kAnti, false, false},
                      DistParityCase{JoinType::kAnti, true, true}));

/// Compressed-exchange variant (dense domain, the §4.1.2 path).
TEST(DistributedJoinParityTest2, CompressedExchangeParity) {
  const int world = 2;
  auto inner = MakeFragments(world, 6000, 2, 3);
  auto outer = MakeFragments(world, 6000, 3, 4);
  RowVectorPtr baseline;
  for (bool fused : {false, true}) {
    for (bool vectorized : {false, true}) {
      plans::DistJoinOptions opts;
      opts.world_size = world;
      opts.compress = true;
      opts.exec.enable_fusion = fused;
      opts.exec.enable_vectorized = vectorized;
      opts.exec.network_radix_bits = 4;
      opts.exec.local_radix_bits = 3;
      opts.exec.key_domain_bits = 16;
      opts.fabric.throttle = false;
      StatsRegistry stats;
      auto result = plans::RunDistributedJoin(inner, outer, opts, &stats);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      if (baseline == nullptr) {
        baseline = result.value();
        ASSERT_GT(baseline->size(), 0u);
      } else {
        ExpectBytesEqual(*baseline, *result.value(),
                         std::string("compressed fused=") +
                             std::to_string(fused) +
                             " vectorized=" + std::to_string(vectorized));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// TPC-H parity: every query, vectorized on vs off, byte-identical.
// ---------------------------------------------------------------------------

TEST(TpchVectorizedParityTest, AllQueriesByteIdentical) {
  tpch::GeneratorOptions gen;
  gen.scale_factor = 0.01;
  gen.seed = 7;
  tpch::TpchTables db = tpch::GenerateTpch(gen);

  for (int query : {1, 3, 4, 6, 12, 14, 18, 19}) {
    RowVectorPtr baseline;
    for (bool vectorized : {false, true}) {
      tpch::TpchRunOptions opts = tpch::TpchRunOptions::Rdma(4);
      opts.fabric.throttle = false;
      opts.storage.throttle = false;
      opts.exec.enable_vectorized = vectorized;
      auto ctx = tpch::PrepareTpch(db, opts);
      ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
      StatsRegistry stats;
      auto result = tpch::RunTpchQuery(query, **ctx, opts, &stats);
      ASSERT_TRUE(result.ok())
          << "Q" << query << ": " << result.status().ToString();
      if (baseline == nullptr) {
        baseline = result.value();
      } else {
        ExpectBytesEqual(*baseline, *result.value(),
                         "Q" + std::to_string(query));
      }
    }
  }
}

}  // namespace
}  // namespace modularis
