#include <atomic>

#include <gtest/gtest.h>

#include "core/exec_context.h"
#include "serverless/lambda.h"
#include "serverless/s3select.h"
#include "serverless/serverless_ops.h"
#include "storage/csv.h"
#include "suboperators/agg_ops.h"
#include "suboperators/partition_ops.h"
#include "suboperators/scan_ops.h"

namespace modularis {
namespace {

using serverless::LambdaOptions;
using serverless::LambdaRuntime;
using serverless::LambdaWorkerContext;
using serverless::S3SelectEngine;
using storage::BlobClientOptions;
using storage::BlobStore;

LambdaOptions FastLambda(int workers) {
  LambdaOptions o;
  o.num_workers = workers;
  o.throttle = false;
  o.s3 = BlobClientOptions::Unthrottled();
  return o;
}

TEST(LambdaRuntimeTest, SpawnDepthIsLogarithmic) {
  EXPECT_EQ(LambdaRuntime::SpawnDepth(0, 8), 1);
  EXPECT_EQ(LambdaRuntime::SpawnDepth(1, 8), 2);
  EXPECT_EQ(LambdaRuntime::SpawnDepth(8, 8), 2);
  EXPECT_EQ(LambdaRuntime::SpawnDepth(9, 8), 3);
  EXPECT_EQ(LambdaRuntime::SpawnDepth(72, 8), 3);
  EXPECT_EQ(LambdaRuntime::SpawnDepth(73, 8), 4);
  EXPECT_EQ(LambdaRuntime::SpawnDepth(3, 1), 4);  // degenerate fanout
}

TEST(LambdaRuntimeTest, RunsAllWorkersAndBarrierWorks) {
  BlobStore store;
  std::atomic<int> arrived{0};
  std::atomic<bool> violated{false};
  Status st = LambdaRuntime::Run(
      FastLambda(6), &store, [&](LambdaWorkerContext& ctx) -> Status {
        arrived.fetch_add(1);
        ctx.barrier();
        if (arrived.load() != 6) violated = true;
        return Status::OK();
      });
  ASSERT_TRUE(st.ok());
  EXPECT_FALSE(violated.load());
}

TEST(LambdaRuntimeTest, WorkerFailurePropagates) {
  BlobStore store;
  Status st = LambdaRuntime::Run(
      FastLambda(3), &store, [&](LambdaWorkerContext& ctx) -> Status {
        if (ctx.worker_id == 2) {
          return Status::ResourceExhausted("OOM (simulated)");
        }
        return Status::OK();
      });
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(S3SelectEngineTest, PushesDownProjectionAndPredicate) {
  Schema schema({Field::I64("id"), Field::Str("tag", 8), Field::F64("x")});
  ColumnTablePtr table = ColumnTable::Make(schema);
  for (int i = 0; i < 100; ++i) {
    table->column(0).AppendInt64(i);
    table->column(1).AppendString(i % 2 == 0 ? "even" : "odd");
    table->column(2).AppendFloat64(i * 1.5);
  }
  table->FinishBulkLoad();

  BlobStore store;
  store.Put("t.csv", storage::WriteCsv(*table));
  serverless::S3SelectOptions opts;
  opts.throttle = false;
  S3SelectEngine engine(&store, opts);
  storage::BlobClient client(&store, BlobClientOptions::Unthrottled());

  // SELECT x, id WHERE tag = 'even' — predicate written against the
  // projected schema ⟨tag, x, id⟩... here projection {1,2,0}.
  auto csv = engine.Select("t.csv", schema, {1, 2, 0},
                           ex::Eq(ex::Col(0), ex::Lit(std::string("even"))),
                           &client);
  ASSERT_TRUE(csv.ok()) << csv.status().ToString();
  auto result = storage::ReadCsv(
      *csv, Schema({Field::Str("tag", 8), Field::F64("x"),
                    Field::I64("id")}));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ((*result)->num_rows(), 50u);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ((*result)->column(0).GetString(i), "even");
    EXPECT_EQ((*result)->column(2).GetInt64(i) % 2, 0);
  }
  // The transfer was charged to the client connection.
  EXPECT_GT(client.bytes_transferred(), 0);
}

TEST(S3SelectEngineTest, MissingObjectIsNotFound) {
  BlobStore store;
  serverless::S3SelectOptions opts;
  opts.throttle = false;
  S3SelectEngine engine(&store, opts);
  auto csv = engine.Select("nope.csv", KeyValueSchema(), {}, nullptr,
                           nullptr);
  EXPECT_EQ(csv.status().code(), StatusCode::kNotFound);
}

/// Runs the full serverless exchange: every worker partitions its local
/// records by key, exchanges through S3, and aggregates its partition.
void RunS3ExchangeRoundTrip(bool write_combining) {
  const int workers = 4;
  const int64_t rows_per_worker = 2000;
  BlobStore store;
  std::vector<int64_t> per_worker_sum(workers, 0);

  Status st = LambdaRuntime::Run(
      FastLambda(workers), &store,
      [&](LambdaWorkerContext& wctx) -> Status {
        RowVectorPtr local = RowVector::Make(KeyValueSchema());
        for (int64_t i = 0; i < rows_per_worker; ++i) {
          RowWriter w = local->AppendRow();
          w.SetInt64(0, (wctx.worker_id * rows_per_worker + i) % 64);
          w.SetInt64(1, 1);
        }
        ExecContext ctx;
        ctx.rank = wctx.worker_id;
        ctx.world = wctx.num_workers;
        ctx.blob = wctx.s3;
        ctx.lambda = &wctx;

        RadixSpec spec{2, 0, RadixHash::kMix};  // fanout 4 == workers
        S3Exchange::Options xopts;
        xopts.prefix = "test-exchange";
        xopts.write_combining = write_combining;
        auto exchange = std::make_unique<S3Exchange>(
            std::make_unique<GroupByPid>(std::make_unique<PartitionOp>(
                std::make_unique<CollectionSource>(
                    std::vector<RowVectorPtr>{local}),
                spec, 0)),
            xopts);
        ColumnFileScan::Options copts;
        auto scan = std::make_unique<TableToCollection>(
            std::make_unique<ColumnFileScan>(std::move(exchange), copts));
        Reduce reduce(std::move(scan),
                      {AggSpec{AggKind::kSum, ex::Col(1), "sum",
                               AtomType::kInt64}},
                      KeyValueSchema());
        MODULARIS_RETURN_NOT_OK(reduce.Open(&ctx));
        Tuple t;
        if (!reduce.Next(&t)) return Status::Internal("no reduce output");
        per_worker_sum[wctx.worker_id] = t[0].row().GetInt64(0);
        return reduce.Close();
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
  int64_t total = 0;
  for (int64_t s : per_worker_sum) total += s;
  // Every record lands on exactly one worker.
  EXPECT_EQ(total, workers * rows_per_worker);
}

TEST(S3ExchangeTest, RoundTripWithWriteCombining) {
  RunS3ExchangeRoundTrip(true);
}

TEST(S3ExchangeTest, RoundTripWithoutWriteCombining) {
  RunS3ExchangeRoundTrip(false);
}

TEST(S3ExchangeTest, WriteCombiningReducesRequestCount) {
  // W workers: combining → W PUTs; without → W² PUTs.
  for (bool combining : {true, false}) {
    BlobStore store;
    const int workers = 4;
    Status st = LambdaRuntime::Run(
        FastLambda(workers), &store,
        [&](LambdaWorkerContext& wctx) -> Status {
          RowVectorPtr local = RowVector::Make(KeyValueSchema());
          for (int64_t i = 0; i < 64; ++i) {
            RowWriter w = local->AppendRow();
            w.SetInt64(0, i);
            w.SetInt64(1, i);
          }
          ExecContext ctx;
          ctx.rank = wctx.worker_id;
          ctx.world = wctx.num_workers;
          ctx.blob = wctx.s3;
          ctx.lambda = &wctx;
          RadixSpec spec{2, 0, RadixHash::kMix};
          S3Exchange::Options xopts;
          xopts.prefix = "count-exchange";
          xopts.write_combining = combining;
          S3Exchange exchange(
              std::make_unique<GroupByPid>(std::make_unique<PartitionOp>(
                  std::make_unique<CollectionSource>(
                      std::vector<RowVectorPtr>{local}),
                  spec, 0)),
              xopts);
          MODULARIS_RETURN_NOT_OK(exchange.Open(&ctx));
          Tuple t;
          while (exchange.Next(&t)) {
          }
          return exchange.status();
        });
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(store.num_puts(), combining ? workers : workers * workers);
  }
}

TEST(MaterializeColumnFileTest, WritesResultObjectAndYieldsPath) {
  BlobStore store;
  storage::BlobClient client(&store, BlobClientOptions::Unthrottled());
  ExecContext ctx;
  ctx.blob = &client;

  RowVectorPtr data = RowVector::Make(KeyValueSchema());
  for (int i = 0; i < 10; ++i) {
    RowWriter w = data->AppendRow();
    w.SetInt64(0, i);
    w.SetInt64(1, i);
  }
  MaterializeColumnFile mat(
      std::make_unique<CollectionSource>(std::vector<RowVectorPtr>{data}),
      KeyValueSchema(), "results/out.mcf");
  ASSERT_TRUE(mat.Open(&ctx).ok());
  Tuple t;
  ASSERT_TRUE(mat.Next(&t));
  EXPECT_EQ(t[0].str(), "results/out.mcf");
  EXPECT_FALSE(mat.Next(&t));

  // Read it back through ColumnFileScan.
  ColumnFileScan scan(std::make_unique<TupleSource>(std::vector<Tuple>{
                          Tuple{Item(std::string("results/out.mcf"))}}),
                      ColumnFileScan::Options{});
  ASSERT_TRUE(scan.Open(&ctx).ok());
  size_t rows = 0;
  while (scan.Next(&t)) rows += t[0].table()->num_rows();
  ASSERT_TRUE(scan.status().ok()) << scan.status().ToString();
  EXPECT_EQ(rows, 10u);
}

TEST(ColumnFileScanTest, RangePruningSkipsRowGroups) {
  BlobStore store;
  storage::BlobClient client(&store, BlobClientOptions::Unthrottled());
  ExecContext ctx;
  StatsRegistry stats;
  ctx.stats = &stats;
  ctx.blob = &client;

  // ids 0..999 in row groups of 100 → monotone min/max per group.
  ColumnTablePtr table = ColumnTable::Make(KeyValueSchema());
  for (int64_t i = 0; i < 1000; ++i) {
    table->column(0).AppendInt64(i);
    table->column(1).AppendInt64(i);
  }
  table->FinishBulkLoad();
  storage::ColumnFileWriteOptions wopts;
  wopts.rows_per_row_group = 100;
  store.Put("t.mcf", storage::WriteColumnFile(*table, wopts));

  ColumnFileScan::Options copts;
  copts.ranges = {{0, 250, 349}};  // exactly row groups 2 and 3
  ColumnFileScan scan(std::make_unique<TupleSource>(std::vector<Tuple>{
                          Tuple{Item(std::string("t.mcf"))}}),
                      copts);
  ASSERT_TRUE(scan.Open(&ctx).ok());
  Tuple t;
  size_t rows = 0, groups = 0;
  while (scan.Next(&t)) {
    ++groups;
    rows += t[0].table()->num_rows();
  }
  ASSERT_TRUE(scan.status().ok());
  EXPECT_EQ(groups, 2u);
  EXPECT_EQ(rows, 200u);
  EXPECT_EQ(stats.GetCounter("scan.row_groups_pruned"), 8);
}

}  // namespace
}  // namespace modularis
