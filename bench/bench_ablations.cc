/// \file bench_ablations.cc
/// Ablations for the design choices DESIGN.md calls out:
///  1. Operator fusion on/off — the JIT analog; reproduces the §5.2.2
///     RowScan-vs-plain-C++ microbenchmark shape and the interpreted
///     penalty on a full join.
///  2. Exchange key compression on/off (§4.1.2) — bytes moved + runtime.
///  3. Software write-combining buffer size sweep in the RDMA exchange.
///  4. S3 write-combining on/off (§4.4) — request count + runtime of a
///     serverless exchange.

#include <random>
#include <vector>

#include "bench/bench_util.h"
#include "core/exec_context.h"
#include "plans/distributed_groupby.h"
#include "plans/distributed_join.h"
#include "suboperators/agg_ops.h"
#include "suboperators/scan_ops.h"
#include "tpch/queries.h"

namespace modularis {
namespace {

std::vector<RowVectorPtr> MakeFragments(int world, int64_t rows,
                                        uint32_t seed) {
  std::vector<int64_t> keys(rows);
  for (int64_t i = 0; i < rows; ++i) keys[i] = i;
  std::mt19937_64 rng(seed);
  std::shuffle(keys.begin(), keys.end(), rng);
  std::vector<RowVectorPtr> frags;
  for (int r = 0; r < world; ++r) {
    frags.push_back(RowVector::Make(KeyValueSchema()));
  }
  for (int64_t i = 0; i < rows; ++i) {
    RowWriter w = frags[i % world]->AppendRow();
    w.SetInt64(0, keys[i]);
    w.SetInt64(1, keys[i] + 1);
  }
  return frags;
}

void RowScanMicrobench() {
  std::printf("\n[1a] RowScan interpretation overhead (§5.2.2 microbench):\n");
  const int64_t n = bench::ScaledRows(20'000'000);
  RowVectorPtr data = RowVector::Make(Schema({Field::I64("v")}));
  data->Reserve(n);
  for (int64_t i = 0; i < n; ++i) data->AppendRow().SetInt64(0, i & 1023);

  // Plain C++ loop.
  bench::WallTimer raw_timer;
  int64_t sum = 0;
  {
    const uint8_t* p = data->data();
    for (int64_t i = 0; i < n; ++i, p += data->row_size()) {
      int64_t v;
      std::memcpy(&v, p, 8);
      sum += v;
    }
  }
  double raw = raw_timer.Seconds();

  auto run_reduce = [&](bool fused) -> double {
    ExecContext ctx;
    ctx.options.enable_fusion = fused;
    SubOpPtr src = std::make_unique<CollectionSource>(
        std::vector<RowVectorPtr>{data});
    if (!fused) src = std::make_unique<RowScan>(std::move(src));
    Reduce reduce(std::move(src),
                  {AggSpec{AggKind::kSum, ex::Col(0), "sum",
                           AtomType::kInt64}},
                  data->schema());
    bench::WallTimer timer;
    Tuple t;
    if (!reduce.Open(&ctx).ok() || !reduce.Next(&t)) return -1;
    double s = timer.Seconds();
    if (t[0].row().GetInt64(0) != sum) std::fprintf(stderr, "sum mismatch\n");
    return s;
  };
  double fused = run_reduce(true);
  double interpreted = run_reduce(false);
  std::printf("  sum of %lld i64s: plain C++ %.3fs | fused sub-operators "
              "%.3fs | tuple-at-a-time %.3fs\n",
              static_cast<long long>(n), raw, fused, interpreted);
  std::printf("  (paper: RowScan ~1.0s vs plain C++ ~0.8s on 1B ints — "
              "interpretation costs ~25%%; JIT/fusion recovers it)\n");
}

void FusionJoinAblation() {
  std::printf("\n[1b] Full distributed join, fusion on/off:\n");
  const int64_t rows = bench::ScaledRows(1'000'000);
  auto inner = MakeFragments(4, rows, 1);
  auto outer = MakeFragments(4, rows, 2);
  for (bool fused : {true, false}) {
    plans::DistJoinOptions opts;
    opts.world_size = 4;
    opts.exec.enable_fusion = fused;
    StatsRegistry stats;
    bench::WallTimer timer;
    auto result = plans::RunDistributedJoin(inner, outer, opts, &stats);
    std::printf("  fusion=%-5s  %8.3fs %s\n", fused ? "on" : "off",
                timer.Seconds(), result.ok() ? "" : "(FAILED)");
  }
}

void CompressionAblation() {
  std::printf("\n[2] Exchange key compression (§4.1.2), 4 ranks:\n");
  const int64_t rows = bench::ScaledRows(2'000'000);
  auto frags = MakeFragments(4, rows, 3);
  for (bool compress : {true, false}) {
    plans::DistGroupByOptions opts;
    opts.world_size = 4;
    opts.compress = compress;
    StatsRegistry stats;
    bench::WallTimer timer;
    auto result = plans::RunDistributedGroupBy(frags, opts, &stats);
    std::printf("  compress=%-5s  %8.3fs  %8.1f MB on the wire %s\n",
                compress ? "on" : "off", timer.Seconds(),
                stats.GetCounter("net.bytes_sent") / 1e6,
                result.ok() ? "" : "(FAILED)");
  }
  std::printf("  (paper: compression halves network traffic — 'crucial "
              "for performance', §4.3)\n");
}

void BufferSweep() {
  std::printf("\n[3] Write-combining buffer size sweep (RDMA exchange):\n");
  const int64_t rows = bench::ScaledRows(2'000'000);
  auto inner = MakeFragments(4, rows, 4);
  auto outer = MakeFragments(4, rows, 5);
  for (size_t kb : {1, 4, 16, 64, 256}) {
    plans::DistJoinOptions opts;
    opts.world_size = 4;
    opts.exec.exchange_buffer_bytes = kb << 10;
    StatsRegistry stats;
    bench::WallTimer timer;
    auto result = plans::RunDistributedJoin(inner, outer, opts, &stats);
    std::printf("  buffer %4zu KiB  %8.3fs %s\n", kb, timer.Seconds(),
                result.ok() ? "" : "(FAILED)");
  }
}

void S3WriteCombiningAblation() {
  std::printf("\n[4] Lambada S3 write combining (§4.4), TPC-H Q12 on "
              "lambda, 4 workers:\n");
  tpch::GeneratorOptions gen;
  gen.scale_factor = 0.01 * bench::ScaleFactor();
  tpch::TpchTables db = tpch::GenerateTpch(gen);
  for (bool combining : {true, false}) {
    tpch::TpchRunOptions opts = tpch::TpchRunOptions::Lambda(4);
    opts.exec.s3_write_combining = combining;
    auto ctx = tpch::PrepareTpch(db, opts);
    if (!ctx.ok()) continue;
    StatsRegistry stats;
    bench::WallTimer timer;
    auto result = tpch::RunTpchQuery(12, **ctx, opts, &stats);
    std::printf("  combining=%-5s  %8.3fs  %6lld S3 requests %s\n",
                combining ? "on" : "off", timer.Seconds(),
                static_cast<long long>(stats.GetCounter("s3.requests")),
                result.ok() ? "" : "(FAILED)");
  }
  std::printf("  (Lambada: one object per sender instead of one per "
              "sender-receiver pair)\n");
}

int Main() {
  bench::PrintHeader("Ablations: fusion / compression / write combining",
                     "§4.1.2, §4.4, §5.2.2");
  RowScanMicrobench();
  FusionJoinAblation();
  CompressionAblation();
  BufferSweep();
  S3WriteCombiningAblation();
  return 0;
}

}  // namespace
}  // namespace modularis

int main() { return modularis::Main(); }
