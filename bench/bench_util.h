#ifndef MODULARIS_BENCH_BENCH_UTIL_H_
#define MODULARIS_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "net/fabric.h"

/// \file bench_util.h
/// Shared helpers for the figure/table reproduction benchmarks.
/// Workload sizes scale with the MODULARIS_BENCH_SCALE environment
/// variable (default 1.0); absolute numbers shrink relative to the paper's
/// testbed, the *shapes* are what the benches reproduce (EXPERIMENTS.md).

namespace modularis::bench {

inline double ScaleFactor() {
  const char* env = std::getenv("MODULARIS_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

/// Scaled row count: `base` rows at scale 1.
inline int64_t ScaledRows(int64_t base) {
  return static_cast<int64_t>(static_cast<double>(base) * ScaleFactor());
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Prints the simulated-cluster banner (the Table 3 analog).
inline void PrintClusterSpec(const net::FabricOptions& fabric) {
  std::printf(
      "# simulated cluster: ranks are threads; interconnect '%s' "
      "(%.1f Gbit/s per NIC, %.1f us latency)\n",
      fabric.name.c_str(), fabric.bandwidth_bytes_per_sec * 8 / 1e9,
      fabric.latency_seconds * 1e6);
}

inline void PrintHeader(const char* experiment, const char* paper_ref) {
  std::printf("\n=============================================================\n");
  std::printf("%s   (paper: %s)\n", experiment, paper_ref);
  std::printf("bench scale: %.3g (MODULARIS_BENCH_SCALE)\n", ScaleFactor());
  std::printf("=============================================================\n");
}

}  // namespace modularis::bench

#endif  // MODULARIS_BENCH_BENCH_UTIL_H_
