/// \file bench_table2_sloc.cc
/// Reproduces Table 2 and the §5.2.1 implementation-effort comparison:
/// source lines of code per sub-operator, the total for the operators the
/// Fig. 3 join plan uses, the platform-specific share (MPI executor /
/// histogram / exchange), and the monolithic hand-tuned join's size.
/// Counts are computed from this repository's actual sources.

#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace modularis {
namespace {

/// Counts non-blank, non-pure-comment lines of a source file.
int CountSloc(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return -1;
  int lines = 0;
  std::string line;
  bool in_block_comment = false;
  while (std::getline(in, line)) {
    size_t begin = line.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;
    std::string_view sv(line);
    sv.remove_prefix(begin);
    if (in_block_comment) {
      if (sv.find("*/") != std::string_view::npos) in_block_comment = false;
      continue;
    }
    if (sv.substr(0, 2) == "//") continue;
    if (sv.substr(0, 2) == "/*") {
      if (sv.find("*/", 2) == std::string_view::npos) {
        in_block_comment = true;
      }
      continue;
    }
    ++lines;
  }
  return lines;
}

struct OperatorEntry {
  const char* abbrev;
  const char* name;
  /// Files whose SLOC are attributed to this operator; a trailing
  /// fragment "#<tag>" restricts counting to the region between
  /// "// --- <tag>" markers — we instead count whole focused files.
  std::vector<std::string> files;
  bool platform_specific = false;
};

int Main() {
  bench::PrintHeader("Table 2: SLOC per sub-operator + §5.2.1 totals",
                     "Table 2, §5.2.1");
  const std::string root = MODULARIS_SOURCE_DIR;

  // The operator inventory of the Fig. 3 join plan. Several operators
  // share a source file pair; shared-file SLOC are split evenly across
  // the operators defined there (noted in the output).
  struct FileGroup {
    std::string path;
    std::vector<const char*> operators;
    bool platform_specific;
  };
  std::vector<FileGroup> groups = {
      {"/src/suboperators/basic_ops", {"ParameterLookup", "NestedMap",
        "Projection", "Filter", "Map", "ParametrizedMap", "Zip",
        "CartesianProduct"}, false},
      {"/src/suboperators/scan_ops", {"RowScan", "ColumnScan",
        "TableToCollection", "MaterializeRowVector"}, false},
      {"/src/suboperators/partition_ops", {"LocalHistogram",
        "LocalPartition", "Partition"}, false},
      {"/src/suboperators/join_ops", {"BuildProbe"}, false},
      {"/src/suboperators/agg_ops", {"ReduceByKey", "Reduce", "Sort",
        "TopK", "GroupBy"}, false},
      {"/src/mpi/mpi_ops", {"MpiExecutor", "MpiHistogram", "MpiExchange",
        "MpiBroadcast"}, true},
  };

  std::printf("%-60s %9s %9s\n", "source (operators defined there)", "SLOC",
              "per-op");
  int total_modular = 0;
  int total_platform = 0;
  for (const FileGroup& g : groups) {
    int sloc = CountSloc(root + g.path + ".h") +
               CountSloc(root + g.path + ".cc");
    std::string label = g.path + "  (";
    for (size_t i = 0; i < g.operators.size(); ++i) {
      if (i > 0) label += ", ";
      label += g.operators[i];
    }
    label += ")";
    if (label.size() > 59) label = label.substr(0, 56) + "...";
    std::printf("%-60s %9d %9d\n", label.c_str(), sloc,
                sloc / static_cast<int>(g.operators.size()));
    total_modular += sloc;
    if (g.platform_specific) total_platform += sloc;
  }

  int mono = CountSloc(root + "/src/baseline/monolithic_join.h") +
             CountSloc(root + "/src/baseline/monolithic_join.cc");
  int plan = CountSloc(root + "/src/plans/distributed_join.cc") +
             CountSloc(root + "/src/plans/distributed_join.h");

  std::printf("\n§5.2.1 comparison (this repository's own sources):\n");
  std::printf("  %-50s %9d\n",
              "sub-operator repository used by the join plan", total_modular);
  std::printf("  %-50s %9d\n", "  of which platform-specific (MPI ops)",
              total_platform);
  std::printf("  %-50s %9d\n", "join plan assembly (Fig. 3 wiring)", plan);
  std::printf("  %-50s %9d\n", "monolithic hand-tuned join (§5.2 baseline)",
              mono);
  std::printf(
      "  hardware-agnostic share of the modular code: %.0f%% "
      "(paper: platform-specific code is the smaller part;\n"
      "   the monolithic baseline must be rewritten per platform — the "
      "paper reports a 3.8x ratio)\n",
      100.0 * (total_modular - total_platform) / total_modular);
  std::printf(
      "  NOTE: the modular repository also powers GROUP BY, join "
      "sequences and all TPC-H plans;\n  the monolithic file implements "
      "exactly one join variant.\n");
  return 0;
}

}  // namespace
}  // namespace modularis

int main() { return modularis::Main(); }
