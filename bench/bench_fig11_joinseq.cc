/// \file bench_fig11_joinseq.cc
/// Reproduces Fig. 11: sequences of joins on a common attribute, naive vs
/// pre-partitioned (optimized) plans — (a) runtime across cluster sizes,
/// (b) runtime vs first-join output size, (c) network time vs first-join
/// output size, (d) runtime vs number of joins. Tuple counts scale with
/// MODULARIS_BENCH_SCALE.

#include <algorithm>
#include <random>
#include <vector>

#include "bench/bench_util.h"
#include "plans/join_sequence.h"

namespace modularis {
namespace {

/// Relation with `rows` tuples whose keys cycle over [0, key_space):
/// joining against a 1-to-1 keyed relation of `key_space` keys yields
/// exactly `rows` output tuples.
std::vector<RowVectorPtr> MakeRelation(int world, int64_t rows,
                                       int64_t key_space, uint32_t seed) {
  std::vector<int64_t> keys(rows);
  for (int64_t i = 0; i < rows; ++i) keys[i] = i % key_space;
  std::mt19937_64 rng(seed);
  std::shuffle(keys.begin(), keys.end(), rng);
  std::vector<RowVectorPtr> frags;
  for (int r = 0; r < world; ++r) {
    frags.push_back(RowVector::Make(KeyValueSchema()));
    frags.back()->Reserve(rows / world + 1);
  }
  for (int64_t i = 0; i < rows; ++i) {
    RowWriter w = frags[i % world]->AppendRow();
    w.SetInt64(0, keys[i]);
    w.SetInt64(1, keys[i] + 3);
  }
  return frags;
}

struct RunResult {
  double seconds = -1;
  double network_seconds = 0;
};

RunResult Run(const std::vector<std::vector<RowVectorPtr>>& relations,
              int world, bool optimized) {
  plans::JoinSequenceOptions opts;
  opts.world_size = world;
  StatsRegistry stats;
  bench::WallTimer timer;
  auto result = plans::RunJoinSequence(relations, opts, optimized, &stats);
  RunResult r;
  if (!result.ok()) {
    std::fprintf(stderr, "joinseq: %s\n",
                 result.status().ToString().c_str());
    return r;
  }
  r.seconds = timer.Seconds();
  r.network_seconds = stats.GetTime("net.charged_seconds");
  return r;
}

int Main() {
  bench::PrintHeader("Figure 11: sequences of joins (naive vs optimized)",
                     "Fig. 11a-d, §5.4");
  bench::PrintClusterSpec(net::FabricOptions());
  const int64_t rows = bench::ScaledRows(1'000'000);

  // (a) Two joins across cluster sizes.
  std::printf("\nFig. 11a — 2-join cascade, %lld-tuple relations [s]:\n",
              static_cast<long long>(rows));
  std::printf("%-8s %10s %10s\n", "ranks", "naive", "optimized");
  for (int world = 2; world <= 8; ++world) {
    std::vector<std::vector<RowVectorPtr>> rels;
    for (int i = 0; i < 3; ++i) {
      rels.push_back(MakeRelation(world, rows, rows, 10 + i));
    }
    RunResult naive = Run(rels, world, false);
    RunResult opt = Run(rels, world, true);
    std::printf("%-8d %10.3f %10.3f\n", world, naive.seconds, opt.seconds);
  }

  // (b) + (c): growing first-join output on 8 ranks. R1's keys cycle over
  // R0's key space, so the first join emits |R1| tuples.
  const int world = 8;
  std::printf("\nFig. 11b/11c — first-join output sweep, 8 ranks:\n");
  std::printf("%-16s %10s %10s %14s %14s\n", "join output", "naive[s]",
              "opt[s]", "naive net[s]", "opt net[s]");
  for (int mult = 1; mult <= 4; ++mult) {
    int64_t out_rows = rows / 4 * mult;
    std::vector<std::vector<RowVectorPtr>> rels;
    rels.push_back(MakeRelation(world, rows, rows, 20));       // R0
    rels.push_back(MakeRelation(world, out_rows, rows, 21));   // R1
    rels.push_back(MakeRelation(world, rows, rows, 22));       // R2
    RunResult naive = Run(rels, world, false);
    RunResult opt = Run(rels, world, true);
    std::printf("%-16lld %10.3f %10.3f %14.3f %14.3f\n",
                static_cast<long long>(out_rows), naive.seconds,
                opt.seconds, naive.network_seconds, opt.network_seconds);
  }

  // (d) Number of joins.
  std::printf("\nFig. 11d — cascade length sweep, 8 ranks, %lld-tuple "
              "relations [s]:\n",
              static_cast<long long>(rows / 2));
  std::printf("%-8s %10s %10s\n", "joins", "naive", "optimized");
  for (int joins : {2, 3, 4, 5, 6, 8}) {
    std::vector<std::vector<RowVectorPtr>> rels;
    for (int i = 0; i <= joins; ++i) {
      rels.push_back(MakeRelation(world, rows / 2, rows / 2, 30 + i));
    }
    RunResult naive = Run(rels, world, false);
    RunResult opt = Run(rels, world, true);
    std::printf("%-8d %10.3f %10.3f\n", joins, naive.seconds, opt.seconds);
  }
  std::printf(
      "\nExpected shape (paper): the optimized plan shuffles N+1 instead "
      "of 2N relations — constant\nnetwork time vs join output (11c), "
      "sublinear total growth (11b), and a gap that widens\nwith the "
      "number of joins (11d).\n");
  return 0;
}

}  // namespace
}  // namespace modularis

int main() { return modularis::Main(); }
