/// \file bench_fig10_groupby.cc
/// Reproduces Fig. 10: distributed GROUP BY runtime (left) across cluster
/// sizes at fixed key cardinality and (right) across key cardinalities for
/// 2/4/8-rank clusters. The paper groups 2048M unique keys; row counts
/// scale with MODULARIS_BENCH_SCALE.

#include <random>
#include <vector>

#include "bench/bench_util.h"
#include "plans/distributed_groupby.h"

namespace modularis {
namespace {

std::vector<RowVectorPtr> MakeFragments(int world, int64_t rows,
                                        int64_t num_keys, uint32_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> key_dist(0, num_keys - 1);
  std::vector<RowVectorPtr> frags;
  for (int r = 0; r < world; ++r) {
    frags.push_back(RowVector::Make(KeyValueSchema()));
    frags.back()->Reserve(rows / world + 1);
  }
  for (int64_t i = 0; i < rows; ++i) {
    RowWriter w = frags[i % world]->AppendRow();
    w.SetInt64(0, key_dist(rng));
    w.SetInt64(1, 1);
  }
  return frags;
}

double RunOnce(const std::vector<RowVectorPtr>& frags, int world) {
  plans::DistGroupByOptions opts;
  opts.world_size = world;
  StatsRegistry stats;
  bench::WallTimer timer;
  auto result = plans::RunDistributedGroupBy(frags, opts, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "groupby: %s\n",
                 result.status().ToString().c_str());
    return -1;
  }
  return timer.Seconds();
}

int Main() {
  bench::PrintHeader("Figure 10: distributed GROUP BY", "Fig. 10, §5.3");
  bench::PrintClusterSpec(net::FabricOptions());
  const int64_t rows = bench::ScaledRows(2'000'000);

  std::printf("\nFig. 10 (left) — runtime vs ranks, %lld rows, all keys "
              "unique [s]:\n",
              static_cast<long long>(rows));
  std::printf("%-8s %10s\n", "ranks", "time");
  for (int world = 2; world <= 8; ++world) {
    auto frags = MakeFragments(world, rows, rows, 3);
    std::printf("%-8d %10.3f\n", world, RunOnce(frags, world));
  }

  // Right plot: cardinality sweep at the paper's group/row ratios
  // (2048M rows with 2/8/32/128M groups → 1/1024 .. 1/16).
  std::printf("\nFig. 10 (right) — runtime vs #groups [s]:\n");
  std::printf("%-16s %8s %8s %8s\n", "groups", "8 ranks", "4 ranks",
              "2 ranks");
  for (int64_t divisor : {1024, 256, 64, 16}) {
    int64_t groups = std::max<int64_t>(1, rows / divisor);
    std::printf("%-16lld", static_cast<long long>(groups));
    for (int world : {8, 4, 2}) {
      auto frags = MakeFragments(world, rows, groups, 4);
      std::printf(" %8.3f", RunOnce(frags, world));
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper): runtime falls with cluster size and stays "
      "nearly flat in the\nnumber of groups — the network partitioning and "
      "materialization dominate (§5.3).\n");
  return 0;
}

}  // namespace
}  // namespace modularis

int main() { return modularis::Main(); }
