/// \file bench_fig9_join.cc
/// Reproduces Fig. 9: (a) per-phase breakdown of the distributed radix
/// hash join on 4 and 8 ranks for the hand-tuned original, the isolated
/// sub-operator model, and the full Modularis plan; (b) total runtime of
/// monolithic vs modular across 2–8 ranks. The paper uses 2048M-tuple
/// relations on real InfiniBand; tuple counts scale with
/// MODULARIS_BENCH_SCALE.

#include <algorithm>
#include <map>
#include <random>
#include <vector>

#include "baseline/join_model.h"
#include "baseline/monolithic_join.h"
#include "bench/bench_util.h"
#include "plans/distributed_join.h"

namespace modularis {
namespace {

std::vector<RowVectorPtr> MakeFragments(int world, int64_t rows,
                                        uint32_t seed) {
  std::vector<int64_t> keys(rows);
  for (int64_t i = 0; i < rows; ++i) keys[i] = i;
  std::mt19937_64 rng(seed);
  std::shuffle(keys.begin(), keys.end(), rng);
  std::vector<RowVectorPtr> frags;
  for (int r = 0; r < world; ++r) {
    frags.push_back(RowVector::Make(KeyValueSchema()));
    frags.back()->Reserve(rows / world + 1);
  }
  for (int64_t i = 0; i < rows; ++i) {
    RowWriter w = frags[i % world]->AppendRow();
    w.SetInt64(0, keys[i]);
    w.SetInt64(1, keys[i] + 7);
  }
  return frags;
}

const std::vector<const char*> kPhases = {
    "phase.local_histogram", "phase.global_histogram",
    "phase.network_partition", "phase.local_partition",
    "phase.build_probe"};

struct Breakdown {
  std::map<std::string, double> phases;
  double total = 0;
};

/// Repeats a run and keeps the fastest (the paper averages five warm
/// runs; min-of-3 suppresses scheduler noise at our smaller scale).
template <typename Fn>
Breakdown Best(const Fn& fn, int repeats = 3) {
  Breakdown best;
  for (int i = 0; i < repeats; ++i) {
    Breakdown b = fn();
    if (best.total == 0 || (b.total > 0 && b.total < best.total)) best = b;
  }
  return best;
}

Breakdown RunOriginal(const std::vector<RowVectorPtr>& inner,
                      const std::vector<RowVectorPtr>& outer, int world) {
  baseline::MonolithicJoinOptions opts;
  opts.world_size = world;
  StatsRegistry stats;
  bench::WallTimer timer;
  auto result = baseline::RunMonolithicJoin(inner, outer, opts, &stats);
  Breakdown b;
  b.total = timer.Seconds();
  if (!result.ok()) {
    std::fprintf(stderr, "monolithic: %s\n",
                 result.status().ToString().c_str());
    return b;
  }
  b.phases = stats.times();
  return b;
}

Breakdown RunModel(const std::vector<RowVectorPtr>& inner,
                   const std::vector<RowVectorPtr>& outer, int world) {
  baseline::JoinModelOptions opts;
  opts.world_size = world;
  bench::WallTimer timer;
  auto result = baseline::RunJoinModel(inner, outer, opts);
  Breakdown b;
  b.total = timer.Seconds();
  if (!result.ok()) {
    std::fprintf(stderr, "model: %s\n", result.status().ToString().c_str());
    return b;
  }
  b.phases = *result;
  return b;
}

Breakdown RunModular(const std::vector<RowVectorPtr>& inner,
                     const std::vector<RowVectorPtr>& outer, int world) {
  plans::DistJoinOptions opts;
  opts.world_size = world;
  StatsRegistry stats;
  bench::WallTimer timer;
  auto result = plans::RunDistributedJoin(inner, outer, opts, &stats);
  Breakdown b;
  b.total = timer.Seconds();
  if (!result.ok()) {
    std::fprintf(stderr, "modularis: %s\n",
                 result.status().ToString().c_str());
    return b;
  }
  b.phases = stats.times();
  return b;
}

int Main() {
  bench::PrintHeader(
      "Figure 9: distributed join — phase breakdown and scale-out",
      "Fig. 9a/9b, §5.2.2");
  bench::PrintClusterSpec(net::FabricOptions());
  const int64_t rows = bench::ScaledRows(4'000'000);
  std::printf("relations: 2 x %lld tuples (16-byte ⟨key,value⟩), "
              "1-to-1 key match\n", static_cast<long long>(rows));

  // (a) Breakdown on 4 and 8 ranks.
  for (int world : {4, 8}) {
    auto inner = MakeFragments(world, rows, 1);
    auto outer = MakeFragments(world, rows, 2);
    Breakdown original =
        Best([&] { return RunOriginal(inner, outer, world); });
    Breakdown model = Best([&] { return RunModel(inner, outer, world); });
    Breakdown modular =
        Best([&] { return RunModular(inner, outer, world); });

    std::printf("\nFig. 9a — %d ranks, per-phase seconds (max over ranks):\n",
                world);
    std::printf("%-26s %10s %10s %10s\n", "phase", "original", "model",
                "modularis");
    for (const char* phase : kPhases) {
      std::printf("%-26s %10.3f %10.3f %10.3f\n", phase + 6,
                  original.phases[phase], model.phases[phase],
                  modular.phases[phase]);
    }
    std::printf("%-26s %10.3f %10s %10.3f\n", "total wall", original.total,
                "-", modular.total);
  }

  // (b) Total runtime across machine counts.
  std::printf("\nFig. 9b — total join runtime vs ranks [s]:\n");
  std::printf("%-8s %12s %12s %10s\n", "ranks", "monolithic", "modular",
              "overhead");
  for (int world = 2; world <= 8; ++world) {
    auto inner = MakeFragments(world, rows, 1);
    auto outer = MakeFragments(world, rows, 2);
    Breakdown original =
        Best([&] { return RunOriginal(inner, outer, world); });
    Breakdown modular =
        Best([&] { return RunModular(inner, outer, world); });
    std::printf("%-8d %12.3f %12.3f %9.0f%%\n", world, original.total,
                modular.total,
                100.0 * (modular.total - original.total) / original.total);
  }
  std::printf(
      "\nExpected shape (paper): the modular plan stays within ~12-30%% of "
      "the hand-tuned original,\nwith the gap coming from pipeline "
      "interpretation and collective skew (§5.2.2).\n");
  return 0;
}

}  // namespace
}  // namespace modularis

int main() { return modularis::Main(); }
