/// \file bench_fig8_tpch.cc
/// Reproduces Fig. 8: TPC-H runtimes (Q1, Q3, Q4, Q6, Q12, Q14, Q18, Q19)
/// across Modularis on RDMA (with and without disc reads), the Presto- and
/// SingleStore-profile cluster baselines, Modularis on serverless (Lambda
/// exchange and S3Select scans), and the Athena-/BigQuery-profile QaaS
/// baselines. The paper runs SF-500 on 8 machines; here the scale factor
/// and fleet shrink with MODULARIS_BENCH_SCALE while the relative shapes
/// are preserved (see EXPERIMENTS.md).

#include <vector>

#include "baseline/tpch_baselines.h"
#include "bench/bench_util.h"
#include "tpch/queries.h"

namespace modularis {
namespace {

using bench::PrintHeader;
using bench::WallTimer;

struct Series {
  const char* name;
  std::vector<double> seconds;
};

int Main() {
  PrintHeader("Figure 8: TPC-H end-to-end runtimes", "Fig. 8, §5.1");
  const double sf = 0.05 * bench::ScaleFactor();
  const int ranks = 4;
  // The paper's serverless fleets are sized so one worker reads ~one file
  // shard (512 workers at SF-500); 4 workers is the same regime at our
  // scale — larger fleets only multiply S3 request latency here.
  const int workers = 4;
  std::printf("TPC-H SF %.3f, %d ranks / %d serverless workers "
              "(warm runs reported, as in the paper)\n\n",
              sf, ranks, workers);

  tpch::GeneratorOptions gen;
  gen.scale_factor = sf;
  tpch::TpchTables db = tpch::GenerateTpch(gen);
  const std::vector<int> queries = {1, 3, 4, 6, 12, 14, 18, 19};

  std::vector<Series> series;

  auto run_modularis = [&](const char* name, tpch::TpchRunOptions opts) {
    Series s{name, {}};
    auto ctx = tpch::PrepareTpch(db, opts);
    if (!ctx.ok()) {
      std::fprintf(stderr, "prepare %s: %s\n", name,
                   ctx.status().ToString().c_str());
      return;
    }
    for (int q : queries) {
      // Warm-up run (the paper reports warm runs for the cluster systems).
      StatsRegistry warm_stats;
      (void)tpch::RunTpchQuery(q, **ctx, opts, &warm_stats);
      StatsRegistry stats;
      WallTimer timer;
      auto result = tpch::RunTpchQuery(q, **ctx, opts, &stats);
      if (!result.ok()) {
        std::fprintf(stderr, "%s Q%d: %s\n", name, q,
                     result.status().ToString().c_str());
        s.seconds.push_back(-1);
        continue;
      }
      s.seconds.push_back(timer.Seconds());
    }
    series.push_back(std::move(s));
  };

  run_modularis("modularis-rdma", tpch::TpchRunOptions::Rdma(ranks));
  run_modularis("modularis-rdma+disc",
                tpch::TpchRunOptions::Rdma(ranks, /*with_disc=*/true));

  auto run_baseline = [&](const char* name,
                          baseline::BaselineSystem system) {
    Series s{name, {}};
    for (int q : queries) {
      StatsRegistry warm_stats;
      (void)baseline::RunBaselineTpch(system, q, db, ranks, &warm_stats);
      StatsRegistry stats;
      auto result = baseline::RunBaselineTpch(system, q, db, ranks, &stats);
      s.seconds.push_back(result.ok() ? result->seconds : -1);
    }
    series.push_back(std::move(s));
  };
  run_baseline("singlestore-profile", baseline::BaselineSystem::kSingleStore);
  run_baseline("presto-profile", baseline::BaselineSystem::kPresto);

  run_modularis("modularis-lambda", tpch::TpchRunOptions::Lambda(workers));
  run_modularis("modularis-s3select",
                tpch::TpchRunOptions::S3Select(workers));
  run_baseline("athena-profile", baseline::BaselineSystem::kAthena);
  run_baseline("bigquery-profile", baseline::BaselineSystem::kBigQuery);

  std::printf("%-22s", "system \\ query [s]");
  for (int q : queries) std::printf("  Q%-6d", q);
  std::printf("\n");
  for (const Series& s : series) {
    std::printf("%-22s", s.name);
    for (double v : s.seconds) {
      if (v < 0) {
        std::printf("  %-7s", "FAIL");
      } else {
        std::printf("  %-7.3f", v);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper): Modularis-RDMA leads on join/agg-heavy "
      "queries (Q1, Q3, Q12, Q18);\nthe SingleStore profile wins "
      "broadcast-friendly Q14/Q19; the Presto profile trails by a large\n"
      "factor; Modularis-Lambda beats the QaaS profiles on most queries "
      "while S3Select pays for\nuncompressed CSV transfers.\n");
  return 0;
}

}  // namespace
}  // namespace modularis

int main() { return modularis::Main(); }
