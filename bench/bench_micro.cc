/// \file bench_micro.cc
/// Google-benchmark microbenchmarks of the hot sub-operator primitives:
/// radix histogram/scatter, join hash table, ReduceByKey, expression
/// evaluation, and the ColumnFile codec. These are the "model performance"
/// numbers (§5.2.2) at the smallest granularity.

#include <random>

#include <benchmark/benchmark.h>

#include "core/exec_context.h"
#include "core/expr.h"
#include "storage/column_file.h"
#include "suboperators/agg_ops.h"
#include "suboperators/join_ops.h"
#include "suboperators/partition_ops.h"
#include "suboperators/scan_ops.h"

namespace modularis {
namespace {

RowVectorPtr MakeKv(int64_t rows, int64_t key_space) {
  RowVectorPtr data = RowVector::Make(KeyValueSchema());
  data->Reserve(rows);
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<int64_t> dist(0, key_space - 1);
  for (int64_t i = 0; i < rows; ++i) {
    RowWriter w = data->AppendRow();
    w.SetInt64(0, dist(rng));
    w.SetInt64(1, i);
  }
  return data;
}

void BM_RadixHistogram(benchmark::State& state) {
  RowVectorPtr data = MakeKv(state.range(0), 1 << 20);
  RadixSpec spec{8, 0, RadixHash::kIdentity};
  std::vector<int64_t> counts(spec.fanout());
  for (auto _ : state) {
    std::fill(counts.begin(), counts.end(), 0);
    CountRows(*data, spec, 0, counts.data());
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetItemsProcessed(state.iterations() * data->size());
}
BENCHMARK(BM_RadixHistogram)->Arg(1 << 16)->Arg(1 << 20);

void BM_RadixScatter(benchmark::State& state) {
  RowVectorPtr data = MakeKv(state.range(0), 1 << 20);
  RadixSpec spec{8, 0, RadixHash::kIdentity};
  for (auto _ : state) {
    std::vector<RowVectorPtr> parts;
    for (int p = 0; p < spec.fanout(); ++p) {
      parts.push_back(RowVector::Make(KeyValueSchema()));
    }
    ScatterRows(*data, spec, 0, &parts);
    benchmark::DoNotOptimize(parts.data());
  }
  state.SetItemsProcessed(state.iterations() * data->size());
}
BENCHMARK(BM_RadixScatter)->Arg(1 << 16)->Arg(1 << 20);

void BM_JoinHashTableBuildProbe(benchmark::State& state) {
  const int64_t n = state.range(0);
  RowVectorPtr build = MakeKv(n, n);
  for (auto _ : state) {
    JoinHashTable table;
    table.Reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      table.Insert(build->row(i).GetInt64(0), static_cast<uint32_t>(i));
    }
    int64_t hits = 0;
    for (int64_t i = 0; i < n; ++i) {
      hits += table.Find(i) != JoinHashTable::kNone;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_JoinHashTableBuildProbe)->Arg(1 << 14)->Arg(1 << 18);

void BM_ReduceByKey(benchmark::State& state) {
  RowVectorPtr data = MakeKv(1 << 20, state.range(0));
  ExecContext ctx;
  for (auto _ : state) {
    ReduceByKey rk(std::make_unique<CollectionSource>(
                       std::vector<RowVectorPtr>{data}),
                   {0},
                   {AggSpec{AggKind::kSum, ex::Col(1), "sum",
                            AtomType::kInt64}},
                   KeyValueSchema());
    Tuple t;
    if (!rk.Open(&ctx).ok()) state.SkipWithError("open failed");
    int64_t groups = 0;
    while (rk.Next(&t)) ++groups;
    benchmark::DoNotOptimize(groups);
  }
  state.SetItemsProcessed(state.iterations() * data->size());
}
BENCHMARK(BM_ReduceByKey)->Arg(64)->Arg(1 << 16);

void BM_ExprFilterEval(benchmark::State& state) {
  RowVectorPtr data = MakeKv(1 << 18, 1000);
  ExprPtr pred = ex::And(ex::Ge(ex::Col(0), ex::Lit(int64_t{100})),
                         ex::Lt(ex::Col(0), ex::Lit(int64_t{900})));
  for (auto _ : state) {
    int64_t matches = 0;
    for (size_t i = 0; i < data->size(); ++i) {
      matches += pred->EvalBool(data->row(i));
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() * data->size());
}
BENCHMARK(BM_ExprFilterEval);

void BM_ColumnFileRoundTrip(benchmark::State& state) {
  ColumnTablePtr table = ColumnTable::FromRowVector(*MakeKv(1 << 16, 1000));
  for (auto _ : state) {
    std::string bytes = storage::WriteColumnFile(*table);
    auto reader = storage::ColumnFileReader::Open(
        std::make_shared<storage::StringReader>(bytes));
    if (!reader.ok()) state.SkipWithError("open failed");
    auto part = (*reader)->ReadRowGroup(0, {});
    benchmark::DoNotOptimize(part);
  }
  state.SetItemsProcessed(state.iterations() * table->num_rows());
}
BENCHMARK(BM_ColumnFileRoundTrip);

}  // namespace
}  // namespace modularis

BENCHMARK_MAIN();
