/// \file bench_micro.cc
/// Microbenchmarks of the hot sub-operator primitives: radix
/// histogram/scatter, join hash table, ReduceByKey, expression
/// evaluation, the ColumnFile codec, and the partition→build→probe
/// pipeline with the vectorized batch path on and off. These are the
/// "model performance" numbers (§5.2.2) at the smallest granularity.
///
/// Standalone driver (no google-benchmark): prints a table and writes
/// machine-readable results to BENCH_micro.json (or argv[1]) so the
/// perf trajectory is tracked across PRs.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/exec_context.h"
#include "core/expr.h"
#include "core/fault.h"
#include "core/expr_bc.h"
#include "core/parallel.h"
#include "core/pipeline.h"
#include "mpi/mpi_ops.h"
#include "planner/lower.h"
#include "planner/passes.h"
#include "storage/blob_store.h"
#include "storage/column_file.h"
#include "tpch/queries.h"
#include "suboperators/agg_ops.h"
#include "suboperators/basic_ops.h"
#include "suboperators/join_ops.h"
#include "suboperators/partition_ops.h"
#include "suboperators/scan_ops.h"

namespace modularis {
namespace {

struct BenchResult {
  std::string op;
  size_t rows = 0;
  double seconds = 0;
  double rows_per_sec = 0;
  double bytes_per_sec = 0;
  int vectorized = -1;  // -1: not applicable, 0: off, 1: on
  int threads = 0;      // 0: not applicable (single-thread legacy entry)
};

std::vector<BenchResult>* Results() {
  static std::vector<BenchResult> results;
  return &results;
}

/// Times `fn` (best of a few runs after one warmup) and records a result.
/// `threads` > 0 tags a thread-scaling entry; the printed per-thread
/// throughput is aggregate / threads.
BenchResult RunBench(const std::string& op, size_t rows, size_t bytes,
                     int vectorized, const std::function<void()>& fn,
                     int threads = 0) {
  using clock = std::chrono::steady_clock;
  fn();  // warmup
  double best = 1e300;
  double total = 0;
  for (int iter = 0; iter < 5 && total < 1.0; ++iter) {
    auto start = clock::now();
    fn();
    double secs = std::chrono::duration<double>(clock::now() - start).count();
    best = std::min(best, secs);
    total += secs;
  }
  BenchResult r;
  r.op = op;
  r.rows = rows;
  r.seconds = best;
  r.rows_per_sec = static_cast<double>(rows) / best;
  r.bytes_per_sec = static_cast<double>(bytes) / best;
  r.vectorized = vectorized;
  r.threads = threads;
  Results()->push_back(r);
  if (threads > 0) {
    std::printf(
        "%-32s %10zu rows  %10.3f ms  %8.1f Mrows/s  %8.1f Mrows/s/thread"
        "  [%d threads]\n",
        op.c_str(), rows, best * 1e3, r.rows_per_sec / 1e6,
        r.rows_per_sec / threads / 1e6, threads);
  } else {
    std::printf(
        "%-32s %10zu rows  %10.3f ms  %8.1f Mrows/s  %8.1f MB/s%s\n",
        op.c_str(), rows, best * 1e3, r.rows_per_sec / 1e6,
        r.bytes_per_sec / 1e6,
        vectorized < 0 ? ""
                       : (vectorized ? "  [vectorized]" : "  [row-at-a-time]"));
  }
  return r;
}

RowVectorPtr MakeKv(int64_t rows, int64_t key_space, uint32_t seed = 42,
                    /// >0: key = i / dup (each key `dup` times, in order).
                    int sequential_dup = 0) {
  RowVectorPtr data = RowVector::Make(KeyValueSchema());
  data->Reserve(rows);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> dist(0, key_space - 1);
  for (int64_t i = 0; i < rows; ++i) {
    RowWriter w = data->AppendRow();
    w.SetInt64(0, sequential_dup > 0 ? i / sequential_dup : dist(rng));
    w.SetInt64(1, i);
  }
  return data;
}

void BenchRadixHistogram() {
  RowVectorPtr data = MakeKv(1 << 20, 1 << 20);
  RadixSpec spec{8, 0, RadixHash::kIdentity};
  std::vector<int64_t> counts(spec.fanout());
  RunBench("radix_histogram", data->size(), data->byte_size(), -1, [&] {
    std::fill(counts.begin(), counts.end(), 0);
    CountRows(*data, spec, 0, counts.data());
  });
}

void BenchRadixScatter() {
  RowVectorPtr data = MakeKv(1 << 20, 1 << 20);
  RadixSpec spec{8, 0, RadixHash::kIdentity};
  RunBench("radix_scatter", data->size(), data->byte_size(), -1, [&] {
    std::vector<RowVectorPtr> parts;
    for (int p = 0; p < spec.fanout(); ++p) {
      parts.push_back(RowVector::Make(KeyValueSchema()));
    }
    ScatterRows(*data, spec, 0, &parts);
  });
  // Pre-sized variant: exact per-partition allocation from a histogram,
  // rows written in place at prefix offsets.
  std::vector<int64_t> counts(spec.fanout(), 0);
  CountRows(*data, spec, 0, counts.data());
  RunBench("radix_scatter_presized", data->size(), data->byte_size(), -1,
           [&] {
             std::vector<RowVectorPtr> parts;
             std::vector<size_t> cursors(spec.fanout(), 0);
             for (int p = 0; p < spec.fanout(); ++p) {
               RowVectorPtr part = RowVector::Make(KeyValueSchema());
               part->ResizeRows(static_cast<size_t>(counts[p]));
               parts.push_back(std::move(part));
             }
             Status st =
                 ScatterSpanPresized(data->data(), data->size(),
                                     data->schema(), spec, 0, &parts,
                                     &cursors);
             if (!st.ok()) std::abort();
           });
}

void BenchJoinHashTable() {
  const int64_t n = 1 << 18;
  RowVectorPtr build = MakeKv(n, n);
  RunBench("join_hash_table", 2 * n, 2 * build->byte_size(), -1, [&] {
    JoinHashTable table;
    table.Reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      table.Insert(build->row(i).GetInt64(0), static_cast<uint32_t>(i));
    }
    int64_t hits = 0;
    for (int64_t i = 0; i < n; ++i) {
      hits += table.Find(i) != JoinHashTable::kNone;
    }
    if (hits < 0) std::abort();  // keep the loop observable
  });
}

void BenchReduceByKey(bool vectorized) {
  RowVectorPtr data = MakeKv(1 << 20, 1 << 16);
  ExecContext ctx;
  ctx.options.enable_vectorized = vectorized;
  ctx.options.num_threads = 1;  // legacy entry: single-thread baseline
  RunBench("reduce_by_key", data->size(), data->byte_size(),
           vectorized ? 1 : 0, [&] {
             ReduceByKey rk(
                 std::make_unique<RowScan>(std::make_unique<CollectionSource>(
                     std::vector<RowVectorPtr>{data})),
                 {0},
                 {AggSpec{AggKind::kSum, ex::Col(1), "sum", AtomType::kInt64}},
                 KeyValueSchema());
             if (!rk.Open(&ctx).ok()) std::abort();
             Tuple t;
             int64_t groups = 0;
             while (rk.Next(&t)) ++groups;
             if (groups == 0) std::abort();
           });
}

void BenchExprFilterEval() {
  RowVectorPtr data = MakeKv(1 << 18, 1000);
  ExprPtr pred = ex::And(ex::Ge(ex::Col(0), ex::Lit(int64_t{100})),
                         ex::Lt(ex::Col(0), ex::Lit(int64_t{900})));
  RunBench("expr_filter_eval", data->size(), data->byte_size(), -1, [&] {
    int64_t matches = 0;
    for (size_t i = 0; i < data->size(); ++i) {
      matches += pred->EvalBool(data->row(i));
    }
    if (matches < 0) std::abort();
  });
}

/// Selectivity sweep: interpreted per-row EvalBool vs the batch predicate
/// kernel (selection-vector narrowing) at 1% / 50% / 99% pass rates.
void BenchFilterSelectivity() {
  RowVectorPtr data = MakeKv(1 << 20, 1000);
  struct Point {
    const char* name;
    int64_t bound;  // keys are uniform in [0, 1000)
  };
  for (const Point& p : {Point{"p01", 10}, Point{"p50", 500},
                         Point{"p99", 990}}) {
    ExprPtr pred = ex::And(ex::Ge(ex::Col(0), ex::Lit(int64_t{0})),
                           ex::Lt(ex::Col(0), ex::Lit(p.bound)));
    size_t interp_matches = 0, batch_matches = 0;
    RunBench(std::string("expr_filter_interp_") + p.name, data->size(),
             data->byte_size(), 0, [&] {
               size_t matches = 0;
               for (size_t i = 0; i < data->size(); ++i) {
                 matches += pred->EvalBool(data->row(i));
               }
               interp_matches = matches;
             });
    BatchScratch scratch;
    SelVector sel;
    RunBench(std::string("expr_filter_batch_") + p.name, data->size(),
             data->byte_size(), 1, [&] {
               RowSpan span{data->data(), data->row_size(), &data->schema()};
               size_t matches = 0;
               for (size_t base = 0; base < data->size();
                    base += RowBatch::kDefaultRows) {
                 size_t n = std::min(data->size() - base,
                                     RowBatch::kDefaultRows);
                 sel.resize(n);
                 for (size_t i = 0; i < n; ++i) {
                   sel[i] = static_cast<uint32_t>(base + i);
                 }
                 Status st = pred->FilterBatch(span, &sel, &scratch);
                 if (!st.ok()) std::abort();
                 matches += sel.size();
               }
               batch_matches = matches;
             });
    if (interp_matches != batch_matches) {
      std::fprintf(stderr, "FAIL: filter %s mismatch (%zu vs %zu)\n", p.name,
                   interp_matches, batch_matches);
      std::exit(1);
    }
    // The compiled tier: fused comparison/range opcodes over the same
    // predicate, batch-sized runs like the interpreted kernel above.
    BcProgram prog = BcProgram::CompileFilter(pred, data->schema());
    BcState state;
    size_t bc_matches = 0;
    RunBench(std::string("expr_bytecode_filter_") + p.name, data->size(),
             data->byte_size(), 1, [&] {
               RowSpan span{data->data(), data->row_size(), &data->schema()};
               size_t matches = 0;
               for (size_t base = 0; base < data->size();
                    base += RowBatch::kDefaultRows) {
                 size_t n = std::min(data->size() - base,
                                     RowBatch::kDefaultRows);
                 sel.resize(n);
                 for (size_t i = 0; i < n; ++i) {
                   sel[i] = static_cast<uint32_t>(base + i);
                 }
                 Status st = prog.RunFilter(span, &sel, &state);
                 if (!st.ok()) std::abort();
                 matches += sel.size();
               }
               bc_matches = matches;
             });
    if (bc_matches != interp_matches) {
      std::fprintf(stderr, "FAIL: bytecode filter %s mismatch (%zu vs %zu)\n",
                   p.name, bc_matches, interp_matches);
      std::exit(1);
    }
  }
}

/// Group-by key path: KeyCodec::SerializeKeys + HashKeysSpan (the
/// interpreted pair) vs the fused KeyProgram, over a two-i64-column key
/// (serialized width 16 — the unrolled hash form ReduceByKey probes
/// with).
void BenchKeySerializeHash() {
  RowVectorPtr data = MakeKv(1 << 20, 1000);
  const std::vector<int> key_cols = {0, 1};
  KeyCodec codec(data->schema(), key_cols);
  KeyProgram prog(data->schema(), key_cols);
  const uint32_t ks = codec.key_size();
  constexpr size_t kChunk = 2048;
  std::vector<uint8_t> keys(kChunk * ks);
  std::vector<uint64_t> hashes(kChunk);
  RowSpan span{data->data(), data->row_size(), &data->schema()};
  uint64_t interp_sum = 0, bc_sum = 0;
  RunBench("expr_keys_interp", data->size(), data->byte_size(), 0, [&] {
    uint64_t sum = 0;
    for (size_t base = 0; base < data->size(); base += kChunk) {
      const size_t m = std::min(data->size() - base, kChunk);
      codec.SerializeKeys(span, base, m, keys.data());
      HashKeysSpan(keys.data(), m, ks, hashes.data());
      for (size_t i = 0; i < m; ++i) sum ^= hashes[i];
    }
    interp_sum = sum;
  });
  RunBench("expr_bytecode_keys", data->size(), data->byte_size(), 1, [&] {
    uint64_t sum = 0;
    for (size_t base = 0; base < data->size(); base += kChunk) {
      const size_t m = std::min(data->size() - base, kChunk);
      prog.SerializeAndHash(span, base, m, keys.data(), hashes.data());
      for (size_t i = 0; i < m; ++i) sum ^= hashes[i];
    }
    bc_sum = sum;
  });
  if (interp_sum != bc_sum) {
    std::fprintf(stderr, "FAIL: key serialize+hash mismatch\n");
    std::exit(1);
  }
}

/// The acceptance bench for the selection-vector path: Filter + Map over
/// 1M rows, row-at-a-time oracle vs the batch-kernel path on an
/// identically shaped plan.
size_t RunFilterMap(const RowVectorPtr& data, bool vectorized) {
  ExecContext ctx;
  ctx.options.enable_vectorized = vectorized;
  ctx.options.num_threads = 1;  // legacy entry: single-thread baseline
  Schema out({Field::I64("k2"), Field::F64("r"), Field::I64("v")});
  auto filter = std::make_unique<Filter>(
      std::make_unique<RowScan>(std::make_unique<CollectionSource>(
          std::vector<RowVectorPtr>{data})),
      ex::And(ex::Ge(ex::Col(0), ex::Lit(int64_t{100})),
              ex::Lt(ex::Col(0), ex::Lit(int64_t{600}))));
  MapOp map(std::move(filter), out,
            {MapOutput::Compute(ex::Mul(ex::Col(0), ex::Lit(int64_t{2}))),
             MapOutput::Compute(ex::Div(ex::Col(1), ex::Lit(7.0))),
             MapOutput::Pass(1)});
  if (!map.Open(&ctx).ok()) std::abort();
  size_t rows = 0;
  if (vectorized) {
    RowBatch batch;
    while (map.NextBatch(&batch)) rows += batch.size();
  } else {
    Tuple t;
    while (map.Next(&t)) ++rows;
  }
  if (!map.status().ok()) std::abort();
  if (!map.Close().ok()) std::abort();
  return rows;
}

void BenchFilterMap() {
  RowVectorPtr data = MakeKv(1 << 20, 1000);
  size_t rows_off = 0, rows_on = 0;
  BenchResult off = RunBench("filter_map", data->size(), data->byte_size(), 0,
                             [&] { rows_off = RunFilterMap(data, false); });
  BenchResult on = RunBench("filter_map", data->size(), data->byte_size(), 1,
                            [&] { rows_on = RunFilterMap(data, true); });
  if (rows_off != rows_on || rows_off == 0) {
    std::fprintf(stderr, "FAIL: filter_map mismatch (%zu vs %zu rows)\n",
                 rows_off, rows_on);
    std::exit(1);
  }
  std::printf("filter_map speedup: %.2fx (batch kernels vs interpreted "
              "per-row, %zu result rows)\n",
              off.seconds / on.seconds, rows_on);
}

void BenchColumnFileRoundTrip() {
  ColumnTablePtr table = ColumnTable::FromRowVector(*MakeKv(1 << 16, 1000));
  RunBench("column_file_roundtrip", table->num_rows(),
           table->num_rows() * 16, -1, [&] {
             std::string bytes = storage::WriteColumnFile(*table);
             auto reader = storage::ColumnFileReader::Open(
                 std::make_shared<storage::StringReader>(bytes));
             if (!reader.ok()) std::abort();
             auto part = (*reader)->ReadRowGroup(0, {});
             if (!part.ok()) std::abort();
           });
}

/// The acceptance microbenchmark: a full local partition→build→probe
/// pipeline (histograms, pre-sized partitioning, per-partition-pair hash
/// join via NestedMap) over ≥1M rows per side, built with explicit
/// RowScans so the only difference between the two runs is the
/// enable_vectorized toggle.
size_t RunPartitionBuildProbe(const RowVectorPtr& r, const RowVectorPtr& s,
                              bool vectorized, int num_threads = 1) {
  ExecContext ctx;
  ctx.options.enable_vectorized = vectorized;
  ctx.options.num_threads = num_threads;
  // 256-way partitioning keeps each per-pair hash table L1/L2-resident
  // (the cache-conscious discipline the local partition pass exists for).
  RadixSpec spec{8, 0, RadixHash::kIdentity};
  const Schema kv = KeyValueSchema();

  auto plan = std::make_unique<PipelinePlan>();
  auto scan_r = [&] {
    return std::make_unique<RowScan>(std::make_unique<CollectionSource>(
        std::vector<RowVectorPtr>{r}));
  };
  auto scan_s = [&] {
    return std::make_unique<RowScan>(std::make_unique<CollectionSource>(
        std::vector<RowVectorPtr>{s}));
  };
  plan->Add("lh_r", std::make_unique<LocalHistogram>(scan_r(), spec, 0));
  plan->Add("lp_r", std::make_unique<LocalPartition>(
                        scan_r(), plan->MakeRef("lh_r"), spec, 0));
  plan->Add("lh_s", std::make_unique<LocalHistogram>(scan_s(), spec, 0));
  plan->Add("lp_s", std::make_unique<LocalPartition>(
                        scan_s(), plan->MakeRef("lh_s"), spec, 0));

  auto zip = std::make_unique<Zip>(plan->MakeRef("lp_r"),
                                   plan->MakeRef("lp_s"));
  // Nested plan per partition pair: ⟨pid, R_p, pid, S_p⟩.
  auto bp = std::make_unique<BuildProbe>(
      std::make_unique<RowScan>(std::make_unique<Projection>(
          std::make_unique<ParameterLookup>(), std::vector<int>{1})),
      std::make_unique<RowScan>(std::make_unique<Projection>(
          std::make_unique<ParameterLookup>(), std::vector<int>{3})),
      kv, kv, /*build_key_col=*/0, /*probe_key_col=*/0);
  Schema out_schema = bp->out_schema();
  auto nested_root =
      std::make_unique<MaterializeRowVector>(std::move(bp), out_schema);
  auto nested =
      std::make_unique<NestedMap>(std::move(zip), std::move(nested_root));
  plan->SetOutput(std::move(nested));

  // Drain the same plan through the protocol under test: batches when
  // vectorized, tuples otherwise.
  if (!plan->Open(&ctx).ok()) std::abort();
  size_t out_rows = 0;
  if (vectorized) {
    RowBatch batch;
    while (plan->NextBatch(&batch)) out_rows += batch.size();
  } else {
    Tuple t;
    while (plan->Next(&t)) {
      out_rows += t[0].collection()->size();
    }
  }
  if (!plan->status().ok()) std::abort();
  if (!plan->Close().ok()) std::abort();
  return out_rows;
}

void BenchPartitionBuildProbe() {
  const int64_t n = 1 << 20;  // 1M rows per side
  // FK-join shape (think orders ⋈ lineitem): the build side holds every
  // key four times, the probe side draws uniformly from the key domain —
  // every probe row matches a four-element duplicate chain.
  RowVectorPtr r = MakeKv(n, n / 4, /*seed=*/1, /*sequential_dup=*/4);
  RowVectorPtr s = MakeKv(n, n / 4, /*seed=*/2);
  const size_t in_rows = static_cast<size_t>(2 * n);
  const size_t in_bytes = r->byte_size() + s->byte_size();

  size_t rows_off = 0, rows_on = 0;
  BenchResult off =
      RunBench("partition_build_probe", in_rows, in_bytes, 0,
               [&] { rows_off = RunPartitionBuildProbe(r, s, false); });
  BenchResult on =
      RunBench("partition_build_probe", in_rows, in_bytes, 1,
               [&] { rows_on = RunPartitionBuildProbe(r, s, true); });
  if (rows_off != rows_on) {
    std::fprintf(stderr, "FAIL: result mismatch (%zu vs %zu rows)\n",
                 rows_off, rows_on);
    std::exit(1);
  }
  std::printf("partition_build_probe speedup: %.2fx (vectorized vs "
              "row-at-a-time, %zu result rows)\n",
              off.seconds / on.seconds, rows_on);
}

/// Grace-spill join (docs/DESIGN-memory.md): the same 1M x 1M FK-join
/// shape as partition_build_probe, but as a single unpartitioned
/// BuildProbe under a memory limit at 1/4 of the build side — both sides
/// are radix-scattered to an in-memory blob store, build partitions
/// beyond the hybrid resident prefix spill, and every probe row takes the
/// partition detour. Reported only (the interesting number is the
/// slowdown vs partition_build_probe), after a byte-equality check
/// against the unlimited in-memory run.
void BenchJoinSpill() {
  const int64_t n = 1 << 20;
  RowVectorPtr r = MakeKv(n, n / 4, /*seed=*/1, /*sequential_dup=*/4);
  RowVectorPtr s = MakeKv(n, n / 4, /*seed=*/2);
  const Schema kv = KeyValueSchema();
  storage::BlobStore spill_store;

  auto run_one = [&](size_t mem_limit, uint64_t* checksum) {
    ExecContext ctx;
    ctx.options.memory_limit_bytes = mem_limit;
    MemoryBudget budget(mem_limit);
    ctx.budget = &budget;
    ctx.spill_store = &spill_store;
    BuildProbe bp(std::make_unique<RowScan>(std::make_unique<CollectionSource>(
                      std::vector<RowVectorPtr>{r})),
                  std::make_unique<RowScan>(std::make_unique<CollectionSource>(
                      std::vector<RowVectorPtr>{s})),
                  kv, kv, /*build_key_col=*/0, /*probe_key_col=*/0);
    if (!bp.Open(&ctx).ok()) std::abort();
    const size_t stride = bp.out_schema().row_size();
    uint64_t h = 1469598103934665603ull;  // FNV-1a over emitted bytes
    size_t rows = 0;
    RowBatch batch;
    while (bp.NextBatch(&batch)) {
      rows += batch.size();
      if (checksum != nullptr) {
        for (size_t i = 0; i < batch.size(); ++i) {
          const uint8_t* p = batch.row(i).data();
          for (size_t b = 0; b < stride; ++b) h = (h ^ p[b]) * 1099511628211ull;
        }
      }
    }
    if (!bp.status().ok() || !bp.Close().ok()) std::abort();
    if (rows == 0) std::abort();
    if (checksum != nullptr) *checksum = h;
  };

  const size_t limit = r->byte_size() / 4;
  uint64_t mem_sum = 0, spill_sum = 0;
  run_one(0, &mem_sum);
  run_one(limit, &spill_sum);
  if (mem_sum != spill_sum) {
    std::fprintf(stderr, "FAIL: join_spill_1m output differs from the "
                         "in-memory join\n");
    std::exit(1);
  }
  RunBench("join_spill_1m", static_cast<size_t>(2 * n),
           r->byte_size() + s->byte_size(), 1,
           [&] { run_one(limit, nullptr); });
}

/// Thread-scaling sweep (1/2/4/8 workers) for the three hot pipelines the
/// ISSUE gates: the partition→build→probe plan, ReduceByKey, and the p50
/// batch filter kernel. Entries are named <op>_t<N> and carry a
/// "threads" field; the committed single-thread entries stay untouched so
/// old baselines keep comparing. bench_gate.py checks the 4-thread
/// speedup ratio on machines with >= 4 cores.
void BenchThreadScaling() {
  const std::vector<int> sweep = {1, 2, 4, 8};

  // partition_build_probe: same 1M x 1M FK-join shape as the legacy bench.
  {
    const int64_t n = 1 << 20;
    RowVectorPtr r = MakeKv(n, n / 4, /*seed=*/1, /*sequential_dup=*/4);
    RowVectorPtr s = MakeKv(n, n / 4, /*seed=*/2);
    const size_t in_rows = static_cast<size_t>(2 * n);
    const size_t in_bytes = r->byte_size() + s->byte_size();
    size_t rows_t1 = 0;
    for (int t : sweep) {
      size_t rows = 0;
      RunBench("partition_build_probe_t" + std::to_string(t), in_rows,
               in_bytes, 1,
               [&] { rows = RunPartitionBuildProbe(r, s, true, t); }, t);
      if (t == 1) {
        rows_t1 = rows;
      } else if (rows != rows_t1) {
        std::fprintf(stderr,
                     "FAIL: partition_build_probe t%d mismatch (%zu vs %zu)\n",
                     t, rows, rows_t1);
        std::exit(1);
      }
    }
  }

  // reduce_by_key: 1M rows, 64k groups, i64 SUM (the parallel-safe shape).
  {
    RowVectorPtr data = MakeKv(1 << 20, 1 << 16);
    size_t groups_t1 = 0;
    for (int t : sweep) {
      size_t groups = 0;
      ExecContext ctx;
      ctx.options.num_threads = t;
      RunBench("reduce_by_key_t" + std::to_string(t), data->size(),
               data->byte_size(), 1,
               [&] {
                 ReduceByKey rk(
                     std::make_unique<RowScan>(
                         std::make_unique<CollectionSource>(
                             std::vector<RowVectorPtr>{data})),
                     {0},
                     {AggSpec{AggKind::kSum, ex::Col(1), "sum",
                              AtomType::kInt64}},
                     KeyValueSchema());
                 if (!rk.Open(&ctx).ok()) std::abort();
                 Tuple tup;
                 size_t g = 0;
                 while (rk.Next(&tup)) ++g;
                 if (!rk.status().ok() || !rk.Close().ok()) std::abort();
                 groups = g;
               },
               t);
      if (t == 1) {
        groups_t1 = groups;
      } else if (groups != groups_t1) {
        std::fprintf(stderr, "FAIL: reduce_by_key t%d mismatch (%zu vs %zu)\n",
                     t, groups, groups_t1);
        std::exit(1);
      }
      if (ctx.stats->GetCounter("parallel.serial_fallback.ReduceByKey") != 0) {
        std::fprintf(stderr, "FAIL: reduce_by_key t%d fell back to serial\n",
                     t);
        std::exit(1);
      }
    }
  }

  // expr_filter_batch_p50: the 50%-selectivity predicate kernel over
  // static worker ranges (each worker owns its scratch and selection).
  {
    RowVectorPtr data = MakeKv(1 << 20, 1000);
    ExprPtr pred = ex::And(ex::Ge(ex::Col(0), ex::Lit(int64_t{0})),
                           ex::Lt(ex::Col(0), ex::Lit(int64_t{500})));
    size_t matches_t1 = 0;
    for (int t : sweep) {
      size_t matches = 0;
      RunBench("expr_filter_batch_p50_t" + std::to_string(t), data->size(),
               data->byte_size(), 1,
               [&] {
                 std::vector<size_t> bounds = SplitRows(data->size(), t);
                 std::vector<size_t> counts(t, 0);
                 Status st = ParallelFor(t, [&](int w) -> Status {
                   BatchScratch scratch;
                   SelVector sel;
                   RowSpan span{data->data(), data->row_size(),
                                &data->schema()};
                   size_t local = 0;
                   for (size_t base = bounds[w]; base < bounds[w + 1];
                        base += RowBatch::kDefaultRows) {
                     size_t m = std::min(bounds[w + 1] - base,
                                         RowBatch::kDefaultRows);
                     sel.resize(m);
                     for (size_t i = 0; i < m; ++i) {
                       sel[i] = static_cast<uint32_t>(base + i);
                     }
                     MODULARIS_RETURN_NOT_OK(
                         pred->FilterBatch(span, &sel, &scratch));
                     local += sel.size();
                   }
                   counts[w] = local;
                   return Status::OK();
                 });
                 if (!st.ok()) std::abort();
                 matches = 0;
                 for (size_t c : counts) matches += c;
               },
               t);
      if (t == 1) {
        matches_t1 = matches;
      } else if (matches != matches_t1) {
        std::fprintf(stderr,
                     "FAIL: expr_filter_batch_p50 t%d mismatch (%zu vs %zu)\n",
                     t, matches, matches_t1);
        std::exit(1);
      }
    }
  }
}

/// Sort/TopK thread sweep (1/2/4/8): 1M rows with an f64 sort key — the
/// exact shape the NaN-comparator fix and the parallel run-sort +
/// loser-tree merge target. `sort_1m` drains the full sorted stream
/// through the native batch path; `topk_1m` (k = 100) exercises the
/// bounded per-run selection that replaced TopK's old sort-everything
/// path — bench_gate.py requires it to beat the full sort. Output bytes
/// are checksummed and compared across thread counts, so a determinism
/// regression fails the bench run itself, not just the parity suite.
void BenchSortTopK() {
  const size_t n = 1 << 20;
  const size_t k = 100;
  Schema schema({Field::F64("key"), Field::I64("v")});
  RowVectorPtr data = RowVector::Make(schema);
  data->Reserve(n);
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> dist(-1e6, 1e6);
  for (size_t i = 0; i < n; ++i) {
    RowWriter w = data->AppendRow();
    w.SetFloat64(0, std::floor(dist(rng)));  // duplicate-heavy keys
    w.SetInt64(1, static_cast<int64_t>(i));
  }

  auto make_sort = [&]() {
    return std::make_unique<SortOp>(
        std::make_unique<RowScan>(std::make_unique<CollectionSource>(
            std::vector<RowVectorPtr>{data})),
        std::vector<SortKey>{{0, false}}, schema);
  };
  auto make_topk = [&]() {
    return std::make_unique<TopK>(
        std::make_unique<RowScan>(std::make_unique<CollectionSource>(
            std::vector<RowVectorPtr>{data})),
        std::vector<SortKey>{{0, false}}, k, schema);
  };
  // `checksum` null in the timed runs: the FNV byte loop is serial bench
  // overhead that would dilute the 4-thread speedup the gate measures.
  auto drain = [&](SubOperator* op, int threads, uint64_t* checksum) {
    ExecContext ctx;
    ctx.options.num_threads = threads;
    if (!op->Open(&ctx).ok()) std::abort();
    uint64_t h = 1469598103934665603ull;  // FNV-1a over emitted bytes
    size_t rows = 0;
    RowBatch batch;
    while (op->NextBatch(&batch)) {
      if (checksum != nullptr) {
        const uint8_t* p = batch.data();
        const size_t bytes = batch.byte_size();
        for (size_t i = 0; i < bytes; ++i) h = (h ^ p[i]) * 1099511628211ull;
      }
      rows += batch.size();
    }
    if (!op->status().ok() || !op->Close().ok()) std::abort();
    if (checksum != nullptr) *checksum = h;
    return rows;
  };

  uint64_t sort_sum_t1 = 0, topk_sum_t1 = 0;
  for (int t : {1, 2, 4, 8}) {
    // Untimed determinism pass first: output bytes must match t1 exactly.
    uint64_t sort_sum = 0, topk_sum = 0;
    if (drain(make_sort().get(), t, &sort_sum) != n) std::abort();
    if (drain(make_topk().get(), t, &topk_sum) != k) std::abort();
    if (t == 1) {
      sort_sum_t1 = sort_sum;
      topk_sum_t1 = topk_sum;
    } else if (sort_sum != sort_sum_t1 || topk_sum != topk_sum_t1) {
      std::fprintf(stderr, "FAIL: sort/topk t%d output differs from t1\n", t);
      std::exit(1);
    }
    RunBench("sort_1m_t" + std::to_string(t), n, data->byte_size(), 1,
             [&] {
               auto sort = make_sort();
               if (drain(sort.get(), t, nullptr) != n) std::abort();
             },
             t);
    RunBench("topk_1m_t" + std::to_string(t), n, data->byte_size(), 1,
             [&] {
               auto topk = make_topk();
               if (drain(topk.get(), t, nullptr) != k) std::abort();
             },
             t);
  }
}

/// Cardinality-sweep group-by benches for the partition-owned parallel
/// aggregation path: 1M rows at 16 / 64k / 1M groups, over int, string
/// and multi-column (i64 + string) keys, swept at 1/2/4/8 threads.
/// Entries are named groupby_1m_<shape>_<g16|g64k|g1m>_t<N>;
/// bench_gate.py requires the g64k int and string shapes to reach a
/// 4-thread speedup >= 1.8x on machines with >= 4 hardware threads.
/// Output bytes are checksummed and compared across thread counts (a
/// determinism regression fails the bench run itself), and every
/// parallel run must report zero ReduceByKey fallbacks and zero
/// mid-aggregation rehashes.
void BenchGroupBy() {
  const size_t n = 1 << 20;
  struct Card {
    const char* name;
    int64_t groups;
  };
  const Card cards[] = {{"g16", 16}, {"g64k", 1 << 16}, {"g1m", 1 << 20}};

  Schema str_schema({Field::Str("k", 12), Field::F64("v")});
  Schema multi_schema({Field::I64("k1"), Field::Str("k2", 8), Field::F64("v")});

  auto make_int = [&](int64_t groups) {
    return MakeKv(n, groups, /*seed=*/7);
  };
  auto make_str = [&](int64_t groups) {
    RowVectorPtr data = RowVector::Make(str_schema);
    data->Reserve(n);
    std::mt19937_64 rng(11);
    std::uniform_int_distribution<int64_t> dist(0, groups - 1);
    std::uniform_real_distribution<double> fdist(-1000.0, 1000.0);
    for (size_t i = 0; i < n; ++i) {
      RowWriter w = data->AppendRow();
      w.SetString(0, "k" + std::to_string(dist(rng)));
      w.SetFloat64(1, fdist(rng));
    }
    return data;
  };
  auto make_multi = [&](int64_t groups) {
    // Composite cardinality: k1 in [0, groups/16), k2 in 16 values.
    RowVectorPtr data = RowVector::Make(multi_schema);
    data->Reserve(n);
    std::mt19937_64 rng(13);
    const int64_t hi = groups / 16 > 0 ? groups / 16 : 1;
    std::uniform_int_distribution<int64_t> dist(0, hi - 1);
    std::uniform_int_distribution<int64_t> lo(0, 15);
    std::uniform_real_distribution<double> fdist(-1000.0, 1000.0);
    for (size_t i = 0; i < n; ++i) {
      RowWriter w = data->AppendRow();
      w.SetInt64(0, dist(rng));
      w.SetString(1, "m" + std::to_string(lo(rng)));
      w.SetFloat64(2, fdist(rng));
    }
    return data;
  };

  struct Shape {
    const char* name;
    RowVectorPtr data;
    std::vector<int> keys;
    int agg_col;
    AtomType agg_type;
  };

  auto run_one = [&](const Shape& shape, int threads, uint64_t* checksum,
                     size_t* groups_out,
                     const CancellationToken* cancel = nullptr,
                     size_t mem_limit = 0,
                     storage::BlobStore* spill_store = nullptr) {
    ExecContext ctx;
    ctx.options.num_threads = threads;
    ctx.options.memory_limit_bytes = mem_limit;
    ctx.cancel = cancel;
    MemoryBudget budget(mem_limit);
    ctx.budget = &budget;
    ctx.spill_store = spill_store;
    std::vector<AggSpec> aggs;
    aggs.push_back(AggSpec{AggKind::kSum, ex::Col(shape.agg_col), "s",
                           shape.agg_type});
    aggs.push_back(
        AggSpec{AggKind::kCount, nullptr, "c", AtomType::kInt64});
    ReduceByKey rk(std::make_unique<RowScan>(
                       std::make_unique<CollectionSource>(
                           std::vector<RowVectorPtr>{shape.data})),
                   shape.keys, std::move(aggs), shape.data->schema());
    if (!rk.Open(&ctx).ok()) std::abort();
    uint64_t h = 1469598103934665603ull;  // FNV-1a over emitted bytes
    size_t groups = 0;
    Tuple t;
    while (rk.Next(&t)) {
      ++groups;
      if (checksum != nullptr) {
        const uint8_t* p = t[0].row().data();
        const size_t bytes = t[0].row().schema().row_size();
        for (size_t b = 0; b < bytes; ++b) h = (h ^ p[b]) * 1099511628211ull;
      }
    }
    if (!rk.status().ok() || !rk.Close().ok()) std::abort();
    if (threads > 1 && spill_store == nullptr) {
      if (ctx.stats->GetCounter("parallel.serial_fallback.ReduceByKey") != 0) {
        std::fprintf(stderr, "FAIL: groupby %s t%d fell back to serial\n",
                     shape.name, threads);
        std::exit(1);
      }
      if (ctx.stats->GetCounter("reduce.rehash") != 0) {
        std::fprintf(stderr, "FAIL: groupby %s t%d rehashed mid-aggregation\n",
                     shape.name, threads);
        std::exit(1);
      }
    }
    if (checksum != nullptr) *checksum = h;
    if (groups_out != nullptr) *groups_out = groups;
    return groups;
  };

  for (const Card& card : cards) {
    const Shape shapes[] = {
        {"int", make_int(card.groups), {0}, 1, AtomType::kInt64},
        {"str", make_str(card.groups), {0}, 1, AtomType::kFloat64},
        {"multi", make_multi(card.groups), {0, 1}, 2, AtomType::kFloat64},
    };
    for (const Shape& shape : shapes) {
      uint64_t sum_t1 = 0;
      for (int t : {1, 2, 4, 8}) {
        // Untimed determinism pass: output bytes must match t1 exactly.
        uint64_t sum = 0;
        size_t groups = 0;
        run_one(shape, t, &sum, &groups);
        if (t == 1) {
          sum_t1 = sum;
        } else if (sum != sum_t1) {
          std::fprintf(stderr,
                       "FAIL: groupby %s %s t%d output differs from t1\n",
                       shape.name, card.name, t);
          std::exit(1);
        }
        RunBench("groupby_1m_" + std::string(shape.name) + "_" + card.name +
                     "_t" + std::to_string(t),
                 n, shape.data->byte_size(), 1,
                 [&] { run_one(shape, t, nullptr, nullptr); }, t);
      }
      if (std::string(shape.name) == "int" &&
          std::string(card.name) == "g64k") {
        // Fault-layer hook cost on the fault-free path (bench_gate.py
        // WIN_GATES: >= 0.97x of the plain t4 run). A live deadline token
        // is polled by the morsel loop and the partition merge — the only
        // fault-layer hooks on this path — but never expires. t4 because
        // the serial path bypasses the morsel loop entirely.
        CancellationToken idle_deadline;
        idle_deadline.SetDeadlineAfter(3600.0);
        uint64_t armed_sum = 0;
        run_one(shape, 4, &armed_sum, nullptr, &idle_deadline);
        if (armed_sum != sum_t1) {
          std::fprintf(stderr,
                       "FAIL: groupby int g64k armed output differs from t1\n");
          std::exit(1);
        }
        RunBench("groupby_1m_int_g64k_faultarmed_t4", n,
                 shape.data->byte_size(), 1,
                 [&] { run_one(shape, 4, nullptr, nullptr, &idle_deadline); },
                 4);

        // Memory governance (docs/DESIGN-memory.md). Budget-armed: a
        // limit far above the input, so the run only pays the accounting
        // hooks — bench_gate.py WIN_GATES holds it within 3% of the plain
        // t4 entry. Spill: a limit at 1/8 of the input forces the
        // Grace-style partitioned aggregation through the blob store;
        // reported only, but the output must stay byte-equal to t1.
        storage::BlobStore spill_store;
        const size_t big_limit = size_t{1} << 30;
        const size_t tiny_limit = shape.data->byte_size() / 8;
        uint64_t armed2 = 0, spilled = 0;
        run_one(shape, 4, &armed2, nullptr, nullptr, big_limit, &spill_store);
        run_one(shape, 4, &spilled, nullptr, nullptr, tiny_limit,
                &spill_store);
        if (armed2 != sum_t1 || spilled != sum_t1) {
          std::fprintf(stderr,
                       "FAIL: groupby int g64k budgeted output differs from "
                       "t1 (armed %d, spill %d)\n",
                       armed2 != sum_t1, spilled != sum_t1);
          std::exit(1);
        }
        RunBench("groupby_1m_int_g64k_budgetarmed_t4", n,
                 shape.data->byte_size(), 1,
                 [&] {
                   run_one(shape, 4, nullptr, nullptr, nullptr, big_limit,
                           &spill_store);
                 },
                 4);
        RunBench("groupby_1m_int_g64k_spill", n, shape.data->byte_size(), 1,
                 [&] {
                   run_one(shape, 4, nullptr, nullptr, nullptr, tiny_limit,
                           &spill_store);
                 },
                 4);
      }
    }
  }
}

/// Network-exchange shuffle family (docs/DESIGN-exchange.md): a full
/// MpiExchange — input drain, histogram-offset scatter, one-sided window
/// writes, owned-partition materialization — on a simulated unthrottled
/// fabric.
///  * exchange_shuffle_t<N>: single-rank thread sweep; bench_gate.py
///    requires >= 2x at 4 threads on machines with >= 4 hardware threads.
///  * exchange_shuffle_rowdrain_t1: the per-tuple ablation
///    (enable_vectorized off end-to-end — every input record crosses one
///    virtual Next()); bench_gate.py requires the batched wire path to
///    beat it by >= 1.5x.
///  * exchange_shuffle_w{2,4}_t{1,4}: multi-rank shuffles, reported only.
///  * exchange_overlap_{pipelined,serialwire}: modelled fabric stall
///    seconds of the pipelined schedule vs the partition-then-send
///    ablation; the gate requires the pipelined stall to be strictly
///    lower (wire time hidden behind the scatter).
/// Owned-partition bytes are checksummed and compared across thread
/// counts and protocols before the timed runs, so a determinism
/// regression fails the bench itself.

struct ShuffleFixture {
  std::vector<RowVectorPtr> frags;       // per-rank inputs
  std::vector<RowVectorPtr> local_hists; // per-rank radix histograms
  RowVectorPtr global_hist;
  size_t rows = 0;
  size_t bytes = 0;
};

ShuffleFixture MakeShuffleFixture(int world, size_t rows_per_rank) {
  const RadixSpec spec{4, 0, RadixHash::kIdentity};
  ShuffleFixture fx;
  std::vector<int64_t> global(spec.fanout(), 0);
  for (int r = 0; r < world; ++r) {
    RowVectorPtr frag = MakeKv(rows_per_rank, 1 << 20, 77 + r);
    std::vector<int64_t> counts(spec.fanout(), 0);
    for (size_t i = 0; i < frag->size(); ++i) {
      ++counts[spec.PartitionOf(frag->row(i).GetInt64(0))];
    }
    RowVectorPtr hist = RowVector::Make(HistogramSchema());
    for (int p = 0; p < spec.fanout(); ++p) {
      hist->AppendRow().SetInt64(0, counts[p]);
      global[p] += counts[p];
    }
    fx.rows += frag->size();
    fx.bytes += frag->byte_size();
    fx.frags.push_back(std::move(frag));
    fx.local_hists.push_back(std::move(hist));
  }
  fx.global_hist = RowVector::Make(HistogramSchema());
  for (int64_t c : global) fx.global_hist->AppendRow().SetInt64(0, c);
  return fx;
}

struct ShuffleOut {
  uint64_t checksum = 1469598103934665603ull;
  size_t rows = 0;
  double stall = 0;  // fabric stall seconds summed over ranks
};

ShuffleOut RunExchangeShuffle(const ShuffleFixture& fx, int threads,
                              bool vectorized, bool serial_wire,
                              const net::FabricOptions& fabric,
                              bool checksum,
                              const CancellationToken* cancel = nullptr) {
  const RadixSpec spec{4, 0, RadixHash::kIdentity};
  const int world = static_cast<int>(fx.frags.size());
  std::vector<uint64_t> sums(world, 1469598103934665603ull);
  std::vector<size_t> rows(world, 0);
  std::vector<double> stalls(world, 0);
  Status st = mpi::MpiRuntime::Run(
      world, fabric, [&](mpi::Communicator& comm) -> Status {
        const int r = comm.rank();
        StatsRegistry stats;
        ExecContext ctx;
        ctx.rank = r;
        ctx.world = world;
        ctx.comm = &comm;
        ctx.options.enable_vectorized = vectorized;
        ctx.options.num_threads = threads;
        ctx.cancel = cancel;
        ctx.stats = &stats;
        MpiExchange::Options xopts;
        xopts.spec = spec;
        xopts.serial_wire = serial_wire;
        MpiExchange mx(
            std::make_unique<RowScan>(std::make_unique<CollectionSource>(
                std::vector<RowVectorPtr>{fx.frags[r]})),
            std::make_unique<CollectionSource>(
                std::vector<RowVectorPtr>{fx.local_hists[r]}),
            std::make_unique<CollectionSource>(
                std::vector<RowVectorPtr>{fx.global_hist}),
            xopts);
        MODULARIS_RETURN_NOT_OK(mx.Open(&ctx));
        uint64_t h = 1469598103934665603ull;  // FNV-1a over owned bytes
        auto fnv = [&h](const uint8_t* p, size_t bytes) {
          for (size_t i = 0; i < bytes; ++i) {
            h = (h ^ p[i]) * 1099511628211ull;
          }
        };
        if (vectorized) {
          RowBatch batch;
          while (mx.NextBatch(&batch)) {
            rows[r] += batch.size();
            if (checksum) fnv(batch.data(), batch.byte_size());
          }
        } else {
          Tuple t;
          while (mx.Next(&t)) {
            const RowVectorPtr& part = t[1].collection();
            rows[r] += part->size();
            if (checksum && !part->empty()) {
              fnv(part->data(), part->byte_size());
            }
          }
        }
        MODULARIS_RETURN_NOT_OK(mx.status());
        sums[r] = h;
        stalls[r] = comm.fabric().stall_seconds(r);
        return mx.Close();
      });
  if (!st.ok()) {
    std::fprintf(stderr, "FAIL: exchange_shuffle: %s\n",
                 st.ToString().c_str());
    std::exit(1);
  }
  ShuffleOut out;
  for (int r = 0; r < world; ++r) {
    out.checksum = (out.checksum ^ sums[r]) * 1099511628211ull;
    out.rows += rows[r];
    out.stall += stalls[r];
  }
  return out;
}

void BenchExchangeShuffle() {
  net::FabricOptions fast;
  fast.throttle = false;

  // Gated single-rank thread sweep over 2M rows.
  {
    ShuffleFixture fx = MakeShuffleFixture(1, 1 << 21);
    uint64_t sum_t1 = 0;
    for (int t : {1, 2, 4, 8}) {
      // Untimed determinism pass: owned bytes must match t1 exactly.
      ShuffleOut check = RunExchangeShuffle(fx, t, true, false, fast, true);
      if (check.rows != fx.rows) {
        std::fprintf(stderr, "FAIL: exchange_shuffle t%d lost rows\n", t);
        std::exit(1);
      }
      if (t == 1) {
        sum_t1 = check.checksum;
      } else if (check.checksum != sum_t1) {
        std::fprintf(stderr,
                     "FAIL: exchange_shuffle t%d output differs from t1\n", t);
        std::exit(1);
      }
      RunBench("exchange_shuffle_t" + std::to_string(t), fx.rows, fx.bytes,
               1, [&] { RunExchangeShuffle(fx, t, true, false, fast, false); },
               t);
    }
    ShuffleOut rowdrain = RunExchangeShuffle(fx, 1, false, false, fast, true);
    if (rowdrain.checksum != sum_t1) {
      std::fprintf(stderr,
                   "FAIL: exchange_shuffle per-tuple drain differs from "
                   "batched wire\n");
      std::exit(1);
    }
    RunBench("exchange_shuffle_rowdrain_t1", fx.rows, fx.bytes, 1,
             [&] { RunExchangeShuffle(fx, 1, false, false, fast, false); }, 1);

    // Fault-layer hook cost on the fault-free path (bench_gate.py
    // WIN_GATES: >= 0.97x of the plain t1 run). The armed injector runs
    // the full seeded decision path at every Put/Flush at rate 0, and a
    // live deadline token is checked by the morsel loops and drains —
    // everything the fault layer adds, with nothing ever firing.
    net::FabricOptions armed = fast;
    armed.fault.armed = true;
    CancellationToken idle_deadline;
    idle_deadline.SetDeadlineAfter(3600.0);
    ShuffleOut armed_check =
        RunExchangeShuffle(fx, 1, true, false, armed, true, &idle_deadline);
    if (armed_check.checksum != sum_t1) {
      std::fprintf(stderr,
                   "FAIL: exchange_shuffle armed output differs from t1\n");
      std::exit(1);
    }
    RunBench("exchange_shuffle_faultarmed_t1", fx.rows, fx.bytes, 1,
             [&] {
               RunExchangeShuffle(fx, 1, true, false, armed, false,
                                  &idle_deadline);
             },
             1);
  }

  // Multi-rank shuffles (reported only): ranks are threads too, so the
  // per-rank pools share the machine.
  for (int world : {2, 4}) {
    ShuffleFixture fx = MakeShuffleFixture(world, 1 << 19);
    uint64_t sum_t1 = 0;
    for (int t : {1, 4}) {
      ShuffleOut check = RunExchangeShuffle(fx, t, true, false, fast, true);
      if (t == 1) {
        sum_t1 = check.checksum;
      } else if (check.checksum != sum_t1) {
        std::fprintf(stderr,
                     "FAIL: exchange_shuffle w%d t%d output differs from t1\n",
                     world, t);
        std::exit(1);
      }
      RunBench("exchange_shuffle_w" + std::to_string(world) + "_t" +
                   std::to_string(t),
               fx.rows, fx.bytes, 1,
               [&] { RunExchangeShuffle(fx, t, true, false, fast, false); },
               t);
    }
  }

  // Overlap ablation: modelled stall of the pipelined schedule vs
  // partition-then-send on a slower wire. No sleeping (throttle off) —
  // the stall clock is the busy-clock residue at Flush.
  {
    ShuffleFixture fx = MakeShuffleFixture(1, 1 << 19);
    net::FabricOptions slow = fast;
    slow.bandwidth_bytes_per_sec = 1e9;
    // Pure bandwidth term: with a per-message latency the pipelined
    // schedule's many small write-combining Puts would be charged more
    // wire time than the ablation's few whole-partition Puts, muddying
    // the overlap comparison with a message-count effect.
    slow.latency_seconds = 0;
    double piped = 1e300, staged = 1e300;
    for (int iter = 0; iter < 3; ++iter) {
      piped = std::min(
          piped, RunExchangeShuffle(fx, 4, true, false, slow, false).stall);
      staged = std::min(
          staged, RunExchangeShuffle(fx, 4, true, true, slow, false).stall);
    }
    piped = std::max(piped, 1e-9);
    staged = std::max(staged, 1e-9);
    for (const auto& [name, stall] :
         {std::pair<const char*, double>{"exchange_overlap_pipelined", piped},
          std::pair<const char*, double>{"exchange_overlap_serialwire",
                                         staged}}) {
      BenchResult r;
      r.op = name;
      r.rows = fx.rows;
      r.seconds = stall;
      r.rows_per_sec = static_cast<double>(fx.rows) / stall;
      r.bytes_per_sec = static_cast<double>(fx.bytes) / stall;
      r.vectorized = 1;
      r.threads = 4;
      Results()->push_back(r);
    }
    std::printf(
        "exchange overlap: stall %.3f ms pipelined vs %.3f ms "
        "partition-then-send (%.2fx of the wire hidden behind compute)\n",
        piped * 1e3, staged * 1e3, staged / piped);
  }
}

/// End-to-end plan derivation: build the logical plan, optimize with a
/// populated catalog, split at the driver, and lower all four platform
/// shapes. Gated in bench_gate.py on an absolute plans/sec floor —
/// planning is microseconds per query and must stay negligible against
/// even the smallest execution. Q3 is the 3-table join (the join-order
/// pass's busiest TPC-H input); Q18 adds HAVING + the driver top-k
/// split.
void BenchPlannerBuildLower() {
  const planner::Catalog catalog =
      tpch::TpchCatalog({60000, 15000, 1500, 2000});
  struct PlatformShape {
    planner::ScanLeafKind leaf;
    bool serverless;
    bool tcp;
  };
  const PlatformShape shapes[] = {
      {planner::ScanLeafKind::kMemoryRows, false, false},
      {planner::ScanLeafKind::kMemoryRows, false, true},
      {planner::ScanLeafKind::kColumnFile, true, false},
      {planner::ScanLeafKind::kS3Select, true, false},
  };
  for (int q : {3, 18}) {
    constexpr int kIters = 200;
    RunBench(
        "planner_q" + std::to_string(q) + "_build_lower", kIters, 0, -1,
        [&] {
          for (int i = 0; i < kIters; ++i) {
            auto root = tpch::TpchLogicalPlan(q);
            if (!root.ok()) std::exit(1);
            planner::PlannerOptions popts;
            popts.catalog = catalog;
            planner::LogicalPlanPtr opt =
                planner::Optimize(root.value(), popts, nullptr);
            auto split = planner::SplitAtDriver(opt);
            if (!split.ok()) std::exit(1);
            for (const PlatformShape& shape : shapes) {
              planner::LoweringContext lctx;
              lctx.scan_leaf = shape.leaf;
              lctx.serverless = shape.serverless;
              lctx.fused = true;
              lctx.world = 4;
              lctx.exec.network_radix_bits = 4;
              lctx.exec.tcp_exchange = shape.tcp;
              lctx.tag = "bench";
              PipelinePlan plan;
              auto lowered = planner::LowerRankPlan(*split.value().rank_root,
                                                    &plan, &lctx);
              if (!lowered.ok()) std::exit(1);
            }
          }
        });
  }
}

void WriteJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "[\n");
  // Machine descriptor first: bench_gate.py only enforces the
  // thread-scaling ratios when the producing machine had the cores.
  std::fprintf(f,
               "  {\"op\": \"_meta\", \"hardware_concurrency\": %u},\n",
               std::thread::hardware_concurrency());
  const std::vector<BenchResult>& results = *Results();
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(f,
                 "  {\"op\": \"%s\", \"rows\": %zu, \"seconds\": %.6f, "
                 "\"rows_per_sec\": %.1f, \"bytes_per_sec\": %.1f, "
                 "\"vectorized\": %s",
                 r.op.c_str(), r.rows, r.seconds, r.rows_per_sec,
                 r.bytes_per_sec,
                 r.vectorized < 0 ? "null" : (r.vectorized ? "true" : "false"));
    if (r.threads > 0) {
      std::fprintf(f, ", \"threads\": %d, \"rows_per_sec_per_thread\": %.1f",
                   r.threads, r.rows_per_sec / r.threads);
    }
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s (%zu results)\n", path.c_str(), results.size());
}

}  // namespace
}  // namespace modularis

int main(int argc, char** argv) {
  using namespace modularis;
  BenchRadixHistogram();
  BenchRadixScatter();
  BenchJoinHashTable();
  BenchReduceByKey(false);
  BenchReduceByKey(true);
  BenchExprFilterEval();
  BenchFilterSelectivity();
  BenchKeySerializeHash();
  BenchFilterMap();
  BenchColumnFileRoundTrip();
  BenchPartitionBuildProbe();
  BenchJoinSpill();
  BenchThreadScaling();
  BenchSortTopK();
  BenchGroupBy();
  BenchExchangeShuffle();
  BenchPlannerBuildLower();
  WriteJson(argc > 1 ? argv[1] : "BENCH_micro.json");
  return 0;
}
