#include "serverless/serverless_ops.h"

#include <algorithm>

#include "core/parallel.h"
#include "storage/csv.h"

namespace modularis {

// ---------------------------------------------------------------------------
// LambdaExecutor
// ---------------------------------------------------------------------------

Status LambdaExecutor::Open(ExecContext* ctx) {
  ctx_ = ctx;
  status_ = Status::OK();
  results_.clear();
  arenas_.assign(config_.lambda.num_workers, {});
  emit_pos_ = 0;

  std::vector<StatsRegistry> worker_stats(config_.lambda.num_workers);
  std::vector<std::vector<Tuple>> worker_results(config_.lambda.num_workers);
  const ExecOptions options = ctx->options;

  // Query-wide token: a failing worker cancels it (on top of poisoning
  // the fleet barrier), so surviving workers stop claiming morsels and
  // abandon blob retries; the optional deadline bounds blocking waits.
  CancellationToken cancel;
  cancel.SetDeadlineAfter(options.deadline_seconds);
  serverless::LambdaRunReport report;

  Status st = serverless::LambdaRuntime::Run(
      config_.lambda, config_.store,
      [&](serverless::LambdaWorkerContext& wctx) -> Status {
        const int w = wctx.worker_id;
        // Declared before the plan: operator ScopedCharges release into
        // the budget on plan destruction, so it must outlive the plan.
        MemoryBudget budget(options.memory_limit_bytes);
        ExecContext rctx;
        rctx.rank = w;
        rctx.world = wctx.num_workers;
        rctx.blob = wctx.s3;
        rctx.budget = &budget;
        // Spilled blocking operators write through the worker's own blob
        // client path (S3 is the only storage a Lambda worker has).
        rctx.spill_store = wctx.s3->store();
        rctx.s3select = config_.s3select;
        rctx.lambda = &wctx;
        rctx.cancel = &cancel;
        rctx.options = options;
        // Lambda workers are concurrent threads of this process: split
        // the intra-node worker budget between them (see MpiExecutor).
        rctx.options.num_threads =
            std::max(1, options.ResolvedNumThreads() / wctx.num_workers);
        rctx.stats = &worker_stats[w];
        Tuple params =
            config_.worker_params ? config_.worker_params(w) : Tuple{};
        rctx.PushParams(&params);

        ScopedTimer total(rctx.stats, "phase.worker_total");
        SubOpPtr plan = config_.plan_factory(w);
        Status worker_st = [&]() -> Status {
          // Cancellation points: query start and every result tuple (see
          // MpiExecutor — serial plans must honour the deadline too).
          MODULARIS_RETURN_NOT_OK(cancel.Check());
          MODULARIS_RETURN_NOT_OK(plan->Open(&rctx));
          Tuple t;
          while (plan->Next(&t)) {
            MODULARIS_RETURN_NOT_OK(cancel.Check());
            worker_results[w].push_back(OwnTuple(t, &arenas_[w]));
          }
          MODULARIS_RETURN_NOT_OK(plan->status());
          return plan->Close();
        }();
        if (!worker_st.ok()) {
          // Stop the surviving workers' morsel loops and blob retries;
          // the runtime poisons the fleet barrier.
          cancel.Cancel(worker_st);
          return worker_st;
        }
        total.Stop();

        rctx.stats->AddTime("s3.charged", wctx.s3->charged_seconds());
        rctx.stats->AddCounter("s3.bytes", wctx.s3->bytes_transferred());
        rctx.stats->AddCounter("s3.requests", wctx.s3->requests());
        // Worker stats are folded with MergeMax, so these surface as the
        // hottest worker's peak / denial count.
        if (budget.peak() > 0) {
          rctx.stats->AddCounter("mem.peak_bytes",
                                 static_cast<int64_t>(budget.peak()));
        }
        if (budget.denials() > 0) {
          rctx.stats->AddCounter("mem.denials",
                                 static_cast<int64_t>(budget.denials()));
        }
        return Status::OK();
      },
      &report);
  // Fleet-level "fault.injected.*" counters (spawn crashes plus every
  // worker's blob-client injections), exported once per run — merged even
  // on failure so the crash that aborted the query shows up in the stats.
  // ExecContext::stats is nullable: drivers that don't collect stats
  // still run.
  if (ctx->stats != nullptr) {
    ctx->stats->Merge(report.stats);
  }
  MODULARIS_RETURN_NOT_OK(st);

  if (ctx->stats != nullptr) {
    for (const StatsRegistry& ws : worker_stats) {
      ctx->stats->MergeMax(ws);
    }
  }
  for (auto& tuples : worker_results) {
    for (Tuple& t : tuples) results_.push_back(std::move(t));
  }
  return Status::OK();
}

bool LambdaExecutor::Next(Tuple* out) {
  if (emit_pos_ >= results_.size()) return false;
  *out = results_[emit_pos_++];
  return true;
}

// ---------------------------------------------------------------------------
// S3Exchange
// ---------------------------------------------------------------------------

Status S3Exchange::DoExchange() {
  if (ctx_->blob == nullptr || ctx_->lambda == nullptr) {
    return Status::Internal("S3Exchange requires a Lambda worker context");
  }
  ScopedTimer timer(ctx_->stats, opts_.timer_key);
  const int me = ctx_->rank;
  const int world = ctx_->world;

  // Collect the per-receiver partitions (dense pid order from GroupBy /
  // Partition; missing pids become empty row groups).
  std::vector<RowVectorPtr> raw(world);
  Schema schema = KeyValueSchema();
  bool have_schema = false;
  Tuple t;
  while (child(0)->Next(&t)) {
    if (t.size() < 2 || !t[0].is_i64() || !t[1].is_collection()) {
      return Status::InvalidArgument(
          "S3Exchange expects ⟨pid, collection⟩ tuples, got " + t.ToString());
    }
    int64_t pid = t[0].i64();
    if (pid < 0 || pid >= world) {
      return Status::OutOfRange("S3Exchange: pid " + std::to_string(pid) +
                                " outside worker range");
    }
    const RowVectorPtr& data = t[1].collection();
    if (!have_schema) {
      schema = data->schema();
      have_schema = true;
    }
    raw[pid] = data;
  }
  MODULARIS_RETURN_NOT_OK(child(0)->status());

  // The row→column transposes (the wire serialization of this transport)
  // are independent per receiver: split them across the worker pool.
  // Slot-indexed results make the parallel form trivially byte-equal.
  size_t total_rows = 0;
  for (const RowVectorPtr& r : raw) {
    if (r != nullptr) total_rows += r->size();
  }
  int workers = 1;
  if (ctx_->options.enable_vectorized && total_rows > 0) {
    workers = std::min(PlanWorkers(total_rows, ctx_->options), world);
    if (workers < 1) workers = 1;
  }
  std::vector<ColumnTablePtr> parts(world);
  const std::vector<size_t> bounds =
      SplitRows(static_cast<size_t>(world), workers);
  MODULARIS_RETURN_NOT_OK(ParallelFor(ctx_, workers, [&](int w) -> Status {
    for (size_t i = bounds[w]; i < bounds[w + 1]; ++i) {
      parts[i] = raw[i] == nullptr ? ColumnTable::Make(schema)
                                   : ColumnTable::FromRowVector(*raw[i]);
    }
    return Status::OK();
  }));

  // Shared retry policy (core/fault.h); the injected Put failure fires
  // before the object lands, so the retry stores exactly one copy.
  auto put_object = [&](const std::string& key, const std::string& bytes) {
    return RetryCall(
        opts_.retry, ctx_->stats, "blob.put",
        [&] { return ctx_->blob->Put(key, bytes); }, ctx_->cancel);
  };

  if (opts_.write_combining) {
    // One object per sender; one row group per receiver (Lambada §4.4).
    std::string key = opts_.prefix + "/part-" + std::to_string(me) + ".mcf";
    MODULARIS_RETURN_NOT_OK(
        put_object(key, storage::WriteColumnFileFromParts(parts)));
  } else {
    // Ablation: one object per (sender, receiver) pair — W² requests.
    for (int r = 0; r < world; ++r) {
      std::string key = opts_.prefix + "/part-" + std::to_string(me) + "-" +
                        std::to_string(r) + ".mcf";
      MODULARIS_RETURN_NOT_OK(
          put_object(key, storage::WriteColumnFileFromParts({parts[r]})));
    }
  }

  // Stand-in for Lambada's storage-based synchronization: wait until all
  // senders have published their objects. Aborts (instead of waiting
  // forever) once a peer worker has died.
  MODULARIS_RETURN_NOT_OK(ctx_->lambda->barrier());

  // Emit the read set for this worker: its row group in every sender's
  // object.
  for (int sender = 0; sender < world; ++sender) {
    Tuple triple;
    if (opts_.write_combining) {
      triple.push_back(Item(opts_.prefix + "/part-" +
                            std::to_string(sender) + ".mcf"));
      triple.push_back(Item(static_cast<int64_t>(me)));
      triple.push_back(Item(static_cast<int64_t>(me)));
    } else {
      triple.push_back(Item(opts_.prefix + "/part-" +
                            std::to_string(sender) + "-" +
                            std::to_string(me) + ".mcf"));
      triple.push_back(Item(static_cast<int64_t>(0)));
      triple.push_back(Item(static_cast<int64_t>(0)));
    }
    out_.push_back(std::move(triple));
  }
  return Status::OK();
}

bool S3Exchange::Next(Tuple* out) {
  if (!exchanged_) {
    Status st = DoExchange();
    if (!st.ok()) return Fail(st);
    exchanged_ = true;
  }
  if (batch_reader_ != nullptr) {
    // A NextBatch() pull left a triple partially expanded; hand the
    // unread row-group remainder back as a path triple so no rows are
    // lost when the consumer switches protocols mid-stream.
    const bool remainder = batch_rg_ <= batch_last_rg_ &&
                           batch_rg_ < batch_reader_->num_row_groups();
    const size_t first = batch_rg_;
    const size_t last = batch_last_rg_;
    std::string path = std::move(batch_path_);
    batch_reader_.reset();
    batch_source_.reset();
    if (remainder) {
      out->clear();
      out->push_back(Item(std::move(path)));
      out->push_back(Item(static_cast<int64_t>(first)));
      out->push_back(Item(static_cast<int64_t>(last)));
      return true;
    }
  }
  if (emit_pos_ >= out_.size()) return false;
  *out = out_[emit_pos_++];
  return true;
}

bool S3Exchange::NextBatch(RowBatch* out) {
  if (!exchanged_) {
    Status st = DoExchange();
    if (!st.ok()) return Fail(st);
    exchanged_ = true;
  }
  out->Clear();
  while (true) {
    if (batch_reader_ != nullptr) {
      while (batch_rg_ <= batch_last_rg_ &&
             batch_rg_ < batch_reader_->num_row_groups()) {
        size_t rg = batch_rg_++;
        ScopedTimer timer(ctx_->stats, opts_.timer_key);
        auto table = batch_reader_->ReadRowGroup(rg, {});
        if (!table.ok()) return Fail(table.status());
        if ((*table)->num_rows() == 0) continue;
        out->Borrow((*table)->ToRowVector());
        out->MarkReleased();  // fresh vector per row group: stealable
        return true;
      }
      batch_reader_.reset();
      batch_source_.reset();
    }
    if (emit_pos_ >= out_.size()) return false;
    const Tuple& triple = out_[emit_pos_++];
    ScopedTimer timer(ctx_->stats, opts_.timer_key);
    batch_path_ = triple[0].str();
    batch_source_ = std::make_shared<storage::BlobReader>(
        ctx_->blob, batch_path_, opts_.retry, ctx_->stats, ctx_->cancel);
    auto reader = storage::ColumnFileReader::Open(batch_source_);
    if (!reader.ok()) return Fail(reader.status());
    batch_reader_ = reader.TakeValue();
    batch_rg_ = static_cast<size_t>(triple[1].i64());
    batch_last_rg_ = static_cast<size_t>(triple[2].i64());
  }
}

// ---------------------------------------------------------------------------
// ColumnFileScan
// ---------------------------------------------------------------------------

bool ColumnFileScan::Next(Tuple* out) {
  while (true) {
    if (reader_ != nullptr) {
      while (current_rg_ <= last_rg_ &&
             current_rg_ < reader_->num_row_groups()) {
        size_t rg = current_rg_++;
        bool keep = true;
        for (const Range& r : opts_.ranges) {
          if (!reader_->MayContain(rg, r.col, r.lo, r.hi)) {
            keep = false;
            break;
          }
        }
        if (!keep) {
          if (ctx_->stats != nullptr) {
            ctx_->stats->AddCounter("scan.row_groups_pruned", 1);
          }
          continue;
        }
        ScopedTimer timer(ctx_->stats, opts_.timer_key);
        auto table = reader_->ReadRowGroup(rg, opts_.projection);
        if (!table.ok()) return Fail(table.status());
        out->clear();
        out->push_back(Item(table.TakeValue()));
        return true;
      }
      reader_.reset();
    }
    Tuple t;
    if (!child(0)->Next(&t)) return ChildEnd(child(0));
    if (!t[0].is_str()) {
      return Fail(Status::InvalidArgument(
          "ColumnFileScan expects ⟨path⟩ tuples, got " + t.ToString()));
    }
    if (ctx_->blob == nullptr) {
      return Fail(Status::Internal("ColumnFileScan: no storage client"));
    }
    ScopedTimer timer(ctx_->stats, opts_.timer_key);
    source_ = std::make_shared<storage::BlobReader>(
        ctx_->blob, t[0].str(), opts_.retry, ctx_->stats, ctx_->cancel);
    auto reader = storage::ColumnFileReader::Open(source_);
    if (!reader.ok()) return Fail(reader.status());
    reader_ = reader.TakeValue();
    if (t.size() >= 3 && t[1].is_i64() && t[2].is_i64()) {
      current_rg_ = static_cast<size_t>(t[1].i64());
      last_rg_ = static_cast<size_t>(t[2].i64());
    } else {
      current_rg_ = 0;
      last_rg_ = reader_->num_row_groups() == 0
                     ? 0
                     : reader_->num_row_groups() - 1;
    }
  }
}

// ---------------------------------------------------------------------------
// MaterializeColumnFile
// ---------------------------------------------------------------------------

bool MaterializeColumnFile::Next(Tuple* out) {
  if (done_) return false;
  ColumnTablePtr table = ColumnTable::Make(schema_);
  Tuple t;
  while (child(0)->Next(&t)) {
    const Item& item = t[0];
    if (item.is_row()) {
      table->AppendRow(item.row());
    } else if (item.is_collection()) {
      const RowVectorPtr& rows = item.collection();
      for (size_t i = 0; i < rows->size(); ++i) table->AppendRow(rows->row(i));
    } else {
      return Fail(Status::InvalidArgument(
          "MaterializeColumnFile expects rows or collections, got " +
          item.ToString()));
    }
  }
  if (!child(0)->status().ok()) return Fail(child(0)->status());
  if (ctx_->blob == nullptr) {
    return Fail(Status::Internal("MaterializeColumnFile: no storage client"));
  }
  std::string bytes = storage::WriteColumnFile(*table);
  Status put_st = RetryCall(
      retry_, ctx_->stats, "blob.put",
      [&] { return ctx_->blob->Put(key_, bytes); }, ctx_->cancel);
  if (!put_st.ok()) return Fail(std::move(put_st));
  done_ = true;
  out->clear();
  out->push_back(Item(key_));
  return true;
}

// ---------------------------------------------------------------------------
// S3SelectRequest
// ---------------------------------------------------------------------------

bool S3SelectRequest::Next(Tuple* out) {
  Tuple t;
  if (!child(0)->Next(&t)) return ChildEnd(child(0));
  if (!t[0].is_str()) {
    return Fail(Status::InvalidArgument(
        "S3SelectRequest expects ⟨path⟩ tuples, got " + t.ToString()));
  }
  if (ctx_->s3select == nullptr) {
    return Fail(Status::Internal("S3SelectRequest: no S3Select engine"));
  }
  ScopedTimer timer(ctx_->stats, opts_.timer_key);
  auto csv = ctx_->s3select->Select(t[0].str(), opts_.object_schema,
                                    opts_.projection, opts_.predicate,
                                    ctx_->blob);
  if (!csv.ok()) return Fail(csv.status());
  // Parse the CSV response into the columnar (Arrow-table analog) form.
  auto table = storage::ReadCsv(csv.value(), result_schema());
  if (!table.ok()) return Fail(table.status());
  out->clear();
  out->push_back(Item(table.TakeValue()));
  return true;
}

}  // namespace modularis
