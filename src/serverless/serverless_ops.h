#ifndef MODULARIS_SERVERLESS_SERVERLESS_OPS_H_
#define MODULARIS_SERVERLESS_SERVERLESS_OPS_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/sub_operator.h"
#include "serverless/lambda.h"
#include "serverless/s3select.h"
#include "storage/column_file.h"

/// \file serverless_ops.h
/// The Lambda- and smart-storage-specific sub-operators (paper Table 1):
/// together with the executor these are the *only* operators that change
/// when a TPC-H plan moves from the RDMA cluster to serverless (Fig. 6 vs
/// Fig. 7) — the paper's headline modularity result.

namespace modularis {

/// LambdaExecutor runs a nested plan on every serverless worker (spawned
/// in a tree-plan fashion) and forwards the workers' result tuples —
/// typically S3 paths of materialized results — to the driver plan.
class LambdaExecutor : public SubOperator {
 public:
  struct Config {
    serverless::LambdaOptions lambda;
    storage::BlobStore* store = nullptr;
    serverless::S3SelectEngine* s3select = nullptr;
    std::function<SubOpPtr(int worker)> plan_factory;
    std::function<Tuple(int worker)> worker_params;
  };

  explicit LambdaExecutor(Config config)
      : SubOperator("LambdaExecutor"), config_(std::move(config)) {}

  Status Open(ExecContext* ctx) override;
  bool Next(Tuple* out) override;

 private:
  Config config_;
  std::vector<Tuple> results_;
  std::vector<std::vector<RowVectorPtr>> arenas_;
  size_t emit_pos_ = 0;
};

/// S3Exchange implements the Lambada exchange (paper §4.4): each worker
/// writes ONE S3 object containing one row group per receiver ("write
/// combining", turning W² PUTs into W), synchronizes, and emits
/// ⟨path, firstRowGroup, lastRowGroup⟩ triples for the row groups this
/// worker must read — which a downstream ColumnFileScan fetches with
/// ranged GETs. Consumes ⟨pid, collection⟩ tuples (from Partition/GroupBy).
class S3Exchange : public SubOperator {
 public:
  struct Options {
    /// Key prefix; objects land at "<prefix>/part-<sender>.mcf".
    std::string prefix = "exchange";
    /// When false (§4.4 ablation): one object per (sender, receiver) pair.
    bool write_combining = true;
    /// Transient-failure retry policy for the S3 PUTs/GETs (core/fault.h).
    RetryPolicy retry;
    std::string timer_key = "phase.s3_exchange";
  };

  S3Exchange(SubOpPtr partitions, Options options)
      : SubOperator("S3Exchange"), opts_(std::move(options)) {
    AddChild(std::move(partitions));
  }

  Status Open(ExecContext* ctx) override {
    exchanged_ = false;
    emit_pos_ = 0;
    out_.clear();
    batch_reader_.reset();
    batch_source_.reset();
    return SubOperator::Open(ctx);
  }

  bool Next(Tuple* out) override;

  /// Record projection of the stream (docs/DESIGN-vectorized.md): reads
  /// this worker's row groups back from the blob store — the job the
  /// ⟨path, firstRowGroup, lastRowGroup⟩ triples of Next() delegate to a
  /// downstream ColumnFileScan — and emits one released batch per
  /// non-empty row group. Next() and NextBatch() share the triple cursor:
  /// each triple is delivered exactly once per Open, either as a path
  /// tuple or as its row-group batches, whichever protocol pulls it —
  /// a triple NextBatch() only partially expanded is handed back to
  /// Next() as a remainder triple covering the unread row groups.
  bool NextBatch(RowBatch* out) override;

 private:
  Status DoExchange();

  Options opts_;
  bool exchanged_ = false;
  /// Triple cursor, shared by Next() and NextBatch().
  size_t emit_pos_ = 0;
  /// ⟨path, first_rg, last_rg⟩ triples for this worker.
  std::vector<Tuple> out_;
  // Read-back state for the triple NextBatch() is currently expanding.
  std::unique_ptr<storage::ColumnFileReader> batch_reader_;
  std::shared_ptr<storage::RandomReader> batch_source_;
  std::string batch_path_;
  size_t batch_rg_ = 0;
  size_t batch_last_rg_ = 0;
};

/// ColumnFileScan (the ParquetScan analog): reads row groups of ColumnFile
/// objects, pushing down projections (only selected chunks are fetched)
/// and min-max range predicates (pruned row groups are never read).
/// Consumes ⟨path⟩ or ⟨path, first_rg, last_rg⟩ tuples; produces one
/// ⟨ColumnTable⟩ tuple per surviving row group.
class ColumnFileScan : public SubOperator {
 public:
  /// Chunk-pruning predicate: keep row groups whose [min,max] of `col`
  /// intersects [lo, hi].
  struct Range {
    int col;
    int64_t lo;
    int64_t hi;
  };

  struct Options {
    std::vector<int> projection;  // empty = all columns
    std::vector<Range> ranges;    // min-max pruning
    /// Transient-failure retry policy for the ranged GETs (core/fault.h).
    RetryPolicy retry;
    std::string timer_key = "phase.scan";
  };

  ColumnFileScan(SubOpPtr paths, Options options)
      : SubOperator("ColumnFileScan"), opts_(std::move(options)) {
    AddChild(std::move(paths));
  }

  Status Open(ExecContext* ctx) override {
    reader_.reset();
    current_rg_ = 0;
    last_rg_ = 0;
    return SubOperator::Open(ctx);
  }

  bool Next(Tuple* out) override;

 private:
  Options opts_;
  std::unique_ptr<storage::ColumnFileReader> reader_;
  std::shared_ptr<storage::RandomReader> source_;
  size_t current_rg_ = 0;
  size_t last_rg_ = 0;
};

/// MaterializeColumnFile (the MaterializeParquet analog): collects its
/// record stream into a ColumnFile object, PUTs it, and yields the path.
class MaterializeColumnFile : public SubOperator {
 public:
  MaterializeColumnFile(SubOpPtr rows, Schema schema, std::string key,
                        RetryPolicy retry = {})
      : SubOperator("MaterializeColumnFile"),
        schema_(std::move(schema)),
        key_(std::move(key)),
        retry_(retry) {
    AddChild(std::move(rows));
  }

  Status Open(ExecContext* ctx) override {
    done_ = false;
    return SubOperator::Open(ctx);
  }

  bool Next(Tuple* out) override;

 private:
  Schema schema_;
  std::string key_;
  RetryPolicy retry_;
  bool done_ = false;
};

/// First stage of the decomposed S3SelectScan (paper §4.5): performs the
/// API call per input path, parses the returned CSV into a columnar table
/// (the Arrow-table step) and forwards it; TableToCollection/ColumnScan
/// complete the decomposition.
class S3SelectRequest : public SubOperator {
 public:
  struct Options {
    Schema object_schema;         // schema of the stored CSV object
    std::vector<int> projection;  // pushed-down projection (empty = all)
    ExprPtr predicate;            // pushed-down selection (may be null)
    std::string timer_key = "phase.s3select";
  };

  S3SelectRequest(SubOpPtr paths, Options options)
      : SubOperator("S3SelectRequest"), opts_(std::move(options)) {
    AddChild(std::move(paths));
  }

  bool Next(Tuple* out) override;

  /// Schema of the produced tables.
  Schema result_schema() const {
    if (opts_.projection.empty()) return opts_.object_schema;
    return opts_.object_schema.Select(opts_.projection);
  }

 private:
  Options opts_;
};

}  // namespace modularis

#endif  // MODULARIS_SERVERLESS_SERVERLESS_OPS_H_
