#include "serverless/lambda.h"

#include <chrono>
#include <thread>
#include <vector>

namespace modularis::serverless {

int LambdaRuntime::SpawnDepth(int worker_id, int fanout) {
  if (fanout < 2) return worker_id + 1;
  // Workers are numbered level by level in a complete `fanout`-ary tree.
  int depth = 1;
  int64_t level_size = 1;
  int64_t covered = 1;
  while (worker_id >= covered) {
    level_size *= fanout;
    covered += level_size;
    ++depth;
  }
  return depth;
}

namespace {

/// Reusable generation barrier across the worker fleet. Poisonable: once
/// any worker dies, every blocked and future Wait returns kAborted — the
/// storage-polling synchronization it stands in for would otherwise wait
/// forever for a dead peer's S3 write.
class FleetBarrier {
 public:
  explicit FleetBarrier(int parties) : parties_(parties) {}

  Status Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    if (poisoned_) return PeerStatus();
    uint64_t my_generation = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      // A poisoned fleet never completes the generation (the dead worker
      // cannot arrive), so the predicate must also wake on poisoning.
      cv_.wait(lock,
               [&] { return generation_ != my_generation || poisoned_; });
      if (generation_ == my_generation) return PeerStatus();
    }
    return Status::OK();
  }

  void Poison(const Status& cause) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (poisoned_) return;  // first wins
      poisoned_ = true;
      cause_ = cause;
    }
    cv_.notify_all();
  }

 private:
  Status PeerStatus() const {
    return Status::Aborted("peer lambda worker failed: " + cause_.ToString());
  }

  const int parties_;
  std::mutex mu_;
  std::condition_variable cv_;
  int arrived_ = 0;
  uint64_t generation_ = 0;
  bool poisoned_ = false;
  Status cause_;  // guarded by mu_
};

}  // namespace

Status LambdaRuntime::Run(const LambdaOptions& options, BlobStore* store,
                          const WorkerFn& fn, LambdaRunReport* report) {
  FleetBarrier barrier(options.num_workers);
  FaultInjector spawn_injector(options.fault);
  std::vector<Status> statuses(options.num_workers, Status::OK());
  std::mutex failure_mu;
  Status first_failure;  // guarded by failure_mu; the run's return value
  auto note_failure = [&](const Status& st) {
    {
      std::lock_guard<std::mutex> lock(failure_mu);
      if (first_failure.ok()) first_failure = st;
    }
    barrier.Poison(st);
  };
  std::vector<std::thread> threads;
  threads.reserve(options.num_workers);
  for (int w = 0; w < options.num_workers; ++w) {
    threads.emplace_back([&, w] {
      // Tree-spawn startup latency: depth hops of function invocation.
      const int depth = SpawnDepth(w, options.spawn_fanout);
      if (options.throttle) {
        double delay = options.invoke_latency_seconds * depth;
        std::this_thread::sleep_for(std::chrono::duration<double>(delay));
      }
      if (spawn_injector.ShouldCrashAtDepth(depth)) {
        // The function instance dies during the tree spawn: the worker
        // body never runs. Non-retryable — a crashed worker's partition
        // of the query is simply gone, so the whole query must abort.
        spawn_injector.RecordInjected(FaultSite::kLambdaSpawn);
        Status st = Status::Aborted(
            "lambda worker " + std::to_string(w) +
            " crashed (injected at spawn depth " + std::to_string(depth) +
            ")");
        statuses[w] = st;
        note_failure(st);
        return;
      }
      BlobClientOptions client_options = options.s3;
      client_options.throttle = options.throttle && client_options.throttle;
      BlobClient client(store, client_options, w);
      LambdaWorkerContext ctx;
      ctx.worker_id = w;
      ctx.num_workers = options.num_workers;
      ctx.s3 = &client;
      ctx.barrier = [&barrier] { return barrier.Wait(); };
      Status st = fn(ctx);
      statuses[w] = st;
      if (!st.ok()) note_failure(st);
      if (report != nullptr) {
        // StatsRegistry is thread-safe; same-named counters sum across
        // workers into one fleet-wide total.
        client.fault_injector().ExportCounters(&report->stats);
      }
    });
  }
  for (auto& t : threads) t.join();
  if (report != nullptr) {
    report->worker_status = statuses;
    spawn_injector.ExportCounters(&report->stats);
  }
  // The first failure's original status, not a peer's kAborted echo.
  std::lock_guard<std::mutex> lock(failure_mu);
  return first_failure;
}

}  // namespace modularis::serverless
