#include "serverless/lambda.h"

#include <chrono>
#include <thread>
#include <vector>

namespace modularis::serverless {

int LambdaRuntime::SpawnDepth(int worker_id, int fanout) {
  if (fanout < 2) return worker_id + 1;
  // Workers are numbered level by level in a complete `fanout`-ary tree.
  int depth = 1;
  int64_t level_size = 1;
  int64_t covered = 1;
  while (worker_id >= covered) {
    level_size *= fanout;
    covered += level_size;
    ++depth;
  }
  return depth;
}

namespace {

/// Reusable generation barrier across the worker fleet.
class FleetBarrier {
 public:
  explicit FleetBarrier(int parties) : parties_(parties) {}

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    uint64_t my_generation = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != my_generation; });
    }
  }

 private:
  const int parties_;
  std::mutex mu_;
  std::condition_variable cv_;
  int arrived_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace

Status LambdaRuntime::Run(const LambdaOptions& options, BlobStore* store,
                          const WorkerFn& fn) {
  FleetBarrier barrier(options.num_workers);
  std::vector<Status> statuses(options.num_workers, Status::OK());
  std::vector<std::thread> threads;
  threads.reserve(options.num_workers);
  for (int w = 0; w < options.num_workers; ++w) {
    threads.emplace_back([&, w] {
      // Tree-spawn startup latency: depth hops of function invocation.
      if (options.throttle) {
        double delay = options.invoke_latency_seconds *
                       SpawnDepth(w, options.spawn_fanout);
        std::this_thread::sleep_for(std::chrono::duration<double>(delay));
      }
      BlobClientOptions client_options = options.s3;
      client_options.throttle = options.throttle && client_options.throttle;
      BlobClient client(store, client_options, w);
      LambdaWorkerContext ctx;
      ctx.worker_id = w;
      ctx.num_workers = options.num_workers;
      ctx.s3 = &client;
      ctx.barrier = [&barrier] { barrier.Wait(); };
      statuses[w] = fn(ctx);
    });
  }
  for (auto& t : threads) t.join();
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace modularis::serverless
