#include "serverless/s3select.h"

#include <chrono>
#include <thread>

#include "storage/csv.h"

namespace modularis::serverless {

Result<std::string> S3SelectEngine::Select(
    const std::string& key, const Schema& schema,
    const std::vector<int>& projection, const ExprPtr& predicate,
    storage::BlobClient* client) const {
  MODULARIS_ASSIGN_OR_RETURN(storage::BlobStore::Blob blob,
                             store_->Get(key));

  // Storage-side scan: the service reads the full object at its internal
  // scan rate (data does not cross the network for this part).
  double scan_seconds =
      static_cast<double>(blob->size()) / options_.scan_bytes_per_sec;
  if (options_.throttle && scan_seconds > 50e-6) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(scan_seconds));
  }

  MODULARIS_ASSIGN_OR_RETURN(ColumnTablePtr table,
                             storage::ReadCsv(*blob, schema));

  std::vector<int> cols = projection;
  if (cols.empty()) {
    for (size_t c = 0; c < schema.num_fields(); ++c) {
      cols.push_back(static_cast<int>(c));
    }
  }
  Schema out_schema = schema.Select(cols);
  ColumnTablePtr out = ColumnTable::Make(out_schema);

  // Predicate evaluation happens AFTER projection: callers write the
  // predicate against the projected schema (the projection always covers
  // the predicate's columns).
  RowVectorPtr scratch = RowVector::Make(out_schema);
  scratch->AppendRow();
  for (size_t r = 0; r < table->num_rows(); ++r) {
    RowWriter w(scratch->mutable_row(0), &scratch->schema());
    for (size_t oc = 0; oc < cols.size(); ++oc) {
      const Column& src = table->column(cols[oc]);
      int col = static_cast<int>(oc);
      switch (out_schema.field(oc).type) {
        case AtomType::kInt32:
        case AtomType::kDate:
          w.SetInt32(col, src.GetInt32(r));
          break;
        case AtomType::kInt64:
          w.SetInt64(col, src.GetInt64(r));
          break;
        case AtomType::kFloat64:
          w.SetFloat64(col, src.GetFloat64(r));
          break;
        case AtomType::kString:
          w.SetString(col, src.GetString(r));
          break;
      }
    }
    if (predicate != nullptr && !predicate->EvalBool(scratch->row(0))) {
      continue;
    }
    for (size_t oc = 0; oc < cols.size(); ++oc) {
      const Column& src = table->column(cols[oc]);
      Column& dst = out->column(oc);
      switch (out_schema.field(oc).type) {
        case AtomType::kInt32:
        case AtomType::kDate:
          dst.AppendInt32(src.GetInt32(r));
          break;
        case AtomType::kInt64:
          dst.AppendInt64(src.GetInt64(r));
          break;
        case AtomType::kFloat64:
          dst.AppendFloat64(src.GetFloat64(r));
          break;
        case AtomType::kString:
          dst.AppendString(src.GetString(r));
          break;
      }
    }
  }
  out->FinishBulkLoad();

  // The response streams back as *uncompressed CSV* over the worker's
  // connection — the §5.1.2 bottleneck.
  std::string csv = storage::WriteCsv(*out);
  if (client != nullptr) client->AccountTransfer(csv.size());
  return csv;
}

}  // namespace modularis::serverless
