#ifndef MODULARIS_SERVERLESS_LAMBDA_H_
#define MODULARIS_SERVERLESS_LAMBDA_H_

#include <condition_variable>
#include <functional>
#include <mutex>

#include "core/status.h"
#include "storage/blob_store.h"

/// \file lambda.h
/// The serverless substitute (DESIGN.md §1): workers are threads with
/// modelled invocation (cold-start) latency, spawned in a tree-plan
/// fashion (paper §3.1: the serverless executor "spawns the workers in a
/// tree-plan fashion" because one function can only invoke a bounded
/// number of children per unit time). Workers have NO direct channel to
/// each other — the structural constraint that forces exchanges through
/// storage (§4.4) — and reach S3 through per-worker BlobClients.

namespace modularis::serverless {

using storage::BlobClient;
using storage::BlobClientOptions;
using storage::BlobStore;

struct LambdaOptions {
  int num_workers = 8;
  /// One function invocation's startup latency.
  double invoke_latency_seconds = 0.08;
  /// Children each worker spawns (tree fan-out).
  int spawn_fanout = 8;
  /// Per-worker S3 connection profile.
  BlobClientOptions s3 = BlobClientOptions::S3();
  bool throttle = true;
};

/// Per-worker context handed to the worker body.
struct LambdaWorkerContext {
  int worker_id = 0;
  int num_workers = 1;
  BlobClient* s3 = nullptr;
  /// In-process stand-in for Lambada's storage-based synchronization
  /// (workers polling S3 listings until all peers have written): blocks
  /// until every worker reached the same rendezvous point.
  std::function<void()> barrier;
};

/// Spawns the worker fleet, applies tree-spawn latency, runs `fn` on each
/// worker, joins, and returns the first failure.
class LambdaRuntime {
 public:
  using WorkerFn = std::function<Status(LambdaWorkerContext&)>;

  static Status Run(const LambdaOptions& options, BlobStore* store,
                    const WorkerFn& fn);

  /// Depth of worker `w` in the spawn tree (root = 1 invocation hop).
  static int SpawnDepth(int worker_id, int fanout);
};

}  // namespace modularis::serverless

#endif  // MODULARIS_SERVERLESS_LAMBDA_H_
