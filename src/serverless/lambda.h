#ifndef MODULARIS_SERVERLESS_LAMBDA_H_
#define MODULARIS_SERVERLESS_LAMBDA_H_

#include <condition_variable>
#include <functional>
#include <mutex>

#include "core/fault.h"
#include "core/stats.h"
#include "core/status.h"
#include "storage/blob_store.h"

/// \file lambda.h
/// The serverless substitute (DESIGN.md §1): workers are threads with
/// modelled invocation (cold-start) latency, spawned in a tree-plan
/// fashion (paper §3.1: the serverless executor "spawns the workers in a
/// tree-plan fashion" because one function can only invoke a bounded
/// number of children per unit time). Workers have NO direct channel to
/// each other — the structural constraint that forces exchanges through
/// storage (§4.4) — and reach S3 through per-worker BlobClients.
///
/// Failure model (docs/DESIGN-fault-tolerance.md): a worker that fails —
/// or is crashed by the injector at a chosen spawn depth — poisons the
/// fleet barrier, so peers blocked on storage-based synchronization abort
/// with kAborted instead of waiting forever for a write that will never
/// appear. The run returns the crashed worker's original status.

namespace modularis::serverless {

using storage::BlobClient;
using storage::BlobClientOptions;
using storage::BlobStore;

struct LambdaOptions {
  int num_workers = 8;
  /// One function invocation's startup latency.
  double invoke_latency_seconds = 0.08;
  /// Children each worker spawns (tree fan-out).
  int spawn_fanout = 8;
  /// Per-worker S3 connection profile (carries the blob-side FaultOptions).
  BlobClientOptions s3 = BlobClientOptions::S3();
  /// Runtime-level fault injection: `lambda_crash_depth` kills every
  /// worker at that spawn-tree depth before it runs (kLambdaSpawn site).
  FaultOptions fault;
  bool throttle = true;
};

/// Per-worker context handed to the worker body.
struct LambdaWorkerContext {
  int worker_id = 0;
  int num_workers = 1;
  BlobClient* s3 = nullptr;
  /// In-process stand-in for Lambada's storage-based synchronization
  /// (workers polling S3 listings until all peers have written): blocks
  /// until every worker reached the same rendezvous point. Returns
  /// kAborted once a peer worker has died — the poll would otherwise spin
  /// on an object that is never written.
  std::function<Status()> barrier;
};

/// Per-run diagnostics of LambdaRuntime::Run: what every worker returned
/// (peers of a crashed worker report kAborted, never hang) plus the
/// fleet's "fault.injected.*" counters (spawn crashes and every worker's
/// blob-client injections).
struct LambdaRunReport {
  std::vector<Status> worker_status;
  StatsRegistry stats;
};

/// Spawns the worker fleet, applies tree-spawn latency, runs `fn` on each
/// worker, joins, and returns the first failure (original status — peers'
/// kAborted echoes never mask it).
class LambdaRuntime {
 public:
  using WorkerFn = std::function<Status(LambdaWorkerContext&)>;

  static Status Run(const LambdaOptions& options, BlobStore* store,
                    const WorkerFn& fn, LambdaRunReport* report = nullptr);

  /// Depth of worker `w` in the spawn tree (root = 1 invocation hop).
  static int SpawnDepth(int worker_id, int fanout);
};

}  // namespace modularis::serverless

#endif  // MODULARIS_SERVERLESS_LAMBDA_H_
