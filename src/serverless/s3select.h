#ifndef MODULARIS_SERVERLESS_S3SELECT_H_
#define MODULARIS_SERVERLESS_S3SELECT_H_

#include <string>
#include <vector>

#include "core/column_table.h"
#include "core/expr.h"
#include "storage/blob_store.h"

/// \file s3select.h
/// The smart-storage substitute (paper §4.5): an engine that executes
/// projections and predicates *inside* the object store over CSV objects
/// and streams back uncompressed CSV. The cost model mirrors what the
/// paper measured (§5.1.2): server-side scanning is fast, but the result
/// comes back as uncompressed CSV over the slow serverless link — which is
/// why S3SelectScan loses to ParquetScan until the provider improves the
/// service.

namespace modularis::serverless {

struct S3SelectOptions {
  /// Storage-side scan throughput per request.
  double scan_bytes_per_sec = 400e6;
  bool throttle = true;
};

/// Executes SELECT <projection> FROM s3object WHERE <predicate> over a
/// CSV object. Thread-safe.
class S3SelectEngine {
 public:
  S3SelectEngine(storage::BlobStore* store, S3SelectOptions options)
      : store_(store), options_(options) {}

  /// Runs the pushdown query over object `key` (CSV rows of `schema`).
  /// `projection` lists output columns (empty = all); `predicate` may be
  /// null. The CSV result transfer is charged to `client` (the worker's
  /// connection), modelling the streamed response.
  Result<std::string> Select(const std::string& key, const Schema& schema,
                             const std::vector<int>& projection,
                             const ExprPtr& predicate,
                             storage::BlobClient* client) const;

  storage::BlobStore* store() const { return store_; }
  const S3SelectOptions& options() const { return options_; }

 private:
  storage::BlobStore* store_;
  S3SelectOptions options_;
};

}  // namespace modularis::serverless

#endif  // MODULARIS_SERVERLESS_S3SELECT_H_
