#include "core/expr_bc.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>

#include "core/types.h"

/// \file expr_bc.cc
/// The bytecode VM, compiler plumbing, optimizer passes, and the fused
/// group-key serialize+hash kernel. The semantic ground truth for every
/// kernel here is the interpreted batch path in expr.cc — each opcode's
/// loop is a transliteration of the corresponding FilterBatch/EvalBatch
/// loop, so byte-equality with the oracle holds by construction and the
/// differential harness in tests/test_expr_batch.cc enforces it.

#if defined(__clang__)
#define MODULARIS_BC_SIMD \
  _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define MODULARIS_BC_SIMD _Pragma("GCC ivdep")
#else
#define MODULARIS_BC_SIMD
#endif

namespace modularis {

namespace {

/// Three-way comparison verdict per operator — identical to the row
/// path's CompareExpr::Holds.
inline bool CmpHoldsThreeWay(CmpOp op, int c) {
  switch (op) {
    case CmpOp::kEq: return c == 0;
    case CmpOp::kNe: return c != 0;
    case CmpOp::kLt: return c < 0;
    case CmpOp::kLe: return c <= 0;
    case CmpOp::kGt: return c > 0;
    case CmpOp::kGe: return c >= 0;
  }
  return false;
}

/// remaining -= removed, returning false unless `removed` is an
/// ascending subset (the same check SubtractSorted does in expr.cc).
[[nodiscard]] bool SubtractSortedSel(SelVector* remaining,
                                     const SelVector& removed) {
  size_t k = 0, j = 0;
  for (size_t i = 0; i < remaining->size(); ++i) {
    if (j < removed.size() && removed[j] == (*remaining)[i]) {
      ++j;
      continue;
    }
    (*remaining)[k++] = (*remaining)[i];
  }
  remaining->resize(k);
  return j == removed.size();
}

/// Branchless compress of `sel` by a per-lane predicate. `pred(i)` must
/// be 0/1; mirrors the mask+compress two-pass of the interpreted
/// compare kernels (same surviving set, one pass).
template <typename Pred>
inline void CompressSel(SelVector* sel, Pred pred) {
  uint32_t* sp = sel->data();
  const size_t n = sel->size();
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    sp[k] = sp[i];
    k += pred(i);
  }
  sel->resize(k);
}

/// i64 comparison filters: plain operators (total order).
template <typename Lhs, typename Rhs>
inline void FilterCmpI64Loop(CmpOp op, SelVector* sel, Lhs x, Rhs y) {
  switch (op) {
    case CmpOp::kEq:
      CompressSel(sel, [&](size_t i) { return size_t(x(i) == y(i)); });
      break;
    case CmpOp::kNe:
      CompressSel(sel, [&](size_t i) { return size_t(x(i) != y(i)); });
      break;
    case CmpOp::kLt:
      CompressSel(sel, [&](size_t i) { return size_t(x(i) < y(i)); });
      break;
    case CmpOp::kLe:
      CompressSel(sel, [&](size_t i) { return size_t(x(i) <= y(i)); });
      break;
    case CmpOp::kGt:
      CompressSel(sel, [&](size_t i) { return size_t(x(i) > y(i)); });
      break;
    case CmpOp::kGe:
      CompressSel(sel, [&](size_t i) { return size_t(x(i) >= y(i)); });
      break;
  }
}

/// f64 comparison filters: kGt/kGe as negations so a NaN operand still
/// orders as "greater", exactly like the interpreted kernel.
template <typename Lhs, typename Rhs>
inline void FilterCmpF64Loop(CmpOp op, SelVector* sel, Lhs x, Rhs y) {
  switch (op) {
    case CmpOp::kEq:
      CompressSel(sel, [&](size_t i) { return size_t(x(i) == y(i)); });
      break;
    case CmpOp::kNe:
      CompressSel(sel, [&](size_t i) { return size_t(x(i) != y(i)); });
      break;
    case CmpOp::kLt:
      CompressSel(sel, [&](size_t i) { return size_t(x(i) < y(i)); });
      break;
    case CmpOp::kLe:
      CompressSel(sel, [&](size_t i) { return size_t(x(i) <= y(i)); });
      break;
    case CmpOp::kGt:
      CompressSel(sel, [&](size_t i) { return size_t(!(x(i) <= y(i))); });
      break;
    case CmpOp::kGe:
      CompressSel(sel, [&](size_t i) { return size_t(!(x(i) < y(i))); });
      break;
  }
}

/// Per-lane f64 predicate for the fused range kernels (same NaN forms).
inline bool CmpHoldsF64(CmpOp op, double x, double y) {
  switch (op) {
    case CmpOp::kEq: return x == y;
    case CmpOp::kNe: return x != y;
    case CmpOp::kLt: return x < y;
    case CmpOp::kLe: return x <= y;
    case CmpOp::kGt: return !(x <= y);
    case CmpOp::kGe: return !(x < y);
  }
  return false;
}

inline bool CmpHoldsI64(CmpOp op, int64_t x, int64_t y) {
  switch (op) {
    case CmpOp::kEq: return x == y;
    case CmpOp::kNe: return x != y;
    case CmpOp::kLt: return x < y;
    case CmpOp::kLe: return x <= y;
    case CmpOp::kGt: return x > y;
    case CmpOp::kGe: return x >= y;
  }
  return false;
}

uint64_t NextProgramSerial() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

// ---------------------------------------------------------------------------
// BcCompiler
// ---------------------------------------------------------------------------

BcCompiler::BcCompiler(BcProgram* prog, const Schema& schema)
    : prog_(prog), schema_(&schema) {}

int BcCompiler::NewReg(BatchTag tag) {
  reg_tags_.push_back(tag);
  prog_->num_regs_ = static_cast<uint16_t>(reg_tags_.size());
  return static_cast<int>(reg_tags_.size()) - 1;
}

int BcCompiler::NewSel() {
  int s = prog_->num_sels_;
  prog_->num_sels_ = static_cast<uint16_t>(s + 1);
  return s;
}

size_t BcCompiler::EmitJumpIfEmpty(int sel) {
  BcInst j;
  j.op = BcOp::kJumpIfEmpty;
  j.s = static_cast<uint16_t>(sel);
  j.imm = 0;  // patched by PatchJump
  size_t pc = NextPc();
  Emit(j);
  return pc;
}

int BcCompiler::ConstI64(int64_t v) {
  auto it = i64_regs_.find(v);
  if (it != i64_regs_.end()) return it->second;
  int r = NewReg(BatchTag::kI64);
  BcInst in;
  in.op = BcOp::kConstI64;
  in.dst = static_cast<uint16_t>(r);
  in.imm = static_cast<uint32_t>(prog_->const_i64_.size());
  prog_->const_i64_.push_back(v);
  Emit(in);
  i64_regs_.emplace(v, r);
  return r;
}

int BcCompiler::ConstF64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  auto it = f64_regs_.find(bits);
  if (it != f64_regs_.end()) return it->second;
  int r = NewReg(BatchTag::kF64);
  BcInst in;
  in.op = BcOp::kConstF64;
  in.dst = static_cast<uint16_t>(r);
  in.imm = static_cast<uint32_t>(prog_->const_f64_.size());
  prog_->const_f64_.push_back(v);
  Emit(in);
  f64_regs_.emplace(bits, r);
  return r;
}

int BcCompiler::ConstStr(std::string_view v) {
  auto it = str_regs_.find(v);
  if (it != str_regs_.end()) return it->second;
  int r = NewReg(BatchTag::kStr);
  BcInst in;
  in.op = BcOp::kConstStr;
  in.dst = static_cast<uint16_t>(r);
  in.imm = AddPattern(v);
  Emit(in);
  str_regs_.emplace(std::string(v), r);
  return r;
}

uint32_t BcCompiler::AddPattern(std::string_view pattern) {
  prog_->const_str_.emplace_back(pattern);
  return static_cast<uint32_t>(prog_->const_str_.size() - 1);
}

uint32_t BcCompiler::AddStrSet(std::vector<std::string> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  prog_->str_sets_.push_back(std::move(values));
  return static_cast<uint32_t>(prog_->str_sets_.size() - 1);
}

uint32_t BcCompiler::AddIntSet(std::vector<int64_t> values) {
  prog_->int_sets_.push_back(std::move(values));
  return static_cast<uint32_t>(prog_->int_sets_.size() - 1);
}

uint32_t BcCompiler::InternNode(const Expr& e) {
  prog_->nodes_.push_back(&e);
  return static_cast<uint32_t>(prog_->nodes_.size() - 1);
}

bool BcCompiler::TryConstEval(const Expr& e, Item* out) const {
  std::vector<int> cols;
  e.CollectColumns(&cols);
  if (!cols.empty()) return false;
  // Column-free: one checked evaluation against a null row decides the
  // constant. Checked, so a subtree that would error at runtime (a
  // string-valued IF condition) is NOT folded past its error.
  RowRef row(nullptr, schema_);
  Item v;
  if (!e.EvalChecked(row, &v).ok()) return false;
  switch (v.kind()) {
    case Item::Kind::kInt64:
    case Item::Kind::kFloat64:
    case Item::Kind::kString:
      *out = std::move(v);
      return true;
    default:
      return false;
  }
}

int BcCompiler::CompileValue(const Expr& e, int sel) {
  // Emit-time constant folding: whole column-free subtrees collapse to
  // one pooled constant, with evaluation semantics (division by zero
  // folds to the same 0.0 the evaluator produces — never a compile
  // error).
  Item c;
  if (TryConstEval(e, &c)) {
    ++prog_->stats_.folded;
    switch (c.kind()) {
      case Item::Kind::kInt64: return ConstI64(c.i64());
      case Item::Kind::kFloat64: return ConstF64(c.f64());
      case Item::Kind::kString: return ConstStr(c.str());
      default: break;  // unreachable: TryConstEval only returns atoms
    }
  }
  int r = e.BcEmitValue(*this, sel);
  if (r >= 0) return r;
  return EmitEvalFallback(e, sel);
}

void BcCompiler::CompileFilter(const Expr& e, int sel) {
  // Constant predicate: statically keep-all / drop-all / raise, with the
  // same checked semantics the interpreted FilterBatch applies.
  Item c;
  if (TryConstEval(e, &c)) {
    ++prog_->stats_.folded;
    if (c.is_i64() || c.is_f64()) {
      const bool truthy = c.is_i64() ? c.i64() != 0 : c.f64() != 0;
      if (!truthy) {
        BcInst in;
        in.op = BcOp::kFilterClear;
        in.s = static_cast<uint16_t>(sel);
        Emit(in);
      }
      return;  // truthy constant filters nothing: emit nothing
    }
    EmitFilterRaise(e, sel);
    return;
  }
  if (e.BcEmitFilter(*this, sel)) return;
  // Generic derivation from the value form — the shape of the base
  // Expr::FilterBatch: evaluate, then narrow by non-zero / raise on a
  // statically string-typed predicate / per-row fallback on kItem.
  switch (e.BatchType(*schema_)) {
    case BatchTag::kI64: {
      int r = CompileValue(e, sel);
      BcInst in;
      in.op = BcOp::kFilterNzI64;
      in.a = static_cast<uint16_t>(r);
      in.s = static_cast<uint16_t>(sel);
      Emit(in);
      break;
    }
    case BatchTag::kF64: {
      int r = CompileValue(e, sel);
      BcInst in;
      in.op = BcOp::kFilterNzF64;
      in.a = static_cast<uint16_t>(r);
      in.s = static_cast<uint16_t>(sel);
      Emit(in);
      break;
    }
    case BatchTag::kStr:
      // The value still runs first (nested conditions inside it keep
      // their error precedence), then every surviving lane is an error.
      CompileValue(e, sel);
      EmitFilterRaise(e, sel);
      break;
    case BatchTag::kItem:
      EmitFilterFallback(e, sel);
      break;
  }
}

int BcCompiler::EmitPredicateValue(const Expr& e, int sel) {
  // Value form of a predicate: narrow a copy of the selection, then
  // mark membership 0/1 — the bytecode EvalViaFilter.
  int tmp = NewSel();
  BcInst cp;
  cp.op = BcOp::kSelCopy;
  cp.s = static_cast<uint16_t>(tmp);
  cp.s2 = static_cast<uint16_t>(sel);
  Emit(cp);
  CompileFilter(e, tmp);
  int r = NewReg(BatchTag::kI64);
  BcInst mk;
  mk.op = BcOp::kMarkSel;
  mk.dst = static_cast<uint16_t>(r);
  mk.s = static_cast<uint16_t>(sel);
  mk.s2 = static_cast<uint16_t>(tmp);
  Emit(mk);
  return r;
}

int BcCompiler::EmitEvalFallback(const Expr& e, int sel) {
  ++prog_->stats_.value_fallbacks;
  int r = NewReg(e.BatchType(*schema_));
  BcInst in;
  in.op = BcOp::kEvalFallback;
  in.dst = static_cast<uint16_t>(r);
  in.s = static_cast<uint16_t>(sel);
  in.imm = InternNode(e);
  Emit(in);
  return r;
}

void BcCompiler::EmitFilterFallback(const Expr& e, int sel) {
  ++prog_->stats_.filter_fallbacks;
  BcInst in;
  in.op = BcOp::kFilterFallback;
  in.s = static_cast<uint16_t>(sel);
  in.imm = InternNode(e);
  Emit(in);
}

void BcCompiler::EmitFilterRaise(const Expr& e, int sel) {
  BcInst in;
  in.op = BcOp::kFilterRaise;
  in.s = static_cast<uint16_t>(sel);
  in.imm = InternNode(e);
  Emit(in);
}

int BcCompiler::CastToF64(int reg, int sel) {
  if (RegTag(reg) == BatchTag::kF64) return reg;
  int r = NewReg(BatchTag::kF64);
  BcInst in;
  in.op = BcOp::kCastF64;
  in.dst = static_cast<uint16_t>(r);
  in.a = static_cast<uint16_t>(reg);
  in.s = static_cast<uint16_t>(sel);
  Emit(in);
  return r;
}

// ---------------------------------------------------------------------------
// Program compilation entry points
// ---------------------------------------------------------------------------

namespace {

/// Moves every kConst* instruction into a prologue before pc 0's
/// successors, remapping jump targets onto the new pc space.
///
/// Constant registers are pooled: two syntactically equal literals share
/// one register, so the single defining kConst* of a register used in one
/// branch region may have been emitted inside a different region that a
/// short-circuit jump skips at runtime, leaving the register unwritten at
/// its use site. Constants splat from pools and depend on nothing, so
/// executing them all up front — before any jump — makes every use site
/// safe. This also lets the strength-reduction pass alias x*0 to the
/// zero-constant register without caring where that constant was emitted.
void HoistConstants(std::vector<BcInst>* insts_p) {
  std::vector<BcInst>& insts = *insts_p;
  const size_t n = insts.size();
  std::vector<BcInst> consts;
  std::vector<BcInst> rest;
  // Non-const instruction count strictly before each old pc; a jump to a
  // hoisted constant lands on the first non-const at or after it, which
  // is correct because the constant already ran in the prologue.
  std::vector<uint32_t> nonconst_before(n + 1, 0);
  uint32_t nc = 0;
  for (size_t j = 0; j < n; ++j) {
    nonconst_before[j] = nc;
    const BcOp op = insts[j].op;
    if (op == BcOp::kConstI64 || op == BcOp::kConstF64 ||
        op == BcOp::kConstStr) {
      consts.push_back(insts[j]);
    } else {
      rest.push_back(insts[j]);
      ++nc;
    }
  }
  nonconst_before[n] = nc;
  if (consts.empty()) return;
  const uint32_t num_consts = static_cast<uint32_t>(consts.size());
  for (BcInst& in : rest) {
    if (in.op == BcOp::kJumpIfEmpty) {
      in.imm = num_consts + nonconst_before[in.imm];
    }
  }
  consts.insert(consts.end(), rest.begin(), rest.end());
  insts = std::move(consts);
}

}  // namespace

BcProgram BcProgram::CompileFilter(ExprPtr pred, const Schema& schema,
                                   bool optimize) {
  BcProgram prog;
  prog.root_ = pred;
  prog.is_filter_ = true;
  prog.serial_ = NextProgramSerial();
  BcCompiler c(&prog, schema);
  c.CompileFilter(*pred, /*sel=*/0);
  HoistConstants(&prog.insts_);
  if (optimize) OptimizeProgram(&prog);
  return prog;
}

BcProgram BcProgram::CompileValue(ExprPtr expr, const Schema& schema,
                                  bool optimize) {
  BcProgram prog;
  prog.root_ = expr;
  prog.is_filter_ = false;
  prog.serial_ = NextProgramSerial();
  BcCompiler c(&prog, schema);
  prog.root_reg_ = c.CompileValue(*expr, /*sel=*/0);
  prog.value_tag_ = c.RegTag(prog.root_reg_);
  HoistConstants(&prog.insts_);
  if (optimize) OptimizeProgram(&prog);
  return prog;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

void BcProgram::BindState(BcState* state) const {
  if (state->program_serial_ == serial_) return;
  state->program_serial_ = serial_;
  if (state->regs_.size() < num_regs_) state->regs_.resize(num_regs_);
  if (state->sels_.size() < num_sels_) state->sels_.resize(num_sels_);
  state->const_fill_.assign(num_regs_, 0);
}

Status BcProgram::Run(const RowSpan& rows, BcState* state) const {
  std::vector<BatchColumn>& regs = state->regs_;
  std::vector<SelVector>& sels = state->sels_;
  // Constant registers splat to the entry lane count: every selection a
  // downstream instruction runs under is a subset of the entry
  // selection, so entry_n lanes always suffice.
  const size_t entry_n = sels[0].size();
  const size_t npc = insts_.size();
  size_t pc = 0;
  while (pc < npc) {
    const BcInst& I = insts_[pc];
    switch (I.op) {
      case BcOp::kNop:
        break;

      case BcOp::kLoadI32: {
        const SelVector& sv = sels[I.s];
        const size_t n = sv.size();
        BatchColumn& r = regs[I.dst];
        r.Reset(BatchTag::kI64, n);
        const uint32_t stride = rows.stride;
        if (n > 0 && static_cast<size_t>(sv[n - 1] - sv[0]) == n - 1) {
          const uint8_t* base = rows.row_ptr(sv[0]) + I.imm;
          MODULARIS_BC_SIMD
          for (size_t i = 0; i < n; ++i) {
            int32_t v;
            std::memcpy(&v, base + i * stride, sizeof(v));
            r.i64[i] = v;
          }
        } else {
          for (size_t i = 0; i < n; ++i) {
            int32_t v;
            std::memcpy(&v, rows.row_ptr(sv[i]) + I.imm, sizeof(v));
            r.i64[i] = v;
          }
        }
        break;
      }
      case BcOp::kLoadI64: {
        const SelVector& sv = sels[I.s];
        const size_t n = sv.size();
        BatchColumn& r = regs[I.dst];
        r.Reset(BatchTag::kI64, n);
        const uint32_t stride = rows.stride;
        if (n > 0 && static_cast<size_t>(sv[n - 1] - sv[0]) == n - 1) {
          const uint8_t* base = rows.row_ptr(sv[0]) + I.imm;
          MODULARIS_BC_SIMD
          for (size_t i = 0; i < n; ++i) {
            std::memcpy(&r.i64[i], base + i * stride, sizeof(int64_t));
          }
        } else {
          for (size_t i = 0; i < n; ++i) {
            std::memcpy(&r.i64[i], rows.row_ptr(sv[i]) + I.imm,
                        sizeof(int64_t));
          }
        }
        break;
      }
      case BcOp::kLoadF64: {
        const SelVector& sv = sels[I.s];
        const size_t n = sv.size();
        BatchColumn& r = regs[I.dst];
        r.Reset(BatchTag::kF64, n);
        const uint32_t stride = rows.stride;
        if (n > 0 && static_cast<size_t>(sv[n - 1] - sv[0]) == n - 1) {
          const uint8_t* base = rows.row_ptr(sv[0]) + I.imm;
          MODULARIS_BC_SIMD
          for (size_t i = 0; i < n; ++i) {
            std::memcpy(&r.f64[i], base + i * stride, sizeof(double));
          }
        } else {
          for (size_t i = 0; i < n; ++i) {
            std::memcpy(&r.f64[i], rows.row_ptr(sv[i]) + I.imm,
                        sizeof(double));
          }
        }
        break;
      }
      case BcOp::kLoadStr: {
        const SelVector& sv = sels[I.s];
        const size_t n = sv.size();
        BatchColumn& r = regs[I.dst];
        r.Reset(BatchTag::kStr, n);
        for (size_t i = 0; i < n; ++i) {
          const uint8_t* p = rows.row_ptr(sv[i]) + I.imm;
          uint16_t len;
          std::memcpy(&len, p, sizeof(len));
          r.str[i] =
              std::string_view(reinterpret_cast<const char*>(p + 2), len);
        }
        break;
      }

      case BcOp::kConstI64: {
        BatchColumn& r = regs[I.dst];
        if (r.tag != BatchTag::kI64 || state->const_fill_[I.dst] < entry_n) {
          r.Reset(BatchTag::kI64, entry_n);
          std::fill(r.i64.begin(), r.i64.end(), const_i64_[I.imm]);
          state->const_fill_[I.dst] = entry_n;
        }
        break;
      }
      case BcOp::kConstF64: {
        BatchColumn& r = regs[I.dst];
        if (r.tag != BatchTag::kF64 || state->const_fill_[I.dst] < entry_n) {
          r.Reset(BatchTag::kF64, entry_n);
          std::fill(r.f64.begin(), r.f64.end(), const_f64_[I.imm]);
          state->const_fill_[I.dst] = entry_n;
        }
        break;
      }
      case BcOp::kConstStr: {
        BatchColumn& r = regs[I.dst];
        if (r.tag != BatchTag::kStr || state->const_fill_[I.dst] < entry_n) {
          r.Reset(BatchTag::kStr, entry_n);
          std::fill(r.str.begin(), r.str.end(),
                    std::string_view(const_str_[I.imm]));
          state->const_fill_[I.dst] = entry_n;
        }
        break;
      }

      case BcOp::kCastF64: {
        const size_t n = sels[I.s].size();
        BatchColumn& r = regs[I.dst];
        const BatchColumn& a = regs[I.a];
        r.Reset(BatchTag::kF64, n);
        MODULARIS_BC_SIMD
        for (size_t i = 0; i < n; ++i) {
          r.f64[i] = static_cast<double>(a.i64[i]);
        }
        break;
      }

      case BcOp::kAddI64:
      case BcOp::kSubI64:
      case BcOp::kMulI64: {
        const size_t n = sels[I.s].size();
        BatchColumn& r = regs[I.dst];
        const int64_t* x = regs[I.a].i64.data();
        const int64_t* y = regs[I.b].i64.data();
        r.Reset(BatchTag::kI64, n);
        int64_t* o = r.i64.data();
        if (I.op == BcOp::kAddI64) {
          MODULARIS_BC_SIMD
          for (size_t i = 0; i < n; ++i) o[i] = x[i] + y[i];
        } else if (I.op == BcOp::kSubI64) {
          MODULARIS_BC_SIMD
          for (size_t i = 0; i < n; ++i) o[i] = x[i] - y[i];
        } else {
          MODULARIS_BC_SIMD
          for (size_t i = 0; i < n; ++i) o[i] = x[i] * y[i];
        }
        break;
      }
      case BcOp::kAddF64:
      case BcOp::kSubF64:
      case BcOp::kMulF64:
      case BcOp::kDivF64: {
        const size_t n = sels[I.s].size();
        BatchColumn& r = regs[I.dst];
        const double* x = regs[I.a].f64.data();
        const double* y = regs[I.b].f64.data();
        r.Reset(BatchTag::kF64, n);
        double* o = r.f64.data();
        switch (I.op) {
          case BcOp::kAddF64:
            MODULARIS_BC_SIMD
            for (size_t i = 0; i < n; ++i) o[i] = x[i] + y[i];
            break;
          case BcOp::kSubF64:
            MODULARIS_BC_SIMD
            for (size_t i = 0; i < n; ++i) o[i] = x[i] - y[i];
            break;
          case BcOp::kMulF64:
            MODULARIS_BC_SIMD
            for (size_t i = 0; i < n; ++i) o[i] = x[i] * y[i];
            break;
          default:  // kDivF64 — the engine's div-by-zero → 0.0 rule
            for (size_t i = 0; i < n; ++i) {
              o[i] = y[i] == 0 ? 0.0 : x[i] / y[i];
            }
            break;
        }
        break;
      }

      case BcOp::kMarkSel: {
        const SelVector& outer = sels[I.s];
        const SelVector& passed = sels[I.s2];
        const size_t n = outer.size();
        BatchColumn& r = regs[I.dst];
        r.Reset(BatchTag::kI64, n);
        size_t j = 0;
        for (size_t i = 0; i < n; ++i) {
          const bool hit = j < passed.size() && passed[j] == outer[i];
          r.i64[i] = hit ? 1 : 0;
          if (hit) ++j;
        }
        break;
      }

      case BcOp::kMergeI64:
      case BcOp::kMergeF64:
      case BcOp::kMergeStr: {
        const SelVector& outer = sels[I.s];
        const SelVector& passed = sels[I.s2];
        const size_t n = outer.size();
        BatchColumn& r = regs[I.dst];
        const BatchColumn& t = regs[I.a];
        const BatchColumn& e = regs[I.b];
        size_t jp = 0, jf = 0;
        if (I.op == BcOp::kMergeI64) {
          r.Reset(BatchTag::kI64, n);
          for (size_t i = 0; i < n; ++i) {
            const bool hit = jp < passed.size() && passed[jp] == outer[i];
            r.i64[i] = hit ? t.i64[jp] : e.i64[jf];
            if (hit) {
              ++jp;
            } else {
              ++jf;
            }
          }
        } else if (I.op == BcOp::kMergeF64) {
          r.Reset(BatchTag::kF64, n);
          for (size_t i = 0; i < n; ++i) {
            const bool hit = jp < passed.size() && passed[jp] == outer[i];
            r.f64[i] = hit ? t.f64[jp] : e.f64[jf];
            if (hit) {
              ++jp;
            } else {
              ++jf;
            }
          }
        } else {
          r.Reset(BatchTag::kStr, n);
          for (size_t i = 0; i < n; ++i) {
            const bool hit = jp < passed.size() && passed[jp] == outer[i];
            r.str[i] = hit ? t.str[jp] : e.str[jf];
            if (hit) {
              ++jp;
            } else {
              ++jf;
            }
          }
        }
        break;
      }

      case BcOp::kFilterCmpI64: {
        const int64_t* x = regs[I.a].i64.data();
        const int64_t* y = regs[I.b].i64.data();
        FilterCmpI64Loop(
            I.cmp, &sels[I.s], [&](size_t i) { return x[i]; },
            [&](size_t i) { return y[i]; });
        break;
      }
      case BcOp::kFilterCmpF64: {
        const double* x = regs[I.a].f64.data();
        const double* y = regs[I.b].f64.data();
        FilterCmpF64Loop(
            I.cmp, &sels[I.s], [&](size_t i) { return x[i]; },
            [&](size_t i) { return y[i]; });
        break;
      }
      case BcOp::kFilterCmpStr: {
        const std::string_view* x = regs[I.a].str.data();
        const std::string_view* y = regs[I.b].str.data();
        const CmpOp op = I.cmp;
        CompressSel(&sels[I.s], [&](size_t i) {
          const int c = x[i].compare(y[i]) < 0 ? -1 : (x[i] == y[i] ? 0 : 1);
          return size_t(CmpHoldsThreeWay(op, c));
        });
        break;
      }

      case BcOp::kFilterNzI64: {
        const int64_t* x = regs[I.a].i64.data();
        CompressSel(&sels[I.s], [&](size_t i) { return size_t(x[i] != 0); });
        break;
      }
      case BcOp::kFilterNzF64: {
        const double* x = regs[I.a].f64.data();
        CompressSel(&sels[I.s], [&](size_t i) { return size_t(x[i] != 0); });
        break;
      }

      case BcOp::kFilterLike: {
        const std::string_view* x = regs[I.a].str.data();
        const std::string_view pattern = const_str_[I.imm];
        CompressSel(&sels[I.s], [&](size_t i) {
          return size_t(LikeMatch(x[i], pattern));
        });
        break;
      }
      case BcOp::kFilterInStr: {
        const std::string_view* x = regs[I.a].str.data();
        const std::vector<std::string>& set = str_sets_[I.imm];
        const auto less = [](const auto& a, const auto& b) {
          return std::string_view(a) < std::string_view(b);
        };
        CompressSel(&sels[I.s], [&](size_t i) {
          return size_t(
              std::binary_search(set.begin(), set.end(), x[i], less));
        });
        break;
      }
      case BcOp::kFilterInI64: {
        const int64_t* x = regs[I.a].i64.data();
        const std::vector<int64_t>& set = int_sets_[I.imm];
        CompressSel(&sels[I.s], [&](size_t i) {
          for (int64_t candidate : set) {
            if (candidate == x[i]) return size_t(1);
          }
          return size_t(0);
        });
        break;
      }

      case BcOp::kFilterClear:
        sels[I.s].clear();
        break;
      case BcOp::kFilterRaise:
        if (!sels[I.s].empty()) {
          return Status::InvalidArgument("predicate " +
                                         nodes_[I.imm]->ToString() +
                                         " evaluated to a non-numeric value");
        }
        break;

      case BcOp::kFilterColCmpI32: {
        const int64_t c = const_i64_[I.b];
        const CmpOp op = I.cmp;
        CompressSel(&sels[I.s], [&](size_t i) {
          int32_t v;
          std::memcpy(&v, rows.row_ptr(sels[I.s][i]) + I.imm, sizeof(v));
          return size_t(CmpHoldsI64(op, v, c));
        });
        break;
      }
      case BcOp::kFilterColCmpI64: {
        const int64_t c = const_i64_[I.b];
        const CmpOp op = I.cmp;
        CompressSel(&sels[I.s], [&](size_t i) {
          int64_t v;
          std::memcpy(&v, rows.row_ptr(sels[I.s][i]) + I.imm, sizeof(v));
          return size_t(CmpHoldsI64(op, v, c));
        });
        break;
      }
      case BcOp::kFilterColCmpF64: {
        const double c = const_f64_[I.b];
        const CmpOp op = I.cmp;
        CompressSel(&sels[I.s], [&](size_t i) {
          double v;
          std::memcpy(&v, rows.row_ptr(sels[I.s][i]) + I.imm, sizeof(v));
          return size_t(CmpHoldsF64(op, v, c));
        });
        break;
      }
      case BcOp::kFilterColRangeI32: {
        const int64_t lo = const_i64_[I.a];
        const int64_t hi = const_i64_[I.b];
        const CmpOp op = I.cmp, op2 = I.cmp2;
        CompressSel(&sels[I.s], [&](size_t i) {
          int32_t v;
          std::memcpy(&v, rows.row_ptr(sels[I.s][i]) + I.imm, sizeof(v));
          return size_t(CmpHoldsI64(op, v, lo) && CmpHoldsI64(op2, v, hi));
        });
        break;
      }
      case BcOp::kFilterColRangeI64: {
        const int64_t lo = const_i64_[I.a];
        const int64_t hi = const_i64_[I.b];
        const CmpOp op = I.cmp, op2 = I.cmp2;
        CompressSel(&sels[I.s], [&](size_t i) {
          int64_t v;
          std::memcpy(&v, rows.row_ptr(sels[I.s][i]) + I.imm, sizeof(v));
          return size_t(CmpHoldsI64(op, v, lo) && CmpHoldsI64(op2, v, hi));
        });
        break;
      }
      case BcOp::kFilterColRangeF64: {
        const double lo = const_f64_[I.a];
        const double hi = const_f64_[I.b];
        const CmpOp op = I.cmp, op2 = I.cmp2;
        CompressSel(&sels[I.s], [&](size_t i) {
          double v;
          std::memcpy(&v, rows.row_ptr(sels[I.s][i]) + I.imm, sizeof(v));
          return size_t(CmpHoldsF64(op, v, lo) && CmpHoldsF64(op2, v, hi));
        });
        break;
      }

      case BcOp::kSelCopy:
        sels[I.s] = sels[I.s2];
        break;
      case BcOp::kSelSub:
        if (!SubtractSortedSel(&sels[I.s], sels[I.s2])) {
          return Status::Internal(
              "bytecode: child selection is not an ascending subset of its "
              "input");
        }
        break;
      case BcOp::kSelAppend:
        sels[I.s].insert(sels[I.s].end(), sels[I.s2].begin(),
                         sels[I.s2].end());
        break;
      case BcOp::kSelSort:
        std::sort(sels[I.s].begin(), sels[I.s].end());
        break;

      case BcOp::kJumpIfEmpty:
        if (sels[I.s].empty()) {
          pc = I.imm;
          continue;
        }
        break;

      case BcOp::kEvalFallback: {
        Status st =
            nodes_[I.imm]->EvalBatch(rows, sels[I.s].data(), sels[I.s].size(),
                                     &regs[I.dst], state->scratch());
        if (!st.ok()) return st;
        break;
      }
      case BcOp::kFilterFallback: {
        Status st =
            nodes_[I.imm]->FilterBatch(rows, &sels[I.s], state->scratch());
        if (!st.ok()) return st;
        break;
      }
    }
    ++pc;
  }
  return Status::OK();
}

Status BcProgram::RunFilter(const RowSpan& rows, SelVector* sel,
                            BcState* state) const {
  MODULARIS_RETURN_NOT_OK(
      ValidateSelection("BcProgram::RunFilter", sel->data(), sel->size()));
  BindState(state);
  state->sels_[0].swap(*sel);
  Status st = Run(rows, state);
  state->sels_[0].swap(*sel);
  return st;
}

Status BcProgram::RunValue(const RowSpan& rows, const uint32_t* sel, size_t n,
                           BatchColumn* out, BcState* state) const {
  MODULARIS_RETURN_NOT_OK(ValidateSelection("BcProgram::RunValue", sel, n));
  BindState(state);
  state->sels_[0].assign(sel, sel + n);
  MODULARIS_RETURN_NOT_OK(Run(rows, state));
  const BatchColumn& r = state->regs_[root_reg_];
  // The root register may be a constant splat sized to a previous
  // batch's larger lane count — copy exactly n lanes out.
  out->Reset(value_tag_, n);
  switch (value_tag_) {
    case BatchTag::kI64:
      std::copy(r.i64.begin(), r.i64.begin() + n, out->i64.begin());
      break;
    case BatchTag::kF64:
      std::copy(r.f64.begin(), r.f64.begin() + n, out->f64.begin());
      break;
    case BatchTag::kStr:
      std::copy(r.str.begin(), r.str.begin() + n, out->str.begin());
      break;
    case BatchTag::kItem:
      std::copy(r.items.begin(), r.items.begin() + n, out->items.begin());
      break;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Optimizer
// ---------------------------------------------------------------------------

namespace {

/// Whether the instruction writes a value register.
bool WritesValueReg(BcOp op) {
  switch (op) {
    case BcOp::kLoadI32:
    case BcOp::kLoadI64:
    case BcOp::kLoadF64:
    case BcOp::kLoadStr:
    case BcOp::kConstI64:
    case BcOp::kConstF64:
    case BcOp::kConstStr:
    case BcOp::kCastF64:
    case BcOp::kAddI64:
    case BcOp::kSubI64:
    case BcOp::kMulI64:
    case BcOp::kAddF64:
    case BcOp::kSubF64:
    case BcOp::kMulF64:
    case BcOp::kDivF64:
    case BcOp::kMarkSel:
    case BcOp::kMergeI64:
    case BcOp::kMergeF64:
    case BcOp::kMergeStr:
    case BcOp::kEvalFallback:
      return true;
    default:
      return false;
  }
}

/// Whether a value-writing instruction is removable when its dst is
/// unread. kEvalFallback is excluded: its interpreted evaluation can
/// surface a checked-semantics error, which is observable.
bool IsRemovable(BcOp op) {
  return WritesValueReg(op) && op != BcOp::kEvalFallback;
}

/// Value registers read by the instruction, appended to `ops`. The
/// fused kFilterCol* forms read none: their a/b fields index constant
/// pools, not registers.
void ReadValueRegs(const BcInst& inst, std::vector<uint16_t>* ops) {
  switch (inst.op) {
    case BcOp::kCastF64:
    case BcOp::kFilterNzI64:
    case BcOp::kFilterNzF64:
    case BcOp::kFilterLike:
    case BcOp::kFilterInStr:
    case BcOp::kFilterInI64:
      ops->push_back(inst.a);
      break;
    case BcOp::kAddI64:
    case BcOp::kSubI64:
    case BcOp::kMulI64:
    case BcOp::kAddF64:
    case BcOp::kSubF64:
    case BcOp::kMulF64:
    case BcOp::kDivF64:
    case BcOp::kMergeI64:
    case BcOp::kMergeF64:
    case BcOp::kMergeStr:
    case BcOp::kFilterCmpI64:
    case BcOp::kFilterCmpF64:
    case BcOp::kFilterCmpStr:
      ops->push_back(inst.a);
      ops->push_back(inst.b);
      break;
    default:
      break;
  }
}

/// Rewrites every value-register operand of `inst` through `alias`
/// (chains already collapsed by the caller).
void RewriteValueRegs(BcInst* inst, const std::vector<uint16_t>& alias) {
  switch (inst->op) {
    case BcOp::kCastF64:
    case BcOp::kFilterNzI64:
    case BcOp::kFilterNzF64:
    case BcOp::kFilterLike:
    case BcOp::kFilterInStr:
    case BcOp::kFilterInI64:
      inst->a = alias[inst->a];
      break;
    case BcOp::kAddI64:
    case BcOp::kSubI64:
    case BcOp::kMulI64:
    case BcOp::kAddF64:
    case BcOp::kSubF64:
    case BcOp::kMulF64:
    case BcOp::kDivF64:
    case BcOp::kMergeI64:
    case BcOp::kMergeF64:
    case BcOp::kMergeStr:
    case BcOp::kFilterCmpI64:
    case BcOp::kFilterCmpF64:
    case BcOp::kFilterCmpStr:
      inst->a = alias[inst->a];
      inst->b = alias[inst->b];
      break;
    default:
      break;
  }
}

/// Mirrored operator for `const OP col` rewritten as `col OP' const`.
CmpOp MirrorCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return CmpOp::kGt;
    case CmpOp::kLe: return CmpOp::kGe;
    case CmpOp::kGt: return CmpOp::kLt;
    case CmpOp::kGe: return CmpOp::kLe;
    default: return op;  // kEq / kNe are symmetric
  }
}

}  // namespace

void OptimizeProgram(BcProgram* prog) {
  std::vector<BcInst>& insts = prog->insts_;
  const size_t num_regs = prog->num_regs_;

  // Map constant registers to their defining op and pool index. Each
  // const register has exactly one defining kConst* instruction.
  std::vector<BcOp> const_op(num_regs, BcOp::kNop);
  std::vector<uint32_t> const_idx(num_regs, 0);
  for (const BcInst& in : insts) {
    if (in.op == BcOp::kConstI64 || in.op == BcOp::kConstF64 ||
        in.op == BcOp::kConstStr) {
      const_op[in.dst] = in.op;
      const_idx[in.dst] = in.imm;
    }
  }
  auto i64_const = [&](uint16_t r, int64_t* v) {
    if (const_op[r] != BcOp::kConstI64) return false;
    *v = prog->const_i64_[const_idx[r]];
    return true;
  };

  // -- Strength reduction (i64 only; f64 identities are not bit-exact) ----
  // x+0, x-0, x*1 collapse to register aliases; x*0 aliases to the zero
  // constant register (a valid splat). Registers are SSA, so aliasing
  // is a pure rename.
  std::vector<uint16_t> alias(num_regs);
  for (size_t r = 0; r < num_regs; ++r) alias[r] = static_cast<uint16_t>(r);
  bool any_alias = false;
  for (BcInst& in : insts) {
    RewriteValueRegs(&in, alias);  // apply earlier renames first
    int64_t cv = 0;
    int keep = -1;
    if (in.op == BcOp::kAddI64) {
      if (i64_const(in.a, &cv) && cv == 0) keep = in.b;
      if (i64_const(in.b, &cv) && cv == 0) keep = in.a;
    } else if (in.op == BcOp::kSubI64) {
      if (i64_const(in.b, &cv) && cv == 0) keep = in.a;
    } else if (in.op == BcOp::kMulI64) {
      if (i64_const(in.a, &cv)) {
        if (cv == 1) keep = in.b;
        if (cv == 0) keep = in.a;  // alias to the zero-splat const reg
      }
      if (keep < 0 && i64_const(in.b, &cv)) {
        if (cv == 1) keep = in.a;
        if (cv == 0) keep = in.b;
      }
    }
    if (keep >= 0) {
      alias[in.dst] = static_cast<uint16_t>(keep);
      in = BcInst{};  // kNop
      any_alias = true;
    }
  }
  if (any_alias && prog->root_reg_ >= 0) {
    prog->root_reg_ = alias[prog->root_reg_];
  }

  // Value-register use counts (after renaming), for the fusion pass's
  // single-use requirement and the DCE liveness seed.
  std::vector<uint32_t> uses(num_regs, 0);
  {
    std::vector<uint16_t> ops;
    for (const BcInst& in : insts) {
      ops.clear();
      ReadValueRegs(in, &ops);
      for (uint16_t r : ops) ++uses[r];
    }
  }

  // -- Comparison fusion --------------------------------------------------
  // [kLoad dst=r][kFilterCmp a=r b=const] with r used once collapses to
  // a single fused column-vs-constant filter: no materialized register,
  // one pass over the selection. The load is the instruction straight
  // before the compare, modulo kNop and kConst* (pooled constants may
  // or may not emit between them).
  auto prev_real = [&](size_t pc) -> int {
    for (size_t j = pc; j-- > 0;) {
      const BcOp op = insts[j].op;
      if (op == BcOp::kNop || op == BcOp::kConstI64 ||
          op == BcOp::kConstF64 || op == BcOp::kConstStr) {
        continue;
      }
      return static_cast<int>(j);
    }
    return -1;
  };
  for (size_t pc = 0; pc < insts.size(); ++pc) {
    BcInst& cmp = insts[pc];
    if (cmp.op != BcOp::kFilterCmpI64 && cmp.op != BcOp::kFilterCmpF64) {
      continue;
    }
    const int lp = prev_real(pc);
    if (lp < 0) continue;
    BcInst& load = insts[lp];
    const bool i64_cmp = cmp.op == BcOp::kFilterCmpI64;
    const bool load_ok =
        i64_cmp ? (load.op == BcOp::kLoadI64 || load.op == BcOp::kLoadI32)
                : load.op == BcOp::kLoadF64;
    if (!load_ok || load.s != cmp.s) continue;
    const BcOp want_const = i64_cmp ? BcOp::kConstI64 : BcOp::kConstF64;
    uint16_t col_reg, const_reg;
    CmpOp op = cmp.cmp;
    if (load.dst == cmp.a && const_op[cmp.b] == want_const) {
      col_reg = cmp.a;
      const_reg = cmp.b;
    } else if (load.dst == cmp.b && const_op[cmp.a] == want_const &&
               i64_cmp) {
      // const OP col ⇒ col OP' const. i64 only: the f64 kGt/kGe NaN
      // forms are not symmetric under operand swap.
      col_reg = cmp.b;
      const_reg = cmp.a;
      op = MirrorCmp(op);
    } else {
      continue;
    }
    if (uses[col_reg] != 1) continue;
    BcInst fused;
    fused.op = load.op == BcOp::kLoadI32   ? BcOp::kFilterColCmpI32
               : load.op == BcOp::kLoadI64 ? BcOp::kFilterColCmpI64
                                           : BcOp::kFilterColCmpF64;
    fused.cmp = op;
    fused.b = static_cast<uint16_t>(const_idx[const_reg]);
    fused.s = cmp.s;
    fused.imm = load.imm;
    load = BcInst{};  // kNop
    cmp = fused;
    ++prog->stats_.fused;
  }

  // -- Range fusion -------------------------------------------------------
  // Two adjacent fused filters on the same column and selection (the
  // BETWEEN / date-window shape, possibly separated by the AND's
  // short-circuit jump) collapse into one two-sided pass. Dropping the
  // jump is safe: every kernel no-ops on an empty selection.
  for (size_t pc = 0; pc < insts.size(); ++pc) {
    BcInst& first = insts[pc];
    if (first.op != BcOp::kFilterColCmpI32 &&
        first.op != BcOp::kFilterColCmpI64 &&
        first.op != BcOp::kFilterColCmpF64) {
      continue;
    }
    size_t j = pc + 1;
    int jump_pc = -1;
    while (j < insts.size() && (insts[j].op == BcOp::kNop ||
                                (insts[j].op == BcOp::kJumpIfEmpty &&
                                 insts[j].s == first.s && jump_pc < 0))) {
      if (insts[j].op == BcOp::kJumpIfEmpty) jump_pc = static_cast<int>(j);
      ++j;
    }
    if (j >= insts.size()) continue;
    BcInst& second = insts[j];
    if (second.op != first.op || second.s != first.s ||
        second.imm != first.imm) {
      continue;
    }
    first.op = first.op == BcOp::kFilterColCmpI32   ? BcOp::kFilterColRangeI32
               : first.op == BcOp::kFilterColCmpI64 ? BcOp::kFilterColRangeI64
                                                    : BcOp::kFilterColRangeF64;
    first.a = first.b;       // lo bound pool index
    first.b = second.b;      // hi bound pool index
    first.cmp2 = second.cmp;
    second = BcInst{};  // kNop
    if (jump_pc >= 0) insts[jump_pc] = BcInst{};
    ++prog->stats_.fused;
  }

  // -- Dead code elimination ----------------------------------------------
  // Backward liveness over value registers; pure producers with dead
  // destinations become kNop. Instructions run forward, so a backward
  // sweep that marks operands live only for live consumers is exact.
  {
    std::vector<char> live(num_regs, 0);
    if (prog->root_reg_ >= 0) live[prog->root_reg_] = 1;
    std::vector<uint16_t> ops;
    for (size_t j = insts.size(); j-- > 0;) {
      BcInst& in = insts[j];
      if (IsRemovable(in.op) && !live[in.dst]) {
        in = BcInst{};  // kNop
        continue;
      }
      ops.clear();
      ReadValueRegs(in, &ops);
      for (uint16_t r : ops) live[r] = 1;
    }
  }

  // -- Compaction ---------------------------------------------------------
  // Strip kNop and remap jump targets onto the compacted pc space.
  std::vector<uint32_t> new_pc(insts.size() + 1, 0);
  std::vector<BcInst> out;
  out.reserve(insts.size());
  for (size_t j = 0; j < insts.size(); ++j) {
    new_pc[j] = static_cast<uint32_t>(out.size());
    if (insts[j].op != BcOp::kNop) out.push_back(insts[j]);
  }
  new_pc[insts.size()] = static_cast<uint32_t>(out.size());
  for (BcInst& in : out) {
    if (in.op == BcOp::kJumpIfEmpty) in.imm = new_pc[in.imm];
  }
  insts = std::move(out);
}

// ---------------------------------------------------------------------------
// Disassembler
// ---------------------------------------------------------------------------

std::string BcProgram::Disassemble() const {
  static const char* kOpNames[] = {
      "nop",          "load_i32",     "load_i64",      "load_f64",
      "load_str",     "const_i64",    "const_f64",     "const_str",
      "cast_f64",     "add_i64",      "sub_i64",       "mul_i64",
      "add_f64",      "sub_f64",      "mul_f64",       "div_f64",
      "mark_sel",     "merge_i64",    "merge_f64",     "merge_str",
      "fcmp_i64",     "fcmp_f64",     "fcmp_str",      "fnz_i64",
      "fnz_f64",      "flike",        "fin_str",       "fin_i64",
      "fclear",       "fraise",       "fcol_cmp_i32",  "fcol_cmp_i64",
      "fcol_cmp_f64", "fcol_rng_i32", "fcol_rng_i64",  "fcol_rng_f64",
      "sel_copy",     "sel_sub",      "sel_append",    "sel_sort",
      "jmp_empty",    "eval_fb",      "filter_fb",
  };
  static const char* kCmpNames[] = {"==", "!=", "<", "<=", ">", ">="};
  std::string out;
  for (size_t pc = 0; pc < insts_.size(); ++pc) {
    const BcInst& in = insts_[pc];
    out += std::to_string(pc) + ": ";
    out += kOpNames[static_cast<size_t>(in.op)];
    out += " dst=" + std::to_string(in.dst) + " a=" + std::to_string(in.a) +
           " b=" + std::to_string(in.b) + " s=" + std::to_string(in.s) +
           " s2=" + std::to_string(in.s2) + " imm=" + std::to_string(in.imm) +
           " cmp=" + kCmpNames[static_cast<size_t>(in.cmp)] + "/" +
           kCmpNames[static_cast<size_t>(in.cmp2)] + "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// KeyProgram: fused group-key serialize+hash
// ---------------------------------------------------------------------------

KeyProgram::KeyProgram(const Schema& schema, const std::vector<int>& key_cols) {
  const KeyCodec codec(schema, key_cols);
  key_size_ = codec.key_size();
  parts_.reserve(codec.parts().size());
  for (const auto& p : codec.parts()) {
    parts_.push_back(Part{p.src_offset, p.dst_offset, p.bytes});
  }
  single_word_ = parts_.size() == 1 && parts_[0].bytes == 8;
}

void KeyProgram::SerializeAndHash(const RowSpan& rows, size_t begin, size_t n,
                                  uint8_t* keys_out,
                                  uint64_t* hashes_out) const {
  const size_t stride = rows.stride;
  if (single_word_) {
    // The dominant single-i64/f64-key shape: serialize and hash in one
    // load→store→mix loop, the key word never leaves registers.
    const uint8_t* src = rows.data + begin * stride + parts_[0].src_offset;
    for (size_t i = 0; i < n; ++i) {
      uint64_t w;
      std::memcpy(&w, src + i * stride, sizeof(w));
      std::memcpy(keys_out + i * 8, &w, sizeof(w));
      hashes_out[i] = MixKeyHash64(w);
    }
    return;
  }
  // General shape: serialize a cache-resident block column-wise (the
  // KeyCodec loops), then hash it while the key bytes are still L1-hot —
  // the fusion is across passes, per block, rather than per row.
  const size_t ks = key_size_;
  constexpr size_t kBlockRows = 256;
  for (size_t b0 = 0; b0 < n; b0 += kBlockRows) {
    const size_t m = std::min(kBlockRows, n - b0);
    uint8_t* out = keys_out + b0 * ks;
    for (const Part& part : parts_) {
      const uint8_t* src =
          rows.data + (begin + b0) * stride + part.src_offset;
      uint8_t* dst = out + part.dst_offset;
      switch (part.bytes) {
        case 4:
          for (size_t i = 0; i < m; ++i) {
            std::memcpy(dst + i * ks, src + i * stride, 4);
          }
          break;
        case 8:
          for (size_t i = 0; i < m; ++i) {
            std::memcpy(dst + i * ks, src + i * stride, 8);
          }
          break;
        default:
          for (size_t i = 0; i < m; ++i) {
            std::memcpy(dst + i * ks, src + i * stride, part.bytes);
          }
      }
    }
    uint64_t* h = hashes_out + b0;
    if (ks == 8) {
      // Matches the HashKeysSpan key_size==8 fast path (no seed).
      for (size_t i = 0; i < m; ++i) {
        uint64_t w;
        std::memcpy(&w, out + i * 8, sizeof(w));
        h[i] = MixKeyHash64(w);
      }
    } else if (ks == 16) {
      // Two-word unroll of HashKeyBytes: seed, mix word 0, mix word 1.
      for (size_t i = 0; i < m; ++i) {
        const uint8_t* key = out + i * 16;
        uint64_t w0, w1;
        std::memcpy(&w0, key, sizeof(w0));
        std::memcpy(&w1, key + 8, sizeof(w1));
        h[i] = MixKeyHash64(MixKeyHash64((0x9e3779b97f4a7c15ull ^ 16) ^ w0) ^
                            w1);
      }
    } else {
      for (size_t i = 0; i < m; ++i) {
        h[i] = HashKeyBytes(out + i * ks, static_cast<uint32_t>(ks));
      }
    }
  }
}

}  // namespace modularis
