#ifndef MODULARIS_CORE_TYPES_H_
#define MODULARIS_CORE_TYPES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"

/// \file types.h
/// Atom types, fields, schemas and packed row layouts.
///
/// Modularis' type system (paper §3.3) distinguishes *atoms* (undividable
/// values) from *collections* (physical materialization formats of tuples).
/// This header defines the atoms and the Schema/RowLayout used by the
/// default collection, RowVector, which stores fixed-width packed rows.

namespace modularis {

/// The atomic value domains supported by the execution layer.
/// Dates are stored as int32 days since the Unix epoch; strings are
/// fixed-capacity inline byte sequences (TPC-H fields are bounded).
enum class AtomType : uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kFloat64 = 2,
  kString = 3,
  kDate = 4,
};

/// Human-readable name of an atom type ("i32", "i64", ...).
const char* AtomTypeName(AtomType type);

/// A named, typed column of a schema. `width` is the maximum byte length
/// of the value and is only meaningful for kString fields.
struct Field {
  std::string name;
  AtomType type = AtomType::kInt64;
  uint32_t width = 0;

  static Field I32(std::string name) {
    return Field{std::move(name), AtomType::kInt32, 0};
  }
  static Field I64(std::string name) {
    return Field{std::move(name), AtomType::kInt64, 0};
  }
  static Field F64(std::string name) {
    return Field{std::move(name), AtomType::kFloat64, 0};
  }
  static Field Str(std::string name, uint32_t width) {
    return Field{std::move(name), AtomType::kString, width};
  }
  static Field Date(std::string name) {
    return Field{std::move(name), AtomType::kDate, 0};
  }

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type && width == other.width;
  }
};

/// An ordered list of fields plus the packed in-memory row layout derived
/// from it. Fixed-width atoms are stored at naturally aligned offsets;
/// strings are stored as a uint16 length followed by `width` bytes. The
/// row size is rounded up to 8 bytes so rows can be copied word-wise.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Byte offset of field `i` inside a packed row.
  uint32_t offset(size_t i) const { return offsets_[i]; }
  /// Total bytes of one packed row.
  uint32_t row_size() const { return row_size_; }

  /// Index of the field named `name`, or -1 if absent.
  int FieldIndex(std::string_view name) const;

  /// Returns a new schema with only the given field indices, in order.
  Schema Select(const std::vector<int>& indices) const;

  /// Returns the concatenation of this schema's fields and `other`'s.
  /// Duplicate names get a "_r" suffix (join output convention).
  Schema Concat(const Schema& other) const;

  bool Equals(const Schema& other) const;
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::vector<uint32_t> offsets_;
  uint32_t row_size_ = 0;
};

/// The ubiquitous 16-byte workload of the paper's join/group-by studies:
/// an 8-byte key and an 8-byte payload.
Schema KeyValueSchema();

// -- Date utilities (proleptic Gregorian, days since 1970-01-01) -----------

/// Converts a civil date to days since the Unix epoch.
int32_t DateFromYMD(int year, int month, int day);
/// Inverse of DateFromYMD.
void YMDFromDate(int32_t days, int* year, int* month, int* day);
/// Parses "YYYY-MM-DD"; returns InvalidArgument on malformed input.
Result<int32_t> ParseDate(std::string_view text);
/// Formats days-since-epoch as "YYYY-MM-DD".
std::string FormatDate(int32_t days);
/// Adds `months` calendar months (day-of-month clamped), as SQL intervals do.
int32_t AddMonths(int32_t days, int months);

}  // namespace modularis

#endif  // MODULARIS_CORE_TYPES_H_
