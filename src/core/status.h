#ifndef MODULARIS_CORE_STATUS_H_
#define MODULARIS_CORE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

/// \file status.h
/// Error handling primitives. The codebase does not use C++ exceptions;
/// every fallible operation returns a Status or a Result<T>
/// (Google/RocksDB style).

namespace modularis {

/// Machine-readable failure category carried by every Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kOutOfRange,
  kResourceExhausted,
  kUnimplemented,
  kAborted,
  kInternal,
};

/// A Status is either OK or an error code plus a human-readable message.
/// Statuses are cheap to copy in the OK case (empty message).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Renders "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + msg_;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
      case StatusCode::kIOError: return "IOError";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
      case StatusCode::kUnimplemented: return "Unimplemented";
      case StatusCode::kAborted: return "Aborted";
      case StatusCode::kInternal: return "Internal";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Result<T> holds either a value of type T or an error Status.
/// Mirrors absl::StatusOr / arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error Status keeps call
  /// sites terse: `return value;` / `return Status::IOError(...)`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                         // NOLINT(runtime/explicit)
      : repr_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  T& value() { return std::get<T>(repr_); }
  const T& value() const { return std::get<T>(repr_); }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Moves the value out of the Result; only valid when ok().
  T TakeValue() { return std::move(std::get<T>(repr_)); }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates a non-OK Status to the caller.
#define MODULARIS_RETURN_NOT_OK(expr)            \
  do {                                           \
    ::modularis::Status _st = (expr);            \
    if (!_st.ok()) return _st;                   \
  } while (false)

/// Assigns the value of a Result expression to `lhs`, or propagates the
/// error. `lhs` must be a declaration, e.g. `auto x`.
#define MODULARIS_ASSIGN_OR_RETURN(lhs, rexpr)   \
  MODULARIS_ASSIGN_OR_RETURN_IMPL(               \
      MODULARIS_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define MODULARIS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                    \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = tmp.TakeValue()

#define MODULARIS_CONCAT_IMPL_(a, b) a##b
#define MODULARIS_CONCAT_(a, b) MODULARIS_CONCAT_IMPL_(a, b)

}  // namespace modularis

#endif  // MODULARIS_CORE_STATUS_H_
