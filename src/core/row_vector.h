#ifndef MODULARIS_CORE_ROW_VECTOR_H_
#define MODULARIS_CORE_ROW_VECTOR_H_

#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "core/types.h"

/// \file row_vector.h
/// RowVector is the default physical collection of the execution layer:
/// a C-array of packed C-structs (paper §3.3, "RowVector⟨TupleType⟩").
/// All bulk data — base tables in memory, exchange partitions, nested-plan
/// materializations — travels inside RowVectors referenced by tuples.

namespace modularis {

class RowVector;
using RowVectorPtr = std::shared_ptr<RowVector>;

/// A read-only view of one packed row. Cheap to copy; does not own memory.
class RowRef {
 public:
  RowRef() = default;
  RowRef(const uint8_t* data, const Schema* schema)
      : data_(data), schema_(schema) {}

  const uint8_t* data() const { return data_; }
  const Schema& schema() const { return *schema_; }
  bool valid() const { return data_ != nullptr; }

  int32_t GetInt32(int col) const {
    int32_t v;
    std::memcpy(&v, data_ + schema_->offset(col), sizeof(v));
    return v;
  }
  int64_t GetInt64(int col) const {
    int64_t v;
    std::memcpy(&v, data_ + schema_->offset(col), sizeof(v));
    return v;
  }
  double GetFloat64(int col) const {
    double v;
    std::memcpy(&v, data_ + schema_->offset(col), sizeof(v));
    return v;
  }
  int32_t GetDate(int col) const { return GetInt32(col); }
  std::string_view GetString(int col) const {
    const uint8_t* p = data_ + schema_->offset(col);
    uint16_t len;
    std::memcpy(&len, p, sizeof(len));
    return std::string_view(reinterpret_cast<const char*>(p + 2), len);
  }

 private:
  const uint8_t* data_ = nullptr;
  const Schema* schema_ = nullptr;
};

/// A mutable view of one packed row; used when filling freshly appended rows.
class RowWriter {
 public:
  RowWriter(uint8_t* data, const Schema* schema)
      : data_(data), schema_(schema) {}

  uint8_t* data() const { return data_; }

  void SetInt32(int col, int32_t v) {
    std::memcpy(data_ + schema_->offset(col), &v, sizeof(v));
  }
  void SetInt64(int col, int64_t v) {
    std::memcpy(data_ + schema_->offset(col), &v, sizeof(v));
  }
  void SetFloat64(int col, double v) {
    std::memcpy(data_ + schema_->offset(col), &v, sizeof(v));
  }
  void SetDate(int col, int32_t v) { SetInt32(col, v); }
  void SetString(int col, std::string_view v) {
    uint8_t* p = data_ + schema_->offset(col);
    uint32_t width = schema_->field(col).width;
    uint16_t len = static_cast<uint16_t>(v.size() > width ? width : v.size());
    std::memcpy(p, &len, sizeof(len));
    std::memcpy(p + 2, v.data(), len);
    if (len < width) std::memset(p + 2 + len, 0, width - len);
  }

 private:
  uint8_t* data_;
  const Schema* schema_;
};

/// A contiguous, append-only buffer of packed rows sharing one Schema.
/// RowVectors are the unit of materialization between pipelines and the
/// payload of collection-typed tuple items; they are reference counted
/// (shared_ptr) so multiple pipelines can consume one materialization.
class RowVector {
 public:
  explicit RowVector(Schema schema)
      : schema_(std::move(schema)), row_size_(schema_.row_size()) {}

  const Schema& schema() const { return schema_; }
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }
  uint32_t row_size() const { return row_size_; }
  /// Total payload bytes (rows * row_size).
  size_t byte_size() const { return num_rows_ * static_cast<size_t>(row_size_); }

  const uint8_t* data() const { return buf_.data(); }
  uint8_t* mutable_data() { return buf_.data(); }

  void Reserve(size_t rows) { buf_.reserve(rows * row_size_); }

  /// Appends one zero-initialized row and returns a writer for it.
  RowWriter AppendRow() {
    buf_.resize(buf_.size() + row_size_, 0);
    ++num_rows_;
    return RowWriter(buf_.data() + (num_rows_ - 1) * row_size_, &schema_);
  }

  /// Appends a raw packed row (must match this schema's layout).
  void AppendRaw(const uint8_t* row) {
    buf_.insert(buf_.end(), row, row + row_size_);
    ++num_rows_;
  }

  /// Appends `count` packed rows from a contiguous buffer.
  void AppendRawBatch(const uint8_t* rows, size_t count) {
    buf_.insert(buf_.end(), rows, rows + count * row_size_);
    num_rows_ += count;
  }

  /// Appends all rows of `other` (schemas must have identical layout).
  void AppendAll(const RowVector& other) {
    AppendRawBatch(other.data(), other.size());
  }

  RowRef row(size_t i) const {
    return RowRef(buf_.data() + i * row_size_, &schema_);
  }
  uint8_t* mutable_row(size_t i) { return buf_.data() + i * row_size_; }

  /// Creates an empty RowVector with the given schema.
  static RowVectorPtr Make(Schema schema) {
    return std::make_shared<RowVector>(std::move(schema));
  }

 private:
  Schema schema_;
  uint32_t row_size_;
  size_t num_rows_ = 0;
  std::vector<uint8_t> buf_;
};

}  // namespace modularis

#endif  // MODULARIS_CORE_ROW_VECTOR_H_
