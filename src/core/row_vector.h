#ifndef MODULARIS_CORE_ROW_VECTOR_H_
#define MODULARIS_CORE_ROW_VECTOR_H_

#include <cstring>
#include <memory>
#include <utility>
#include <string_view>
#include <vector>

#include "core/memory.h"
#include "core/types.h"

/// \file row_vector.h
/// RowVector is the default physical collection of the execution layer:
/// a C-array of packed C-structs (paper §3.3, "RowVector⟨TupleType⟩").
/// All bulk data — base tables in memory, exchange partitions, nested-plan
/// materializations — travels inside RowVectors referenced by tuples.

namespace modularis {

class RowVector;
using RowVectorPtr = std::shared_ptr<RowVector>;

/// Minimal growable byte buffer with explicitly uninitialized resize.
/// std::vector value-initializes on resize, which memsets regions the
/// caller is about to overwrite anyway — measurable on the hot append
/// paths (pre-sized scatter, batched join emission).
class ByteBuffer {
 public:
  ByteBuffer() = default;
  ~ByteBuffer() {
    if (budget_ != nullptr && cap_ > 0) budget_->Release(cap_);
  }
  ByteBuffer(const ByteBuffer& other) { *this = other; }
  /// Copy keeps the target's own budget binding; the grown capacity is
  /// charged there like any other reserve.
  ByteBuffer& operator=(const ByteBuffer& other) {
    if (this != &other) {
      reserve(other.size_);
      std::memcpy(data_.get(), other.data_.get(), other.size_);
      size_ = other.size_;
    }
    return *this;
  }
  ByteBuffer(ByteBuffer&& other) noexcept { *this = std::move(other); }
  /// Move transfers the budget binding together with the capacity it
  /// charged; the target's previous capacity is released to its budget.
  ByteBuffer& operator=(ByteBuffer&& other) noexcept {
    if (this != &other) {
      if (budget_ != nullptr && cap_ > 0) budget_->Release(cap_);
      data_ = std::move(other.data_);
      size_ = other.size_;
      cap_ = other.cap_;
      budget_ = other.budget_;
      other.size_ = 0;  // leave the source empty-but-valid for reuse
      other.cap_ = 0;
      other.budget_ = nullptr;
    }
    return *this;
  }

  uint8_t* data() { return data_.get(); }
  const uint8_t* data() const { return data_.get(); }
  size_t size() const { return size_; }
  size_t capacity() const { return cap_; }

  /// Binds the buffer to a memory budget (null detaches): current and
  /// future capacity is charged there and released on destruction. Pure
  /// accounting — growth never fails (docs/DESIGN-memory.md).
  void set_budget(MemoryBudget* budget) {
    if (budget == budget_) return;
    if (budget_ != nullptr && cap_ > 0) budget_->Release(cap_);
    budget_ = budget;
    if (budget_ != nullptr && cap_ > 0) budget_->Charge(cap_);
  }
  MemoryBudget* budget() const { return budget_; }

  void clear() { size_ = 0; }

  void reserve(size_t cap) {
    if (cap <= cap_) return;
    std::unique_ptr<uint8_t[]> grown(new uint8_t[cap]);
    if (size_ > 0) std::memcpy(grown.get(), data_.get(), size_);
    data_ = std::move(grown);
    if (budget_ != nullptr) budget_->Charge(cap - cap_);
    cap_ = cap;
  }

  /// Grows to `n` bytes, zero-filling the new region (vector::resize
  /// semantics). Shrinks without touching memory.
  void resize_zero(size_t n) {
    if (n > size_) {
      reserve(n);
      std::memset(data_.get() + size_, 0, n - size_);
    }
    size_ = n;
  }

  /// Grows (or shrinks) to `n` bytes without initializing new memory.
  /// Callers must overwrite every grown byte they later read.
  void resize_uninit(size_t n) {
    reserve(n);
    size_ = n;
  }

  /// Appends `n` bytes (capacity must have been ensured by the caller).
  void append(const uint8_t* p, size_t n) {
    if (n == 0) return;  // empty source may be a null pointer (UB in memcpy)
    std::memcpy(data_.get() + size_, p, n);
    size_ += n;
  }

 private:
  std::unique_ptr<uint8_t[]> data_;
  size_t size_ = 0;
  size_t cap_ = 0;
  MemoryBudget* budget_ = nullptr;
};

/// A read-only view of one packed row. Cheap to copy; does not own memory.
class RowRef {
 public:
  RowRef() = default;
  RowRef(const uint8_t* data, const Schema* schema)
      : data_(data), schema_(schema) {}

  const uint8_t* data() const { return data_; }
  const Schema& schema() const { return *schema_; }
  bool valid() const { return data_ != nullptr; }

  int32_t GetInt32(int col) const {
    int32_t v;
    std::memcpy(&v, data_ + schema_->offset(col), sizeof(v));
    return v;
  }
  int64_t GetInt64(int col) const {
    int64_t v;
    std::memcpy(&v, data_ + schema_->offset(col), sizeof(v));
    return v;
  }
  double GetFloat64(int col) const {
    double v;
    std::memcpy(&v, data_ + schema_->offset(col), sizeof(v));
    return v;
  }
  int32_t GetDate(int col) const { return GetInt32(col); }
  std::string_view GetString(int col) const {
    const uint8_t* p = data_ + schema_->offset(col);
    uint16_t len;
    std::memcpy(&len, p, sizeof(len));
    return std::string_view(reinterpret_cast<const char*>(p + 2), len);
  }

 private:
  const uint8_t* data_ = nullptr;
  const Schema* schema_ = nullptr;
};

/// A mutable view of one packed row; used when filling freshly appended rows.
class RowWriter {
 public:
  RowWriter(uint8_t* data, const Schema* schema)
      : data_(data), schema_(schema) {}

  uint8_t* data() const { return data_; }

  void SetInt32(int col, int32_t v) {
    std::memcpy(data_ + schema_->offset(col), &v, sizeof(v));
  }
  void SetInt64(int col, int64_t v) {
    std::memcpy(data_ + schema_->offset(col), &v, sizeof(v));
  }
  void SetFloat64(int col, double v) {
    std::memcpy(data_ + schema_->offset(col), &v, sizeof(v));
  }
  void SetDate(int col, int32_t v) { SetInt32(col, v); }
  void SetString(int col, std::string_view v) {
    uint8_t* p = data_ + schema_->offset(col);
    uint32_t width = schema_->field(col).width;
    uint16_t len = static_cast<uint16_t>(v.size() > width ? width : v.size());
    std::memcpy(p, &len, sizeof(len));
    std::memcpy(p + 2, v.data(), len);
    if (len < width) std::memset(p + 2 + len, 0, width - len);
  }

 private:
  uint8_t* data_;
  const Schema* schema_;
};

/// A contiguous, append-only buffer of packed rows sharing one Schema.
/// RowVectors are the unit of materialization between pipelines and the
/// payload of collection-typed tuple items; they are reference counted
/// (shared_ptr) so multiple pipelines can consume one materialization.
class RowVector {
 public:
  explicit RowVector(Schema schema)
      : schema_(std::move(schema)), row_size_(schema_.row_size()) {}

  const Schema& schema() const { return schema_; }
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }
  uint32_t row_size() const { return row_size_; }
  /// Total payload bytes (rows * row_size).
  size_t byte_size() const { return num_rows_ * static_cast<size_t>(row_size_); }

  const uint8_t* data() const { return buf_.data(); }
  uint8_t* mutable_data() { return buf_.data(); }

  void Reserve(size_t rows) { buf_.reserve(rows * row_size_); }

  /// Binds the backing buffer to a memory budget (core/memory.h); the
  /// operators attach their large materializations (build sides, state
  /// tables, sort inputs, exchange staging) so `mem.peak_bytes` reflects
  /// the rank's real footprint.
  void SetBudget(MemoryBudget* budget) { buf_.set_budget(budget); }

  /// Drops all rows but keeps the allocated capacity (scratch reuse).
  void Clear() {
    buf_.clear();
    num_rows_ = 0;
  }

  /// Resizes to exactly `rows` zero-initialized rows in one allocation
  /// (the pre-sized scatter path: partition sizes are known from the
  /// histogram, so rows are written in place via mutable_row()).
  void ResizeRows(size_t rows) {
    buf_.resize_zero(rows * row_size_);
    num_rows_ = rows;
  }

  /// ResizeRows without zero-filling: for scatter targets whose every
  /// row is about to be overwritten with a full-stride copy.
  void ResizeRowsUninitialized(size_t rows) {
    buf_.resize_uninit(rows * row_size_);
    num_rows_ = rows;
  }

  /// Appends one zero-initialized row and returns a writer for it.
  RowWriter AppendRow() {
    EnsureCapacity(row_size_);
    buf_.resize_zero(buf_.size() + row_size_);
    ++num_rows_;
    return RowWriter(buf_.data() + (num_rows_ - 1) * row_size_, &schema_);
  }

  /// Appends `rows` uninitialized rows and returns the write cursor for
  /// the first of them. Callers must overwrite every byte they later
  /// read (gap-free layouts only); pair with TruncateRows to drop an
  /// unused tail.
  uint8_t* AppendUninitialized(size_t rows) {
    EnsureCapacity(rows * row_size_);
    uint8_t* p = buf_.data() + buf_.size();
    buf_.resize_uninit(buf_.size() + rows * row_size_);
    num_rows_ += rows;
    return p;
  }

  /// Drops the last `rows` rows.
  void TruncateRows(size_t rows) {
    buf_.resize_uninit(buf_.size() - rows * row_size_);
    num_rows_ -= rows;
  }

  /// Appends a raw packed row (must match this schema's layout).
  void AppendRaw(const uint8_t* row) {
    EnsureCapacity(row_size_);
    buf_.append(row, row_size_);
    ++num_rows_;
  }

  /// Appends `count` packed rows from a contiguous buffer.
  void AppendRawBatch(const uint8_t* rows, size_t count) {
    EnsureCapacity(count * row_size_);
    buf_.append(rows, count * row_size_);
    num_rows_ += count;
  }

  /// Appends all rows of `other` (schemas must have identical layout).
  void AppendAll(const RowVector& other) {
    AppendRawBatch(other.data(), other.size());
  }

  RowRef row(size_t i) const {
    return RowRef(buf_.data() + i * row_size_, &schema_);
  }
  uint8_t* mutable_row(size_t i) { return buf_.data() + i * row_size_; }

  /// Creates an empty RowVector with the given schema.
  static RowVectorPtr Make(Schema schema) {
    return std::make_shared<RowVector>(std::move(schema));
  }

 private:
  /// Grows capacity geometrically ahead of an append of `extra` bytes,
  /// so per-row appends never pay a linear (exact-fit) reallocation.
  void EnsureCapacity(size_t extra) {
    size_t need = buf_.size() + extra;
    if (need <= buf_.capacity()) return;
    size_t cap = buf_.capacity() < 16 * row_size_ ? 16 * row_size_
                                                  : buf_.capacity() * 2;
    while (cap < need) cap *= 2;
    buf_.reserve(cap);
  }

  Schema schema_;
  uint32_t row_size_;
  size_t num_rows_ = 0;
  ByteBuffer buf_;
};

}  // namespace modularis

#endif  // MODULARIS_CORE_ROW_VECTOR_H_
