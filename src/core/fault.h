#ifndef MODULARIS_CORE_FAULT_H_
#define MODULARIS_CORE_FAULT_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "core/stats.h"
#include "core/status.h"

/// \file fault.h
/// The fault layer (docs/DESIGN-fault-tolerance.md): deterministic fault
/// injection, the one shared retry policy, and cancellation/deadlines.
///
/// Modularis targets platforms where failure is routine — serverless
/// workers die mid-query and S3 requests transiently fail (paper §4.4) —
/// so the runtime needs three things the operators themselves never see:
///  * FaultInjector — a seeded, site-keyed probability gate wired into the
///    fabric (Put/Send/Recv/Flush), the blob store (Get/GetRange/Put/Head)
///    and the lambda runtime (worker crash at a chosen spawn depth). The
///    decision for the n-th call at a site is a pure function of
///    (seed, salt, site, n), so a run's fault pattern is reproducible.
///  * RetryPolicy + RetryCall — exponential backoff with deterministic
///    jitter, retrying only genuinely transient StatusCodes. This replaces
///    the ad-hoc immediate-retry loops that used to spin on NotFound.
///  * CancellationToken — a poisonable, deadline-armed stop flag checked
///    in morsel loops, exchange drains and fabric blocking waits so an
///    unrecoverable failure on one rank aborts the query everywhere
///    instead of deadlocking its peers.

namespace modularis {

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// The injection sites the runtime arms. A fixed enum (not free-form
/// strings) keeps the per-call bookkeeping to one atomic increment.
enum class FaultSite : int {
  kFabricPut = 0,
  kFabricSend,
  kFabricRecv,
  kFabricFlush,
  kBlobGet,
  kBlobGetRange,
  kBlobPut,
  kBlobHead,
  kLambdaSpawn,
  kNumSites,
};

/// Stats-counter suffix for a site ("fault.injected.<name>").
const char* FaultSiteName(FaultSite site);

/// Injection configuration, carried by FabricOptions, BlobClientOptions
/// and LambdaOptions (each component builds its own injector from it).
struct FaultOptions {
  /// Probability of an injected transient kIOError per call at each armed
  /// site. 0 disables injection entirely.
  double transient_failure_rate = 0.0;
  /// Seed of the per-site decision sequence. Two runs with the same seed,
  /// salt and per-site call counts inject the same number of faults.
  uint64_t seed = 0x5eed5eedULL;
  /// Crash (non-retryable kAborted, never run) every lambda worker whose
  /// spawn-tree depth equals this value; 0 disables. Models a function
  /// instance dying during the tree-plan spawn (paper §3.1).
  int lambda_crash_depth = 0;
  /// Run the full decision path (hash + counters) even when the rate is 0
  /// and nothing can ever fire. Only used by the bench harness to measure
  /// the hook cost on the fault-free paths (tools/bench_gate.py).
  bool armed = false;

  bool enabled() const {
    return armed || transient_failure_rate > 0 || lambda_crash_depth > 0;
  }
};

/// Seeded, site-keyed fault source. Thread-safe; one per component
/// (fabric, blob client, lambda fleet), disambiguated by `salt` so two
/// clients with the same seed draw independent sequences.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultOptions options, uint64_t salt = 0)
      : options_(options), salt_(salt) {}

  /// Cheap guard for hot paths: callers skip MaybeInject entirely when
  /// injection is off, so the fault-free cost is one predictable branch.
  bool enabled() const { return options_.enabled(); }
  const FaultOptions& options() const { return options_; }

  /// Draws the next seeded decision for `site`: the injected transient
  /// failure when it fires, OK otherwise.
  Status MaybeInject(FaultSite site);

  /// True when a lambda worker spawned at tree depth `depth` must crash.
  bool ShouldCrashAtDepth(int depth) const {
    return options_.lambda_crash_depth > 0 &&
           depth == options_.lambda_crash_depth;
  }

  /// Books an unconditionally injected fault at `site` — the lambda
  /// crash-at-depth path, which is depth- not rate-triggered and so never
  /// goes through MaybeInject.
  void RecordInjected(FaultSite site) {
    const size_t s = static_cast<size_t>(site);
    calls_[s].fetch_add(1, std::memory_order_relaxed);
    injected_[s].fetch_add(1, std::memory_order_relaxed);
  }

  /// Per-site injected-failure counts, exported as
  /// "fault.injected.<site>" (only non-zero sites, so a fault-free run
  /// contributes no fault.* keys at all).
  void ExportCounters(StatsRegistry* stats) const;
  int64_t injected(FaultSite site) const {
    return injected_[static_cast<size_t>(site)].load(
        std::memory_order_relaxed);
  }
  int64_t total_injected() const;

 private:
  FaultOptions options_;
  uint64_t salt_ = 0;
  std::array<std::atomic<int64_t>, static_cast<size_t>(FaultSite::kNumSites)>
      calls_{};
  std::array<std::atomic<int64_t>, static_cast<size_t>(FaultSite::kNumSites)>
      injected_{};
};

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

/// True for the StatusCodes a retry can actually fix: kIOError (transient
/// network/storage hiccups, exactly what the injector emits) and
/// kResourceExhausted (throttling). Everything else — kNotFound,
/// kInvalidArgument, kAborted, ... — fails fast: retrying a missing key
/// or a poisoned channel only burns the backoff budget.
bool IsRetryableStatus(const Status& status);

/// The one retry configuration shared by every transient-failure site
/// (blob reads/writes, fabric puts/sends/recvs), carried by ExecOptions.
struct RetryPolicy {
  /// Retries after the first attempt; max_retries = 4 means up to 5 calls.
  int max_retries = 4;
  /// Backoff before retry k (0-based): base * multiplier^k, capped at
  /// `max_backoff_seconds`, plus deterministic jitter in [0, backoff/2).
  double base_backoff_seconds = 200e-6;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 20e-3;
  /// When false the backoff is computed but not slept (functional tests).
  bool sleep = true;

  /// Deterministic jittered backoff for retry `attempt` of the call
  /// identified by `call_key` (pure function — reruns back off the same).
  double BackoffSeconds(int attempt, uint64_t call_key) const;
};

class CancellationToken;

namespace fault_internal {
inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
const Status& StatusOf(const Result<T>& r) {
  return r.status();
}
uint64_t HashCallSite(const char* site);
void RecordRetry(StatsRegistry* stats, int attempts, bool gave_up);
bool CancelRequested(const CancellationToken* cancel);
}  // namespace fault_internal

/// Runs `fn` (returning Status or Result<T>), retrying transient failures
/// per `policy` with exponential backoff + deterministic jitter. Retried
/// attempts count into "retry.attempts"; an exhausted budget counts one
/// "retry.giveups" and returns the last error unchanged. Non-retryable
/// errors and cancellation fail fast. `stats` may be null.
template <typename Fn>
auto RetryCall(const RetryPolicy& policy, StatsRegistry* stats,
               const char* site, Fn&& fn,
               const CancellationToken* cancel = nullptr) -> decltype(fn()) {
  int attempt = 0;
  while (true) {
    auto result = fn();
    const Status& st = fault_internal::StatusOf(result);
    if (st.ok() || !IsRetryableStatus(st)) {
      if (attempt > 0) fault_internal::RecordRetry(stats, attempt, false);
      return result;
    }
    if (attempt >= policy.max_retries ||
        fault_internal::CancelRequested(cancel)) {
      fault_internal::RecordRetry(stats, attempt, true);
      return result;
    }
    double backoff = policy.BackoffSeconds(
        attempt, fault_internal::HashCallSite(site));
    if (policy.sleep && backoff > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
    ++attempt;
  }
}

// ---------------------------------------------------------------------------
// Cancellation + deadlines
// ---------------------------------------------------------------------------

/// Query-wide stop flag. The executor owns one per run; every rank/worker
/// context points at it (ExecContext::cancel). The first Cancel() wins and
/// records its cause; an optional deadline self-cancels with kAborted.
/// ShouldStop() is the hot-path check (one relaxed atomic load when no
/// deadline is armed); Check() additionally surfaces the cause.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Arms the deadline `seconds` from now (0 disarms).
  void SetDeadlineAfter(double seconds);

  /// Requests cancellation; the first cause is kept, later ones ignored.
  void Cancel(Status cause);

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Hot-path check: cancelled flag, then the armed deadline (one clock
  /// read, only when a deadline exists). Const so read-only contexts can
  /// poll it — expiry latches the cancel state via the mutable members.
  bool ShouldStop() const;

  /// OK while running; the cancellation cause once stopped.
  Status Check() const {
    if (!ShouldStop()) return Status::OK();
    return status();
  }

  /// The recorded cause (OK when not cancelled).
  Status status() const;

 private:
  mutable std::mutex mu_;
  mutable std::atomic<bool> cancelled_{false};
  mutable Status cause_;  // guarded by mu_
  /// steady_clock deadline in ns since epoch; 0 = disarmed.
  std::atomic<int64_t> deadline_ns_{0};
};

}  // namespace modularis

#endif  // MODULARIS_CORE_FAULT_H_
