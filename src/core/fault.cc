#include "core/fault.h"

namespace modularis {

namespace {

/// SplitMix64 — the standard seeded bit mixer; full-period, statistically
/// strong enough for probability gates and jitter.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Maps a 64-bit draw to a double in [0, 1).
double ToUnit(uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kFabricPut: return "fabric.put";
    case FaultSite::kFabricSend: return "fabric.send";
    case FaultSite::kFabricRecv: return "fabric.recv";
    case FaultSite::kFabricFlush: return "fabric.flush";
    case FaultSite::kBlobGet: return "blob.get";
    case FaultSite::kBlobGetRange: return "blob.get_range";
    case FaultSite::kBlobPut: return "blob.put";
    case FaultSite::kBlobHead: return "blob.head";
    case FaultSite::kLambdaSpawn: return "lambda.spawn";
    case FaultSite::kNumSites: break;
  }
  return "unknown";
}

Status FaultInjector::MaybeInject(FaultSite site) {
  const size_t s = static_cast<size_t>(site);
  // The sequence number is the only mutable state: the decision for call
  // n at a site is a pure function of (seed, salt, site, n).
  const uint64_t n = static_cast<uint64_t>(
      calls_[s].fetch_add(1, std::memory_order_relaxed));
  if (options_.transient_failure_rate <= 0) return Status::OK();
  const uint64_t draw = SplitMix64(options_.seed ^ salt_ ^
                                   (static_cast<uint64_t>(s) << 56) ^ n);
  if (ToUnit(draw) >= options_.transient_failure_rate) return Status::OK();
  injected_[s].fetch_add(1, std::memory_order_relaxed);
  return Status::IOError(std::string("transient failure (injected at ") +
                         FaultSiteName(site) + ")");
}

void FaultInjector::ExportCounters(StatsRegistry* stats) const {
  for (size_t s = 0; s < static_cast<size_t>(FaultSite::kNumSites); ++s) {
    const int64_t count = injected_[s].load(std::memory_order_relaxed);
    if (count == 0) continue;
    stats->AddCounter(std::string("fault.injected.") +
                          FaultSiteName(static_cast<FaultSite>(s)),
                      count);
  }
}

int64_t FaultInjector::total_injected() const {
  int64_t total = 0;
  for (const auto& c : injected_) total += c.load(std::memory_order_relaxed);
  return total;
}

bool IsRetryableStatus(const Status& status) {
  return status.code() == StatusCode::kIOError ||
         status.code() == StatusCode::kResourceExhausted;
}

double RetryPolicy::BackoffSeconds(int attempt, uint64_t call_key) const {
  double backoff = base_backoff_seconds;
  for (int i = 0; i < attempt; ++i) backoff *= backoff_multiplier;
  if (backoff > max_backoff_seconds) backoff = max_backoff_seconds;
  // Deterministic jitter in [0, backoff/2): decorrelates retry herds
  // without making reruns diverge.
  const uint64_t draw =
      SplitMix64(call_key ^ (static_cast<uint64_t>(attempt) * 0x9E37ULL));
  return backoff * (1.0 + 0.5 * ToUnit(draw));
}

namespace fault_internal {

uint64_t HashCallSite(const char* site) {
  // FNV-1a over the site literal; cheap and stable across runs.
  uint64_t h = 0xCBF29CE484222325ULL;
  for (const char* p = site; *p != '\0'; ++p) {
    h = (h ^ static_cast<uint8_t>(*p)) * 0x100000001B3ULL;
  }
  return h;
}

void RecordRetry(StatsRegistry* stats, int attempts, bool gave_up) {
  if (stats == nullptr) return;
  if (attempts > 0) stats->AddCounter("retry.attempts", attempts);
  if (gave_up) stats->AddCounter("retry.giveups", 1);
}

bool CancelRequested(const CancellationToken* cancel) {
  return cancel != nullptr && cancel->ShouldStop();
}

}  // namespace fault_internal

void CancellationToken::SetDeadlineAfter(double seconds) {
  if (seconds <= 0) {
    deadline_ns_.store(0, std::memory_order_relaxed);
    return;
  }
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::duration<double>(seconds));
  deadline_ns_.store(deadline.time_since_epoch().count(),
                     std::memory_order_relaxed);
}

void CancellationToken::Cancel(Status cause) {
  std::lock_guard<std::mutex> lock(mu_);
  if (cancelled_.load(std::memory_order_relaxed)) return;
  cause_ = std::move(cause);
  cancelled_.store(true, std::memory_order_release);
}

bool CancellationToken::ShouldStop() const {
  if (cancelled_.load(std::memory_order_acquire)) return true;
  const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline == 0) return false;
  const int64_t now =
      std::chrono::steady_clock::now().time_since_epoch().count();
  if (now <= deadline) return false;
  // Latch the expiry as a regular cancellation so every subsequent check
  // is one atomic load and the cause is uniform across ranks.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!cancelled_.load(std::memory_order_relaxed)) {
      cause_ = Status::Aborted("deadline exceeded");
      cancelled_.store(true, std::memory_order_release);
    }
  }
  return true;
}

Status CancellationToken::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!cancelled_.load(std::memory_order_relaxed)) return Status::OK();
  return cause_;
}

}  // namespace modularis
