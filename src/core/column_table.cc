#include "core/column_table.h"

namespace modularis {

ColumnTable::ColumnTable(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) {
    columns_.emplace_back(f.type);
  }
}

void ColumnTable::AppendRow(const RowRef& row) {
  for (size_t c = 0; c < columns_.size(); ++c) {
    switch (schema_.field(c).type) {
      case AtomType::kInt32:
      case AtomType::kDate:
        columns_[c].AppendInt32(row.GetInt32(static_cast<int>(c)));
        break;
      case AtomType::kInt64:
        columns_[c].AppendInt64(row.GetInt64(static_cast<int>(c)));
        break;
      case AtomType::kFloat64:
        columns_[c].AppendFloat64(row.GetFloat64(static_cast<int>(c)));
        break;
      case AtomType::kString:
        columns_[c].AppendString(row.GetString(static_cast<int>(c)));
        break;
    }
  }
  ++num_rows_;
}

void ColumnTable::FinishBulkLoad() {
  num_rows_ = columns_.empty() ? 0 : columns_[0].size();
}

void ColumnTable::MaterializeRow(size_t i, RowWriter* writer) const {
  for (size_t c = 0; c < columns_.size(); ++c) {
    int col = static_cast<int>(c);
    switch (schema_.field(c).type) {
      case AtomType::kInt32:
      case AtomType::kDate:
        writer->SetInt32(col, columns_[c].GetInt32(i));
        break;
      case AtomType::kInt64:
        writer->SetInt64(col, columns_[c].GetInt64(i));
        break;
      case AtomType::kFloat64:
        writer->SetFloat64(col, columns_[c].GetFloat64(i));
        break;
      case AtomType::kString:
        writer->SetString(col, columns_[c].GetString(i));
        break;
    }
  }
}

RowVectorPtr ColumnTable::ToRowVector() const {
  RowVectorPtr out = RowVector::Make(schema_);
  out->Reserve(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) {
    RowWriter w = out->AppendRow();
    MaterializeRow(i, &w);
  }
  return out;
}

ColumnTablePtr ColumnTable::FromRowVector(const RowVector& rows) {
  ColumnTablePtr table = Make(rows.schema());
  for (size_t i = 0; i < rows.size(); ++i) {
    table->AppendRow(rows.row(i));
  }
  return table;
}

}  // namespace modularis
