#ifndef MODULARIS_CORE_EXPR_H_
#define MODULARIS_CORE_EXPR_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/row_vector.h"
#include "core/status.h"
#include "core/tuple.h"

/// \file expr.h
/// Scalar expression trees evaluated against packed rows. Filter, Map,
/// Projection and the predicate/projection pushdown passes are built on
/// these. In the paper the UDFs are Numba-compiled Python inlined into the
/// LLVM plan; here they are C++ expression trees (or std::function callables
/// in ParametrizedMap) inlined into fused loops by the fusion pass.

namespace modularis {

/// Comparison operators.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };
/// Arithmetic operators. Division always yields f64; the others preserve
/// integer-ness when both sides are integers.
enum class ArithOp { kAdd, kSub, kMul, kDiv };

/// Borrowed scalar view used on the non-allocating comparison fast path.
struct ScalarView {
  enum class Tag : uint8_t { kInt, kDouble, kString } tag = Tag::kInt;
  int64_t i = 0;
  double d = 0;
  std::string_view s;
};

// -- Batch expression evaluation --------------------------------------------
// Expressions also compile to column-wise kernels that evaluate a whole
// batch of packed rows at once (docs/DESIGN-vectorized.md, "Batch
// expression evaluation"). Predicates narrow *selection vectors* instead
// of producing per-row booleans, so filtered rows are never copied before
// projection; value kernels fill typed scratch vectors. Nodes that cannot
// be statically typed (mixed-type IF branches) fall back to the
// interpreted per-row Eval() inside the batch API, so batch results are
// byte-identical to the row-at-a-time oracle by construction.

/// Ascending indices of the rows of a batch that are still live.
using SelVector = std::vector<uint32_t>;

/// True when sel[0..n) is strictly ascending — the SelVector contract every
/// batch kernel assumes. The contiguous-run fast paths detect dense runs by
/// their endpoints (sel[n-1] - sel[0] == n - 1), so a permuted selection
/// would silently mis-assign lanes instead of failing.
inline bool IsAscendingSel(const uint32_t* sel, size_t n) {
  for (size_t i = 1; i < n; ++i) {
    if (sel[i] <= sel[i - 1]) return false;
  }
  return true;
}

/// Release-mode defense of the SelVector contract at kernel entry points
/// (operators validate inherited selections before handing them to the
/// typed kernels; the bytecode tier validates at program entry). Returns
/// Internal mentioning `where` on a violation. One predictable pass over
/// memory the kernels are about to touch anyway.
Status ValidateSelection(const char* where, const uint32_t* sel, size_t n);

/// A span of packed rows handed to batch kernels (the data/stride/schema
/// triple of a RowBatch without the ownership machinery).
struct RowSpan {
  const uint8_t* data = nullptr;
  uint32_t stride = 0;
  const Schema* schema = nullptr;

  const uint8_t* row_ptr(uint32_t r) const {
    return data + static_cast<size_t>(r) * stride;
  }
  RowRef row(uint32_t r) const { return RowRef(row_ptr(r), schema); }
};

/// Static result type of an expression over one schema. kItem marks the
/// interpreted fallback: the node's dynamic type can vary per row (or is
/// not worth a kernel), so batch evaluation stores whole Items.
enum class BatchTag : uint8_t { kI64, kF64, kStr, kItem };

/// One value per selected row, in the statically derived representation.
/// String entries are borrowed views into the rows / literal nodes and
/// stay valid as long as the batch they were evaluated from.
struct BatchColumn {
  BatchTag tag = BatchTag::kI64;
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<std::string_view> str;
  std::vector<Item> items;  // interpreted fallback (kItem)

  /// Re-types the column and sizes the active vector (capacity reused).
  void Reset(BatchTag t, size_t n) {
    tag = t;
    switch (t) {
      case BatchTag::kI64: i64.resize(n); break;
      case BatchTag::kF64: f64.resize(n); break;
      case BatchTag::kStr: str.resize(n); break;
      case BatchTag::kItem: items.resize(n); break;
    }
  }
  size_t size() const {
    switch (tag) {
      case BatchTag::kI64: return i64.size();
      case BatchTag::kF64: return f64.size();
      case BatchTag::kStr: return str.size();
      case BatchTag::kItem: return items.size();
    }
    return 0;
  }
};

/// Reusable scratch for batch kernels. Owned by the evaluating operator —
/// NOT by the expression tree, which is shared between concurrently
/// executing rank plans. Acquire/Release follow the recursion, i.e. strict
/// LIFO; vectors keep their capacity across batches.
class BatchScratch {
 public:
  BatchColumn* AcquireColumn() {
    if (columns_used_ == columns_.size()) {
      columns_.push_back(std::make_unique<BatchColumn>());
    }
    return columns_[columns_used_++].get();
  }
  void ReleaseColumn() { --columns_used_; }

  SelVector* AcquireSel() {
    if (sels_used_ == sels_.size()) {
      sels_.push_back(std::make_unique<SelVector>());
    }
    return sels_[sels_used_++].get();
  }
  void ReleaseSel() { --sels_used_; }

 private:
  std::vector<std::unique_ptr<BatchColumn>> columns_;
  size_t columns_used_ = 0;
  std::vector<std::unique_ptr<SelVector>> sels_;
  size_t sels_used_ = 0;
};

// -- Group-key serialization + hash kernels ---------------------------------
// Grouping operators (ReduceByKey, the partition-owned parallel
// aggregation pass) compare group keys as fixed-stride byte strings.
// KeyCodec compiles a (schema, key columns) pair into a column-wise
// serializer — one tight fixed-width copy loop per key column instead of
// a per-row type switch — and HashKeysSpan hashes the serialized keys in
// one pass. Both the radix partition pass and the state-table probes
// consume the same bytes/hashes, so partition assignment is a pure
// function of the key.

/// Fixed-stride serialized group keys. Each key column contributes its
/// packed-row field bytes verbatim: 4 bytes for i32/date, 8 for i64/f64
/// (so f64 keys group by bit pattern, exactly like the row-at-a-time
/// path), and `2 + width` for strings. Strings rely on the packed-row
/// invariant that RowWriter::SetString zero-fills the tail, which makes
/// the fixed-width field bytes a canonical encoding of the value.
class KeyCodec {
 public:
  KeyCodec() = default;
  KeyCodec(const Schema& schema, const std::vector<int>& key_cols);

  /// Bytes per serialized key (fixed for the schema; 0 for no columns).
  uint32_t key_size() const { return key_size_; }

  /// Serializes the keys of rows [begin, begin + n) of `rows` into `out`
  /// (n * key_size() bytes), column-wise: one fixed-width copy loop per
  /// key column.
  void SerializeKeys(const RowSpan& rows, size_t begin, size_t n,
                     uint8_t* out) const;

  /// Single-row form for per-row probes (the serial selective path).
  void SerializeKey(const RowRef& row, uint8_t* out) const;

  struct Part {
    uint32_t src_offset;  // byte offset inside the packed row
    uint32_t dst_offset;  // byte offset inside the serialized key
    uint32_t bytes;
  };
  /// Layout of the serialized key, one entry per key column. KeyProgram
  /// (core/expr_bc.h) compiles these into fused serialize+hash kernels.
  const std::vector<Part>& parts() const { return parts_; }

 private:
  std::vector<Part> parts_;
  uint32_t key_size_ = 0;
};

/// splitmix64-style finalizer used by the key hash kernels. Self-contained
/// so core/ stays independent of the sub-operator radix header.
inline uint64_t MixKeyHash64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// 64-bit hash of one serialized key (word-wise mix over the fixed-size
/// bytes). Deterministic across runs and platforms of equal endianness —
/// the partition pass derives partition ids from the high bits, the state
/// tables consume the low bits, so the two never alias.
inline uint64_t HashKeyBytes(const uint8_t* key, uint32_t len) {
  if (len == 8) {
    uint64_t w;
    std::memcpy(&w, key, sizeof(w));
    return MixKeyHash64(w);
  }
  uint64_t h = 0x9e3779b97f4a7c15ull ^ len;
  uint32_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t w;
    std::memcpy(&w, key + i, sizeof(w));
    h = MixKeyHash64(h ^ w);
  }
  if (i < len) {
    uint64_t w = 0;
    std::memcpy(&w, key + i, len - i);
    h = MixKeyHash64(h ^ w);
  }
  return h;
}

/// Hash kernel over `n` serialized keys of `key_size` bytes each, packed
/// at a fixed stride (the KeyCodec output layout): fills out[0..n).
void HashKeysSpan(const uint8_t* keys, size_t n, uint32_t key_size,
                  uint64_t* out);

/// SQL LIKE matcher supporting '%' and '_' — shared by the interpreted
/// and bytecode LIKE kernels so both tiers match byte-for-byte.
bool LikeMatch(std::string_view text, std::string_view pattern);

/// Structural kind of an expression node. The planner's rewrite passes
/// (src/planner/) dispatch on this to walk and rebuild trees without
/// depending on the concrete node classes, which stay private to expr.cc.
enum class ExprKind {
  kOther,
  kColumn,
  kLiteral,
  kCompare,
  kArith,
  kAnd,
  kOr,
  kNot,
  kLike,
  kInStr,
  kInInt,
  kIf,
};

class BcCompiler;  // core/expr_bc.h — bytecode compilation tier

/// Immutable expression node. Expressions are shared (shared_ptr) between
/// plans and passes.
class Expr {
 public:
  virtual ~Expr() = default;

  /// Evaluates to an owned Item (allocates for strings). NOTE: has no
  /// error channel, so nested predicate positions (IfExpr conditions)
  /// degrade to unchecked EvalBool() semantics here. Every evaluation
  /// site with a Status channel uses EvalChecked() instead.
  virtual Item Eval(const RowRef& row) const = 0;

  /// Checked evaluation: like Eval(), but nested predicate positions
  /// (IfExpr conditions, AND/OR/NOT children) use checked boolean
  /// semantics — a condition that evaluates to a non-numeric value is a
  /// hard error instead of silently false. This is the row-at-a-time
  /// oracle the batch and bytecode tiers must match.
  virtual Status EvalChecked(const RowRef& row, Item* out) const {
    *out = Eval(row);
    return Status::OK();
  }

  /// Boolean evaluation fast path; default falls back to Eval().
  /// NOTE: silently treats non-numeric results as false. Remains only for
  /// callers that opted out of checked semantics; every predicate context
  /// in the engine (Filter, IfExpr conditions, the batch and bytecode
  /// kernels) goes through EvalBoolChecked().
  virtual bool EvalBool(const RowRef& row) const {
    Item v = Eval(row);
    return v.is_i64() ? v.i64() != 0 : (v.is_f64() && v.f64() != 0);
  }

  /// Checked boolean evaluation: like EvalBool(), but a predicate that
  /// evaluates to a non-numeric value (a string column used as a filter)
  /// is a hard error instead of silently false.
  virtual Status EvalBoolChecked(const RowRef& row, bool* out) const {
    Item v;
    MODULARIS_RETURN_NOT_OK(EvalChecked(row, &v));
    if (v.is_i64()) {
      *out = v.i64() != 0;
      return Status::OK();
    }
    if (v.is_f64()) {
      *out = v.f64() != 0;
      return Status::OK();
    }
    return Status::InvalidArgument("predicate " + ToString() +
                                   " evaluated to a non-numeric value");
  }

  /// Static batch result type of this node over rows of `schema`. kItem
  /// means the node (or a child) cannot be statically typed and EvalBatch
  /// will run the interpreted per-row fallback.
  virtual BatchTag BatchType(const Schema& schema) const {
    (void)schema;
    return BatchTag::kItem;
  }

  /// Column-wise value kernel: evaluates this node for the `n` rows
  /// sel[0..n) of `rows` into `*out` (whose tag will equal
  /// BatchType(*rows.schema)). `sel` must be strictly ascending (the
  /// SelVector contract above) — the typed kernels detect contiguous
  /// runs by their endpoints and take fixed-stride fast paths that would
  /// mis-assign lanes on a permuted selection. The base implementation is
  /// the interpreted fallback — one Eval() per selected row into an Item
  /// vector — so every node batches semantically; typed nodes override
  /// with tight loops.
  virtual Status EvalBatch(const RowSpan& rows, const uint32_t* sel, size_t n,
                           BatchColumn* out, BatchScratch* scratch) const;

  /// Predicate kernel: narrows `*sel` (ascending) in place to the rows
  /// satisfying this predicate. Composite predicates narrow child by
  /// child, which preserves the row path's short-circuit semantics: a row
  /// never reaches a child that per-row evaluation would have skipped.
  /// Checked semantics throughout: a non-numeric predicate value is a
  /// hard error (EvalBoolChecked), on every tier.
  virtual Status FilterBatch(const RowSpan& rows, SelVector* sel,
                             BatchScratch* scratch) const;

  /// Bytecode emission hooks (core/expr_bc.h). BcEmitValue appends
  /// instructions computing this node over the lanes of sel register
  /// `sel` and returns the value register holding the result, or -1 when
  /// the node cannot be compiled (the compiler then emits an interpreted
  /// EvalBatch fallback instruction and bumps the expr.bc_fallback.value
  /// counter). BcEmitFilter appends instructions narrowing sel register
  /// `sel` to the rows satisfying this predicate and returns false when
  /// the node has no native filter form (the compiler derives one from
  /// the value form, mirroring the base FilterBatch). Emission must be
  /// side-effect free on the tree: programs are immutable after compile
  /// and shareable across workers like the tree itself.
  virtual int BcEmitValue(BcCompiler& c, int sel) const;
  virtual bool BcEmitFilter(BcCompiler& c, int sel) const;

  /// Non-allocating scalar view fast path; returns false if this node
  /// cannot produce a borrowed view (then use Eval()).
  virtual bool TryEvalView(const RowRef& row, ScalarView* out) const {
    (void)row;
    (void)out;
    return false;
  }

  /// Appends every column index referenced by this subtree (for pruning).
  virtual void CollectColumns(std::vector<int>* cols) const { (void)cols; }

  /// If this node is a bare column reference, its index; otherwise -1.
  /// Lets operators compile direct-offset fast paths (the JIT analog).
  virtual int AsColumnIndex() const { return -1; }

  // -- Structural introspection (planner rewrites) --------------------------
  // The rewrite passes split conjunctions, remap column indices across
  // projection pruning and join-side swaps, and fold constant subtrees.
  // Nodes expose their shape through these hooks; a node that does not
  // override RebuildWithChildren() is simply not rewritable and passes
  // keep the original tree (bailing out of the rewrite, never failing).

  /// Structural kind for planner dispatch.
  virtual ExprKind kind() const { return ExprKind::kOther; }

  /// Number of expression-valued children.
  virtual size_t NumExprChildren() const { return 0; }

  /// Child `i` (0 <= i < NumExprChildren()); nullptr out of range.
  virtual std::shared_ptr<const Expr> ExprChild(size_t i) const {
    (void)i;
    return nullptr;
  }

  /// Rebuilds this node over new children (exactly NumExprChildren() of
  /// them, same order as ExprChild). Returns nullptr when the node cannot
  /// be rebuilt — callers must then keep the original subtree.
  virtual std::shared_ptr<const Expr> RebuildWithChildren(
      std::vector<std::shared_ptr<const Expr>> children) const {
    (void)children;
    return nullptr;
  }

  /// If this node is a literal, stores its value and returns true.
  virtual bool AsLiteral(Item* out) const {
    (void)out;
    return false;
  }

  /// If this node is a comparison, stores its operator and returns true.
  virtual bool AsCompare(CmpOp* op) const {
    (void)op;
    return false;
  }

  /// For IN-list nodes, the number of list values (the cardinality input
  /// to the planner's selectivity model); 0 for everything else.
  virtual size_t InListSize() const { return 0; }

  virtual std::string ToString() const = 0;
};

using ExprPtr = std::shared_ptr<const Expr>;

/// Aggregate function kinds supported by Reduce / ReduceByKey. AVG is
/// expanded by the frontend into SUM + COUNT plus a final Map division.
enum class AggKind { kSum, kCount, kMin, kMax };

/// One aggregate column: `kind` applied to `input` (null input = COUNT(*)),
/// materialized under `name` with type `out_type`.
struct AggSpec {
  AggKind kind = AggKind::kSum;
  ExprPtr input;
  std::string name;
  AtomType out_type = AtomType::kFloat64;
};

const char* AggKindName(AggKind kind);

// -- Builder helpers --------------------------------------------------------
// Terse constructors used throughout plan builders and tests:
//   ex::Gt(ex::Col(3), ex::Lit(int64_t{10}))

namespace ex {

/// Reference to column `index` of the input row.
ExprPtr Col(int index);
/// Integer / float / string / date literals.
ExprPtr Lit(int64_t v);
ExprPtr Lit(double v);
ExprPtr Lit(std::string v);
/// Date literal from "YYYY-MM-DD" (aborts on malformed constant).
ExprPtr DateLit(std::string_view ymd);

ExprPtr Cmp(CmpOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Eq(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ne(ExprPtr lhs, ExprPtr rhs);
ExprPtr Lt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Le(ExprPtr lhs, ExprPtr rhs);
ExprPtr Gt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ge(ExprPtr lhs, ExprPtr rhs);

ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Add(ExprPtr lhs, ExprPtr rhs);
ExprPtr Sub(ExprPtr lhs, ExprPtr rhs);
ExprPtr Mul(ExprPtr lhs, ExprPtr rhs);
ExprPtr Div(ExprPtr lhs, ExprPtr rhs);

ExprPtr And(std::vector<ExprPtr> children);
ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr And(ExprPtr a, ExprPtr b, ExprPtr c);
ExprPtr Or(std::vector<ExprPtr> children);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Not(ExprPtr inner);

/// SQL LIKE with '%' and '_' wildcards.
ExprPtr Like(ExprPtr input, std::string pattern);
/// Membership in a set of string literals.
ExprPtr InStr(ExprPtr input, std::vector<std::string> values);
/// Membership in a set of integer literals.
ExprPtr InInt(ExprPtr input, std::vector<int64_t> values);
/// lo <= input <= hi (numeric).
ExprPtr Between(ExprPtr input, ExprPtr lo, ExprPtr hi);
/// cond ? then : otherwise.
ExprPtr If(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr);

}  // namespace ex

}  // namespace modularis

#endif  // MODULARIS_CORE_EXPR_H_
