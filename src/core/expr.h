#ifndef MODULARIS_CORE_EXPR_H_
#define MODULARIS_CORE_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/row_vector.h"
#include "core/tuple.h"

/// \file expr.h
/// Scalar expression trees evaluated against packed rows. Filter, Map,
/// Projection and the predicate/projection pushdown passes are built on
/// these. In the paper the UDFs are Numba-compiled Python inlined into the
/// LLVM plan; here they are C++ expression trees (or std::function callables
/// in ParametrizedMap) inlined into fused loops by the fusion pass.

namespace modularis {

/// Comparison operators.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };
/// Arithmetic operators. Division always yields f64; the others preserve
/// integer-ness when both sides are integers.
enum class ArithOp { kAdd, kSub, kMul, kDiv };

/// Borrowed scalar view used on the non-allocating comparison fast path.
struct ScalarView {
  enum class Tag : uint8_t { kInt, kDouble, kString } tag = Tag::kInt;
  int64_t i = 0;
  double d = 0;
  std::string_view s;
};

/// Immutable expression node. Expressions are shared (shared_ptr) between
/// plans and passes.
class Expr {
 public:
  virtual ~Expr() = default;

  /// Evaluates to an owned Item (allocates for strings).
  virtual Item Eval(const RowRef& row) const = 0;

  /// Boolean evaluation fast path; default falls back to Eval().
  virtual bool EvalBool(const RowRef& row) const {
    Item v = Eval(row);
    return v.is_i64() ? v.i64() != 0 : (v.is_f64() && v.f64() != 0);
  }

  /// Non-allocating scalar view fast path; returns false if this node
  /// cannot produce a borrowed view (then use Eval()).
  virtual bool TryEvalView(const RowRef& row, ScalarView* out) const {
    (void)row;
    (void)out;
    return false;
  }

  /// Appends every column index referenced by this subtree (for pruning).
  virtual void CollectColumns(std::vector<int>* cols) const { (void)cols; }

  /// If this node is a bare column reference, its index; otherwise -1.
  /// Lets operators compile direct-offset fast paths (the JIT analog).
  virtual int AsColumnIndex() const { return -1; }

  virtual std::string ToString() const = 0;
};

using ExprPtr = std::shared_ptr<const Expr>;

/// Aggregate function kinds supported by Reduce / ReduceByKey. AVG is
/// expanded by the frontend into SUM + COUNT plus a final Map division.
enum class AggKind { kSum, kCount, kMin, kMax };

/// One aggregate column: `kind` applied to `input` (null input = COUNT(*)),
/// materialized under `name` with type `out_type`.
struct AggSpec {
  AggKind kind = AggKind::kSum;
  ExprPtr input;
  std::string name;
  AtomType out_type = AtomType::kFloat64;
};

const char* AggKindName(AggKind kind);

// -- Builder helpers --------------------------------------------------------
// Terse constructors used throughout plan builders and tests:
//   ex::Gt(ex::Col(3), ex::Lit(int64_t{10}))

namespace ex {

/// Reference to column `index` of the input row.
ExprPtr Col(int index);
/// Integer / float / string / date literals.
ExprPtr Lit(int64_t v);
ExprPtr Lit(double v);
ExprPtr Lit(std::string v);
/// Date literal from "YYYY-MM-DD" (aborts on malformed constant).
ExprPtr DateLit(std::string_view ymd);

ExprPtr Cmp(CmpOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Eq(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ne(ExprPtr lhs, ExprPtr rhs);
ExprPtr Lt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Le(ExprPtr lhs, ExprPtr rhs);
ExprPtr Gt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ge(ExprPtr lhs, ExprPtr rhs);

ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Add(ExprPtr lhs, ExprPtr rhs);
ExprPtr Sub(ExprPtr lhs, ExprPtr rhs);
ExprPtr Mul(ExprPtr lhs, ExprPtr rhs);
ExprPtr Div(ExprPtr lhs, ExprPtr rhs);

ExprPtr And(std::vector<ExprPtr> children);
ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr And(ExprPtr a, ExprPtr b, ExprPtr c);
ExprPtr Or(std::vector<ExprPtr> children);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Not(ExprPtr inner);

/// SQL LIKE with '%' and '_' wildcards.
ExprPtr Like(ExprPtr input, std::string pattern);
/// Membership in a set of string literals.
ExprPtr InStr(ExprPtr input, std::vector<std::string> values);
/// Membership in a set of integer literals.
ExprPtr InInt(ExprPtr input, std::vector<int64_t> values);
/// lo <= input <= hi (numeric).
ExprPtr Between(ExprPtr input, ExprPtr lo, ExprPtr hi);
/// cond ? then : otherwise.
ExprPtr If(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr);

}  // namespace ex

}  // namespace modularis

#endif  // MODULARIS_CORE_EXPR_H_
