#ifndef MODULARIS_CORE_MEMORY_H_
#define MODULARIS_CORE_MEMORY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

/// \file memory.h
/// Query-wide memory governance (docs/DESIGN-memory.md). One MemoryBudget
/// per rank (and one for the driver tail), shared by that rank's worker
/// threads: charge/release are relaxed atomics, fired only when a tracked
/// container *grows capacity* (geometric growth makes that O(log n) events
/// per container), so the tracker is effectively free on the row hot path.
///
/// Two distinct roles, deliberately separated:
///  * Accounting (Charge/Release/peak): every large allocation site
///    reports growth so `mem.peak_bytes` reflects the rank's real
///    footprint. Accounting never fails an allocation.
///  * Admission (WouldExceed + the operators' spill thresholds): blocking
///    operators compare *deterministic size estimates* — drained input
///    bytes, histogram partition counts — against the configured limit.
///    Decisions are a pure function of (limit, histogram); they never read
///    the racy `used()` value, so spill behaviour (and therefore output
///    bytes) is identical at any thread count and interleaving.

namespace modularis {

class MemoryBudget {
 public:
  /// `limit_bytes` = 0 means unlimited: accounting still runs (peak is
  /// still reported) but WouldExceed() never fires.
  explicit MemoryBudget(size_t limit_bytes = 0) : limit_(limit_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  size_t limit() const { return limit_; }
  bool unlimited() const { return limit_ == 0; }

  /// Records `bytes` of new capacity. Never fails — enforcement is the
  /// operators' admission checks, not the accounting path.
  void Charge(size_t bytes) {
    if (bytes == 0) return;
    size_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    size_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed)) {
    }
  }

  void Release(size_t bytes) {
    if (bytes == 0) return;
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// Deterministic admission check: would a working set of `bytes` alone
  /// exceed the configured limit? Pure function of (limit, bytes) — never
  /// consults the live counter (see file comment).
  bool WouldExceed(size_t bytes) const { return limit_ != 0 && bytes > limit_; }

  /// Records a denied/degraded reservation ("mem.denials").
  void NoteDenial() { denials_.fetch_add(1, std::memory_order_relaxed); }

  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }
  int64_t denials() const { return denials_.load(std::memory_order_relaxed); }

 private:
  size_t limit_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
  std::atomic<int64_t> denials_{0};
};

/// RAII bundle for explicit (non-ByteBuffer) charges: hash-table bucket
/// and entry arrays, state-table slabs, overflow arenas. Add() as the
/// structure grows; destruction (or Reset()) releases everything charged.
class ScopedCharge {
 public:
  ScopedCharge() = default;
  explicit ScopedCharge(MemoryBudget* budget) : budget_(budget) {}
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;
  ~ScopedCharge() { Reset(); }

  void Bind(MemoryBudget* budget) {
    Reset();
    budget_ = budget;
  }

  void Add(size_t bytes) {
    if (budget_ == nullptr || bytes == 0) return;
    budget_->Charge(bytes);
    charged_ += bytes;
  }

  void Reset() {
    if (budget_ != nullptr && charged_ > 0) budget_->Release(charged_);
    charged_ = 0;
  }

  size_t charged() const { return charged_; }

 private:
  MemoryBudget* budget_ = nullptr;
  size_t charged_ = 0;
};

/// The shared spill-admission rule (docs/DESIGN-memory.md): a blocking
/// operator degrades to its spill path when its drained input alone claims
/// more than half the budget — the other half is reserved for state tables,
/// scratch and staging. Pure function of (limit, bytes).
inline bool ShouldSpill(size_t input_bytes, size_t limit_bytes) {
  return limit_bytes != 0 && input_bytes > limit_bytes / 2;
}

/// Per-partition in-memory quota under a budget: what one spill partition
/// (or sort run) may occupy while being processed. A quarter of the budget
/// (half of the non-input half), floored so tiny-budget tests degrade to
/// many small partitions instead of zero-capacity ones only when a single
/// row genuinely cannot fit.
inline size_t SpillQuotaBytes(size_t limit_bytes) { return limit_bytes / 4; }

}  // namespace modularis

#endif  // MODULARIS_CORE_MEMORY_H_
