#include "core/types.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

namespace modularis {

namespace {

uint32_t AtomAlignment(AtomType type) {
  switch (type) {
    case AtomType::kInt32:
    case AtomType::kDate:
      return 4;
    case AtomType::kInt64:
    case AtomType::kFloat64:
      return 8;
    case AtomType::kString:
      return 2;  // uint16 length prefix
  }
  return 8;
}

uint32_t AtomStorageSize(const Field& f) {
  switch (f.type) {
    case AtomType::kInt32:
    case AtomType::kDate:
      return 4;
    case AtomType::kInt64:
    case AtomType::kFloat64:
      return 8;
    case AtomType::kString:
      return 2 + f.width;
  }
  return 8;
}

uint32_t AlignUp(uint32_t value, uint32_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}

}  // namespace

const char* AtomTypeName(AtomType type) {
  switch (type) {
    case AtomType::kInt32: return "i32";
    case AtomType::kInt64: return "i64";
    case AtomType::kFloat64: return "f64";
    case AtomType::kString: return "str";
    case AtomType::kDate: return "date";
  }
  return "?";
}

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  offsets_.reserve(fields_.size());
  uint32_t offset = 0;
  for (const Field& f : fields_) {
    offset = AlignUp(offset, AtomAlignment(f.type));
    offsets_.push_back(offset);
    offset += AtomStorageSize(f);
  }
  row_size_ = AlignUp(offset, 8);
}

int Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Schema Schema::Select(const std::vector<int>& indices) const {
  std::vector<Field> selected;
  selected.reserve(indices.size());
  for (int i : indices) selected.push_back(fields_[i]);
  return Schema(std::move(selected));
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<Field> all = fields_;
  for (Field f : other.fields_) {
    if (FieldIndex(f.name) >= 0) f.name += "_r";
    all.push_back(std::move(f));
  }
  return Schema(std::move(all));
}

bool Schema::Equals(const Schema& other) const {
  return fields_ == other.fields_;
}

std::string Schema::ToString() const {
  std::string out = "<";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += AtomTypeName(fields_[i].type);
    if (fields_[i].type == AtomType::kString) {
      out += "(" + std::to_string(fields_[i].width) + ")";
    }
  }
  out += ">";
  return out;
}

Schema KeyValueSchema() {
  return Schema({Field::I64("key"), Field::I64("value")});
}

// Days-from-civil / civil-from-days after Howard Hinnant's algorithms.
int32_t DateFromYMD(int year, int month, int day) {
  year -= month <= 2;
  const int era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);
  const unsigned doy =
      (153 * (static_cast<unsigned>(month) + (month > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(day) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int>(doe) - 719468;
}

void YMDFromDate(int32_t days, int* year, int* month, int* day) {
  int32_t z = days + 719468;
  const int era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int y = static_cast<int>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  *year = y + (m <= 2);
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

Result<int32_t> ParseDate(std::string_view text) {
  int year = 0, month = 0, day = 0;
  if (text.size() != 10 || text[4] != '-' || text[7] != '-') {
    return Status::InvalidArgument("malformed date: " + std::string(text));
  }
  for (int i : {0, 1, 2, 3, 5, 6, 8, 9}) {
    if (text[i] < '0' || text[i] > '9') {
      return Status::InvalidArgument("malformed date: " + std::string(text));
    }
  }
  year = (text[0] - '0') * 1000 + (text[1] - '0') * 100 + (text[2] - '0') * 10 +
         (text[3] - '0');
  month = (text[5] - '0') * 10 + (text[6] - '0');
  day = (text[8] - '0') * 10 + (text[9] - '0');
  if (month < 1 || month > 12 || day < 1 || day > 31) {
    return Status::InvalidArgument("date out of range: " + std::string(text));
  }
  return DateFromYMD(year, month, day);
}

std::string FormatDate(int32_t days) {
  int y, m, d;
  YMDFromDate(days, &y, &m, &d);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

namespace {
int DaysInMonth(int year, int month) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2) {
    bool leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
    return leap ? 29 : 28;
  }
  return kDays[month - 1];
}
}  // namespace

int32_t AddMonths(int32_t days, int months) {
  int y, m, d;
  YMDFromDate(days, &y, &m, &d);
  int total = (y * 12 + (m - 1)) + months;
  int ny = total / 12;
  int nm = total % 12 + 1;
  int nd = std::min(d, DaysInMonth(ny, nm));
  return DateFromYMD(ny, nm, nd);
}

}  // namespace modularis
