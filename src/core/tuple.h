#ifndef MODULARIS_CORE_TUPLE_H_
#define MODULARIS_CORE_TUPLE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "core/column_table.h"
#include "core/row_vector.h"

/// \file tuple.h
/// The runtime values flowing between sub-operators.
///
/// Paper §3.3: sub-operators are iterators over tuples, and tuples map field
/// identifiers to *items*, where an item is either an atom or a collection
/// of tuples. Bulk data always travels inside collection items (RowVector);
/// atom items carry scalars such as partition IDs, paths, or single column
/// values extracted by scan operators.
///
/// As an engine-level optimization, scan operators stream individual records
/// as *row items*: borrowed views into the underlying collection (or into an
/// operator-owned scratch row). A row item yielded by Next() is only valid
/// until the next call to Next() on the same operator; operators that retain
/// rows (Materialize*, BuildProbe) copy the packed bytes.

namespace modularis {

/// One field of a runtime tuple: an atom, a collection, or a borrowed row.
class Item {
 public:
  enum class Kind : uint8_t {
    kNull,
    kInt64,
    kFloat64,
    kString,
    kCollection,
    kRow,
    kTable,
  };

  Item() : repr_(std::monostate{}) {}
  Item(int64_t v) : repr_(v) {}              // NOLINT(runtime/explicit)
  Item(int32_t v)                            // NOLINT(runtime/explicit)
      : repr_(static_cast<int64_t>(v)) {}
  Item(double v) : repr_(v) {}               // NOLINT(runtime/explicit)
  Item(std::string v) : repr_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Item(const char* v) : repr_(std::string(v)) {}  // NOLINT(runtime/explicit)
  Item(RowVectorPtr v) : repr_(std::move(v)) {}   // NOLINT(runtime/explicit)
  Item(RowRef v) : repr_(v) {}               // NOLINT(runtime/explicit)
  Item(ColumnTablePtr v) : repr_(std::move(v)) {}  // NOLINT(runtime/explicit)

  Kind kind() const { return static_cast<Kind>(repr_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_i64() const { return kind() == Kind::kInt64; }
  bool is_f64() const { return kind() == Kind::kFloat64; }
  bool is_str() const { return kind() == Kind::kString; }
  bool is_collection() const { return kind() == Kind::kCollection; }
  bool is_row() const { return kind() == Kind::kRow; }
  bool is_table() const { return kind() == Kind::kTable; }

  int64_t i64() const { return std::get<int64_t>(repr_); }
  double f64() const { return std::get<double>(repr_); }
  const std::string& str() const { return std::get<std::string>(repr_); }
  const RowVectorPtr& collection() const {
    return std::get<RowVectorPtr>(repr_);
  }
  const RowRef& row() const { return std::get<RowRef>(repr_); }
  const ColumnTablePtr& table() const { return std::get<ColumnTablePtr>(repr_); }

  /// Numeric coercion: i64 or f64 as double (used by aggregate exprs).
  double AsDouble() const {
    return is_i64() ? static_cast<double>(i64()) : f64();
  }

  bool operator==(const Item& other) const;

  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string, RowVectorPtr,
               RowRef, ColumnTablePtr>
      repr_;
};

/// An ordered sequence of items; the unit passed through Next() calls.
class Tuple {
 public:
  Tuple() = default;
  Tuple(std::initializer_list<Item> items) : items_(items) {}
  explicit Tuple(std::vector<Item> items) : items_(std::move(items)) {}

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  Item& operator[](size_t i) { return items_[i]; }
  const Item& operator[](size_t i) const { return items_[i]; }
  void push_back(Item item) { items_.push_back(std::move(item)); }
  void clear() { items_.clear(); }

  /// Appends all items of `other` (used by Zip / CartesianProduct).
  void Append(const Tuple& other) {
    items_.insert(items_.end(), other.items_.begin(), other.items_.end());
  }

  bool operator==(const Tuple& other) const { return items_ == other.items_; }

  std::string ToString() const;

 private:
  std::vector<Item> items_;
};

/// Deep-copies a tuple: borrowed row items are copied into fresh
/// single-row collections owned by `arena` and re-pointed, so the tuple
/// outlives its producer. Atom, collection and table items are shared.
Tuple OwnTuple(const Tuple& t, std::vector<RowVectorPtr>* arena);

}  // namespace modularis

#endif  // MODULARIS_CORE_TUPLE_H_
