#ifndef MODULARIS_CORE_PIPELINE_H_
#define MODULARIS_CORE_PIPELINE_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/sub_operator.h"

/// \file pipeline.h
/// The execution model on DAGs (paper §3.3): plans are cut into pipelines
/// wherever a result has several consumers; each pipeline is a tree
/// executed with the iterator model, and pipelines materialize their
/// results so that multiple downstream pipelines can read them.
///
/// Record-stream pipelines materialize as one packed RowVector (drained
/// through NextBatch when vectorized execution is on); non-record
/// pipelines (⟨pid, collection⟩ pairs, histograms, ...) keep the generic
/// tuple representation. PipelineRef replays either form and serves the
/// packed form zero-copy to batch-aware consumers.
///
/// PipelinePlan is itself a sub-operator, so nested plans (inside
/// NestedMap) can be pipelined too — their pipelines re-execute on every
/// nested invocation, which is exactly the per-partition-pair behaviour
/// of Fig. 3.

namespace modularis {

class PipelinePlan;

/// Materialized result of one intermediate pipeline: packed rows for
/// record streams, generic tuples otherwise (mixed streams demote to
/// tuples to preserve order).
struct PipelineResult {
  RowVectorPtr rows;
  std::vector<Tuple> tuples;
};

/// Source operator reading the materialized result of an earlier pipeline
/// of the enclosing PipelinePlan.
class PipelineRef : public SubOperator {
 public:
  PipelineRef(const PipelinePlan* plan, std::string pipeline_name)
      : SubOperator("PipelineRef(" + pipeline_name + ")"),
        plan_(plan),
        pipeline_name_(std::move(pipeline_name)) {}

  Status Open(ExecContext* ctx) override;
  bool Next(Tuple* out) override;
  /// Record stream iff the materialized result is purely packed rows.
  bool ProducesRecordStream() const override {
    return result_ != nullptr && result_->rows != nullptr &&
           result_->tuples.empty();
  }
  /// Serves the packed remainder of a record-stream result as one
  /// zero-copy batch; falls back to the adapter for tuple results.
  bool NextBatch(RowBatch* out) override;
  /// Re-binds to the worker clone of the owning plan when the clone
  /// context has one; otherwise keeps reading the original plan's
  /// results (materialized before workers start, hence read-only).
  SubOpPtr CloneForWorker(WorkerCloneContext* cc) const override;

 private:
  const PipelinePlan* plan_;
  std::string pipeline_name_;
  const PipelineResult* result_ = nullptr;
  size_t row_pos_ = 0;
  size_t tuple_pos_ = 0;
};

/// An ordered list of materializing pipelines plus one streamed output
/// pipeline. Open() runs the intermediate pipelines in order (each fully
/// drained into a named result); Next() streams the output pipeline.
class PipelinePlan : public SubOperator {
 public:
  PipelinePlan() : SubOperator("PipelinePlan") {}

  /// Appends an intermediate pipeline; its result is readable by later
  /// pipelines through MakeRef(name).
  void Add(std::string name, SubOpPtr root) {
    pipelines_.emplace_back(std::move(name), std::move(root));
  }

  /// Sets the final (streamed) pipeline. Must be called exactly once.
  void SetOutput(SubOpPtr root) { output_ = std::move(root); }

  /// Creates a source reading pipeline `name`'s materialized result.
  SubOpPtr MakeRef(const std::string& name) const {
    return std::make_unique<PipelineRef>(this, name);
  }

  /// Read-only structure accessors, used by the EXPLAIN renderer
  /// (planner/explain.h) to walk the plan without executing it.
  size_t num_pipelines() const { return pipelines_.size(); }
  const std::string& pipeline_name(size_t i) const {
    return pipelines_[i].first;
  }
  const SubOperator* pipeline_root(size_t i) const {
    return pipelines_[i].second.get();
  }
  const SubOperator* output_op() const { return output_.get(); }

  Status Open(ExecContext* ctx) override;
  bool Next(Tuple* out) override;
  bool ProducesRecordStream() const override {
    return output_ != nullptr && output_->ProducesRecordStream();
  }
  bool NextBatch(RowBatch* out) override;
  Status Close() override;
  /// Clones the whole plan (intermediate pipelines, output pipeline and
  /// the refs between them) for a parallel worker; each clone
  /// re-materializes its own results on Open(). Null if any pipeline root
  /// is not parallel-safe.
  SubOpPtr CloneForWorker(WorkerCloneContext* cc) const override;

 private:
  friend class PipelineRef;

  /// Drains one pipeline root into `sink` (packed rows when the stream
  /// turns out to be a record stream, tuples otherwise).
  Status Materialize(SubOperator* root, PipelineResult* sink);

  std::vector<std::pair<std::string, SubOpPtr>> pipelines_;
  SubOpPtr output_;
  std::map<std::string, PipelineResult> results_;
  std::vector<RowVectorPtr> arena_;
};

}  // namespace modularis

#endif  // MODULARIS_CORE_PIPELINE_H_
