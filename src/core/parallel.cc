#include "core/parallel.h"

#include <cstdlib>
#include <cstring>
#include <thread>

namespace modularis {

namespace {

/// MODULARIS_NUM_THREADS overrides the hardware default (0 in ExecOptions)
/// without touching call sites — the knob the parity/TSan runs use to force
/// the parallel paths on machines where hardware_concurrency() is 1.
int EnvThreadOverride() {
  static const int value = [] {
    const char* s = std::getenv("MODULARIS_NUM_THREADS");
    if (s == nullptr) return 0;
    int v = std::atoi(s);
    return v > 0 ? v : 0;
  }();
  return value;
}

}  // namespace

int ExecOptions::ResolvedNumThreads() const {
  if (num_threads > 0) return num_threads;
  int env = EnvThreadOverride();
  if (env > 0) return env;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

Status ParallelFor(int num_workers, const std::function<Status(int)>& body) {
  if (num_workers <= 1) return body(0);
  std::vector<Status> statuses(num_workers, Status::OK());
  std::vector<std::thread> threads;
  threads.reserve(num_workers - 1);
  for (int w = 1; w < num_workers; ++w) {
    threads.emplace_back([&statuses, &body, w] { statuses[w] = body(w); });
  }
  statuses[0] = body(0);
  for (std::thread& t : threads) t.join();
  for (Status& st : statuses) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

Status ParallelFor(const ExecContext* ctx, int num_workers,
                   const std::function<Status(int)>& body) {
  const CancellationToken* cancel = ctx != nullptr ? ctx->cancel : nullptr;
  // Don't dispatch work into a dead query.
  if (cancel != nullptr && cancel->ShouldStop()) return cancel->status();
  MODULARIS_RETURN_NOT_OK(ParallelFor(num_workers, body));
  // Workers whose MorselCursor went dry because of cancellation return OK
  // with partial state; surface the real cause instead.
  if (cancel != nullptr && cancel->ShouldStop()) return cancel->status();
  return Status::OK();
}

int PlanWorkers(size_t rows, const ExecOptions& options) {
  int budget = options.ResolvedNumThreads();
  if (budget <= 1) return 1;
  size_t min_rows = options.parallel_min_rows == 0
                        ? 1
                        : options.parallel_min_rows;
  size_t by_size = rows / min_rows;
  if (by_size <= 1) return 1;
  return by_size < static_cast<size_t>(budget) ? static_cast<int>(by_size)
                                               : budget;
}

void NoteSerialFallback(ExecContext* ctx, const char* op_name) {
  if (ctx->stats == nullptr) return;
  ctx->stats->AddCounter(std::string("parallel.serial_fallback.") + op_name,
                         1);
}

std::vector<size_t> SplitRows(size_t total, int workers) {
  std::vector<size_t> bounds(workers + 1);
  size_t base = total / workers;
  size_t extra = total % workers;
  size_t pos = 0;
  for (int w = 0; w < workers; ++w) {
    bounds[w] = pos;
    pos += base + (static_cast<size_t>(w) < extra ? 1 : 0);
  }
  bounds[workers] = total;
  return bounds;
}

std::vector<IndexRun> BuildIndexRuns(const uint32_t* order,
                                     const std::vector<size_t>& bounds,
                                     size_t cap) {
  std::vector<IndexRun> runs;
  runs.reserve(bounds.size() - 1);
  for (size_t w = 0; w + 1 < bounds.size(); ++w) {
    const size_t run_n = bounds[w + 1] - bounds[w];
    const size_t run_cap = run_n < cap ? run_n : cap;
    runs.push_back(IndexRun{order + bounds[w], order + bounds[w] + run_cap});
  }
  return runs;
}

void PairwiseCombineRows(
    uint8_t* rows, size_t count, uint32_t stride,
    const std::function<void(uint8_t* dst, const uint8_t* src)>& combine) {
  // Level-by-level halving: pair (2i, 2i+1) combines into slot i; an odd
  // tail row moves up a level unchanged. Equivalent to a fixed binary
  // tree over the original rows, so the association order is a function
  // of `count` alone.
  while (count > 1) {
    const size_t pairs = count / 2;
    for (size_t i = 0; i < pairs; ++i) {
      uint8_t* dst = rows + (2 * i) * static_cast<size_t>(stride);
      combine(dst, dst + stride);
      if (i != 2 * i) {
        std::memmove(rows + i * static_cast<size_t>(stride), dst, stride);
      }
    }
    if (count % 2 != 0) {
      std::memmove(rows + pairs * static_cast<size_t>(stride),
                   rows + (count - 1) * static_cast<size_t>(stride), stride);
    }
    count = pairs + count % 2;
  }
}

WorkerSet::WorkerSet(ExecContext* base, int num_workers) : base_(base) {
  registries_.reserve(num_workers);
  contexts_.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    registries_.push_back(std::make_unique<StatsRegistry>());
    auto ctx = std::make_unique<ExecContext>();
    ctx->InitWorker(*base, registries_.back().get());
    contexts_.push_back(std::move(ctx));
  }
}

void WorkerSet::MergeStats() {
  // Two-level merge: within this parallel region a phase costs what its
  // slowest worker took (MergeMax across workers), but successive regions
  // on the same set (NestedMap task groups) are sequential wall time and
  // must SUM into the base registry — otherwise a plan split into G
  // groups would report ~1/G of its true phase times.
  StatsRegistry region;
  for (auto& reg : registries_) {
    region.MergeMax(*reg);
    reg->Clear();
  }
  // The base context's stats sink is nullable (ExecContext convention).
  if (base_->stats != nullptr) {
    base_->stats->Merge(region);
  }
}

}  // namespace modularis
