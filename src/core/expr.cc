#include "core/expr.h"

#include <cstdlib>
#include <unordered_set>

#include "core/types.h"

namespace modularis {

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kSum: return "sum";
    case AggKind::kCount: return "count";
    case AggKind::kMin: return "min";
    case AggKind::kMax: return "max";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------------
// Node implementations
// ---------------------------------------------------------------------------

class ColumnRefExpr : public Expr {
 public:
  explicit ColumnRefExpr(int index) : index_(index) {}

  Item Eval(const RowRef& row) const override {
    const Field& f = row.schema().field(index_);
    switch (f.type) {
      case AtomType::kInt32:
      case AtomType::kDate:
        return Item(static_cast<int64_t>(row.GetInt32(index_)));
      case AtomType::kInt64:
        return Item(row.GetInt64(index_));
      case AtomType::kFloat64:
        return Item(row.GetFloat64(index_));
      case AtomType::kString:
        return Item(std::string(row.GetString(index_)));
    }
    return Item();
  }

  bool TryEvalView(const RowRef& row, ScalarView* out) const override {
    const Field& f = row.schema().field(index_);
    switch (f.type) {
      case AtomType::kInt32:
      case AtomType::kDate:
        out->tag = ScalarView::Tag::kInt;
        out->i = row.GetInt32(index_);
        return true;
      case AtomType::kInt64:
        out->tag = ScalarView::Tag::kInt;
        out->i = row.GetInt64(index_);
        return true;
      case AtomType::kFloat64:
        out->tag = ScalarView::Tag::kDouble;
        out->d = row.GetFloat64(index_);
        return true;
      case AtomType::kString:
        out->tag = ScalarView::Tag::kString;
        out->s = row.GetString(index_);
        return true;
    }
    return false;
  }

  void CollectColumns(std::vector<int>* cols) const override {
    cols->push_back(index_);
  }

  int AsColumnIndex() const override { return index_; }

  std::string ToString() const override {
    return "$" + std::to_string(index_);
  }

  int index() const { return index_; }

 private:
  int index_;
};

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Item value) : value_(std::move(value)) {}

  Item Eval(const RowRef&) const override { return value_; }

  bool TryEvalView(const RowRef&, ScalarView* out) const override {
    switch (value_.kind()) {
      case Item::Kind::kInt64:
        out->tag = ScalarView::Tag::kInt;
        out->i = value_.i64();
        return true;
      case Item::Kind::kFloat64:
        out->tag = ScalarView::Tag::kDouble;
        out->d = value_.f64();
        return true;
      case Item::Kind::kString:
        out->tag = ScalarView::Tag::kString;
        out->s = value_.str();
        return true;
      default:
        return false;
    }
  }

  std::string ToString() const override { return value_.ToString(); }

 private:
  Item value_;
};

int CompareViews(const ScalarView& a, const ScalarView& b) {
  if (a.tag == ScalarView::Tag::kString ||
      b.tag == ScalarView::Tag::kString) {
    return a.s.compare(b.s) < 0 ? -1 : (a.s == b.s ? 0 : 1);
  }
  if (a.tag == ScalarView::Tag::kDouble ||
      b.tag == ScalarView::Tag::kDouble) {
    double x = a.tag == ScalarView::Tag::kDouble
                   ? a.d
                   : static_cast<double>(a.i);
    double y = b.tag == ScalarView::Tag::kDouble
                   ? b.d
                   : static_cast<double>(b.i);
    return x < y ? -1 : (x == y ? 0 : 1);
  }
  return a.i < b.i ? -1 : (a.i == b.i ? 0 : 1);
}

class CompareExpr : public Expr {
 public:
  CompareExpr(CmpOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  bool EvalBool(const RowRef& row) const override {
    ScalarView a, b;
    if (!lhs_->TryEvalView(row, &a) || !rhs_->TryEvalView(row, &b)) {
      // Slow path: materialize items.
      Item ia = lhs_->Eval(row);
      Item ib = rhs_->Eval(row);
      a = ViewOf(ia, &sa_);
      b = ViewOf(ib, &sb_);
    }
    int c = CompareViews(a, b);
    switch (op_) {
      case CmpOp::kEq: return c == 0;
      case CmpOp::kNe: return c != 0;
      case CmpOp::kLt: return c < 0;
      case CmpOp::kLe: return c <= 0;
      case CmpOp::kGt: return c > 0;
      case CmpOp::kGe: return c >= 0;
    }
    return false;
  }

  Item Eval(const RowRef& row) const override {
    return Item(static_cast<int64_t>(EvalBool(row) ? 1 : 0));
  }

  void CollectColumns(std::vector<int>* cols) const override {
    lhs_->CollectColumns(cols);
    rhs_->CollectColumns(cols);
  }

  std::string ToString() const override {
    static const char* kNames[] = {"=", "<>", "<", "<=", ">", ">="};
    return "(" + lhs_->ToString() + " " + kNames[static_cast<int>(op_)] +
           " " + rhs_->ToString() + ")";
  }

 private:
  static ScalarView ViewOf(const Item& item, std::string* storage) {
    ScalarView v;
    switch (item.kind()) {
      case Item::Kind::kInt64:
        v.tag = ScalarView::Tag::kInt;
        v.i = item.i64();
        break;
      case Item::Kind::kFloat64:
        v.tag = ScalarView::Tag::kDouble;
        v.d = item.f64();
        break;
      case Item::Kind::kString:
        *storage = item.str();
        v.tag = ScalarView::Tag::kString;
        v.s = *storage;
        break;
      default:
        break;
    }
    return v;
  }

  CmpOp op_;
  ExprPtr lhs_, rhs_;
  mutable std::string sa_, sb_;
};

class ArithExpr : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Item Eval(const RowRef& row) const override {
    Item a = lhs_->Eval(row);
    Item b = rhs_->Eval(row);
    if (op_ != ArithOp::kDiv && a.is_i64() && b.is_i64()) {
      switch (op_) {
        case ArithOp::kAdd: return Item(a.i64() + b.i64());
        case ArithOp::kSub: return Item(a.i64() - b.i64());
        case ArithOp::kMul: return Item(a.i64() * b.i64());
        default: break;
      }
    }
    double x = a.AsDouble();
    double y = b.AsDouble();
    switch (op_) {
      case ArithOp::kAdd: return Item(x + y);
      case ArithOp::kSub: return Item(x - y);
      case ArithOp::kMul: return Item(x * y);
      case ArithOp::kDiv: return Item(y == 0 ? 0.0 : x / y);
    }
    return Item();
  }

  void CollectColumns(std::vector<int>* cols) const override {
    lhs_->CollectColumns(cols);
    rhs_->CollectColumns(cols);
  }

  std::string ToString() const override {
    static const char* kNames[] = {"+", "-", "*", "/"};
    return "(" + lhs_->ToString() + " " + kNames[static_cast<int>(op_)] +
           " " + rhs_->ToString() + ")";
  }

 private:
  ArithOp op_;
  ExprPtr lhs_, rhs_;
};

class AndExpr : public Expr {
 public:
  explicit AndExpr(std::vector<ExprPtr> children)
      : children_(std::move(children)) {}

  bool EvalBool(const RowRef& row) const override {
    for (const ExprPtr& c : children_) {
      if (!c->EvalBool(row)) return false;
    }
    return true;
  }

  Item Eval(const RowRef& row) const override {
    return Item(static_cast<int64_t>(EvalBool(row) ? 1 : 0));
  }

  void CollectColumns(std::vector<int>* cols) const override {
    for (const ExprPtr& c : children_) c->CollectColumns(cols);
  }

  std::string ToString() const override {
    std::string out = "(";
    for (size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) out += " AND ";
      out += children_[i]->ToString();
    }
    return out + ")";
  }

  const std::vector<ExprPtr>& children() const { return children_; }

 private:
  std::vector<ExprPtr> children_;
};

class OrExpr : public Expr {
 public:
  explicit OrExpr(std::vector<ExprPtr> children)
      : children_(std::move(children)) {}

  bool EvalBool(const RowRef& row) const override {
    for (const ExprPtr& c : children_) {
      if (c->EvalBool(row)) return true;
    }
    return false;
  }

  Item Eval(const RowRef& row) const override {
    return Item(static_cast<int64_t>(EvalBool(row) ? 1 : 0));
  }

  void CollectColumns(std::vector<int>* cols) const override {
    for (const ExprPtr& c : children_) c->CollectColumns(cols);
  }

  std::string ToString() const override {
    std::string out = "(";
    for (size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) out += " OR ";
      out += children_[i]->ToString();
    }
    return out + ")";
  }

 private:
  std::vector<ExprPtr> children_;
};

class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprPtr inner) : inner_(std::move(inner)) {}

  bool EvalBool(const RowRef& row) const override {
    return !inner_->EvalBool(row);
  }
  Item Eval(const RowRef& row) const override {
    return Item(static_cast<int64_t>(EvalBool(row) ? 1 : 0));
  }
  void CollectColumns(std::vector<int>* cols) const override {
    inner_->CollectColumns(cols);
  }
  std::string ToString() const override {
    return "NOT " + inner_->ToString();
  }

 private:
  ExprPtr inner_;
};

/// Recursive SQL LIKE matcher supporting '%' and '_'.
bool LikeMatch(std::string_view text, std::string_view pattern) {
  size_t ti = 0, pi = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (ti < text.size()) {
    if (pi < pattern.size() &&
        (pattern[pi] == '_' || pattern[pi] == text[ti])) {
      ++ti;
      ++pi;
    } else if (pi < pattern.size() && pattern[pi] == '%') {
      star_p = pi++;
      star_t = ti;
    } else if (star_p != std::string_view::npos) {
      pi = star_p + 1;
      ti = ++star_t;
    } else {
      return false;
    }
  }
  while (pi < pattern.size() && pattern[pi] == '%') ++pi;
  return pi == pattern.size();
}

class LikeExpr : public Expr {
 public:
  LikeExpr(ExprPtr input, std::string pattern)
      : input_(std::move(input)), pattern_(std::move(pattern)) {}

  bool EvalBool(const RowRef& row) const override {
    ScalarView v;
    if (input_->TryEvalView(row, &v) && v.tag == ScalarView::Tag::kString) {
      return LikeMatch(v.s, pattern_);
    }
    Item item = input_->Eval(row);
    return item.is_str() && LikeMatch(item.str(), pattern_);
  }

  Item Eval(const RowRef& row) const override {
    return Item(static_cast<int64_t>(EvalBool(row) ? 1 : 0));
  }

  void CollectColumns(std::vector<int>* cols) const override {
    input_->CollectColumns(cols);
  }

  std::string ToString() const override {
    return input_->ToString() + " LIKE '" + pattern_ + "'";
  }

 private:
  ExprPtr input_;
  std::string pattern_;
};

class InStrExpr : public Expr {
 public:
  InStrExpr(ExprPtr input, std::vector<std::string> values)
      : input_(std::move(input)),
        values_(values.begin(), values.end()) {}

  bool EvalBool(const RowRef& row) const override {
    ScalarView v;
    if (input_->TryEvalView(row, &v) && v.tag == ScalarView::Tag::kString) {
      return values_.count(std::string(v.s)) > 0;
    }
    Item item = input_->Eval(row);
    return item.is_str() && values_.count(item.str()) > 0;
  }

  Item Eval(const RowRef& row) const override {
    return Item(static_cast<int64_t>(EvalBool(row) ? 1 : 0));
  }

  void CollectColumns(std::vector<int>* cols) const override {
    input_->CollectColumns(cols);
  }

  std::string ToString() const override {
    std::string out = input_->ToString() + " IN (";
    bool first = true;
    for (const auto& v : values_) {
      if (!first) out += ", ";
      out += "'" + v + "'";
      first = false;
    }
    return out + ")";
  }

 private:
  ExprPtr input_;
  std::unordered_set<std::string> values_;
};

class InIntExpr : public Expr {
 public:
  InIntExpr(ExprPtr input, std::vector<int64_t> values)
      : input_(std::move(input)), values_(std::move(values)) {}

  bool EvalBool(const RowRef& row) const override {
    ScalarView v;
    int64_t x;
    if (input_->TryEvalView(row, &v) && v.tag == ScalarView::Tag::kInt) {
      x = v.i;
    } else {
      Item item = input_->Eval(row);
      if (!item.is_i64()) return false;
      x = item.i64();
    }
    for (int64_t candidate : values_) {
      if (candidate == x) return true;
    }
    return false;
  }

  Item Eval(const RowRef& row) const override {
    return Item(static_cast<int64_t>(EvalBool(row) ? 1 : 0));
  }

  void CollectColumns(std::vector<int>* cols) const override {
    input_->CollectColumns(cols);
  }

  std::string ToString() const override {
    std::string out = input_->ToString() + " IN (";
    for (size_t i = 0; i < values_.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(values_[i]);
    }
    return out + ")";
  }

 private:
  ExprPtr input_;
  std::vector<int64_t> values_;
};

class IfExpr : public Expr {
 public:
  IfExpr(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr)
      : cond_(std::move(cond)),
        then_(std::move(then_expr)),
        else_(std::move(else_expr)) {}

  Item Eval(const RowRef& row) const override {
    return cond_->EvalBool(row) ? then_->Eval(row) : else_->Eval(row);
  }

  void CollectColumns(std::vector<int>* cols) const override {
    cond_->CollectColumns(cols);
    then_->CollectColumns(cols);
    else_->CollectColumns(cols);
  }

  std::string ToString() const override {
    return "IF(" + cond_->ToString() + ", " + then_->ToString() + ", " +
           else_->ToString() + ")";
  }

 private:
  ExprPtr cond_, then_, else_;
};

}  // namespace

namespace ex {

ExprPtr Col(int index) { return std::make_shared<ColumnRefExpr>(index); }
ExprPtr Lit(int64_t v) { return std::make_shared<LiteralExpr>(Item(v)); }
ExprPtr Lit(double v) { return std::make_shared<LiteralExpr>(Item(v)); }
ExprPtr Lit(std::string v) {
  return std::make_shared<LiteralExpr>(Item(std::move(v)));
}

ExprPtr DateLit(std::string_view ymd) {
  Result<int32_t> date = ParseDate(ymd);
  if (!date.ok()) std::abort();  // malformed compile-time constant
  return Lit(static_cast<int64_t>(date.value()));
}

ExprPtr Cmp(CmpOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<CompareExpr>(op, std::move(lhs), std::move(rhs));
}
ExprPtr Eq(ExprPtr l, ExprPtr r) { return Cmp(CmpOp::kEq, l, r); }
ExprPtr Ne(ExprPtr l, ExprPtr r) { return Cmp(CmpOp::kNe, l, r); }
ExprPtr Lt(ExprPtr l, ExprPtr r) { return Cmp(CmpOp::kLt, l, r); }
ExprPtr Le(ExprPtr l, ExprPtr r) { return Cmp(CmpOp::kLe, l, r); }
ExprPtr Gt(ExprPtr l, ExprPtr r) { return Cmp(CmpOp::kGt, l, r); }
ExprPtr Ge(ExprPtr l, ExprPtr r) { return Cmp(CmpOp::kGe, l, r); }

ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<ArithExpr>(op, std::move(lhs), std::move(rhs));
}
ExprPtr Add(ExprPtr l, ExprPtr r) { return Arith(ArithOp::kAdd, l, r); }
ExprPtr Sub(ExprPtr l, ExprPtr r) { return Arith(ArithOp::kSub, l, r); }
ExprPtr Mul(ExprPtr l, ExprPtr r) { return Arith(ArithOp::kMul, l, r); }
ExprPtr Div(ExprPtr l, ExprPtr r) { return Arith(ArithOp::kDiv, l, r); }

ExprPtr And(std::vector<ExprPtr> children) {
  if (children.size() == 1) return children[0];
  return std::make_shared<AndExpr>(std::move(children));
}
ExprPtr And(ExprPtr a, ExprPtr b) { return And({std::move(a), std::move(b)}); }
ExprPtr And(ExprPtr a, ExprPtr b, ExprPtr c) {
  return And({std::move(a), std::move(b), std::move(c)});
}
ExprPtr Or(std::vector<ExprPtr> children) {
  if (children.size() == 1) return children[0];
  return std::make_shared<OrExpr>(std::move(children));
}
ExprPtr Or(ExprPtr a, ExprPtr b) { return Or({std::move(a), std::move(b)}); }
ExprPtr Not(ExprPtr inner) { return std::make_shared<NotExpr>(inner); }

ExprPtr Like(ExprPtr input, std::string pattern) {
  return std::make_shared<LikeExpr>(std::move(input), std::move(pattern));
}
ExprPtr InStr(ExprPtr input, std::vector<std::string> values) {
  return std::make_shared<InStrExpr>(std::move(input), std::move(values));
}
ExprPtr InInt(ExprPtr input, std::vector<int64_t> values) {
  return std::make_shared<InIntExpr>(std::move(input), std::move(values));
}
ExprPtr Between(ExprPtr input, ExprPtr lo, ExprPtr hi) {
  return And(Cmp(CmpOp::kGe, input, std::move(lo)),
             Cmp(CmpOp::kLe, input, std::move(hi)));
}
ExprPtr If(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr) {
  return std::make_shared<IfExpr>(std::move(cond), std::move(then_expr),
                                  std::move(else_expr));
}

}  // namespace ex

}  // namespace modularis
