#include "core/expr.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <unordered_set>

#include "core/expr_bc.h"
#include "core/types.h"

/// Vectorization hint for the typed batch kernels (the explicit-SIMD
/// ROADMAP item): asserts the loop is dependence-free so the compiler
/// emits SIMD without a runtime alias check. The loops below are also
/// written branchless (predicate masks + compress-style selection
/// writes) so the hint has something to vectorize.
#if defined(__clang__)
#define MODULARIS_SIMD _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define MODULARIS_SIMD _Pragma("GCC ivdep")
#else
#define MODULARIS_SIMD
#endif

namespace modularis {

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kSum: return "sum";
    case AggKind::kCount: return "count";
    case AggKind::kMin: return "min";
    case AggKind::kMax: return "max";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Group-key serialization + hash kernels
// ---------------------------------------------------------------------------

KeyCodec::KeyCodec(const Schema& schema, const std::vector<int>& key_cols) {
  parts_.reserve(key_cols.size());
  uint32_t off = 0;
  for (int c : key_cols) {
    const Field& f = schema.field(c);
    uint32_t bytes = 0;
    switch (f.type) {
      case AtomType::kInt32:
      case AtomType::kDate:
        bytes = 4;
        break;
      case AtomType::kInt64:
      case AtomType::kFloat64:
        bytes = 8;
        break;
      case AtomType::kString:
        bytes = 2 + f.width;  // u16 length + zero-padded payload
        break;
    }
    parts_.push_back(Part{schema.offset(c), off, bytes});
    off += bytes;
  }
  key_size_ = off;
}

void KeyCodec::SerializeKeys(const RowSpan& rows, size_t begin, size_t n,
                             uint8_t* out) const {
  const size_t ks = key_size_;
  const size_t stride = rows.stride;
  for (const Part& part : parts_) {
    const uint8_t* src = rows.data + begin * stride + part.src_offset;
    uint8_t* dst = out + part.dst_offset;
    // Fixed-width copy loops per column: the constant-size memcpys compile
    // to single loads/stores, and each loop touches one source column at a
    // fixed stride (the per-row type switch of the old serializer gone).
    switch (part.bytes) {
      case 4:
        for (size_t i = 0; i < n; ++i) {
          std::memcpy(dst + i * ks, src + i * stride, 4);
        }
        break;
      case 8:
        for (size_t i = 0; i < n; ++i) {
          std::memcpy(dst + i * ks, src + i * stride, 8);
        }
        break;
      default:
        for (size_t i = 0; i < n; ++i) {
          std::memcpy(dst + i * ks, src + i * stride, part.bytes);
        }
    }
  }
}

void KeyCodec::SerializeKey(const RowRef& row, uint8_t* out) const {
  for (const Part& part : parts_) {
    std::memcpy(out + part.dst_offset, row.data() + part.src_offset,
                part.bytes);
  }
}

void HashKeysSpan(const uint8_t* keys, size_t n, uint32_t key_size,
                  uint64_t* out) {
  if (key_size == 8) {
    for (size_t i = 0; i < n; ++i) {
      uint64_t w;
      std::memcpy(&w, keys + i * 8, sizeof(w));
      out[i] = MixKeyHash64(w);
    }
    return;
  }
  // Every other width goes through HashKeyBytes so the per-row probe path
  // and this kernel agree bit-for-bit on every key (they feed one table).
  for (size_t i = 0; i < n; ++i) {
    out[i] = HashKeyBytes(keys + i * static_cast<size_t>(key_size), key_size);
  }
}

// ---------------------------------------------------------------------------
// Batch evaluation: interpreted fallbacks
// ---------------------------------------------------------------------------

Status ValidateSelection(const char* where, const uint32_t* sel, size_t n) {
  if (IsAscendingSel(sel, n)) return Status::OK();
  return Status::Internal(std::string(where) +
                          ": selection vector violates the strictly "
                          "ascending SelVector contract");
}

int Expr::BcEmitValue(BcCompiler& c, int sel) const {
  (void)c;
  (void)sel;
  return -1;  // no native form: the compiler emits an EvalBatch fallback
}

bool Expr::BcEmitFilter(BcCompiler& c, int sel) const {
  (void)c;
  (void)sel;
  return false;  // derived from the value form, like the base FilterBatch
}

Status Expr::EvalBatch(const RowSpan& rows, const uint32_t* sel, size_t n,
                       BatchColumn* out, BatchScratch* scratch) const {
  (void)scratch;
  out->Reset(BatchTag::kItem, n);
  // Checked per-row evaluation: nested predicate positions (IfExpr
  // conditions) error instead of silently turning false, matching the
  // row-at-a-time EvalChecked oracle.
  for (size_t i = 0; i < n; ++i) {
    MODULARIS_RETURN_NOT_OK(EvalChecked(rows.row(sel[i]), &out->items[i]));
  }
  return Status::OK();
}

Status Expr::FilterBatch(const RowSpan& rows, SelVector* sel,
                         BatchScratch* scratch) const {
  if (sel->empty()) return Status::OK();
  BatchColumn* v = scratch->AcquireColumn();
  Status st = EvalBatch(rows, sel->data(), sel->size(), v, scratch);
  if (st.ok()) {
    size_t k = 0;
    switch (v->tag) {
      case BatchTag::kI64:
        for (size_t i = 0; i < sel->size(); ++i) {
          if (v->i64[i] != 0) (*sel)[k++] = (*sel)[i];
        }
        sel->resize(k);
        break;
      case BatchTag::kF64:
        for (size_t i = 0; i < sel->size(); ++i) {
          if (v->f64[i] != 0) (*sel)[k++] = (*sel)[i];
        }
        sel->resize(k);
        break;
      case BatchTag::kStr:
        // EvalBoolChecked semantics: a string-valued predicate is a hard
        // error, on every tier.
        st = Status::InvalidArgument("predicate " + ToString() +
                                     " evaluated to a non-numeric value");
        break;
      case BatchTag::kItem:
        for (size_t i = 0; i < sel->size(); ++i) {
          const Item& item = v->items[i];
          bool keep = false;
          if (item.is_i64()) {
            keep = item.i64() != 0;
          } else if (item.is_f64()) {
            keep = item.f64() != 0;
          } else {
            st = Status::InvalidArgument("predicate " + ToString() +
                                         " evaluated to a non-numeric value");
            break;
          }
          if (keep) (*sel)[k++] = (*sel)[i];
        }
        if (st.ok()) sel->resize(k);
        break;
    }
  }
  scratch->ReleaseColumn();
  return st;
}

namespace {

// ---------------------------------------------------------------------------
// Batch kernel helpers
// ---------------------------------------------------------------------------

/// Marks the rows of `sel` present in `passed` (⊆ sel, both ascending)
/// with 1 and the rest with 0 — the value form of a predicate.
void MarkMatches(const uint32_t* sel, size_t n, const SelVector& passed,
                 BatchColumn* out) {
  out->Reset(BatchTag::kI64, n);
  size_t j = 0;
  for (size_t i = 0; i < n; ++i) {
    bool hit = j < passed.size() && passed[j] == sel[i];
    out->i64[i] = hit ? 1 : 0;
    if (hit) ++j;
  }
}

/// Value kernel of a predicate node: narrow a copy of the selection, then
/// mark survivors. Checked narrowing — the value form mirrors
/// EvalChecked, the oracle of every tier.
Status EvalViaFilter(const Expr& e, const RowSpan& rows, const uint32_t* sel,
                     size_t n, BatchColumn* out, BatchScratch* scratch) {
  SelVector* s = scratch->AcquireSel();
  s->assign(sel, sel + n);
  Status st = e.FilterBatch(rows, s, scratch);
  if (st.ok()) MarkMatches(sel, n, *s, out);
  scratch->ReleaseSel();
  return st;
}

/// In place: remaining -= removed. Returns true when `removed` was an
/// ascending subset of `remaining` — the FilterBatch postcondition every
/// subtract site relies on: a child that hands back an unsorted (or
/// foreign) selection would otherwise silently leave its rows in
/// `remaining` and corrupt the result. The check is free: the merge
/// cursor `j` reaches removed.size() iff `removed` is an ascending
/// subsequence of `remaining`. Callers turn false into a hard Status so
/// a future unsorted producer fails loudly.
[[nodiscard]] bool SubtractSorted(SelVector* remaining,
                                  const SelVector& removed) {
  size_t k = 0, j = 0;
  for (size_t i = 0; i < remaining->size(); ++i) {
    if (j < removed.size() && removed[j] == (*remaining)[i]) {
      ++j;
      continue;
    }
    (*remaining)[k++] = (*remaining)[i];
  }
  remaining->resize(k);
  return j == removed.size();
}

/// The loud failure for a SubtractSorted precondition violation.
Status UnsortedSelectionError(const char* op) {
  return Status::Internal(
      std::string(op) +
      ": child FilterBatch returned a selection that is not an ascending "
      "subset of its input");
}

// ---------------------------------------------------------------------------
// Node implementations
// ---------------------------------------------------------------------------

class ColumnRefExpr : public Expr {
 public:
  explicit ColumnRefExpr(int index) : index_(index) {}

  Item Eval(const RowRef& row) const override {
    const Field& f = row.schema().field(index_);
    switch (f.type) {
      case AtomType::kInt32:
      case AtomType::kDate:
        return Item(static_cast<int64_t>(row.GetInt32(index_)));
      case AtomType::kInt64:
        return Item(row.GetInt64(index_));
      case AtomType::kFloat64:
        return Item(row.GetFloat64(index_));
      case AtomType::kString:
        return Item(std::string(row.GetString(index_)));
    }
    return Item();
  }

  bool TryEvalView(const RowRef& row, ScalarView* out) const override {
    const Field& f = row.schema().field(index_);
    switch (f.type) {
      case AtomType::kInt32:
      case AtomType::kDate:
        out->tag = ScalarView::Tag::kInt;
        out->i = row.GetInt32(index_);
        return true;
      case AtomType::kInt64:
        out->tag = ScalarView::Tag::kInt;
        out->i = row.GetInt64(index_);
        return true;
      case AtomType::kFloat64:
        out->tag = ScalarView::Tag::kDouble;
        out->d = row.GetFloat64(index_);
        return true;
      case AtomType::kString:
        out->tag = ScalarView::Tag::kString;
        out->s = row.GetString(index_);
        return true;
    }
    return false;
  }

  BatchTag BatchType(const Schema& schema) const override {
    switch (schema.field(index_).type) {
      case AtomType::kInt32:
      case AtomType::kDate:
      case AtomType::kInt64:
        return BatchTag::kI64;
      case AtomType::kFloat64:
        return BatchTag::kF64;
      case AtomType::kString:
        return BatchTag::kStr;
    }
    return BatchTag::kItem;
  }

  Status EvalBatch(const RowSpan& rows, const uint32_t* sel, size_t n,
                   BatchColumn* out, BatchScratch*) const override {
    // Debug-build defense of the SelVector contract right where its
    // violation would bite: a permuted selection aliases the contiguity
    // test below and silently mis-assigns lanes.
    assert(IsAscendingSel(sel, n) &&
           "EvalBatch selection must be strictly ascending");
    const uint32_t off = rows.schema->offset(index_);
    // A dense (contiguous) selection turns the gather into a fixed-stride
    // load the auto-vectorizer handles; all-pass batches hit this path.
    const bool contiguous =
        n > 0 && static_cast<size_t>(sel[n - 1] - sel[0]) == n - 1;
    const uint8_t* base =
        n > 0 ? rows.row_ptr(sel[0]) + off : nullptr;
    const uint32_t stride = rows.stride;
    switch (rows.schema->field(index_).type) {
      case AtomType::kInt32:
      case AtomType::kDate: {
        out->Reset(BatchTag::kI64, n);
        if (contiguous) {
          MODULARIS_SIMD
          for (size_t i = 0; i < n; ++i) {
            int32_t v;
            std::memcpy(&v, base + i * stride, sizeof(v));
            out->i64[i] = v;
          }
          break;
        }
        for (size_t i = 0; i < n; ++i) {
          int32_t v;
          std::memcpy(&v, rows.row_ptr(sel[i]) + off, sizeof(v));
          out->i64[i] = v;
        }
        break;
      }
      case AtomType::kInt64: {
        out->Reset(BatchTag::kI64, n);
        if (contiguous) {
          MODULARIS_SIMD
          for (size_t i = 0; i < n; ++i) {
            std::memcpy(&out->i64[i], base + i * stride, sizeof(int64_t));
          }
          break;
        }
        for (size_t i = 0; i < n; ++i) {
          std::memcpy(&out->i64[i], rows.row_ptr(sel[i]) + off,
                      sizeof(int64_t));
        }
        break;
      }
      case AtomType::kFloat64: {
        out->Reset(BatchTag::kF64, n);
        if (contiguous) {
          MODULARIS_SIMD
          for (size_t i = 0; i < n; ++i) {
            std::memcpy(&out->f64[i], base + i * stride, sizeof(double));
          }
          break;
        }
        for (size_t i = 0; i < n; ++i) {
          std::memcpy(&out->f64[i], rows.row_ptr(sel[i]) + off,
                      sizeof(double));
        }
        break;
      }
      case AtomType::kString: {
        out->Reset(BatchTag::kStr, n);
        for (size_t i = 0; i < n; ++i) {
          const uint8_t* p = rows.row_ptr(sel[i]) + off;
          uint16_t len;
          std::memcpy(&len, p, sizeof(len));
          out->str[i] =
              std::string_view(reinterpret_cast<const char*>(p + 2), len);
        }
        break;
      }
    }
    return Status::OK();
  }

  int BcEmitValue(BcCompiler& c, int sel) const override {
    const Field& f = c.schema().field(index_);
    const uint32_t off = c.schema().offset(index_);
    BcInst in;
    in.s = static_cast<uint16_t>(sel);
    in.imm = off;
    int r;
    switch (f.type) {
      case AtomType::kInt32:
      case AtomType::kDate:
        in.op = BcOp::kLoadI32;
        r = c.NewReg(BatchTag::kI64);
        break;
      case AtomType::kInt64:
        in.op = BcOp::kLoadI64;
        r = c.NewReg(BatchTag::kI64);
        break;
      case AtomType::kFloat64:
        in.op = BcOp::kLoadF64;
        r = c.NewReg(BatchTag::kF64);
        break;
      case AtomType::kString:
        in.op = BcOp::kLoadStr;
        r = c.NewReg(BatchTag::kStr);
        break;
      default:
        return -1;
    }
    in.dst = static_cast<uint16_t>(r);
    c.Emit(in);
    return r;
  }

  void CollectColumns(std::vector<int>* cols) const override {
    cols->push_back(index_);
  }

  int AsColumnIndex() const override { return index_; }

  std::string ToString() const override {
    return "$" + std::to_string(index_);
  }

  ExprKind kind() const override { return ExprKind::kColumn; }

  int index() const { return index_; }

 private:
  int index_;
};

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Item value) : value_(std::move(value)) {}

  Item Eval(const RowRef&) const override { return value_; }

  bool TryEvalView(const RowRef&, ScalarView* out) const override {
    switch (value_.kind()) {
      case Item::Kind::kInt64:
        out->tag = ScalarView::Tag::kInt;
        out->i = value_.i64();
        return true;
      case Item::Kind::kFloat64:
        out->tag = ScalarView::Tag::kDouble;
        out->d = value_.f64();
        return true;
      case Item::Kind::kString:
        out->tag = ScalarView::Tag::kString;
        out->s = value_.str();
        return true;
      default:
        return false;
    }
  }

  BatchTag BatchType(const Schema&) const override {
    switch (value_.kind()) {
      case Item::Kind::kInt64: return BatchTag::kI64;
      case Item::Kind::kFloat64: return BatchTag::kF64;
      case Item::Kind::kString: return BatchTag::kStr;
      default: return BatchTag::kItem;
    }
  }

  Status EvalBatch(const RowSpan& rows, const uint32_t* sel, size_t n,
                   BatchColumn* out, BatchScratch* scratch) const override {
    switch (value_.kind()) {
      case Item::Kind::kInt64:
        out->Reset(BatchTag::kI64, n);
        std::fill(out->i64.begin(), out->i64.end(), value_.i64());
        return Status::OK();
      case Item::Kind::kFloat64:
        out->Reset(BatchTag::kF64, n);
        std::fill(out->f64.begin(), out->f64.end(), value_.f64());
        return Status::OK();
      case Item::Kind::kString:
        out->Reset(BatchTag::kStr, n);
        std::fill(out->str.begin(), out->str.end(),
                  std::string_view(value_.str()));
        return Status::OK();
      default:
        return Expr::EvalBatch(rows, sel, n, out, scratch);
    }
  }

  std::string ToString() const override { return value_.ToString(); }

  ExprKind kind() const override { return ExprKind::kLiteral; }

  bool AsLiteral(Item* out) const override {
    *out = value_;
    return true;
  }

 private:
  Item value_;
};

int CompareViews(const ScalarView& a, const ScalarView& b) {
  if (a.tag == ScalarView::Tag::kString ||
      b.tag == ScalarView::Tag::kString) {
    return a.s.compare(b.s) < 0 ? -1 : (a.s == b.s ? 0 : 1);
  }
  if (a.tag == ScalarView::Tag::kDouble ||
      b.tag == ScalarView::Tag::kDouble) {
    double x = a.tag == ScalarView::Tag::kDouble
                   ? a.d
                   : static_cast<double>(a.i);
    double y = b.tag == ScalarView::Tag::kDouble
                   ? b.d
                   : static_cast<double>(b.i);
    return x < y ? -1 : (x == y ? 0 : 1);
  }
  return a.i < b.i ? -1 : (a.i == b.i ? 0 : 1);
}

class CompareExpr : public Expr {
 public:
  CompareExpr(CmpOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  bool EvalBool(const RowRef& row) const override {
    ScalarView a, b;
    if (!lhs_->TryEvalView(row, &a) || !rhs_->TryEvalView(row, &b)) {
      // Slow path: materialize items. Backing storage is local so
      // concurrent worker-thread evaluation never races (Expr trees are
      // shared between cloned chains).
      std::string sa, sb;
      Item ia = lhs_->Eval(row);
      Item ib = rhs_->Eval(row);
      a = ViewOf(ia, &sa);
      b = ViewOf(ib, &sb);
      return Holds(CompareViews(a, b));
    }
    return Holds(CompareViews(a, b));
  }

  Item Eval(const RowRef& row) const override {
    return Item(static_cast<int64_t>(EvalBool(row) ? 1 : 0));
  }

  Status EvalBoolChecked(const RowRef& row, bool* out) const override {
    ScalarView a, b;
    if (lhs_->TryEvalView(row, &a) && rhs_->TryEvalView(row, &b)) {
      *out = Holds(CompareViews(a, b));
      return Status::OK();
    }
    // Slow path: checked child evaluation, so a nested IF with a
    // non-numeric condition errors instead of silently taking the else
    // branch.
    Item ia, ib;
    MODULARIS_RETURN_NOT_OK(lhs_->EvalChecked(row, &ia));
    MODULARIS_RETURN_NOT_OK(rhs_->EvalChecked(row, &ib));
    std::string sa, sb;
    *out = Holds(CompareViews(ViewOf(ia, &sa), ViewOf(ib, &sb)));
    return Status::OK();
  }

  Status EvalChecked(const RowRef& row, Item* out) const override {
    bool b = false;
    MODULARIS_RETURN_NOT_OK(EvalBoolChecked(row, &b));
    *out = Item(static_cast<int64_t>(b ? 1 : 0));
    return Status::OK();
  }

  BatchTag BatchType(const Schema&) const override { return BatchTag::kI64; }

  Status EvalBatch(const RowSpan& rows, const uint32_t* sel, size_t n,
                   BatchColumn* out, BatchScratch* scratch) const override {
    return EvalViaFilter(*this, rows, sel, n, out, scratch);
  }

  Status FilterBatch(const RowSpan& rows, SelVector* sel,
                     BatchScratch* scratch) const override {
    if (sel->empty()) return Status::OK();
    const BatchTag lt = lhs_->BatchType(*rows.schema);
    const BatchTag rt = rhs_->BatchType(*rows.schema);
    if (lt == BatchTag::kItem || rt == BatchTag::kItem) {
      // Dynamically typed side: per-row checked evaluation materializes
      // Items exactly like the row path's EvalBoolChecked.
      size_t k = 0;
      for (size_t i = 0; i < sel->size(); ++i) {
        bool keep = false;
        MODULARIS_RETURN_NOT_OK(EvalBoolChecked(rows.row((*sel)[i]), &keep));
        if (keep) (*sel)[k++] = (*sel)[i];
      }
      sel->resize(k);
      return Status::OK();
    }
    BatchColumn* a = scratch->AcquireColumn();
    BatchColumn* b = scratch->AcquireColumn();
    Status st = lhs_->EvalBatch(rows, sel->data(), sel->size(), a, scratch);
    if (st.ok()) {
      st = rhs_->EvalBatch(rows, sel->data(), sel->size(), b, scratch);
    }
    if (st.ok()) {
      const size_t n = sel->size();
      size_t k = 0;
      if (lt == BatchTag::kStr || rt == BatchTag::kStr) {
        // Mirrors CompareViews: a non-string side contributes the empty
        // view to the string comparison.
        for (size_t i = 0; i < n; ++i) {
          std::string_view x =
              lt == BatchTag::kStr ? a->str[i] : std::string_view();
          std::string_view y =
              rt == BatchTag::kStr ? b->str[i] : std::string_view();
          int c = x.compare(y) < 0 ? -1 : (x == y ? 0 : 1);
          if (Holds(c)) (*sel)[k++] = (*sel)[i];
        }
        sel->resize(k);
      } else {
        // SIMD two-pass: a branchless per-op predicate mask (this loop
        // vectorizes: one compare per lane, no data-dependent control
        // flow), then a compress pass over the selection. Selectivity
        // no longer costs branch mispredicts.
        SelVector* mask = scratch->AcquireSel();
        mask->resize(n);
        uint32_t* m = mask->data();
        if (lt == BatchTag::kF64 || rt == BatchTag::kF64) {
          if (lt != BatchTag::kF64) {
            a->f64.resize(n);
            MODULARIS_SIMD
            for (size_t i = 0; i < n; ++i) {
              a->f64[i] = static_cast<double>(a->i64[i]);
            }
          }
          if (rt != BatchTag::kF64) {
            b->f64.resize(n);
            MODULARIS_SIMD
            for (size_t i = 0; i < n; ++i) {
              b->f64[i] = static_cast<double>(b->i64[i]);
            }
          }
          const double* x = a->f64.data();
          const double* y = b->f64.data();
          switch (op_) {
            case CmpOp::kEq:
              MODULARIS_SIMD
              for (size_t i = 0; i < n; ++i) m[i] = x[i] == y[i];
              break;
            case CmpOp::kNe:
              MODULARIS_SIMD
              for (size_t i = 0; i < n; ++i) m[i] = x[i] != y[i];
              break;
            case CmpOp::kLt:
              MODULARIS_SIMD
              for (size_t i = 0; i < n; ++i) m[i] = x[i] < y[i];
              break;
            case CmpOp::kLe:
              MODULARIS_SIMD
              for (size_t i = 0; i < n; ++i) m[i] = x[i] <= y[i];
              break;
            case CmpOp::kGt:
              // Written as negations so a NaN operand still orders as
              // "greater", exactly like the row path's three-way compare.
              MODULARIS_SIMD
              for (size_t i = 0; i < n; ++i) m[i] = !(x[i] <= y[i]);
              break;
            case CmpOp::kGe:
              MODULARIS_SIMD
              for (size_t i = 0; i < n; ++i) m[i] = !(x[i] < y[i]);
              break;
          }
        } else {
          const int64_t* x = a->i64.data();
          const int64_t* y = b->i64.data();
          switch (op_) {
            case CmpOp::kEq:
              MODULARIS_SIMD
              for (size_t i = 0; i < n; ++i) m[i] = x[i] == y[i];
              break;
            case CmpOp::kNe:
              MODULARIS_SIMD
              for (size_t i = 0; i < n; ++i) m[i] = x[i] != y[i];
              break;
            case CmpOp::kLt:
              MODULARIS_SIMD
              for (size_t i = 0; i < n; ++i) m[i] = x[i] < y[i];
              break;
            case CmpOp::kLe:
              MODULARIS_SIMD
              for (size_t i = 0; i < n; ++i) m[i] = x[i] <= y[i];
              break;
            case CmpOp::kGt:
              MODULARIS_SIMD
              for (size_t i = 0; i < n; ++i) m[i] = x[i] > y[i];
              break;
            case CmpOp::kGe:
              MODULARIS_SIMD
              for (size_t i = 0; i < n; ++i) m[i] = x[i] >= y[i];
              break;
          }
        }
        uint32_t* sp = sel->data();
        for (size_t i = 0; i < n; ++i) {
          sp[k] = sp[i];
          k += m[i];
        }
        sel->resize(k);
        scratch->ReleaseSel();
      }
    }
    scratch->ReleaseColumn();
    scratch->ReleaseColumn();
    return st;
  }

  int BcEmitValue(BcCompiler& c, int sel) const override {
    return c.EmitPredicateValue(*this, sel);
  }

  bool BcEmitFilter(BcCompiler& c, int sel) const override {
    const BatchTag lt = lhs_->BatchType(c.schema());
    const BatchTag rt = rhs_->BatchType(c.schema());
    if (lt == BatchTag::kItem || rt == BatchTag::kItem) {
      c.EmitFilterFallback(*this, sel);  // dynamically typed side
      return true;
    }
    // Both sides are always evaluated, in lhs-then-rhs order, exactly
    // like the interpreted kernel — so errors nested inside a side keep
    // their precedence even when the comparison ignores its value.
    int la = c.CompileValue(*lhs_, sel);
    int lb = c.CompileValue(*rhs_, sel);
    BcInst in;
    in.cmp = op_;
    in.s = static_cast<uint16_t>(sel);
    if (lt == BatchTag::kStr || rt == BatchTag::kStr) {
      // Mirrors CompareViews: a non-string side contributes the empty
      // view to the string comparison.
      in.op = BcOp::kFilterCmpStr;
      in.a = static_cast<uint16_t>(lt == BatchTag::kStr ? la : c.ConstStr(""));
      in.b = static_cast<uint16_t>(rt == BatchTag::kStr ? lb : c.ConstStr(""));
    } else if (lt == BatchTag::kF64 || rt == BatchTag::kF64) {
      in.op = BcOp::kFilterCmpF64;
      in.a = static_cast<uint16_t>(c.CastToF64(la, sel));
      in.b = static_cast<uint16_t>(c.CastToF64(lb, sel));
    } else {
      in.op = BcOp::kFilterCmpI64;
      in.a = static_cast<uint16_t>(la);
      in.b = static_cast<uint16_t>(lb);
    }
    c.Emit(in);
    return true;
  }

  void CollectColumns(std::vector<int>* cols) const override {
    lhs_->CollectColumns(cols);
    rhs_->CollectColumns(cols);
  }

  std::string ToString() const override {
    static const char* kNames[] = {"=", "<>", "<", "<=", ">", ">="};
    return "(" + lhs_->ToString() + " " + kNames[static_cast<int>(op_)] +
           " " + rhs_->ToString() + ")";
  }

  ExprKind kind() const override { return ExprKind::kCompare; }
  size_t NumExprChildren() const override { return 2; }
  ExprPtr ExprChild(size_t i) const override {
    return i == 0 ? lhs_ : (i == 1 ? rhs_ : nullptr);
  }
  ExprPtr RebuildWithChildren(std::vector<ExprPtr> c) const override {
    return std::make_shared<CompareExpr>(op_, std::move(c[0]),
                                         std::move(c[1]));
  }
  bool AsCompare(CmpOp* op) const override {
    *op = op_;
    return true;
  }

 private:
  bool Holds(int c) const {
    switch (op_) {
      case CmpOp::kEq: return c == 0;
      case CmpOp::kNe: return c != 0;
      case CmpOp::kLt: return c < 0;
      case CmpOp::kLe: return c <= 0;
      case CmpOp::kGt: return c > 0;
      case CmpOp::kGe: return c >= 0;
    }
    return false;
  }

  static ScalarView ViewOf(const Item& item, std::string* storage) {
    ScalarView v;
    switch (item.kind()) {
      case Item::Kind::kInt64:
        v.tag = ScalarView::Tag::kInt;
        v.i = item.i64();
        break;
      case Item::Kind::kFloat64:
        v.tag = ScalarView::Tag::kDouble;
        v.d = item.f64();
        break;
      case Item::Kind::kString:
        *storage = item.str();
        v.tag = ScalarView::Tag::kString;
        v.s = *storage;
        break;
      default:
        break;
    }
    return v;
  }

  CmpOp op_;
  ExprPtr lhs_, rhs_;
};

class ArithExpr : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Item Eval(const RowRef& row) const override {
    return Apply(lhs_->Eval(row), rhs_->Eval(row));
  }

  Status EvalChecked(const RowRef& row, Item* out) const override {
    Item a, b;
    MODULARIS_RETURN_NOT_OK(lhs_->EvalChecked(row, &a));
    MODULARIS_RETURN_NOT_OK(rhs_->EvalChecked(row, &b));
    *out = Apply(a, b);
    return Status::OK();
  }

  BatchTag BatchType(const Schema& schema) const override {
    const BatchTag lt = lhs_->BatchType(schema);
    const BatchTag rt = rhs_->BatchType(schema);
    if (lt == BatchTag::kStr || lt == BatchTag::kItem ||
        rt == BatchTag::kStr || rt == BatchTag::kItem) {
      return BatchTag::kItem;
    }
    if (op_ == ArithOp::kDiv) return BatchTag::kF64;  // division yields f64
    if (lt == BatchTag::kI64 && rt == BatchTag::kI64) return BatchTag::kI64;
    return BatchTag::kF64;
  }

  Status EvalBatch(const RowSpan& rows, const uint32_t* sel, size_t n,
                   BatchColumn* out, BatchScratch* scratch) const override {
    const BatchTag tag = BatchType(*rows.schema);
    if (tag == BatchTag::kItem) {
      return Expr::EvalBatch(rows, sel, n, out, scratch);
    }
    BatchColumn* a = scratch->AcquireColumn();
    BatchColumn* b = scratch->AcquireColumn();
    Status st = lhs_->EvalBatch(rows, sel, n, a, scratch);
    if (st.ok()) st = rhs_->EvalBatch(rows, sel, n, b, scratch);
    if (st.ok()) {
      out->Reset(tag, n);
      if (tag == BatchTag::kI64) {
        switch (op_) {
          case ArithOp::kAdd:
            MODULARIS_SIMD
            for (size_t i = 0; i < n; ++i) out->i64[i] = a->i64[i] + b->i64[i];
            break;
          case ArithOp::kSub:
            MODULARIS_SIMD
            for (size_t i = 0; i < n; ++i) out->i64[i] = a->i64[i] - b->i64[i];
            break;
          case ArithOp::kMul:
            MODULARIS_SIMD
            for (size_t i = 0; i < n; ++i) out->i64[i] = a->i64[i] * b->i64[i];
            break;
          case ArithOp::kDiv:
            break;  // unreachable: kDiv is typed kF64
        }
      } else {
        const bool lf = a->tag == BatchTag::kF64;
        const bool rf = b->tag == BatchTag::kF64;
        for (size_t i = 0; i < n; ++i) {
          double x = lf ? a->f64[i] : static_cast<double>(a->i64[i]);
          double y = rf ? b->f64[i] : static_cast<double>(b->i64[i]);
          switch (op_) {
            case ArithOp::kAdd: out->f64[i] = x + y; break;
            case ArithOp::kSub: out->f64[i] = x - y; break;
            case ArithOp::kMul: out->f64[i] = x * y; break;
            case ArithOp::kDiv: out->f64[i] = y == 0 ? 0.0 : x / y; break;
          }
        }
      }
    }
    scratch->ReleaseColumn();
    scratch->ReleaseColumn();
    return st;
  }

  int BcEmitValue(BcCompiler& c, int sel) const override {
    const BatchTag tag = BatchType(c.schema());
    if (tag == BatchTag::kItem) return -1;  // interpreted fallback
    int a = c.CompileValue(*lhs_, sel);
    int b = c.CompileValue(*rhs_, sel);
    BcInst in;
    in.s = static_cast<uint16_t>(sel);
    if (tag == BatchTag::kI64) {
      switch (op_) {
        case ArithOp::kAdd: in.op = BcOp::kAddI64; break;
        case ArithOp::kSub: in.op = BcOp::kSubI64; break;
        case ArithOp::kMul: in.op = BcOp::kMulI64; break;
        case ArithOp::kDiv: return -1;  // unreachable: kDiv is typed kF64
      }
    } else {
      a = c.CastToF64(a, sel);
      b = c.CastToF64(b, sel);
      switch (op_) {
        case ArithOp::kAdd: in.op = BcOp::kAddF64; break;
        case ArithOp::kSub: in.op = BcOp::kSubF64; break;
        case ArithOp::kMul: in.op = BcOp::kMulF64; break;
        case ArithOp::kDiv: in.op = BcOp::kDivF64; break;
      }
    }
    int r = c.NewReg(tag);
    in.dst = static_cast<uint16_t>(r);
    in.a = static_cast<uint16_t>(a);
    in.b = static_cast<uint16_t>(b);
    c.Emit(in);
    return r;
  }

  void CollectColumns(std::vector<int>* cols) const override {
    lhs_->CollectColumns(cols);
    rhs_->CollectColumns(cols);
  }

  std::string ToString() const override {
    static const char* kNames[] = {"+", "-", "*", "/"};
    return "(" + lhs_->ToString() + " " + kNames[static_cast<int>(op_)] +
           " " + rhs_->ToString() + ")";
  }

  ExprKind kind() const override { return ExprKind::kArith; }
  size_t NumExprChildren() const override { return 2; }
  ExprPtr ExprChild(size_t i) const override {
    return i == 0 ? lhs_ : (i == 1 ? rhs_ : nullptr);
  }
  ExprPtr RebuildWithChildren(std::vector<ExprPtr> c) const override {
    return std::make_shared<ArithExpr>(op_, std::move(c[0]), std::move(c[1]));
  }

 private:
  /// The engine's arithmetic: i64 preserved when both sides are i64
  /// (except division, always f64), division by zero yields 0.0.
  Item Apply(const Item& a, const Item& b) const {
    if (op_ != ArithOp::kDiv && a.is_i64() && b.is_i64()) {
      switch (op_) {
        case ArithOp::kAdd: return Item(a.i64() + b.i64());
        case ArithOp::kSub: return Item(a.i64() - b.i64());
        case ArithOp::kMul: return Item(a.i64() * b.i64());
        default: break;
      }
    }
    double x = a.AsDouble();
    double y = b.AsDouble();
    switch (op_) {
      case ArithOp::kAdd: return Item(x + y);
      case ArithOp::kSub: return Item(x - y);
      case ArithOp::kMul: return Item(x * y);
      case ArithOp::kDiv: return Item(y == 0 ? 0.0 : x / y);
    }
    return Item();
  }

  ArithOp op_;
  ExprPtr lhs_, rhs_;
};

class AndExpr : public Expr {
 public:
  explicit AndExpr(std::vector<ExprPtr> children)
      : children_(std::move(children)) {}

  bool EvalBool(const RowRef& row) const override {
    for (const ExprPtr& c : children_) {
      if (!c->EvalBool(row)) return false;
    }
    return true;
  }

  Item Eval(const RowRef& row) const override {
    return Item(static_cast<int64_t>(EvalBool(row) ? 1 : 0));
  }

  Status EvalBoolChecked(const RowRef& row, bool* out) const override {
    for (const ExprPtr& c : children_) {
      bool b = false;
      MODULARIS_RETURN_NOT_OK(c->EvalBoolChecked(row, &b));
      if (!b) {
        *out = false;
        return Status::OK();
      }
    }
    *out = true;
    return Status::OK();
  }

  Status EvalChecked(const RowRef& row, Item* out) const override {
    bool b = false;
    MODULARIS_RETURN_NOT_OK(EvalBoolChecked(row, &b));
    *out = Item(static_cast<int64_t>(b ? 1 : 0));
    return Status::OK();
  }

  BatchTag BatchType(const Schema&) const override { return BatchTag::kI64; }

  Status EvalBatch(const RowSpan& rows, const uint32_t* sel, size_t n,
                   BatchColumn* out, BatchScratch* scratch) const override {
    return EvalViaFilter(*this, rows, sel, n, out, scratch);
  }

  Status FilterBatch(const RowSpan& rows, SelVector* sel,
                     BatchScratch* scratch) const override {
    // Child-by-child narrowing IS short-circuit evaluation: a row that
    // fails child i never reaches child i+1, exactly as in the row path.
    for (const ExprPtr& c : children_) {
      if (sel->empty()) return Status::OK();
      MODULARIS_RETURN_NOT_OK(c->FilterBatch(rows, sel, scratch));
    }
    return Status::OK();
  }

  int BcEmitValue(BcCompiler& c, int sel) const override {
    return c.EmitPredicateValue(*this, sel);
  }

  bool BcEmitFilter(BcCompiler& c, int sel) const override {
    // Sequential child filters with short-circuit jumps between them:
    // once the selection runs dry, the remaining children are skipped
    // in one bound.
    std::vector<size_t> jumps;
    for (size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) jumps.push_back(c.EmitJumpIfEmpty(sel));
      c.CompileFilter(*children_[i], sel);
    }
    for (size_t pc : jumps) c.PatchJump(pc);
    return true;
  }

  void CollectColumns(std::vector<int>* cols) const override {
    for (const ExprPtr& c : children_) c->CollectColumns(cols);
  }

  std::string ToString() const override {
    std::string out = "(";
    for (size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) out += " AND ";
      out += children_[i]->ToString();
    }
    return out + ")";
  }

  const std::vector<ExprPtr>& children() const { return children_; }

  ExprKind kind() const override { return ExprKind::kAnd; }
  size_t NumExprChildren() const override { return children_.size(); }
  ExprPtr ExprChild(size_t i) const override {
    return i < children_.size() ? children_[i] : nullptr;
  }
  ExprPtr RebuildWithChildren(std::vector<ExprPtr> c) const override {
    return std::make_shared<AndExpr>(std::move(c));
  }

 private:
  std::vector<ExprPtr> children_;
};

class OrExpr : public Expr {
 public:
  explicit OrExpr(std::vector<ExprPtr> children)
      : children_(std::move(children)) {}

  bool EvalBool(const RowRef& row) const override {
    for (const ExprPtr& c : children_) {
      if (c->EvalBool(row)) return true;
    }
    return false;
  }

  Item Eval(const RowRef& row) const override {
    return Item(static_cast<int64_t>(EvalBool(row) ? 1 : 0));
  }

  Status EvalBoolChecked(const RowRef& row, bool* out) const override {
    for (const ExprPtr& c : children_) {
      bool b = false;
      MODULARIS_RETURN_NOT_OK(c->EvalBoolChecked(row, &b));
      if (b) {
        *out = true;
        return Status::OK();
      }
    }
    *out = false;
    return Status::OK();
  }

  Status EvalChecked(const RowRef& row, Item* out) const override {
    bool b = false;
    MODULARIS_RETURN_NOT_OK(EvalBoolChecked(row, &b));
    *out = Item(static_cast<int64_t>(b ? 1 : 0));
    return Status::OK();
  }

  BatchTag BatchType(const Schema&) const override { return BatchTag::kI64; }

  Status EvalBatch(const RowSpan& rows, const uint32_t* sel, size_t n,
                   BatchColumn* out, BatchScratch* scratch) const override {
    return EvalViaFilter(*this, rows, sel, n, out, scratch);
  }

  Status FilterBatch(const RowSpan& rows, SelVector* sel,
                     BatchScratch* scratch) const override {
    if (sel->empty()) return Status::OK();
    // Each child only sees the rows every earlier child rejected — the
    // short-circuit dual of AND's narrowing.
    SelVector* remaining = scratch->AcquireSel();
    SelVector* accepted = scratch->AcquireSel();
    SelVector* tmp = scratch->AcquireSel();
    *remaining = *sel;
    accepted->clear();
    Status st = Status::OK();
    for (const ExprPtr& c : children_) {
      if (remaining->empty()) break;
      *tmp = *remaining;
      st = c->FilterBatch(rows, tmp, scratch);
      if (!st.ok()) break;
      accepted->insert(accepted->end(), tmp->begin(), tmp->end());
      if (!SubtractSorted(remaining, *tmp)) {
        st = UnsortedSelectionError("OR");
        break;
      }
    }
    if (st.ok()) {
      std::sort(accepted->begin(), accepted->end());
      *sel = *accepted;
    }
    scratch->ReleaseSel();
    scratch->ReleaseSel();
    scratch->ReleaseSel();
    return st;
  }

  int BcEmitValue(BcCompiler& c, int sel) const override {
    return c.EmitPredicateValue(*this, sel);
  }

  bool BcEmitFilter(BcCompiler& c, int sel) const override {
    // remaining/accepted/tmp mirror the interpreted OR: each child filters
    // only what every earlier child rejected, matches are accumulated and
    // re-sorted at the end.
    const int remaining = c.NewSel();
    const int accepted = c.NewSel();
    const int tmp = c.NewSel();
    auto sel_op = [&c](BcOp op, int s, int s2) {
      BcInst in;
      in.op = op;
      in.s = static_cast<uint16_t>(s);
      in.s2 = static_cast<uint16_t>(s2);
      c.Emit(in);
    };
    sel_op(BcOp::kSelCopy, remaining, sel);
    sel_op(BcOp::kFilterClear, accepted, 0);
    std::vector<size_t> jumps;
    for (const ExprPtr& child : children_) {
      jumps.push_back(c.EmitJumpIfEmpty(remaining));
      sel_op(BcOp::kSelCopy, tmp, remaining);
      c.CompileFilter(*child, tmp);
      sel_op(BcOp::kSelAppend, accepted, tmp);
      sel_op(BcOp::kSelSub, remaining, tmp);
    }
    for (size_t pc : jumps) c.PatchJump(pc);
    sel_op(BcOp::kSelSort, accepted, 0);
    sel_op(BcOp::kSelCopy, sel, accepted);
    return true;
  }

  void CollectColumns(std::vector<int>* cols) const override {
    for (const ExprPtr& c : children_) c->CollectColumns(cols);
  }

  std::string ToString() const override {
    std::string out = "(";
    for (size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) out += " OR ";
      out += children_[i]->ToString();
    }
    return out + ")";
  }

  ExprKind kind() const override { return ExprKind::kOr; }
  size_t NumExprChildren() const override { return children_.size(); }
  ExprPtr ExprChild(size_t i) const override {
    return i < children_.size() ? children_[i] : nullptr;
  }
  ExprPtr RebuildWithChildren(std::vector<ExprPtr> c) const override {
    return std::make_shared<OrExpr>(std::move(c));
  }

 private:
  std::vector<ExprPtr> children_;
};

class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprPtr inner) : inner_(std::move(inner)) {}

  bool EvalBool(const RowRef& row) const override {
    return !inner_->EvalBool(row);
  }
  Item Eval(const RowRef& row) const override {
    return Item(static_cast<int64_t>(EvalBool(row) ? 1 : 0));
  }
  Status EvalBoolChecked(const RowRef& row, bool* out) const override {
    bool b = false;
    MODULARIS_RETURN_NOT_OK(inner_->EvalBoolChecked(row, &b));
    *out = !b;
    return Status::OK();
  }
  Status EvalChecked(const RowRef& row, Item* out) const override {
    bool b = false;
    MODULARIS_RETURN_NOT_OK(EvalBoolChecked(row, &b));
    *out = Item(static_cast<int64_t>(b ? 1 : 0));
    return Status::OK();
  }
  BatchTag BatchType(const Schema&) const override { return BatchTag::kI64; }
  Status EvalBatch(const RowSpan& rows, const uint32_t* sel, size_t n,
                   BatchColumn* out, BatchScratch* scratch) const override {
    return EvalViaFilter(*this, rows, sel, n, out, scratch);
  }
  Status FilterBatch(const RowSpan& rows, SelVector* sel,
                     BatchScratch* scratch) const override {
    if (sel->empty()) return Status::OK();
    SelVector* tmp = scratch->AcquireSel();
    *tmp = *sel;
    Status st = inner_->FilterBatch(rows, tmp, scratch);
    if (st.ok() && !SubtractSorted(sel, *tmp)) {
      st = UnsortedSelectionError("NOT");
    }
    scratch->ReleaseSel();
    return st;
  }
  int BcEmitValue(BcCompiler& c, int sel) const override {
    return c.EmitPredicateValue(*this, sel);
  }
  bool BcEmitFilter(BcCompiler& c, int sel) const override {
    // Filter a copy, then subtract the survivors from the input.
    const int tmp = c.NewSel();
    BcInst cp;
    cp.op = BcOp::kSelCopy;
    cp.s = static_cast<uint16_t>(tmp);
    cp.s2 = static_cast<uint16_t>(sel);
    c.Emit(cp);
    c.CompileFilter(*inner_, tmp);
    BcInst sub;
    sub.op = BcOp::kSelSub;
    sub.s = static_cast<uint16_t>(sel);
    sub.s2 = static_cast<uint16_t>(tmp);
    c.Emit(sub);
    return true;
  }
  void CollectColumns(std::vector<int>* cols) const override {
    inner_->CollectColumns(cols);
  }
  std::string ToString() const override {
    return "NOT " + inner_->ToString();
  }

  ExprKind kind() const override { return ExprKind::kNot; }
  size_t NumExprChildren() const override { return 1; }
  ExprPtr ExprChild(size_t i) const override {
    return i == 0 ? inner_ : nullptr;
  }
  ExprPtr RebuildWithChildren(std::vector<ExprPtr> c) const override {
    return std::make_shared<NotExpr>(std::move(c[0]));
  }

 private:
  ExprPtr inner_;
};

}  // namespace

/// Iterative SQL LIKE matcher supporting '%' and '_'.
bool LikeMatch(std::string_view text, std::string_view pattern) {
  size_t ti = 0, pi = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (ti < text.size()) {
    if (pi < pattern.size() &&
        (pattern[pi] == '_' || pattern[pi] == text[ti])) {
      ++ti;
      ++pi;
    } else if (pi < pattern.size() && pattern[pi] == '%') {
      star_p = pi++;
      star_t = ti;
    } else if (star_p != std::string_view::npos) {
      pi = star_p + 1;
      ti = ++star_t;
    } else {
      return false;
    }
  }
  while (pi < pattern.size() && pattern[pi] == '%') ++pi;
  return pi == pattern.size();
}

namespace {

class LikeExpr : public Expr {
 public:
  LikeExpr(ExprPtr input, std::string pattern)
      : input_(std::move(input)), pattern_(std::move(pattern)) {}

  bool EvalBool(const RowRef& row) const override {
    ScalarView v;
    if (input_->TryEvalView(row, &v) && v.tag == ScalarView::Tag::kString) {
      return LikeMatch(v.s, pattern_);
    }
    Item item = input_->Eval(row);
    return item.is_str() && LikeMatch(item.str(), pattern_);
  }

  Item Eval(const RowRef& row) const override {
    return Item(static_cast<int64_t>(EvalBool(row) ? 1 : 0));
  }

  Status EvalBoolChecked(const RowRef& row, bool* out) const override {
    ScalarView v;
    if (input_->TryEvalView(row, &v) && v.tag == ScalarView::Tag::kString) {
      *out = LikeMatch(v.s, pattern_);
      return Status::OK();
    }
    Item item;
    MODULARIS_RETURN_NOT_OK(input_->EvalChecked(row, &item));
    *out = item.is_str() && LikeMatch(item.str(), pattern_);
    return Status::OK();
  }

  Status EvalChecked(const RowRef& row, Item* out) const override {
    bool b = false;
    MODULARIS_RETURN_NOT_OK(EvalBoolChecked(row, &b));
    *out = Item(static_cast<int64_t>(b ? 1 : 0));
    return Status::OK();
  }

  BatchTag BatchType(const Schema&) const override { return BatchTag::kI64; }

  Status EvalBatch(const RowSpan& rows, const uint32_t* sel, size_t n,
                   BatchColumn* out, BatchScratch* scratch) const override {
    return EvalViaFilter(*this, rows, sel, n, out, scratch);
  }

  Status FilterBatch(const RowSpan& rows, SelVector* sel,
                     BatchScratch* scratch) const override {
    if (sel->empty()) return Status::OK();
    const BatchTag it = input_->BatchType(*rows.schema);
    if (it == BatchTag::kI64 || it == BatchTag::kF64) {
      sel->clear();  // non-string LIKE input never matches (row-path rule)
      return Status::OK();
    }
    BatchColumn* v = scratch->AcquireColumn();
    Status st = input_->EvalBatch(rows, sel->data(), sel->size(), v, scratch);
    if (st.ok()) {
      size_t k = 0;
      for (size_t i = 0; i < sel->size(); ++i) {
        bool match;
        if (v->tag == BatchTag::kStr) {
          match = LikeMatch(v->str[i], pattern_);
        } else {
          const Item& item = v->items[i];
          match = item.is_str() && LikeMatch(item.str(), pattern_);
        }
        if (match) (*sel)[k++] = (*sel)[i];
      }
      sel->resize(k);
    }
    scratch->ReleaseColumn();
    return st;
  }

  int BcEmitValue(BcCompiler& c, int sel) const override {
    return c.EmitPredicateValue(*this, sel);
  }

  bool BcEmitFilter(BcCompiler& c, int sel) const override {
    switch (input_->BatchType(c.schema())) {
      case BatchTag::kI64:
      case BatchTag::kF64: {
        BcInst in;
        in.op = BcOp::kFilterClear;
        in.s = static_cast<uint16_t>(sel);
        c.Emit(in);
        return true;
      }
      case BatchTag::kStr: {
        const int r = c.CompileValue(*input_, sel);
        BcInst in;
        in.op = BcOp::kFilterLike;
        in.a = static_cast<uint16_t>(r);
        in.s = static_cast<uint16_t>(sel);
        in.imm = c.AddPattern(pattern_);
        c.Emit(in);
        return true;
      }
      case BatchTag::kItem:
        c.EmitFilterFallback(*this, sel);
        return true;
    }
    return false;
  }

  void CollectColumns(std::vector<int>* cols) const override {
    input_->CollectColumns(cols);
  }

  std::string ToString() const override {
    return input_->ToString() + " LIKE '" + pattern_ + "'";
  }

  ExprKind kind() const override { return ExprKind::kLike; }
  size_t NumExprChildren() const override { return 1; }
  ExprPtr ExprChild(size_t i) const override {
    return i == 0 ? input_ : nullptr;
  }
  ExprPtr RebuildWithChildren(std::vector<ExprPtr> c) const override {
    return std::make_shared<LikeExpr>(std::move(c[0]), pattern_);
  }

 private:
  ExprPtr input_;
  std::string pattern_;
};

class InStrExpr : public Expr {
 public:
  InStrExpr(ExprPtr input, std::vector<std::string> values)
      : input_(std::move(input)),
        values_(values.begin(), values.end()) {}

  bool EvalBool(const RowRef& row) const override {
    ScalarView v;
    if (input_->TryEvalView(row, &v) && v.tag == ScalarView::Tag::kString) {
      return Contains(v.s);
    }
    Item item = input_->Eval(row);
    return item.is_str() && Contains(item.str());
  }

  Item Eval(const RowRef& row) const override {
    return Item(static_cast<int64_t>(EvalBool(row) ? 1 : 0));
  }

  Status EvalBoolChecked(const RowRef& row, bool* out) const override {
    ScalarView v;
    if (input_->TryEvalView(row, &v) && v.tag == ScalarView::Tag::kString) {
      *out = Contains(v.s);
      return Status::OK();
    }
    Item item;
    MODULARIS_RETURN_NOT_OK(input_->EvalChecked(row, &item));
    *out = item.is_str() && Contains(item.str());
    return Status::OK();
  }

  Status EvalChecked(const RowRef& row, Item* out) const override {
    bool b = false;
    MODULARIS_RETURN_NOT_OK(EvalBoolChecked(row, &b));
    *out = Item(static_cast<int64_t>(b ? 1 : 0));
    return Status::OK();
  }

  BatchTag BatchType(const Schema&) const override { return BatchTag::kI64; }

  Status EvalBatch(const RowSpan& rows, const uint32_t* sel, size_t n,
                   BatchColumn* out, BatchScratch* scratch) const override {
    return EvalViaFilter(*this, rows, sel, n, out, scratch);
  }

  Status FilterBatch(const RowSpan& rows, SelVector* sel,
                     BatchScratch* scratch) const override {
    if (sel->empty()) return Status::OK();
    const BatchTag it = input_->BatchType(*rows.schema);
    if (it == BatchTag::kI64 || it == BatchTag::kF64) {
      sel->clear();  // non-string input is never a member (row-path rule)
      return Status::OK();
    }
    BatchColumn* v = scratch->AcquireColumn();
    Status st = input_->EvalBatch(rows, sel->data(), sel->size(), v, scratch);
    if (st.ok()) {
      size_t k = 0;
      for (size_t i = 0; i < sel->size(); ++i) {
        bool member;
        if (v->tag == BatchTag::kStr) {
          member = Contains(v->str[i]);
        } else {
          const Item& item = v->items[i];
          member = item.is_str() && Contains(item.str());
        }
        if (member) (*sel)[k++] = (*sel)[i];
      }
      sel->resize(k);
    }
    scratch->ReleaseColumn();
    return st;
  }

  int BcEmitValue(BcCompiler& c, int sel) const override {
    return c.EmitPredicateValue(*this, sel);
  }

  bool BcEmitFilter(BcCompiler& c, int sel) const override {
    switch (input_->BatchType(c.schema())) {
      case BatchTag::kI64:
      case BatchTag::kF64: {
        BcInst in;
        in.op = BcOp::kFilterClear;
        in.s = static_cast<uint16_t>(sel);
        c.Emit(in);
        return true;
      }
      case BatchTag::kStr: {
        const int r = c.CompileValue(*input_, sel);
        BcInst in;
        in.op = BcOp::kFilterInStr;
        in.a = static_cast<uint16_t>(r);
        in.s = static_cast<uint16_t>(sel);
        in.imm = c.AddStrSet(
            std::vector<std::string>(values_.begin(), values_.end()));
        c.Emit(in);
        return true;
      }
      case BatchTag::kItem:
        c.EmitFilterFallback(*this, sel);
        return true;
    }
    return false;
  }

  void CollectColumns(std::vector<int>* cols) const override {
    input_->CollectColumns(cols);
  }

  std::string ToString() const override {
    std::string out = input_->ToString() + " IN (";
    bool first = true;
    for (const auto& v : values_) {
      if (!first) out += ", ";
      out += "'" + v + "'";
      first = false;
    }
    return out + ")";
  }

  ExprKind kind() const override { return ExprKind::kInStr; }
  size_t NumExprChildren() const override { return 1; }
  ExprPtr ExprChild(size_t i) const override {
    return i == 0 ? input_ : nullptr;
  }
  ExprPtr RebuildWithChildren(std::vector<ExprPtr> c) const override {
    return std::make_shared<InStrExpr>(
        std::move(c[0]),
        std::vector<std::string>(values_.begin(), values_.end()));
  }
  size_t InListSize() const override { return values_.size(); }

 private:
  // Transparent hashing so membership tests take string_view without a
  // per-row std::string allocation (the batch kernel's hot loop).
  struct SvHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  bool Contains(std::string_view s) const {
    return values_.find(s) != values_.end();
  }

  ExprPtr input_;
  std::unordered_set<std::string, SvHash, std::equal_to<>> values_;
};

class InIntExpr : public Expr {
 public:
  InIntExpr(ExprPtr input, std::vector<int64_t> values)
      : input_(std::move(input)), values_(std::move(values)) {}

  bool EvalBool(const RowRef& row) const override {
    ScalarView v;
    int64_t x;
    if (input_->TryEvalView(row, &v) && v.tag == ScalarView::Tag::kInt) {
      x = v.i;
    } else {
      Item item = input_->Eval(row);
      if (!item.is_i64()) return false;
      x = item.i64();
    }
    for (int64_t candidate : values_) {
      if (candidate == x) return true;
    }
    return false;
  }

  Item Eval(const RowRef& row) const override {
    return Item(static_cast<int64_t>(EvalBool(row) ? 1 : 0));
  }

  Status EvalBoolChecked(const RowRef& row, bool* out) const override {
    ScalarView v;
    if (input_->TryEvalView(row, &v) && v.tag == ScalarView::Tag::kInt) {
      *out = Contains(v.i);
      return Status::OK();
    }
    Item item;
    MODULARIS_RETURN_NOT_OK(input_->EvalChecked(row, &item));
    *out = item.is_i64() && Contains(item.i64());
    return Status::OK();
  }

  Status EvalChecked(const RowRef& row, Item* out) const override {
    bool b = false;
    MODULARIS_RETURN_NOT_OK(EvalBoolChecked(row, &b));
    *out = Item(static_cast<int64_t>(b ? 1 : 0));
    return Status::OK();
  }

  BatchTag BatchType(const Schema&) const override { return BatchTag::kI64; }

  Status EvalBatch(const RowSpan& rows, const uint32_t* sel, size_t n,
                   BatchColumn* out, BatchScratch* scratch) const override {
    return EvalViaFilter(*this, rows, sel, n, out, scratch);
  }

  Status FilterBatch(const RowSpan& rows, SelVector* sel,
                     BatchScratch* scratch) const override {
    if (sel->empty()) return Status::OK();
    const BatchTag it = input_->BatchType(*rows.schema);
    if (it == BatchTag::kF64 || it == BatchTag::kStr) {
      sel->clear();  // non-integer input is never a member (row-path rule)
      return Status::OK();
    }
    BatchColumn* v = scratch->AcquireColumn();
    Status st = input_->EvalBatch(rows, sel->data(), sel->size(), v, scratch);
    if (st.ok()) {
      size_t k = 0;
      for (size_t i = 0; i < sel->size(); ++i) {
        bool member = false;
        if (v->tag == BatchTag::kI64) {
          member = Contains(v->i64[i]);
        } else {
          const Item& item = v->items[i];
          member = item.is_i64() && Contains(item.i64());
        }
        if (member) (*sel)[k++] = (*sel)[i];
      }
      sel->resize(k);
    }
    scratch->ReleaseColumn();
    return st;
  }

  int BcEmitValue(BcCompiler& c, int sel) const override {
    return c.EmitPredicateValue(*this, sel);
  }

  bool BcEmitFilter(BcCompiler& c, int sel) const override {
    switch (input_->BatchType(c.schema())) {
      case BatchTag::kF64:
      case BatchTag::kStr: {
        BcInst in;
        in.op = BcOp::kFilterClear;
        in.s = static_cast<uint16_t>(sel);
        c.Emit(in);
        return true;
      }
      case BatchTag::kI64: {
        const int r = c.CompileValue(*input_, sel);
        BcInst in;
        in.op = BcOp::kFilterInI64;
        in.a = static_cast<uint16_t>(r);
        in.s = static_cast<uint16_t>(sel);
        in.imm = c.AddIntSet(values_);
        c.Emit(in);
        return true;
      }
      case BatchTag::kItem:
        c.EmitFilterFallback(*this, sel);
        return true;
    }
    return false;
  }

  void CollectColumns(std::vector<int>* cols) const override {
    input_->CollectColumns(cols);
  }

  std::string ToString() const override {
    std::string out = input_->ToString() + " IN (";
    for (size_t i = 0; i < values_.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(values_[i]);
    }
    return out + ")";
  }

  ExprKind kind() const override { return ExprKind::kInInt; }
  size_t NumExprChildren() const override { return 1; }
  ExprPtr ExprChild(size_t i) const override {
    return i == 0 ? input_ : nullptr;
  }
  ExprPtr RebuildWithChildren(std::vector<ExprPtr> c) const override {
    return std::make_shared<InIntExpr>(std::move(c[0]), values_);
  }
  size_t InListSize() const override { return values_.size(); }

 private:
  bool Contains(int64_t x) const {
    for (int64_t candidate : values_) {
      if (candidate == x) return true;
    }
    return false;
  }

  ExprPtr input_;
  std::vector<int64_t> values_;
};

class IfExpr : public Expr {
 public:
  IfExpr(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr)
      : cond_(std::move(cond)),
        then_(std::move(then_expr)),
        else_(std::move(else_expr)) {}

  Item Eval(const RowRef& row) const override {
    return cond_->EvalBool(row) ? then_->Eval(row) : else_->Eval(row);
  }

  Status EvalChecked(const RowRef& row, Item* out) const override {
    // The checked row tier routes the condition through EvalBoolChecked:
    // a string-valued condition is a hard error here, exactly as it is on
    // the batch and bytecode tiers (unchecked Eval() keeps the legacy
    // silent-false coercion for callers that ask for it explicitly).
    bool cond = false;
    MODULARIS_RETURN_NOT_OK(cond_->EvalBoolChecked(row, &cond));
    return (cond ? then_ : else_)->EvalChecked(row, out);
  }

  BatchTag BatchType(const Schema& schema) const override {
    const BatchTag t = then_->BatchType(schema);
    const BatchTag e = else_->BatchType(schema);
    // Branches of different static types produce per-row dynamic typing —
    // exactly what the interpreted kItem fallback exists for.
    return (t == e && t != BatchTag::kItem) ? t : BatchTag::kItem;
  }

  Status EvalBatch(const RowSpan& rows, const uint32_t* sel, size_t n,
                   BatchColumn* out, BatchScratch* scratch) const override {
    const BatchTag tag = BatchType(*rows.schema);
    if (tag == BatchTag::kItem) {
      return Expr::EvalBatch(rows, sel, n, out, scratch);
    }
    // Split the selection by the condition (checked: a non-numeric
    // condition is a hard error), evaluate each branch only on its rows,
    // and merge positionally.
    SelVector* passed = scratch->AcquireSel();
    SelVector* failed = scratch->AcquireSel();
    passed->assign(sel, sel + n);
    Status st = cond_->FilterBatch(rows, passed, scratch);
    if (st.ok()) {
      failed->assign(sel, sel + n);
      if (!SubtractSorted(failed, *passed)) {
        st = UnsortedSelectionError("IF");
      }
    }
    if (st.ok()) {
      BatchColumn* tc = scratch->AcquireColumn();
      BatchColumn* ec = scratch->AcquireColumn();
      st = then_->EvalBatch(rows, passed->data(), passed->size(), tc,
                            scratch);
      if (st.ok()) {
        st = else_->EvalBatch(rows, failed->data(), failed->size(), ec,
                              scratch);
      }
      if (st.ok()) {
        out->Reset(tag, n);
        size_t jp = 0, jf = 0;
        for (size_t i = 0; i < n; ++i) {
          bool hit = jp < passed->size() && (*passed)[jp] == sel[i];
          switch (tag) {
            case BatchTag::kI64:
              out->i64[i] = hit ? tc->i64[jp] : ec->i64[jf];
              break;
            case BatchTag::kF64:
              out->f64[i] = hit ? tc->f64[jp] : ec->f64[jf];
              break;
            case BatchTag::kStr:
              out->str[i] = hit ? tc->str[jp] : ec->str[jf];
              break;
            case BatchTag::kItem:
              break;  // unreachable: handled by the fallback above
          }
          if (hit) {
            ++jp;
          } else {
            ++jf;
          }
        }
      }
      scratch->ReleaseColumn();
      scratch->ReleaseColumn();
    }
    scratch->ReleaseSel();
    scratch->ReleaseSel();
    return st;
  }

  int BcEmitValue(BcCompiler& c, int sel) const override {
    // Dead-branch elimination: a constant numeric condition selects one
    // branch at compile time; the other is never emitted (even if it is
    // a kItem subtree the compiler could only run interpreted).
    Item cv;
    if (c.TryConstEval(*cond_, &cv) && (cv.is_i64() || cv.is_f64())) {
      const bool truthy = cv.is_i64() ? cv.i64() != 0 : cv.f64() != 0;
      return c.CompileValue(truthy ? *then_ : *else_, sel);
    }
    const BatchTag tag = BatchType(c.schema());
    if (tag == BatchTag::kItem) return -1;  // per-row dynamic typing
    // Split / branch-evaluate / positional merge — the bytecode shape of
    // the typed EvalBatch above.
    const int passed = c.NewSel();
    const int failed = c.NewSel();
    auto sel_op = [&c](BcOp op, int s, int s2) {
      BcInst in;
      in.op = op;
      in.s = static_cast<uint16_t>(s);
      in.s2 = static_cast<uint16_t>(s2);
      c.Emit(in);
    };
    sel_op(BcOp::kSelCopy, passed, sel);
    c.CompileFilter(*cond_, passed);
    sel_op(BcOp::kSelCopy, failed, sel);
    sel_op(BcOp::kSelSub, failed, passed);
    const size_t jt = c.EmitJumpIfEmpty(passed);
    const int then_reg_live = c.CompileValue(*then_, passed);
    c.PatchJump(jt);
    const size_t je = c.EmitJumpIfEmpty(failed);
    const int else_reg_live = c.CompileValue(*else_, failed);
    c.PatchJump(je);
    const int dst = c.NewReg(tag);
    BcInst mg;
    mg.op = tag == BatchTag::kI64   ? BcOp::kMergeI64
            : tag == BatchTag::kF64 ? BcOp::kMergeF64
                                    : BcOp::kMergeStr;
    mg.dst = static_cast<uint16_t>(dst);
    mg.a = static_cast<uint16_t>(then_reg_live);
    mg.b = static_cast<uint16_t>(else_reg_live);
    mg.s = static_cast<uint16_t>(sel);
    mg.s2 = static_cast<uint16_t>(passed);
    c.Emit(mg);
    return dst;
  }

  void CollectColumns(std::vector<int>* cols) const override {
    cond_->CollectColumns(cols);
    then_->CollectColumns(cols);
    else_->CollectColumns(cols);
  }

  std::string ToString() const override {
    return "IF(" + cond_->ToString() + ", " + then_->ToString() + ", " +
           else_->ToString() + ")";
  }

  ExprKind kind() const override { return ExprKind::kIf; }
  size_t NumExprChildren() const override { return 3; }
  ExprPtr ExprChild(size_t i) const override {
    switch (i) {
      case 0: return cond_;
      case 1: return then_;
      case 2: return else_;
      default: return nullptr;
    }
  }
  ExprPtr RebuildWithChildren(std::vector<ExprPtr> c) const override {
    return std::make_shared<IfExpr>(std::move(c[0]), std::move(c[1]),
                                    std::move(c[2]));
  }

 private:
  ExprPtr cond_, then_, else_;
};

}  // namespace

namespace ex {

ExprPtr Col(int index) { return std::make_shared<ColumnRefExpr>(index); }
ExprPtr Lit(int64_t v) { return std::make_shared<LiteralExpr>(Item(v)); }
ExprPtr Lit(double v) { return std::make_shared<LiteralExpr>(Item(v)); }
ExprPtr Lit(std::string v) {
  return std::make_shared<LiteralExpr>(Item(std::move(v)));
}

ExprPtr DateLit(std::string_view ymd) {
  Result<int32_t> date = ParseDate(ymd);
  if (!date.ok()) std::abort();  // malformed compile-time constant
  return Lit(static_cast<int64_t>(date.value()));
}

ExprPtr Cmp(CmpOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<CompareExpr>(op, std::move(lhs), std::move(rhs));
}
ExprPtr Eq(ExprPtr l, ExprPtr r) { return Cmp(CmpOp::kEq, l, r); }
ExprPtr Ne(ExprPtr l, ExprPtr r) { return Cmp(CmpOp::kNe, l, r); }
ExprPtr Lt(ExprPtr l, ExprPtr r) { return Cmp(CmpOp::kLt, l, r); }
ExprPtr Le(ExprPtr l, ExprPtr r) { return Cmp(CmpOp::kLe, l, r); }
ExprPtr Gt(ExprPtr l, ExprPtr r) { return Cmp(CmpOp::kGt, l, r); }
ExprPtr Ge(ExprPtr l, ExprPtr r) { return Cmp(CmpOp::kGe, l, r); }

ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<ArithExpr>(op, std::move(lhs), std::move(rhs));
}
ExprPtr Add(ExprPtr l, ExprPtr r) { return Arith(ArithOp::kAdd, l, r); }
ExprPtr Sub(ExprPtr l, ExprPtr r) { return Arith(ArithOp::kSub, l, r); }
ExprPtr Mul(ExprPtr l, ExprPtr r) { return Arith(ArithOp::kMul, l, r); }
ExprPtr Div(ExprPtr l, ExprPtr r) { return Arith(ArithOp::kDiv, l, r); }

ExprPtr And(std::vector<ExprPtr> children) {
  if (children.size() == 1) return children[0];
  return std::make_shared<AndExpr>(std::move(children));
}
ExprPtr And(ExprPtr a, ExprPtr b) { return And({std::move(a), std::move(b)}); }
ExprPtr And(ExprPtr a, ExprPtr b, ExprPtr c) {
  return And({std::move(a), std::move(b), std::move(c)});
}
ExprPtr Or(std::vector<ExprPtr> children) {
  if (children.size() == 1) return children[0];
  return std::make_shared<OrExpr>(std::move(children));
}
ExprPtr Or(ExprPtr a, ExprPtr b) { return Or({std::move(a), std::move(b)}); }
ExprPtr Not(ExprPtr inner) { return std::make_shared<NotExpr>(inner); }

ExprPtr Like(ExprPtr input, std::string pattern) {
  return std::make_shared<LikeExpr>(std::move(input), std::move(pattern));
}
ExprPtr InStr(ExprPtr input, std::vector<std::string> values) {
  return std::make_shared<InStrExpr>(std::move(input), std::move(values));
}
ExprPtr InInt(ExprPtr input, std::vector<int64_t> values) {
  return std::make_shared<InIntExpr>(std::move(input), std::move(values));
}
ExprPtr Between(ExprPtr input, ExprPtr lo, ExprPtr hi) {
  return And(Cmp(CmpOp::kGe, input, std::move(lo)),
             Cmp(CmpOp::kLe, input, std::move(hi)));
}
ExprPtr If(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr) {
  return std::make_shared<IfExpr>(std::move(cond), std::move(then_expr),
                                  std::move(else_expr));
}

}  // namespace ex

}  // namespace modularis
