#ifndef MODULARIS_CORE_PARALLEL_H_
#define MODULARIS_CORE_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/exec_context.h"
#include "core/status.h"

/// \file parallel.h
/// Morsel-driven intra-node parallelism (docs/DESIGN-parallel.md). A
/// blocking sub-operator that has materialized its record-stream input as
/// packed rows splits the span into morsels and fans the work out over a
/// per-rank worker pool; thread-local results (histograms, partitions,
/// aggregate tables, probe outputs) merge deterministically at the end so
/// `num_threads = N` is byte-identical to `num_threads = 1`.
///
/// Two scheduling modes:
///  * MorselCursor — dynamic claiming, for phases whose merge is
///    order-insensitive (histogram counting). Classic morsel-driven
///    load balancing.
///  * SplitRows — static contiguous ranges in input order, for phases
///    whose merge must replay the serial order exactly (partition
///    scatter offsets, aggregate first-occurrence order, probe output
///    concatenation).

namespace modularis {

/// Runs `body(worker)` for workers 0..num_workers-1 concurrently; worker 0
/// executes on the calling thread. Returns the first non-OK status (all
/// workers always run to completion so partial state stays consistent).
/// Thread spawn cost is ~100us total — callers gate on PlanWorkers() so a
/// parallel region always amortizes it over a large morsel run.
Status ParallelFor(int num_workers, const std::function<Status(int)>& body);

/// Cancellation-aware variant: refuses to dispatch when `ctx->cancel` has
/// already stopped the query, and reports the cancellation cause if it
/// fired while the region ran (workers end their morsel loops early via a
/// cancellable MorselCursor, which would otherwise look like a clean — but
/// partial — completion). `ctx` (or its token) may be null.
Status ParallelFor(const ExecContext* ctx, int num_workers,
                   const std::function<Status(int)>& body);

/// Picks the worker count for a phase over `rows` input rows: enough rows
/// per worker (options.parallel_min_rows) to amortize thread startup and
/// merge cost, capped at the resolved thread budget. Returns 1 when the
/// input is too small to be worth splitting (callers then keep the serial
/// path; that is a sizing decision, not a `parallel.serial_fallback.*`
/// safety fallback).
int PlanWorkers(size_t rows, const ExecOptions& options);

/// Records that an operator requested parallel execution but had to fall
/// back to the serial path for a structural reason (non-vectorized mode,
/// an unclonable chain, an order-sensitive float aggregate, ...). Keyed
/// "parallel.serial_fallback.<op>"; the parity suite asserts these stay
/// zero for the operators with native parallel paths.
void NoteSerialFallback(ExecContext* ctx, const char* op_name);

/// Static contiguous split of [0, total) into `workers` ranges in input
/// order: range w is [out[w], out[w+1]). Ranges differ in size by at most
/// one row, so out has workers + 1 entries.
std::vector<size_t> SplitRows(size_t total, int workers);

/// One sorted run of row indices inside a shared order array: [pos, end)
/// ascending under the caller's comparator. Produced by the
/// morsel-parallel run-formation phase of SortOp/TopK, consumed by
/// MergeIndexRuns.
struct IndexRun {
  const uint32_t* pos;
  const uint32_t* end;
  bool exhausted() const { return pos == end; }
};

/// Builds the merge descriptors for per-worker runs laid out by
/// SplitRows: run w covers order[bounds[w], bounds[w+1]), clipped to its
/// first min(cap, run size) entries. A bounded (top-k) sort only orders
/// that prefix per run, and the merge provably never reads past it:
/// popping `cap` elements in total takes at most `cap` from any single
/// run.
std::vector<IndexRun> BuildIndexRuns(const uint32_t* order,
                                     const std::vector<size_t>& bounds,
                                     size_t cap);

/// K-way merge of sorted index runs through a tournament (loser) tree.
/// `less` must be a strict TOTAL order over the indices themselves (sort
/// callers tie-break equal keys by the index), which makes the merged
/// order independent of how the input was cut into runs — the heart of
/// the N-threads-byte-equal-to-1 guarantee. One comparison per tree
/// level per pop: the replay walks only the advanced run's leaf-to-root
/// path, re-seating losers — cheaper than a binary heap, which pays two
/// comparisons per level sifting down.
template <typename Less>
class LoserTree {
 public:
  LoserTree(std::vector<IndexRun> runs, Less less)
      : runs_(std::move(runs)), less_(std::move(less)), k_(runs_.size()) {
    if (k_ > 1) {
      tree_.assign(k_, 0);
      winner_ = Init(1);
    }
  }

  /// Pops the globally smallest remaining index; false once every run is
  /// exhausted (an exhausted run loses every comparison, so an exhausted
  /// winner implies all runs are dry).
  bool Pop(uint32_t* out) {
    if (k_ == 0 || runs_[winner_].exhausted()) return false;
    *out = *runs_[winner_].pos++;
    if (k_ > 1) Replay();
    return true;
  }

 private:
  /// True when run `a`'s front comes before run `b`'s. Exhausted runs
  /// lose to live ones and order among themselves by run id (which the
  /// merge output never observes).
  bool Beats(size_t a, size_t b) const {
    if (runs_[a].exhausted() || runs_[b].exhausted()) {
      return runs_[b].exhausted() && (!runs_[a].exhausted() || a < b);
    }
    return less_(*runs_[a].pos, *runs_[b].pos);
  }

  /// Builds the complete tournament tree (internal nodes 1..k-1; leaf
  /// node k + i is run i): stores the loser at each internal node,
  /// returns the subtree winner.
  size_t Init(size_t node) {
    if (node >= k_) return node - k_;
    size_t l = Init(2 * node);
    size_t r = Init(2 * node + 1);
    if (Beats(l, r)) {
      tree_[node] = r;
      return l;
    }
    tree_[node] = l;
    return r;
  }

  /// Re-seats the winner after its run advanced: replay losers along the
  /// winner's fixed leaf-to-root path only.
  void Replay() {
    size_t cur = winner_;
    for (size_t node = (winner_ + k_) / 2; node >= 1; node /= 2) {
      if (Beats(tree_[node], cur)) std::swap(cur, tree_[node]);
    }
    winner_ = cur;
  }

  std::vector<IndexRun> runs_;
  Less less_;  // by value: a reference would dangle for temporary lambdas
  size_t k_;
  std::vector<size_t> tree_;  // loser at each internal node
  size_t winner_ = 0;
};

/// Merges `runs` into `out`, popping at most `out_count` indices (fewer
/// when the runs hold fewer). Returns the number written.
template <typename Less>
size_t MergeIndexRuns(std::vector<IndexRun> runs, size_t out_count,
                      const Less& less, uint32_t* out) {
  LoserTree<Less> tree(std::move(runs), less);
  size_t i = 0;
  while (i < out_count && tree.Pop(&out[i])) ++i;
  return i;
}

/// Combines `count` fixed-size partial-state rows (each `stride` bytes,
/// packed back to back in `rows`) down to rows[0] with a fixed-shape
/// pairwise tree: level by level, combine(row 2i, row 2i+1) with an odd
/// tail carried up unchanged. The tree shape depends only on `count` —
/// never on thread count or scheduling — so float accumulators folded
/// through it are byte-stable at any parallelism (the scalar-Reduce
/// determinism rule, docs/DESIGN-parallel.md). `combine(dst, src)` folds
/// src into dst. No-op for count < 2.
void PairwiseCombineRows(
    uint8_t* rows, size_t count, uint32_t stride,
    const std::function<void(uint8_t* dst, const uint8_t* src)>& combine);

/// Dynamic morsel dispenser over [0, total): workers claim fixed-size
/// morsels with one atomic add. Use only for order-insensitive merges.
/// With a CancellationToken attached, Claim stops dispensing once the
/// query is cancelled — workers drain out at the next morsel boundary and
/// the enclosing ParallelFor(ctx, ...) reports the cancellation cause.
class MorselCursor {
 public:
  MorselCursor(size_t total, size_t morsel_rows,
               const CancellationToken* cancel = nullptr)
      : total_(total),
        morsel_rows_(morsel_rows == 0 ? 1 : morsel_rows),
        cancel_(cancel) {}

  /// Claims the next morsel; false when the input is exhausted or the
  /// query was cancelled.
  bool Claim(size_t* begin, size_t* count) {
    if (cancel_ != nullptr && cancel_->ShouldStop()) return false;
    size_t b = next_.fetch_add(morsel_rows_, std::memory_order_relaxed);
    if (b >= total_) return false;
    *begin = b;
    *count = total_ - b < morsel_rows_ ? total_ - b : morsel_rows_;
    return true;
  }

 private:
  const size_t total_;
  const size_t morsel_rows_;
  const CancellationToken* cancel_;
  std::atomic<size_t> next_{0};
};

/// Per-worker ExecContext views plus stats merging. Each worker gets a
/// private StatsRegistry (so PhaseTimer slots never contend on the shared
/// Stats mutex in hot loops) and a context copy with num_threads pinned to
/// 1 (a worker never re-parallelizes — nested operators inside a worker
/// run serially, which also keeps the pool from oversubscribing).
/// MergeStats() folds the worker registries into the base context at the
/// end of the parallel region: times via MergeMax (a phase costs what its
/// slowest worker took, the paper's per-rank reporting convention),
/// counters summed.
class WorkerSet {
 public:
  WorkerSet(ExecContext* base, int num_workers);

  int size() const { return static_cast<int>(contexts_.size()); }
  ExecContext* ctx(int w) { return contexts_[w].get(); }
  StatsRegistry* stats(int w) { return registries_[w].get(); }

  void MergeStats();

 private:
  ExecContext* base_;
  std::vector<std::unique_ptr<StatsRegistry>> registries_;
  std::vector<std::unique_ptr<ExecContext>> contexts_;
};

}  // namespace modularis

#endif  // MODULARIS_CORE_PARALLEL_H_
