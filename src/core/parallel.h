#ifndef MODULARIS_CORE_PARALLEL_H_
#define MODULARIS_CORE_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/exec_context.h"
#include "core/status.h"

/// \file parallel.h
/// Morsel-driven intra-node parallelism (docs/DESIGN-parallel.md). A
/// blocking sub-operator that has materialized its record-stream input as
/// packed rows splits the span into morsels and fans the work out over a
/// per-rank worker pool; thread-local results (histograms, partitions,
/// aggregate tables, probe outputs) merge deterministically at the end so
/// `num_threads = N` is byte-identical to `num_threads = 1`.
///
/// Two scheduling modes:
///  * MorselCursor — dynamic claiming, for phases whose merge is
///    order-insensitive (histogram counting). Classic morsel-driven
///    load balancing.
///  * SplitRows — static contiguous ranges in input order, for phases
///    whose merge must replay the serial order exactly (partition
///    scatter offsets, aggregate first-occurrence order, probe output
///    concatenation).

namespace modularis {

/// Runs `body(worker)` for workers 0..num_workers-1 concurrently; worker 0
/// executes on the calling thread. Returns the first non-OK status (all
/// workers always run to completion so partial state stays consistent).
/// Thread spawn cost is ~100us total — callers gate on PlanWorkers() so a
/// parallel region always amortizes it over a large morsel run.
Status ParallelFor(int num_workers, const std::function<Status(int)>& body);

/// Picks the worker count for a phase over `rows` input rows: enough rows
/// per worker (options.parallel_min_rows) to amortize thread startup and
/// merge cost, capped at the resolved thread budget. Returns 1 when the
/// input is too small to be worth splitting (callers then keep the serial
/// path; that is a sizing decision, not a `parallel.serial_fallback.*`
/// safety fallback).
int PlanWorkers(size_t rows, const ExecOptions& options);

/// Records that an operator requested parallel execution but had to fall
/// back to the serial path for a structural reason (non-vectorized mode,
/// an unclonable chain, an order-sensitive float aggregate, ...). Keyed
/// "parallel.serial_fallback.<op>"; the parity suite asserts these stay
/// zero for the operators with native parallel paths.
void NoteSerialFallback(ExecContext* ctx, const char* op_name);

/// Static contiguous split of [0, total) into `workers` ranges in input
/// order: range w is [out[w], out[w+1]). Ranges differ in size by at most
/// one row, so out has workers + 1 entries.
std::vector<size_t> SplitRows(size_t total, int workers);

/// Dynamic morsel dispenser over [0, total): workers claim fixed-size
/// morsels with one atomic add. Use only for order-insensitive merges.
class MorselCursor {
 public:
  MorselCursor(size_t total, size_t morsel_rows)
      : total_(total), morsel_rows_(morsel_rows == 0 ? 1 : morsel_rows) {}

  /// Claims the next morsel; false when the input is exhausted.
  bool Claim(size_t* begin, size_t* count) {
    size_t b = next_.fetch_add(morsel_rows_, std::memory_order_relaxed);
    if (b >= total_) return false;
    *begin = b;
    *count = total_ - b < morsel_rows_ ? total_ - b : morsel_rows_;
    return true;
  }

 private:
  const size_t total_;
  const size_t morsel_rows_;
  std::atomic<size_t> next_{0};
};

/// Per-worker ExecContext views plus stats merging. Each worker gets a
/// private StatsRegistry (so PhaseTimer slots never contend on the shared
/// Stats mutex in hot loops) and a context copy with num_threads pinned to
/// 1 (a worker never re-parallelizes — nested operators inside a worker
/// run serially, which also keeps the pool from oversubscribing).
/// MergeStats() folds the worker registries into the base context at the
/// end of the parallel region: times via MergeMax (a phase costs what its
/// slowest worker took, the paper's per-rank reporting convention),
/// counters summed.
class WorkerSet {
 public:
  WorkerSet(ExecContext* base, int num_workers);

  int size() const { return static_cast<int>(contexts_.size()); }
  ExecContext* ctx(int w) { return contexts_[w].get(); }
  StatsRegistry* stats(int w) { return registries_[w].get(); }

  void MergeStats();

 private:
  ExecContext* base_;
  std::vector<std::unique_ptr<StatsRegistry>> registries_;
  std::vector<std::unique_ptr<ExecContext>> contexts_;
};

}  // namespace modularis

#endif  // MODULARIS_CORE_PARALLEL_H_
