#ifndef MODULARIS_CORE_EXPR_BC_H_
#define MODULARIS_CORE_EXPR_BC_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/expr.h"

/// \file expr_bc.h
/// Bytecode compilation tier for expression trees and group-key codecs
/// (docs/DESIGN-expr-bytecode.md). Expr trees compile into a flat,
/// register-based IR executed by a batch-oriented dispatch loop: one
/// opcode switch per *vector* of rows, not per row, so the per-node
/// virtual-call overhead of Expr::EvalBatch disappears and the hot
/// kernels become straight-line loops over typed registers. Predicates
/// narrow selection registers exactly like FilterBatch narrows
/// SelVectors; anything the compiler cannot type falls back to the
/// interpreted EvalBatch/FilterBatch per node (counted, never wrong).
/// Programs are immutable after compile and hold no execution state, so
/// — like the trees they were compiled from — they are shareable across
/// workers; all mutable state lives in the per-worker BcState.

namespace modularis {

/// Bytecode opcodes. Value ops fill value registers over the lanes of a
/// selection register; filter ops narrow a selection register in place;
/// sel ops implement the AND/OR/NOT/IF selection algebra; kJumpIfEmpty
/// provides the short-circuit jumps. The kFilterCol* forms are produced
/// by the optimizer's comparison fusion: they read the column directly
/// from the packed rows and narrow in a single pass, no materialized
/// value register at all.
enum class BcOp : uint8_t {
  kNop = 0,
  // Column loads: dst[i] = rows[sel[i]] field at byte offset imm.
  kLoadI32,  // sign-extended to i64 (covers i32 and date columns)
  kLoadI64,
  kLoadF64,
  kLoadStr,  // u16 length + payload → borrowed string_view
  // Constant splats from the program pools: dst[i] = pool[imm].
  kConstI64,
  kConstF64,
  kConstStr,
  // Arithmetic over the lanes of sel register s.
  kCastF64,  // dst = (double)a
  kAddI64,
  kSubI64,
  kMulI64,
  kAddF64,
  kSubF64,
  kMulF64,
  kDivF64,  // y == 0 ? 0.0 : x / y — the engine's division semantics
  // dst.i64[i] = 1 iff sels[s][i] survived into sels[s2] (predicate as
  // a value: MarkMatches over a filtered copy of the outer selection).
  kMarkSel,
  // IF merge: dst over the lanes of sels[s], pulling from a (then) for
  // lanes present in sels[s2] and from b (else) otherwise, positionally.
  kMergeI64,
  kMergeF64,
  kMergeStr,
  // Filters: narrow sels[s] in place.
  kFilterCmpI64,  // keep lanes where cmp(a[i], b[i])
  kFilterCmpF64,
  kFilterCmpStr,
  kFilterNzI64,  // keep lanes where a[i] != 0
  kFilterNzF64,
  kFilterLike,   // keep lanes where a[i] LIKE str_pool[imm]
  kFilterInStr,  // keep lanes where a[i] ∈ str_sets[imm]
  kFilterInI64,  // keep lanes where a[i] ∈ int_sets[imm]
  kFilterClear,  // statically false predicate: clear sels[s]
  kFilterRaise,  // statically non-numeric predicate: error if lanes remain
  // Fused column-vs-constant filters (optimizer output): load from row
  // byte offset imm, compare against const pool entry b, one pass.
  kFilterColCmpI32,
  kFilterColCmpI64,
  kFilterColCmpF64,
  // Fused two-sided range (the BETWEEN shape): cmp(v, pool[a]) AND
  // cmp2(v, pool[b]) against column at byte offset imm, one pass.
  kFilterColRangeI32,
  kFilterColRangeI64,
  kFilterColRangeF64,
  // Selection algebra.
  kSelCopy,    // sels[s] = sels[s2]
  kSelSub,     // sels[s] -= sels[s2] (must be ascending subset)
  kSelAppend,  // sels[s] += sels[s2]
  kSelSort,    // sort sels[s] ascending
  // Control: if sels[s] is empty, jump to pc = imm.
  kJumpIfEmpty,
  // Interpreted fallbacks, one virtual dispatch per *vector*.
  kEvalFallback,    // dst = nodes[imm]->EvalBatch over lanes of s
  kFilterFallback,  // nodes[imm]->FilterBatch on sels[s]
};

/// One instruction. `dst`/`a`/`b` index value registers (for the fused
/// kFilterCol* forms `a`/`b` index the typed constant pools instead);
/// `s`/`s2` index selection registers; `imm` is a column byte offset, a
/// pool index, a fallback-node index, or a jump target depending on op.
struct BcInst {
  BcOp op = BcOp::kNop;
  CmpOp cmp = CmpOp::kEq;
  CmpOp cmp2 = CmpOp::kEq;  // hi-bound operator of the fused ranges
  uint16_t dst = 0;
  uint16_t a = 0;
  uint16_t b = 0;
  uint16_t s = 0;
  uint16_t s2 = 0;
  uint32_t imm = 0;
};

class BcProgram;

/// Per-worker execution state of bytecode programs: the value and
/// selection register files plus the scratch the interpreted fallback
/// instructions evaluate into. Owned by the executing operator exactly
/// like BatchScratch — never by the program, which stays immutable and
/// shareable. Registers keep their capacity across batches; constant
/// registers refill only when the lane count grows beyond what a prior
/// batch already splatted.
class BcState {
 public:
  BatchScratch* scratch() { return &scratch_; }

 private:
  friend class BcProgram;
  std::vector<BatchColumn> regs_;
  std::vector<SelVector> sels_;
  std::vector<size_t> const_fill_;  // lanes already splatted per const reg
  uint64_t program_serial_ = 0;     // which program the caches belong to
  BatchScratch scratch_;
};

/// A compiled, immutable bytecode program. Two entry points: RunFilter
/// (predicate programs — narrows the caller's SelVector in place) and
/// RunValue (value programs — fills a BatchColumn for the given lanes).
/// Both validate the incoming selection against the strictly-ascending
/// SelVector contract: the bytecode tier is the checked tier.
class BcProgram {
 public:
  /// Compile-time metadata, for stats counters and tests.
  struct CompileStats {
    size_t value_fallbacks = 0;   // kEvalFallback instructions emitted
    size_t filter_fallbacks = 0;  // kFilterFallback instructions emitted
    size_t fused = 0;             // kFilterCol* produced by the optimizer
    size_t folded = 0;            // subtrees folded to constants
  };

  BcProgram() = default;

  /// Compiles `pred` into a predicate program over rows of `schema`.
  /// `optimize` disables the IR optimizer for differential tests.
  static BcProgram CompileFilter(ExprPtr pred, const Schema& schema,
                                 bool optimize = true);
  /// Compiles `expr` into a value program over rows of `schema`.
  static BcProgram CompileValue(ExprPtr expr, const Schema& schema,
                                bool optimize = true);

  /// Narrows `*sel` to the rows of `rows` satisfying the compiled
  /// predicate. Byte-equal to pred->FilterBatch on the same inputs.
  Status RunFilter(const RowSpan& rows, SelVector* sel, BcState* state) const;

  /// Evaluates the compiled expression for the `n` rows sel[0..n) into
  /// `*out`. Byte-equal to expr->EvalBatch on the same inputs.
  Status RunValue(const RowSpan& rows, const uint32_t* sel, size_t n,
                  BatchColumn* out, BcState* state) const;

  bool valid() const { return root_ != nullptr; }
  /// Static tag of a value program's result (= root->BatchType(schema)).
  BatchTag value_tag() const { return value_tag_; }
  const CompileStats& stats() const { return stats_; }
  size_t fallback_count() const {
    return stats_.value_fallbacks + stats_.filter_fallbacks;
  }
  size_t num_instructions() const { return insts_.size(); }
  /// Human-readable listing, for tests and docs.
  std::string Disassemble() const;

 private:
  friend class BcCompiler;
  friend void OptimizeProgram(BcProgram* prog);

  Status Run(const RowSpan& rows, BcState* state) const;
  void BindState(BcState* state) const;

  std::vector<BcInst> insts_;
  uint16_t num_regs_ = 0;
  uint16_t num_sels_ = 1;  // sel register 0 is the caller's selection
  int root_reg_ = -1;      // value programs: register holding the result
  BatchTag value_tag_ = BatchTag::kItem;
  bool is_filter_ = false;

  // Constant pools and interpreted-fallback nodes. `root_` keeps every
  // node in `nodes_` alive (they are subtrees of it).
  std::vector<int64_t> const_i64_;
  std::vector<double> const_f64_;
  std::vector<std::string> const_str_;
  std::vector<std::vector<std::string>> str_sets_;  // sorted for lookup
  std::vector<std::vector<int64_t>> int_sets_;
  std::vector<const Expr*> nodes_;
  ExprPtr root_;

  uint64_t serial_ = 0;  // distinguishes programs sharing one BcState
  CompileStats stats_;
};

/// Compilation context handed to Expr::BcEmitValue/BcEmitFilter. Nodes
/// append instructions through it; it owns register allocation, constant
/// pooling, whole-subtree constant folding (TryConstEval), and the
/// fallback escape hatches. See docs/DESIGN-expr-bytecode.md for the
/// emission contract per node kind.
class BcCompiler {
 public:
  BcCompiler(BcProgram* prog, const Schema& schema);

  const Schema& schema() const { return *schema_; }

  // -- Registers ------------------------------------------------------------
  int NewReg(BatchTag tag);
  int NewSel();
  BatchTag RegTag(int r) const { return reg_tags_[static_cast<size_t>(r)]; }

  // -- Emission -------------------------------------------------------------
  void Emit(const BcInst& inst) { prog_->insts_.push_back(inst); }
  size_t NextPc() const { return prog_->insts_.size(); }
  /// Emits kJumpIfEmpty on `sel` with a placeholder target; PatchJump
  /// later points it at the then-current NextPc().
  size_t EmitJumpIfEmpty(int sel);
  void PatchJump(size_t pc) {
    prog_->insts_[pc].imm = static_cast<uint32_t>(NextPc());
  }

  // -- Constants (pooled; const registers are dedicated and cached) ---------
  int ConstI64(int64_t v);
  int ConstF64(double v);
  int ConstStr(std::string_view v);
  uint32_t AddPattern(std::string_view pattern);  // const_str_ index
  uint32_t AddStrSet(std::vector<std::string> values);
  uint32_t AddIntSet(std::vector<int64_t> values);

  // -- Recursion (always succeeds; worst case emits a fallback) -------------
  /// Compiles `e` as a value over the lanes of `sel`; returns the result
  /// register. Folds column-free subtrees to constants first (checked
  /// evaluation, so a subtree that would error at runtime is not folded
  /// past its error).
  int CompileValue(const Expr& e, int sel);
  /// Compiles `e` as a predicate narrowing sel register `sel`.
  void CompileFilter(const Expr& e, int sel);

  /// Predicate in value position: filter a copy of `sel`, then mark
  /// membership (dst.i64[i] ∈ {0,1}). Mirrors EvalViaFilter.
  int EmitPredicateValue(const Expr& e, int sel);

  /// Explicit interpreted fallbacks (counted in CompileStats).
  int EmitEvalFallback(const Expr& e, int sel);
  void EmitFilterFallback(const Expr& e, int sel);
  /// Statically non-numeric predicate: hard error if any lane survives
  /// to this point (checked EvalBool semantics).
  void EmitFilterRaise(const Expr& e, int sel);

  /// i64→f64 convenience; returns `reg` unchanged if already kF64.
  int CastToF64(int reg, int sel);

  /// Evaluates a column-free subtree once, with checked semantics.
  /// Returns false if the subtree references columns, errors, or yields
  /// a non-atom result.
  bool TryConstEval(const Expr& e, Item* out) const;

 private:
  friend class BcProgram;
  uint32_t InternNode(const Expr& e);

  BcProgram* prog_;
  const Schema* schema_;
  std::vector<BatchTag> reg_tags_;
  std::map<int64_t, int> i64_regs_;
  std::map<uint64_t, int> f64_regs_;  // keyed by bit pattern
  std::map<std::string, int, std::less<>> str_regs_;
};

/// Optimizes a compiled program in place: comparison fusion (load+const
/// +compare → kFilterColCmp*, adjacent one-sided bounds on the same
/// column → kFilterColRange*), i64 strength reduction (x+0, x-0, x*1,
/// x*0 — f64 is left untouched for bit-exactness), and dead-code
/// elimination of unread value registers. Constant folding and
/// dead-branch elimination happen earlier, at emission. Never changes
/// observable results: byte-equal output is the invariant every pass
/// must keep.
void OptimizeProgram(BcProgram* prog);

/// Compiled fused serialize+hash kernel for group keys: the
/// KeyCodec::SerializeKeys + HashKeysSpan pair collapsed into one
/// block-wise pass, so key bytes are hashed while still L1-resident and
/// the common single-i64/f64-key shape becomes a single load→store→mix
/// loop. Byte-identical output to the interpreted pair by construction
/// (same Part layout, same HashKeyBytes mix); stateless and const, so
/// worker-safe exactly like KeyCodec.
class KeyProgram {
 public:
  KeyProgram() = default;
  KeyProgram(const Schema& schema, const std::vector<int>& key_cols);

  uint32_t key_size() const { return key_size_; }
  bool valid() const { return key_size_ > 0; }

  /// Serializes and hashes the keys of rows [begin, begin + n):
  /// keys_out receives n * key_size() bytes, hashes_out n hashes —
  /// exactly SerializeKeys followed by HashKeysSpan, in one pass.
  void SerializeAndHash(const RowSpan& rows, size_t begin, size_t n,
                        uint8_t* keys_out, uint64_t* hashes_out) const;

 private:
  struct Part {
    uint32_t src_offset = 0;
    uint32_t dst_offset = 0;
    uint32_t bytes = 0;
  };
  std::vector<Part> parts_;
  uint32_t key_size_ = 0;
  bool single_word_ = false;  // one 8-byte part at offset 0: fully fused
};

}  // namespace modularis

#endif  // MODULARIS_CORE_EXPR_BC_H_
