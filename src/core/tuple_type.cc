#include "core/tuple_type.h"

namespace modularis {

bool ItemType::Equals(const ItemType& other) const {
  if (kind != other.kind) return false;
  if (kind == Kind::kAtom) {
    return atom == other.atom && width == other.width;
  }
  if (collection != other.collection) return false;
  if ((element == nullptr) != (other.element == nullptr)) return false;
  return element == nullptr || element->Equals(*other.element);
}

std::string ItemType::ToString() const {
  if (kind == Kind::kAtom) {
    std::string out = AtomTypeName(atom);
    if (atom == AtomType::kString) out += "(" + std::to_string(width) + ")";
    return out;
  }
  return collection + (element ? element->ToString() : "⟨?⟩");
}

bool TupleType::Equals(const TupleType& other) const {
  if (fields.size() != other.fields.size()) return false;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].first != other.fields[i].first) return false;
    if (!fields[i].second.Equals(other.fields[i].second)) return false;
  }
  return true;
}

std::string TupleType::ToString() const {
  std::string out = "⟨";
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields[i].first + ":" + fields[i].second.ToString();
  }
  out += "⟩";
  return out;
}

int TupleType::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].first == name) return static_cast<int>(i);
  }
  return -1;
}

TupleTypePtr TupleTypeFromSchema(const Schema& schema) {
  std::vector<std::pair<std::string, ItemType>> fields;
  fields.reserve(schema.num_fields());
  for (const Field& f : schema.fields()) {
    fields.emplace_back(f.name, ItemType::Atom(f.type, f.width));
  }
  return TupleType::Make(std::move(fields));
}

Result<Schema> SchemaFromTupleType(const TupleType& type) {
  std::vector<Field> fields;
  fields.reserve(type.fields.size());
  for (const auto& [name, item] : type.fields) {
    if (item.kind != ItemType::Kind::kAtom) {
      return Status::InvalidArgument(
          "tuple type has non-atom field '" + name +
          "'; cannot derive a row schema");
    }
    fields.push_back(Field{name, item.atom, item.width});
  }
  return Schema(std::move(fields));
}

TupleTypePtr CollectionTupleType(const std::string& field_name,
                                 const Schema& schema) {
  return TupleType::Make(
      {{field_name,
        ItemType::Collection("RowVector", TupleTypeFromSchema(schema))}});
}

}  // namespace modularis
