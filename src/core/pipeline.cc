#include "core/pipeline.h"

namespace modularis {

Status PipelineRef::Open(ExecContext* ctx) {
  MODULARIS_RETURN_NOT_OK(SubOperator::Open(ctx));
  auto it = plan_->results_.find(pipeline_name_);
  if (it == plan_->results_.end()) {
    return Status::Internal("PipelineRef: pipeline '" + pipeline_name_ +
                            "' has not materialized yet");
  }
  result_ = &it->second;
  row_pos_ = 0;
  tuple_pos_ = 0;
  return Status::OK();
}

bool PipelineRef::Next(Tuple* out) {
  if (result_ == nullptr) return false;
  if (result_->rows != nullptr && row_pos_ < result_->rows->size()) {
    out->clear();
    out->push_back(Item(result_->rows->row(row_pos_++)));
    return true;
  }
  if (tuple_pos_ >= result_->tuples.size()) return false;
  *out = result_->tuples[tuple_pos_++];
  return true;
}

bool PipelineRef::NextBatch(RowBatch* out) {
  out->Clear();
  if (result_ == nullptr) return false;
  if (result_->rows != nullptr && row_pos_ < result_->rows->size()) {
    out->BorrowRange(result_->rows, row_pos_,
                     result_->rows->size() - row_pos_);
    out->MarkDurable();  // plan-owned materialization, read-only
    row_pos_ = result_->rows->size();
    return true;
  }
  if (tuple_pos_ < result_->tuples.size()) {
    return SubOperator::NextBatch(out);
  }
  return false;
}

SubOpPtr PipelineRef::CloneForWorker(WorkerCloneContext* cc) const {
  const PipelinePlan* plan = plan_;
  auto it = cc->plan_remap.find(plan_);
  if (it != cc->plan_remap.end()) {
    plan = static_cast<const PipelinePlan*>(it->second);
  }
  return std::make_unique<PipelineRef>(plan, pipeline_name_);
}

SubOpPtr PipelinePlan::CloneForWorker(WorkerCloneContext* cc) const {
  auto clone = std::make_unique<PipelinePlan>();
  // Register the mapping first: refs inside this plan's own pipelines
  // must re-bind to the clone, not to this (driver-owned) plan.
  cc->plan_remap[this] = clone.get();
  for (const auto& [name, root] : pipelines_) {
    SubOpPtr root_clone = root->CloneForWorker(cc);
    if (root_clone == nullptr) return nullptr;
    clone->Add(name, std::move(root_clone));
  }
  if (output_ != nullptr) {
    SubOpPtr out_clone = output_->CloneForWorker(cc);
    if (out_clone == nullptr) return nullptr;
    clone->SetOutput(std::move(out_clone));
  }
  return clone;
}

Status PipelinePlan::Materialize(SubOperator* root, PipelineResult* sink) {
  // Declared record streams drain through the batch protocol straight
  // into one packed RowVector.
  if (ctx_->options.enable_vectorized && root->ProducesRecordStream()) {
    RowBatch batch;
    while (root->NextBatch(&batch)) {
      if (sink->rows == nullptr) sink->rows = RowVector::Make(batch.schema());
      if (sink->rows->empty()) sink->rows->Reserve(batch.size());
      sink->rows->AppendRawBatch(batch.data(), batch.size());
    }
    return root->status();
  }
  bool demoted = false;
  Tuple t;
  // Demotion (rare, mixed streams only): move already-packed rows into
  // owned single-row tuples so the original tuple order is preserved.
  auto demote = [&] {
    if (sink->rows != nullptr) {
      for (size_t i = 0; i < sink->rows->size(); ++i) {
        Tuple row_tuple{Item(sink->rows->row(i))};
        sink->tuples.push_back(OwnTuple(row_tuple, &arena_));
      }
      sink->rows.reset();
    }
    demoted = true;
  };
  while (root->Next(&t)) {
    // Rows pack only while the stream is still all-rows; once any
    // non-row tuple arrived, later rows go to the tuple list too so
    // PipelineRef replays the stream in its original order.
    if (!demoted && sink->tuples.empty() && t.size() == 1 &&
        t[0].is_row()) {
      const RowRef& row = t[0].row();
      if (sink->rows == nullptr) sink->rows = RowVector::Make(row.schema());
      sink->rows->AppendRaw(row.data());
      continue;
    }
    if (!demoted && sink->rows != nullptr) demote();
    sink->tuples.push_back(OwnTuple(t, &arena_));
  }
  return root->status();
}

Status PipelinePlan::Open(ExecContext* ctx) {
  ctx_ = ctx;
  status_ = Status::OK();
  results_.clear();
  arena_.clear();
  for (auto& [name, root] : pipelines_) {
    MODULARIS_RETURN_NOT_OK(root->Open(ctx));
    MODULARIS_RETURN_NOT_OK(Materialize(root.get(), &results_[name]));
    MODULARIS_RETURN_NOT_OK(root->Close());
  }
  if (output_ == nullptr) {
    return Status::Internal("PipelinePlan: no output pipeline set");
  }
  return output_->Open(ctx);
}

bool PipelinePlan::Next(Tuple* out) {
  if (output_->Next(out)) return true;
  if (!output_->status().ok()) return Fail(output_->status());
  return false;
}

bool PipelinePlan::NextBatch(RowBatch* out) {
  if (output_->NextBatch(out)) return true;
  if (!output_->status().ok()) return Fail(output_->status());
  return false;
}

Status PipelinePlan::Close() {
  results_.clear();
  arena_.clear();
  return output_ != nullptr ? output_->Close() : Status::OK();
}

}  // namespace modularis
