#include "core/pipeline.h"

namespace modularis {

Status PipelineRef::Open(ExecContext* ctx) {
  MODULARIS_RETURN_NOT_OK(SubOperator::Open(ctx));
  auto it = plan_->results_.find(pipeline_name_);
  if (it == plan_->results_.end()) {
    return Status::Internal("PipelineRef: pipeline '" + pipeline_name_ +
                            "' has not materialized yet");
  }
  tuples_ = &it->second;
  pos_ = 0;
  return Status::OK();
}

bool PipelineRef::Next(Tuple* out) {
  if (tuples_ == nullptr || pos_ >= tuples_->size()) return false;
  *out = (*tuples_)[pos_++];
  return true;
}

Status PipelinePlan::Open(ExecContext* ctx) {
  ctx_ = ctx;
  status_ = Status::OK();
  results_.clear();
  arena_.clear();
  for (auto& [name, root] : pipelines_) {
    MODULARIS_RETURN_NOT_OK(root->Open(ctx));
    std::vector<Tuple>& sink = results_[name];
    Tuple t;
    while (root->Next(&t)) {
      sink.push_back(OwnTuple(t, &arena_));
    }
    MODULARIS_RETURN_NOT_OK(root->status());
    MODULARIS_RETURN_NOT_OK(root->Close());
  }
  if (output_ == nullptr) {
    return Status::Internal("PipelinePlan: no output pipeline set");
  }
  return output_->Open(ctx);
}

bool PipelinePlan::Next(Tuple* out) {
  if (output_->Next(out)) return true;
  if (!output_->status().ok()) return Fail(output_->status());
  return false;
}

Status PipelinePlan::Close() {
  results_.clear();
  arena_.clear();
  return output_ != nullptr ? output_->Close() : Status::OK();
}

}  // namespace modularis
