#ifndef MODULARIS_CORE_ROW_BATCH_H_
#define MODULARIS_CORE_ROW_BATCH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/row_vector.h"

/// \file row_batch.h
/// RowBatch is the unit of the vectorized execution protocol
/// (SubOperator::NextBatch): a schema plus a contiguous span of packed
/// rows. A batch either *borrows* its rows from an existing RowVector
/// (zero copy — the batch shares ownership so the rows stay alive) or
/// points at an internal scratch RowVector that an adapter or producing
/// operator filled.
///
/// Lifetime contract: the rows viewed by a batch stay valid until the
/// next NextBatch()/Next()/Close() call on the producing operator, or
/// until the batch is Cleared/re-filled — whichever comes first.
/// Consumers that retain rows copy the packed bytes (AppendRawBatch).
///
/// Selection vectors: a producer pulled through NextBatchSelective() may
/// attach a selection vector — ascending indices into the dense row view —
/// instead of compacting the surviving rows (Filter does). With a
/// selection attached, size()/row(i) describe the *selected* rows;
/// data()/dense_size()/byte_size() keep describing the dense underlying
/// view, so bulk-memcpy consumers must only ever pull via NextBatch(),
/// which never attaches selections. The selection array is owned by the
/// producer and follows the same lifetime as the rows.

namespace modularis {

class RowBatch {
 public:
  /// Row budget per batch for adapters and copying producers. Large
  /// enough to amortize the virtual call, small enough to keep a batch
  /// of 16-byte rows L1/L2-resident.
  static constexpr size_t kDefaultRows = 1024;

  RowBatch() = default;

  /// Batches carry shared scratch state; views are transferred explicitly
  /// via BorrowFrom instead of copy-assignment.
  RowBatch(const RowBatch&) = delete;
  RowBatch& operator=(const RowBatch&) = delete;

  void Clear() {
    pin_.reset();
    schema_ = nullptr;
    data_ = nullptr;
    num_rows_ = 0;
    row_size_ = 0;
    released_ = false;
    durable_ = false;
    sel_ = nullptr;
    sel_size_ = 0;
  }

  bool empty() const { return size() == 0; }
  /// Number of logical rows: the selected count when a selection is
  /// attached, the dense count otherwise.
  size_t size() const { return sel_ != nullptr ? sel_size_ : num_rows_; }
  /// Base of the dense row view (selection-oblivious; see header note).
  const uint8_t* data() const { return data_; }
  uint32_t row_size() const { return row_size_; }
  /// Bytes of the dense view (selection-oblivious).
  size_t byte_size() const {
    return num_rows_ * static_cast<size_t>(row_size_);
  }
  /// Rows in the dense view regardless of any selection.
  size_t dense_size() const { return num_rows_; }
  const Schema& schema() const { return *schema_; }
  RowRef row(size_t i) const {
    return RowRef(data_ + (sel_ != nullptr ? sel_[i] : i) * row_size_,
                  schema_);
  }

  // -- Selection vectors ----------------------------------------------------

  bool has_selection() const { return sel_ != nullptr; }
  /// Ascending indices into the dense view (null when dense).
  const uint32_t* selection() const { return sel_; }
  /// The selection, or — for a dense batch — the identity permutation
  /// 0..size()-1 materialized into *scratch. The canonical way for a
  /// selection-aware consumer to iterate logical rows by index; the
  /// returned pointer is valid for size() entries.
  const uint32_t* SelectionOrIdentity(std::vector<uint32_t>* scratch) const {
    if (sel_ != nullptr) return sel_;
    scratch->resize(num_rows_);
    for (size_t i = 0; i < num_rows_; ++i) {
      (*scratch)[i] = static_cast<uint32_t>(i);
    }
    return scratch->data();
  }
  /// Attaches a producer-owned selection vector; the batch then logically
  /// contains rows sel[0..count). Cleared by Clear()/Borrow*/SealScratch.
  void SetSelection(const uint32_t* sel, size_t count) {
    sel_ = sel;
    sel_size_ = count;
  }

  /// Zero-copy view of every row of `rows`; shares ownership.
  void Borrow(RowVectorPtr rows) {
    size_t n = rows->size();
    BorrowRange(std::move(rows), 0, n);
  }

  /// Zero-copy view of rows [begin, begin + count) of `rows`.
  void BorrowRange(RowVectorPtr rows, size_t begin, size_t count) {
    schema_ = &rows->schema();
    row_size_ = rows->row_size();
    data_ = rows->data() + begin * row_size_;
    num_rows_ = count;
    pin_ = std::move(rows);
    released_ = false;
    durable_ = false;
    sel_ = nullptr;
    sel_size_ = 0;
  }

  /// Adopts `other`'s view (and its pin and selection). Scratch storage
  /// is not shared.
  void BorrowFrom(const RowBatch& other) {
    pin_ = other.pin_;
    schema_ = other.schema_;
    data_ = other.data_;
    num_rows_ = other.num_rows_;
    row_size_ = other.row_size_;
    released_ = other.released_;
    durable_ = other.durable_;
    sel_ = other.sel_;
    sel_size_ = other.sel_size_;
  }

  /// Producer-side ownership handoff: marks the pinned vector as
  /// relinquished — the producer will allocate a fresh buffer instead of
  /// reusing it, so a consumer may steal the whole vector zero-copy.
  void MarkReleased() {
    released_ = true;
    durable_ = true;
  }

  /// Marks the pinned vector as durable: the producer guarantees it will
  /// not mutate it for the rest of its Open cycle (true for borrowed
  /// upstream collections; NOT true for reused output buffers). Durable
  /// whole-vector batches may be shared instead of copied.
  void MarkDurable() { durable_ = true; }

  /// Steals the pinned vector if the producer released it and this view
  /// covers it entirely; returns null otherwise. The view itself stays
  /// intact for consumers that fall back to copying.
  RowVectorPtr TakeReleased() {
    if (!released_ || pin_ == nullptr || data_ != pin_->data() ||
        num_rows_ != pin_->size() || sel_ != nullptr) {
      return nullptr;
    }
    released_ = false;
    return std::move(pin_);
  }

  /// Shares the underlying vector read-only if this view covers all of
  /// a durable pin (safe for a consumer that only reads it within the
  /// producer's current Open cycle, e.g. a build side held for probing).
  RowVectorPtr ShareWhole() const {
    if (!durable_ || pin_ == nullptr || data_ != pin_->data() ||
        num_rows_ != pin_->size() || sel_ != nullptr) {
      return nullptr;
    }
    return pin_;
  }

  /// Returns this batch's scratch RowVector, emptied and re-schema'd if
  /// needed. Fill it, then call SealScratch() to point the view at it.
  /// The scratch buffer (and its capacity) is reused across calls, so a
  /// consumer-owned RowBatch amortizes allocation over the whole stream.
  RowVector* Scratch(const Schema& schema) {
    if (scratch_ == nullptr || !scratch_->schema().Equals(schema)) {
      scratch_ = RowVector::Make(schema);
    } else {
      scratch_->Clear();
    }
    return scratch_.get();
  }

  void SealScratch() {
    schema_ = &scratch_->schema();
    row_size_ = scratch_->row_size();
    data_ = scratch_->data();
    num_rows_ = scratch_->size();
    pin_ = scratch_;
    released_ = false;  // scratch is reused; never stealable
    durable_ = false;
    sel_ = nullptr;
    sel_size_ = 0;
  }

 private:
  RowVectorPtr pin_;      // keeps the viewed rows alive (may be scratch_)
  RowVectorPtr scratch_;  // owned buffer for copying producers
  const Schema* schema_ = nullptr;
  const uint8_t* data_ = nullptr;
  size_t num_rows_ = 0;
  uint32_t row_size_ = 0;
  bool released_ = false;
  bool durable_ = false;
  const uint32_t* sel_ = nullptr;  // producer-owned selection (optional)
  size_t sel_size_ = 0;
};

}  // namespace modularis

#endif  // MODULARIS_CORE_ROW_BATCH_H_
