#ifndef MODULARIS_CORE_SUB_OPERATOR_H_
#define MODULARIS_CORE_SUB_OPERATOR_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/exec_context.h"
#include "core/row_batch.h"
#include "core/status.h"
#include "core/tuple.h"

/// \file sub_operator.h
/// The sub-operator interface (paper §3.3): Volcano-style iterators over
/// tuples, extended with the collection-aware type system. Operators form
/// trees inside a pipeline; DAGs are cut into pipelines at multi-consumer
/// edges (see pipeline.h).
///
/// Lifecycle contract:
///  * Open(ctx) prepares the operator and (by default) its children. An
///    operator must support repeated Open/Close cycles: NestedMap re-opens
///    its nested plan once per input tuple.
///  * Next(out) yields the next tuple, returning false at end-of-stream OR
///    on error; callers distinguish the two via status(). Borrowed row
///    items in `out` stay valid only until the next Next()/Close() call.
///  * Close() releases resources; it must be safe to call after an error.

namespace modularis {

class SubOperator;
using SubOpPtr = std::unique_ptr<SubOperator>;

/// State threaded through CloneForWorker() when a chain is cloned for a
/// parallel worker (docs/DESIGN-parallel.md). `plan_remap` maps enclosing
/// PipelinePlans to their worker clones so a cloned PipelineRef re-binds
/// to the clone's results; a ref whose plan is NOT in the map keeps
/// pointing at the original plan — its results are fully materialized and
/// read-only by the time workers run, so concurrent reads are safe.
struct WorkerCloneContext {
  std::map<const SubOperator*, SubOperator*> plan_remap;
};

/// Base class of every sub-operator.
class SubOperator {
 public:
  explicit SubOperator(std::string name)
      : name_(std::move(name)),
        adapter_counter_key_("vectorized.default_adapter." + name_) {}
  virtual ~SubOperator() = default;

  SubOperator(const SubOperator&) = delete;
  SubOperator& operator=(const SubOperator&) = delete;

  const std::string& name() const { return name_; }

  /// Wires `child` as the next upstream of this operator (owned).
  /// Returns `this` to allow chained plan construction.
  SubOperator* AddChild(SubOpPtr child) {
    children_.push_back(std::move(child));
    return this;
  }

  size_t num_children() const { return children_.size(); }
  SubOperator* child(size_t i) const { return children_[i].get(); }
  /// Releases ownership of child `i` (used by fusion rewrites).
  SubOpPtr TakeChild(size_t i) { return std::move(children_[i]); }
  void SetChild(size_t i, SubOpPtr child) { children_[i] = std::move(child); }

  /// Prepares this operator for iteration. Default: opens all children.
  virtual Status Open(ExecContext* ctx) {
    ctx_ = ctx;
    status_ = Status::OK();
    for (auto& c : children_) MODULARIS_RETURN_NOT_OK(c->Open(ctx));
    return Status::OK();
  }

  /// Produces the next tuple into `*out`. Returns false at end-of-stream
  /// or on error (check status()).
  virtual bool Next(Tuple* out) = 0;

  /// Capability hint for batch-aware consumers: true when this
  /// operator's output is a record stream (single-item tuples of
  /// borrowed rows) that is safe to drain through NextBatch(). False is
  /// always safe — it merely routes consumers that must also accept
  /// atom tuples (MaterializeRowVector, pipeline materialization) to the
  /// tuple loop. Call after Open().
  virtual bool ProducesRecordStream() const { return false; }

  /// Vectorized protocol: produces the next batch of packed records into
  /// `*out`, equivalent to a run of Next() calls that would each have
  /// yielded a single-item borrowed-row tuple. Returns false at
  /// end-of-stream or on error (check status()).
  ///
  /// Contract:
  ///  * Only record streams batch. A stream tuple holding a whole
  ///    collection is forwarded as one zero-copy borrowed batch; any
  ///    other tuple shape (atoms, multi-item) is an error — consumers
  ///    of non-record streams must keep using Next().
  ///  * Next() and NextBatch() may be mixed on one stream; NextBatch
  ///    continues from the current position (implementations flush any
  ///    partially consumed unit first).
  ///  * Batch contents stay valid until the next NextBatch()/Next()/
  ///    Close() call on this operator.
  ///
  /// The default adapter loops Next(), so every operator keeps working
  /// unmodified; hot operators override it with loop-over-packed-bytes
  /// implementations.
  virtual bool NextBatch(RowBatch* out) {
    // Adapter-coverage instrumentation: one counter bump per adapter
    // batch, keyed by operator name. The parity suite asserts the named
    // hot operators (ColumnScan, GroupBy, TcpExchange, S3Exchange, ...)
    // never report this counter, i.e. they own a native batch path.
    if (ctx_ != nullptr && ctx_->stats != nullptr) {
      ctx_->stats->AddCounter(adapter_counter_key_, 1);
    }
    return NextBatchFromTuples(out, 0, /*require_arity_one=*/true);
  }

  /// Deep-copies this operator (and its children) into a fresh instance a
  /// parallel worker can Open() and drain independently of the original
  /// (docs/DESIGN-parallel.md: the clone/merge contract). Clones share
  /// only immutable configuration — schemas, ExprPtr trees (shared_ptr to
  /// const), input collections (read-only shared_ptr) — never execution
  /// state. Returns null when this operator cannot run concurrently with
  /// itself (communicators, stateful callables, ...); null propagates up
  /// the chain and the caller falls back to serial execution, recording a
  /// `parallel.serial_fallback.*` counter.
  virtual SubOpPtr CloneForWorker(WorkerCloneContext* cc) const {
    (void)cc;
    return nullptr;
  }

  /// Selection-aware pull: like NextBatch(), but the producer may attach
  /// a selection vector to `*out` instead of compacting the surviving
  /// rows (Filter defers compaction this way, so filtered rows are never
  /// copied before the consumer projects or aggregates them). Only
  /// consumers that iterate `out->row(i)` / honor `out->selection()` may
  /// call this; bulk-memcpy consumers must keep pulling via NextBatch().
  /// Default: the dense batch path.
  virtual bool NextBatchSelective(RowBatch* out) { return NextBatch(out); }

  /// Releases per-execution resources. Default: closes all children.
  virtual Status Close() {
    Status st = Status::OK();
    for (auto& c : children_) {
      Status cst = c->Close();
      if (st.ok() && !cst.ok()) st = cst;
    }
    return st;
  }

  /// Error state of this operator (OK while streaming / at clean EOS).
  const Status& status() const { return status_; }

  /// Drains this operator into a vector of tuples (testing / driver use).
  Result<std::vector<Tuple>> Drain(ExecContext* ctx) {
    MODULARIS_RETURN_NOT_OK(Open(ctx));
    std::vector<Tuple> rows;
    Tuple t;
    while (Next(&t)) rows.push_back(t);
    if (!status_.ok()) return status_;
    MODULARIS_RETURN_NOT_OK(Close());
    return rows;
  }

 protected:
  /// The tuple-loop batching state machine shared by the default adapter
  /// and single-item specializations (Projection): batches item
  /// `item_index` of each Next() tuple — whole collections forwarded as
  /// one zero-copy borrowed batch, rows packed into the scratch buffer in
  /// kDefaultRows runs. With `require_arity_one`, multi-item tuples are
  /// an error (the adapter contract).
  bool NextBatchFromTuples(RowBatch* out, int item_index,
                           bool require_arity_one) {
    out->Clear();
    Tuple t;
    RowVector* sink = nullptr;
    while (Next(&t)) {
      if (require_arity_one && t.size() != 1) {
        return Fail(Status::InvalidArgument(
            name_ + ": cannot batch a tuple of arity " +
            std::to_string(t.size())));
      }
      const Item& item = t[item_index];
      if (item.is_collection()) {
        if (item.collection()->empty() && sink == nullptr) continue;
        if (sink == nullptr) {
          out->Borrow(item.collection());
          out->MarkDurable();  // upstream-owned collection, read-only
          return true;
        }
        // Mixed rows-then-collection: fold the collection into the
        // scratch batch and emit the combined run.
        sink->AppendAll(*item.collection());
        out->SealScratch();
        return true;
      }
      if (!item.is_row()) {
        return Fail(Status::InvalidArgument(
            name_ + ": cannot batch a " + item.ToString() + " item"));
      }
      if (sink == nullptr) sink = out->Scratch(item.row().schema());
      sink->AppendRaw(item.row().data());
      if (sink->size() >= RowBatch::kDefaultRows) {
        out->SealScratch();
        return true;
      }
    }
    if (!status_.ok()) return false;
    if (sink != nullptr && !sink->empty()) {
      out->SealScratch();
      return true;
    }
    return false;
  }

  /// Bumps a named counter on the bound stats registry (no-op before
  /// Open()). For per-batch hot-loop counters prefer a key prebuilt at
  /// construction, like adapter_counter_key_; this is for once-per-phase
  /// events (parallel region shapes, fallback reasons, merge fan-ins).
  void AddStatCounter(const std::string& key, int64_t delta) {
    if (ctx_ != nullptr && ctx_->stats != nullptr) {
      ctx_->stats->AddCounter(key, delta);
    }
  }

  /// Marks this operator failed and returns false (for use in Next()).
  bool Fail(Status s) {
    status_ = std::move(s);
    return false;
  }

  /// Checks whether `child` ended with an error and propagates it.
  /// Call after a child's Next() returned false. Returns false always,
  /// so `return ChildEnd(c);` reads naturally in Next().
  bool ChildEnd(SubOperator* child) {
    if (!child->status().ok()) status_ = child->status();
    return false;
  }

  ExecContext* ctx_ = nullptr;
  Status status_;
  std::vector<SubOpPtr> children_;

 private:
  std::string name_;
  std::string adapter_counter_key_;  // prebuilt: hot per-batch counter
};

/// Drains `child`'s record stream through the batch protocol into
/// `*dest` (pre-made with the desired schema, initially empty): a single
/// durable whole-collection batch is adopted zero-copy, anything else is
/// bulk-copied. For consumers that hold the rows read-only for the rest
/// of their Open cycle (hash-join build sides, sort inputs). Returns the
/// child's status.
inline Status DrainRecordStreamInto(SubOperator* child, RowVectorPtr* dest) {
  RowBatch batch;
  RowVectorPtr adopted;
  bool first = true;
  while (child->NextBatch(&batch)) {
    if (first) {
      first = false;
      adopted = batch.ShareWhole();
      if (adopted != nullptr) continue;
    }
    if (adopted != nullptr) {
      // More than one batch after all: fall back to copying (durable
      // batches stay valid across later pulls).
      (*dest)->Reserve(adopted->size() + batch.size());
      (*dest)->AppendAll(*adopted);
      adopted.reset();
    } else if ((*dest)->empty()) {
      (*dest)->Reserve(batch.size());
    }
    (*dest)->AppendRawBatch(batch.data(), batch.size());
  }
  MODULARIS_RETURN_NOT_OK(child->status());
  if (adopted != nullptr) *dest = std::move(adopted);
  return Status::OK();
}

/// Schema-discovering variant of DrainRecordStreamInto: `*dest` starts
/// null and takes the schema of the first non-empty batch (it stays null
/// when the stream is empty). The parallel drivers use this to turn a
/// record stream of unknown schema into one packed span they can split
/// into morsels; the single-durable-collection hot case still adopts the
/// vector zero-copy.
inline Status DrainRecordStream(SubOperator* child, RowVectorPtr* dest) {
  RowBatch batch;
  RowVectorPtr adopted;
  while (child->NextBatch(&batch)) {
    if (batch.empty()) continue;
    if (*dest == nullptr && adopted == nullptr) {
      adopted = batch.ShareWhole();
      if (adopted != nullptr) continue;
      *dest = RowVector::Make(batch.schema());
      (*dest)->Reserve(batch.size());
    } else if (adopted != nullptr) {
      // A second batch arrived after all: demote the adoption to a copy
      // (durable batches stay valid across later pulls).
      *dest = RowVector::Make(adopted->schema());
      (*dest)->Reserve(adopted->size() + batch.size());
      (*dest)->AppendAll(*adopted);
      adopted.reset();
    }
    (*dest)->AppendRawBatch(batch.data(), batch.size());
  }
  MODULARIS_RETURN_NOT_OK(child->status());
  if (adopted != nullptr) *dest = std::move(adopted);
  return Status::OK();
}

}  // namespace modularis

#endif  // MODULARIS_CORE_SUB_OPERATOR_H_
