#ifndef MODULARIS_CORE_SUB_OPERATOR_H_
#define MODULARIS_CORE_SUB_OPERATOR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/exec_context.h"
#include "core/status.h"
#include "core/tuple.h"

/// \file sub_operator.h
/// The sub-operator interface (paper §3.3): Volcano-style iterators over
/// tuples, extended with the collection-aware type system. Operators form
/// trees inside a pipeline; DAGs are cut into pipelines at multi-consumer
/// edges (see pipeline.h).
///
/// Lifecycle contract:
///  * Open(ctx) prepares the operator and (by default) its children. An
///    operator must support repeated Open/Close cycles: NestedMap re-opens
///    its nested plan once per input tuple.
///  * Next(out) yields the next tuple, returning false at end-of-stream OR
///    on error; callers distinguish the two via status(). Borrowed row
///    items in `out` stay valid only until the next Next()/Close() call.
///  * Close() releases resources; it must be safe to call after an error.

namespace modularis {

class SubOperator;
using SubOpPtr = std::unique_ptr<SubOperator>;

/// Base class of every sub-operator.
class SubOperator {
 public:
  explicit SubOperator(std::string name) : name_(std::move(name)) {}
  virtual ~SubOperator() = default;

  SubOperator(const SubOperator&) = delete;
  SubOperator& operator=(const SubOperator&) = delete;

  const std::string& name() const { return name_; }

  /// Wires `child` as the next upstream of this operator (owned).
  /// Returns `this` to allow chained plan construction.
  SubOperator* AddChild(SubOpPtr child) {
    children_.push_back(std::move(child));
    return this;
  }

  size_t num_children() const { return children_.size(); }
  SubOperator* child(size_t i) const { return children_[i].get(); }
  /// Releases ownership of child `i` (used by fusion rewrites).
  SubOpPtr TakeChild(size_t i) { return std::move(children_[i]); }
  void SetChild(size_t i, SubOpPtr child) { children_[i] = std::move(child); }

  /// Prepares this operator for iteration. Default: opens all children.
  virtual Status Open(ExecContext* ctx) {
    ctx_ = ctx;
    status_ = Status::OK();
    for (auto& c : children_) MODULARIS_RETURN_NOT_OK(c->Open(ctx));
    return Status::OK();
  }

  /// Produces the next tuple into `*out`. Returns false at end-of-stream
  /// or on error (check status()).
  virtual bool Next(Tuple* out) = 0;

  /// Releases per-execution resources. Default: closes all children.
  virtual Status Close() {
    Status st = Status::OK();
    for (auto& c : children_) {
      Status cst = c->Close();
      if (st.ok() && !cst.ok()) st = cst;
    }
    return st;
  }

  /// Error state of this operator (OK while streaming / at clean EOS).
  const Status& status() const { return status_; }

  /// Drains this operator into a vector of tuples (testing / driver use).
  Result<std::vector<Tuple>> Drain(ExecContext* ctx) {
    MODULARIS_RETURN_NOT_OK(Open(ctx));
    std::vector<Tuple> rows;
    Tuple t;
    while (Next(&t)) rows.push_back(t);
    if (!status_.ok()) return status_;
    MODULARIS_RETURN_NOT_OK(Close());
    return rows;
  }

 protected:
  /// Marks this operator failed and returns false (for use in Next()).
  bool Fail(Status s) {
    status_ = std::move(s);
    return false;
  }

  /// Checks whether `child` ended with an error and propagates it.
  /// Call after a child's Next() returned false. Returns false always,
  /// so `return ChildEnd(c);` reads naturally in Next().
  bool ChildEnd(SubOperator* child) {
    if (!child->status().ok()) status_ = child->status();
    return false;
  }

  ExecContext* ctx_ = nullptr;
  Status status_;
  std::vector<SubOpPtr> children_;

 private:
  std::string name_;
};

}  // namespace modularis

#endif  // MODULARIS_CORE_SUB_OPERATOR_H_
