#include "core/tuple.h"

#include <cstring>

namespace modularis {

bool Item::operator==(const Item& other) const {
  if (kind() != other.kind()) return false;
  switch (kind()) {
    case Kind::kNull:
      return true;
    case Kind::kInt64:
      return i64() == other.i64();
    case Kind::kFloat64:
      return f64() == other.f64();
    case Kind::kString:
      return str() == other.str();
    case Kind::kCollection:
      return collection() == other.collection();
    case Kind::kRow:
      // Rows compare by content (same schema layout assumed).
      return row().data() == other.row().data() ||
             (row().valid() && other.row().valid() &&
              row().schema().row_size() == other.row().schema().row_size() &&
              std::memcmp(row().data(), other.row().data(),
                          row().schema().row_size()) == 0);
    case Kind::kTable:
      return table() == other.table();
  }
  return false;
}

std::string Item::ToString() const {
  switch (kind()) {
    case Kind::kNull:
      return "null";
    case Kind::kInt64:
      return std::to_string(i64());
    case Kind::kFloat64:
      return std::to_string(f64());
    case Kind::kString:
      return "\"" + str() + "\"";
    case Kind::kCollection: {
      const RowVectorPtr& rv = collection();
      if (rv == nullptr) return "RowVector(null)";
      return "RowVector" + rv->schema().ToString() + "[" +
             std::to_string(rv->size()) + "]";
    }
    case Kind::kRow:
      return "row@" + std::to_string(reinterpret_cast<uintptr_t>(row().data()));
    case Kind::kTable: {
      const ColumnTablePtr& t = table();
      if (t == nullptr) return "ColumnTable(null)";
      return "ColumnTable" + t->schema().ToString() + "[" +
             std::to_string(t->num_rows()) + "]";
    }
  }
  return "?";
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) out += ", ";
    out += items_[i].ToString();
  }
  out += ")";
  return out;
}

Tuple OwnTuple(const Tuple& t, std::vector<RowVectorPtr>* arena) {
  Tuple owned;
  for (size_t i = 0; i < t.size(); ++i) {
    const Item& item = t[i];
    if (item.is_row()) {
      RowVectorPtr copy = RowVector::Make(item.row().schema());
      copy->AppendRaw(item.row().data());
      owned.push_back(Item(copy->row(0)));
      arena->push_back(std::move(copy));
    } else {
      owned.push_back(item);
    }
  }
  return owned;
}

}  // namespace modularis
