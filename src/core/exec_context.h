#ifndef MODULARIS_CORE_EXEC_CONTEXT_H_
#define MODULARIS_CORE_EXEC_CONTEXT_H_

#include <cstddef>
#include <vector>

#include "core/fault.h"
#include "core/memory.h"
#include "core/stats.h"
#include "core/tuple.h"

/// \file exec_context.h
/// Per-rank execution state handed to every sub-operator at Open() time:
/// rank identity, platform services, tunables, parameter frames for
/// ParameterLookup / NestedMap, and the metrics registry.

namespace modularis {

namespace mpi {
class Communicator;
}
namespace storage {
class BlobClient;
class BlobStore;
}
namespace serverless {
class S3SelectEngine;
struct LambdaWorkerContext;
}

/// Engine tunables (RocksDB-style options struct). The plan specializer
/// and the benchmarks override these; defaults match the paper's setup
/// scaled to a single machine.
struct ExecOptions {
  /// Plan-time operator fusion (the JIT analog). When false, every plan
  /// runs pure tuple-at-a-time through virtual Next() calls.
  bool enable_fusion = true;

  /// Vector-at-a-time execution: consumers drain record streams through
  /// NextBatch() and operators run loop-over-packed-bytes inner loops.
  /// When false, every record crosses one virtual Next() call — the
  /// row-at-a-time correctness oracle and ablation baseline (mirrors
  /// enable_fusion).
  bool enable_vectorized = true;

  /// Bytecode-compile expression trees and group-key codecs (the
  /// tree-walk → bytecode rung of the compilation ladder;
  /// docs/DESIGN-expr-bytecode.md). Only active when enable_vectorized is
  /// also set; the interpreted batch kernels remain the differential
  /// oracle and the per-node fallback for anything not yet compilable.
  bool enable_expr_bytecode = true;

  /// log2 of the network partitioning fan-out (radix bits). The number of
  /// network partitions is 1 << network_radix_bits; partitions are assigned
  /// to ranks round-robin.
  int network_radix_bits = 6;

  /// log2 of the local (cache-conscious) partitioning fan-out.
  int local_radix_bits = 6;

  /// Software write-combining buffer size per target partition in the
  /// network exchange, in bytes.
  size_t exchange_buffer_bytes = 1 << 16;

  /// 16-byte → 8-byte key/value compression in the network exchange
  /// (paper §4.1.2). Enabled by the compression pass for dense domains.
  bool compress_keys = false;

  /// Bits needed to represent keys/values of the workload (P in §4.1.2).
  int key_domain_bits = 29;

  /// Serverless: combine all partitions for one receiver into a single S3
  /// object row-group ("write combining" of Lambada, §4.4).
  bool s3_write_combining = true;

  /// Replicate small build sides via broadcast instead of the histogram
  /// exchange (the strategy commercial engines use for small joins; the
  /// SingleStore-profile baseline enables it — §5.1.1's Q19 discussion).
  bool broadcast_small_build = false;

  /// Use the two-sided TCP exchange backend instead of the RDMA one
  /// (the additional backend §4.4 sketches; the Presto-profile baseline
  /// runs with it).
  bool tcp_exchange = false;

  /// The one transient-failure retry policy (core/fault.h): exponential
  /// backoff + deterministic jitter, retryability classified by
  /// StatusCode. Shared by blob reads/writes, the S3 exchange and the
  /// fabric transports (replaces the old per-site max_retries knobs).
  RetryPolicy retry;

  /// Whole-query deadline in seconds (0 = none). The executors arm the
  /// run's CancellationToken with it so even a hung blocking wait returns
  /// non-OK within the deadline.
  double deadline_seconds = 0;

  // -- Memory governance (docs/DESIGN-memory.md) ----------------------------

  /// Per-rank (and per-driver) memory budget in bytes; 0 = unlimited.
  /// Every large allocation site charges the rank's MemoryBudget; blocking
  /// operators (BuildProbe, ReduceByKey, Sort/TopK) degrade to their
  /// Grace-partition / external-merge spill paths when their drained input
  /// exceeds half of this, and fail fast with kResourceExhausted when even
  /// the spilled working set cannot fit. Spill decisions depend only on
  /// (this limit, input/histogram sizes), so results stay byte-equal to
  /// the unlimited run at any thread count.
  size_t memory_limit_bytes = 0;

  /// Fault injection for the spill clients the blocking operators open
  /// against ExecContext::spill_store (mirrors BlobClientOptions::fault
  /// for base-table storage). Spill writes/reads go through the shared
  /// RetryPolicy, so an injected transient Put is retried like any other
  /// blob IO.
  FaultOptions spill_fault;

  // -- Intra-node parallelism (docs/DESIGN-parallel.md) ---------------------

  /// Worker threads per rank for morsel-driven pipeline phases. 0 resolves
  /// to hardware_concurrency (or the MODULARIS_NUM_THREADS env override);
  /// 1 preserves the single-threaded behaviour exactly. N-thread and
  /// 1-thread runs are byte-identical by construction (deterministic
  /// merges); see ResolvedNumThreads().
  int num_threads = 0;

  /// Rows per dynamically claimed morsel (order-insensitive phases).
  size_t morsel_rows = 1 << 14;

  /// Minimum input rows per worker before a phase goes parallel: below
  /// workers * parallel_min_rows the serial path wins on thread startup
  /// and merge overhead alone (nested per-partition plans stay serial
  /// inside parallel NestedMap workers this way too).
  size_t parallel_min_rows = 1 << 15;

  /// Resolves num_threads: explicit value, else MODULARIS_NUM_THREADS,
  /// else hardware_concurrency (min 1). Defined in parallel.cc.
  int ResolvedNumThreads() const;
};

/// Per-rank execution context. Not thread-safe; each rank owns one.
/// Under the morsel-driven worker pool each worker owns a private view
/// built by InitWorker() — same rank identity and services, its own stats
/// registry and parameter-frame stack — so no operator ever shares one
/// ExecContext across threads.
class ExecContext {
 public:
  ExecContext() = default;

  int rank = 0;
  int world = 1;

  /// Platform services; null when the plan runs on a platform that does
  /// not provide them. `blob` is the rank's storage connection — an S3
  /// client on serverless, an NFS/disk client on the RDMA cluster.
  mpi::Communicator* comm = nullptr;
  storage::BlobClient* blob = nullptr;
  serverless::S3SelectEngine* s3select = nullptr;
  serverless::LambdaWorkerContext* lambda = nullptr;

  /// Query-wide cancellation token (core/fault.h), owned by the executor;
  /// null when the plan runs without one. Checked in morsel loops,
  /// exchange drains and fabric blocking waits; a failing rank cancels it
  /// so its peers stop claiming work instead of computing into a dead
  /// query.
  const CancellationToken* cancel = nullptr;

  /// The rank's memory budget (core/memory.h), owned by the executor;
  /// null = untracked (zero accounting overhead). Workers share the
  /// rank's budget — charges are rare (capacity growth only), so the
  /// shared relaxed atomics beat per-worker slabs that could not observe
  /// a cross-worker peak.
  MemoryBudget* budget = nullptr;

  /// Spill target for the blocking operators' graceful-degradation paths
  /// (docs/DESIGN-memory.md): the blob store backing `spill/…` partition
  /// chunks and sort runs. Null = spilling unavailable (operators then
  /// fail fast with kResourceExhausted when the budget forces a spill).
  /// Each spilling operator opens its own BlobClient against this store
  /// (clients are not thread-safe; the store is), so cloned operators in
  /// parallel NestedMap workers never share a client.
  storage::BlobStore* spill_store = nullptr;

  ExecOptions options;

  /// Metrics sink; never null during execution.
  StatsRegistry* stats = &default_stats_;

  // -- Parameter frames (paper §3.4) ---------------------------------------
  // ParameterLookup yields the tuple on top of this stack. Executors push
  // the plan-input tuple; each NestedMap invocation pushes the tuple it is
  // currently mapping over.

  /// Initializes this context as a worker view of `base`: same rank
  /// identity, services and tunables (num_threads pinned to 1 so workers
  /// never nest another pool), `worker_stats` as the private metrics sink,
  /// and a copy of the parameter-frame stack (frames point at tuples owned
  /// by the driver, which outlive the parallel region).
  void InitWorker(const ExecContext& base, StatsRegistry* worker_stats) {
    rank = base.rank;
    world = base.world;
    comm = base.comm;
    blob = base.blob;
    s3select = base.s3select;
    lambda = base.lambda;
    cancel = base.cancel;
    budget = base.budget;
    spill_store = base.spill_store;
    options = base.options;
    options.num_threads = 1;
    stats = worker_stats;
    frames_ = base.frames_;
  }

  void PushParams(const Tuple* params) { frames_.push_back(params); }
  void PopParams() { frames_.pop_back(); }
  const Tuple* CurrentParams() const {
    return frames_.empty() ? nullptr : frames_.back();
  }
  size_t ParamDepth() const { return frames_.size(); }

 private:
  std::vector<const Tuple*> frames_;
  StatsRegistry default_stats_;
};

}  // namespace modularis

#endif  // MODULARIS_CORE_EXEC_CONTEXT_H_
