#ifndef MODULARIS_CORE_STATS_H_
#define MODULARIS_CORE_STATS_H_

#include <chrono>
#include <map>
#include <mutex>
#include <string>

/// \file stats.h
/// Per-execution metrics registry. Sub-operators record phase timings
/// (local histogram, network partitioning, build-probe, ...) and byte
/// counters here; the Fig. 9 breakdown and Fig. 11c network-time series
/// are read straight out of this registry.

namespace modularis {

/// Thread-safe map of named timers (seconds) and counters.
class StatsRegistry {
 public:
  void AddTime(const std::string& key, double seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    times_[key] += seconds;
  }
  void AddCounter(const std::string& key, int64_t delta) {
    std::lock_guard<std::mutex> lock(mu_);
    counters_[key] += delta;
  }
  double GetTime(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = times_.find(key);
    return it == times_.end() ? 0.0 : it->second;
  }
  int64_t GetCounter(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second;
  }
  /// Accumulates all entries of `other` into this registry.
  void Merge(const StatsRegistry& other) {
    std::scoped_lock lock(mu_, other.mu_);
    for (const auto& [k, v] : other.times_) times_[k] += v;
    for (const auto& [k, v] : other.counters_) counters_[k] += v;
  }
  /// Takes the per-key maximum (used to aggregate per-rank phase times the
  /// way the paper reports them: the slowest rank defines the phase time).
  void MergeMax(const StatsRegistry& other) {
    std::scoped_lock lock(mu_, other.mu_);
    for (const auto& [k, v] : other.times_) {
      double& mine = times_[k];
      if (v > mine) mine = v;
    }
    for (const auto& [k, v] : other.counters_) counters_[k] += v;
  }
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    times_.clear();
    counters_.clear();
  }
  std::map<std::string, double> times() const {
    std::lock_guard<std::mutex> lock(mu_);
    return times_;
  }
  std::map<std::string, int64_t> counters() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> times_;
  std::map<std::string, int64_t> counters_;
};

/// RAII phase timer: adds elapsed wall time to `registry[key]` at scope exit.
class ScopedTimer {
 public:
  ScopedTimer(StatsRegistry* registry, std::string key)
      : registry_(registry),
        key_(std::move(key)),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() { Stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Stops early (idempotent).
  void Stop() {
    if (registry_ == nullptr) return;
    auto end = std::chrono::steady_clock::now();
    registry_->AddTime(
        key_, std::chrono::duration<double>(end - start_).count());
    registry_ = nullptr;
  }

 private:
  StatsRegistry* registry_;
  std::string key_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace modularis

#endif  // MODULARIS_CORE_STATS_H_
