#ifndef MODULARIS_CORE_STATS_H_
#define MODULARIS_CORE_STATS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

/// \file stats.h
/// Per-execution metrics registry. Sub-operators record phase timings
/// (local histogram, network partitioning, build-probe, ...) and byte
/// counters here; the Fig. 9 breakdown and Fig. 11c network-time series
/// are read straight out of this registry.
///
/// Under the morsel-driven worker pool (docs/DESIGN-parallel.md) each
/// worker gets a PRIVATE registry (core/parallel.h WorkerSet): PhaseTimer
/// binds to worker-local slots, so hot loops never contend on the shared
/// mutex, and the set merges into the rank registry at the end of the
/// parallel region — times via MergeMax (a phase costs what its slowest
/// worker took, the paper's per-rank reporting convention), counters
/// summed.

namespace modularis {

/// Thread-safe map of named timers (seconds) and counters.
class StatsRegistry {
 public:
  void AddTime(const std::string& key, double seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    times_[key] += seconds;
  }
  void AddCounter(const std::string& key, int64_t delta) {
    std::lock_guard<std::mutex> lock(mu_);
    counters_[key] += delta;
  }
  double GetTime(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = times_.find(key);
    return it == times_.end() ? 0.0 : it->second;
  }
  int64_t GetCounter(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second;
  }
  /// Accumulates all entries of `other` into this registry.
  void Merge(const StatsRegistry& other) {
    std::scoped_lock lock(mu_, other.mu_);
    for (const auto& [k, v] : other.times_) times_[k] += v;
    for (const auto& [k, v] : other.counters_) counters_[k] += v;
  }
  /// Takes the per-key maximum (used to aggregate per-rank phase times the
  /// way the paper reports them: the slowest rank defines the phase time).
  void MergeMax(const StatsRegistry& other) {
    std::scoped_lock lock(mu_, other.mu_);
    for (const auto& [k, v] : other.times_) {
      double& mine = times_[k];
      if (v > mine) mine = v;
    }
    for (const auto& [k, v] : other.counters_) counters_[k] += v;
  }
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    times_.clear();
    counters_.clear();
    epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Resolves the accumulation slot for `key` once. std::map values are
  /// address-stable, so the returned pointer survives later inserts;
  /// it is invalidated only by Clear(), which bumps epoch() so cached
  /// bindings (PhaseTimer) re-resolve. A rank owns its registry during
  /// execution, so unsynchronized accumulation through the slot races
  /// with nothing.
  double* TimeSlot(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    return &times_[key];
  }
  /// Incremented by Clear(); slot pointers from an older epoch are dead.
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }
  std::map<std::string, double> times() const {
    std::lock_guard<std::mutex> lock(mu_);
    return times_;
  }
  std::map<std::string, int64_t> counters() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> times_;
  std::map<std::string, int64_t> counters_;
  std::atomic<uint64_t> epoch_{0};
};

/// RAII phase timer: adds elapsed wall time to `registry[key]` at scope exit.
class ScopedTimer {
 public:
  ScopedTimer(StatsRegistry* registry, std::string key)
      : registry_(registry),
        key_(std::move(key)),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() { Stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Stops early (idempotent).
  void Stop() {
    if (registry_ == nullptr) return;
    auto end = std::chrono::steady_clock::now();
    registry_->AddTime(
        key_, std::chrono::duration<double>(end - start_).count());
    registry_ = nullptr;
  }

 private:
  StatsRegistry* registry_;
  std::string key_;
  std::chrono::steady_clock::time_point start_;
};

/// Phase timer with a pre-resolved registry slot. ScopedTimer pays a
/// string copy, a mutex acquisition and a map lookup at every stop —
/// noise that distorts phases which nested plans re-enter thousands of
/// times (one BuildProbe per local-partition pair). PhaseTimer resolves
/// the slot once per (registry, key) binding; Start/Stop is then two
/// clock reads and an add. Bind at Open(), time whole batch drains —
/// never individual rows.
class PhaseTimer {
 public:
  void Bind(StatsRegistry* registry, const std::string& key) {
    if (registry == nullptr) {
      // ExecContext::stats is nullable; keep Start/Stop branch-free by
      // accumulating into a private discard slot.
      registry_ = nullptr;
      slot_ = &discard_;
      return;
    }
    uint64_t epoch = registry->epoch();
    if (registry == registry_ && epoch == epoch_ && key == key_) {
      return;  // cached
    }
    registry_ = registry;
    epoch_ = epoch;
    key_ = key;
    slot_ = registry->TimeSlot(key);
  }

  void Start() { start_ = std::chrono::steady_clock::now(); }
  void Stop() {
    auto end = std::chrono::steady_clock::now();
    *slot_ += std::chrono::duration<double>(end - start_).count();
  }

 private:
  StatsRegistry* registry_ = nullptr;
  uint64_t epoch_ = 0;
  std::string key_;
  double* slot_ = nullptr;
  double discard_ = 0;
  std::chrono::steady_clock::time_point start_;
};

/// RAII wrapper over a bound PhaseTimer.
class ScopedPhase {
 public:
  explicit ScopedPhase(PhaseTimer* timer) : timer_(timer) { timer_->Start(); }
  ~ScopedPhase() { timer_->Stop(); }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer* timer_;
};

}  // namespace modularis

#endif  // MODULARIS_CORE_STATS_H_
