#ifndef MODULARIS_CORE_TUPLE_TYPE_H_
#define MODULARIS_CORE_TUPLE_TYPE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/types.h"

/// \file tuple_type.h
/// Static type descriptors for the recursive tuple type system of §3.3:
///
///   tuple := ⟨item, ..., item⟩
///   item  := { atom | collection of tuples }
///
/// Plan construction validates sub-operator wiring against these types
/// (e.g. RowScan requires an upstream producing ⟨RowVector⟨T⟩⟩ and yields
/// tuples of T).

namespace modularis {

struct TupleType;
using TupleTypePtr = std::shared_ptr<const TupleType>;

/// The type of one tuple field: an atom or a named collection of tuples.
struct ItemType {
  enum class Kind : uint8_t { kAtom, kCollection };

  Kind kind = Kind::kAtom;
  AtomType atom = AtomType::kInt64;
  /// For kString atoms: maximum width in bytes.
  uint32_t width = 0;
  /// For collections: the physical format name (e.g. "RowVector").
  std::string collection;
  /// For collections: the element tuple type.
  TupleTypePtr element;

  static ItemType Atom(AtomType type, uint32_t width = 0) {
    ItemType t;
    t.kind = Kind::kAtom;
    t.atom = type;
    t.width = width;
    return t;
  }
  static ItemType Collection(std::string format, TupleTypePtr element) {
    ItemType t;
    t.kind = Kind::kCollection;
    t.collection = std::move(format);
    t.element = std::move(element);
    return t;
  }

  bool Equals(const ItemType& other) const;
  std::string ToString() const;
};

/// A named, ordered list of item types.
struct TupleType {
  std::vector<std::pair<std::string, ItemType>> fields;

  static TupleTypePtr Make(
      std::vector<std::pair<std::string, ItemType>> fields) {
    auto t = std::make_shared<TupleType>();
    t->fields = std::move(fields);
    return t;
  }

  size_t size() const { return fields.size(); }
  bool Equals(const TupleType& other) const;
  std::string ToString() const;

  /// Index of the field named `name`, or -1.
  int FieldIndex(const std::string& name) const;
};

/// Derives the tuple type of rows materialized with the given schema.
TupleTypePtr TupleTypeFromSchema(const Schema& schema);

/// Derives a row schema from a tuple type consisting only of atoms.
/// Fails with InvalidArgument if any field is a collection.
Result<Schema> SchemaFromTupleType(const TupleType& type);

/// The type of a tuple wrapping a whole collection:
/// ⟨field : RowVector⟨schema⟩⟩.
TupleTypePtr CollectionTupleType(const std::string& field_name,
                                 const Schema& schema);

}  // namespace modularis

#endif  // MODULARIS_CORE_TUPLE_TYPE_H_
