#ifndef MODULARIS_CORE_COLUMN_TABLE_H_
#define MODULARIS_CORE_COLUMN_TABLE_H_

#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/row_vector.h"
#include "core/types.h"

/// \file column_table.h
/// ColumnTable is the columnar in-memory collection format (the analog of
/// the Arrow tables of paper §4.5 and of Parquet column chunks in §4.4).
/// It is the second physical collection of the type system next to
/// RowVector; ColumnScan extracts individual tuples from it and
/// TableToCollection converts it into a RowVector wholesale.

namespace modularis {

class ColumnTable;
using ColumnTablePtr = std::shared_ptr<ColumnTable>;

/// A typed column: contiguous values; strings use offset+arena storage.
class Column {
 public:
  explicit Column(AtomType type) : type_(type) {}

  AtomType type() const { return type_; }
  size_t size() const { return size_; }

  void AppendInt32(int32_t v) { i32_.push_back(v); ++size_; }
  void AppendInt64(int64_t v) { i64_.push_back(v); ++size_; }
  void AppendFloat64(double v) { f64_.push_back(v); ++size_; }
  void AppendString(std::string_view v) {
    str_offsets_.push_back(static_cast<uint32_t>(str_arena_.size()));
    str_arena_.append(v);
    ++size_;
  }

  int32_t GetInt32(size_t i) const { return i32_[i]; }
  int64_t GetInt64(size_t i) const { return i64_[i]; }
  double GetFloat64(size_t i) const { return f64_[i]; }
  std::string_view GetString(size_t i) const {
    uint32_t begin = str_offsets_[i];
    uint32_t end = i + 1 < str_offsets_.size()
                       ? str_offsets_[i + 1]
                       : static_cast<uint32_t>(str_arena_.size());
    return std::string_view(str_arena_).substr(begin, end - begin);
  }

  const std::vector<int32_t>& i32_data() const { return i32_; }
  const std::vector<int64_t>& i64_data() const { return i64_; }
  const std::vector<double>& f64_data() const { return f64_; }

 private:
  AtomType type_;
  size_t size_ = 0;
  std::vector<int32_t> i32_;
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<uint32_t> str_offsets_;
  std::string str_arena_;
};

/// An immutable-schema columnar table.
class ColumnTable {
 public:
  explicit ColumnTable(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  Column& column(size_t i) { return columns_[i]; }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Appends one packed row (layout must match schema()).
  void AppendRow(const RowRef& row);
  void set_num_rows(size_t n) { num_rows_ = n; }
  /// Recomputes num_rows from column 0 after bulk column fills.
  void FinishBulkLoad();

  /// Writes row `i` into `writer` (layout must match schema()).
  void MaterializeRow(size_t i, RowWriter* writer) const;

  /// Converts the whole table into a RowVector.
  RowVectorPtr ToRowVector() const;

  /// Builds a ColumnTable from a RowVector.
  static ColumnTablePtr FromRowVector(const RowVector& rows);

  static ColumnTablePtr Make(Schema schema) {
    return std::make_shared<ColumnTable>(std::move(schema));
  }

 private:
  Schema schema_;
  size_t num_rows_ = 0;
  std::vector<Column> columns_;
};

}  // namespace modularis

#endif  // MODULARIS_CORE_COLUMN_TABLE_H_
