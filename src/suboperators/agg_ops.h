#ifndef MODULARIS_SUBOPERATORS_AGG_OPS_H_
#define MODULARIS_SUBOPERATORS_AGG_OPS_H_

#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/expr.h"
#include "core/expr_bc.h"
#include "core/memory.h"
#include "core/parallel.h"
#include "core/sub_operator.h"

/// \file agg_ops.h
/// Aggregation, grouping, sorting and top-k sub-operators. ReduceByKey is
/// the "highly optimized parallel hash map" the paper credits for the Q1 /
/// Q18 speedups (§5.1.1); here it is an open-addressing table with a
/// compiled direct-offset update path when fusion is enabled.

namespace modularis {

namespace storage {
class SpillSet;
}

/// Open-addressing hash map from i64 keys to dense state indices.
class I64StateMap {
 public:
  /// Returns the state index for `key`; sets `*inserted` if it was new.
  uint32_t FindOrInsert(int64_t key, bool* inserted);
  size_t size() const { return size_; }
  void Clear();

  /// Pre-sizes the table for up to `keys` distinct keys (capacity kept
  /// under the 0.7 load factor). The partition-owned aggregation pass
  /// reserves from each partition's histogram row count — a hard upper
  /// bound on its distinct keys — so aggregation never rehashes.
  void Reserve(size_t keys);

  /// Grow calls that had to move live entries since the last Clear().
  int64_t rehashes() const { return rehashes_; }

  /// Allocated footprint in bytes, charged against the rank's
  /// MemoryBudget by the owning operator (docs/DESIGN-memory.md).
  size_t byte_size() const {
    return keys_.capacity() * sizeof(int64_t) +
           vals_.capacity() * sizeof(uint32_t) + used_.capacity();
  }

 private:
  void Rehash(size_t cap);
  void Grow();

  std::vector<int64_t> keys_;
  std::vector<uint32_t> vals_;
  std::vector<uint8_t> used_;
  size_t mask_ = 0;
  size_t size_ = 0;
  int64_t rehashes_ = 0;
};

/// Flat open-addressing hash table from serialized byte keys (KeyCodec
/// output) to dense state indices — the string / multi-column / float-key
/// analog of I64StateMap, shared by the serial and partition-owned
/// parallel aggregation paths. Linear probing over a power-of-two slot
/// array; keys of up to 16 bytes live inline in the slot, longer keys
/// spill into an append-only overflow arena (offsets stay stable across
/// growth, so rehashing never touches key bytes).
class ByteStateTable {
 public:
  /// Returns the state index for `key[0..len)`; `hash` must be
  /// HashKeyBytes(key, len). Sets `*inserted` if the key was new.
  uint32_t FindOrInsert(const uint8_t* key, uint32_t len, uint64_t hash,
                        bool* inserted);
  size_t size() const { return size_; }
  void Clear();
  /// Pre-sizes for up to `keys` distinct keys (see I64StateMap::Reserve).
  void Reserve(size_t keys);
  int64_t rehashes() const { return rehashes_; }
  /// Allocated footprint in bytes (slot array + overflow key arena).
  size_t byte_size() const;

 private:
  static constexpr uint32_t kInlineBytes = 16;
  struct Slot {
    uint64_t hash = 0;
    uint32_t val = 0;
    uint32_t len_plus1 = 0;  // 0 = empty (len 0 is a valid key)
    uint8_t key[kInlineBytes];  // inline bytes, or a u64 arena offset
  };
  void Rehash(size_t cap);
  const uint8_t* SlotKey(const Slot& s) const;

  std::vector<Slot> slots_;
  std::vector<uint8_t> arena_;  // overflow storage for keys > 16 bytes
  size_t mask_ = 0;
  size_t size_ = 0;
  int64_t rehashes_ = 0;
};

/// ReduceByKey aggregates records by one or more key columns.
/// Output schema: the key fields followed by one field per AggSpec.
class ReduceByKey : public SubOperator {
 public:
  ReduceByKey(SubOpPtr child, std::vector<int> key_cols,
              std::vector<AggSpec> aggs, Schema in_schema,
              std::string timer_key = "phase.reduce_by_key")
      : SubOperator("ReduceByKey"),
        key_cols_(std::move(key_cols)),
        aggs_(std::move(aggs)),
        in_schema_(std::move(in_schema)),
        out_schema_(MakeOutputSchema(in_schema_, key_cols_, aggs_)),
        timer_key_(std::move(timer_key)) {
    AddChild(std::move(child));
  }

  /// Key fields followed by aggregate fields.
  static Schema MakeOutputSchema(const Schema& in,
                                 const std::vector<int>& key_cols,
                                 const std::vector<AggSpec>& aggs);

  const Schema& out_schema() const { return out_schema_; }
  const std::vector<AggSpec>& aggs() const { return aggs_; }
  const Schema& in_schema() const { return in_schema_; }
  const std::string& timer_key() const { return timer_key_; }

  Status Open(ExecContext* ctx) override;
  bool Next(Tuple* out) override;
  bool ProducesRecordStream() const override { return true; }

  SubOpPtr CloneForWorker(WorkerCloneContext* cc) const override {
    SubOpPtr child_clone = child(0)->CloneForWorker(cc);
    if (child_clone == nullptr) return nullptr;
    return std::make_unique<ReduceByKey>(std::move(child_clone), key_cols_,
                                         aggs_, in_schema_, timer_key_);
  }

 private:
  /// Hash-partition fanout of the partition-owned parallel pass: 256
  /// partitions bound the per-partition state tables L1/L2-resident at
  /// 1M-group inputs while leaving enough independent units for dynamic
  /// claiming to balance skew. Partition ids come from the key hash's
  /// HIGH bits (the state tables consume the low bits), so the two never
  /// alias — and the id is a pure function of the key, never of the
  /// worker count, which is what makes the plan deterministic.
  static constexpr int kPartitionBits = 8;
  /// Rows per serialize+hash+probe chunk of the byte-key paths.
  static constexpr size_t kKeyChunkRows = 1024;
  /// Fixed chunk size of the keyless (scalar Reduce) pairwise combine
  /// tree. A constant — NOT a thread-derived split — so the tree shape,
  /// and with it every float partial sum, is identical at any thread
  /// count and in row-at-a-time mode.
  static constexpr size_t kKeylessChunkRows = 1 << 14;

  Status ConsumeAll();
  Status ConsumeAllInner();
  /// Partition-owned parallel aggregation (docs/DESIGN-parallel.md):
  /// radix-partition the input by the key hash with the two-phase
  /// count→write-combining scatter (rows land grouped by key partition in
  /// original row order), then each partition is aggregated exclusively
  /// by one worker — zero cross-thread merging, so float SUM accumulates
  /// in exactly the serial order and N threads are byte-equal to 1 by
  /// construction. Groups are emitted in global first-occurrence order
  /// via a K-way merge over the per-partition discovery runs.
  Status ConsumeAllParallel(const RowVectorPtr& input, int workers);
  /// Keyless parallel form: fixed-shape chunk partials combined pairwise
  /// (PairwiseCombineRows), byte-stable at any thread count.
  Status ConsumeKeylessParallel(const RowVectorPtr& input, int workers);
  void Accumulate(const RowRef& row);
  void AccumulateBulk(const RowVector& rows);
  void AccumulateSpan(const uint8_t* rows, size_t n, const Schema& schema);
  void AccumulateKeylessRow(const RowRef& row);
  /// Folds the keyless chunk partials through the fixed pairwise tree
  /// into the single output state. No-op when no input arrived.
  void FinalizeKeyless();
  /// Combines one partial state row into another (associative merge).
  void MergeStateRow(uint8_t* dst, const uint8_t* src) const;
  uint32_t StateFor(const RowRef& row);
  void InitState(RowVector* states, const RowRef& row) const;
  /// Writes the aggregate identity values into a state row (keys
  /// untouched).
  void InitStateAggs(uint8_t* dst) const;
  void UpdateState(RowVector* states, uint32_t state, const RowRef& row);
  /// The per-row update against an explicit state row — safe to run from
  /// worker threads (reads only immutable compiled slots; Expr::Eval is
  /// thread-safe).
  void UpdateStateRow(uint8_t* dst, const RowRef& row) const;
  /// Aggregates the rows of one key partition (ascending original order)
  /// into `states`, recording each new group's global first-occurrence
  /// index. `map`/`table` are the caller's reusable scratch tables. With
  /// `reset_tables` false the call continues accumulating into the live
  /// tables/states — the chunk-streaming path for a spilled partition
  /// that no remaining hash window can split (one hot key).
  void AggregatePartition(const uint8_t* rows, size_t n, const Schema& schema,
                          const uint32_t* idx, RowVector* states,
                          std::vector<uint32_t>* first, I64StateMap* map,
                          ByteStateTable* table,
                          std::vector<uint8_t>* key_scratch,
                          std::vector<uint64_t>* hash_scratch,
                          bool reset_tables = true) const;

  // -- Grace-style spill path (docs/DESIGN-memory.md) -----------------------

  /// A run of aggregated groups: the group states plus each group's
  /// global first-occurrence index, both ascending by that index.
  struct AggRun {
    RowVectorPtr states;
    std::vector<uint32_t> first;
  };
  /// Reusable scratch threaded through the spill recursion.
  struct SpillScratch {
    I64StateMap map;
    ByteStateTable table;
    std::vector<uint8_t> keys;
    std::vector<uint64_t> hashes;
  };
  /// The partition hash of every row — the same key hash the in-memory
  /// partition pass uses, so a key lands in one partition at every pass.
  void ComputeKeyHashes(const uint8_t* rows, size_t n, const Schema& schema,
                        std::vector<uint64_t>* hashes) const;
  /// Budget-forced degradation: hash-partition the drained input 256 ways
  /// (greedy ascending-pid prefix stays in memory, the rest spills to the
  /// blob store), aggregate the partitions one at a time, and merge their
  /// group runs back into global first-occurrence order — byte-equal to
  /// the in-memory path at any budget and thread count.
  Status ConsumeAllSpill(RowVectorPtr input);
  /// Aggregates one spilled partition into `out`: read-back when it fits
  /// the quota, recursion by the next 8-bit hash window when it does not,
  /// chunk-streaming once the hash is exhausted (a single hot key).
  Status AggregateSpilledPartition(storage::SpillSet* spill, int pass,
                                   int pid, int shift, size_t part_rows,
                                   const Schema& schema, AggRun* out,
                                   SpillScratch* scratch);
  /// K-way merge of group runs by ascending first-occurrence index
  /// (the phase-4 merge generalized to arbitrary runs). `first_out` may
  /// be null when the caller does not need the merged index run.
  void MergeAggRuns(std::vector<AggRun>* runs, RowVector* states,
                    std::vector<uint32_t>* first_out) const;

  std::vector<int> key_cols_;
  std::vector<AggSpec> aggs_;
  Schema in_schema_;
  Schema out_schema_;
  std::string timer_key_;
  PhaseTimer timer_;

  // Compiled update plan (set up at Open).
  struct AggSlot {
    AggKind kind;
    int src_col;        // -1 for COUNT(*) or non-column expressions
    bool src_wide;      // i64/f64 vs i32/date source
    bool src_float;     // f64 source
    uint32_t src_offset;
    uint32_t dst_offset;
    bool dst_float;
    const Expr* expr;   // fallback evaluation when src_col == -1
  };
  std::vector<AggSlot> slots_;
  bool compiled_ = false;
  bool single_i64_key_ = false;

  RowVectorPtr states_;
  I64StateMap i64_map_;
  /// Byte-key machinery shared by the serial and parallel paths:
  /// fixed-stride serialized keys (KeyCodec) probed into the flat
  /// open-addressing ByteStateTable.
  KeyCodec codec_;
  /// Fused serialize+hash bytecode program (invalid when the toggle is
  /// off; falls back to SerializeKeys + HashKeysSpan).
  KeyProgram key_prog_;
  ByteStateTable byte_table_;
  std::vector<uint8_t> key_scratch_;
  std::vector<uint64_t> hash_scratch_;

  /// Keyless (scalar) aggregation: one partial state per fixed-size input
  /// chunk, combined pairwise at finalize.
  RowVectorPtr keyless_partials_;
  size_t keyless_fill_ = 0;

  bool consumed_ = false;
  size_t emit_pos_ = 0;
  /// Accounting for the blocking state (drained input, state tables,
  /// group states) against the rank's MemoryBudget; released on
  /// destruction or re-Open.
  ScopedCharge mem_charge_;
};

/// Reduce: keyless aggregation producing exactly one record.
class Reduce : public SubOperator {
 public:
  Reduce(SubOpPtr child, std::vector<AggSpec> aggs, Schema in_schema,
         std::string timer_key = "phase.reduce")
      : SubOperator("Reduce"),
        inner_(std::move(child), {}, std::move(aggs), std::move(in_schema),
               std::move(timer_key)) {}

  const Schema& out_schema() const { return inner_.out_schema(); }

  Status Open(ExecContext* ctx) override;
  bool Next(Tuple* out) override;
  bool ProducesRecordStream() const override { return true; }
  Status Close() override { return inner_.Close(); }

  SubOpPtr CloneForWorker(WorkerCloneContext* cc) const override {
    SubOpPtr child_clone = inner_.child(0)->CloneForWorker(cc);
    if (child_clone == nullptr) return nullptr;
    return std::make_unique<Reduce>(std::move(child_clone), inner_.aggs(),
                                    inner_.in_schema(), inner_.timer_key());
  }

 private:
  ReduceByKey inner_;
  RowVectorPtr empty_state_;
  bool emitted_ = false;
};

/// One sort criterion: column index + direction.
struct SortKey {
  int col = 0;
  bool desc = false;
};

/// Three-way compare of f64 sort keys under a TOTAL order: NaN is greater
/// than every non-NaN and equal to itself, so NaN sorts last ascending /
/// first descending — the same "NaN orders as greater" rule the
/// MODULARIS_SIMD compare kernels document (core/expr.cc). -0.0 == 0.0 as
/// in IEEE compares. The plain `x < y ? -1 : (x == y ? 0 : 1)` idiom is
/// NOT a strict weak ordering once a NaN appears (NaN would compare
/// "greater" than itself), which hands std::sort/std::stable_sort
/// undefined behaviour.
inline int CompareF64TotalOrder(double x, double y) {
  if (x < y) return -1;
  if (y < x) return 1;
  if (x == y) return 0;
  // Neither ordered nor equal: at least one side is NaN.
  const bool nx = std::isnan(x);
  return nx == std::isnan(y) ? 0 : (nx ? 1 : -1);
}

/// Compares two packed rows by a sequence of sort keys. Float64 keys use
/// CompareF64TotalOrder, so the result is a strict weak ordering even
/// with NaN keys present.
int CompareRows(const RowRef& a, const RowRef& b,
                const std::vector<SortKey>& keys);

/// Sort materializes its input and emits records in sorted order.
/// Deterministic parallel execution (docs/DESIGN-parallel.md):
/// morsel-parallel run formation — each worker sorts a static contiguous
/// index range by the total-order comparator, tie-broken by original row
/// index — followed by a K-way loser-tree merge of the per-worker runs,
/// so N-thread output is byte-identical to 1-thread output by
/// construction.
class SortOp : public SubOperator {
 public:
  /// Out-of-line (with the destructor): the external-merge SpillSet
  /// member is forward-declared, and both special members must see the
  /// complete type.
  SortOp(SubOpPtr child, std::vector<SortKey> keys, Schema schema,
         std::string timer_key = "phase.sort");
  ~SortOp() override;

  Status Open(ExecContext* ctx) override;
  bool Next(Tuple* out) override;
  /// Native batch path: gathers the sorted permutation into packed
  /// kDefaultRows batches (one full-stride memcpy per row instead of the
  /// default adapter's tuple loop). Shares the emit cursor with Next(),
  /// so the two protocols may be mixed mid-stream.
  bool NextBatch(RowBatch* out) override;
  bool ProducesRecordStream() const override { return true; }

  SubOpPtr CloneForWorker(WorkerCloneContext* cc) const override {
    SubOpPtr child_clone = child(0)->CloneForWorker(cc);
    if (child_clone == nullptr) return nullptr;
    return std::make_unique<SortOp>(std::move(child_clone), keys_, schema_,
                                    timer_key_);
  }

 protected:
  /// Emit limit: kNoLimit = the whole input. TopK overrides with k (a
  /// literal count: k = 0 emits nothing, like LIMIT 0); Next() and
  /// NextBatch() are shared verbatim (one emit path), so the limit
  /// semantics cannot drift between the two operators again.
  static constexpr size_t kNoLimit = std::numeric_limits<size_t>::max();
  virtual size_t SortLimit() const { return kNoLimit; }

  /// Lazily drains + sorts on first pull; false (status set) on error.
  bool EnsureSorted();

  /// Materializes the input and produces the sorted index permutation.
  /// Under `limit`, per-run selection is bounded: each run partial-sorts
  /// only its top-`limit` prefix and the merge emits the global
  /// top-`limit` — the input is never fully sorted just to emit k rows.
  Status ConsumeAndSort(size_t limit);

  // -- External merge sort (docs/DESIGN-memory.md) --------------------------

  /// A streaming cursor over one spilled sorted run: loads one chunk at a
  /// time and walks its rows; `idx` carries the rows' global input
  /// indices (the comparator tie-break that keeps the external order
  /// byte-equal to the in-memory one).
  struct RunCursor {
    int pass = 0;
    int pid = 0;
    int chunk = 0;  // next chunk to load
    int num_chunks = 0;
    size_t pos = 0;  // position within the loaded chunk
    RowVectorPtr rows;
    std::vector<uint32_t> idx;
  };
  /// Budget-forced degradation: cut the drained input into quota-sized
  /// sorted runs on the blob store, cascade-merge them while the fan-in
  /// exceeds what the quota can keep resident, and leave the final merge
  /// streaming through Next()/NextBatch().
  Status ConsumeExternal(size_t limit);
  /// Ensures the cursor points at an unread row, loading chunks as
  /// needed; `*has_row` false when the run is exhausted.
  Status EnsureCursorRow(RunCursor* c, bool* has_row);
  /// True when cursor `a`'s head row orders strictly before `b`'s under
  /// (sort keys, global index).
  bool CursorBefore(const RunCursor& a, const RunCursor& b) const;
  /// Pops the next row of the final streaming merge into `*row`
  /// (`*done` when the merge or the emit limit is exhausted). The
  /// returned pointer is valid until the owning cursor advances past its
  /// loaded chunk, so callers must copy before the next pop.
  Status NextExternalRow(const uint8_t** row, bool* done);

  std::vector<SortKey> keys_;
  Schema schema_;
  std::string timer_key_;
  PhaseTimer timer_;
  RowVectorPtr rows_;
  std::vector<uint32_t> order_;
  bool sorted_ = false;
  size_t emit_pos_ = 0;
  size_t emit_limit_ = 0;

  // External-merge state (live only when a budget forced the spill).
  bool external_ = false;
  std::unique_ptr<storage::SpillSet> spill_;
  std::vector<RunCursor> runs_;
  std::vector<int> heap_;  // manual min-heap of cursor indices
  RowVectorPtr emit_row_;  // one-row scratch backing Next()'s RowRef
  /// Accounting for the materialized sort input against the rank's
  /// MemoryBudget (docs/DESIGN-memory.md).
  ScopedCharge mem_charge_;
};

/// TopK: sort + limit (paper Table 1; the final SELECT ... LIMIT k of
/// Q3/Q18 and the single-row result of Q12's plan in Fig. 6). Pure
/// configuration over SortOp: the bounded selection, the merge and both
/// emit protocols live in the base class.
class TopK : public SortOp {
 public:
  TopK(SubOpPtr child, std::vector<SortKey> keys, size_t k, Schema schema,
       std::string timer_key = "phase.topk")
      : SortOp(std::move(child), std::move(keys), std::move(schema),
               std::move(timer_key)),
        k_(k) {}

  SubOpPtr CloneForWorker(WorkerCloneContext* cc) const override {
    SubOpPtr child_clone = child(0)->CloneForWorker(cc);
    if (child_clone == nullptr) return nullptr;
    return std::make_unique<TopK>(std::move(child_clone), keys_, k_, schema_,
                                  timer_key_);
  }

 protected:
  size_t SortLimit() const override { return k_; }

 private:
  size_t k_;
};

/// GroupBy merges ⟨pid, collection⟩ pairs by pid and emits one
/// ⟨pid, merged collection⟩ per distinct pid in ascending pid order
/// (used by the serverless exchange, §4.4).
class GroupByPid : public SubOperator {
 public:
  explicit GroupByPid(SubOpPtr child) : SubOperator("GroupBy") {
    AddChild(std::move(child));
  }

  Status Open(ExecContext* ctx) override {
    groups_.clear();
    grouped_ = false;
    return SubOperator::Open(ctx);
  }

  bool Next(Tuple* out) override;

  /// Record projection of the stream (docs/DESIGN-vectorized.md): each
  /// merged group forwarded as one durable borrowed batch in ascending
  /// pid order. The pid atom itself is only observable through Next();
  /// batch and row pulls share the emit cursor.
  bool NextBatch(RowBatch* out) override;

 private:
  /// Drains the input and merges collections per pid.
  Status GroupAll();

  std::map<int64_t, RowVectorPtr> groups_;
  std::map<int64_t, RowVectorPtr>::iterator emit_it_;
  bool grouped_ = false;
};

}  // namespace modularis

#endif  // MODULARIS_SUBOPERATORS_AGG_OPS_H_
