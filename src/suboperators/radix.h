#ifndef MODULARIS_SUBOPERATORS_RADIX_H_
#define MODULARIS_SUBOPERATORS_RADIX_H_

#include <cstdint>

/// \file radix.h
/// Radix partitioning parameters shared by LocalHistogram, LocalPartition,
/// the MPI exchange and the monolithic baseline join. The network phase
/// consumes the low `bits` of the (hashed) key; the local phase consumes
/// the next `bits` (shift = network bits), exactly as in the multi-pass
/// radix join of Barthels et al. [14] that §4.1 reconstructs.

namespace modularis {

/// Hash applied to keys before radix extraction. Identity matches the
/// paper's dense-domain workloads and enables the 16→8 byte compression;
/// kMix is a finalizer-style hash for arbitrary key distributions.
enum class RadixHash : uint8_t { kIdentity, kMix };

inline uint64_t MixHash64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// One radix pass: partition = (hash(key) >> shift) & (2^bits - 1).
struct RadixSpec {
  int bits = 6;
  int shift = 0;
  RadixHash hash = RadixHash::kIdentity;

  int fanout() const { return 1 << bits; }

  uint32_t PartitionOf(int64_t key) const {
    uint64_t h = hash == RadixHash::kIdentity
                     ? static_cast<uint64_t>(key)
                     : MixHash64(static_cast<uint64_t>(key));
    return static_cast<uint32_t>((h >> shift) & ((1u << bits) - 1));
  }
};

}  // namespace modularis

#endif  // MODULARIS_SUBOPERATORS_RADIX_H_
