#ifndef MODULARIS_SUBOPERATORS_JOIN_OPS_H_
#define MODULARIS_SUBOPERATORS_JOIN_OPS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/memory.h"
#include "core/parallel.h"
#include "core/sub_operator.h"
#include "suboperators/partition_ops.h"

/// \file join_ops.h
/// The hash build-and-probe sub-operator family. The paper argues (§3.4)
/// that inner/semi/anti variants (and flipped build sides) merit dedicated
/// configurations of one small operator rather than replicated monolithic
/// joins — here they are all modes of BuildProbe (103 SLOC in the paper's
/// Table 2 for the same reason).

namespace modularis {

/// Join variants supported by BuildProbe.
enum class JoinType : uint8_t { kInner, kSemi, kAnti };

/// Chained-bucket hash table over i64 keys mapping to row indices.
/// Open addressing on buckets; duplicate keys chain through `next`.
class JoinHashTable {
 public:
  static constexpr uint32_t kNone = 0xFFFFFFFFu;

  void Reserve(size_t rows);
  void Insert(int64_t key, uint32_t row_index);
  /// Bulk insert of `n` keys for consecutive row indices starting at
  /// `first_row`, with software prefetching of the target buckets (the
  /// cache-miss latency of the random bucket walk is hidden behind the
  /// packed key stream — only a batched caller can do this).
  void InsertBatch(const int64_t* keys, size_t n, uint32_t first_row);
  /// Partition-local parallel build (docs/DESIGN-parallel.md): the bucket
  /// array is cut into `num_slices` (a power of two) equal ranges and
  /// each worker inserts exactly the keys whose hash lands in its slice,
  /// probing with slice-local wraparound — no cross-worker writes, and
  /// duplicate chains come out in the same (descending row) order as a
  /// serial build, so probe emission stays byte-identical. Entry index ==
  /// build row index. Fails (caller falls back to a serial build) if key
  /// skew overfills one slice.
  Status BuildParallel(const int64_t* keys, size_t n, int num_slices);
  /// First entry matching `key`, or kNone.
  uint32_t Find(int64_t key) const;
  /// Bulk lookup with software prefetching; out[i] = Find(keys[i]).
  void FindBatch(const int64_t* keys, size_t n, uint32_t* out) const;
  /// Next entry with the same key, or kNone.
  uint32_t NextMatch(uint32_t entry) const { return entries_[entry].next; }
  uint32_t RowOf(uint32_t entry) const { return entries_[entry].row; }
  size_t size() const { return entries_.size(); }
  /// Resident bytes (entry array + bucket array), for budget accounting.
  size_t byte_size() const {
    return entries_.capacity() * sizeof(Entry) +
           buckets_.capacity() * sizeof(Bucket);
  }

 private:
  struct Entry {
    int64_t key;
    uint32_t row;
    uint32_t next;
  };

  struct Bucket {
    int64_t key;
    uint32_t head = kNone;
  };

  void Rehash(size_t buckets);

  /// Next bucket in the probe sequence: global wraparound for serially
  /// built tables, slice-local wraparound after BuildParallel.
  size_t NextSlot(size_t slot) const {
    if (!sliced_) return (slot + 1) & mask_;
    size_t next = slot + 1;
    return (next & (slice_rows_ - 1)) == 0 ? next - slice_rows_ : next;
  }

  std::vector<Entry> entries_;
  std::vector<Bucket> buckets_;
  size_t mask_ = 0;
  bool sliced_ = false;
  size_t slice_rows_ = 0;  // buckets per slice (power of two)
};

/// Byte-range copy instruction used to assemble concatenated output rows.
struct FieldCopy {
  uint32_t src_offset;
  uint32_t dst_offset;
  uint32_t bytes;
};

/// BuildProbe builds a hash table on its first upstream and probes it with
/// the second. Inner joins emit the concatenated ⟨build-row, probe-row⟩
/// record; semi/anti joins emit the probe record. Build/probe sides are
/// chosen by the plan (the "flipped" variants of §3.4 are expressed by
/// swapping children and key columns). Accepts record streams or whole
/// collections on either side (the latter is the fused form).
class BuildProbe : public SubOperator {
 public:
  /// `key_shift` is applied (arithmetic right shift) to both sides' keys
  /// before hashing/comparison; compressed exchange partitions join on
  /// `word >> P`, the packed high key bits (§4.1.2).
  BuildProbe(SubOpPtr build, SubOpPtr probe, Schema build_schema,
             Schema probe_schema, int build_key_col, int probe_key_col,
             JoinType type = JoinType::kInner, int key_shift = 0,
             std::string timer_key = "phase.build_probe")
      : SubOperator("BuildProbe"),
        build_schema_(std::move(build_schema)),
        probe_schema_(std::move(probe_schema)),
        out_schema_(type == JoinType::kInner
                        ? build_schema_.Concat(probe_schema_)
                        : probe_schema_),
        build_key_col_(build_key_col),
        probe_key_col_(probe_key_col),
        key_shift_(key_shift),
        type_(type),
        timer_key_(std::move(timer_key)) {
    AddChild(std::move(build));
    AddChild(std::move(probe));
  }

  Status Open(ExecContext* ctx) override;
  bool Next(Tuple* out) override;
  bool ProducesRecordStream() const override { return true; }
  /// Batch path: probes a whole input batch per call, emitting all
  /// matches (concatenated via the FieldCopy plans) into one output
  /// batch. Flushes any probe state a prior Next() left behind first.
  bool NextBatch(RowBatch* out) override;

  const Schema& out_schema() const { return out_schema_; }

  SubOpPtr CloneForWorker(WorkerCloneContext* cc) const override {
    SubOpPtr build_clone = child(0)->CloneForWorker(cc);
    SubOpPtr probe_clone =
        build_clone == nullptr ? nullptr : child(1)->CloneForWorker(cc);
    if (probe_clone == nullptr) return nullptr;
    return std::make_unique<BuildProbe>(std::move(build_clone),
                                        std::move(probe_clone), build_schema_,
                                        probe_schema_, build_key_col_,
                                        probe_key_col_, type_, key_shift_,
                                        timer_key_);
  }

 private:
  /// Per-worker probe scratch: extracted keys, match entries and the one
  /// zero-initialized staging row used by the gapped emit path.
  struct ProbeScratch {
    std::vector<int64_t> keys;
    std::vector<uint32_t> matches;
    RowVectorPtr staging;
  };

  Status BuildTable();
  /// Decides the probe strategy once per Open when a thread budget
  /// exists: materializes the probe side and either fans morsel ranges
  /// out to workers (per-worker sinks concatenated in input order — the
  /// serial emission order) or, below the sizing threshold, replays the
  /// materialized rows through the serial streaming path.
  Status MaybeSetupParallelProbe();
  /// Emits the concatenated row for (build entry, current probe row).
  void EmitInner(uint32_t entry, const RowRef& probe_row, Tuple* out);
  /// Assembles the concatenated ⟨build, probe⟩ row into `sink` via the
  /// given staging row.
  void EmitInnerInto(uint32_t entry, const uint8_t* probe_row,
                     RowVector* staging, RowVector* sink) const;
  /// Probes `n` packed rows starting at `base`, appending results.
  /// Read-only on the table/build side, so worker threads run it
  /// concurrently with private scratch and sinks. When `out_idx` is
  /// given, every emitted row's global probe index (`global_idx[i]`, or
  /// `i` when `global_idx` is null) is appended alongside — the Grace
  /// spill path's merge key. The direct gapless emission path requires
  /// out_idx == nullptr.
  void ProbeSpanInto(const uint8_t* base, size_t n, ProbeScratch* scratch,
                     RowVector* sink, const uint32_t* global_idx = nullptr,
                     std::vector<uint32_t>* out_idx = nullptr) const;
  /// An output run of the Grace spill path: rows plus each row's global
  /// probe index, ascending.
  struct OutRun {
    RowVectorPtr rows;
    std::vector<uint32_t> idx;
  };
  /// Budget-forced degradation (docs/DESIGN-memory.md): co-partition
  /// both sides 256 ways by the join-key hash (greedy ascending-pid
  /// build prefix stays resident, everything else spills), join the
  /// partitions one at a time — oversized build partitions in
  /// quota-sized chunked groups — and merge the per-partition output
  /// runs back into global probe order. Byte-equal to the in-memory
  /// probe at any budget and thread count.
  Status GraceSpillJoin();
  /// Rebuilds table_ over the current build_rows_ group (serial insert:
  /// duplicate chains come out descending, the in-memory chain order).
  void BuildGroupTable();
  /// K-way merge of output runs by (global probe index, run rank); rank
  /// breaks ties so a probe row's duplicate matches keep the descending
  /// build-row order across chunked build groups.
  void MergeOutRuns(std::vector<OutRun>* runs, RowVector* sink,
                    std::vector<uint32_t>* idx_out) const;
  /// Advances the par-sink cursor past exhausted sinks. True when
  /// (par_sink_, par_row_) points at an unread row; false at end.
  bool AdvanceParSink() {
    while (par_sink_ < par_sinks_.size()) {
      if (par_row_ < par_sinks_[par_sink_]->size()) return true;
      ++par_sink_;
      par_row_ = 0;
    }
    return false;
  }

  /// The probe cursor: the row currently being probed, from either a bulk
  /// collection or a streamed record tuple.
  RowRef CurrentProbeRow() const {
    return bulk_probe_ ? probe_bulk_->row(probe_bulk_pos_)
                       : probe_tuple_[0].row();
  }
  void AdvanceProbe() {
    if (bulk_probe_) {
      ++probe_bulk_pos_;
      have_probe_row_ = probe_bulk_pos_ < probe_bulk_->size();
    } else {
      have_probe_row_ = false;
    }
  }

  Schema build_schema_;
  Schema probe_schema_;
  Schema out_schema_;
  int build_key_col_;
  int probe_key_col_;
  int key_shift_;
  JoinType type_;
  std::string timer_key_;
  PhaseTimer timer_;

  std::vector<FieldCopy> build_copies_;
  std::vector<FieldCopy> probe_copies_;

  JoinHashTable table_;
  RowVectorPtr build_rows_;
  RowVectorPtr scratch_;
  RowBatch probe_in_;
  RowVectorPtr out_rows_;
  ProbeScratch probe_scratch_;
  std::vector<int64_t> key_scratch_;
  /// True when the inner-join copy plans cover every output byte, which
  /// enables direct emission into uninitialized sink rows.
  bool gapless_out_ = false;
  bool built_ = false;

  // Probe cursor state.
  bool bulk_probe_ = false;
  bool have_probe_row_ = false;
  RowVectorPtr probe_bulk_;
  size_t probe_bulk_pos_ = 0;
  Tuple probe_tuple_;
  /// Remaining duplicate-match chain for the current probe row.
  uint32_t match_entry_ = JoinHashTable::kNone;
  bool in_match_chain_ = false;

  // Parallel probe state: per-worker output sinks emitted in worker
  // (= input range) order.
  bool par_probe_decided_ = false;
  bool par_probe_ = false;
  std::vector<RowVectorPtr> par_sinks_;
  size_t par_sink_ = 0;
  size_t par_row_ = 0;

  /// Accounting for the blocking state (build side, hash table, drained
  /// probe) against the rank's MemoryBudget.
  ScopedCharge mem_charge_;
};

}  // namespace modularis

#endif  // MODULARIS_SUBOPERATORS_JOIN_OPS_H_
