#ifndef MODULARIS_SUBOPERATORS_PARTITION_OPS_H_
#define MODULARIS_SUBOPERATORS_PARTITION_OPS_H_

#include <string>
#include <utility>
#include <vector>

#include "core/parallel.h"
#include "core/sub_operator.h"
#include "suboperators/radix.h"

/// \file partition_ops.h
/// Histogram and partitioning sub-operators. Factoring the partitioning
/// logic out of the join lets the same code improve cache locality in
/// grouping too (design principle (1), §3.2).

namespace modularis {

/// Schema of histogram collections: one i64 count per partition, indexed
/// by partition id.
Schema HistogramSchema();

/// LocalHistogram counts, per radix partition, the records of its input.
/// It accepts either record streams (from RowScan) or whole collections
/// (the fused form installed by the fusion pass) and produces a single
/// tuple holding the histogram collection.
class LocalHistogram : public SubOperator {
 public:
  LocalHistogram(SubOpPtr child, RadixSpec spec, int key_col,
                 std::string timer_key = "phase.local_histogram")
      : SubOperator("LocalHistogram"),
        spec_(spec),
        key_col_(key_col),
        timer_key_(std::move(timer_key)) {
    AddChild(std::move(child));
  }

  Status Open(ExecContext* ctx) override {
    done_ = false;
    return SubOperator::Open(ctx);
  }

  bool Next(Tuple* out) override;

  SubOpPtr CloneForWorker(WorkerCloneContext* cc) const override {
    SubOpPtr child_clone = child(0)->CloneForWorker(cc);
    if (child_clone == nullptr) return nullptr;
    return std::make_unique<LocalHistogram>(std::move(child_clone), spec_,
                                            key_col_, timer_key_);
  }

  const RadixSpec& spec() const { return spec_; }

 private:
  /// Morsel-parallel counting over the materialized input; per-worker
  /// histograms sum-merge (order-insensitive, so morsels are claimed
  /// dynamically). Used when the thread budget allows, vectorized only.
  Status CountParallel(std::vector<int64_t>* counts);

  RadixSpec spec_;
  int key_col_;
  std::string timer_key_;
  PhaseTimer timer_;
  bool done_ = false;
};

/// LocalPartition scatters its data upstream into per-partition
/// collections, sized exactly from the histogram upstream, and emits
/// ⟨partitionID, partitionData⟩ pairs for every partition in dense,
/// ordered sequence (so that Zip can align the two join sides).
class LocalPartition : public SubOperator {
 public:
  /// Children: data (records or collections), histogram (single tuple).
  LocalPartition(SubOpPtr data, SubOpPtr histogram, RadixSpec spec,
                 int key_col,
                 std::string timer_key = "phase.local_partition")
      : SubOperator("LocalPartition"),
        spec_(spec),
        key_col_(key_col),
        timer_key_(std::move(timer_key)) {
    AddChild(std::move(data));
    AddChild(std::move(histogram));
  }

  Status Open(ExecContext* ctx) override {
    partitioned_ = false;
    emit_pos_ = 0;
    parts_.clear();
    return SubOperator::Open(ctx);
  }

  bool Next(Tuple* out) override;

  SubOpPtr CloneForWorker(WorkerCloneContext* cc) const override {
    SubOpPtr data_clone = child(0)->CloneForWorker(cc);
    SubOpPtr hist_clone =
        data_clone == nullptr ? nullptr : child(1)->CloneForWorker(cc);
    if (hist_clone == nullptr) return nullptr;
    return std::make_unique<LocalPartition>(std::move(data_clone),
                                            std::move(hist_clone), spec_,
                                            key_col_, timer_key_);
  }

 private:
  Status PartitionAll();
  /// Vectorized variant: partitions are sized exactly from the histogram
  /// up front (ResizeRows) and rows land at histogram prefix offsets in
  /// one streaming pass — no per-row append bookkeeping.
  Status PartitionAllVectorized(const RowVector& hist);
  /// Morsel-parallel variant (docs/DESIGN-parallel.md): static contiguous
  /// worker ranges are counted, per-(worker, partition) write offsets are
  /// derived from the histogram prefix sums, then every worker scatters
  /// its range through software write-combining buffers into the shared
  /// pre-sized partitions — byte-identical to the serial scatter because
  /// offsets replay the input order.
  Status PartitionAllParallel(const RowVector& hist);

  RadixSpec spec_;
  int key_col_;
  std::string timer_key_;
  PhaseTimer timer_;
  bool partitioned_ = false;
  size_t emit_pos_ = 0;
  std::vector<RowVectorPtr> parts_;
};

/// Partition is the single-pass variant that computes its own histogram
/// (Table 1's generic Partition; used by the serverless exchange where
/// partitioning is only a pre-processing step for the S3 exchange, §4.4).
class PartitionOp : public SubOperator {
 public:
  PartitionOp(SubOpPtr data, RadixSpec spec, int key_col,
              std::string timer_key = "phase.partition")
      : SubOperator("Partition"),
        spec_(spec),
        key_col_(key_col),
        timer_key_(std::move(timer_key)) {
    AddChild(std::move(data));
  }

  Status Open(ExecContext* ctx) override {
    partitioned_ = false;
    emit_pos_ = 0;
    parts_.clear();
    return SubOperator::Open(ctx);
  }

  bool Next(Tuple* out) override;

  SubOpPtr CloneForWorker(WorkerCloneContext* cc) const override {
    SubOpPtr child_clone = child(0)->CloneForWorker(cc);
    if (child_clone == nullptr) return nullptr;
    return std::make_unique<PartitionOp>(std::move(child_clone), spec_,
                                         key_col_, timer_key_);
  }

 private:
  /// Single-pass parallel form: parallel count over static ranges sizes
  /// the partitions exactly, then the same write-combining scatter as
  /// LocalPartition. No histogram child, so no count/histogram mismatch
  /// is possible.
  Status PartitionAllParallel(const RowVectorPtr& input, int workers);

  RadixSpec spec_;
  int key_col_;
  std::string timer_key_;
  PhaseTimer timer_;
  bool partitioned_ = false;
  size_t emit_pos_ = 0;
  std::vector<RowVectorPtr> parts_;
};

/// Shared scatter routine: appends every record of `rows` to
/// `parts[PartitionOf(key)]`. Key must be an i64/i32/date column.
void ScatterRows(const RowVector& rows, const RadixSpec& spec, int key_col,
                 std::vector<RowVectorPtr>* parts);
/// Span form of ScatterRows (batch inputs).
void ScatterSpan(const uint8_t* rows, size_t n, const Schema& schema,
                 const RadixSpec& spec, int key_col,
                 std::vector<RowVectorPtr>* parts);

/// Pre-sized scatter: writes each record of the span at
/// `parts[pid]->mutable_row(cursors[pid]++)`. Partitions must already be
/// ResizeRows'd to their exact histogram counts; returns
/// InvalidArgument if a partition overflows (histogram/data mismatch).
Status ScatterSpanPresized(const uint8_t* rows, size_t n,
                           const Schema& schema, const RadixSpec& spec,
                           int key_col, std::vector<RowVectorPtr>* parts,
                           std::vector<size_t>* cursors);

/// Write-combining pre-sized scatter (the per-worker form): rows are
/// staged in a small per-partition buffer and flushed with one memcpy per
/// full buffer, so a high-fanout scatter touches each partition's cache
/// lines in bursts instead of per row. `cursors` holds this worker's
/// absolute start row per partition and must have been reserved so that
/// every row of the span fits (counts verified by the caller); advanced
/// past the written rows on return.
void ScatterSpanPresizedWc(const uint8_t* rows, size_t n,
                           const Schema& schema, const RadixSpec& spec,
                           int key_col, std::vector<RowVectorPtr>* parts,
                           std::vector<size_t>* cursors);

/// Precomputed-pid variant of the two-phase count→write-combining
/// scatter (partition-owned aggregation, docs/DESIGN-parallel.md): the
/// caller derives one partition id per row from an arbitrary key hash
/// (multi-column / string / float group keys) and counts during that
/// pass, then reuses the same prefix-offset scatter machinery the radix
/// partitioners run.
///
/// Write-combining scatter of `n` packed rows into one flat pre-sized
/// destination, keyed by a precomputed per-row partition id: row i lands
/// at `dst_rows + cursors[pids[i]] * stride`, and its original row index
/// `base_index + i` lands in `dst_idx` at the same cursor. Rows and
/// indices are staged in small per-partition buffers and flushed with one
/// memcpy per full buffer, exactly like ScatterSpanPresizedWc. `cursors`
/// holds this worker's absolute start row per partition (prefix sums
/// across partitions and earlier workers) and is advanced past the
/// written rows on return — so every partition ends up holding its rows
/// in ascending original-row order with the global index recoverable.
/// `dst_idx` may be null when the caller needs only the reordered rows
/// (the exchange wire scatter, which never maps rows back).
void ScatterSpanByPidWc(const uint8_t* rows, size_t n, uint32_t stride,
                        const uint8_t* pids, int fanout, size_t base_index,
                        uint8_t* dst_rows, uint32_t* dst_idx,
                        std::vector<size_t>* cursors);

/// Shared count routine: adds per-partition record counts of `rows` into
/// `counts` (size must be spec.fanout()).
void CountRows(const RowVector& rows, const RadixSpec& spec, int key_col,
               int64_t* counts);
/// Span form of CountRows (batch inputs).
void CountSpan(const uint8_t* rows, size_t n, const Schema& schema,
               const RadixSpec& spec, int key_col, int64_t* counts);

/// Extracts the i64 key (i32/date widened) at `key_col` of a packed row.
inline int64_t KeyAt(const RowRef& row, int key_col) {
  const Field& f = row.schema().field(key_col);
  if (f.type == AtomType::kInt64) return row.GetInt64(key_col);
  return row.GetInt32(key_col);
}

}  // namespace modularis

#endif  // MODULARIS_SUBOPERATORS_PARTITION_OPS_H_
