#include "suboperators/basic_ops.h"

#include <algorithm>
#include <atomic>

#include "suboperators/scan_ops.h"

namespace modularis {

// ---------------------------------------------------------------------------
// NestedMap
// ---------------------------------------------------------------------------

Status NestedMap::Open(ExecContext* ctx) {
  ctx_ = ctx;
  status_ = Status::OK();
  nested_open_ = false;
  par_active_ = false;
  par_plans_.clear();
  par_workers_.reset();
  par_group_.clear();
  par_task_ = 0;
  par_out_ = 0;
  par_input_done_ = false;
  MODULARIS_RETURN_NOT_OK(child(0)->Open(ctx));

  // Parallel mode: one nested-plan clone per worker, fed input tuples
  // dynamically (partition pairs are skewed, so dynamic claiming is the
  // load-balancing lever here); outputs replay in input order. Gated on
  // enable_vectorized like every other parallel path, so the
  // row-at-a-time oracle configuration stays a genuinely single-threaded
  // reference execution.
  int threads = ctx->options.ResolvedNumThreads();
  if (threads <= 1) return Status::OK();
  if (!ctx->options.enable_vectorized) {
    NoteSerialFallback(ctx, "NestedMap");
    return Status::OK();
  }
  WorkerCloneContext cc;
  for (int w = 0; w < threads; ++w) {
    SubOpPtr clone = nested_->CloneForWorker(&cc);
    if (clone == nullptr) {
      par_plans_.clear();
      NoteSerialFallback(ctx, "NestedMap");
      return Status::OK();
    }
    par_plans_.push_back(std::move(clone));
  }
  par_workers_ = std::make_unique<WorkerSet>(ctx, threads);
  par_active_ = true;
  return Status::OK();
}

SubOpPtr NestedMap::CloneForWorker(WorkerCloneContext* cc) const {
  SubOpPtr input_clone = child(0)->CloneForWorker(cc);
  SubOpPtr nested_clone =
      input_clone == nullptr ? nullptr : nested_->CloneForWorker(cc);
  if (nested_clone == nullptr) return nullptr;
  return std::make_unique<NestedMap>(std::move(input_clone),
                                     std::move(nested_clone));
}

bool NestedMap::FillParGroup() {
  par_group_.clear();
  par_task_ = 0;
  par_out_ = 0;
  if (par_input_done_) return false;
  // Bounded group: enough tasks to keep every worker busy across skewed
  // partition sizes without materializing the whole output stream.
  const size_t group_budget = par_plans_.size() * 4;
  Tuple t;
  while (par_group_.size() < group_budget && child(0)->Next(&t)) {
    ParTask task;
    task.input = OwnTuple(t, &task.arena);
    par_group_.push_back(std::move(task));
  }
  if (par_group_.size() < group_budget) {
    par_input_done_ = true;
    if (!child(0)->status().ok()) return Fail(child(0)->status());
  }
  if (par_group_.empty()) return false;

  std::atomic<size_t> next_task{0};
  const int workers =
      static_cast<int>(std::min(par_plans_.size(), par_group_.size()));
  Status st = ParallelFor(ctx_, workers, [&](int w) -> Status {
    SubOperator* plan = par_plans_[w].get();
    ExecContext* wctx = par_workers_->ctx(w);
    Status worker_st = Status::OK();
    for (;;) {
      size_t i = next_task.fetch_add(1, std::memory_order_relaxed);
      if (i >= par_group_.size()) break;
      ParTask& task = par_group_[i];
      wctx->PushParams(&task.input);
      Status open_st = plan->Open(wctx);
      if (open_st.ok()) {
        Tuple out;
        while (plan->Next(&out)) {
          task.outputs.push_back(OwnTuple(out, &task.arena));
        }
        open_st = plan->status();
        Status close_st = plan->Close();
        if (open_st.ok()) open_st = close_st;
      }
      wctx->PopParams();
      if (!open_st.ok()) {
        worker_st = std::move(open_st);
        break;
      }
    }
    return worker_st;
  });
  par_workers_->MergeStats();
  if (!st.ok()) return Fail(std::move(st));
  return true;
}

bool NestedMap::AdvanceNested() {
  if (nested_open_) {
    if (!nested_->status().ok()) return Fail(nested_->status());
    Status st = nested_->Close();
    ctx_->PopParams();
    nested_open_ = false;
    if (!st.ok()) return Fail(st);
  }
  Tuple t;
  if (!child(0)->Next(&t)) return ChildEnd(child(0));
  // The input tuple must outlive the whole nested execution; borrowed
  // rows are copied into this operator's arena.
  arena_.clear();
  current_input_ = OwnTuple(t, &arena_);
  ctx_->PushParams(&current_input_);
  Status st = nested_->Open(ctx_);
  if (!st.ok()) {
    ctx_->PopParams();
    return Fail(st);
  }
  nested_open_ = true;
  return true;
}

bool NestedMap::Next(Tuple* out) {
  if (par_active_) {
    while (true) {
      if (par_task_ < par_group_.size()) {
        ParTask& task = par_group_[par_task_];
        if (par_out_ < task.outputs.size()) {
          *out = task.outputs[par_out_++];
          return true;
        }
        ++par_task_;
        par_out_ = 0;
        continue;
      }
      if (!FillParGroup()) return false;
    }
  }
  while (true) {
    if (nested_open_ && nested_->Next(out)) return true;
    if (!AdvanceNested()) return false;
  }
}

bool NestedMap::NextBatch(RowBatch* out) {
  // Parallel mode stores nested outputs as tuples; the shared tuple-loop
  // state machine batches them (whole collections forwarded zero-copy).
  if (par_active_) {
    return NextBatchFromTuples(out, 0, /*require_arity_one=*/true);
  }
  while (true) {
    if (nested_open_ && nested_->NextBatch(out)) return true;
    if (!AdvanceNested()) return false;
  }
}

bool NestedMap::NextBatchSelective(RowBatch* out) {
  if (par_active_) return NextBatch(out);
  while (true) {
    if (nested_open_ && nested_->NextBatchSelective(out)) return true;
    if (!AdvanceNested()) return false;
  }
}

Status NestedMap::Close() {
  Status st = Status::OK();
  if (nested_open_) {
    st = nested_->Close();
    ctx_->PopParams();
    nested_open_ = false;
  }
  par_active_ = false;
  par_plans_.clear();
  par_workers_.reset();
  par_group_.clear();
  Status cst = child(0)->Close();
  return st.ok() ? cst : st;
}

// ---------------------------------------------------------------------------
// Projection
// ---------------------------------------------------------------------------

bool Projection::NextBatch(RowBatch* out) {
  // Multi-item projections keep the tuple protocol (the adapter reports
  // the arity error a batch consumer would hit anyway). The single-item
  // form batches the projected item directly through the shared tuple-
  // loop state machine — its own Next() already strips the envelope, so
  // item 0 of this operator's tuples is the projected item.
  if (indices_.size() != 1) return SubOperator::NextBatch(out);
  return NextBatchFromTuples(out, 0, /*require_arity_one=*/false);
}

// ---------------------------------------------------------------------------
// Filter
// ---------------------------------------------------------------------------

bool Filter::NextBatchSelective(RowBatch* out) {
  // Multi-item streams (row_item != 0) cannot batch; the adapter
  // reports the arity error a batch consumer would hit anyway.
  if (row_item_ != 0) return SubOperator::NextBatch(out);
  out->Clear();
  while (child(0)->NextBatchSelective(&in_batch_)) {
    const size_t n = in_batch_.size();
    if (n == 0) continue;
    // FilterBatch narrows sel_ in place, so an inherited selection is
    // copied rather than aliased.
    const uint32_t* in_sel = in_batch_.SelectionOrIdentity(&sel_);
    if (in_sel != sel_.data()) {
      // An upstream-provided selection is the one entry point where a
      // contract violation could silently mis-assign lanes downstream.
      Status vst = ValidateSelection("Filter", in_sel, n);
      if (!vst.ok()) return Fail(std::move(vst));
      sel_.assign(in_sel, in_sel + n);
    }
    RowSpan span{in_batch_.data(), in_batch_.row_size(), &in_batch_.schema()};
    if (!bc_compile_attempted_) {
      bc_compile_attempted_ = true;
      if (ctx_ != nullptr && ctx_->options.enable_expr_bytecode) {
        bc_prog_ = std::make_unique<BcProgram>(
            BcProgram::CompileFilter(predicate_, in_batch_.schema()));
        bc_state_ = std::make_unique<BcState>();
        if (bc_prog_->fallback_count() > 0) {
          AddStatCounter("expr.bc_fallback.filter",
                         static_cast<int64_t>(bc_prog_->fallback_count()));
        }
      }
    }
    Status st = bc_prog_ != nullptr
                    ? bc_prog_->RunFilter(span, &sel_, bc_state_.get())
                    : predicate_->FilterBatch(span, &sel_, &expr_scratch_);
    if (!st.ok()) return Fail(std::move(st));
    if (sel_.empty()) continue;
    out->BorrowFrom(in_batch_);
    if (!in_batch_.has_selection() && sel_.size() == in_batch_.dense_size()) {
      // All-pass dense batch: forward unmodified (still stealable).
      return true;
    }
    out->SetSelection(sel_.data(), sel_.size());
    return true;
  }
  return ChildEnd(child(0));
}

bool Filter::NextBatch(RowBatch* out) {
  if (row_item_ != 0) return SubOperator::NextBatch(out);
  // The selective pull already loops past empty batches, so one call
  // either yields a non-empty batch or ends the stream.
  if (!NextBatchSelective(out)) return false;  // status set by the pull
  if (!out->has_selection()) return true;  // all-pass, forwarded dense
  // Compact the surviving rows; contiguous index runs collapse into
  // one memcpy each.
  if (out_rows_ == nullptr ||
      !out_rows_->schema().Equals(in_batch_.schema())) {
    out_rows_ = RowVector::Make(in_batch_.schema());
  } else {
    out_rows_->Clear();
  }
  const size_t m = sel_.size();
  out_rows_->Reserve(m);
  const uint32_t stride = in_batch_.row_size();
  size_t i = 0;
  while (i < m) {
    size_t j = i + 1;
    while (j < m && sel_[j] == sel_[j - 1] + 1) ++j;
    out_rows_->AppendRawBatch(
        in_batch_.data() + static_cast<size_t>(sel_[i]) * stride, j - i);
    i = j;
  }
  out->Borrow(out_rows_);
  return true;
}

// ---------------------------------------------------------------------------
// MapOp
// ---------------------------------------------------------------------------

Status MapOp::WriteOutput(const RowRef& in, RowWriter* w) {
  for (size_t c = 0; c < outputs_.size(); ++c) {
    int col = static_cast<int>(c);
    const MapOutput& spec = outputs_[c];
    if (spec.passthrough_col >= 0) {
      const Field& f = in.schema().field(spec.passthrough_col);
      switch (f.type) {
        case AtomType::kInt32:
        case AtomType::kDate:
          w->SetInt32(col, in.GetInt32(spec.passthrough_col));
          break;
        case AtomType::kInt64:
          w->SetInt64(col, in.GetInt64(spec.passthrough_col));
          break;
        case AtomType::kFloat64:
          w->SetFloat64(col, in.GetFloat64(spec.passthrough_col));
          break;
        case AtomType::kString:
          w->SetString(col, in.GetString(spec.passthrough_col));
          break;
      }
      continue;
    }
    // Checked evaluation: a string-valued IF condition (or any other
    // non-numeric predicate result inside the tree) is a hard error on
    // the row path, exactly as on the batch and bytecode paths.
    Item v;
    MODULARIS_RETURN_NOT_OK(spec.expr->EvalChecked(in, &v));
    switch (out_schema_.field(c).type) {
      case AtomType::kInt32:
      case AtomType::kDate:
        w->SetInt32(col, static_cast<int32_t>(v.i64()));
        break;
      case AtomType::kInt64:
        w->SetInt64(col, v.is_f64() ? static_cast<int64_t>(v.f64()) : v.i64());
        break;
      case AtomType::kFloat64:
        w->SetFloat64(col, v.AsDouble());
        break;
      case AtomType::kString:
        w->SetString(col, v.str());
        break;
    }
  }
  return Status::OK();
}

bool MapOp::Next(Tuple* out) {
  Tuple t;
  if (!child(0)->Next(&t)) return ChildEnd(child(0));
  RowWriter w(scratch_->mutable_row(0), &scratch_->schema());
  Status st = WriteOutput(t[row_item_].row(), &w);
  if (!st.ok()) return Fail(std::move(st));
  out->clear();
  out->push_back(Item(scratch_->row(0)));
  return true;
}

bool MapOp::NextBatch(RowBatch* out) {
  if (row_item_ != 0) return SubOperator::NextBatch(out);
  out->Clear();
  while (child(0)->NextBatchSelective(&in_batch_)) {
    if (in_batch_.empty()) continue;
    Status st = TransformBatch(in_batch_);
    if (!st.ok()) return Fail(std::move(st));
    out->Borrow(out_rows_);
    return true;
  }
  return ChildEnd(child(0));
}

Status MapOp::TransformBatch(const RowBatch& in) {
  const size_t n = in.size();
  const uint32_t* sel = in.SelectionOrIdentity(&identity_sel_);
  if (in.has_selection()) {
    // Inherited selections cross an operator boundary: defend the
    // strictly-ascending contract before any contiguity fast path runs.
    MODULARIS_RETURN_NOT_OK(ValidateSelection("Map", sel, n));
  }
  if (!bc_compile_attempted_) {
    bc_compile_attempted_ = true;
    if (ctx_ != nullptr && ctx_->options.enable_expr_bytecode) {
      bc_progs_.resize(outputs_.size());
      int64_t fallbacks = 0;
      for (size_t c = 0; c < outputs_.size(); ++c) {
        if (outputs_[c].passthrough_col >= 0) continue;
        auto prog = std::make_unique<BcProgram>(
            BcProgram::CompileValue(outputs_[c].expr, in.schema()));
        fallbacks += static_cast<int64_t>(prog->fallback_count());
        bc_progs_[c] = std::move(prog);
      }
      if (fallbacks > 0) AddStatCounter("expr.bc_fallback.value", fallbacks);
      bc_state_ = std::make_unique<BcState>();
    }
  }
  if (out_rows_ == nullptr) {
    out_rows_ = RowVector::Make(out_schema_);
  } else {
    out_rows_->Clear();
  }
  // Zero-filled rows, so string padding matches the row path's AppendRow.
  out_rows_->ResizeRows(n);
  uint8_t* obase = out_rows_->mutable_data();
  const uint32_t ostride = out_rows_->row_size();
  const Schema& in_schema = in.schema();
  const uint32_t istride = in.row_size();
  const uint8_t* ibase = in.data();
  RowSpan span{ibase, istride, &in_schema};
  for (size_t c = 0; c < outputs_.size(); ++c) {
    const MapOutput& spec = outputs_[c];
    const int col = static_cast<int>(c);
    const uint32_t ooff = out_schema_.offset(c);
    if (spec.passthrough_col >= 0) {
      const uint32_t ioff = in_schema.offset(spec.passthrough_col);
      switch (in_schema.field(spec.passthrough_col).type) {
        case AtomType::kInt32:
        case AtomType::kDate:
          for (size_t i = 0; i < n; ++i) {
            std::memcpy(obase + i * ostride + ooff,
                        ibase + static_cast<size_t>(sel[i]) * istride + ioff,
                        sizeof(int32_t));
          }
          break;
        case AtomType::kInt64:
        case AtomType::kFloat64:
          for (size_t i = 0; i < n; ++i) {
            std::memcpy(obase + i * ostride + ooff,
                        ibase + static_cast<size_t>(sel[i]) * istride + ioff,
                        sizeof(int64_t));
          }
          break;
        case AtomType::kString:
          // Re-encode through Get/Set so width clamping and padding match
          // the row path even when in/out widths differ.
          for (size_t i = 0; i < n; ++i) {
            RowWriter w(obase + i * ostride, &out_schema_);
            w.SetString(col, span.row(sel[i]).GetString(spec.passthrough_col));
          }
          break;
      }
      continue;
    }
    BatchColumn* v = expr_scratch_.AcquireColumn();
    Status st = c < bc_progs_.size() && bc_progs_[c] != nullptr
                    ? bc_progs_[c]->RunValue(span, sel, n, v, bc_state_.get())
                    : spec.expr->EvalBatch(span, sel, n, v, &expr_scratch_);
    if (st.ok()) st = StoreColumn(*v, col, ooff, obase, ostride, n);
    expr_scratch_.ReleaseColumn();
    MODULARIS_RETURN_NOT_OK(st);
  }
  return Status::OK();
}

/// Stores a batch-evaluated column into packed output rows, replicating
/// WriteOutput's per-kind conversions exactly.
Status MapOp::StoreColumn(const BatchColumn& v, int col, uint32_t ooff,
                          uint8_t* obase, uint32_t ostride, size_t n) {
  const AtomType out_type = out_schema_.field(col).type;
  auto type_error = [&] {
    return Status::InvalidArgument(
        "Map: computed column " + std::to_string(col) +
        " produced a value incompatible with " + AtomTypeName(out_type));
  };
  switch (out_type) {
    case AtomType::kInt32:
    case AtomType::kDate:
      if (v.tag == BatchTag::kI64) {
        for (size_t i = 0; i < n; ++i) {
          int32_t x = static_cast<int32_t>(v.i64[i]);
          std::memcpy(obase + i * ostride + ooff, &x, sizeof(x));
        }
      } else if (v.tag == BatchTag::kItem) {
        for (size_t i = 0; i < n; ++i) {
          if (!v.items[i].is_i64()) return type_error();
          int32_t x = static_cast<int32_t>(v.items[i].i64());
          std::memcpy(obase + i * ostride + ooff, &x, sizeof(x));
        }
      } else {
        return type_error();
      }
      break;
    case AtomType::kInt64:
      if (v.tag == BatchTag::kI64) {
        for (size_t i = 0; i < n; ++i) {
          std::memcpy(obase + i * ostride + ooff, &v.i64[i], sizeof(int64_t));
        }
      } else if (v.tag == BatchTag::kF64) {
        for (size_t i = 0; i < n; ++i) {
          int64_t x = static_cast<int64_t>(v.f64[i]);
          std::memcpy(obase + i * ostride + ooff, &x, sizeof(x));
        }
      } else if (v.tag == BatchTag::kItem) {
        for (size_t i = 0; i < n; ++i) {
          const Item& item = v.items[i];
          int64_t x;
          if (item.is_f64()) {
            x = static_cast<int64_t>(item.f64());
          } else if (item.is_i64()) {
            x = item.i64();
          } else {
            return type_error();
          }
          std::memcpy(obase + i * ostride + ooff, &x, sizeof(x));
        }
      } else {
        return type_error();
      }
      break;
    case AtomType::kFloat64:
      if (v.tag == BatchTag::kF64) {
        for (size_t i = 0; i < n; ++i) {
          std::memcpy(obase + i * ostride + ooff, &v.f64[i], sizeof(double));
        }
      } else if (v.tag == BatchTag::kI64) {
        for (size_t i = 0; i < n; ++i) {
          double x = static_cast<double>(v.i64[i]);
          std::memcpy(obase + i * ostride + ooff, &x, sizeof(x));
        }
      } else if (v.tag == BatchTag::kItem) {
        for (size_t i = 0; i < n; ++i) {
          const Item& item = v.items[i];
          if (!item.is_i64() && !item.is_f64()) return type_error();
          double x = item.AsDouble();
          std::memcpy(obase + i * ostride + ooff, &x, sizeof(x));
        }
      } else {
        return type_error();
      }
      break;
    case AtomType::kString:
      if (v.tag == BatchTag::kStr) {
        for (size_t i = 0; i < n; ++i) {
          RowWriter w(obase + i * ostride, &out_schema_);
          w.SetString(col, v.str[i]);
        }
      } else if (v.tag == BatchTag::kItem) {
        for (size_t i = 0; i < n; ++i) {
          if (!v.items[i].is_str()) return type_error();
          RowWriter w(obase + i * ostride, &out_schema_);
          w.SetString(col, v.items[i].str());
        }
      } else {
        return type_error();
      }
      break;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ParametrizedMap
// ---------------------------------------------------------------------------

Status ParametrizedMap::Open(ExecContext* ctx) {
  MODULARIS_RETURN_NOT_OK(SubOperator::Open(ctx));
  scratch_ = RowVector::Make(out_schema_);
  scratch_->AppendRow();
  bulk_.reset();
  bulk_pos_ = 0;
  Tuple t;
  if (!child(0)->Next(&t)) {
    if (!child(0)->status().ok()) return child(0)->status();
    return Status::InvalidArgument(
        "ParametrizedMap: parameter upstream yielded no tuple");
  }
  param_arena_.clear();
  param_ = OwnTuple(t, &param_arena_);
  return Status::OK();
}

bool ParametrizedMap::Next(Tuple* out) {
  while (true) {
    RowRef in;
    if (bulk_ != nullptr && bulk_pos_ < bulk_->size()) {
      in = bulk_->row(bulk_pos_++);
    } else {
      Tuple t;
      if (!child(1)->Next(&t)) return ChildEnd(child(1));
      if (bulk_fn_ != nullptr && t[0].is_collection()) {
        // Fused: transform the whole collection in one pass.
        out->clear();
        out->push_back(Item(bulk_fn_(param_, *t[0].collection())));
        return true;
      }
      if (t[0].is_collection()) {
        bulk_ = t[0].collection();
        bulk_pos_ = 0;
        continue;
      }
      if (!t[0].is_row()) {
        return Fail(Status::InvalidArgument(
            "ParametrizedMap expects rows or collections, got " +
            t[0].ToString()));
      }
      in = t[0].row();
    }
    if (fn_ == nullptr) {
      return Fail(Status::InvalidArgument(
          "ParametrizedMap: bulk-only form received a record stream"));
    }
    RowWriter w(scratch_->mutable_row(0), &scratch_->schema());
    fn_(param_, in, &w);
    out->clear();
    out->push_back(Item(scratch_->row(0)));
    return true;
  }
}

bool ParametrizedMap::NextBatch(RowBatch* out) {
  // Bulk-only form: the default adapter forwards the bulk_fn_ collection
  // outputs of Next() zero-copy.
  if (fn_ == nullptr) return SubOperator::NextBatch(out);
  out->Clear();
  auto transform = [this](const uint8_t* base, size_t n,
                          const Schema& schema) {
    if (out_rows_ == nullptr) {
      out_rows_ = RowVector::Make(out_schema_);
    } else {
      out_rows_->Clear();
    }
    out_rows_->Reserve(n);
    const uint32_t stride = schema.row_size();
    for (size_t i = 0; i < n; ++i, base += stride) {
      RowWriter w = out_rows_->AppendRow();
      fn_(param_, RowRef(base, &schema), &w);
    }
  };
  // Flush rows of a collection partially consumed through Next().
  if (bulk_ != nullptr && bulk_pos_ < bulk_->size()) {
    transform(bulk_->data() + bulk_pos_ * bulk_->row_size(),
              bulk_->size() - bulk_pos_, bulk_->schema());
    bulk_pos_ = bulk_->size();
    out->Borrow(out_rows_);
    return true;
  }
  while (child(1)->NextBatch(&in_batch_)) {
    if (in_batch_.empty()) continue;
    transform(in_batch_.data(), in_batch_.size(), in_batch_.schema());
    out->Borrow(out_rows_);
    return true;
  }
  return ChildEnd(child(1));
}

SubOpPtr ParametrizedMap::CloneForWorker(WorkerCloneContext* cc) const {
  if (!clone_safe_) return nullptr;  // callables not declared thread-safe
  SubOpPtr param_clone = child(0)->CloneForWorker(cc);
  SubOpPtr data_clone =
      param_clone == nullptr ? nullptr : child(1)->CloneForWorker(cc);
  if (data_clone == nullptr) return nullptr;
  std::unique_ptr<ParametrizedMap> clone;
  if (fn_ != nullptr) {
    clone = std::make_unique<ParametrizedMap>(
        std::move(param_clone), std::move(data_clone), out_schema_, fn_);
  } else {
    clone = std::make_unique<ParametrizedMap>(
        std::move(param_clone), std::move(data_clone), out_schema_, bulk_fn_);
  }
  clone->MarkCloneSafe();
  return clone;
}

// ---------------------------------------------------------------------------
// CartesianProduct
// ---------------------------------------------------------------------------

Status CartesianProduct::Open(ExecContext* ctx) {
  MODULARIS_RETURN_NOT_OK(SubOperator::Open(ctx));
  left_.clear();
  arena_.clear();
  right_valid_ = false;
  left_pos_ = 0;
  Tuple t;
  while (child(0)->Next(&t)) {
    left_.push_back(OwnTuple(t, &arena_));
  }
  return child(0)->status();
}

bool CartesianProduct::Next(Tuple* out) {
  while (true) {
    if (right_valid_ && left_pos_ < left_.size()) {
      *out = left_[left_pos_++];
      out->Append(right_current_);
      return true;
    }
    if (!child(1)->Next(&right_current_)) {
      right_valid_ = false;
      return ChildEnd(child(1));
    }
    right_valid_ = true;
    left_pos_ = 0;
  }
}

}  // namespace modularis
