#include "suboperators/basic_ops.h"

#include "suboperators/scan_ops.h"

namespace modularis {

// ---------------------------------------------------------------------------
// NestedMap
// ---------------------------------------------------------------------------

Status NestedMap::Open(ExecContext* ctx) {
  ctx_ = ctx;
  status_ = Status::OK();
  nested_open_ = false;
  return child(0)->Open(ctx);
}

bool NestedMap::AdvanceNested() {
  if (nested_open_) {
    if (!nested_->status().ok()) return Fail(nested_->status());
    Status st = nested_->Close();
    ctx_->PopParams();
    nested_open_ = false;
    if (!st.ok()) return Fail(st);
  }
  Tuple t;
  if (!child(0)->Next(&t)) return ChildEnd(child(0));
  // The input tuple must outlive the whole nested execution; borrowed
  // rows are copied into this operator's arena.
  arena_.clear();
  current_input_ = OwnTuple(t, &arena_);
  ctx_->PushParams(&current_input_);
  Status st = nested_->Open(ctx_);
  if (!st.ok()) {
    ctx_->PopParams();
    return Fail(st);
  }
  nested_open_ = true;
  return true;
}

bool NestedMap::Next(Tuple* out) {
  while (true) {
    if (nested_open_ && nested_->Next(out)) return true;
    if (!AdvanceNested()) return false;
  }
}

bool NestedMap::NextBatch(RowBatch* out) {
  while (true) {
    if (nested_open_ && nested_->NextBatch(out)) return true;
    if (!AdvanceNested()) return false;
  }
}

Status NestedMap::Close() {
  Status st = Status::OK();
  if (nested_open_) {
    st = nested_->Close();
    ctx_->PopParams();
    nested_open_ = false;
  }
  Status cst = child(0)->Close();
  return st.ok() ? cst : st;
}

// ---------------------------------------------------------------------------
// Filter
// ---------------------------------------------------------------------------

bool Filter::NextBatch(RowBatch* out) {
  // Multi-item streams (row_item != 0) cannot batch; the adapter
  // reports the arity error a batch consumer would hit anyway.
  if (row_item_ != 0) return SubOperator::NextBatch(out);
  out->Clear();
  while (child(0)->NextBatch(&in_batch_)) {
    const size_t n = in_batch_.size();
    if (n == 0) continue;
    // Leading all-pass run: if the whole batch passes, forward it
    // zero-copy without touching any row bytes.
    size_t i = 0;
    while (i < n && predicate_->EvalBool(in_batch_.row(i))) ++i;
    if (i == n) {
      out->BorrowFrom(in_batch_);
      return true;
    }
    if (out_rows_ == nullptr ||
        !out_rows_->schema().Equals(in_batch_.schema())) {
      out_rows_ = RowVector::Make(in_batch_.schema());
    } else {
      out_rows_->Clear();
    }
    out_rows_->Reserve(n);
    if (i > 0) out_rows_->AppendRawBatch(in_batch_.data(), i);
    for (++i; i < n; ++i) {
      if (predicate_->EvalBool(in_batch_.row(i))) {
        out_rows_->AppendRaw(in_batch_.row(i).data());
      }
    }
    if (out_rows_->empty()) continue;
    out->Borrow(out_rows_);
    return true;
  }
  return ChildEnd(child(0));
}

// ---------------------------------------------------------------------------
// MapOp
// ---------------------------------------------------------------------------

void MapOp::WriteOutput(const RowRef& in, RowWriter* w) {
  for (size_t c = 0; c < outputs_.size(); ++c) {
    int col = static_cast<int>(c);
    const MapOutput& spec = outputs_[c];
    if (spec.passthrough_col >= 0) {
      const Field& f = in.schema().field(spec.passthrough_col);
      switch (f.type) {
        case AtomType::kInt32:
        case AtomType::kDate:
          w->SetInt32(col, in.GetInt32(spec.passthrough_col));
          break;
        case AtomType::kInt64:
          w->SetInt64(col, in.GetInt64(spec.passthrough_col));
          break;
        case AtomType::kFloat64:
          w->SetFloat64(col, in.GetFloat64(spec.passthrough_col));
          break;
        case AtomType::kString:
          w->SetString(col, in.GetString(spec.passthrough_col));
          break;
      }
      continue;
    }
    Item v = spec.expr->Eval(in);
    switch (out_schema_.field(c).type) {
      case AtomType::kInt32:
      case AtomType::kDate:
        w->SetInt32(col, static_cast<int32_t>(v.i64()));
        break;
      case AtomType::kInt64:
        w->SetInt64(col, v.is_f64() ? static_cast<int64_t>(v.f64()) : v.i64());
        break;
      case AtomType::kFloat64:
        w->SetFloat64(col, v.AsDouble());
        break;
      case AtomType::kString:
        w->SetString(col, v.str());
        break;
    }
  }
}

bool MapOp::Next(Tuple* out) {
  Tuple t;
  if (!child(0)->Next(&t)) return ChildEnd(child(0));
  RowWriter w(scratch_->mutable_row(0), &scratch_->schema());
  WriteOutput(t[row_item_].row(), &w);
  out->clear();
  out->push_back(Item(scratch_->row(0)));
  return true;
}

bool MapOp::NextBatch(RowBatch* out) {
  if (row_item_ != 0) return SubOperator::NextBatch(out);
  out->Clear();
  while (child(0)->NextBatch(&in_batch_)) {
    const size_t n = in_batch_.size();
    if (n == 0) continue;
    if (out_rows_ == nullptr) {
      out_rows_ = RowVector::Make(out_schema_);
    } else {
      out_rows_->Clear();
    }
    out_rows_->Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      RowWriter w = out_rows_->AppendRow();
      WriteOutput(in_batch_.row(i), &w);
    }
    out->Borrow(out_rows_);
    return true;
  }
  return ChildEnd(child(0));
}

// ---------------------------------------------------------------------------
// ParametrizedMap
// ---------------------------------------------------------------------------

Status ParametrizedMap::Open(ExecContext* ctx) {
  MODULARIS_RETURN_NOT_OK(SubOperator::Open(ctx));
  scratch_ = RowVector::Make(out_schema_);
  scratch_->AppendRow();
  bulk_.reset();
  bulk_pos_ = 0;
  Tuple t;
  if (!child(0)->Next(&t)) {
    if (!child(0)->status().ok()) return child(0)->status();
    return Status::InvalidArgument(
        "ParametrizedMap: parameter upstream yielded no tuple");
  }
  param_arena_.clear();
  param_ = OwnTuple(t, &param_arena_);
  return Status::OK();
}

bool ParametrizedMap::Next(Tuple* out) {
  while (true) {
    RowRef in;
    if (bulk_ != nullptr && bulk_pos_ < bulk_->size()) {
      in = bulk_->row(bulk_pos_++);
    } else {
      Tuple t;
      if (!child(1)->Next(&t)) return ChildEnd(child(1));
      if (bulk_fn_ != nullptr && t[0].is_collection()) {
        // Fused: transform the whole collection in one pass.
        out->clear();
        out->push_back(Item(bulk_fn_(param_, *t[0].collection())));
        return true;
      }
      if (t[0].is_collection()) {
        bulk_ = t[0].collection();
        bulk_pos_ = 0;
        continue;
      }
      if (!t[0].is_row()) {
        return Fail(Status::InvalidArgument(
            "ParametrizedMap expects rows or collections, got " +
            t[0].ToString()));
      }
      in = t[0].row();
    }
    if (fn_ == nullptr) {
      return Fail(Status::InvalidArgument(
          "ParametrizedMap: bulk-only form received a record stream"));
    }
    RowWriter w(scratch_->mutable_row(0), &scratch_->schema());
    fn_(param_, in, &w);
    out->clear();
    out->push_back(Item(scratch_->row(0)));
    return true;
  }
}

bool ParametrizedMap::NextBatch(RowBatch* out) {
  // Bulk-only form: the default adapter forwards the bulk_fn_ collection
  // outputs of Next() zero-copy.
  if (fn_ == nullptr) return SubOperator::NextBatch(out);
  out->Clear();
  auto transform = [this](const uint8_t* base, size_t n,
                          const Schema& schema) {
    if (out_rows_ == nullptr) {
      out_rows_ = RowVector::Make(out_schema_);
    } else {
      out_rows_->Clear();
    }
    out_rows_->Reserve(n);
    const uint32_t stride = schema.row_size();
    for (size_t i = 0; i < n; ++i, base += stride) {
      RowWriter w = out_rows_->AppendRow();
      fn_(param_, RowRef(base, &schema), &w);
    }
  };
  // Flush rows of a collection partially consumed through Next().
  if (bulk_ != nullptr && bulk_pos_ < bulk_->size()) {
    transform(bulk_->data() + bulk_pos_ * bulk_->row_size(),
              bulk_->size() - bulk_pos_, bulk_->schema());
    bulk_pos_ = bulk_->size();
    out->Borrow(out_rows_);
    return true;
  }
  while (child(1)->NextBatch(&in_batch_)) {
    if (in_batch_.empty()) continue;
    transform(in_batch_.data(), in_batch_.size(), in_batch_.schema());
    out->Borrow(out_rows_);
    return true;
  }
  return ChildEnd(child(1));
}

// ---------------------------------------------------------------------------
// CartesianProduct
// ---------------------------------------------------------------------------

Status CartesianProduct::Open(ExecContext* ctx) {
  MODULARIS_RETURN_NOT_OK(SubOperator::Open(ctx));
  left_.clear();
  arena_.clear();
  right_valid_ = false;
  left_pos_ = 0;
  Tuple t;
  while (child(0)->Next(&t)) {
    left_.push_back(OwnTuple(t, &arena_));
  }
  return child(0)->status();
}

bool CartesianProduct::Next(Tuple* out) {
  while (true) {
    if (right_valid_ && left_pos_ < left_.size()) {
      *out = left_[left_pos_++];
      out->Append(right_current_);
      return true;
    }
    if (!child(1)->Next(&right_current_)) {
      right_valid_ = false;
      return ChildEnd(child(1));
    }
    right_valid_ = true;
    left_pos_ = 0;
  }
}

}  // namespace modularis
