#include "suboperators/agg_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <queue>

#include "suboperators/partition_ops.h"
#include "suboperators/radix.h"

namespace modularis {

// ---------------------------------------------------------------------------
// I64StateMap
// ---------------------------------------------------------------------------

void I64StateMap::Clear() {
  keys_.clear();
  vals_.clear();
  used_.clear();
  mask_ = 0;
  size_ = 0;
  rehashes_ = 0;
}

void I64StateMap::Rehash(size_t cap) {
  if (size_ > 0) ++rehashes_;  // live entries move: a real mid-use rehash
  std::vector<int64_t> old_keys = std::move(keys_);
  std::vector<uint32_t> old_vals = std::move(vals_);
  std::vector<uint8_t> old_used = std::move(used_);
  keys_.assign(cap, 0);
  vals_.assign(cap, 0);
  used_.assign(cap, 0);
  mask_ = cap - 1;
  for (size_t i = 0; i < old_keys.size(); ++i) {
    if (!old_used[i]) continue;
    size_t slot = MixHash64(static_cast<uint64_t>(old_keys[i])) & mask_;
    while (used_[slot]) slot = (slot + 1) & mask_;
    keys_[slot] = old_keys[i];
    vals_[slot] = old_vals[i];
    used_[slot] = 1;
  }
}

void I64StateMap::Grow() {
  Rehash(keys_.empty() ? 1024 : keys_.size() * 2);
}

void I64StateMap::Reserve(size_t keys) {
  size_t cap = 1024;
  while (keys * 10 >= cap * 7) cap *= 2;
  if (cap > keys_.size()) Rehash(cap);
}

uint32_t I64StateMap::FindOrInsert(int64_t key, bool* inserted) {
  if (keys_.empty() || size_ * 10 >= keys_.size() * 7) Grow();
  size_t slot = MixHash64(static_cast<uint64_t>(key)) & mask_;
  while (used_[slot]) {
    if (keys_[slot] == key) {
      *inserted = false;
      return vals_[slot];
    }
    slot = (slot + 1) & mask_;
  }
  keys_[slot] = key;
  vals_[slot] = static_cast<uint32_t>(size_);
  used_[slot] = 1;
  *inserted = true;
  return static_cast<uint32_t>(size_++);
}

// ---------------------------------------------------------------------------
// ByteStateTable
// ---------------------------------------------------------------------------

void ByteStateTable::Clear() {
  slots_.clear();
  arena_.clear();
  mask_ = 0;
  size_ = 0;
  rehashes_ = 0;
}

const uint8_t* ByteStateTable::SlotKey(const Slot& s) const {
  if (s.len_plus1 - 1 <= kInlineBytes) return s.key;
  uint64_t off;
  std::memcpy(&off, s.key, sizeof(off));
  return arena_.data() + off;
}

void ByteStateTable::Rehash(size_t cap) {
  if (size_ > 0) ++rehashes_;
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(cap, Slot{});
  mask_ = cap - 1;
  for (const Slot& s : old) {
    if (s.len_plus1 == 0) continue;
    // Arena offsets are stable, so growth never touches key bytes —
    // slots relocate by their stored hash alone.
    size_t slot = s.hash & mask_;
    while (slots_[slot].len_plus1 != 0) slot = (slot + 1) & mask_;
    slots_[slot] = s;
  }
}

void ByteStateTable::Reserve(size_t keys) {
  size_t cap = 1024;
  while (keys * 10 >= cap * 7) cap *= 2;
  if (cap > slots_.size()) Rehash(cap);
}

uint32_t ByteStateTable::FindOrInsert(const uint8_t* key, uint32_t len,
                                      uint64_t hash, bool* inserted) {
  if (slots_.empty() || size_ * 10 >= slots_.size() * 7) {
    Rehash(slots_.empty() ? 1024 : slots_.size() * 2);
  }
  size_t slot = hash & mask_;
  while (slots_[slot].len_plus1 != 0) {
    const Slot& s = slots_[slot];
    if (s.hash == hash && s.len_plus1 == len + 1 &&
        std::memcmp(SlotKey(s), key, len) == 0) {
      *inserted = false;
      return s.val;
    }
    slot = (slot + 1) & mask_;
  }
  Slot& s = slots_[slot];
  s.hash = hash;
  s.val = static_cast<uint32_t>(size_);
  s.len_plus1 = len + 1;
  if (len <= kInlineBytes) {
    std::memcpy(s.key, key, len);
  } else {
    const uint64_t off = arena_.size();
    arena_.insert(arena_.end(), key, key + len);
    std::memcpy(s.key, &off, sizeof(off));
  }
  *inserted = true;
  return static_cast<uint32_t>(size_++);
}

// ---------------------------------------------------------------------------
// ReduceByKey
// ---------------------------------------------------------------------------

Schema ReduceByKey::MakeOutputSchema(const Schema& in,
                                     const std::vector<int>& key_cols,
                                     const std::vector<AggSpec>& aggs) {
  std::vector<Field> fields;
  fields.reserve(key_cols.size() + aggs.size());
  for (int c : key_cols) fields.push_back(in.field(c));
  for (const AggSpec& a : aggs) {
    fields.push_back(Field{a.name, a.out_type, 0});
  }
  return Schema(std::move(fields));
}

Status ReduceByKey::Open(ExecContext* ctx) {
  MODULARIS_RETURN_NOT_OK(SubOperator::Open(ctx));
  states_ = RowVector::Make(out_schema_);
  i64_map_.Clear();
  byte_table_.Clear();
  keyless_partials_.reset();
  keyless_fill_ = 0;
  consumed_ = false;
  emit_pos_ = 0;

  single_i64_key_ =
      key_cols_.size() == 1 &&
      (in_schema_.field(key_cols_[0]).type == AtomType::kInt64 ||
       in_schema_.field(key_cols_[0]).type == AtomType::kInt32 ||
       in_schema_.field(key_cols_[0]).type == AtomType::kDate);
  if (!single_i64_key_ && !key_cols_.empty()) {
    codec_ = KeyCodec(in_schema_, key_cols_);
    // Fused serialize+hash program for the chunked byte-key kernels.
    // Byte-identical to SerializeKeys + HashKeysSpan by construction.
    key_prog_ = ctx->options.enable_expr_bytecode
                    ? KeyProgram(in_schema_, key_cols_)
                    : KeyProgram();
  }

  // Compile the update plan: direct offsets when every aggregate input is
  // a bare column (the fused/JIT-analog path).
  slots_.clear();
  compiled_ = ctx->options.enable_fusion;
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& a = aggs_[i];
    AggSlot slot;
    slot.kind = a.kind;
    slot.expr = a.input.get();
    slot.dst_offset = out_schema_.offset(key_cols_.size() + i);
    slot.dst_float = a.out_type == AtomType::kFloat64;
    slot.src_col = a.input == nullptr ? -1 : a.input->AsColumnIndex();
    if (slot.src_col >= 0) {
      const Field& f = in_schema_.field(slot.src_col);
      slot.src_offset = in_schema_.offset(slot.src_col);
      slot.src_wide =
          f.type == AtomType::kInt64 || f.type == AtomType::kFloat64;
      slot.src_float = f.type == AtomType::kFloat64;
    } else {
      slot.src_offset = 0;
      slot.src_wide = false;
      slot.src_float = false;
      if (a.input != nullptr) compiled_ = false;
    }
    slots_.push_back(slot);
  }
  return Status::OK();
}

namespace {

inline double LoadNumeric(const uint8_t* row, const void* /*unused*/,
                          uint32_t offset, bool wide, bool is_float) {
  if (is_float) {
    double v;
    std::memcpy(&v, row + offset, sizeof(v));
    return v;
  }
  if (wide) {
    int64_t v;
    std::memcpy(&v, row + offset, sizeof(v));
    return static_cast<double>(v);
  }
  int32_t v;
  std::memcpy(&v, row + offset, sizeof(v));
  return v;
}

inline void StoreNumeric(uint8_t* row, uint32_t offset, bool is_float,
                         double v) {
  if (is_float) {
    std::memcpy(row + offset, &v, sizeof(v));
  } else {
    int64_t i = static_cast<int64_t>(v);
    std::memcpy(row + offset, &i, sizeof(i));
  }
}

inline double LoadState(const uint8_t* row, uint32_t offset, bool is_float) {
  if (is_float) {
    double v;
    std::memcpy(&v, row + offset, sizeof(v));
    return v;
  }
  int64_t i;
  std::memcpy(&i, row + offset, sizeof(i));
  return static_cast<double>(i);
}

}  // namespace

uint32_t ReduceByKey::StateFor(const RowRef& row) {
  bool inserted = false;
  uint32_t state;
  if (single_i64_key_) {
    state = i64_map_.FindOrInsert(KeyAt(row, key_cols_[0]), &inserted);
  } else {
    const uint32_t ks = codec_.key_size();
    key_scratch_.resize(ks);
    codec_.SerializeKey(row, key_scratch_.data());
    state = byte_table_.FindOrInsert(key_scratch_.data(), ks,
                                     HashKeyBytes(key_scratch_.data(), ks),
                                     &inserted);
  }
  if (inserted) InitState(states_.get(), row);
  return state;
}

void ReduceByKey::InitState(RowVector* states, const RowRef& row) const {
  // States are appended densely; the new state index == new row index.
  RowWriter w = states->AppendRow();
  for (size_t i = 0; i < key_cols_.size(); ++i) {
    int c = key_cols_[i];
    int oc = static_cast<int>(i);
    switch (in_schema_.field(c).type) {
      case AtomType::kInt32:
      case AtomType::kDate:
        w.SetInt32(oc, row.GetInt32(c));
        break;
      case AtomType::kInt64:
        w.SetInt64(oc, row.GetInt64(c));
        break;
      case AtomType::kFloat64:
        w.SetFloat64(oc, row.GetFloat64(c));
        break;
      case AtomType::kString:
        w.SetString(oc, row.GetString(c));
        break;
    }
  }
  InitStateAggs(states->mutable_row(states->size() - 1));
}

void ReduceByKey::InitStateAggs(uint8_t* dst) const {
  // Initialize aggregates to their identity; min/max to +/- infinity
  // equivalents so the first update takes effect.
  for (const AggSlot& s : slots_) {
    double init = 0;
    if (s.kind == AggKind::kMin) {
      init = std::numeric_limits<double>::infinity();
    } else if (s.kind == AggKind::kMax) {
      init = -std::numeric_limits<double>::infinity();
    }
    if (s.dst_float) {
      StoreNumeric(dst, s.dst_offset, true, init);
    } else {
      int64_t iv = 0;
      if (s.kind == AggKind::kMin) iv = std::numeric_limits<int64_t>::max();
      if (s.kind == AggKind::kMax) iv = std::numeric_limits<int64_t>::min();
      std::memcpy(dst + s.dst_offset, &iv, sizeof(iv));
    }
  }
}

void ReduceByKey::UpdateState(RowVector* states, uint32_t state,
                              const RowRef& row) {
  UpdateStateRow(states->mutable_row(state), row);
}

void ReduceByKey::UpdateStateRow(uint8_t* dst, const RowRef& row) const {
  for (const AggSlot& s : slots_) {
    double v = 0;
    if (s.kind != AggKind::kCount) {
      if (compiled_ && s.src_col >= 0) {
        v = LoadNumeric(row.data(), nullptr, s.src_offset, s.src_wide,
                        s.src_float);
      } else {
        v = s.expr->Eval(row).AsDouble();
      }
    }
    if (s.dst_float) {
      double cur = LoadState(dst, s.dst_offset, true);
      switch (s.kind) {
        case AggKind::kSum: cur += v; break;
        case AggKind::kCount: cur += 1; break;
        case AggKind::kMin: cur = std::min(cur, v); break;
        case AggKind::kMax: cur = std::max(cur, v); break;
      }
      std::memcpy(dst + s.dst_offset, &cur, sizeof(cur));
    } else {
      int64_t cur;
      std::memcpy(&cur, dst + s.dst_offset, sizeof(cur));
      int64_t iv = static_cast<int64_t>(v);
      switch (s.kind) {
        case AggKind::kSum: cur += iv; break;
        case AggKind::kCount: cur += 1; break;
        case AggKind::kMin: cur = std::min(cur, iv); break;
        case AggKind::kMax: cur = std::max(cur, iv); break;
      }
      std::memcpy(dst + s.dst_offset, &cur, sizeof(cur));
    }
  }
}

void ReduceByKey::Accumulate(const RowRef& row) {
  if (key_cols_.empty()) {
    AccumulateKeylessRow(row);
    return;
  }
  UpdateState(states_.get(), StateFor(row), row);
}

void ReduceByKey::MergeStateRow(uint8_t* dst, const uint8_t* src) const {
  for (const AggSlot& s : slots_) {
    if (s.dst_float) {
      double a = LoadState(dst, s.dst_offset, true);
      double b = LoadState(src, s.dst_offset, true);
      switch (s.kind) {
        case AggKind::kSum:
        case AggKind::kCount: a += b; break;
        case AggKind::kMin: a = std::min(a, b); break;
        case AggKind::kMax: a = std::max(a, b); break;
      }
      std::memcpy(dst + s.dst_offset, &a, sizeof(a));
    } else {
      int64_t a, b;
      std::memcpy(&a, dst + s.dst_offset, sizeof(a));
      std::memcpy(&b, src + s.dst_offset, sizeof(b));
      switch (s.kind) {
        case AggKind::kSum:
        case AggKind::kCount: a += b; break;
        case AggKind::kMin: a = std::min(a, b); break;
        case AggKind::kMax: a = std::max(a, b); break;
      }
      std::memcpy(dst + s.dst_offset, &a, sizeof(a));
    }
  }
}

void ReduceByKey::AggregatePartition(
    const uint8_t* rows, size_t n, const Schema& schema, const uint32_t* idx,
    RowVector* states, std::vector<uint32_t>* first, I64StateMap* map,
    ByteStateTable* table, std::vector<uint8_t>* key_scratch,
    std::vector<uint64_t>* hash_scratch) const {
  // The partition's row count is a hard upper bound on its distinct keys,
  // so reserving it guarantees zero mid-aggregation rehashes — but on a
  // duplicate-heavy skewed partition (all rows of a hot key in one
  // place) it would also allocate O(rows) slots for a handful of groups.
  // Cap the up-front reservation; a partition with more rows than the
  // cap falls back to (deterministic — table internals never affect the
  // output) geometric growth only if it really holds that many groups.
  constexpr size_t kMaxReserveKeys = size_t{1} << 20;
  const size_t reserve = std::min(n, kMaxReserveKeys);
  const uint32_t stride = schema.row_size();
  if (single_i64_key_) {
    map->Clear();
    map->Reserve(reserve);
    const uint8_t* p = rows;
    for (size_t j = 0; j < n; ++j, p += stride) {
      RowRef row(p, &schema);
      bool inserted = false;
      uint32_t state = map->FindOrInsert(KeyAt(row, key_cols_[0]), &inserted);
      if (inserted) {
        InitState(states, row);
        first->push_back(idx[j]);
      }
      UpdateStateRow(states->mutable_row(state), row);
    }
    return;
  }
  table->Clear();
  table->Reserve(reserve);
  const uint32_t ks = codec_.key_size();
  key_scratch->resize(kKeyChunkRows * ks);
  hash_scratch->resize(kKeyChunkRows);
  RowSpan span{rows, stride, &schema};
  for (size_t base = 0; base < n; base += kKeyChunkRows) {
    const size_t m = std::min(n - base, kKeyChunkRows);
    if (key_prog_.valid()) {
      key_prog_.SerializeAndHash(span, base, m, key_scratch->data(),
                                 hash_scratch->data());
    } else {
      codec_.SerializeKeys(span, base, m, key_scratch->data());
      HashKeysSpan(key_scratch->data(), m, ks, hash_scratch->data());
    }
    for (size_t i = 0; i < m; ++i) {
      bool inserted = false;
      uint32_t state = table->FindOrInsert(key_scratch->data() + i * ks, ks,
                                           (*hash_scratch)[i], &inserted);
      RowRef row(rows + (base + i) * stride, &schema);
      if (inserted) {
        InitState(states, row);
        first->push_back(idx[base + i]);
      }
      UpdateStateRow(states->mutable_row(state), row);
    }
  }
}

Status ReduceByKey::ConsumeAllParallel(const RowVectorPtr& input,
                                       int workers) {
  const size_t n = input->size();
  const Schema& schema = input->schema();
  const uint32_t stride = input->row_size();
  constexpr int kFanout = 1 << kPartitionBits;
  constexpr int kPidShift = 64 - kPartitionBits;

  // Phase 1: per-row partition ids over static contiguous ranges. The id
  // is a pure function of the group key (hash HIGH bits; the state
  // tables use the low bits), so the assignment never depends on the
  // worker count.
  std::vector<uint8_t> pids(n);
  std::vector<size_t> bounds = SplitRows(n, workers);
  std::vector<std::vector<int64_t>> wcounts(
      workers, std::vector<int64_t>(kFanout, 0));
  MODULARIS_RETURN_NOT_OK(ParallelFor(ctx_, workers, [&](int w) -> Status {
    int64_t* counts = wcounts[w].data();
    if (single_i64_key_) {
      const uint8_t* p = input->data() + bounds[w] * stride;
      for (size_t i = bounds[w]; i < bounds[w + 1]; ++i, p += stride) {
        const uint64_t key =
            static_cast<uint64_t>(KeyAt(RowRef(p, &schema), key_cols_[0]));
        const uint8_t pid = static_cast<uint8_t>(MixHash64(key) >> kPidShift);
        pids[i] = pid;
        ++counts[pid];
      }
    } else {
      const uint32_t ks = codec_.key_size();
      std::vector<uint8_t> keys(kKeyChunkRows * ks);
      std::vector<uint64_t> hashes(kKeyChunkRows);
      RowSpan span{input->data(), stride, &schema};
      for (size_t base = bounds[w]; base < bounds[w + 1];
           base += kKeyChunkRows) {
        const size_t m = std::min(bounds[w + 1] - base, kKeyChunkRows);
        if (key_prog_.valid()) {
          key_prog_.SerializeAndHash(span, base, m, keys.data(),
                                     hashes.data());
        } else {
          codec_.SerializeKeys(span, base, m, keys.data());
          HashKeysSpan(keys.data(), m, ks, hashes.data());
        }
        for (size_t i = 0; i < m; ++i) {
          const uint8_t pid = static_cast<uint8_t>(hashes[i] >> kPidShift);
          pids[base + i] = pid;
          ++counts[pid];
        }
      }
    }
    return Status::OK();
  }));

  // Phase 2: prefix offsets + write-combining scatter into one flat
  // pre-sized buffer (rows and their original indices side by side).
  // Static ranges at prefix offsets replay the input order, so every
  // partition holds its rows in ascending original order — the property
  // that makes per-group float SUM accumulate exactly like one thread.
  std::vector<size_t> prefix(kFanout + 1, 0);
  for (int p = 0; p < kFanout; ++p) {
    int64_t total = 0;
    for (int w = 0; w < workers; ++w) total += wcounts[w][p];
    prefix[p + 1] = prefix[p] + static_cast<size_t>(total);
  }
  std::vector<std::vector<size_t>> offsets(workers,
                                           std::vector<size_t>(kFanout, 0));
  for (int p = 0; p < kFanout; ++p) {
    size_t off = prefix[p];
    for (int w = 0; w < workers; ++w) {
      offsets[w][p] = off;
      off += static_cast<size_t>(wcounts[w][p]);
    }
  }
  RowVectorPtr scat = RowVector::Make(schema);
  scat->ResizeRowsUninitialized(n);
  std::vector<uint32_t> idx(n);
  MODULARIS_RETURN_NOT_OK(ParallelFor(ctx_, workers, [&](int w) -> Status {
    ScatterSpanByPidWc(input->data() + bounds[w] * stride,
                       bounds[w + 1] - bounds[w], stride,
                       pids.data() + bounds[w], kFanout, bounds[w],
                       scat->mutable_data(), idx.data(), &offsets[w]);
    return Status::OK();
  }));

  // Phase 3: partition-owned aggregation. Each partition is claimed by
  // exactly one worker (dynamic claiming — ownership is exclusive, so
  // the schedule costs no determinism) and aggregated in its original
  // row order with zero cross-thread merging. Tables are reserved from
  // the partition's row count, so aggregation never rehashes.
  std::vector<RowVectorPtr> part_states(kFanout);
  std::vector<std::vector<uint32_t>> part_first(kFanout);
  std::vector<int64_t> wrehash(workers, 0);
  MorselCursor cursor(kFanout, 1, ctx_->cancel);
  MODULARIS_RETURN_NOT_OK(ParallelFor(ctx_, workers, [&](int w) -> Status {
    I64StateMap map;
    ByteStateTable table;
    std::vector<uint8_t> keys;
    std::vector<uint64_t> hashes;
    size_t begin = 0, count = 0;
    while (cursor.Claim(&begin, &count)) {
      for (size_t p = begin; p < begin + count; ++p) {
        const size_t rows_p = prefix[p + 1] - prefix[p];
        if (rows_p == 0) continue;
        RowVectorPtr states = RowVector::Make(out_schema_);
        AggregatePartition(scat->data() + prefix[p] * stride, rows_p, schema,
                           idx.data() + prefix[p], states.get(),
                           &part_first[p], &map, &table, &keys, &hashes);
        wrehash[w] += single_i64_key_ ? map.rehashes() : table.rehashes();
        part_states[p] = std::move(states);
      }
    }
    return Status::OK();
  }));

  // Phase 4: emit groups in global first-occurrence order. Each
  // partition discovers its groups in ascending first-occurrence index
  // (its rows are in original order), so a K-way merge over the
  // per-partition runs replays the serial emission order exactly.
  size_t total_groups = 0;
  for (int p = 0; p < kFanout; ++p) total_groups += part_first[p].size();
  states_->Reserve(total_groups);
  using Head = std::pair<uint32_t, uint32_t>;  // (first index, partition)
  std::priority_queue<Head, std::vector<Head>, std::greater<Head>> heap;
  std::vector<uint32_t> pos(kFanout, 0);
  int used_partitions = 0;
  for (int p = 0; p < kFanout; ++p) {
    if (!part_first[p].empty()) {
      heap.emplace(part_first[p][0], static_cast<uint32_t>(p));
      ++used_partitions;
    }
  }
  while (!heap.empty()) {
    const uint32_t p = heap.top().second;
    heap.pop();
    states_->AppendRaw(part_states[p]->row(pos[p]).data());
    if (++pos[p] < part_first[p].size()) {
      heap.emplace(part_first[p][pos[p]], p);
    }
  }
  int64_t rehashes = 0;
  for (int w = 0; w < workers; ++w) rehashes += wrehash[w];
  AddStatCounter("reduce.rehash", rehashes);
  AddStatCounter("parallel.reduce.partitions", used_partitions);
  return Status::OK();
}

Status ReduceByKey::ConsumeKeylessParallel(const RowVectorPtr& input,
                                           int workers) {
  const size_t n = input->size();
  const Schema& schema = input->schema();
  const uint32_t stride = input->row_size();
  const size_t chunks = (n + kKeylessChunkRows - 1) / kKeylessChunkRows;
  keyless_partials_ = RowVector::Make(out_schema_);
  // Zero-filled like the streaming path's AppendRow, so padding bytes
  // match byte-for-byte.
  keyless_partials_->ResizeRows(chunks);
  MorselCursor cursor(chunks, 1, ctx_->cancel);
  MODULARIS_RETURN_NOT_OK(ParallelFor(ctx_, workers, [&](int) -> Status {
    size_t begin = 0, count = 0;
    while (cursor.Claim(&begin, &count)) {
      for (size_t c = begin; c < begin + count; ++c) {
        uint8_t* dst = keyless_partials_->mutable_row(c);
        InitStateAggs(dst);
        const size_t lo = c * kKeylessChunkRows;
        const size_t hi = std::min(n, lo + kKeylessChunkRows);
        const uint8_t* p = input->data() + lo * stride;
        for (size_t i = lo; i < hi; ++i, p += stride) {
          UpdateStateRow(dst, RowRef(p, &schema));
        }
      }
    }
    return Status::OK();
  }));
  return Status::OK();
}

void ReduceByKey::AccumulateKeylessRow(const RowRef& row) {
  if (keyless_fill_ == 0) {
    if (keyless_partials_ == nullptr) {
      keyless_partials_ = RowVector::Make(out_schema_);
    }
    keyless_partials_->AppendRow();
    InitStateAggs(
        keyless_partials_->mutable_row(keyless_partials_->size() - 1));
  }
  UpdateStateRow(keyless_partials_->mutable_row(keyless_partials_->size() - 1),
                 row);
  if (++keyless_fill_ == kKeylessChunkRows) keyless_fill_ = 0;
}

void ReduceByKey::FinalizeKeyless() {
  if (keyless_partials_ == nullptr || keyless_partials_->empty()) return;
  PairwiseCombineRows(
      keyless_partials_->mutable_data(), keyless_partials_->size(),
      keyless_partials_->row_size(),
      [this](uint8_t* dst, const uint8_t* src) { MergeStateRow(dst, src); });
  states_->AppendRaw(keyless_partials_->data());
}

void ReduceByKey::AccumulateSpan(const uint8_t* rows, size_t n,
                                 const Schema& schema) {
  const uint32_t stride = schema.row_size();
  if (key_cols_.empty()) {
    const uint8_t* p = rows;
    for (size_t i = 0; i < n; ++i, p += stride) {
      AccumulateKeylessRow(RowRef(p, &schema));
    }
    return;
  }
  if (single_i64_key_) {
    const uint8_t* p = rows;
    for (size_t i = 0; i < n; ++i, p += stride) {
      Accumulate(RowRef(p, &schema));
    }
    return;
  }
  // Byte keys: the same chunked serialize→hash→probe kernel the parallel
  // partitions run, against the operator-owned table.
  const uint32_t ks = codec_.key_size();
  key_scratch_.resize(kKeyChunkRows * ks);
  hash_scratch_.resize(kKeyChunkRows);
  RowSpan span{rows, stride, &schema};
  for (size_t base = 0; base < n; base += kKeyChunkRows) {
    const size_t m = std::min(n - base, kKeyChunkRows);
    if (key_prog_.valid()) {
      key_prog_.SerializeAndHash(span, base, m, key_scratch_.data(),
                                 hash_scratch_.data());
    } else {
      codec_.SerializeKeys(span, base, m, key_scratch_.data());
      HashKeysSpan(key_scratch_.data(), m, ks, hash_scratch_.data());
    }
    for (size_t i = 0; i < m; ++i) {
      bool inserted = false;
      uint32_t state = byte_table_.FindOrInsert(
          key_scratch_.data() + i * ks, ks, hash_scratch_[i], &inserted);
      RowRef row(rows + (base + i) * stride, &schema);
      if (inserted) InitState(states_.get(), row);
      UpdateStateRow(states_->mutable_row(state), row);
    }
  }
}

void ReduceByKey::AccumulateBulk(const RowVector& rows) {
  AccumulateSpan(rows.data(), rows.size(), rows.schema());
}

Status ReduceByKey::ConsumeAll() {
  timer_.Bind(ctx_->stats, timer_key_);
  ScopedPhase phase(&timer_);
  Status st = ConsumeAllInner();
  // The keyless chunk partials combine through the fixed pairwise tree
  // exactly once, whichever path accumulated them.
  if (st.ok() && key_cols_.empty()) FinalizeKeyless();
  return st;
}

Status ReduceByKey::ConsumeAllInner() {
  if (ctx_->options.enable_vectorized) {
    if (ctx_->options.ResolvedNumThreads() > 1) {
      // Partition-owned (keyed) / fixed-chunk-tree (keyless) parallel
      // aggregation covers every key and aggregate shape — float SUM,
      // string and multi-column keys included — so there is no
      // structural serial fallback left on the vectorized path.
      RowVectorPtr input;
      MODULARIS_RETURN_NOT_OK(DrainRecordStream(child(0), &input));
      if (input == nullptr) return Status::OK();
      const int workers = PlanWorkers(input->size(), ctx_->options);
      if (workers <= 1) {
        // Sizing decision (input too small to split), not a fallback.
        AccumulateSpan(input->data(), input->size(), input->schema());
        return Status::OK();
      }
      if (key_cols_.empty()) return ConsumeKeylessParallel(input, workers);
      return ConsumeAllParallel(input, workers);
    }
    // Selective pull: an upstream Filter hands its input batch plus a
    // selection vector, so rejected rows are never compacted just to be
    // aggregated here.
    RowBatch batch;
    while (child(0)->NextBatchSelective(&batch)) {
      if (batch.has_selection()) {
        const size_t n = batch.size();
        for (size_t i = 0; i < n; ++i) Accumulate(batch.row(i));
      } else {
        AccumulateSpan(batch.data(), batch.size(), batch.schema());
      }
    }
    return child(0)->status();
  }
  if (ctx_->options.ResolvedNumThreads() > 1) {
    // Row-at-a-time streams have no packed span to partition.
    NoteSerialFallback(ctx_, "ReduceByKey");
  }
  Tuple t;
  while (child(0)->Next(&t)) {
    const Item& item = t[0];
    if (item.is_collection()) {
      AccumulateBulk(*item.collection());
    } else if (item.is_row()) {
      Accumulate(item.row());
    } else {
      return Status::InvalidArgument(
          "ReduceByKey expects rows or collections, got " + item.ToString());
    }
  }
  return child(0)->status();
}

bool ReduceByKey::Next(Tuple* out) {
  if (!consumed_) {
    Status st = ConsumeAll();
    if (!st.ok()) return Fail(st);
    consumed_ = true;
  }
  if (emit_pos_ >= states_->size()) return false;
  out->clear();
  out->push_back(Item(states_->row(emit_pos_++)));
  return true;
}

// ---------------------------------------------------------------------------
// Reduce
// ---------------------------------------------------------------------------

Status Reduce::Open(ExecContext* ctx) {
  emitted_ = false;
  return inner_.Open(ctx);
}

bool Reduce::Next(Tuple* out) {
  if (emitted_) return false;
  if (inner_.Next(out)) {
    emitted_ = true;
    return true;
  }
  if (!inner_.status().ok()) return Fail(inner_.status());
  // Empty input: emit the identity row (count = 0, sums = 0).
  empty_state_ = RowVector::Make(inner_.out_schema());
  empty_state_->AppendRow();
  out->clear();
  out->push_back(Item(empty_state_->row(0)));
  emitted_ = true;
  return true;
}

// ---------------------------------------------------------------------------
// Sort / TopK
// ---------------------------------------------------------------------------

int CompareRows(const RowRef& a, const RowRef& b,
                const std::vector<SortKey>& keys) {
  for (const SortKey& k : keys) {
    int c = 0;
    switch (a.schema().field(k.col).type) {
      case AtomType::kInt32:
      case AtomType::kDate: {
        int32_t x = a.GetInt32(k.col), y = b.GetInt32(k.col);
        c = x < y ? -1 : (x == y ? 0 : 1);
        break;
      }
      case AtomType::kInt64: {
        int64_t x = a.GetInt64(k.col), y = b.GetInt64(k.col);
        c = x < y ? -1 : (x == y ? 0 : 1);
        break;
      }
      case AtomType::kFloat64: {
        // Total order: NaN == NaN, NaN after every non-NaN (last
        // ascending). The naive three-way idiom is UB fuel here — see
        // CompareF64TotalOrder.
        c = CompareF64TotalOrder(a.GetFloat64(k.col), b.GetFloat64(k.col));
        break;
      }
      case AtomType::kString: {
        int r = a.GetString(k.col).compare(b.GetString(k.col));
        c = r < 0 ? -1 : (r == 0 ? 0 : 1);
        break;
      }
    }
    if (c != 0) return k.desc ? -c : c;
  }
  return 0;
}

Status SortOp::Open(ExecContext* ctx) {
  sorted_ = false;
  emit_pos_ = 0;
  return SubOperator::Open(ctx);
}

Status SortOp::ConsumeAndSort(size_t limit) {
  timer_.Bind(ctx_->stats, timer_key_);
  ScopedPhase phase(&timer_);
  rows_ = RowVector::Make(schema_);
  if (ctx_->options.enable_vectorized) {
    // Sort only permutes an index array, so a single durable
    // whole-collection input can be adopted without copying.
    MODULARIS_RETURN_NOT_OK(DrainRecordStreamInto(child(0), &rows_));
  } else {
    Tuple t;
    while (child(0)->Next(&t)) {
      const Item& item = t[0];
      if (item.is_collection()) {
        rows_->AppendAll(*item.collection());
      } else if (item.is_row()) {
        rows_->AppendRaw(item.row().data());
      } else {
        return Status::InvalidArgument(
            "Sort expects rows or collections, got " + item.ToString());
      }
    }
  }
  MODULARIS_RETURN_NOT_OK(child(0)->status());
  const size_t n = rows_->size();
  order_.resize(n);
  for (uint32_t i = 0; i < order_.size(); ++i) order_[i] = i;
  const size_t cap = limit < n ? limit : n;
  emit_limit_ = cap;
  if (n < 2 || cap == 0) return Status::OK();

  // Strict TOTAL order: the NaN-safe key comparator, tie-broken by the
  // original row index. At one thread this reproduces stable_sort's
  // order exactly; across threads it makes the merged order independent
  // of the run partitioning — N workers byte-equal to 1 by construction.
  auto less = [this](uint32_t x, uint32_t y) {
    int c = CompareRows(rows_->row(x), rows_->row(y), keys_);
    return c != 0 ? c < 0 : x < y;
  };

  int workers = 1;
  if (ctx_->options.enable_vectorized) {
    workers = PlanWorkers(n, ctx_->options);
  } else if (ctx_->options.ResolvedNumThreads() > 1) {
    // Row-at-a-time mode is the serial correctness oracle; it has no
    // parallel path (structural, like the other parallel operators).
    NoteSerialFallback(ctx_, "Sort");
  }
  if (workers <= 1) {
    if (cap < n) {
      // Bounded selection: heap-select the top `cap` (O(n log cap))
      // instead of fully sorting the input just to emit `cap` rows.
      std::partial_sort(order_.begin(), order_.begin() + cap, order_.end(),
                        less);
    } else {
      std::sort(order_.begin(), order_.end(), less);
    }
    return Status::OK();
  }

  // Morsel-parallel run formation: each worker orders its static
  // contiguous range (its top-`cap` prefix under a limit) by the total
  // order.
  std::vector<size_t> bounds = SplitRows(n, workers);
  MODULARIS_RETURN_NOT_OK(ParallelFor(ctx_, workers, [&](int w) -> Status {
    auto first = order_.begin() + bounds[w];
    auto last = order_.begin() + bounds[w + 1];
    const size_t run_n = bounds[w + 1] - bounds[w];
    if (cap < run_n) {
      std::partial_sort(first, first + cap, last, less);
    } else {
      std::sort(first, last, less);
    }
    return Status::OK();
  }));
  // K-way loser-tree merge of the per-worker runs. Under a limit each
  // run descriptor is clipped to its top-`cap` prefix; popping `cap`
  // elements total can take at most `cap` from any one run, so the
  // unsorted tails are never read.
  std::vector<uint32_t> merged(cap);
  MergeIndexRuns(BuildIndexRuns(order_.data(), bounds, cap), cap, less,
                 merged.data());
  order_ = std::move(merged);
  AddStatCounter("parallel.sort.runs", workers);
  return Status::OK();
}

bool SortOp::EnsureSorted() {
  if (sorted_) return true;
  Status st = ConsumeAndSort(SortLimit());
  if (!st.ok()) return Fail(std::move(st));
  sorted_ = true;
  return true;
}

bool SortOp::Next(Tuple* out) {
  if (!EnsureSorted()) return false;
  if (emit_pos_ >= emit_limit_) return false;
  out->clear();
  out->push_back(Item(rows_->row(order_[emit_pos_++])));
  return true;
}

bool SortOp::NextBatch(RowBatch* out) {
  if (!EnsureSorted()) return false;
  out->Clear();
  if (emit_pos_ >= emit_limit_) return false;
  const size_t n = std::min(RowBatch::kDefaultRows, emit_limit_ - emit_pos_);
  RowVector* sink = out->Scratch(schema_);
  const uint32_t stride = rows_->row_size();
  const uint8_t* src = rows_->data();
  uint8_t* dst = sink->AppendUninitialized(n);
  for (size_t i = 0; i < n; ++i, dst += stride) {
    std::memcpy(dst,
                src + static_cast<size_t>(order_[emit_pos_ + i]) * stride,
                stride);
  }
  emit_pos_ += n;
  out->SealScratch();
  return true;
}

// ---------------------------------------------------------------------------
// GroupByPid
// ---------------------------------------------------------------------------

Status GroupByPid::GroupAll() {
  Tuple t;
  while (child(0)->Next(&t)) {
    if (t.size() < 2 || !t[0].is_i64() || !t[1].is_collection()) {
      return Status::InvalidArgument(
          "GroupBy expects ⟨pid, collection⟩ tuples, got " + t.ToString());
    }
    int64_t pid = t[0].i64();
    const RowVectorPtr& data = t[1].collection();
    auto it = groups_.find(pid);
    if (it == groups_.end()) {
      // First chunk of this pid: share it without copying.
      groups_[pid] = data;
    } else {
      if (it->second.use_count() > 1) {
        // Copy-on-write before merging into a shared collection.
        RowVectorPtr merged = RowVector::Make(it->second->schema());
        merged->AppendAll(*it->second);
        it->second = std::move(merged);
      }
      it->second->AppendAll(*data);
    }
  }
  MODULARIS_RETURN_NOT_OK(child(0)->status());
  grouped_ = true;
  emit_it_ = groups_.begin();
  return Status::OK();
}

bool GroupByPid::Next(Tuple* out) {
  if (!grouped_) {
    Status st = GroupAll();
    if (!st.ok()) return Fail(std::move(st));
  }
  if (emit_it_ == groups_.end()) return false;
  out->clear();
  out->push_back(Item(emit_it_->first));
  out->push_back(Item(emit_it_->second));
  ++emit_it_;
  return true;
}

bool GroupByPid::NextBatch(RowBatch* out) {
  if (!grouped_) {
    Status st = GroupAll();
    if (!st.ok()) return Fail(std::move(st));
  }
  out->Clear();
  while (emit_it_ != groups_.end()) {
    RowVectorPtr data = emit_it_->second;
    ++emit_it_;
    if (data->empty()) continue;
    out->Borrow(std::move(data));
    out->MarkDurable();  // merged groups are not mutated after grouping
    return true;
  }
  return false;
}

}  // namespace modularis
