#include "suboperators/agg_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <queue>

#include "storage/spill.h"
#include "suboperators/partition_ops.h"
#include "suboperators/radix.h"

namespace modularis {

// ---------------------------------------------------------------------------
// I64StateMap
// ---------------------------------------------------------------------------

void I64StateMap::Clear() {
  keys_.clear();
  vals_.clear();
  used_.clear();
  mask_ = 0;
  size_ = 0;
  rehashes_ = 0;
}

void I64StateMap::Rehash(size_t cap) {
  if (size_ > 0) ++rehashes_;  // live entries move: a real mid-use rehash
  std::vector<int64_t> old_keys = std::move(keys_);
  std::vector<uint32_t> old_vals = std::move(vals_);
  std::vector<uint8_t> old_used = std::move(used_);
  keys_.assign(cap, 0);
  vals_.assign(cap, 0);
  used_.assign(cap, 0);
  mask_ = cap - 1;
  for (size_t i = 0; i < old_keys.size(); ++i) {
    if (!old_used[i]) continue;
    size_t slot = MixHash64(static_cast<uint64_t>(old_keys[i])) & mask_;
    while (used_[slot]) slot = (slot + 1) & mask_;
    keys_[slot] = old_keys[i];
    vals_[slot] = old_vals[i];
    used_[slot] = 1;
  }
}

void I64StateMap::Grow() {
  Rehash(keys_.empty() ? 1024 : keys_.size() * 2);
}

void I64StateMap::Reserve(size_t keys) {
  size_t cap = 1024;
  while (keys * 10 >= cap * 7) cap *= 2;
  if (cap > keys_.size()) Rehash(cap);
}

uint32_t I64StateMap::FindOrInsert(int64_t key, bool* inserted) {
  if (keys_.empty() || size_ * 10 >= keys_.size() * 7) Grow();
  size_t slot = MixHash64(static_cast<uint64_t>(key)) & mask_;
  while (used_[slot]) {
    if (keys_[slot] == key) {
      *inserted = false;
      return vals_[slot];
    }
    slot = (slot + 1) & mask_;
  }
  keys_[slot] = key;
  vals_[slot] = static_cast<uint32_t>(size_);
  used_[slot] = 1;
  *inserted = true;
  return static_cast<uint32_t>(size_++);
}

// ---------------------------------------------------------------------------
// ByteStateTable
// ---------------------------------------------------------------------------

void ByteStateTable::Clear() {
  slots_.clear();
  arena_.clear();
  mask_ = 0;
  size_ = 0;
  rehashes_ = 0;
}

const uint8_t* ByteStateTable::SlotKey(const Slot& s) const {
  if (s.len_plus1 - 1 <= kInlineBytes) return s.key;
  uint64_t off;
  std::memcpy(&off, s.key, sizeof(off));
  return arena_.data() + off;
}

void ByteStateTable::Rehash(size_t cap) {
  if (size_ > 0) ++rehashes_;
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(cap, Slot{});
  mask_ = cap - 1;
  for (const Slot& s : old) {
    if (s.len_plus1 == 0) continue;
    // Arena offsets are stable, so growth never touches key bytes —
    // slots relocate by their stored hash alone.
    size_t slot = s.hash & mask_;
    while (slots_[slot].len_plus1 != 0) slot = (slot + 1) & mask_;
    slots_[slot] = s;
  }
}

void ByteStateTable::Reserve(size_t keys) {
  size_t cap = 1024;
  while (keys * 10 >= cap * 7) cap *= 2;
  if (cap > slots_.size()) Rehash(cap);
}

uint32_t ByteStateTable::FindOrInsert(const uint8_t* key, uint32_t len,
                                      uint64_t hash, bool* inserted) {
  if (slots_.empty() || size_ * 10 >= slots_.size() * 7) {
    Rehash(slots_.empty() ? 1024 : slots_.size() * 2);
  }
  size_t slot = hash & mask_;
  while (slots_[slot].len_plus1 != 0) {
    const Slot& s = slots_[slot];
    if (s.hash == hash && s.len_plus1 == len + 1 &&
        std::memcmp(SlotKey(s), key, len) == 0) {
      *inserted = false;
      return s.val;
    }
    slot = (slot + 1) & mask_;
  }
  Slot& s = slots_[slot];
  s.hash = hash;
  s.val = static_cast<uint32_t>(size_);
  s.len_plus1 = len + 1;
  if (len <= kInlineBytes) {
    std::memcpy(s.key, key, len);
  } else {
    const uint64_t off = arena_.size();
    arena_.insert(arena_.end(), key, key + len);
    std::memcpy(s.key, &off, sizeof(off));
  }
  *inserted = true;
  return static_cast<uint32_t>(size_++);
}

size_t ByteStateTable::byte_size() const {
  return slots_.capacity() * sizeof(Slot) + arena_.capacity();
}

// ---------------------------------------------------------------------------
// ReduceByKey
// ---------------------------------------------------------------------------

Schema ReduceByKey::MakeOutputSchema(const Schema& in,
                                     const std::vector<int>& key_cols,
                                     const std::vector<AggSpec>& aggs) {
  std::vector<Field> fields;
  fields.reserve(key_cols.size() + aggs.size());
  for (int c : key_cols) fields.push_back(in.field(c));
  for (const AggSpec& a : aggs) {
    fields.push_back(Field{a.name, a.out_type, 0});
  }
  return Schema(std::move(fields));
}

Status ReduceByKey::Open(ExecContext* ctx) {
  MODULARIS_RETURN_NOT_OK(SubOperator::Open(ctx));
  states_ = RowVector::Make(out_schema_);
  i64_map_.Clear();
  byte_table_.Clear();
  keyless_partials_.reset();
  keyless_fill_ = 0;
  consumed_ = false;
  emit_pos_ = 0;
  mem_charge_.Bind(ctx->budget);

  single_i64_key_ =
      key_cols_.size() == 1 &&
      (in_schema_.field(key_cols_[0]).type == AtomType::kInt64 ||
       in_schema_.field(key_cols_[0]).type == AtomType::kInt32 ||
       in_schema_.field(key_cols_[0]).type == AtomType::kDate);
  if (!single_i64_key_ && !key_cols_.empty()) {
    codec_ = KeyCodec(in_schema_, key_cols_);
    // Fused serialize+hash program for the chunked byte-key kernels.
    // Byte-identical to SerializeKeys + HashKeysSpan by construction.
    key_prog_ = ctx->options.enable_expr_bytecode
                    ? KeyProgram(in_schema_, key_cols_)
                    : KeyProgram();
  }

  // Compile the update plan: direct offsets when every aggregate input is
  // a bare column (the fused/JIT-analog path).
  slots_.clear();
  compiled_ = ctx->options.enable_fusion;
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& a = aggs_[i];
    AggSlot slot;
    slot.kind = a.kind;
    slot.expr = a.input.get();
    slot.dst_offset = out_schema_.offset(key_cols_.size() + i);
    slot.dst_float = a.out_type == AtomType::kFloat64;
    slot.src_col = a.input == nullptr ? -1 : a.input->AsColumnIndex();
    if (slot.src_col >= 0) {
      const Field& f = in_schema_.field(slot.src_col);
      slot.src_offset = in_schema_.offset(slot.src_col);
      slot.src_wide =
          f.type == AtomType::kInt64 || f.type == AtomType::kFloat64;
      slot.src_float = f.type == AtomType::kFloat64;
    } else {
      slot.src_offset = 0;
      slot.src_wide = false;
      slot.src_float = false;
      if (a.input != nullptr) compiled_ = false;
    }
    slots_.push_back(slot);
  }
  return Status::OK();
}

namespace {

inline double LoadNumeric(const uint8_t* row, const void* /*unused*/,
                          uint32_t offset, bool wide, bool is_float) {
  if (is_float) {
    double v;
    std::memcpy(&v, row + offset, sizeof(v));
    return v;
  }
  if (wide) {
    int64_t v;
    std::memcpy(&v, row + offset, sizeof(v));
    return static_cast<double>(v);
  }
  int32_t v;
  std::memcpy(&v, row + offset, sizeof(v));
  return v;
}

inline void StoreNumeric(uint8_t* row, uint32_t offset, bool is_float,
                         double v) {
  if (is_float) {
    std::memcpy(row + offset, &v, sizeof(v));
  } else {
    int64_t i = static_cast<int64_t>(v);
    std::memcpy(row + offset, &i, sizeof(i));
  }
}

inline double LoadState(const uint8_t* row, uint32_t offset, bool is_float) {
  if (is_float) {
    double v;
    std::memcpy(&v, row + offset, sizeof(v));
    return v;
  }
  int64_t i;
  std::memcpy(&i, row + offset, sizeof(i));
  return static_cast<double>(i);
}

}  // namespace

uint32_t ReduceByKey::StateFor(const RowRef& row) {
  bool inserted = false;
  uint32_t state;
  if (single_i64_key_) {
    state = i64_map_.FindOrInsert(KeyAt(row, key_cols_[0]), &inserted);
  } else {
    const uint32_t ks = codec_.key_size();
    key_scratch_.resize(ks);
    codec_.SerializeKey(row, key_scratch_.data());
    state = byte_table_.FindOrInsert(key_scratch_.data(), ks,
                                     HashKeyBytes(key_scratch_.data(), ks),
                                     &inserted);
  }
  if (inserted) InitState(states_.get(), row);
  return state;
}

void ReduceByKey::InitState(RowVector* states, const RowRef& row) const {
  // States are appended densely; the new state index == new row index.
  RowWriter w = states->AppendRow();
  for (size_t i = 0; i < key_cols_.size(); ++i) {
    int c = key_cols_[i];
    int oc = static_cast<int>(i);
    switch (in_schema_.field(c).type) {
      case AtomType::kInt32:
      case AtomType::kDate:
        w.SetInt32(oc, row.GetInt32(c));
        break;
      case AtomType::kInt64:
        w.SetInt64(oc, row.GetInt64(c));
        break;
      case AtomType::kFloat64:
        w.SetFloat64(oc, row.GetFloat64(c));
        break;
      case AtomType::kString:
        w.SetString(oc, row.GetString(c));
        break;
    }
  }
  InitStateAggs(states->mutable_row(states->size() - 1));
}

void ReduceByKey::InitStateAggs(uint8_t* dst) const {
  // Initialize aggregates to their identity; min/max to +/- infinity
  // equivalents so the first update takes effect.
  for (const AggSlot& s : slots_) {
    double init = 0;
    if (s.kind == AggKind::kMin) {
      init = std::numeric_limits<double>::infinity();
    } else if (s.kind == AggKind::kMax) {
      init = -std::numeric_limits<double>::infinity();
    }
    if (s.dst_float) {
      StoreNumeric(dst, s.dst_offset, true, init);
    } else {
      int64_t iv = 0;
      if (s.kind == AggKind::kMin) iv = std::numeric_limits<int64_t>::max();
      if (s.kind == AggKind::kMax) iv = std::numeric_limits<int64_t>::min();
      std::memcpy(dst + s.dst_offset, &iv, sizeof(iv));
    }
  }
}

void ReduceByKey::UpdateState(RowVector* states, uint32_t state,
                              const RowRef& row) {
  UpdateStateRow(states->mutable_row(state), row);
}

void ReduceByKey::UpdateStateRow(uint8_t* dst, const RowRef& row) const {
  for (const AggSlot& s : slots_) {
    double v = 0;
    if (s.kind != AggKind::kCount) {
      if (compiled_ && s.src_col >= 0) {
        v = LoadNumeric(row.data(), nullptr, s.src_offset, s.src_wide,
                        s.src_float);
      } else {
        v = s.expr->Eval(row).AsDouble();
      }
    }
    if (s.dst_float) {
      double cur = LoadState(dst, s.dst_offset, true);
      switch (s.kind) {
        case AggKind::kSum: cur += v; break;
        case AggKind::kCount: cur += 1; break;
        case AggKind::kMin: cur = std::min(cur, v); break;
        case AggKind::kMax: cur = std::max(cur, v); break;
      }
      std::memcpy(dst + s.dst_offset, &cur, sizeof(cur));
    } else {
      int64_t cur;
      std::memcpy(&cur, dst + s.dst_offset, sizeof(cur));
      int64_t iv = static_cast<int64_t>(v);
      switch (s.kind) {
        case AggKind::kSum: cur += iv; break;
        case AggKind::kCount: cur += 1; break;
        case AggKind::kMin: cur = std::min(cur, iv); break;
        case AggKind::kMax: cur = std::max(cur, iv); break;
      }
      std::memcpy(dst + s.dst_offset, &cur, sizeof(cur));
    }
  }
}

void ReduceByKey::Accumulate(const RowRef& row) {
  if (key_cols_.empty()) {
    AccumulateKeylessRow(row);
    return;
  }
  UpdateState(states_.get(), StateFor(row), row);
}

void ReduceByKey::MergeStateRow(uint8_t* dst, const uint8_t* src) const {
  for (const AggSlot& s : slots_) {
    if (s.dst_float) {
      double a = LoadState(dst, s.dst_offset, true);
      double b = LoadState(src, s.dst_offset, true);
      switch (s.kind) {
        case AggKind::kSum:
        case AggKind::kCount: a += b; break;
        case AggKind::kMin: a = std::min(a, b); break;
        case AggKind::kMax: a = std::max(a, b); break;
      }
      std::memcpy(dst + s.dst_offset, &a, sizeof(a));
    } else {
      int64_t a, b;
      std::memcpy(&a, dst + s.dst_offset, sizeof(a));
      std::memcpy(&b, src + s.dst_offset, sizeof(b));
      switch (s.kind) {
        case AggKind::kSum:
        case AggKind::kCount: a += b; break;
        case AggKind::kMin: a = std::min(a, b); break;
        case AggKind::kMax: a = std::max(a, b); break;
      }
      std::memcpy(dst + s.dst_offset, &a, sizeof(a));
    }
  }
}

void ReduceByKey::AggregatePartition(
    const uint8_t* rows, size_t n, const Schema& schema, const uint32_t* idx,
    RowVector* states, std::vector<uint32_t>* first, I64StateMap* map,
    ByteStateTable* table, std::vector<uint8_t>* key_scratch,
    std::vector<uint64_t>* hash_scratch, bool reset_tables) const {
  // The partition's row count is a hard upper bound on its distinct keys,
  // so reserving it guarantees zero mid-aggregation rehashes — but on a
  // duplicate-heavy skewed partition (all rows of a hot key in one
  // place) it would also allocate O(rows) slots for a handful of groups.
  // Cap the up-front reservation; a partition with more rows than the
  // cap falls back to (deterministic — table internals never affect the
  // output) geometric growth only if it really holds that many groups.
  constexpr size_t kMaxReserveKeys = size_t{1} << 20;
  const size_t reserve = std::min(n, kMaxReserveKeys);
  const uint32_t stride = schema.row_size();
  if (single_i64_key_) {
    if (reset_tables) {
      map->Clear();
      map->Reserve(reserve);
    }
    const uint8_t* p = rows;
    for (size_t j = 0; j < n; ++j, p += stride) {
      RowRef row(p, &schema);
      bool inserted = false;
      uint32_t state = map->FindOrInsert(KeyAt(row, key_cols_[0]), &inserted);
      if (inserted) {
        InitState(states, row);
        first->push_back(idx[j]);
      }
      UpdateStateRow(states->mutable_row(state), row);
    }
    return;
  }
  if (reset_tables) {
    table->Clear();
    table->Reserve(reserve);
  }
  const uint32_t ks = codec_.key_size();
  key_scratch->resize(kKeyChunkRows * ks);
  hash_scratch->resize(kKeyChunkRows);
  RowSpan span{rows, stride, &schema};
  for (size_t base = 0; base < n; base += kKeyChunkRows) {
    const size_t m = std::min(n - base, kKeyChunkRows);
    if (key_prog_.valid()) {
      key_prog_.SerializeAndHash(span, base, m, key_scratch->data(),
                                 hash_scratch->data());
    } else {
      codec_.SerializeKeys(span, base, m, key_scratch->data());
      HashKeysSpan(key_scratch->data(), m, ks, hash_scratch->data());
    }
    for (size_t i = 0; i < m; ++i) {
      bool inserted = false;
      uint32_t state = table->FindOrInsert(key_scratch->data() + i * ks, ks,
                                           (*hash_scratch)[i], &inserted);
      RowRef row(rows + (base + i) * stride, &schema);
      if (inserted) {
        InitState(states, row);
        first->push_back(idx[base + i]);
      }
      UpdateStateRow(states->mutable_row(state), row);
    }
  }
}

Status ReduceByKey::ConsumeAllParallel(const RowVectorPtr& input,
                                       int workers) {
  const size_t n = input->size();
  const Schema& schema = input->schema();
  const uint32_t stride = input->row_size();
  constexpr int kFanout = 1 << kPartitionBits;
  constexpr int kPidShift = 64 - kPartitionBits;

  // Phase 1: per-row partition ids over static contiguous ranges. The id
  // is a pure function of the group key (hash HIGH bits; the state
  // tables use the low bits), so the assignment never depends on the
  // worker count.
  std::vector<uint8_t> pids(n);
  std::vector<size_t> bounds = SplitRows(n, workers);
  std::vector<std::vector<int64_t>> wcounts(
      workers, std::vector<int64_t>(kFanout, 0));
  MODULARIS_RETURN_NOT_OK(ParallelFor(ctx_, workers, [&](int w) -> Status {
    int64_t* counts = wcounts[w].data();
    if (single_i64_key_) {
      const uint8_t* p = input->data() + bounds[w] * stride;
      for (size_t i = bounds[w]; i < bounds[w + 1]; ++i, p += stride) {
        const uint64_t key =
            static_cast<uint64_t>(KeyAt(RowRef(p, &schema), key_cols_[0]));
        const uint8_t pid = static_cast<uint8_t>(MixHash64(key) >> kPidShift);
        pids[i] = pid;
        ++counts[pid];
      }
    } else {
      const uint32_t ks = codec_.key_size();
      std::vector<uint8_t> keys(kKeyChunkRows * ks);
      std::vector<uint64_t> hashes(kKeyChunkRows);
      RowSpan span{input->data(), stride, &schema};
      for (size_t base = bounds[w]; base < bounds[w + 1];
           base += kKeyChunkRows) {
        const size_t m = std::min(bounds[w + 1] - base, kKeyChunkRows);
        if (key_prog_.valid()) {
          key_prog_.SerializeAndHash(span, base, m, keys.data(),
                                     hashes.data());
        } else {
          codec_.SerializeKeys(span, base, m, keys.data());
          HashKeysSpan(keys.data(), m, ks, hashes.data());
        }
        for (size_t i = 0; i < m; ++i) {
          const uint8_t pid = static_cast<uint8_t>(hashes[i] >> kPidShift);
          pids[base + i] = pid;
          ++counts[pid];
        }
      }
    }
    return Status::OK();
  }));

  // Phase 2: prefix offsets + write-combining scatter into one flat
  // pre-sized buffer (rows and their original indices side by side).
  // Static ranges at prefix offsets replay the input order, so every
  // partition holds its rows in ascending original order — the property
  // that makes per-group float SUM accumulate exactly like one thread.
  std::vector<size_t> prefix(kFanout + 1, 0);
  for (int p = 0; p < kFanout; ++p) {
    int64_t total = 0;
    for (int w = 0; w < workers; ++w) total += wcounts[w][p];
    prefix[p + 1] = prefix[p] + static_cast<size_t>(total);
  }
  std::vector<std::vector<size_t>> offsets(workers,
                                           std::vector<size_t>(kFanout, 0));
  for (int p = 0; p < kFanout; ++p) {
    size_t off = prefix[p];
    for (int w = 0; w < workers; ++w) {
      offsets[w][p] = off;
      off += static_cast<size_t>(wcounts[w][p]);
    }
  }
  RowVectorPtr scat = RowVector::Make(schema);
  scat->ResizeRowsUninitialized(n);
  std::vector<uint32_t> idx(n);
  MODULARIS_RETURN_NOT_OK(ParallelFor(ctx_, workers, [&](int w) -> Status {
    ScatterSpanByPidWc(input->data() + bounds[w] * stride,
                       bounds[w + 1] - bounds[w], stride,
                       pids.data() + bounds[w], kFanout, bounds[w],
                       scat->mutable_data(), idx.data(), &offsets[w]);
    return Status::OK();
  }));

  // Phase 3: partition-owned aggregation. Each partition is claimed by
  // exactly one worker (dynamic claiming — ownership is exclusive, so
  // the schedule costs no determinism) and aggregated in its original
  // row order with zero cross-thread merging. Tables are reserved from
  // the partition's row count, so aggregation never rehashes.
  std::vector<RowVectorPtr> part_states(kFanout);
  std::vector<std::vector<uint32_t>> part_first(kFanout);
  std::vector<int64_t> wrehash(workers, 0);
  MorselCursor cursor(kFanout, 1, ctx_->cancel);
  MODULARIS_RETURN_NOT_OK(ParallelFor(ctx_, workers, [&](int w) -> Status {
    I64StateMap map;
    ByteStateTable table;
    std::vector<uint8_t> keys;
    std::vector<uint64_t> hashes;
    size_t begin = 0, count = 0;
    while (cursor.Claim(&begin, &count)) {
      for (size_t p = begin; p < begin + count; ++p) {
        const size_t rows_p = prefix[p + 1] - prefix[p];
        if (rows_p == 0) continue;
        RowVectorPtr states = RowVector::Make(out_schema_);
        AggregatePartition(scat->data() + prefix[p] * stride, rows_p, schema,
                           idx.data() + prefix[p], states.get(),
                           &part_first[p], &map, &table, &keys, &hashes);
        wrehash[w] += single_i64_key_ ? map.rehashes() : table.rehashes();
        part_states[p] = std::move(states);
      }
    }
    return Status::OK();
  }));

  // Phase 4: emit groups in global first-occurrence order. Each
  // partition discovers its groups in ascending first-occurrence index
  // (its rows are in original order), so a K-way merge over the
  // per-partition runs replays the serial emission order exactly.
  size_t total_groups = 0;
  for (int p = 0; p < kFanout; ++p) total_groups += part_first[p].size();
  states_->Reserve(total_groups);
  using Head = std::pair<uint32_t, uint32_t>;  // (first index, partition)
  std::priority_queue<Head, std::vector<Head>, std::greater<Head>> heap;
  std::vector<uint32_t> pos(kFanout, 0);
  int used_partitions = 0;
  for (int p = 0; p < kFanout; ++p) {
    if (!part_first[p].empty()) {
      heap.emplace(part_first[p][0], static_cast<uint32_t>(p));
      ++used_partitions;
    }
  }
  while (!heap.empty()) {
    const uint32_t p = heap.top().second;
    heap.pop();
    states_->AppendRaw(part_states[p]->row(pos[p]).data());
    if (++pos[p] < part_first[p].size()) {
      heap.emplace(part_first[p][pos[p]], p);
    }
  }
  int64_t rehashes = 0;
  for (int w = 0; w < workers; ++w) rehashes += wrehash[w];
  AddStatCounter("reduce.rehash", rehashes);
  AddStatCounter("parallel.reduce.partitions", used_partitions);
  return Status::OK();
}

// -- Grace-style spill path (docs/DESIGN-memory.md) -------------------------

void ReduceByKey::ComputeKeyHashes(const uint8_t* rows, size_t n,
                                   const Schema& schema,
                                   std::vector<uint64_t>* hashes) const {
  hashes->resize(n);
  const uint32_t stride = schema.row_size();
  if (single_i64_key_) {
    const uint8_t* p = rows;
    for (size_t i = 0; i < n; ++i, p += stride) {
      (*hashes)[i] = MixHash64(
          static_cast<uint64_t>(KeyAt(RowRef(p, &schema), key_cols_[0])));
    }
    return;
  }
  const uint32_t ks = codec_.key_size();
  std::vector<uint8_t> keys(kKeyChunkRows * ks);
  RowSpan span{rows, stride, &schema};
  for (size_t base = 0; base < n; base += kKeyChunkRows) {
    const size_t m = std::min(n - base, kKeyChunkRows);
    if (key_prog_.valid()) {
      key_prog_.SerializeAndHash(span, base, m, keys.data(),
                                 hashes->data() + base);
    } else {
      codec_.SerializeKeys(span, base, m, keys.data());
      HashKeysSpan(keys.data(), m, ks, hashes->data() + base);
    }
  }
}

void ReduceByKey::MergeAggRuns(std::vector<AggRun>* runs, RowVector* states,
                               std::vector<uint32_t>* first_out) const {
  using Head = std::pair<uint32_t, uint32_t>;  // (first index, run)
  std::priority_queue<Head, std::vector<Head>, std::greater<Head>> heap;
  std::vector<uint32_t> pos(runs->size(), 0);
  size_t total = 0;
  for (size_t r = 0; r < runs->size(); ++r) {
    total += (*runs)[r].first.size();
    if (!(*runs)[r].first.empty()) {
      heap.emplace((*runs)[r].first[0], static_cast<uint32_t>(r));
    }
  }
  states->Reserve(states->size() + total);
  if (first_out != nullptr) first_out->reserve(first_out->size() + total);
  while (!heap.empty()) {
    const auto [fi, r] = heap.top();
    heap.pop();
    states->AppendRaw((*runs)[r].states->row(pos[r]).data());
    if (first_out != nullptr) first_out->push_back(fi);
    if (++pos[r] < (*runs)[r].first.size()) {
      heap.emplace((*runs)[r].first[pos[r]], r);
    }
  }
}

Status ReduceByKey::ConsumeAllSpill(RowVectorPtr input) {
  const size_t mem_limit = ctx_->options.memory_limit_bytes;
  const size_t quota = SpillQuotaBytes(mem_limit);
  const Schema& schema = input->schema();
  const uint32_t stride = input->row_size();
  const size_t n = input->size();
  // Denied the in-memory path — counted whether the spill fallback is
  // viable (graceful degradation) or not (fail fast below).
  if (ctx_->budget != nullptr) ctx_->budget->NoteDenial();
  if (quota < stride) {
    return Status::ResourceExhausted(
        "ReduceByKey: memory_limit_bytes=" + std::to_string(mem_limit) +
        " cannot hold one " + std::to_string(stride) +
        "-byte row in the spill quota (" + std::to_string(quota) + " bytes)");
  }
  if (ctx_->spill_store == nullptr) {
    return Status::ResourceExhausted(
        "ReduceByKey: drained input of " + std::to_string(input->byte_size()) +
        " bytes exceeds memory_limit_bytes=" + std::to_string(mem_limit) +
        " and no spill store is configured");
  }
  AddStatCounter("spill.ops.ReduceByKey", 1);
  storage::SpillSet spill(ctx_, "reduce");
  constexpr int kFanout = 1 << kPartitionBits;
  constexpr int kPidShift = 64 - kPartitionBits;

  // Histogram over the first hash window. The keep/spill split below is
  // a pure function of (limit, histogram) — never of the thread count or
  // the live memory counter — so the output stays byte-equal to the
  // in-memory paths.
  std::vector<uint64_t> hashes;
  ComputeKeyHashes(input->data(), n, schema, &hashes);
  std::vector<size_t> part_rows(kFanout, 0);
  for (size_t i = 0; i < n; ++i) ++part_rows[hashes[i] >> kPidShift];

  // Hybrid rule: the greedy ascending-pid prefix stays in memory while it
  // fits half the budget; everything else streams to the store.
  std::vector<uint8_t> in_mem(kFanout, 0);
  size_t kept_bytes = 0;
  int64_t spilled_parts = 0;
  for (int p = 0; p < kFanout; ++p) {
    const size_t bytes_p = part_rows[p] * stride;
    if (bytes_p == 0) continue;
    if (kept_bytes + bytes_p <= mem_limit / 2) {
      in_mem[p] = 1;
      kept_bytes += bytes_p;
    } else {
      ++spilled_parts;
    }
  }

  // Serial scatter in input order: every partition holds its rows in
  // ascending global order whether it stays resident or streams out in
  // chunks, so per-group float SUM accumulates exactly like one thread.
  const int pass0 = spill.NewPass();
  const size_t chunk_rows =
      std::max<size_t>(1, quota / (static_cast<size_t>(stride) * kFanout));
  std::vector<RowVectorPtr> mem_parts(kFanout);
  std::vector<std::vector<uint32_t>> mem_idx(kFanout);
  std::vector<RowVectorPtr> stage(kFanout);
  std::vector<std::vector<uint32_t>> stage_idx(kFanout);
  for (size_t i = 0; i < n; ++i) {
    const int p = static_cast<int>(hashes[i] >> kPidShift);
    if (in_mem[p]) {
      if (mem_parts[p] == nullptr) {
        mem_parts[p] = RowVector::Make(schema);
        mem_parts[p]->Reserve(part_rows[p]);
        mem_idx[p].reserve(part_rows[p]);
      }
      mem_parts[p]->AppendRaw(input->data() + i * stride);
      mem_idx[p].push_back(static_cast<uint32_t>(i));
      continue;
    }
    if (stage[p] == nullptr) stage[p] = RowVector::Make(schema);
    stage[p]->AppendRaw(input->data() + i * stride);
    stage_idx[p].push_back(static_cast<uint32_t>(i));
    if (stage[p]->size() >= chunk_rows) {
      MODULARIS_RETURN_NOT_OK(spill.WriteChunk(pass0, p, stage[p]->data(),
                                               stage[p]->size(), stride,
                                               stage_idx[p].data()));
      stage[p]->Clear();
      stage_idx[p].clear();
    }
  }
  for (int p = 0; p < kFanout; ++p) {
    if (stage[p] != nullptr && !stage[p]->empty()) {
      MODULARIS_RETURN_NOT_OK(spill.WriteChunk(pass0, p, stage[p]->data(),
                                               stage[p]->size(), stride,
                                               stage_idx[p].data()));
    }
  }
  stage.clear();
  stage_idx.clear();
  AddStatCounter("spill.partitions", spilled_parts);
  AddStatCounter("spill.passes", 1);
  std::vector<uint64_t>().swap(hashes);
  input.reset();  // drop our reference to the drained input

  // Aggregate partitions in ascending pid order; each yields one group
  // run ascending by global first-occurrence index.
  SpillScratch scratch;
  std::vector<AggRun> runs;
  for (int p = 0; p < kFanout; ++p) {
    if (part_rows[p] == 0) continue;
    AggRun run;
    run.states = RowVector::Make(out_schema_);
    if (in_mem[p]) {
      AggregatePartition(mem_parts[p]->data(), mem_parts[p]->size(), schema,
                         mem_idx[p].data(), run.states.get(), &run.first,
                         &scratch.map, &scratch.table, &scratch.keys,
                         &scratch.hashes);
      mem_parts[p].reset();
      std::vector<uint32_t>().swap(mem_idx[p]);
    } else {
      MODULARIS_RETURN_NOT_OK(AggregateSpilledPartition(
          &spill, pass0, p, kPidShift, part_rows[p], schema, &run, &scratch));
    }
    runs.push_back(std::move(run));
  }

  // The phase-4 merge over the partition runs: groups emit in global
  // first-occurrence order, exactly like the in-memory paths.
  MergeAggRuns(&runs, states_.get(), nullptr);
  return Status::OK();
}

Status ReduceByKey::AggregateSpilledPartition(storage::SpillSet* spill,
                                              int pass, int pid, int shift,
                                              size_t part_rows,
                                              const Schema& schema,
                                              AggRun* out,
                                              SpillScratch* scratch) {
  if (ctx_->cancel != nullptr) MODULARIS_RETURN_NOT_OK(ctx_->cancel->Check());
  const size_t quota = SpillQuotaBytes(ctx_->options.memory_limit_bytes);
  const uint32_t stride = schema.row_size();
  constexpr int kFanout = 1 << kPartitionBits;

  if (part_rows * stride <= quota) {
    // Fits the quota: read the partition back whole (chunks concatenate
    // in global input order) and aggregate it in one shot.
    RowVectorPtr part = RowVector::Make(schema);
    part->Reserve(part_rows);
    std::vector<uint32_t> idx;
    idx.reserve(part_rows);
    MODULARIS_RETURN_NOT_OK(spill->ReadPartition(pass, pid, part.get(), &idx));
    AggregatePartition(part->data(), part->size(), schema, idx.data(),
                       out->states.get(), &out->first, &scratch->map,
                       &scratch->table, &scratch->keys, &scratch->hashes);
    spill->DeletePartition(pass, pid);
    return Status::OK();
  }

  if (shift < kPartitionBits) {
    // Hash exhausted: a partition every window maps to one id (a single
    // hot key, practically). Stream the chunks through one accumulating
    // table — its states are bounded by the partition's distinct keys,
    // which is the operator's own irreducible output.
    const int chunks = spill->NumChunks(pass, pid);
    RowVectorPtr chunk = RowVector::Make(schema);
    std::vector<uint32_t> idx;
    bool reset = true;
    for (int c = 0; c < chunks; ++c) {
      chunk->Clear();
      idx.clear();
      MODULARIS_RETURN_NOT_OK(
          spill->ReadChunk(pass, pid, c, chunk.get(), &idx));
      AggregatePartition(chunk->data(), chunk->size(), schema, idx.data(),
                         out->states.get(), &out->first, &scratch->map,
                         &scratch->table, &scratch->keys, &scratch->hashes,
                         /*reset_tables=*/reset);
      reset = false;
    }
    spill->DeletePartition(pass, pid);
    return Status::OK();
  }

  // Recursive pass: re-scatter by the next 8-bit hash window into a
  // fresh pass namespace, aggregate the sub-partitions ascending, and
  // merge their runs (each ascending by first index) into this
  // partition's run.
  const int sub_shift = shift - kPartitionBits;
  const int sub_pass = spill->NewPass();
  AddStatCounter("spill.passes", 1);
  const size_t chunk_rows =
      std::max<size_t>(1, quota / (static_cast<size_t>(stride) * kFanout));
  std::vector<size_t> sub_rows(kFanout, 0);
  {
    const int chunks = spill->NumChunks(pass, pid);
    RowVectorPtr chunk = RowVector::Make(schema);
    std::vector<uint32_t> idx;
    std::vector<uint64_t> hashes;
    std::vector<RowVectorPtr> stage(kFanout);
    std::vector<std::vector<uint32_t>> stage_idx(kFanout);
    for (int c = 0; c < chunks; ++c) {
      chunk->Clear();
      idx.clear();
      MODULARIS_RETURN_NOT_OK(
          spill->ReadChunk(pass, pid, c, chunk.get(), &idx));
      ComputeKeyHashes(chunk->data(), chunk->size(), schema, &hashes);
      for (size_t i = 0; i < chunk->size(); ++i) {
        const int sp =
            static_cast<int>((hashes[i] >> sub_shift) & (kFanout - 1));
        ++sub_rows[sp];
        if (stage[sp] == nullptr) stage[sp] = RowVector::Make(schema);
        stage[sp]->AppendRaw(chunk->data() + i * stride);
        stage_idx[sp].push_back(idx[i]);
        if (stage[sp]->size() >= chunk_rows) {
          MODULARIS_RETURN_NOT_OK(spill->WriteChunk(
              sub_pass, sp, stage[sp]->data(), stage[sp]->size(), stride,
              stage_idx[sp].data()));
          stage[sp]->Clear();
          stage_idx[sp].clear();
        }
      }
    }
    for (int sp = 0; sp < kFanout; ++sp) {
      if (stage[sp] != nullptr && !stage[sp]->empty()) {
        MODULARIS_RETURN_NOT_OK(spill->WriteChunk(
            sub_pass, sp, stage[sp]->data(), stage[sp]->size(), stride,
            stage_idx[sp].data()));
      }
    }
  }
  spill->DeletePartition(pass, pid);
  int64_t sub_parts = 0;
  for (int sp = 0; sp < kFanout; ++sp) {
    if (sub_rows[sp] > 0) ++sub_parts;
  }
  AddStatCounter("spill.partitions", sub_parts);

  std::vector<AggRun> sub_runs;
  for (int sp = 0; sp < kFanout; ++sp) {
    if (sub_rows[sp] == 0) continue;
    AggRun run;
    run.states = RowVector::Make(out_schema_);
    MODULARIS_RETURN_NOT_OK(AggregateSpilledPartition(
        spill, sub_pass, sp, sub_shift, sub_rows[sp], schema, &run, scratch));
    sub_runs.push_back(std::move(run));
  }
  MergeAggRuns(&sub_runs, out->states.get(), &out->first);
  return Status::OK();
}

Status ReduceByKey::ConsumeKeylessParallel(const RowVectorPtr& input,
                                           int workers) {
  const size_t n = input->size();
  const Schema& schema = input->schema();
  const uint32_t stride = input->row_size();
  const size_t chunks = (n + kKeylessChunkRows - 1) / kKeylessChunkRows;
  keyless_partials_ = RowVector::Make(out_schema_);
  // Zero-filled like the streaming path's AppendRow, so padding bytes
  // match byte-for-byte.
  keyless_partials_->ResizeRows(chunks);
  MorselCursor cursor(chunks, 1, ctx_->cancel);
  MODULARIS_RETURN_NOT_OK(ParallelFor(ctx_, workers, [&](int) -> Status {
    size_t begin = 0, count = 0;
    while (cursor.Claim(&begin, &count)) {
      for (size_t c = begin; c < begin + count; ++c) {
        uint8_t* dst = keyless_partials_->mutable_row(c);
        InitStateAggs(dst);
        const size_t lo = c * kKeylessChunkRows;
        const size_t hi = std::min(n, lo + kKeylessChunkRows);
        const uint8_t* p = input->data() + lo * stride;
        for (size_t i = lo; i < hi; ++i, p += stride) {
          UpdateStateRow(dst, RowRef(p, &schema));
        }
      }
    }
    return Status::OK();
  }));
  return Status::OK();
}

void ReduceByKey::AccumulateKeylessRow(const RowRef& row) {
  if (keyless_fill_ == 0) {
    if (keyless_partials_ == nullptr) {
      keyless_partials_ = RowVector::Make(out_schema_);
    }
    keyless_partials_->AppendRow();
    InitStateAggs(
        keyless_partials_->mutable_row(keyless_partials_->size() - 1));
  }
  UpdateStateRow(keyless_partials_->mutable_row(keyless_partials_->size() - 1),
                 row);
  if (++keyless_fill_ == kKeylessChunkRows) keyless_fill_ = 0;
}

void ReduceByKey::FinalizeKeyless() {
  if (keyless_partials_ == nullptr || keyless_partials_->empty()) return;
  PairwiseCombineRows(
      keyless_partials_->mutable_data(), keyless_partials_->size(),
      keyless_partials_->row_size(),
      [this](uint8_t* dst, const uint8_t* src) { MergeStateRow(dst, src); });
  states_->AppendRaw(keyless_partials_->data());
}

void ReduceByKey::AccumulateSpan(const uint8_t* rows, size_t n,
                                 const Schema& schema) {
  const uint32_t stride = schema.row_size();
  if (key_cols_.empty()) {
    const uint8_t* p = rows;
    for (size_t i = 0; i < n; ++i, p += stride) {
      AccumulateKeylessRow(RowRef(p, &schema));
    }
    return;
  }
  if (single_i64_key_) {
    const uint8_t* p = rows;
    for (size_t i = 0; i < n; ++i, p += stride) {
      Accumulate(RowRef(p, &schema));
    }
    return;
  }
  // Byte keys: the same chunked serialize→hash→probe kernel the parallel
  // partitions run, against the operator-owned table.
  const uint32_t ks = codec_.key_size();
  key_scratch_.resize(kKeyChunkRows * ks);
  hash_scratch_.resize(kKeyChunkRows);
  RowSpan span{rows, stride, &schema};
  for (size_t base = 0; base < n; base += kKeyChunkRows) {
    const size_t m = std::min(n - base, kKeyChunkRows);
    if (key_prog_.valid()) {
      key_prog_.SerializeAndHash(span, base, m, key_scratch_.data(),
                                 hash_scratch_.data());
    } else {
      codec_.SerializeKeys(span, base, m, key_scratch_.data());
      HashKeysSpan(key_scratch_.data(), m, ks, hash_scratch_.data());
    }
    for (size_t i = 0; i < m; ++i) {
      bool inserted = false;
      uint32_t state = byte_table_.FindOrInsert(
          key_scratch_.data() + i * ks, ks, hash_scratch_[i], &inserted);
      RowRef row(rows + (base + i) * stride, &schema);
      if (inserted) InitState(states_.get(), row);
      UpdateStateRow(states_->mutable_row(state), row);
    }
  }
}

void ReduceByKey::AccumulateBulk(const RowVector& rows) {
  AccumulateSpan(rows.data(), rows.size(), rows.schema());
}

Status ReduceByKey::ConsumeAll() {
  timer_.Bind(ctx_->stats, timer_key_);
  ScopedPhase phase(&timer_);
  Status st = ConsumeAllInner();
  // The keyless chunk partials combine through the fixed pairwise tree
  // exactly once, whichever path accumulated them.
  if (st.ok() && key_cols_.empty()) FinalizeKeyless();
  if (st.ok()) {
    mem_charge_.Add(states_->byte_size() + i64_map_.byte_size() +
                    byte_table_.byte_size());
  }
  return st;
}

Status ReduceByKey::ConsumeAllInner() {
  if (ctx_->options.enable_vectorized) {
    // Under a memory budget the keyed path always drains (even at one
    // thread), so the spill decision is a pure function of (limit, input
    // bytes) — never of the thread count (docs/DESIGN-memory.md).
    const size_t mem_limit = ctx_->options.memory_limit_bytes;
    const bool budgeted = mem_limit > 0 && !key_cols_.empty();
    if (ctx_->options.ResolvedNumThreads() > 1 || budgeted) {
      // Partition-owned (keyed) / fixed-chunk-tree (keyless) parallel
      // aggregation covers every key and aggregate shape — float SUM,
      // string and multi-column keys included — so there is no
      // structural serial fallback left on the vectorized path.
      RowVectorPtr input;
      MODULARIS_RETURN_NOT_OK(DrainRecordStream(child(0), &input));
      if (input == nullptr) return Status::OK();
      mem_charge_.Add(input->byte_size());
      if (budgeted && ShouldSpill(input->byte_size(), mem_limit)) {
        return ConsumeAllSpill(std::move(input));
      }
      const int workers = PlanWorkers(input->size(), ctx_->options);
      if (workers <= 1) {
        // Sizing decision (input too small to split), not a fallback.
        AccumulateSpan(input->data(), input->size(), input->schema());
        return Status::OK();
      }
      if (key_cols_.empty()) return ConsumeKeylessParallel(input, workers);
      return ConsumeAllParallel(input, workers);
    }
    // Selective pull: an upstream Filter hands its input batch plus a
    // selection vector, so rejected rows are never compacted just to be
    // aggregated here.
    RowBatch batch;
    while (child(0)->NextBatchSelective(&batch)) {
      if (batch.has_selection()) {
        const size_t n = batch.size();
        for (size_t i = 0; i < n; ++i) Accumulate(batch.row(i));
      } else {
        AccumulateSpan(batch.data(), batch.size(), batch.schema());
      }
    }
    return child(0)->status();
  }
  if (ctx_->options.ResolvedNumThreads() > 1) {
    // Row-at-a-time streams have no packed span to partition.
    NoteSerialFallback(ctx_, "ReduceByKey");
  }
  Tuple t;
  while (child(0)->Next(&t)) {
    const Item& item = t[0];
    if (item.is_collection()) {
      AccumulateBulk(*item.collection());
    } else if (item.is_row()) {
      Accumulate(item.row());
    } else {
      return Status::InvalidArgument(
          "ReduceByKey expects rows or collections, got " + item.ToString());
    }
  }
  return child(0)->status();
}

bool ReduceByKey::Next(Tuple* out) {
  if (!consumed_) {
    Status st = ConsumeAll();
    if (!st.ok()) return Fail(st);
    consumed_ = true;
  }
  if (emit_pos_ >= states_->size()) return false;
  out->clear();
  out->push_back(Item(states_->row(emit_pos_++)));
  return true;
}

// ---------------------------------------------------------------------------
// Reduce
// ---------------------------------------------------------------------------

Status Reduce::Open(ExecContext* ctx) {
  emitted_ = false;
  return inner_.Open(ctx);
}

bool Reduce::Next(Tuple* out) {
  if (emitted_) return false;
  if (inner_.Next(out)) {
    emitted_ = true;
    return true;
  }
  if (!inner_.status().ok()) return Fail(inner_.status());
  // Empty input: emit the identity row (count = 0, sums = 0).
  empty_state_ = RowVector::Make(inner_.out_schema());
  empty_state_->AppendRow();
  out->clear();
  out->push_back(Item(empty_state_->row(0)));
  emitted_ = true;
  return true;
}

// ---------------------------------------------------------------------------
// Sort / TopK
// ---------------------------------------------------------------------------

int CompareRows(const RowRef& a, const RowRef& b,
                const std::vector<SortKey>& keys) {
  for (const SortKey& k : keys) {
    int c = 0;
    switch (a.schema().field(k.col).type) {
      case AtomType::kInt32:
      case AtomType::kDate: {
        int32_t x = a.GetInt32(k.col), y = b.GetInt32(k.col);
        c = x < y ? -1 : (x == y ? 0 : 1);
        break;
      }
      case AtomType::kInt64: {
        int64_t x = a.GetInt64(k.col), y = b.GetInt64(k.col);
        c = x < y ? -1 : (x == y ? 0 : 1);
        break;
      }
      case AtomType::kFloat64: {
        // Total order: NaN == NaN, NaN after every non-NaN (last
        // ascending). The naive three-way idiom is UB fuel here — see
        // CompareF64TotalOrder.
        c = CompareF64TotalOrder(a.GetFloat64(k.col), b.GetFloat64(k.col));
        break;
      }
      case AtomType::kString: {
        int r = a.GetString(k.col).compare(b.GetString(k.col));
        c = r < 0 ? -1 : (r == 0 ? 0 : 1);
        break;
      }
    }
    if (c != 0) return k.desc ? -c : c;
  }
  return 0;
}

SortOp::SortOp(SubOpPtr child, std::vector<SortKey> keys, Schema schema,
               std::string timer_key)
    : SubOperator("Sort"),
      keys_(std::move(keys)),
      schema_(std::move(schema)),
      timer_key_(std::move(timer_key)) {
  AddChild(std::move(child));
}

SortOp::~SortOp() = default;

Status SortOp::Open(ExecContext* ctx) {
  sorted_ = false;
  emit_pos_ = 0;
  external_ = false;
  spill_.reset();
  runs_.clear();
  heap_.clear();
  emit_row_.reset();
  MODULARIS_RETURN_NOT_OK(SubOperator::Open(ctx));
  mem_charge_.Bind(ctx->budget);
  return Status::OK();
}

Status SortOp::ConsumeAndSort(size_t limit) {
  timer_.Bind(ctx_->stats, timer_key_);
  ScopedPhase phase(&timer_);
  rows_ = RowVector::Make(schema_);
  if (ctx_->options.enable_vectorized) {
    // Sort only permutes an index array, so a single durable
    // whole-collection input can be adopted without copying.
    MODULARIS_RETURN_NOT_OK(DrainRecordStreamInto(child(0), &rows_));
  } else {
    Tuple t;
    while (child(0)->Next(&t)) {
      const Item& item = t[0];
      if (item.is_collection()) {
        rows_->AppendAll(*item.collection());
      } else if (item.is_row()) {
        rows_->AppendRaw(item.row().data());
      } else {
        return Status::InvalidArgument(
            "Sort expects rows or collections, got " + item.ToString());
      }
    }
  }
  MODULARIS_RETURN_NOT_OK(child(0)->status());
  mem_charge_.Add(rows_->byte_size());
  const size_t mem_limit = ctx_->options.memory_limit_bytes;
  if (ctx_->options.enable_vectorized && mem_limit > 0 &&
      ShouldSpill(rows_->byte_size(), mem_limit)) {
    return ConsumeExternal(limit);
  }
  const size_t n = rows_->size();
  order_.resize(n);
  for (uint32_t i = 0; i < order_.size(); ++i) order_[i] = i;
  const size_t cap = limit < n ? limit : n;
  emit_limit_ = cap;
  if (n < 2 || cap == 0) return Status::OK();

  // Strict TOTAL order: the NaN-safe key comparator, tie-broken by the
  // original row index. At one thread this reproduces stable_sort's
  // order exactly; across threads it makes the merged order independent
  // of the run partitioning — N workers byte-equal to 1 by construction.
  auto less = [this](uint32_t x, uint32_t y) {
    int c = CompareRows(rows_->row(x), rows_->row(y), keys_);
    return c != 0 ? c < 0 : x < y;
  };

  int workers = 1;
  if (ctx_->options.enable_vectorized) {
    workers = PlanWorkers(n, ctx_->options);
  } else if (ctx_->options.ResolvedNumThreads() > 1) {
    // Row-at-a-time mode is the serial correctness oracle; it has no
    // parallel path (structural, like the other parallel operators).
    NoteSerialFallback(ctx_, "Sort");
  }
  if (workers <= 1) {
    if (cap < n) {
      // Bounded selection: heap-select the top `cap` (O(n log cap))
      // instead of fully sorting the input just to emit `cap` rows.
      std::partial_sort(order_.begin(), order_.begin() + cap, order_.end(),
                        less);
    } else {
      std::sort(order_.begin(), order_.end(), less);
    }
    return Status::OK();
  }

  // Morsel-parallel run formation: each worker orders its static
  // contiguous range (its top-`cap` prefix under a limit) by the total
  // order.
  std::vector<size_t> bounds = SplitRows(n, workers);
  MODULARIS_RETURN_NOT_OK(ParallelFor(ctx_, workers, [&](int w) -> Status {
    auto first = order_.begin() + bounds[w];
    auto last = order_.begin() + bounds[w + 1];
    const size_t run_n = bounds[w + 1] - bounds[w];
    if (cap < run_n) {
      std::partial_sort(first, first + cap, last, less);
    } else {
      std::sort(first, last, less);
    }
    return Status::OK();
  }));
  // K-way loser-tree merge of the per-worker runs. Under a limit each
  // run descriptor is clipped to its top-`cap` prefix; popping `cap`
  // elements total can take at most `cap` from any one run, so the
  // unsorted tails are never read.
  std::vector<uint32_t> merged(cap);
  MergeIndexRuns(BuildIndexRuns(order_.data(), bounds, cap), cap, less,
                 merged.data());
  order_ = std::move(merged);
  AddStatCounter("parallel.sort.runs", workers);
  return Status::OK();
}

// -- External merge sort (docs/DESIGN-memory.md) ----------------------------

Status SortOp::ConsumeExternal(size_t limit) {
  const size_t mem_limit = ctx_->options.memory_limit_bytes;
  const size_t quota = SpillQuotaBytes(mem_limit);
  const uint32_t stride = schema_.row_size();
  const size_t n = rows_->size();
  emit_limit_ = limit < n ? limit : n;
  order_.clear();
  if (emit_limit_ == 0) {
    rows_ = RowVector::Make(schema_);  // LIMIT 0: nothing to sort or emit
    return Status::OK();
  }
  // Denied the in-memory path — counted whether the spill fallback is
  // viable (graceful degradation) or not (fail fast below).
  if (ctx_->budget != nullptr) ctx_->budget->NoteDenial();
  if (quota < stride) {
    return Status::ResourceExhausted(
        "Sort: memory_limit_bytes=" + std::to_string(mem_limit) +
        " cannot hold one " + std::to_string(stride) +
        "-byte row in the spill quota (" + std::to_string(quota) + " bytes)");
  }
  if (ctx_->spill_store == nullptr) {
    return Status::ResourceExhausted(
        "Sort: materialized input of " + std::to_string(rows_->byte_size()) +
        " bytes exceeds memory_limit_bytes=" + std::to_string(mem_limit) +
        " and no spill store is configured");
  }
  AddStatCounter("spill.ops.Sort", 1);
  external_ = true;
  spill_ = std::make_unique<storage::SpillSet>(ctx_, "sort");

  // Run formation: quota-sized slices of the input, each ordered by
  // (keys, global index) — the same total order as the in-memory paths —
  // and written out sorted. Under a limit each run keeps only its
  // top-`emit_limit_` prefix: a row outside it can never be emitted.
  const size_t run_rows = std::max<size_t>(1, quota / stride);
  const size_t chunk_rows = std::max<size_t>(1, run_rows / 8);
  const int pass0 = spill_->NewPass();
  int num_runs = 0;
  {
    std::vector<uint32_t> perm;
    RowVectorPtr out_rows = RowVector::Make(schema_);
    std::vector<uint32_t> out_idx;
    auto less = [this](uint32_t x, uint32_t y) {
      const int c = CompareRows(rows_->row(x), rows_->row(y), keys_);
      return c != 0 ? c < 0 : x < y;
    };
    for (size_t base = 0; base < n; base += run_rows, ++num_runs) {
      const size_t m = std::min(n - base, run_rows);
      perm.resize(m);
      for (size_t i = 0; i < m; ++i) perm[i] = static_cast<uint32_t>(base + i);
      const size_t keep = std::min(emit_limit_, m);
      if (keep < m) {
        std::partial_sort(perm.begin(), perm.begin() + keep, perm.end(), less);
      } else {
        std::sort(perm.begin(), perm.end(), less);
      }
      for (size_t lo = 0; lo < keep; lo += chunk_rows) {
        const size_t cm = std::min(keep - lo, chunk_rows);
        out_rows->Clear();
        out_idx.clear();
        for (size_t i = 0; i < cm; ++i) {
          out_rows->AppendRaw(rows_->data() +
                              static_cast<size_t>(perm[lo + i]) * stride);
          out_idx.push_back(perm[lo + i]);
        }
        MODULARIS_RETURN_NOT_OK(spill_->WriteChunk(
            pass0, num_runs, out_rows->data(), cm, stride, out_idx.data()));
      }
    }
  }
  AddStatCounter("spill.partitions", num_runs);
  AddStatCounter("spill.passes", 1);
  rows_ = RowVector::Make(schema_);  // release the materialized input

  // Cascade merge: a merge of F runs keeps F chunks resident
  // (F · chunk_rows · stride bytes). Cap the fan-in so that resident set
  // fits the quota; while more runs remain, merge groups of F into
  // longer runs (each clipped at emit_limit_ rows) until one final merge
  // can stream the emission through Next()/NextBatch().
  const int fanin = static_cast<int>(
      std::max<size_t>(2, quota / (chunk_rows * stride)));
  auto merge_group = [&](int src_pass, const std::vector<int>& group,
                         int dst_pass, int dst_run) -> Status {
    if (ctx_->cancel != nullptr) {
      MODULARIS_RETURN_NOT_OK(ctx_->cancel->Check());
    }
    std::vector<RunCursor> cs(group.size());
    for (size_t i = 0; i < group.size(); ++i) {
      cs[i].pass = src_pass;
      cs[i].pid = group[i];
      cs[i].num_chunks = spill_->NumChunks(src_pass, group[i]);
    }
    std::vector<int> hp;
    auto cmp = [&](int a, int b) { return CursorBefore(cs[b], cs[a]); };
    for (size_t i = 0; i < cs.size(); ++i) {
      bool has = false;
      MODULARIS_RETURN_NOT_OK(EnsureCursorRow(&cs[i], &has));
      if (has) hp.push_back(static_cast<int>(i));
    }
    std::make_heap(hp.begin(), hp.end(), cmp);
    RowVectorPtr out_rows = RowVector::Make(schema_);
    std::vector<uint32_t> out_idx;
    size_t emitted = 0;
    while (!hp.empty() && emitted < emit_limit_) {
      std::pop_heap(hp.begin(), hp.end(), cmp);
      const int ci = hp.back();
      hp.pop_back();
      RunCursor& c = cs[ci];
      out_rows->AppendRaw(c.rows->data() + c.pos * stride);
      out_idx.push_back(c.idx[c.pos]);
      ++emitted;
      ++c.pos;
      bool has = false;
      MODULARIS_RETURN_NOT_OK(EnsureCursorRow(&c, &has));
      if (has) {
        hp.push_back(ci);
        std::push_heap(hp.begin(), hp.end(), cmp);
      }
      if (out_rows->size() >= chunk_rows) {
        MODULARIS_RETURN_NOT_OK(spill_->WriteChunk(dst_pass, dst_run,
                                                   out_rows->data(),
                                                   out_rows->size(), stride,
                                                   out_idx.data()));
        out_rows->Clear();
        out_idx.clear();
      }
    }
    if (!out_rows->empty()) {
      MODULARIS_RETURN_NOT_OK(spill_->WriteChunk(dst_pass, dst_run,
                                                 out_rows->data(),
                                                 out_rows->size(), stride,
                                                 out_idx.data()));
    }
    for (int r : group) spill_->DeletePartition(src_pass, r);
    return Status::OK();
  };
  int cur_pass = pass0;
  std::vector<int> cur_runs(num_runs);
  for (int r = 0; r < num_runs; ++r) cur_runs[r] = r;
  while (static_cast<int>(cur_runs.size()) > fanin) {
    const int next_pass = spill_->NewPass();
    AddStatCounter("spill.passes", 1);
    std::vector<int> next_runs;
    for (size_t g = 0; g < cur_runs.size(); g += fanin) {
      const size_t ge = std::min(cur_runs.size(), g + fanin);
      std::vector<int> group(cur_runs.begin() + g, cur_runs.begin() + ge);
      const int dst = static_cast<int>(next_runs.size());
      MODULARIS_RETURN_NOT_OK(merge_group(cur_pass, group, next_pass, dst));
      next_runs.push_back(dst);
    }
    cur_runs = std::move(next_runs);
    cur_pass = next_pass;
  }

  // Arm the final streaming merge.
  runs_.clear();
  heap_.clear();
  for (int r : cur_runs) {
    RunCursor c;
    c.pass = cur_pass;
    c.pid = r;
    c.num_chunks = spill_->NumChunks(cur_pass, r);
    runs_.push_back(std::move(c));
  }
  auto cmp = [this](int a, int b) { return CursorBefore(runs_[b], runs_[a]); };
  for (size_t i = 0; i < runs_.size(); ++i) {
    bool has = false;
    MODULARIS_RETURN_NOT_OK(EnsureCursorRow(&runs_[i], &has));
    if (has) heap_.push_back(static_cast<int>(i));
  }
  std::make_heap(heap_.begin(), heap_.end(), cmp);
  return Status::OK();
}

Status SortOp::EnsureCursorRow(RunCursor* c, bool* has_row) {
  while (c->rows == nullptr || c->pos >= c->rows->size()) {
    if (c->chunk >= c->num_chunks) {
      *has_row = false;
      return Status::OK();
    }
    if (c->rows == nullptr) c->rows = RowVector::Make(schema_);
    c->rows->Clear();
    c->idx.clear();
    c->pos = 0;
    MODULARIS_RETURN_NOT_OK(
        spill_->ReadChunk(c->pass, c->pid, c->chunk, c->rows.get(), &c->idx));
    ++c->chunk;
  }
  *has_row = true;
  return Status::OK();
}

bool SortOp::CursorBefore(const RunCursor& a, const RunCursor& b) const {
  const uint32_t stride = schema_.row_size();
  const RowRef ra(a.rows->data() + a.pos * stride, &schema_);
  const RowRef rb(b.rows->data() + b.pos * stride, &schema_);
  const int c = CompareRows(ra, rb, keys_);
  return c != 0 ? c < 0 : a.idx[a.pos] < b.idx[b.pos];
}

Status SortOp::NextExternalRow(const uint8_t** row, bool* done) {
  if (emit_pos_ >= emit_limit_ || heap_.empty()) {
    *done = true;
    return Status::OK();
  }
  const uint32_t stride = schema_.row_size();
  auto cmp = [this](int a, int b) { return CursorBefore(runs_[b], runs_[a]); };
  std::pop_heap(heap_.begin(), heap_.end(), cmp);
  const int ci = heap_.back();
  heap_.pop_back();
  RunCursor& c = runs_[ci];
  // Copy out before advancing: refilling the cursor's chunk buffer would
  // invalidate a pointer into it.
  if (emit_row_ == nullptr) {
    emit_row_ = RowVector::Make(schema_);
    emit_row_->AppendUninitialized(1);
  }
  std::memcpy(emit_row_->mutable_row(0), c.rows->data() + c.pos * stride,
              stride);
  ++c.pos;
  ++emit_pos_;
  bool has = false;
  MODULARIS_RETURN_NOT_OK(EnsureCursorRow(&c, &has));
  if (has) {
    heap_.push_back(ci);
    std::push_heap(heap_.begin(), heap_.end(), cmp);
  }
  *row = emit_row_->row(0).data();
  *done = false;
  return Status::OK();
}

bool SortOp::EnsureSorted() {
  if (sorted_) return true;
  Status st = ConsumeAndSort(SortLimit());
  if (!st.ok()) return Fail(std::move(st));
  sorted_ = true;
  return true;
}

bool SortOp::Next(Tuple* out) {
  if (!EnsureSorted()) return false;
  if (external_) {
    const uint8_t* row = nullptr;
    bool done = false;
    Status st = NextExternalRow(&row, &done);
    if (!st.ok()) return Fail(std::move(st));
    if (done) return false;
    out->clear();
    out->push_back(Item(RowRef(row, &schema_)));
    return true;
  }
  if (emit_pos_ >= emit_limit_) return false;
  out->clear();
  out->push_back(Item(rows_->row(order_[emit_pos_++])));
  return true;
}

bool SortOp::NextBatch(RowBatch* out) {
  if (!EnsureSorted()) return false;
  out->Clear();
  if (emit_pos_ >= emit_limit_) return false;
  if (external_) {
    RowVector* sink = out->Scratch(schema_);
    for (size_t i = 0; i < RowBatch::kDefaultRows; ++i) {
      const uint8_t* row = nullptr;
      bool done = false;
      Status st = NextExternalRow(&row, &done);
      if (!st.ok()) return Fail(std::move(st));
      if (done) break;
      sink->AppendRaw(row);
    }
    if (sink->empty()) return false;
    out->SealScratch();
    return true;
  }
  const size_t n = std::min(RowBatch::kDefaultRows, emit_limit_ - emit_pos_);
  RowVector* sink = out->Scratch(schema_);
  const uint32_t stride = rows_->row_size();
  const uint8_t* src = rows_->data();
  uint8_t* dst = sink->AppendUninitialized(n);
  for (size_t i = 0; i < n; ++i, dst += stride) {
    std::memcpy(dst,
                src + static_cast<size_t>(order_[emit_pos_ + i]) * stride,
                stride);
  }
  emit_pos_ += n;
  out->SealScratch();
  return true;
}

// ---------------------------------------------------------------------------
// GroupByPid
// ---------------------------------------------------------------------------

Status GroupByPid::GroupAll() {
  Tuple t;
  while (child(0)->Next(&t)) {
    if (t.size() < 2 || !t[0].is_i64() || !t[1].is_collection()) {
      return Status::InvalidArgument(
          "GroupBy expects ⟨pid, collection⟩ tuples, got " + t.ToString());
    }
    int64_t pid = t[0].i64();
    const RowVectorPtr& data = t[1].collection();
    auto it = groups_.find(pid);
    if (it == groups_.end()) {
      // First chunk of this pid: share it without copying.
      groups_[pid] = data;
    } else {
      if (it->second.use_count() > 1) {
        // Copy-on-write before merging into a shared collection.
        RowVectorPtr merged = RowVector::Make(it->second->schema());
        merged->AppendAll(*it->second);
        it->second = std::move(merged);
      }
      it->second->AppendAll(*data);
    }
  }
  MODULARIS_RETURN_NOT_OK(child(0)->status());
  grouped_ = true;
  emit_it_ = groups_.begin();
  return Status::OK();
}

bool GroupByPid::Next(Tuple* out) {
  if (!grouped_) {
    Status st = GroupAll();
    if (!st.ok()) return Fail(std::move(st));
  }
  if (emit_it_ == groups_.end()) return false;
  out->clear();
  out->push_back(Item(emit_it_->first));
  out->push_back(Item(emit_it_->second));
  ++emit_it_;
  return true;
}

bool GroupByPid::NextBatch(RowBatch* out) {
  if (!grouped_) {
    Status st = GroupAll();
    if (!st.ok()) return Fail(std::move(st));
  }
  out->Clear();
  while (emit_it_ != groups_.end()) {
    RowVectorPtr data = emit_it_->second;
    ++emit_it_;
    if (data->empty()) continue;
    out->Borrow(std::move(data));
    out->MarkDurable();  // merged groups are not mutated after grouping
    return true;
  }
  return false;
}

}  // namespace modularis
