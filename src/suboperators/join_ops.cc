#include "suboperators/join_ops.h"

namespace modularis {

// ---------------------------------------------------------------------------
// JoinHashTable
// ---------------------------------------------------------------------------

void JoinHashTable::Reserve(size_t rows) {
  entries_.clear();
  entries_.reserve(rows);
  size_t buckets = 16;
  while (buckets < rows * 2) buckets <<= 1;
  Rehash(buckets);
}

void JoinHashTable::Rehash(size_t buckets) {
  buckets_.assign(buckets, Bucket{});
  mask_ = buckets - 1;
  // Re-thread every entry; chains for duplicate keys rebuild naturally
  // because entries are revisited in insertion order.
  for (uint32_t e = 0; e < entries_.size(); ++e) {
    size_t slot = MixHash64(static_cast<uint64_t>(entries_[e].key)) & mask_;
    while (buckets_[slot].head != kNone &&
           buckets_[slot].key != entries_[e].key) {
      slot = (slot + 1) & mask_;
    }
    entries_[e].next = buckets_[slot].head;
    buckets_[slot].key = entries_[e].key;
    buckets_[slot].head = e;
  }
}

void JoinHashTable::Insert(int64_t key, uint32_t row_index) {
  if (buckets_.empty() || entries_.size() * 2 >= buckets_.size()) {
    entries_.push_back(Entry{key, row_index, kNone});
    Rehash(buckets_.empty() ? 16 : buckets_.size() * 2);
    return;
  }
  size_t slot = MixHash64(static_cast<uint64_t>(key)) & mask_;
  while (buckets_[slot].head != kNone && buckets_[slot].key != key) {
    slot = (slot + 1) & mask_;
  }
  Entry e{key, row_index, buckets_[slot].head};
  buckets_[slot].key = key;
  buckets_[slot].head = static_cast<uint32_t>(entries_.size());
  entries_.push_back(e);
}

uint32_t JoinHashTable::Find(int64_t key) const {
  if (buckets_.empty()) return kNone;
  size_t slot = MixHash64(static_cast<uint64_t>(key)) & mask_;
  while (buckets_[slot].head != kNone) {
    if (buckets_[slot].key == key) return buckets_[slot].head;
    slot = (slot + 1) & mask_;
  }
  return kNone;
}

// ---------------------------------------------------------------------------
// BuildProbe
// ---------------------------------------------------------------------------

namespace {

uint32_t FieldBytes(const Field& f) {
  switch (f.type) {
    case AtomType::kInt32:
    case AtomType::kDate:
      return 4;
    case AtomType::kInt64:
    case AtomType::kFloat64:
      return 8;
    case AtomType::kString:
      return 2 + f.width;
  }
  return 8;
}

void MakeCopyPlan(const Schema& src, const Schema& dst, size_t dst_start,
                  std::vector<FieldCopy>* plan) {
  for (size_t i = 0; i < src.num_fields(); ++i) {
    plan->push_back(FieldCopy{src.offset(i),
                              dst.offset(dst_start + i),
                              FieldBytes(src.field(i))});
  }
}

}  // namespace

Status BuildProbe::Open(ExecContext* ctx) {
  MODULARIS_RETURN_NOT_OK(SubOperator::Open(ctx));
  built_ = false;
  bulk_probe_ = false;
  have_probe_row_ = false;
  probe_bulk_.reset();
  probe_bulk_pos_ = 0;
  match_entry_ = JoinHashTable::kNone;
  in_match_chain_ = false;
  build_rows_ = RowVector::Make(build_schema_);
  scratch_ = RowVector::Make(out_schema_);
  scratch_->AppendRow();
  build_copies_.clear();
  probe_copies_.clear();
  if (type_ == JoinType::kInner) {
    MakeCopyPlan(build_schema_, out_schema_, 0, &build_copies_);
    MakeCopyPlan(probe_schema_, out_schema_, build_schema_.num_fields(),
                 &probe_copies_);
  }
  return Status::OK();
}

Status BuildProbe::BuildTable() {
  ScopedTimer timer(ctx_->stats, timer_key_);
  Tuple t;
  while (child(0)->Next(&t)) {
    const Item& item = t[0];
    if (item.is_collection()) {
      build_rows_->AppendAll(*item.collection());
    } else if (item.is_row()) {
      build_rows_->AppendRaw(item.row().data());
    } else {
      return Status::InvalidArgument(
          "BuildProbe expects rows or collections on the build side, got " +
          item.ToString());
    }
  }
  MODULARIS_RETURN_NOT_OK(child(0)->status());
  table_.Reserve(build_rows_->size());
  for (size_t i = 0; i < build_rows_->size(); ++i) {
    table_.Insert(KeyAt(build_rows_->row(i), build_key_col_) >> key_shift_,
                  static_cast<uint32_t>(i));
  }
  return Status::OK();
}

void BuildProbe::EmitInner(uint32_t entry, const RowRef& probe_row,
                           Tuple* out) {
  uint8_t* dst = scratch_->mutable_row(0);
  const uint8_t* bsrc = build_rows_->row(table_.RowOf(entry)).data();
  for (const FieldCopy& c : build_copies_) {
    std::memcpy(dst + c.dst_offset, bsrc + c.src_offset, c.bytes);
  }
  const uint8_t* psrc = probe_row.data();
  for (const FieldCopy& c : probe_copies_) {
    std::memcpy(dst + c.dst_offset, psrc + c.src_offset, c.bytes);
  }
  out->clear();
  out->push_back(Item(scratch_->row(0)));
}

bool BuildProbe::Next(Tuple* out) {
  if (!built_) {
    Status st = BuildTable();
    if (!st.ok()) return Fail(st);
    built_ = true;
  }

  while (true) {
    if (have_probe_row_) {
      RowRef row = CurrentProbeRow();
      if (in_match_chain_) {
        // Continue emitting duplicate matches for the current probe row.
        uint32_t e = match_entry_;
        match_entry_ = table_.NextMatch(e);
        if (match_entry_ == JoinHashTable::kNone) {
          in_match_chain_ = false;
          AdvanceProbe();
        }
        EmitInner(e, row, out);
        return true;
      }
      uint32_t e =
          table_.Find(KeyAt(row, probe_key_col_) >> key_shift_);
      bool matched = e != JoinHashTable::kNone;
      if (type_ == JoinType::kInner) {
        if (!matched) {
          AdvanceProbe();
          continue;
        }
        match_entry_ = table_.NextMatch(e);
        if (match_entry_ != JoinHashTable::kNone) {
          in_match_chain_ = true;
        } else {
          AdvanceProbe();
        }
        EmitInner(e, row, out);
        return true;
      }
      // Semi / anti: emit the probe row itself when (un)matched.
      bool emit = (type_ == JoinType::kSemi) == matched;
      AdvanceProbe();
      if (!emit) continue;
      out->clear();
      out->push_back(Item(row));
      return true;
    }

    Tuple t;
    if (!child(1)->Next(&t)) return ChildEnd(child(1));
    const Item& item = t[0];
    if (item.is_collection()) {
      probe_bulk_ = item.collection();
      probe_bulk_pos_ = 0;
      bulk_probe_ = true;
      have_probe_row_ = probe_bulk_->size() > 0;
    } else if (item.is_row()) {
      probe_tuple_ = std::move(t);
      bulk_probe_ = false;
      have_probe_row_ = true;
    } else {
      return Fail(Status::InvalidArgument(
          "BuildProbe expects rows or collections on the probe side, got " +
          item.ToString()));
    }
  }
}

}  // namespace modularis
