#include "suboperators/join_ops.h"

namespace modularis {

// ---------------------------------------------------------------------------
// JoinHashTable
// ---------------------------------------------------------------------------

void JoinHashTable::Reserve(size_t rows) {
  entries_.clear();
  entries_.reserve(rows);
  sliced_ = false;
  size_t buckets = 16;
  while (buckets < rows * 2) buckets <<= 1;
  Rehash(buckets);
}

void JoinHashTable::Rehash(size_t buckets) {
  sliced_ = false;  // serial rebuild probes the global bucket ring
  buckets_.assign(buckets, Bucket{});
  mask_ = buckets - 1;
  // Re-thread every entry; chains for duplicate keys rebuild naturally
  // because entries are revisited in insertion order.
  for (uint32_t e = 0; e < entries_.size(); ++e) {
    size_t slot = MixHash64(static_cast<uint64_t>(entries_[e].key)) & mask_;
    while (buckets_[slot].head != kNone &&
           buckets_[slot].key != entries_[e].key) {
      slot = (slot + 1) & mask_;
    }
    entries_[e].next = buckets_[slot].head;
    buckets_[slot].key = entries_[e].key;
    buckets_[slot].head = e;
  }
}

Status JoinHashTable::BuildParallel(const int64_t* keys, size_t n,
                                    int num_slices) {
  entries_.assign(n, Entry{0, 0, kNone});
  size_t buckets = 16;
  while (buckets < n * 2) buckets <<= 1;
  while (static_cast<size_t>(num_slices) * 16 > buckets) num_slices /= 2;
  if (num_slices < 2) {
    // Degenerate input: rebuild serially (caller handles the fallback).
    return Status::Internal("BuildParallel: input too small to slice");
  }
  buckets_.assign(buckets, Bucket{});
  mask_ = buckets - 1;
  sliced_ = true;
  slice_rows_ = buckets / num_slices;  // both powers of two
  // Hash every key exactly once (range-parallel) into a home-slot array;
  // the slice workers then only compare precomputed 4-byte slots against
  // their range instead of re-hashing all n keys per slice. Entry row
  // indices are uint32, so buckets <= 2^32 and the slot fits.
  std::vector<uint32_t> home(n);
  std::vector<size_t> bounds = SplitRows(n, num_slices);
  MODULARIS_RETURN_NOT_OK(ParallelFor(num_slices, [&](int w) -> Status {
    for (size_t i = bounds[w]; i < bounds[w + 1]; ++i) {
      home[i] = static_cast<uint32_t>(
          MixHash64(static_cast<uint64_t>(keys[i])) & mask_);
    }
    return Status::OK();
  }));
  Status st = ParallelFor(num_slices, [&](int slice) -> Status {
    const size_t lo = slice_rows_ * static_cast<size_t>(slice);
    const size_t hi = lo + slice_rows_;
    size_t used = 0;
    for (size_t i = 0; i < n; ++i) {
      size_t slot = home[i];
      if (slot < lo || slot >= hi) continue;  // another slice's key
      while (buckets_[slot].head != kNone && buckets_[slot].key != keys[i]) {
        slot = NextSlot(slot);
      }
      if (buckets_[slot].head == kNone) {
        if (++used >= slice_rows_) {
          // Pathological hash skew filled this slice completely.
          return Status::Internal("BuildParallel: bucket slice overflow");
        }
      }
      entries_[i] =
          Entry{keys[i], static_cast<uint32_t>(i), buckets_[slot].head};
      buckets_[slot].key = keys[i];
      buckets_[slot].head = static_cast<uint32_t>(i);
    }
    return Status::OK();
  });
  if (!st.ok()) sliced_ = false;
  return st;
}

void JoinHashTable::Insert(int64_t key, uint32_t row_index) {
  if (buckets_.empty() || entries_.size() * 2 >= buckets_.size()) {
    entries_.push_back(Entry{key, row_index, kNone});
    Rehash(buckets_.empty() ? 16 : buckets_.size() * 2);
    return;
  }
  size_t slot = MixHash64(static_cast<uint64_t>(key)) & mask_;
  while (buckets_[slot].head != kNone && buckets_[slot].key != key) {
    slot = NextSlot(slot);
  }
  Entry e{key, row_index, buckets_[slot].head};
  buckets_[slot].key = key;
  buckets_[slot].head = static_cast<uint32_t>(entries_.size());
  entries_.push_back(e);
}

uint32_t JoinHashTable::Find(int64_t key) const {
  if (buckets_.empty()) return kNone;
  size_t slot = MixHash64(static_cast<uint64_t>(key)) & mask_;
  while (buckets_[slot].head != kNone) {
    if (buckets_[slot].key == key) return buckets_[slot].head;
    slot = NextSlot(slot);
  }
  return kNone;
}

namespace {
/// Prefetch distance for the batched bucket walks: far enough to cover
/// a memory round trip, near enough to stay in the L1 prefetch window.
constexpr size_t kProbeAhead = 16;
}  // namespace

void JoinHashTable::InsertBatch(const int64_t* keys, size_t n,
                                uint32_t first_row) {
  for (size_t i = 0; i < n; ++i) {
    if (i + kProbeAhead < n && !buckets_.empty()) {
      size_t s =
          MixHash64(static_cast<uint64_t>(keys[i + kProbeAhead])) & mask_;
      __builtin_prefetch(&buckets_[s], 1);
    }
    Insert(keys[i], first_row + static_cast<uint32_t>(i));
  }
}

void JoinHashTable::FindBatch(const int64_t* keys, size_t n,
                              uint32_t* out) const {
  if (buckets_.empty()) {
    for (size_t i = 0; i < n; ++i) out[i] = kNone;
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    if (i + kProbeAhead < n) {
      size_t s =
          MixHash64(static_cast<uint64_t>(keys[i + kProbeAhead])) & mask_;
      __builtin_prefetch(&buckets_[s], 0);
    }
    out[i] = Find(keys[i]);
  }
}

// ---------------------------------------------------------------------------
// BuildProbe
// ---------------------------------------------------------------------------

namespace {

uint32_t FieldBytes(const Field& f) {
  switch (f.type) {
    case AtomType::kInt32:
    case AtomType::kDate:
      return 4;
    case AtomType::kInt64:
    case AtomType::kFloat64:
      return 8;
    case AtomType::kString:
      return 2 + f.width;
  }
  return 8;
}

void MakeCopyPlan(const Schema& src, const Schema& dst, size_t dst_start,
                  std::vector<FieldCopy>* plan) {
  for (size_t i = 0; i < src.num_fields(); ++i) {
    FieldCopy next{src.offset(i), dst.offset(dst_start + i),
                   FieldBytes(src.field(i))};
    // Coalesce byte-adjacent copies (packed layouts without alignment
    // gaps collapse into one memcpy per side).
    if (!plan->empty()) {
      FieldCopy& prev = plan->back();
      if (prev.src_offset + prev.bytes == next.src_offset &&
          prev.dst_offset + prev.bytes == next.dst_offset) {
        prev.bytes += next.bytes;
        continue;
      }
    }
    plan->push_back(next);
  }
}

/// Extracts the (arithmetically right-shifted) i64 join keys of `n`
/// packed rows into `out`, with the key layout hoisted out of the loop.
void ExtractShiftedKeys(const uint8_t* rows, size_t n, const Schema& schema,
                        int key_col, int shift, int64_t* out) {
  const uint32_t key_off = schema.offset(key_col);
  const bool wide = schema.field(key_col).type == AtomType::kInt64;
  const uint32_t stride = schema.row_size();
  for (size_t i = 0; i < n; ++i, rows += stride) {
    int64_t key;
    if (wide) {
      std::memcpy(&key, rows + key_off, sizeof(key));
    } else {
      int32_t k32;
      std::memcpy(&k32, rows + key_off, sizeof(k32));
      key = k32;
    }
    out[i] = key >> shift;
  }
}

/// memcpy with a fixed-size fast path: the copy plans are dominated by
/// 8/16/24/32-byte runs, and a constant-size memcpy inlines to plain
/// register moves instead of a libc memmove call.
inline void CopyRun(uint8_t* dst, const uint8_t* src, uint32_t bytes) {
  switch (bytes) {
    case 8: std::memcpy(dst, src, 8); break;
    case 16: std::memcpy(dst, src, 16); break;
    case 24: std::memcpy(dst, src, 24); break;
    case 32: std::memcpy(dst, src, 32); break;
    default: std::memcpy(dst, src, bytes); break;
  }
}

}  // namespace

Status BuildProbe::Open(ExecContext* ctx) {
  MODULARIS_RETURN_NOT_OK(SubOperator::Open(ctx));
  built_ = false;
  par_probe_decided_ = false;
  par_probe_ = false;
  par_sinks_.clear();
  par_sink_ = 0;
  par_row_ = 0;
  bulk_probe_ = false;
  have_probe_row_ = false;
  probe_bulk_.reset();
  probe_bulk_pos_ = 0;
  match_entry_ = JoinHashTable::kNone;
  in_match_chain_ = false;
  build_rows_ = RowVector::Make(build_schema_);
  scratch_ = RowVector::Make(out_schema_);
  scratch_->AppendRow();
  build_copies_.clear();
  probe_copies_.clear();
  if (type_ == JoinType::kInner) {
    MakeCopyPlan(build_schema_, out_schema_, 0, &build_copies_);
    MakeCopyPlan(probe_schema_, out_schema_, build_schema_.num_fields(),
                 &probe_copies_);
    // The staging emit path overwrites whole rows; it is only valid when
    // the copy plans cover every output byte (no alignment gaps that the
    // zeroed-scratch path would have kept at zero).
    size_t covered = 0;
    for (const FieldCopy& c : build_copies_) covered += c.bytes;
    for (const FieldCopy& c : probe_copies_) covered += c.bytes;
    gapless_out_ = covered == out_schema_.row_size();
  } else {
    gapless_out_ = false;
  }
  return Status::OK();
}

Status BuildProbe::BuildTable() {
  timer_.Bind(ctx_->stats, timer_key_);
  ScopedPhase phase(&timer_);
  if (ctx_->options.enable_vectorized) {
    // Bulk build: adopt a single durable whole-collection batch without
    // copying (the common case: the build side is one partition);
    // otherwise one memcpy per batch into the build buffer.
    MODULARIS_RETURN_NOT_OK(DrainRecordStreamInto(child(0), &build_rows_));
  } else {
    Tuple t;
    while (child(0)->Next(&t)) {
      const Item& item = t[0];
      if (item.is_collection()) {
        build_rows_->AppendAll(*item.collection());
      } else if (item.is_row()) {
        build_rows_->AppendRaw(item.row().data());
      } else {
        return Status::InvalidArgument(
            "BuildProbe expects rows or collections on the build side, got " +
            item.ToString());
      }
    }
    MODULARIS_RETURN_NOT_OK(child(0)->status());
  }
  // Bulk insert: extract the (shifted) keys from the packed bytes with a
  // hoisted layout, then load the table with bucket prefetching.
  const size_t n = build_rows_->size();
  key_scratch_.resize(n);
  ExtractShiftedKeys(build_rows_->data(), n, build_schema_, build_key_col_,
                     key_shift_, key_scratch_.data());
  if (ctx_->options.enable_vectorized) {
    int workers = PlanWorkers(n, ctx_->options);
    int slices = 1;
    while (slices * 2 <= workers) slices *= 2;
    if (slices > 1 &&
        table_.BuildParallel(key_scratch_.data(), n, slices).ok()) {
      return Status::OK();
    }
    // Too small to slice, or pathological skew overfilled a slice:
    // rebuild serially (byte-identical either way).
  } else if (ctx_->options.ResolvedNumThreads() > 1) {
    NoteSerialFallback(ctx_, "BuildProbe");
  }
  table_.Reserve(n);
  table_.InsertBatch(key_scratch_.data(), n, 0);
  return Status::OK();
}

Status BuildProbe::MaybeSetupParallelProbe() {
  par_probe_decided_ = true;
  if (!ctx_->options.enable_vectorized ||
      ctx_->options.ResolvedNumThreads() <= 1) {
    return Status::OK();
  }
  RowVectorPtr probe;
  MODULARIS_RETURN_NOT_OK(DrainRecordStream(child(1), &probe));
  if (probe == nullptr || probe->empty()) {
    par_probe_ = true;  // empty stream: emit nothing
    return Status::OK();
  }
  int workers = PlanWorkers(probe->size(), ctx_->options);
  if (workers <= 1) {
    // Below the sizing threshold: replay the materialized rows through
    // the serial streaming cursor.
    probe_bulk_ = std::move(probe);
    probe_bulk_pos_ = 0;
    bulk_probe_ = true;
    have_probe_row_ = true;
    return Status::OK();
  }
  const uint32_t stride = probe->row_size();
  std::vector<size_t> bounds = SplitRows(probe->size(), workers);
  par_sinks_.resize(workers);
  MODULARIS_RETURN_NOT_OK(ParallelFor(ctx_, workers, [&](int w) -> Status {
    par_sinks_[w] = RowVector::Make(out_schema_);
    ProbeScratch scratch;
    ProbeSpanInto(probe->data() + bounds[w] * stride,
                  bounds[w + 1] - bounds[w], &scratch, par_sinks_[w].get());
    return Status::OK();
  }));
  par_probe_ = true;
  return Status::OK();
}

void BuildProbe::EmitInnerInto(uint32_t entry, const uint8_t* probe_row,
                               RowVector* staging, RowVector* sink) const {
  // Assemble in the zero-initialized staging row (alignment gaps stay
  // zero, matching the row-at-a-time path byte for byte), then append
  // with one packed copy — no per-row zero-fill in the sink.
  uint8_t* dst = staging->mutable_row(0);
  const uint8_t* bsrc = build_rows_->row(table_.RowOf(entry)).data();
  for (const FieldCopy& c : build_copies_) {
    std::memcpy(dst + c.dst_offset, bsrc + c.src_offset, c.bytes);
  }
  for (const FieldCopy& c : probe_copies_) {
    std::memcpy(dst + c.dst_offset, probe_row + c.src_offset, c.bytes);
  }
  sink->AppendRaw(dst);
}

void BuildProbe::ProbeSpanInto(const uint8_t* base, size_t n,
                               ProbeScratch* scratch, RowVector* sink) const {
  const uint32_t stride = probe_schema_.row_size();
  // Pass 1: extract shifted keys; pass 2: prefetched bulk lookup;
  // pass 3: emit matches (prefetching the matched build rows ahead).
  scratch->keys.resize(n);
  scratch->matches.resize(n);
  std::vector<uint32_t>& match_scratch_ = scratch->matches;
  ExtractShiftedKeys(base, n, probe_schema_, probe_key_col_, key_shift_,
                     scratch->keys.data());
  table_.FindBatch(scratch->keys.data(), n, match_scratch_.data());
  if (type_ == JoinType::kInner && gapless_out_) {
    // Direct emission: assemble rows with raw pointer arithmetic into
    // uninitialized chunks of the sink — no per-row append bookkeeping,
    // no staging copy (valid because the copy plans cover every output
    // byte).
    const uint32_t out_row = out_schema_.row_size();
    constexpr size_t kChunkRows = 512;
    uint8_t* dst = sink->AppendUninitialized(kChunkRows);
    size_t chunk_used = 0;
    for (size_t i = 0; i < n; ++i, base += stride) {
      uint32_t e = match_scratch_[i];
      if (e == JoinHashTable::kNone) continue;
      if (i + 4 < n && match_scratch_[i + 4] != JoinHashTable::kNone) {
        __builtin_prefetch(
            build_rows_->row(table_.RowOf(match_scratch_[i + 4])).data(), 0);
      }
      for (; e != JoinHashTable::kNone; e = table_.NextMatch(e)) {
        const uint8_t* bsrc = build_rows_->row(table_.RowOf(e)).data();
        for (const FieldCopy& c : build_copies_) {
          CopyRun(dst + c.dst_offset, bsrc + c.src_offset, c.bytes);
        }
        for (const FieldCopy& c : probe_copies_) {
          CopyRun(dst + c.dst_offset, base + c.src_offset, c.bytes);
        }
        dst += out_row;
        if (++chunk_used == kChunkRows) {
          dst = sink->AppendUninitialized(kChunkRows);
          chunk_used = 0;
        }
      }
    }
    sink->TruncateRows(kChunkRows - chunk_used);
    return;
  }
  if (scratch->staging == nullptr) {
    scratch->staging = RowVector::Make(out_schema_);
    scratch->staging->AppendRow();
  }
  for (size_t i = 0; i < n; ++i, base += stride) {
    uint32_t e = match_scratch_[i];
    if (type_ == JoinType::kInner) {
      if (i + 4 < n && match_scratch_[i + 4] != JoinHashTable::kNone) {
        __builtin_prefetch(
            build_rows_->row(table_.RowOf(match_scratch_[i + 4])).data(), 0);
      }
      for (; e != JoinHashTable::kNone; e = table_.NextMatch(e)) {
        EmitInnerInto(e, base, scratch->staging.get(), sink);
      }
    } else {
      bool matched = e != JoinHashTable::kNone;
      if ((type_ == JoinType::kSemi) == matched) sink->AppendRaw(base);
    }
  }
}

void BuildProbe::EmitInner(uint32_t entry, const RowRef& probe_row,
                           Tuple* out) {
  uint8_t* dst = scratch_->mutable_row(0);
  const uint8_t* bsrc = build_rows_->row(table_.RowOf(entry)).data();
  for (const FieldCopy& c : build_copies_) {
    std::memcpy(dst + c.dst_offset, bsrc + c.src_offset, c.bytes);
  }
  const uint8_t* psrc = probe_row.data();
  for (const FieldCopy& c : probe_copies_) {
    std::memcpy(dst + c.dst_offset, psrc + c.src_offset, c.bytes);
  }
  out->clear();
  out->push_back(Item(scratch_->row(0)));
}

bool BuildProbe::NextBatch(RowBatch* out) {
  if (!built_) {
    Status st = BuildTable();
    if (!st.ok()) return Fail(st);
    built_ = true;
  }
  if (!par_probe_decided_) {
    Status st = MaybeSetupParallelProbe();
    if (!st.ok()) return Fail(st);
  }
  out->Clear();
  if (par_probe_) {
    // Emit the per-worker sinks in worker order (the serial emission
    // order); a sink partially consumed through Next() yields its
    // remainder as one borrowed batch.
    if (!AdvanceParSink()) return false;
    RowVectorPtr& sink = par_sinks_[par_sink_];
    out->BorrowRange(sink, par_row_, sink->size() - par_row_);
    out->MarkDurable();  // sinks are immutable once probed
    par_row_ = sink->size();
    return true;
  }
  if (out_rows_ == nullptr) {
    out_rows_ = RowVector::Make(out_schema_);
  } else {
    out_rows_->Clear();
  }

  // Flush probe state a prior Next() left behind: finish the in-flight
  // duplicate-match chain, then the rest of the current probe unit.
  if (have_probe_row_) {
    RowRef row = CurrentProbeRow();
    if (in_match_chain_) {
      for (uint32_t e = match_entry_; e != JoinHashTable::kNone;
           e = table_.NextMatch(e)) {
        EmitInnerInto(e, row.data(), scratch_.get(), out_rows_.get());
      }
      in_match_chain_ = false;
      match_entry_ = JoinHashTable::kNone;
      AdvanceProbe();
    }
    if (have_probe_row_) {
      if (bulk_probe_) {
        ProbeSpanInto(probe_bulk_->data() +
                          probe_bulk_pos_ * probe_bulk_->row_size(),
                      probe_bulk_->size() - probe_bulk_pos_,
                      &probe_scratch_, out_rows_.get());
        probe_bulk_pos_ = probe_bulk_->size();
      } else {
        ProbeSpanInto(CurrentProbeRow().data(), 1, &probe_scratch_,
                      out_rows_.get());
      }
      have_probe_row_ = false;
    }
    if (!out_rows_->empty()) {
      // Hand the whole output vector to the consumer (it may adopt it
      // zero-copy); allocate fresh on the next call.
      out->Borrow(std::move(out_rows_));
      out->MarkReleased();
      return true;
    }
  }

  while (child(1)->NextBatch(&probe_in_)) {
    if (probe_in_.empty()) continue;
    out_rows_->Reserve(probe_in_.size());
    ProbeSpanInto(probe_in_.data(), probe_in_.size(), &probe_scratch_,
                  out_rows_.get());
    if (out_rows_->empty()) continue;  // no matches in this batch
    out->Borrow(std::move(out_rows_));
    out->MarkReleased();
    return true;
  }
  return ChildEnd(child(1));
}

bool BuildProbe::Next(Tuple* out) {
  if (!built_) {
    Status st = BuildTable();
    if (!st.ok()) return Fail(st);
    built_ = true;
  }
  if (!par_probe_decided_) {
    Status st = MaybeSetupParallelProbe();
    if (!st.ok()) return Fail(st);
  }
  if (par_probe_) {
    if (!AdvanceParSink()) return false;
    out->clear();
    out->push_back(Item(par_sinks_[par_sink_]->row(par_row_++)));
    return true;
  }

  while (true) {
    if (have_probe_row_) {
      RowRef row = CurrentProbeRow();
      if (in_match_chain_) {
        // Continue emitting duplicate matches for the current probe row.
        uint32_t e = match_entry_;
        match_entry_ = table_.NextMatch(e);
        if (match_entry_ == JoinHashTable::kNone) {
          in_match_chain_ = false;
          AdvanceProbe();
        }
        EmitInner(e, row, out);
        return true;
      }
      uint32_t e =
          table_.Find(KeyAt(row, probe_key_col_) >> key_shift_);
      bool matched = e != JoinHashTable::kNone;
      if (type_ == JoinType::kInner) {
        if (!matched) {
          AdvanceProbe();
          continue;
        }
        match_entry_ = table_.NextMatch(e);
        if (match_entry_ != JoinHashTable::kNone) {
          in_match_chain_ = true;
        } else {
          AdvanceProbe();
        }
        EmitInner(e, row, out);
        return true;
      }
      // Semi / anti: emit the probe row itself when (un)matched.
      bool emit = (type_ == JoinType::kSemi) == matched;
      AdvanceProbe();
      if (!emit) continue;
      out->clear();
      out->push_back(Item(row));
      return true;
    }

    Tuple t;
    if (!child(1)->Next(&t)) return ChildEnd(child(1));
    const Item& item = t[0];
    if (item.is_collection()) {
      probe_bulk_ = item.collection();
      probe_bulk_pos_ = 0;
      bulk_probe_ = true;
      have_probe_row_ = probe_bulk_->size() > 0;
    } else if (item.is_row()) {
      probe_tuple_ = std::move(t);
      bulk_probe_ = false;
      have_probe_row_ = true;
    } else {
      return Fail(Status::InvalidArgument(
          "BuildProbe expects rows or collections on the probe side, got " +
          item.ToString()));
    }
  }
}

}  // namespace modularis
