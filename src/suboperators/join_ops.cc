#include "suboperators/join_ops.h"

#include <algorithm>
#include <cstring>
#include <queue>

#include "storage/spill.h"

namespace modularis {

// ---------------------------------------------------------------------------
// JoinHashTable
// ---------------------------------------------------------------------------

void JoinHashTable::Reserve(size_t rows) {
  entries_.clear();
  entries_.reserve(rows);
  sliced_ = false;
  size_t buckets = 16;
  while (buckets < rows * 2) buckets <<= 1;
  Rehash(buckets);
}

void JoinHashTable::Rehash(size_t buckets) {
  sliced_ = false;  // serial rebuild probes the global bucket ring
  buckets_.assign(buckets, Bucket{});
  mask_ = buckets - 1;
  // Re-thread every entry; chains for duplicate keys rebuild naturally
  // because entries are revisited in insertion order.
  for (uint32_t e = 0; e < entries_.size(); ++e) {
    size_t slot = MixHash64(static_cast<uint64_t>(entries_[e].key)) & mask_;
    while (buckets_[slot].head != kNone &&
           buckets_[slot].key != entries_[e].key) {
      slot = (slot + 1) & mask_;
    }
    entries_[e].next = buckets_[slot].head;
    buckets_[slot].key = entries_[e].key;
    buckets_[slot].head = e;
  }
}

Status JoinHashTable::BuildParallel(const int64_t* keys, size_t n,
                                    int num_slices) {
  entries_.assign(n, Entry{0, 0, kNone});
  size_t buckets = 16;
  while (buckets < n * 2) buckets <<= 1;
  while (static_cast<size_t>(num_slices) * 16 > buckets) num_slices /= 2;
  if (num_slices < 2) {
    // Degenerate input: rebuild serially (caller handles the fallback).
    return Status::Internal("BuildParallel: input too small to slice");
  }
  buckets_.assign(buckets, Bucket{});
  mask_ = buckets - 1;
  sliced_ = true;
  slice_rows_ = buckets / num_slices;  // both powers of two
  // Hash every key exactly once (range-parallel) into a home-slot array;
  // the slice workers then only compare precomputed 4-byte slots against
  // their range instead of re-hashing all n keys per slice. Entry row
  // indices are uint32, so buckets <= 2^32 and the slot fits.
  std::vector<uint32_t> home(n);
  std::vector<size_t> bounds = SplitRows(n, num_slices);
  MODULARIS_RETURN_NOT_OK(ParallelFor(num_slices, [&](int w) -> Status {
    for (size_t i = bounds[w]; i < bounds[w + 1]; ++i) {
      home[i] = static_cast<uint32_t>(
          MixHash64(static_cast<uint64_t>(keys[i])) & mask_);
    }
    return Status::OK();
  }));
  Status st = ParallelFor(num_slices, [&](int slice) -> Status {
    const size_t lo = slice_rows_ * static_cast<size_t>(slice);
    const size_t hi = lo + slice_rows_;
    size_t used = 0;
    for (size_t i = 0; i < n; ++i) {
      size_t slot = home[i];
      if (slot < lo || slot >= hi) continue;  // another slice's key
      while (buckets_[slot].head != kNone && buckets_[slot].key != keys[i]) {
        slot = NextSlot(slot);
      }
      if (buckets_[slot].head == kNone) {
        if (++used >= slice_rows_) {
          // Pathological hash skew filled this slice completely.
          return Status::Internal("BuildParallel: bucket slice overflow");
        }
      }
      entries_[i] =
          Entry{keys[i], static_cast<uint32_t>(i), buckets_[slot].head};
      buckets_[slot].key = keys[i];
      buckets_[slot].head = static_cast<uint32_t>(i);
    }
    return Status::OK();
  });
  if (!st.ok()) sliced_ = false;
  return st;
}

void JoinHashTable::Insert(int64_t key, uint32_t row_index) {
  if (buckets_.empty() || entries_.size() * 2 >= buckets_.size()) {
    entries_.push_back(Entry{key, row_index, kNone});
    Rehash(buckets_.empty() ? 16 : buckets_.size() * 2);
    return;
  }
  size_t slot = MixHash64(static_cast<uint64_t>(key)) & mask_;
  while (buckets_[slot].head != kNone && buckets_[slot].key != key) {
    slot = NextSlot(slot);
  }
  Entry e{key, row_index, buckets_[slot].head};
  buckets_[slot].key = key;
  buckets_[slot].head = static_cast<uint32_t>(entries_.size());
  entries_.push_back(e);
}

uint32_t JoinHashTable::Find(int64_t key) const {
  if (buckets_.empty()) return kNone;
  size_t slot = MixHash64(static_cast<uint64_t>(key)) & mask_;
  while (buckets_[slot].head != kNone) {
    if (buckets_[slot].key == key) return buckets_[slot].head;
    slot = NextSlot(slot);
  }
  return kNone;
}

namespace {
/// Prefetch distance for the batched bucket walks: far enough to cover
/// a memory round trip, near enough to stay in the L1 prefetch window.
constexpr size_t kProbeAhead = 16;
}  // namespace

void JoinHashTable::InsertBatch(const int64_t* keys, size_t n,
                                uint32_t first_row) {
  for (size_t i = 0; i < n; ++i) {
    if (i + kProbeAhead < n && !buckets_.empty()) {
      size_t s =
          MixHash64(static_cast<uint64_t>(keys[i + kProbeAhead])) & mask_;
      __builtin_prefetch(&buckets_[s], 1);
    }
    Insert(keys[i], first_row + static_cast<uint32_t>(i));
  }
}

void JoinHashTable::FindBatch(const int64_t* keys, size_t n,
                              uint32_t* out) const {
  if (buckets_.empty()) {
    for (size_t i = 0; i < n; ++i) out[i] = kNone;
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    if (i + kProbeAhead < n) {
      size_t s =
          MixHash64(static_cast<uint64_t>(keys[i + kProbeAhead])) & mask_;
      __builtin_prefetch(&buckets_[s], 0);
    }
    out[i] = Find(keys[i]);
  }
}

// ---------------------------------------------------------------------------
// BuildProbe
// ---------------------------------------------------------------------------

namespace {

uint32_t FieldBytes(const Field& f) {
  switch (f.type) {
    case AtomType::kInt32:
    case AtomType::kDate:
      return 4;
    case AtomType::kInt64:
    case AtomType::kFloat64:
      return 8;
    case AtomType::kString:
      return 2 + f.width;
  }
  return 8;
}

void MakeCopyPlan(const Schema& src, const Schema& dst, size_t dst_start,
                  std::vector<FieldCopy>* plan) {
  for (size_t i = 0; i < src.num_fields(); ++i) {
    FieldCopy next{src.offset(i), dst.offset(dst_start + i),
                   FieldBytes(src.field(i))};
    // Coalesce byte-adjacent copies (packed layouts without alignment
    // gaps collapse into one memcpy per side).
    if (!plan->empty()) {
      FieldCopy& prev = plan->back();
      if (prev.src_offset + prev.bytes == next.src_offset &&
          prev.dst_offset + prev.bytes == next.dst_offset) {
        prev.bytes += next.bytes;
        continue;
      }
    }
    plan->push_back(next);
  }
}

/// Extracts the (arithmetically right-shifted) i64 join keys of `n`
/// packed rows into `out`, with the key layout hoisted out of the loop.
void ExtractShiftedKeys(const uint8_t* rows, size_t n, const Schema& schema,
                        int key_col, int shift, int64_t* out) {
  const uint32_t key_off = schema.offset(key_col);
  const bool wide = schema.field(key_col).type == AtomType::kInt64;
  const uint32_t stride = schema.row_size();
  for (size_t i = 0; i < n; ++i, rows += stride) {
    int64_t key;
    if (wide) {
      std::memcpy(&key, rows + key_off, sizeof(key));
    } else {
      int32_t k32;
      std::memcpy(&k32, rows + key_off, sizeof(k32));
      key = k32;
    }
    out[i] = key >> shift;
  }
}

/// memcpy with a fixed-size fast path: the copy plans are dominated by
/// 8/16/24/32-byte runs, and a constant-size memcpy inlines to plain
/// register moves instead of a libc memmove call.
inline void CopyRun(uint8_t* dst, const uint8_t* src, uint32_t bytes) {
  switch (bytes) {
    case 8: std::memcpy(dst, src, 8); break;
    case 16: std::memcpy(dst, src, 16); break;
    case 24: std::memcpy(dst, src, 24); break;
    case 32: std::memcpy(dst, src, 32); break;
    default: std::memcpy(dst, src, bytes); break;
  }
}

}  // namespace

Status BuildProbe::Open(ExecContext* ctx) {
  MODULARIS_RETURN_NOT_OK(SubOperator::Open(ctx));
  mem_charge_.Bind(ctx->budget);
  built_ = false;
  par_probe_decided_ = false;
  par_probe_ = false;
  par_sinks_.clear();
  par_sink_ = 0;
  par_row_ = 0;
  bulk_probe_ = false;
  have_probe_row_ = false;
  probe_bulk_.reset();
  probe_bulk_pos_ = 0;
  match_entry_ = JoinHashTable::kNone;
  in_match_chain_ = false;
  build_rows_ = RowVector::Make(build_schema_);
  scratch_ = RowVector::Make(out_schema_);
  scratch_->AppendRow();
  build_copies_.clear();
  probe_copies_.clear();
  if (type_ == JoinType::kInner) {
    MakeCopyPlan(build_schema_, out_schema_, 0, &build_copies_);
    MakeCopyPlan(probe_schema_, out_schema_, build_schema_.num_fields(),
                 &probe_copies_);
    // The staging emit path overwrites whole rows; it is only valid when
    // the copy plans cover every output byte (no alignment gaps that the
    // zeroed-scratch path would have kept at zero).
    size_t covered = 0;
    for (const FieldCopy& c : build_copies_) covered += c.bytes;
    for (const FieldCopy& c : probe_copies_) covered += c.bytes;
    gapless_out_ = covered == out_schema_.row_size();
  } else {
    gapless_out_ = false;
  }
  return Status::OK();
}

Status BuildProbe::BuildTable() {
  timer_.Bind(ctx_->stats, timer_key_);
  ScopedPhase phase(&timer_);
  if (ctx_->options.enable_vectorized) {
    // Bulk build: adopt a single durable whole-collection batch without
    // copying (the common case: the build side is one partition);
    // otherwise one memcpy per batch into the build buffer.
    MODULARIS_RETURN_NOT_OK(DrainRecordStreamInto(child(0), &build_rows_));
    mem_charge_.Add(build_rows_->byte_size());
    const size_t mem_limit = ctx_->options.memory_limit_bytes;
    if (mem_limit > 0 && ShouldSpill(build_rows_->byte_size(), mem_limit)) {
      return GraceSpillJoin();
    }
  } else {
    Tuple t;
    while (child(0)->Next(&t)) {
      const Item& item = t[0];
      if (item.is_collection()) {
        build_rows_->AppendAll(*item.collection());
      } else if (item.is_row()) {
        build_rows_->AppendRaw(item.row().data());
      } else {
        return Status::InvalidArgument(
            "BuildProbe expects rows or collections on the build side, got " +
            item.ToString());
      }
    }
    MODULARIS_RETURN_NOT_OK(child(0)->status());
  }
  // Bulk insert: extract the (shifted) keys from the packed bytes with a
  // hoisted layout, then load the table with bucket prefetching.
  const size_t n = build_rows_->size();
  key_scratch_.resize(n);
  ExtractShiftedKeys(build_rows_->data(), n, build_schema_, build_key_col_,
                     key_shift_, key_scratch_.data());
  if (ctx_->options.enable_vectorized) {
    int workers = PlanWorkers(n, ctx_->options);
    int slices = 1;
    while (slices * 2 <= workers) slices *= 2;
    if (slices > 1 &&
        table_.BuildParallel(key_scratch_.data(), n, slices).ok()) {
      mem_charge_.Add(table_.byte_size());
      return Status::OK();
    }
    // Too small to slice, or pathological skew overfilled a slice:
    // rebuild serially (byte-identical either way).
  } else if (ctx_->options.ResolvedNumThreads() > 1) {
    NoteSerialFallback(ctx_, "BuildProbe");
  }
  table_.Reserve(n);
  table_.InsertBatch(key_scratch_.data(), n, 0);
  mem_charge_.Add(table_.byte_size());
  return Status::OK();
}

Status BuildProbe::MaybeSetupParallelProbe() {
  par_probe_decided_ = true;
  if (!ctx_->options.enable_vectorized ||
      ctx_->options.ResolvedNumThreads() <= 1) {
    return Status::OK();
  }
  RowVectorPtr probe;
  MODULARIS_RETURN_NOT_OK(DrainRecordStream(child(1), &probe));
  if (probe == nullptr || probe->empty()) {
    par_probe_ = true;  // empty stream: emit nothing
    return Status::OK();
  }
  int workers = PlanWorkers(probe->size(), ctx_->options);
  if (workers <= 1) {
    // Below the sizing threshold: replay the materialized rows through
    // the serial streaming cursor.
    probe_bulk_ = std::move(probe);
    probe_bulk_pos_ = 0;
    bulk_probe_ = true;
    have_probe_row_ = true;
    return Status::OK();
  }
  const uint32_t stride = probe->row_size();
  std::vector<size_t> bounds = SplitRows(probe->size(), workers);
  par_sinks_.resize(workers);
  MODULARIS_RETURN_NOT_OK(ParallelFor(ctx_, workers, [&](int w) -> Status {
    par_sinks_[w] = RowVector::Make(out_schema_);
    ProbeScratch scratch;
    ProbeSpanInto(probe->data() + bounds[w] * stride,
                  bounds[w + 1] - bounds[w], &scratch, par_sinks_[w].get());
    return Status::OK();
  }));
  par_probe_ = true;
  return Status::OK();
}

void BuildProbe::EmitInnerInto(uint32_t entry, const uint8_t* probe_row,
                               RowVector* staging, RowVector* sink) const {
  // Assemble in the zero-initialized staging row (alignment gaps stay
  // zero, matching the row-at-a-time path byte for byte), then append
  // with one packed copy — no per-row zero-fill in the sink.
  uint8_t* dst = staging->mutable_row(0);
  const uint8_t* bsrc = build_rows_->row(table_.RowOf(entry)).data();
  for (const FieldCopy& c : build_copies_) {
    std::memcpy(dst + c.dst_offset, bsrc + c.src_offset, c.bytes);
  }
  for (const FieldCopy& c : probe_copies_) {
    std::memcpy(dst + c.dst_offset, probe_row + c.src_offset, c.bytes);
  }
  sink->AppendRaw(dst);
}

void BuildProbe::ProbeSpanInto(const uint8_t* base, size_t n,
                               ProbeScratch* scratch, RowVector* sink,
                               const uint32_t* global_idx,
                               std::vector<uint32_t>* out_idx) const {
  const uint32_t stride = probe_schema_.row_size();
  // Pass 1: extract shifted keys; pass 2: prefetched bulk lookup;
  // pass 3: emit matches (prefetching the matched build rows ahead).
  scratch->keys.resize(n);
  scratch->matches.resize(n);
  std::vector<uint32_t>& match_scratch_ = scratch->matches;
  ExtractShiftedKeys(base, n, probe_schema_, probe_key_col_, key_shift_,
                     scratch->keys.data());
  table_.FindBatch(scratch->keys.data(), n, match_scratch_.data());
  if (type_ == JoinType::kInner && gapless_out_ && out_idx == nullptr) {
    // Direct emission: assemble rows with raw pointer arithmetic into
    // uninitialized chunks of the sink — no per-row append bookkeeping,
    // no staging copy (valid because the copy plans cover every output
    // byte).
    const uint32_t out_row = out_schema_.row_size();
    constexpr size_t kChunkRows = 512;
    uint8_t* dst = sink->AppendUninitialized(kChunkRows);
    size_t chunk_used = 0;
    for (size_t i = 0; i < n; ++i, base += stride) {
      uint32_t e = match_scratch_[i];
      if (e == JoinHashTable::kNone) continue;
      if (i + 4 < n && match_scratch_[i + 4] != JoinHashTable::kNone) {
        __builtin_prefetch(
            build_rows_->row(table_.RowOf(match_scratch_[i + 4])).data(), 0);
      }
      for (; e != JoinHashTable::kNone; e = table_.NextMatch(e)) {
        const uint8_t* bsrc = build_rows_->row(table_.RowOf(e)).data();
        for (const FieldCopy& c : build_copies_) {
          CopyRun(dst + c.dst_offset, bsrc + c.src_offset, c.bytes);
        }
        for (const FieldCopy& c : probe_copies_) {
          CopyRun(dst + c.dst_offset, base + c.src_offset, c.bytes);
        }
        dst += out_row;
        if (++chunk_used == kChunkRows) {
          dst = sink->AppendUninitialized(kChunkRows);
          chunk_used = 0;
        }
      }
    }
    sink->TruncateRows(kChunkRows - chunk_used);
    return;
  }
  if (scratch->staging == nullptr) {
    scratch->staging = RowVector::Make(out_schema_);
    scratch->staging->AppendRow();
  }
  for (size_t i = 0; i < n; ++i, base += stride) {
    uint32_t e = match_scratch_[i];
    if (type_ == JoinType::kInner) {
      if (i + 4 < n && match_scratch_[i + 4] != JoinHashTable::kNone) {
        __builtin_prefetch(
            build_rows_->row(table_.RowOf(match_scratch_[i + 4])).data(), 0);
      }
      for (; e != JoinHashTable::kNone; e = table_.NextMatch(e)) {
        EmitInnerInto(e, base, scratch->staging.get(), sink);
        if (out_idx != nullptr) {
          out_idx->push_back(global_idx != nullptr
                                 ? global_idx[i]
                                 : static_cast<uint32_t>(i));
        }
      }
    } else {
      bool matched = e != JoinHashTable::kNone;
      if ((type_ == JoinType::kSemi) == matched) {
        sink->AppendRaw(base);
        if (out_idx != nullptr) {
          out_idx->push_back(global_idx != nullptr
                                 ? global_idx[i]
                                 : static_cast<uint32_t>(i));
        }
      }
    }
  }
}

// -- Grace-style spill path (docs/DESIGN-memory.md) -------------------------

void BuildProbe::BuildGroupTable() {
  const size_t n = build_rows_->size();
  key_scratch_.resize(n);
  ExtractShiftedKeys(build_rows_->data(), n, build_schema_, build_key_col_,
                     key_shift_, key_scratch_.data());
  table_.Reserve(n);
  table_.InsertBatch(key_scratch_.data(), n, 0);
}

void BuildProbe::MergeOutRuns(std::vector<OutRun>* runs, RowVector* sink,
                              std::vector<uint32_t>* idx_out) const {
  using Head = std::pair<uint32_t, uint32_t>;  // (probe index, run rank)
  std::priority_queue<Head, std::vector<Head>, std::greater<Head>> heap;
  std::vector<size_t> pos(runs->size(), 0);
  size_t total = 0;
  for (size_t r = 0; r < runs->size(); ++r) {
    total += (*runs)[r].idx.size();
    if (!(*runs)[r].idx.empty()) {
      heap.emplace((*runs)[r].idx[0], static_cast<uint32_t>(r));
    }
  }
  sink->Reserve(sink->size() + total);
  if (idx_out != nullptr) idx_out->reserve(idx_out->size() + total);
  while (!heap.empty()) {
    const auto [pi, r] = heap.top();
    heap.pop();
    sink->AppendRaw((*runs)[r].rows->row(pos[r]).data());
    if (idx_out != nullptr) idx_out->push_back(pi);
    if (++pos[r] < (*runs)[r].idx.size()) {
      heap.emplace((*runs)[r].idx[pos[r]], r);
    }
  }
}

Status BuildProbe::GraceSpillJoin() {
  // The result is surfaced through the parallel-probe emission path:
  // par_sinks_ ends up holding the one merged output vector.
  par_probe_decided_ = true;
  par_probe_ = true;
  par_sinks_.clear();
  par_sink_ = 0;
  par_row_ = 0;
  const size_t mem_limit = ctx_->options.memory_limit_bytes;
  const size_t quota = SpillQuotaBytes(mem_limit);
  const uint32_t stride_b = build_schema_.row_size();
  const uint32_t stride_p = probe_schema_.row_size();
  // Denied the in-memory path — counted whether the spill fallback is
  // viable (graceful degradation) or not (fail fast below).
  if (ctx_->budget != nullptr) ctx_->budget->NoteDenial();
  if (quota < stride_b || quota < stride_p) {
    return Status::ResourceExhausted(
        "BuildProbe: memory_limit_bytes=" + std::to_string(mem_limit) +
        " cannot hold one row in the spill quota (" + std::to_string(quota) +
        " bytes, build stride " + std::to_string(stride_b) +
        ", probe stride " + std::to_string(stride_p) + ")");
  }
  if (ctx_->spill_store == nullptr) {
    return Status::ResourceExhausted(
        "BuildProbe: build side of " +
        std::to_string(build_rows_->byte_size()) +
        " bytes exceeds memory_limit_bytes=" + std::to_string(mem_limit) +
        " and no spill store is configured");
  }
  AddStatCounter("spill.ops.BuildProbe", 1);
  storage::SpillSet spill(ctx_, "join");
  constexpr int kFanout = 256;
  constexpr int kPidShift = 56;

  // Grace co-partitions both inputs, so drain the probe side up front.
  RowVectorPtr probe;
  MODULARIS_RETURN_NOT_OK(DrainRecordStream(child(1), &probe));
  const size_t n_p = probe == nullptr ? 0 : probe->size();
  if (probe != nullptr) mem_charge_.Add(probe->byte_size());
  const size_t n_b = build_rows_->size();

  // Both sides' partition ids come from the same hash of the same
  // (shifted) key, so a key's build and probe rows meet in one pid. The
  // split below is a pure function of (limit, histogram): byte-equal at
  // any thread count.
  key_scratch_.resize(n_b);
  ExtractShiftedKeys(build_rows_->data(), n_b, build_schema_, build_key_col_,
                     key_shift_, key_scratch_.data());
  std::vector<uint8_t> pid_b(n_b);
  std::vector<size_t> rows_b(kFanout, 0);
  for (size_t i = 0; i < n_b; ++i) {
    pid_b[i] = static_cast<uint8_t>(
        MixHash64(static_cast<uint64_t>(key_scratch_[i])) >> kPidShift);
    ++rows_b[pid_b[i]];
  }
  std::vector<int64_t> probe_keys(n_p);
  std::vector<uint8_t> pid_p(n_p);
  std::vector<size_t> rows_p(kFanout, 0);
  if (n_p > 0) {
    ExtractShiftedKeys(probe->data(), n_p, probe_schema_, probe_key_col_,
                       key_shift_, probe_keys.data());
    for (size_t i = 0; i < n_p; ++i) {
      pid_p[i] = static_cast<uint8_t>(
          MixHash64(static_cast<uint64_t>(probe_keys[i])) >> kPidShift);
      ++rows_p[pid_p[i]];
    }
  }
  std::vector<int64_t>().swap(probe_keys);

  // Hybrid build side: the greedy ascending-pid prefix stays resident
  // while it fits half the budget; the rest spills.
  std::vector<uint8_t> in_mem(kFanout, 0);
  size_t kept_bytes = 0;
  int64_t spilled_parts = 0;
  for (int p = 0; p < kFanout; ++p) {
    if (rows_b[p] == 0 && rows_p[p] == 0) continue;
    const size_t bytes_p = rows_b[p] * stride_b;
    if (kept_bytes + bytes_p <= mem_limit / 2) {
      in_mem[p] = 1;
      kept_bytes += bytes_p;
    } else {
      ++spilled_parts;
    }
  }

  // Scatter both sides in input order — every partition holds its rows
  // in ascending global order. Per-partition staging is flushed at a
  // granularity that caps the total resident staging near the quota.
  const int pass_b = spill.NewPass();
  const int pass_p = spill.NewPass();
  const size_t chunk_b =
      std::max<size_t>(1, quota / (static_cast<size_t>(stride_b) * kFanout));
  const size_t chunk_p =
      std::max<size_t>(1, quota / (static_cast<size_t>(stride_p) * kFanout));
  std::vector<RowVectorPtr> mem_b(kFanout);
  {
    std::vector<RowVectorPtr> stage(kFanout);
    std::vector<std::vector<uint32_t>> stage_idx(kFanout);
    for (size_t i = 0; i < n_b; ++i) {
      const int p = pid_b[i];
      if (in_mem[p]) {
        if (mem_b[p] == nullptr) {
          mem_b[p] = RowVector::Make(build_schema_);
          mem_b[p]->Reserve(rows_b[p]);
        }
        mem_b[p]->AppendRaw(build_rows_->data() + i * stride_b);
        continue;
      }
      if (stage[p] == nullptr) stage[p] = RowVector::Make(build_schema_);
      stage[p]->AppendRaw(build_rows_->data() + i * stride_b);
      stage_idx[p].push_back(static_cast<uint32_t>(i));
      if (stage[p]->size() >= chunk_b) {
        MODULARIS_RETURN_NOT_OK(spill.WriteChunk(pass_b, p, stage[p]->data(),
                                                 stage[p]->size(), stride_b,
                                                 stage_idx[p].data()));
        stage[p]->Clear();
        stage_idx[p].clear();
      }
    }
    for (int p = 0; p < kFanout; ++p) {
      if (stage[p] != nullptr && !stage[p]->empty()) {
        MODULARIS_RETURN_NOT_OK(spill.WriteChunk(pass_b, p, stage[p]->data(),
                                                 stage[p]->size(), stride_b,
                                                 stage_idx[p].data()));
      }
    }
  }
  build_rows_ = RowVector::Make(build_schema_);  // release the build side
  std::vector<uint8_t>().swap(pid_b);
  {
    std::vector<RowVectorPtr> stage(kFanout);
    std::vector<std::vector<uint32_t>> stage_idx(kFanout);
    for (size_t i = 0; i < n_p; ++i) {
      const int p = pid_p[i];
      if (stage[p] == nullptr) stage[p] = RowVector::Make(probe_schema_);
      stage[p]->AppendRaw(probe->data() + i * stride_p);
      stage_idx[p].push_back(static_cast<uint32_t>(i));
      if (stage[p]->size() >= chunk_p) {
        MODULARIS_RETURN_NOT_OK(spill.WriteChunk(pass_p, p, stage[p]->data(),
                                                 stage[p]->size(), stride_p,
                                                 stage_idx[p].data()));
        stage[p]->Clear();
        stage_idx[p].clear();
      }
    }
    for (int p = 0; p < kFanout; ++p) {
      if (stage[p] != nullptr && !stage[p]->empty()) {
        MODULARIS_RETURN_NOT_OK(spill.WriteChunk(pass_p, p, stage[p]->data(),
                                                 stage[p]->size(), stride_p,
                                                 stage_idx[p].data()));
      }
    }
  }
  probe.reset();
  std::vector<uint8_t>().swap(pid_p);
  AddStatCounter("spill.partitions", spilled_parts);
  AddStatCounter("spill.passes", 1);

  // Join one partition at a time. A build partition over the quota is
  // processed in quota-sized chunked groups, DESCENDING: a probe row's
  // duplicate matches must emit in descending global build-row order
  // (the in-memory table's chain order), and every row of group k
  // globally follows every row of group k-1.
  const size_t group_rows = std::max<size_t>(1, quota / stride_b);
  ProbeScratch scratch;
  std::vector<OutRun> part_runs;
  RowVectorPtr pchunk = RowVector::Make(probe_schema_);
  std::vector<uint32_t> pidx;
  for (int p = 0; p < kFanout; ++p) {
    if (ctx_->cancel != nullptr) {
      MODULARIS_RETURN_NOT_OK(ctx_->cancel->Check());
    }
    if (rows_p[p] == 0) {
      spill.DeletePartition(pass_b, p);
      continue;
    }
    const size_t nb = rows_b[p];
    const size_t ngroups =
        in_mem[p] ? (nb > 0 ? 1 : 0) : (nb + group_rows - 1) / group_rows;
    const int pchunks = spill.NumChunks(pass_p, p);
    // Loads group g (partition build rows [g·group_rows, …)) into
    // build_rows_ and rebuilds the group table over it.
    auto load_group = [&](size_t g) -> Status {
      if (in_mem[p]) {
        build_rows_ = mem_b[p];
      } else {
        const size_t lo = g * group_rows;
        const size_t hi = std::min(nb, lo + group_rows);
        build_rows_ = RowVector::Make(build_schema_);
        build_rows_->Reserve(hi - lo);
        const int bchunks = spill.NumChunks(pass_b, p);
        RowVectorPtr bchunk = RowVector::Make(build_schema_);
        size_t off = 0;
        for (int c = 0; c < bchunks && off < hi; ++c) {
          bchunk->Clear();
          MODULARIS_RETURN_NOT_OK(
              spill.ReadChunk(pass_b, p, c, bchunk.get(), nullptr));
          const size_t m = bchunk->size();
          const size_t s = std::max(lo, off);
          const size_t e = std::min(hi, off + m);
          if (s < e) {
            build_rows_->AppendRawBatch(bchunk->data() + (s - off) * stride_b,
                                        e - s);
          }
          off += m;
        }
      }
      BuildGroupTable();
      return Status::OK();
    };
    if (type_ != JoinType::kInner && ngroups > 1) {
      // Semi/anti across chunked groups: a probe row's verdict needs
      // every group, so mark matches into a partition-local bitmap
      // first, then emit in a second pass over the probe chunks.
      std::vector<uint8_t> matched(rows_p[p], 0);
      for (size_t g = 0; g < ngroups; ++g) {
        MODULARIS_RETURN_NOT_OK(load_group(g));
        size_t local = 0;
        for (int c = 0; c < pchunks; ++c) {
          pchunk->Clear();
          MODULARIS_RETURN_NOT_OK(
              spill.ReadChunk(pass_p, p, c, pchunk.get(), nullptr));
          const size_t m = pchunk->size();
          scratch.keys.resize(m);
          scratch.matches.resize(m);
          ExtractShiftedKeys(pchunk->data(), m, probe_schema_, probe_key_col_,
                             key_shift_, scratch.keys.data());
          table_.FindBatch(scratch.keys.data(), m, scratch.matches.data());
          for (size_t i = 0; i < m; ++i) {
            if (scratch.matches[i] != JoinHashTable::kNone) {
              matched[local + i] = 1;
            }
          }
          local += m;
        }
      }
      OutRun run;
      run.rows = RowVector::Make(out_schema_);
      size_t local = 0;
      for (int c = 0; c < pchunks; ++c) {
        pchunk->Clear();
        pidx.clear();
        MODULARIS_RETURN_NOT_OK(
            spill.ReadChunk(pass_p, p, c, pchunk.get(), &pidx));
        for (size_t i = 0; i < pchunk->size(); ++i) {
          const bool m = matched[local + i] != 0;
          if ((type_ == JoinType::kSemi) == m) {
            run.rows->AppendRaw(pchunk->data() + i * stride_p);
            run.idx.push_back(pidx[i]);
          }
        }
        local += pchunk->size();
      }
      spill.DeletePartition(pass_b, p);
      spill.DeletePartition(pass_p, p);
      if (!run.idx.empty()) part_runs.push_back(std::move(run));
      continue;
    }
    std::vector<OutRun> group_runs;
    if (ngroups == 0) {
      // No build rows at all: probe against the empty table (anti joins
      // emit every probe row, inner/semi emit nothing).
      build_rows_ = RowVector::Make(build_schema_);
      BuildGroupTable();
      group_runs.emplace_back();
      group_runs.back().rows = RowVector::Make(out_schema_);
      for (int c = 0; c < pchunks; ++c) {
        pchunk->Clear();
        pidx.clear();
        MODULARIS_RETURN_NOT_OK(
            spill.ReadChunk(pass_p, p, c, pchunk.get(), &pidx));
        ProbeSpanInto(pchunk->data(), pchunk->size(), &scratch,
                      group_runs.back().rows.get(), pidx.data(),
                      &group_runs.back().idx);
      }
    } else {
      for (size_t g = ngroups; g-- > 0;) {
        MODULARIS_RETURN_NOT_OK(load_group(g));
        group_runs.emplace_back();
        group_runs.back().rows = RowVector::Make(out_schema_);
        for (int c = 0; c < pchunks; ++c) {
          pchunk->Clear();
          pidx.clear();
          MODULARIS_RETURN_NOT_OK(
              spill.ReadChunk(pass_p, p, c, pchunk.get(), &pidx));
          ProbeSpanInto(pchunk->data(), pchunk->size(), &scratch,
                        group_runs.back().rows.get(), pidx.data(),
                        &group_runs.back().idx);
        }
      }
    }
    spill.DeletePartition(pass_b, p);
    spill.DeletePartition(pass_p, p);
    mem_b[p].reset();
    if (group_runs.size() == 1) {
      if (!group_runs[0].idx.empty()) {
        part_runs.push_back(std::move(group_runs[0]));
      }
      continue;
    }
    OutRun merged;
    merged.rows = RowVector::Make(out_schema_);
    MergeOutRuns(&group_runs, merged.rows.get(), &merged.idx);
    if (!merged.idx.empty()) part_runs.push_back(std::move(merged));
  }

  // Partition probe-index ranges interleave but never collide (a probe
  // row lives in exactly one partition), so the K-way merge restores
  // the global probe order — the in-memory emission order.
  RowVectorPtr merged = RowVector::Make(out_schema_);
  MergeOutRuns(&part_runs, merged.get(), nullptr);
  mem_charge_.Add(merged->byte_size());
  if (!merged->empty()) par_sinks_.push_back(std::move(merged));
  build_rows_ = RowVector::Make(build_schema_);
  table_ = JoinHashTable();
  return Status::OK();
}

void BuildProbe::EmitInner(uint32_t entry, const RowRef& probe_row,
                           Tuple* out) {
  uint8_t* dst = scratch_->mutable_row(0);
  const uint8_t* bsrc = build_rows_->row(table_.RowOf(entry)).data();
  for (const FieldCopy& c : build_copies_) {
    std::memcpy(dst + c.dst_offset, bsrc + c.src_offset, c.bytes);
  }
  const uint8_t* psrc = probe_row.data();
  for (const FieldCopy& c : probe_copies_) {
    std::memcpy(dst + c.dst_offset, psrc + c.src_offset, c.bytes);
  }
  out->clear();
  out->push_back(Item(scratch_->row(0)));
}

bool BuildProbe::NextBatch(RowBatch* out) {
  if (!built_) {
    Status st = BuildTable();
    if (!st.ok()) return Fail(st);
    built_ = true;
  }
  if (!par_probe_decided_) {
    Status st = MaybeSetupParallelProbe();
    if (!st.ok()) return Fail(st);
  }
  out->Clear();
  if (par_probe_) {
    // Emit the per-worker sinks in worker order (the serial emission
    // order); a sink partially consumed through Next() yields its
    // remainder as one borrowed batch.
    if (!AdvanceParSink()) return false;
    RowVectorPtr& sink = par_sinks_[par_sink_];
    out->BorrowRange(sink, par_row_, sink->size() - par_row_);
    out->MarkDurable();  // sinks are immutable once probed
    par_row_ = sink->size();
    return true;
  }
  if (out_rows_ == nullptr) {
    out_rows_ = RowVector::Make(out_schema_);
  } else {
    out_rows_->Clear();
  }

  // Flush probe state a prior Next() left behind: finish the in-flight
  // duplicate-match chain, then the rest of the current probe unit.
  if (have_probe_row_) {
    RowRef row = CurrentProbeRow();
    if (in_match_chain_) {
      for (uint32_t e = match_entry_; e != JoinHashTable::kNone;
           e = table_.NextMatch(e)) {
        EmitInnerInto(e, row.data(), scratch_.get(), out_rows_.get());
      }
      in_match_chain_ = false;
      match_entry_ = JoinHashTable::kNone;
      AdvanceProbe();
    }
    if (have_probe_row_) {
      if (bulk_probe_) {
        ProbeSpanInto(probe_bulk_->data() +
                          probe_bulk_pos_ * probe_bulk_->row_size(),
                      probe_bulk_->size() - probe_bulk_pos_,
                      &probe_scratch_, out_rows_.get());
        probe_bulk_pos_ = probe_bulk_->size();
      } else {
        ProbeSpanInto(CurrentProbeRow().data(), 1, &probe_scratch_,
                      out_rows_.get());
      }
      have_probe_row_ = false;
    }
    if (!out_rows_->empty()) {
      // Hand the whole output vector to the consumer (it may adopt it
      // zero-copy); allocate fresh on the next call.
      out->Borrow(std::move(out_rows_));
      out->MarkReleased();
      return true;
    }
  }

  while (child(1)->NextBatch(&probe_in_)) {
    if (probe_in_.empty()) continue;
    out_rows_->Reserve(probe_in_.size());
    ProbeSpanInto(probe_in_.data(), probe_in_.size(), &probe_scratch_,
                  out_rows_.get());
    if (out_rows_->empty()) continue;  // no matches in this batch
    out->Borrow(std::move(out_rows_));
    out->MarkReleased();
    return true;
  }
  return ChildEnd(child(1));
}

bool BuildProbe::Next(Tuple* out) {
  if (!built_) {
    Status st = BuildTable();
    if (!st.ok()) return Fail(st);
    built_ = true;
  }
  if (!par_probe_decided_) {
    Status st = MaybeSetupParallelProbe();
    if (!st.ok()) return Fail(st);
  }
  if (par_probe_) {
    if (!AdvanceParSink()) return false;
    out->clear();
    out->push_back(Item(par_sinks_[par_sink_]->row(par_row_++)));
    return true;
  }

  while (true) {
    if (have_probe_row_) {
      RowRef row = CurrentProbeRow();
      if (in_match_chain_) {
        // Continue emitting duplicate matches for the current probe row.
        uint32_t e = match_entry_;
        match_entry_ = table_.NextMatch(e);
        if (match_entry_ == JoinHashTable::kNone) {
          in_match_chain_ = false;
          AdvanceProbe();
        }
        EmitInner(e, row, out);
        return true;
      }
      uint32_t e =
          table_.Find(KeyAt(row, probe_key_col_) >> key_shift_);
      bool matched = e != JoinHashTable::kNone;
      if (type_ == JoinType::kInner) {
        if (!matched) {
          AdvanceProbe();
          continue;
        }
        match_entry_ = table_.NextMatch(e);
        if (match_entry_ != JoinHashTable::kNone) {
          in_match_chain_ = true;
        } else {
          AdvanceProbe();
        }
        EmitInner(e, row, out);
        return true;
      }
      // Semi / anti: emit the probe row itself when (un)matched.
      bool emit = (type_ == JoinType::kSemi) == matched;
      AdvanceProbe();
      if (!emit) continue;
      out->clear();
      out->push_back(Item(row));
      return true;
    }

    Tuple t;
    if (!child(1)->Next(&t)) return ChildEnd(child(1));
    const Item& item = t[0];
    if (item.is_collection()) {
      probe_bulk_ = item.collection();
      probe_bulk_pos_ = 0;
      bulk_probe_ = true;
      have_probe_row_ = probe_bulk_->size() > 0;
    } else if (item.is_row()) {
      probe_tuple_ = std::move(t);
      bulk_probe_ = false;
      have_probe_row_ = true;
    } else {
      return Fail(Status::InvalidArgument(
          "BuildProbe expects rows or collections on the probe side, got " +
          item.ToString()));
    }
  }
}

}  // namespace modularis
